// Observability subsystem tests: metrics registry semantics (log2 bucket
// boundaries, snapshot deltas), the lock-free trace recorder (enable gating,
// multi-thread export, bounded drops), report JSON round-trip including the
// metrics snapshot, and the headline acceptance criterion — simulated I/O is
// bit-identical with tracing on or off, serial and parallel.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "core/database.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/statement_registry.h"
#include "obs/trace_recorder.h"
#include "util/json.h"
#include "workload/generator.h"

namespace bulkdel {
namespace {

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, HistogramBucketBoundaries) {
  // Bucket b holds values of bit width b: 0 -> 0, [2^(b-1), 2^b) -> b.
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0);
  EXPECT_EQ(obs::Histogram::BucketOf(1), 1);
  EXPECT_EQ(obs::Histogram::BucketOf(2), 2);
  EXPECT_EQ(obs::Histogram::BucketOf(3), 2);
  EXPECT_EQ(obs::Histogram::BucketOf(4), 3);
  EXPECT_EQ(obs::Histogram::BucketOf(7), 3);
  EXPECT_EQ(obs::Histogram::BucketOf(8), 4);
  EXPECT_EQ(obs::Histogram::BucketOf((int64_t{1} << 40) - 1), 40);
  EXPECT_EQ(obs::Histogram::BucketOf(int64_t{1} << 40), 41);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(3), 7);
}

TEST(MetricsTest, HistogramObserveSnapshotAndQuantile) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.histogram("test.h");
  for (int i = 0; i < 90; ++i) h->Observe(3);    // bucket 2
  for (int i = 0; i < 10; ++i) h->Observe(100);  // bucket 7
  h->Observe(-5);                                // clamps to 0, bucket 0

  obs::MetricsSnapshot snap = registry.Snapshot();
  const obs::HistogramSnapshot* s = snap.FindHistogram("test.h");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 101);
  EXPECT_EQ(s->sum, 90 * 3 + 10 * 100);
  ASSERT_EQ(s->buckets.size(), 8u);  // trailing zeros trimmed
  EXPECT_EQ(s->buckets[0], 1);
  EXPECT_EQ(s->buckets[2], 90);
  EXPECT_EQ(s->buckets[7], 10);
  // Quantiles resolve to the containing bucket's upper bound.
  EXPECT_EQ(s->ApproxQuantile(0.5), 3);
  EXPECT_EQ(s->ApproxQuantile(0.99), 127);
}

TEST(MetricsTest, SnapshotDeltaIsPerStatement) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter(obs::metric_names::kWalSyncs);
  obs::Histogram* h = registry.histogram(obs::metric_names::kWalSyncRecords);
  c->Add(5);
  h->Observe(16);
  obs::MetricsSnapshot before = registry.Snapshot();
  c->Add(3);
  h->Observe(16);
  h->Observe(17);
  obs::MetricsSnapshot delta = registry.Snapshot() - before;
  EXPECT_EQ(delta.CounterOr(obs::metric_names::kWalSyncs), 3);
  const obs::HistogramSnapshot* hs =
      delta.FindHistogram(obs::metric_names::kWalSyncRecords);
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 2);
  EXPECT_EQ(hs->sum, 33);
}

TEST(MetricsTest, ApproxQuantileLoBracketsTheQuantile) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.histogram("test.h");
  for (int i = 0; i < 90; ++i) h->Observe(3);    // bucket 2: (1, 3]
  for (int i = 0; i < 10; ++i) h->Observe(100);  // bucket 7: (63, 127]
  obs::MetricsSnapshot snap = registry.Snapshot();
  const obs::HistogramSnapshot* s = snap.FindHistogram("test.h");
  ASSERT_NE(s, nullptr);
  // The true quantile lies in (ApproxQuantileLo(q), ApproxQuantile(q)].
  EXPECT_EQ(s->ApproxQuantileLo(0.5), 1);
  EXPECT_EQ(s->ApproxQuantile(0.5), 3);
  EXPECT_EQ(s->ApproxQuantileLo(0.99), 63);
  EXPECT_EQ(s->ApproxQuantile(0.99), 127);
  // Empty histogram: both bounds are 0, not garbage.
  obs::HistogramSnapshot empty;
  EXPECT_EQ(empty.ApproxQuantileLo(0.5), 0);
  EXPECT_EQ(empty.ApproxQuantile(0.5), 0);
}

TEST(MetricsTest, RegistryPointersAreStableAndKindsDoNotAlias) {
  obs::MetricsRegistry registry;
  obs::Counter* c1 = registry.counter("same.name");
  obs::Histogram* h1 = registry.histogram("same.name");
  EXPECT_EQ(registry.counter("same.name"), c1);
  EXPECT_EQ(registry.histogram("same.name"), h1);
  // All known metrics are pre-registered so two registries' snapshots are
  // positionally comparable.
  obs::MetricsRegistry other;
  obs::MetricsSnapshot a = other.Snapshot();
  for (const obs::MetricInfo& info : obs::KnownMetrics()) {
    bool found = false;
    for (const auto& [name, value] : a.counters) found |= name == info.name;
    for (const auto& h : a.histograms) found |= h.name == info.name;
    EXPECT_TRUE(found) << info.name;
  }
}

// ---------------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------------

/// The recorder is process-global; tests restore the disabled/empty state.
struct RecorderGuard {
  RecorderGuard() {
    obs::TraceRecorder::Global().SetEnabled(false);
    obs::TraceRecorder::Global().Reset();
  }
  ~RecorderGuard() {
    obs::TraceRecorder::Global().SetEnabled(false);
    obs::TraceRecorder::Global().Reset();
    obs::TraceRecorder::Global().SetThreadCapacity(
        obs::TraceRecorder::kDefaultCapacity);
  }
};

TEST(TraceRecorderTest, DisabledRecordsNothing) {
  RecorderGuard guard;
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.RecordInstant(obs::TraceCategory::kPool, "nope");
  recorder.RecordComplete(obs::TraceCategory::kPhase, "nope", 1, 2);
  { obs::TraceSpan span(obs::TraceCategory::kWal, "nope"); }
  EXPECT_EQ(recorder.EventCount(), 0u);
}

TEST(TraceRecorderTest, MultiThreadRecordingExportsParsableChromeTrace) {
  RecorderGuard guard;
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.SetEnabled(true);
  constexpr int kThreads = 4, kEventsPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        int64_t now = MonotonicNanos();
        recorder.RecordComplete(obs::TraceCategory::kPhase, "span", now - 100,
                                now, "items", i, "parent-label");
        recorder.RecordInstant(obs::TraceCategory::kPool, "tick", "n", t);
      }
    });
  }
  for (auto& t : threads) t.join();
  recorder.SetEnabled(false);
  EXPECT_EQ(recorder.EventCount(),
            static_cast<uint64_t>(kThreads * kEventsPerThread * 2));
  EXPECT_EQ(recorder.DroppedCount(), 0u);

  auto parsed = json::Parse(recorder.ToChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, json::Value::Kind::kArray);
  int spans = 0, instants = 0, lanes = 0;
  int64_t last_ts_int = -1;
  for (const json::Value& e : events->array) {
    std::string ph = e.StringOr("ph");
    if (ph == "M") {
      ++lanes;
      continue;
    }
    if (ph == "X") {
      ++spans;
      const json::Value* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->StringOr("parent"), "parent-label");
    } else if (ph == "i") {
      ++instants;
    }
    // Export is globally time-sorted (micros may repeat).
    int64_t ts = e.IntOr("ts");
    EXPECT_GE(ts, last_ts_int);
    last_ts_int = ts;
  }
  EXPECT_EQ(spans, kThreads * kEventsPerThread);
  EXPECT_EQ(instants, kThreads * kEventsPerThread);
  EXPECT_GE(lanes, 1);  // one thread_name record per lane
}

TEST(TraceRecorderTest, FullRingDropsNewestAndCounts) {
  RecorderGuard guard;
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  // Capacity clamps to one chunk; a fresh thread registering below gets it.
  recorder.SetThreadCapacity(1);
  constexpr uint64_t kCapacity = obs::TraceRecorder::kChunkEvents;
  constexpr uint64_t kWrites = kCapacity + 500;
  recorder.SetEnabled(true);
  std::thread writer([&recorder] {
    for (uint64_t i = 0; i < kWrites; ++i) {
      recorder.RecordInstant(obs::TraceCategory::kDisk, "w");
    }
  });
  writer.join();
  recorder.SetEnabled(false);
  EXPECT_EQ(recorder.DroppedCount(), kWrites - kCapacity);
  EXPECT_GE(recorder.EventCount(), kCapacity);
}

// ---------------------------------------------------------------------------
// Report round-trip including metrics
// ---------------------------------------------------------------------------

TEST(ObsReportJsonTest, MetricsSnapshotRoundTrips) {
  BulkDeleteReport report;
  report.strategy_used = Strategy::kVerticalSortMerge;
  report.rows_deleted = 7;
  report.metrics.counters = {{"wal.syncs", 4}, {"ckpt.inline", 2}};
  obs::HistogramSnapshot h;
  h.name = "bp.fetch_ns";
  h.count = 3;
  h.sum = 1234;
  h.buckets = {0, 1, 0, 2};
  report.metrics.histograms.push_back(h);

  auto round = BulkDeleteReport::FromJson(report.ToJson());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->rows_deleted, 7u);
  EXPECT_TRUE(round->metrics == report.metrics);
  // And a second serialize is byte-identical (stable emitter).
  EXPECT_EQ(round->ToJson(), report.ToJson());
}

// ---------------------------------------------------------------------------
// Identity: simulated I/O is a function of page accesses only — tracing and
// metrics never perturb it (tier-1 acceptance criterion for this subsystem).
// ---------------------------------------------------------------------------

BulkDeleteReport RunTracedDelete(int exec_threads, bool trace_spans) {
  RecorderGuard guard;  // each run starts from a clean, disabled recorder
  DatabaseOptions options;
  options.memory_budget_bytes = 4ull << 20;
  options.exec_threads = exec_threads;
  options.trace_spans = trace_spans;
  auto db = *Database::Create(options);

  WorkloadSpec spec;
  spec.n_tuples = 10000;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A", "B", "C"});

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.15, 42);
  auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (trace_spans) {
    // The traced run actually recorded spans (the flag is live) ...
    EXPECT_GT(obs::TraceRecorder::Global().EventCount(), 0u);
    // ... and its latency histograms populated into the report delta.
    const obs::HistogramSnapshot* fetch =
        report->metrics.FindHistogram(obs::metric_names::kBpFetchNs);
    EXPECT_NE(fetch, nullptr);
    if (fetch != nullptr) EXPECT_GT(fetch->count, 0);
  }
  return report.ok() ? *report : BulkDeleteReport{};
}

const PhaseStats* FindPhase(const BulkDeleteReport& report,
                            const std::string& name) {
  for (const PhaseStats& p : report.phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

void ExpectSameSimulatedIo(const BulkDeleteReport& off,
                           const BulkDeleteReport& on) {
  EXPECT_EQ(off.rows_deleted, on.rows_deleted);
  EXPECT_EQ(off.index_entries_deleted, on.index_entries_deleted);
  EXPECT_EQ(off.io.reads, on.io.reads);
  EXPECT_EQ(off.io.writes, on.io.writes);
  EXPECT_EQ(off.io.sequential_accesses, on.io.sequential_accesses);
  EXPECT_EQ(off.io.random_accesses, on.io.random_accesses);
  EXPECT_EQ(off.io.simulated_micros, on.io.simulated_micros);
  ASSERT_EQ(off.phases.size(), on.phases.size());
  for (const PhaseStats& p : off.phases) {
    const PhaseStats* q = FindPhase(on, p.name);
    ASSERT_NE(q, nullptr) << p.name;
    EXPECT_EQ(p.items, q->items) << p.name;
    EXPECT_EQ(p.io.reads, q->io.reads) << p.name;
    EXPECT_EQ(p.io.writes, q->io.writes) << p.name;
    EXPECT_EQ(p.io.sequential_accesses, q->io.sequential_accesses) << p.name;
    EXPECT_EQ(p.io.random_accesses, q->io.random_accesses) << p.name;
    EXPECT_EQ(p.io.simulated_micros, q->io.simulated_micros) << p.name;
  }
}

TEST(ObsIdentityTest, SimulatedIoBitIdenticalTraceOnOffSerial) {
  BulkDeleteReport off = RunTracedDelete(1, /*trace_spans=*/false);
  BulkDeleteReport on = RunTracedDelete(1, /*trace_spans=*/true);
  ExpectSameSimulatedIo(off, on);
}

TEST(ObsIdentityTest, SimulatedIoBitIdenticalTraceOnOffParallel) {
  BulkDeleteReport off = RunTracedDelete(4, /*trace_spans=*/false);
  BulkDeleteReport on = RunTracedDelete(4, /*trace_spans=*/true);
  ExpectSameSimulatedIo(off, on);
}

TEST(ObsIdentityTest, UntracedRunStillCountsClockFreeMetrics) {
  // Counters and count-valued histograms stay live with tracing off (they
  // read no clock); latency histograms must stay empty.
  BulkDeleteReport report = RunTracedDelete(1, /*trace_spans=*/false);
  EXPECT_GT(report.metrics.CounterOr(obs::metric_names::kSchedPhasesDispatched),
            0);
  const obs::HistogramSnapshot* fetch =
      report.metrics.FindHistogram(obs::metric_names::kBpFetchNs);
  ASSERT_NE(fetch, nullptr);
  EXPECT_EQ(fetch->count, 0);
  const obs::HistogramSnapshot* depth =
      report.metrics.FindHistogram(obs::metric_names::kSchedQueueDepth);
  ASSERT_NE(depth, nullptr);
  EXPECT_GT(depth->count, 0);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition (/metrics)
// ---------------------------------------------------------------------------

TEST(ExpositionTest, MetricNameSanitizes) {
  EXPECT_EQ(obs::PrometheusMetricName("bp.fetch_ns"), "bulkdel_bp_fetch_ns");
  EXPECT_EQ(obs::PrometheusMetricName("net.bytes_in"),
            "bulkdel_net_bytes_in");
  EXPECT_EQ(obs::PrometheusMetricName("weird-name!"), "bulkdel_weird_name_");
}

TEST(ExpositionTest, RendersCountersGaugesAndCumulativeHistograms) {
  obs::MetricsRegistry registry;
  registry.counter(obs::metric_names::kWalSyncs)->Add(5);
  registry.gauge(obs::metric_names::kNetConns)->Set(3);
  obs::Histogram* h = registry.histogram(obs::metric_names::kWalSyncRecords);
  h->Observe(0);  // bucket 0
  h->Observe(3);  // bucket 2
  h->Observe(3);
  std::string text = obs::PrometheusText(registry.Snapshot(),
                                         {{"sessions_active", 7}});
  // Kinds recovered from the static metric table.
  EXPECT_NE(text.find("# TYPE bulkdel_wal_syncs counter\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("bulkdel_wal_syncs 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bulkdel_net_conns gauge\n"), std::string::npos);
  EXPECT_NE(text.find("bulkdel_net_conns 3\n"), std::string::npos);
  // Histogram buckets are cumulative with le = the log2 bucket's inclusive
  // upper bound, ending with +Inf == _count.
  EXPECT_NE(text.find("# TYPE bulkdel_wal_sync_records histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("bulkdel_wal_sync_records_bucket{le=\"0\"} 1\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("bulkdel_wal_sync_records_bucket{le=\"3\"} 3\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("bulkdel_wal_sync_records_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("bulkdel_wal_sync_records_sum 6\n"), std::string::npos);
  EXPECT_NE(text.find("bulkdel_wal_sync_records_count 3\n"),
            std::string::npos);
  // Process-level series outside the registry ride along as gauges.
  EXPECT_NE(text.find("# TYPE bulkdel_sessions_active gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("bulkdel_sessions_active 7\n"), std::string::npos);
  // No line is emitted twice (duplicate series break Prometheus ingestion).
  std::set<std::string> seen;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string line = text.substr(pos, eol - pos);
    EXPECT_TRUE(seen.insert(line).second) << "duplicate line: " << line;
    pos = eol + 1;
  }
}

// ---------------------------------------------------------------------------
// Statement registry (sys.sessions / sys.statements backing store)
// ---------------------------------------------------------------------------

struct StatementRegistryGuard {
  StatementRegistryGuard() { obs::StatementRegistry::Global().Reset(); }
  ~StatementRegistryGuard() { obs::StatementRegistry::Global().Reset(); }
};

TEST(StatementRegistryTest, SessionAndStatementLifecycle) {
  StatementRegistryGuard guard;
  obs::StatementRegistry& reg = obs::StatementRegistry::Global();
  obs::MetricsRegistry metrics;

  uint64_t session = reg.RegisterSession("tcp:42");
  ASSERT_NE(session, 0u);
  EXPECT_EQ(reg.sessions_active(), 1);
  EXPECT_EQ(obs::StatementRegistry::CurrentThreadStatement(), 0u);

  metrics.counter(obs::metric_names::kWalSyncs)->Add(100);
  {
    obs::StatementScope scope(session, "DELETE FROM R WHERE A IN (1)",
                              &metrics);
    EXPECT_EQ(obs::StatementRegistry::CurrentThreadStatement(), scope.id());
    EXPECT_EQ(reg.statements_inflight(), 1);
    metrics.counter(obs::metric_names::kWalSyncs)->Add(3);  // statement work
    reg.SetPhase(scope.id(), "delete_index:R.A");

    std::vector<obs::StatementRow> rows = reg.Statements();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].id, scope.id());
    EXPECT_EQ(rows[0].session_id, session);
    EXPECT_FALSE(rows[0].finished);
    EXPECT_EQ(rows[0].phase, "delete_index:R.A");
    // Live delta covers only work since BeginStatement, not the baseline.
    EXPECT_EQ(rows[0].delta.CounterOr(obs::metric_names::kWalSyncs), 3);

    std::vector<obs::SessionRow> sessions = reg.Sessions();
    ASSERT_EQ(sessions.size(), 1u);
    EXPECT_EQ(sessions[0].peer, "tcp:42");
    EXPECT_EQ(sessions[0].inflight_statement, scope.id());
    scope.set_ok(true);
    scope.set_rows(1);
  }
  EXPECT_EQ(obs::StatementRegistry::CurrentThreadStatement(), 0u);
  EXPECT_EQ(reg.statements_inflight(), 0);

  // Finished row moved to the recent ring with its final delta frozen.
  metrics.counter(obs::metric_names::kWalSyncs)->Add(50);  // post-statement
  std::vector<obs::StatementRow> rows = reg.Statements();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].finished);
  EXPECT_TRUE(rows[0].ok);
  EXPECT_EQ(rows[0].rows, 1u);
  EXPECT_EQ(rows[0].delta.CounterOr(obs::metric_names::kWalSyncs), 3);
  EXPECT_EQ(reg.Sessions()[0].statements, 1u);
  EXPECT_EQ(reg.Sessions()[0].inflight_statement, 0u);

  reg.UnregisterSession(session);
  EXPECT_EQ(reg.sessions_active(), 0);
}

TEST(StatementRegistryTest, TextTruncationAndRecentRingBound) {
  StatementRegistryGuard guard;
  obs::StatementRegistry& reg = obs::StatementRegistry::Global();
  std::string huge(10000, 'x');
  {
    obs::StatementScope scope(0, huge, nullptr);
  }
  std::vector<obs::StatementRow> rows = reg.Statements();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].statement.size(),
            obs::StatementRegistry::kStatementTextCap);
  // The finished ring is bounded, newest first.
  for (int i = 0; i < 100; ++i) {
    obs::StatementScope scope(0, "stmt " + std::to_string(i), nullptr);
  }
  rows = reg.Statements();
  EXPECT_EQ(rows.size(), obs::StatementRegistry::kRecentStatements);
  EXPECT_EQ(rows[0].statement, "stmt 99");
}

TEST(StatementRegistryTest, NestedScopesAttributeToTheInnermost) {
  StatementRegistryGuard guard;
  obs::StatementScope outer(0, "outer", nullptr);
  {
    obs::StatementScope inner(0, "inner", nullptr);
    EXPECT_EQ(obs::StatementRegistry::CurrentThreadStatement(), inner.id());
  }
  EXPECT_EQ(obs::StatementRegistry::CurrentThreadStatement(), outer.id());
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

TEST(SlowQueryLogTest, ThresholdAppendAndDisabledStates) {
  std::string path = ::testing::TempDir() + "/slow_query_log_test.jsonl";
  std::remove(path.c_str());
  {
    obs::SlowQueryLog log(path, 1000);
    ASSERT_TRUE(log.enabled()) << log.open_status().ToString();
    EXPECT_FALSE(log.Exceeds(1000));  // strictly greater-than
    EXPECT_TRUE(log.Exceeds(1001));
    EXPECT_TRUE(log.Append("{\"a\": 1}").ok());
    EXPECT_TRUE(log.Append("{\"a\": 2}").ok());
    EXPECT_EQ(log.records(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(json::Parse(line).ok()) << line;
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());

  // threshold <= 0 disables capture entirely.
  obs::SlowQueryLog off(path, 0);
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.Exceeds(INT64_MAX));
  EXPECT_EQ(off.Append("{}").code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Identity: the statement-attribution plane (registry + phase publication)
// must not perturb simulated I/O either — same invariant as tracing.
// ---------------------------------------------------------------------------

BulkDeleteReport RunPlaneDelete(int exec_threads, bool plane) {
  StatementRegistryGuard guard;
  DatabaseOptions options;
  options.memory_budget_bytes = 4ull << 20;
  options.exec_threads = exec_threads;
  auto db = *Database::Create(options);

  WorkloadSpec spec;
  spec.n_tuples = 10000;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A", "B", "C"});

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.15, 42);

  obs::StatementRegistry& reg = obs::StatementRegistry::Global();
  BulkDeleteReport out;
  if (plane) {
    uint64_t session = reg.RegisterSession("test");
    obs::StatementScope scope(session, "DELETE (plane identity)",
                              &db->metrics());
    Result<BulkDeleteReport> report =
        db->BulkDelete(bd, Strategy::kVerticalSortMerge);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    if (report.ok()) out = *report;
    // While the scope is open, sys.statements shows the statement in flight
    // with the last executor phase and a live metrics delta.
    std::vector<obs::StatementRow> rows = reg.Statements();
    EXPECT_EQ(rows.size(), 1u);
    if (!rows.empty()) {
      EXPECT_EQ(rows[0].id, scope.id());
      EXPECT_FALSE(rows[0].finished);
      EXPECT_FALSE(rows[0].phase.empty());  // PhaseScope published via tls
      EXPECT_GT(rows[0].delta.CounterOr(
                    obs::metric_names::kSchedPhasesDispatched), 0);
    }
    reg.UnregisterSession(session);
  } else {
    Result<BulkDeleteReport> report =
        db->BulkDelete(bd, Strategy::kVerticalSortMerge);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    if (report.ok()) out = *report;
  }
  return out;
}

TEST(ObsIdentityTest, SimulatedIoBitIdenticalPlaneOnOffSerial) {
  BulkDeleteReport off = RunPlaneDelete(1, /*plane=*/false);
  BulkDeleteReport on = RunPlaneDelete(1, /*plane=*/true);
  ExpectSameSimulatedIo(off, on);
}

TEST(ObsIdentityTest, SimulatedIoBitIdenticalPlaneOnOffParallel) {
  BulkDeleteReport off = RunPlaneDelete(4, /*plane=*/false);
  BulkDeleteReport on = RunPlaneDelete(4, /*plane=*/true);
  ExpectSameSimulatedIo(off, on);
}

TEST(ObsExplainTest, ExplainListsMetricsAndTraceCategories) {
  DatabaseOptions options;
  options.memory_budget_bytes = 1ull << 20;
  auto db = *Database::Create(options);
  WorkloadSpec spec;
  spec.n_tuples = 2000;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A", "B"});
  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.10, 7);
  auto plan = db->ExplainBulkDelete(bd, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string text = plan->Explain();
  EXPECT_NE(text.find("metrics:"), std::string::npos) << text;
  EXPECT_NE(text.find(obs::metric_names::kBpFetchNs), std::string::npos)
      << text;
  EXPECT_NE(text.find("trace categories:"), std::string::npos) << text;
  EXPECT_NE(text.find("pool"), std::string::npos) << text;
}

}  // namespace
}  // namespace bulkdel

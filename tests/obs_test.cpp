// Observability subsystem tests: metrics registry semantics (log2 bucket
// boundaries, snapshot deltas), the lock-free trace recorder (enable gating,
// multi-thread export, bounded drops), report JSON round-trip including the
// metrics snapshot, and the headline acceptance criterion — simulated I/O is
// bit-identical with tracing on or off, serial and parallel.

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "core/database.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "util/json.h"
#include "workload/generator.h"

namespace bulkdel {
namespace {

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, HistogramBucketBoundaries) {
  // Bucket b holds values of bit width b: 0 -> 0, [2^(b-1), 2^b) -> b.
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0);
  EXPECT_EQ(obs::Histogram::BucketOf(1), 1);
  EXPECT_EQ(obs::Histogram::BucketOf(2), 2);
  EXPECT_EQ(obs::Histogram::BucketOf(3), 2);
  EXPECT_EQ(obs::Histogram::BucketOf(4), 3);
  EXPECT_EQ(obs::Histogram::BucketOf(7), 3);
  EXPECT_EQ(obs::Histogram::BucketOf(8), 4);
  EXPECT_EQ(obs::Histogram::BucketOf((int64_t{1} << 40) - 1), 40);
  EXPECT_EQ(obs::Histogram::BucketOf(int64_t{1} << 40), 41);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(3), 7);
}

TEST(MetricsTest, HistogramObserveSnapshotAndQuantile) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.histogram("test.h");
  for (int i = 0; i < 90; ++i) h->Observe(3);    // bucket 2
  for (int i = 0; i < 10; ++i) h->Observe(100);  // bucket 7
  h->Observe(-5);                                // clamps to 0, bucket 0

  obs::MetricsSnapshot snap = registry.Snapshot();
  const obs::HistogramSnapshot* s = snap.FindHistogram("test.h");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 101);
  EXPECT_EQ(s->sum, 90 * 3 + 10 * 100);
  ASSERT_EQ(s->buckets.size(), 8u);  // trailing zeros trimmed
  EXPECT_EQ(s->buckets[0], 1);
  EXPECT_EQ(s->buckets[2], 90);
  EXPECT_EQ(s->buckets[7], 10);
  // Quantiles resolve to the containing bucket's upper bound.
  EXPECT_EQ(s->ApproxQuantile(0.5), 3);
  EXPECT_EQ(s->ApproxQuantile(0.99), 127);
}

TEST(MetricsTest, SnapshotDeltaIsPerStatement) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter(obs::metric_names::kWalSyncs);
  obs::Histogram* h = registry.histogram(obs::metric_names::kWalSyncRecords);
  c->Add(5);
  h->Observe(16);
  obs::MetricsSnapshot before = registry.Snapshot();
  c->Add(3);
  h->Observe(16);
  h->Observe(17);
  obs::MetricsSnapshot delta = registry.Snapshot() - before;
  EXPECT_EQ(delta.CounterOr(obs::metric_names::kWalSyncs), 3);
  const obs::HistogramSnapshot* hs =
      delta.FindHistogram(obs::metric_names::kWalSyncRecords);
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 2);
  EXPECT_EQ(hs->sum, 33);
}

TEST(MetricsTest, RegistryPointersAreStableAndKindsDoNotAlias) {
  obs::MetricsRegistry registry;
  obs::Counter* c1 = registry.counter("same.name");
  obs::Histogram* h1 = registry.histogram("same.name");
  EXPECT_EQ(registry.counter("same.name"), c1);
  EXPECT_EQ(registry.histogram("same.name"), h1);
  // All known metrics are pre-registered so two registries' snapshots are
  // positionally comparable.
  obs::MetricsRegistry other;
  obs::MetricsSnapshot a = other.Snapshot();
  for (const obs::MetricInfo& info : obs::KnownMetrics()) {
    bool found = false;
    for (const auto& [name, value] : a.counters) found |= name == info.name;
    for (const auto& h : a.histograms) found |= h.name == info.name;
    EXPECT_TRUE(found) << info.name;
  }
}

// ---------------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------------

/// The recorder is process-global; tests restore the disabled/empty state.
struct RecorderGuard {
  RecorderGuard() {
    obs::TraceRecorder::Global().SetEnabled(false);
    obs::TraceRecorder::Global().Reset();
  }
  ~RecorderGuard() {
    obs::TraceRecorder::Global().SetEnabled(false);
    obs::TraceRecorder::Global().Reset();
    obs::TraceRecorder::Global().SetThreadCapacity(
        obs::TraceRecorder::kDefaultCapacity);
  }
};

TEST(TraceRecorderTest, DisabledRecordsNothing) {
  RecorderGuard guard;
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.RecordInstant(obs::TraceCategory::kPool, "nope");
  recorder.RecordComplete(obs::TraceCategory::kPhase, "nope", 1, 2);
  { obs::TraceSpan span(obs::TraceCategory::kWal, "nope"); }
  EXPECT_EQ(recorder.EventCount(), 0u);
}

TEST(TraceRecorderTest, MultiThreadRecordingExportsParsableChromeTrace) {
  RecorderGuard guard;
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.SetEnabled(true);
  constexpr int kThreads = 4, kEventsPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        int64_t now = MonotonicNanos();
        recorder.RecordComplete(obs::TraceCategory::kPhase, "span", now - 100,
                                now, "items", i, "parent-label");
        recorder.RecordInstant(obs::TraceCategory::kPool, "tick", "n", t);
      }
    });
  }
  for (auto& t : threads) t.join();
  recorder.SetEnabled(false);
  EXPECT_EQ(recorder.EventCount(),
            static_cast<uint64_t>(kThreads * kEventsPerThread * 2));
  EXPECT_EQ(recorder.DroppedCount(), 0u);

  auto parsed = json::Parse(recorder.ToChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, json::Value::Kind::kArray);
  int spans = 0, instants = 0, lanes = 0;
  int64_t last_ts_int = -1;
  for (const json::Value& e : events->array) {
    std::string ph = e.StringOr("ph");
    if (ph == "M") {
      ++lanes;
      continue;
    }
    if (ph == "X") {
      ++spans;
      const json::Value* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->StringOr("parent"), "parent-label");
    } else if (ph == "i") {
      ++instants;
    }
    // Export is globally time-sorted (micros may repeat).
    int64_t ts = e.IntOr("ts");
    EXPECT_GE(ts, last_ts_int);
    last_ts_int = ts;
  }
  EXPECT_EQ(spans, kThreads * kEventsPerThread);
  EXPECT_EQ(instants, kThreads * kEventsPerThread);
  EXPECT_GE(lanes, 1);  // one thread_name record per lane
}

TEST(TraceRecorderTest, FullRingDropsNewestAndCounts) {
  RecorderGuard guard;
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  // Capacity clamps to one chunk; a fresh thread registering below gets it.
  recorder.SetThreadCapacity(1);
  constexpr uint64_t kCapacity = obs::TraceRecorder::kChunkEvents;
  constexpr uint64_t kWrites = kCapacity + 500;
  recorder.SetEnabled(true);
  std::thread writer([&recorder] {
    for (uint64_t i = 0; i < kWrites; ++i) {
      recorder.RecordInstant(obs::TraceCategory::kDisk, "w");
    }
  });
  writer.join();
  recorder.SetEnabled(false);
  EXPECT_EQ(recorder.DroppedCount(), kWrites - kCapacity);
  EXPECT_GE(recorder.EventCount(), kCapacity);
}

// ---------------------------------------------------------------------------
// Report round-trip including metrics
// ---------------------------------------------------------------------------

TEST(ObsReportJsonTest, MetricsSnapshotRoundTrips) {
  BulkDeleteReport report;
  report.strategy_used = Strategy::kVerticalSortMerge;
  report.rows_deleted = 7;
  report.metrics.counters = {{"wal.syncs", 4}, {"ckpt.inline", 2}};
  obs::HistogramSnapshot h;
  h.name = "bp.fetch_ns";
  h.count = 3;
  h.sum = 1234;
  h.buckets = {0, 1, 0, 2};
  report.metrics.histograms.push_back(h);

  auto round = BulkDeleteReport::FromJson(report.ToJson());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->rows_deleted, 7u);
  EXPECT_TRUE(round->metrics == report.metrics);
  // And a second serialize is byte-identical (stable emitter).
  EXPECT_EQ(round->ToJson(), report.ToJson());
}

// ---------------------------------------------------------------------------
// Identity: simulated I/O is a function of page accesses only — tracing and
// metrics never perturb it (tier-1 acceptance criterion for this subsystem).
// ---------------------------------------------------------------------------

BulkDeleteReport RunTracedDelete(int exec_threads, bool trace_spans) {
  RecorderGuard guard;  // each run starts from a clean, disabled recorder
  DatabaseOptions options;
  options.memory_budget_bytes = 4ull << 20;
  options.exec_threads = exec_threads;
  options.trace_spans = trace_spans;
  auto db = *Database::Create(options);

  WorkloadSpec spec;
  spec.n_tuples = 10000;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A", "B", "C"});

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.15, 42);
  auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (trace_spans) {
    // The traced run actually recorded spans (the flag is live) ...
    EXPECT_GT(obs::TraceRecorder::Global().EventCount(), 0u);
    // ... and its latency histograms populated into the report delta.
    const obs::HistogramSnapshot* fetch =
        report->metrics.FindHistogram(obs::metric_names::kBpFetchNs);
    EXPECT_NE(fetch, nullptr);
    if (fetch != nullptr) EXPECT_GT(fetch->count, 0);
  }
  return report.ok() ? *report : BulkDeleteReport{};
}

const PhaseStats* FindPhase(const BulkDeleteReport& report,
                            const std::string& name) {
  for (const PhaseStats& p : report.phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

void ExpectSameSimulatedIo(const BulkDeleteReport& off,
                           const BulkDeleteReport& on) {
  EXPECT_EQ(off.rows_deleted, on.rows_deleted);
  EXPECT_EQ(off.index_entries_deleted, on.index_entries_deleted);
  EXPECT_EQ(off.io.reads, on.io.reads);
  EXPECT_EQ(off.io.writes, on.io.writes);
  EXPECT_EQ(off.io.sequential_accesses, on.io.sequential_accesses);
  EXPECT_EQ(off.io.random_accesses, on.io.random_accesses);
  EXPECT_EQ(off.io.simulated_micros, on.io.simulated_micros);
  ASSERT_EQ(off.phases.size(), on.phases.size());
  for (const PhaseStats& p : off.phases) {
    const PhaseStats* q = FindPhase(on, p.name);
    ASSERT_NE(q, nullptr) << p.name;
    EXPECT_EQ(p.items, q->items) << p.name;
    EXPECT_EQ(p.io.reads, q->io.reads) << p.name;
    EXPECT_EQ(p.io.writes, q->io.writes) << p.name;
    EXPECT_EQ(p.io.sequential_accesses, q->io.sequential_accesses) << p.name;
    EXPECT_EQ(p.io.random_accesses, q->io.random_accesses) << p.name;
    EXPECT_EQ(p.io.simulated_micros, q->io.simulated_micros) << p.name;
  }
}

TEST(ObsIdentityTest, SimulatedIoBitIdenticalTraceOnOffSerial) {
  BulkDeleteReport off = RunTracedDelete(1, /*trace_spans=*/false);
  BulkDeleteReport on = RunTracedDelete(1, /*trace_spans=*/true);
  ExpectSameSimulatedIo(off, on);
}

TEST(ObsIdentityTest, SimulatedIoBitIdenticalTraceOnOffParallel) {
  BulkDeleteReport off = RunTracedDelete(4, /*trace_spans=*/false);
  BulkDeleteReport on = RunTracedDelete(4, /*trace_spans=*/true);
  ExpectSameSimulatedIo(off, on);
}

TEST(ObsIdentityTest, UntracedRunStillCountsClockFreeMetrics) {
  // Counters and count-valued histograms stay live with tracing off (they
  // read no clock); latency histograms must stay empty.
  BulkDeleteReport report = RunTracedDelete(1, /*trace_spans=*/false);
  EXPECT_GT(report.metrics.CounterOr(obs::metric_names::kSchedPhasesDispatched),
            0);
  const obs::HistogramSnapshot* fetch =
      report.metrics.FindHistogram(obs::metric_names::kBpFetchNs);
  ASSERT_NE(fetch, nullptr);
  EXPECT_EQ(fetch->count, 0);
  const obs::HistogramSnapshot* depth =
      report.metrics.FindHistogram(obs::metric_names::kSchedQueueDepth);
  ASSERT_NE(depth, nullptr);
  EXPECT_GT(depth->count, 0);
}

TEST(ObsExplainTest, ExplainListsMetricsAndTraceCategories) {
  DatabaseOptions options;
  options.memory_budget_bytes = 1ull << 20;
  auto db = *Database::Create(options);
  WorkloadSpec spec;
  spec.n_tuples = 2000;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A", "B"});
  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.10, 7);
  auto plan = db->ExplainBulkDelete(bd, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string text = plan->Explain();
  EXPECT_NE(text.find("metrics:"), std::string::npos) << text;
  EXPECT_NE(text.find(obs::metric_names::kBpFetchNs), std::string::npos)
      << text;
  EXPECT_NE(text.find("trace categories:"), std::string::npos) << text;
  EXPECT_NE(text.find("pool"), std::string::npos) << text;
}

}  // namespace
}  // namespace bulkdel

#include "btree/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "util/random.h"

namespace bulkdel {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : pool_(&disk_, 256 * kPageSize) {}

  /// Tiny fan-out so small tests exercise splits, multiple levels and
  /// free-at-empty cascades.
  BTree MakeSmallFanout(bool unique = false) {
    IndexOptions opts;
    opts.unique = unique;
    opts.max_leaf_entries = 4;
    opts.max_inner_entries = 4;
    return *BTree::Create(&pool_, opts);
  }

  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(BTreeTest, EmptyTree) {
  auto tree = *BTree::Create(&pool_);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.entry_count(), 0u);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  auto rids = tree.Search(42);
  ASSERT_TRUE(rids.ok());
  EXPECT_TRUE(rids->empty());
}

TEST_F(BTreeTest, InsertAndSearch) {
  auto tree = *BTree::Create(&pool_);
  for (int64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree.Insert(k, Rid(1, static_cast<uint16_t>(k % 100))).ok());
  }
  EXPECT_EQ(tree.entry_count(), 1000u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int64_t k : {0, 1, 499, 998, 999}) {
    auto rids = tree.Search(k);
    ASSERT_TRUE(rids.ok());
    ASSERT_EQ(rids->size(), 1u);
    EXPECT_EQ((*rids)[0].slot, static_cast<uint16_t>(k % 100));
  }
  EXPECT_TRUE(tree.Search(1000)->empty());
  EXPECT_TRUE(tree.Search(-1)->empty());
}

TEST_F(BTreeTest, SplitsGrowHeight) {
  auto tree = MakeSmallFanout();
  for (int64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(tree.Insert(k, Rid(1, 0)).ok());
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "after insert " << k;
  }
  EXPECT_GE(tree.height(), 4);
}

TEST_F(BTreeTest, ReverseAndAlternatingInsertOrders) {
  auto tree = MakeSmallFanout();
  for (int64_t k = 499; k >= 0; --k) ASSERT_TRUE(tree.Insert(k, Rid(1, 0)).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  int64_t prev = -1;
  ASSERT_TRUE(tree
                  .ScanAll([&](int64_t k, const Rid&, uint16_t) {
                    EXPECT_GT(k, prev);
                    prev = k;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(prev, 499);
}

TEST_F(BTreeTest, DuplicateKeysDifferentRids) {
  auto tree = MakeSmallFanout();
  for (uint16_t s = 0; s < 50; ++s) {
    ASSERT_TRUE(tree.Insert(7, Rid(1, s)).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  auto rids = tree.Search(7);
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 50u);
  // Exact composite duplicate rejected.
  EXPECT_EQ(tree.Insert(7, Rid(1, 3)).code(), StatusCode::kAlreadyExists);
  // Delete one specific (key, rid).
  ASSERT_TRUE(tree.Delete(7, Rid(1, 25)).ok());
  EXPECT_EQ(tree.Search(7)->size(), 49u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, UniqueIndexRejectsDuplicateKey) {
  auto tree = MakeSmallFanout(/*unique=*/true);
  for (int64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(tree.Insert(k, Rid(1, static_cast<uint16_t>(k))).ok());
  }
  for (int64_t k = 0; k < 200; ++k) {
    EXPECT_EQ(tree.Insert(k, Rid(2, 0)).code(), StatusCode::kAlreadyExists)
        << k;
  }
  // After deleting, the key becomes insertable again, even with a different
  // (larger or smaller) RID — the stale-separator edge case.
  ASSERT_TRUE(tree.Delete(100, Rid(1, 100)).ok());
  ASSERT_TRUE(tree.Insert(100, Rid(9999, 9)).ok());
  EXPECT_EQ(tree.Insert(100, Rid(0, 0)).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, TraditionalDeleteFreesEmptyPages) {
  auto tree = MakeSmallFanout();
  for (int64_t k = 0; k < 300; ++k) ASSERT_TRUE(tree.Insert(k, Rid(1, 0)).ok());
  uint32_t leaves_full = tree.num_leaves();
  for (int64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(tree.Delete(k, Rid(1, 0)).ok());
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "after delete " << k;
  }
  EXPECT_EQ(tree.entry_count(), 0u);
  EXPECT_EQ(tree.num_leaves(), 1u);  // collapsed back to an empty root leaf
  EXPECT_EQ(tree.height(), 1);
  EXPECT_LT(tree.num_leaves(), leaves_full);
  // Tree is reusable after total wipe.
  ASSERT_TRUE(tree.Insert(5, Rid(1, 1)).ok());
  EXPECT_EQ(tree.Search(5)->size(), 1u);
}

TEST_F(BTreeTest, DeleteNotFound) {
  auto tree = *BTree::Create(&pool_);
  ASSERT_TRUE(tree.Insert(1, Rid(1, 1)).ok());
  EXPECT_TRUE(tree.Delete(2, Rid(1, 1)).IsNotFound());
  EXPECT_TRUE(tree.Delete(1, Rid(1, 2)).IsNotFound());
  EXPECT_TRUE(tree.DeleteKey(99).IsNotFound());
}

TEST_F(BTreeTest, DeleteKeyReturnsRid) {
  auto tree = *BTree::Create(&pool_);
  ASSERT_TRUE(tree.Insert(10, Rid(3, 4)).ok());
  Rid rid;
  ASSERT_TRUE(tree.DeleteKey(10, &rid).ok());
  EXPECT_EQ(rid, Rid(3, 4));
  EXPECT_TRUE(tree.Search(10)->empty());
}

TEST_F(BTreeTest, RangeScan) {
  auto tree = MakeSmallFanout();
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree.Insert(k * 2, Rid(1, 0)).ok());  // even keys only
  }
  std::vector<int64_t> seen;
  ASSERT_TRUE(tree
                  .RangeScan(25, 51,
                             [&](int64_t k, const Rid&) {
                               seen.push_back(k);
                               return Status::OK();
                             })
                  .ok());
  std::vector<int64_t> expect;
  for (int64_t k = 26; k <= 50; k += 2) expect.push_back(k);
  EXPECT_EQ(seen, expect);
}

TEST_F(BTreeTest, BulkLoadMatchesIncrementalInsert) {
  std::vector<KeyRid> entries;
  for (int64_t k = 0; k < 5000; ++k) {
    entries.emplace_back(k * 3, Rid(static_cast<PageId>(k / 7 + 1),
                                    static_cast<uint16_t>(k % 7)));
  }
  auto tree = *BTree::Create(&pool_);
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  EXPECT_EQ(tree.entry_count(), entries.size());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  size_t i = 0;
  ASSERT_TRUE(tree
                  .ScanAll([&](int64_t k, const Rid& rid, uint16_t) {
                    EXPECT_EQ(k, entries[i].key);
                    EXPECT_EQ(rid, entries[i].rid);
                    ++i;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(i, entries.size());
  // Point lookups work on a bulk-loaded tree.
  EXPECT_EQ(tree.Search(3 * 1234)->size(), 1u);
  // Inserts after bulk load keep invariants.
  ASSERT_TRUE(tree.Insert(1, Rid(999, 0)).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, BulkLoadEmptyAndFillFactor) {
  auto tree = *BTree::Create(&pool_);
  ASSERT_TRUE(tree.BulkLoad({}).ok());
  EXPECT_EQ(tree.entry_count(), 0u);
  ASSERT_TRUE(tree.CheckInvariants().ok());

  std::vector<KeyRid> entries;
  for (int64_t k = 0; k < 2000; ++k) entries.emplace_back(k, Rid(1, 0));
  ASSERT_TRUE(tree.BulkLoad(entries, 1.0).ok());
  uint32_t leaves_full = tree.num_leaves();
  ASSERT_TRUE(tree.BulkLoad(entries, 0.5).ok());
  EXPECT_GT(tree.num_leaves(), leaves_full * 3 / 2);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_FALSE(tree.BulkLoad(entries, 1.5).ok());
  EXPECT_FALSE(tree.BulkLoad(entries, 0.0).ok());
}

TEST_F(BTreeTest, ConfigurableFanoutControlsHeight) {
  // The paper's Experiment 3: shrink the inner fan-out to raise the height.
  std::vector<KeyRid> entries;
  for (int64_t k = 0; k < 3000; ++k) entries.emplace_back(k, Rid(1, 0));

  IndexOptions wide;
  auto tree_wide = *BTree::Create(&pool_, wide);
  ASSERT_TRUE(tree_wide.BulkLoad(entries).ok());

  IndexOptions narrow;
  narrow.max_inner_entries = 4;
  auto tree_narrow = *BTree::Create(&pool_, narrow);
  ASSERT_TRUE(tree_narrow.BulkLoad(entries).ok());

  EXPECT_GT(tree_narrow.height(), tree_wide.height());
  ASSERT_TRUE(tree_narrow.CheckInvariants().ok());
}

TEST_F(BTreeTest, BulkDeleteSortedKeysBasic) {
  auto tree = *BTree::Create(&pool_);
  for (int64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(
        tree.Insert(k, Rid(static_cast<PageId>(k + 1), 0)).ok());
  }
  std::vector<int64_t> doomed;
  for (int64_t k = 0; k < 2000; k += 4) doomed.push_back(k);

  std::vector<Rid> deleted_rids;
  BtreeBulkDeleteStats stats;
  ASSERT_TRUE(tree.BulkDeleteSortedKeys(doomed, ReorgMode::kFreeAtEmpty,
                                        &deleted_rids, &stats)
                  .ok());
  EXPECT_EQ(stats.entries_deleted, doomed.size());
  EXPECT_EQ(deleted_rids.size(), doomed.size());
  EXPECT_EQ(tree.entry_count(), 2000u - doomed.size());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int64_t k : doomed) EXPECT_TRUE(tree.Search(k)->empty());
  EXPECT_EQ(tree.Search(1)->size(), 1u);
  // The deleted RIDs come back in key order: rid.page == key+1 ascending.
  for (size_t i = 1; i < deleted_rids.size(); ++i) {
    EXPECT_LT(deleted_rids[i - 1].page, deleted_rids[i].page);
  }
}

TEST_F(BTreeTest, BulkDeleteSortedKeysRemovesAllDuplicates) {
  auto tree = *BTree::Create(&pool_);
  for (int64_t k = 0; k < 100; ++k) {
    for (uint16_t s = 0; s < 5; ++s) {
      ASSERT_TRUE(tree.Insert(k, Rid(1, static_cast<uint16_t>(k * 8 + s))).ok());
    }
  }
  std::vector<int64_t> doomed = {10, 11, 50};
  BtreeBulkDeleteStats stats;
  ASSERT_TRUE(
      tree.BulkDeleteSortedKeys(doomed, ReorgMode::kFreeAtEmpty, nullptr, &stats)
          .ok());
  EXPECT_EQ(stats.entries_deleted, 15u);
  EXPECT_TRUE(tree.Search(10)->empty());
  EXPECT_TRUE(tree.Search(11)->empty());
  EXPECT_EQ(tree.Search(12)->size(), 5u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, BulkDeleteMissingKeysIsIdempotent) {
  auto tree = *BTree::Create(&pool_);
  for (int64_t k = 0; k < 100; ++k) ASSERT_TRUE(tree.Insert(k, Rid(1, 0)).ok());
  std::vector<int64_t> doomed = {-5, 10, 10000};
  BtreeBulkDeleteStats stats;
  ASSERT_TRUE(
      tree.BulkDeleteSortedKeys(doomed, ReorgMode::kFreeAtEmpty, nullptr, &stats)
          .ok());
  EXPECT_EQ(stats.entries_deleted, 1u);
  ASSERT_TRUE(
      tree.BulkDeleteSortedKeys(doomed, ReorgMode::kFreeAtEmpty, nullptr, &stats)
          .ok());
  EXPECT_EQ(stats.entries_deleted, 0u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, BulkDeleteEverything) {
  auto tree = MakeSmallFanout();
  std::vector<int64_t> all;
  for (int64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(tree.Insert(k, Rid(1, 0)).ok());
    all.push_back(k);
  }
  BtreeBulkDeleteStats stats;
  ASSERT_TRUE(
      tree.BulkDeleteSortedKeys(all, ReorgMode::kFreeAtEmpty, nullptr, &stats)
          .ok());
  EXPECT_EQ(tree.entry_count(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.num_leaves(), 1u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  ASSERT_TRUE(tree.Insert(1, Rid(1, 1)).ok());
  EXPECT_EQ(tree.Search(1)->size(), 1u);
}

TEST_F(BTreeTest, BulkDeleteSortedEntriesExactComposites) {
  auto tree = *BTree::Create(&pool_);
  for (int64_t k = 0; k < 100; ++k) {
    for (uint16_t s = 0; s < 3; ++s) {
      ASSERT_TRUE(tree.Insert(k, Rid(1, s)).ok());
    }
  }
  // Remove only the middle duplicate of some keys.
  std::vector<KeyRid> doomed;
  for (int64_t k = 0; k < 100; k += 10) doomed.emplace_back(k, Rid(1, 1));
  BtreeBulkDeleteStats stats;
  ASSERT_TRUE(tree.BulkDeleteSortedEntries(doomed, ReorgMode::kFreeAtEmpty,
                                           &stats)
                  .ok());
  EXPECT_EQ(stats.entries_deleted, doomed.size());
  EXPECT_EQ(tree.Search(0)->size(), 2u);
  EXPECT_EQ(tree.Search(1)->size(), 3u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, BulkDeleteByPredicateRidProbe) {
  auto tree = *BTree::Create(&pool_);
  for (int64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(
        tree.Insert(k, Rid(static_cast<PageId>(k % 10 + 1), 0)).ok());
  }
  // Hash-style probe: delete all entries pointing into pages {3, 7}.
  std::set<PageId> doomed_pages = {3, 7};
  BtreeBulkDeleteStats stats;
  ASSERT_TRUE(tree.BulkDeleteByPredicate(
                      [&](int64_t, const Rid& rid) {
                        return doomed_pages.count(rid.page) > 0;
                      },
                      ReorgMode::kFreeAtEmpty, &stats)
                  .ok());
  EXPECT_EQ(stats.entries_deleted, 200u);
  EXPECT_EQ(tree.entry_count(), 800u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, BulkDeleteByPredicateRangeBounded) {
  auto tree = *BTree::Create(&pool_);
  for (int64_t k = 0; k < 1000; ++k) ASSERT_TRUE(tree.Insert(k, Rid(1, 0)).ok());
  BtreeBulkDeleteStats stats;
  ASSERT_TRUE(tree.BulkDeleteByPredicate(
                      [](int64_t k, const Rid&) { return k % 2 == 0; },
                      ReorgMode::kFreeAtEmpty, &stats, 100, 199)
                  .ok());
  EXPECT_EQ(stats.entries_deleted, 50u);
  EXPECT_TRUE(tree.Search(100)->empty());
  EXPECT_EQ(tree.Search(98)->size(), 1u);   // below range survives
  EXPECT_EQ(tree.Search(200)->size(), 1u);  // above range survives
  EXPECT_LT(stats.leaves_visited, tree.num_leaves());  // bounded scan
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, UndeletableEntriesSurviveBulkDelete) {
  auto tree = *BTree::Create(&pool_);
  for (int64_t k = 0; k < 100; ++k) {
    uint16_t flags = (k == 50) ? BTreeNode::kEntryUndeletable : 0;
    ASSERT_TRUE(tree.Insert(k, Rid(1, static_cast<uint16_t>(k)), flags).ok());
  }
  std::vector<int64_t> doomed = {49, 50, 51};
  BtreeBulkDeleteStats stats;
  ASSERT_TRUE(
      tree.BulkDeleteSortedKeys(doomed, ReorgMode::kFreeAtEmpty, nullptr, &stats)
          .ok());
  EXPECT_EQ(stats.entries_deleted, 2u);
  EXPECT_EQ(stats.skipped_undeletable, 1u);
  EXPECT_EQ(tree.Search(50)->size(), 1u);
  // Bringing the index back on-line clears the markers.
  ASSERT_TRUE(tree.ClearUndeletableFlags().ok());
  ASSERT_TRUE(
      tree.BulkDeleteSortedKeys(doomed, ReorgMode::kFreeAtEmpty, nullptr, &stats)
          .ok());
  EXPECT_EQ(stats.entries_deleted, 1u);
  EXPECT_TRUE(tree.Search(50)->empty());
}

TEST_F(BTreeTest, ReopenFromMetaPage) {
  PageId meta;
  {
    auto tree = *BTree::Create(&pool_);
    meta = tree.meta_page();
    for (int64_t k = 0; k < 500; ++k)
      ASSERT_TRUE(tree.Insert(k, Rid(1, 0)).ok());
    ASSERT_TRUE(tree.FlushMeta().ok());
  }
  auto tree = BTree::Open(&pool_, meta);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->entry_count(), 500u);
  EXPECT_EQ(tree->Search(123)->size(), 1u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST_F(BTreeTest, DropReturnsAllPages) {
  uint32_t allocated_before = disk_.NumAllocatedPages();
  uint32_t free_before = disk_.NumFreePages();
  {
    auto tree = *BTree::Create(&pool_);
    for (int64_t k = 0; k < 2000; ++k)
      ASSERT_TRUE(tree.Insert(k, Rid(1, 0)).ok());
    ASSERT_TRUE(tree.Drop().ok());
  }
  uint32_t in_use_before = allocated_before - free_before;
  uint32_t in_use_after = disk_.NumAllocatedPages() - disk_.NumFreePages();
  EXPECT_EQ(in_use_after, in_use_before);
}

TEST_F(BTreeTest, MergeLookupSortedKeysReadOnly) {
  auto tree = *BTree::Create(&pool_);
  for (int64_t k = 0; k < 1000; ++k) {
    for (uint16_t s = 0; s < 2; ++s) {
      ASSERT_TRUE(tree.Insert(k, Rid(1, static_cast<uint16_t>(k * 2 + s))).ok());
    }
  }
  std::vector<int64_t> probes = {-10, 0, 5, 5, 999, 5000};
  // Note: duplicate probe keys are visited once per matching *entry* per
  // distinct probe position; the canonical use passes unique keys.
  std::vector<int64_t> unique_probes = {-10, 0, 5, 999, 5000};
  uint64_t visits = 0;
  ASSERT_TRUE(tree.MergeLookupSortedKeys(unique_probes,
                                         [&](int64_t, const Rid&) {
                                           ++visits;
                                           return Status::OK();
                                         })
                  .ok());
  EXPECT_EQ(visits, 6u);  // keys 0, 5, 999 × 2 duplicates
  auto count = tree.CountMatchingSortedKeys(unique_probes);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 6u);
  // Nothing was deleted.
  EXPECT_EQ(tree.entry_count(), 2000u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  (void)probes;
}

TEST_F(BTreeTest, BulkInsertSortedSmallAndLargeBatches) {
  auto tree = *BTree::Create(&pool_);
  // Large batch into an empty tree takes the point-insert path (no existing
  // entries to merge with).
  std::vector<KeyRid> base;
  for (int64_t k = 0; k < 2000; k += 2) base.emplace_back(k, Rid(1, 0));
  ASSERT_TRUE(tree.BulkInsertSorted(base).ok());
  EXPECT_EQ(tree.entry_count(), base.size());
  ASSERT_TRUE(tree.CheckInvariants().ok());

  // Large batch relative to tree size: merge-rebuild path.
  std::vector<KeyRid> odds;
  for (int64_t k = 1; k < 2000; k += 2) odds.emplace_back(k, Rid(1, 0));
  ASSERT_TRUE(tree.BulkInsertSorted(odds).ok());
  EXPECT_EQ(tree.entry_count(), 2000u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  int64_t expect = 0;
  ASSERT_TRUE(tree.ScanAll([&](int64_t k, const Rid&, uint16_t) {
                    EXPECT_EQ(k, expect++);
                    return Status::OK();
                  })
                  .ok());

  // Small batch: point-insert path.
  std::vector<KeyRid> few = {{5000, Rid(9, 0)}, {5001, Rid(9, 1)}};
  ASSERT_TRUE(tree.BulkInsertSorted(few).ok());
  EXPECT_EQ(tree.entry_count(), 2002u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, BulkInsertSortedRejectsDuplicates) {
  IndexOptions unique_opts;
  unique_opts.unique = true;
  auto tree = *BTree::Create(&pool_, unique_opts);
  std::vector<KeyRid> base;
  for (int64_t k = 0; k < 100; ++k) base.emplace_back(k, Rid(1, 0));
  ASSERT_TRUE(tree.BulkInsertSorted(base).ok());
  // A big batch colliding on key 50 must fail and leave the tree unchanged.
  std::vector<KeyRid> clash;
  for (int64_t k = 40; k < 90; ++k) clash.emplace_back(k + 10, Rid(2, 0));
  EXPECT_EQ(tree.BulkInsertSorted(clash).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(tree.entry_count(), 100u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, RecountFromScanRepairsMeta) {
  auto tree = MakeSmallFanout();
  for (int64_t k = 0; k < 300; ++k) ASSERT_TRUE(tree.Insert(k, Rid(1, 0)).ok());
  ASSERT_TRUE(tree.RecountFromScan().ok());
  EXPECT_EQ(tree.entry_count(), 300u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, LeafChainCoversAllLeaves) {
  auto tree = MakeSmallFanout();
  for (int64_t k = 0; k < 200; ++k) ASSERT_TRUE(tree.Insert(k, Rid(1, 0)).ok());
  auto chain = tree.LeafChain();
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->size(), tree.num_leaves());
}

}  // namespace
}  // namespace bulkdel

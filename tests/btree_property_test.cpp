// Property-style randomized testing of the B-link tree against a reference
// model (std::multimap over composite entries), across fan-outs, duplicate
// densities and reorganization modes.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "btree/btree.h"
#include "util/random.h"

namespace bulkdel {
namespace {

struct PropertyParam {
  uint16_t leaf_cap;     // 0 = page capacity
  uint16_t inner_cap;    // 0 = page capacity
  int key_space;         // duplicates density: smaller => more duplicates
  ReorgMode reorg;
  const char* name;
};

std::string ParamName(const ::testing::TestParamInfo<PropertyParam>& info) {
  return info.param.name;
}

class BTreePropertyTest : public ::testing::TestWithParam<PropertyParam> {
 protected:
  BTreePropertyTest() : pool_(&disk_, 512 * kPageSize) {}

  BTree MakeTree() {
    IndexOptions opts;
    opts.max_leaf_entries = GetParam().leaf_cap;
    opts.max_inner_entries = GetParam().inner_cap;
    return *BTree::Create(&pool_, opts);
  }

  /// Verifies the tree holds exactly the model's entries, in order.
  void ExpectMatchesModel(BTree& tree, const std::set<KeyRid>& model) {
    ASSERT_TRUE(tree.CheckInvariants().ok());
    ASSERT_EQ(tree.entry_count(), model.size());
    auto it = model.begin();
    Status s = tree.ScanAll([&](int64_t k, const Rid& rid, uint16_t) {
      if (it == model.end()) {
        return Status::Internal("tree has extra entries");
      }
      if (!(KeyRid(k, rid) == *it)) {
        return Status::Internal("tree/model mismatch at key " +
                                std::to_string(k));
      }
      ++it;
      return Status::OK();
    });
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_TRUE(it == model.end());
  }

  DiskManager disk_;
  BufferPool pool_;
};

TEST_P(BTreePropertyTest, RandomInsertDeleteInterleaving) {
  auto tree = MakeTree();
  std::set<KeyRid> model;
  Random rng(20260707);
  const int key_space = GetParam().key_space;

  for (int step = 0; step < 4000; ++step) {
    if (model.empty() || rng.Bernoulli(0.65)) {
      KeyRid e(rng.UniformInt(0, key_space - 1),
               Rid(static_cast<PageId>(rng.Uniform(50) + 1),
                   static_cast<uint16_t>(rng.Uniform(64))));
      Status s = tree.Insert(e.key, e.rid);
      if (model.count(e) > 0) {
        EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        model.insert(e);
      }
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(tree.Delete(it->key, it->rid).ok());
      model.erase(it);
    }
  }
  ExpectMatchesModel(tree, model);
}

TEST_P(BTreePropertyTest, BulkDeleteKeysMatchesModel) {
  auto tree = MakeTree();
  std::set<KeyRid> model;
  Random rng(777);
  const int key_space = GetParam().key_space;

  for (int i = 0; i < 3000; ++i) {
    KeyRid e(rng.UniformInt(0, key_space - 1),
             Rid(static_cast<PageId>(i / 32 + 1),
                 static_cast<uint16_t>(i % 32)));
    if (model.insert(e).second) {
      ASSERT_TRUE(tree.Insert(e.key, e.rid).ok());
    }
  }

  // Several successive bulk deletes of random key subsets.
  for (int round = 0; round < 4; ++round) {
    std::set<int64_t> doomed_set;
    for (int i = 0; i < key_space / 5; ++i) {
      doomed_set.insert(rng.UniformInt(0, key_space - 1));
    }
    std::vector<int64_t> doomed(doomed_set.begin(), doomed_set.end());

    uint64_t expect_deleted = 0;
    for (auto it = model.begin(); it != model.end();) {
      if (doomed_set.count(it->key) > 0) {
        it = model.erase(it);
        ++expect_deleted;
      } else {
        ++it;
      }
    }

    BtreeBulkDeleteStats stats;
    ASSERT_TRUE(
        tree.BulkDeleteSortedKeys(doomed, GetParam().reorg, nullptr, &stats)
            .ok());
    EXPECT_EQ(stats.entries_deleted, expect_deleted) << "round " << round;
    ExpectMatchesModel(tree, model);
  }
}

TEST_P(BTreePropertyTest, BulkDeleteEntriesMatchesModel) {
  auto tree = MakeTree();
  std::set<KeyRid> model;
  Random rng(991);
  const int key_space = GetParam().key_space;

  for (int i = 0; i < 3000; ++i) {
    KeyRid e(rng.UniformInt(0, key_space - 1),
             Rid(static_cast<PageId>(i / 32 + 1),
                 static_cast<uint16_t>(i % 32)));
    if (model.insert(e).second) {
      ASSERT_TRUE(tree.Insert(e.key, e.rid).ok());
    }
  }
  // Delete a random half of the exact composite entries.
  std::vector<KeyRid> doomed;
  for (const KeyRid& e : model) {
    if (rng.Bernoulli(0.5)) doomed.push_back(e);
  }
  for (const KeyRid& e : doomed) model.erase(e);

  BtreeBulkDeleteStats stats;
  ASSERT_TRUE(
      tree.BulkDeleteSortedEntries(doomed, GetParam().reorg, &stats).ok());
  EXPECT_EQ(stats.entries_deleted, doomed.size());
  ExpectMatchesModel(tree, model);

  // Inserting after a reorganized bulk delete keeps invariants.
  for (int i = 0; i < 200; ++i) {
    KeyRid e(rng.UniformInt(0, key_space - 1),
             Rid(static_cast<PageId>(1000 + i), 0));
    if (model.insert(e).second) {
      ASSERT_TRUE(tree.Insert(e.key, e.rid).ok());
    }
  }
  ExpectMatchesModel(tree, model);
}

TEST_P(BTreePropertyTest, BulkDeleteByRidPredicateMatchesModel) {
  auto tree = MakeTree();
  std::set<KeyRid> model;
  Random rng(1234);
  const int key_space = GetParam().key_space;

  for (int i = 0; i < 3000; ++i) {
    KeyRid e(rng.UniformInt(0, key_space - 1),
             Rid(static_cast<PageId>(rng.Uniform(100) + 1),
                 static_cast<uint16_t>(rng.Uniform(16))));
    if (model.insert(e).second) {
      ASSERT_TRUE(tree.Insert(e.key, e.rid).ok());
    }
  }
  // Probe by RID set, like the classic-hash plan.
  std::set<uint64_t> rid_set;
  for (const KeyRid& e : model) {
    if (rng.Bernoulli(0.3)) rid_set.insert(e.rid.Pack());
  }
  uint64_t expect = 0;
  for (auto it = model.begin(); it != model.end();) {
    if (rid_set.count(it->rid.Pack()) > 0) {
      it = model.erase(it);
      ++expect;
    } else {
      ++it;
    }
  }
  BtreeBulkDeleteStats stats;
  ASSERT_TRUE(tree.BulkDeleteByPredicate(
                      [&](int64_t, const Rid& rid) {
                        return rid_set.count(rid.Pack()) > 0;
                      },
                      GetParam().reorg, &stats)
                  .ok());
  EXPECT_EQ(stats.entries_deleted, expect);
  ExpectMatchesModel(tree, model);
}

TEST_P(BTreePropertyTest, ReorgModesPreserveContentAndImprovePacking) {
  auto tree = MakeTree();
  std::set<KeyRid> model;
  for (int64_t k = 0; k < 4000; ++k) {
    KeyRid e(k, Rid(1, 0));
    model.insert(e);
    ASSERT_TRUE(tree.Insert(e.key, e.rid).ok());
  }
  uint32_t leaves_before = tree.num_leaves();

  // Delete 70% of entries so leaves get sparse.
  std::vector<int64_t> doomed;
  for (int64_t k = 0; k < 4000; ++k) {
    if (k % 10 < 7) {
      doomed.push_back(k);
      model.erase(KeyRid(k, Rid(1, 0)));
    }
  }
  BtreeBulkDeleteStats stats;
  ASSERT_TRUE(
      tree.BulkDeleteSortedKeys(doomed, GetParam().reorg, nullptr, &stats).ok());
  ExpectMatchesModel(tree, model);

  if (GetParam().reorg != ReorgMode::kFreeAtEmpty) {
    // Compaction must shrink the leaf level substantially.
    EXPECT_LT(tree.num_leaves(), leaves_before / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreePropertyTest,
    ::testing::Values(
        PropertyParam{4, 4, 500, ReorgMode::kFreeAtEmpty, "TinyFanoutFreeAtEmpty"},
        PropertyParam{4, 4, 500, ReorgMode::kCompactAndRebuild,
                      "TinyFanoutCompact"},
        PropertyParam{4, 4, 500, ReorgMode::kIncrementalBaseNode,
                      "TinyFanoutIncremental"},
        PropertyParam{16, 8, 200, ReorgMode::kFreeAtEmpty,
                      "SmallFanoutManyDuplicates"},
        PropertyParam{16, 8, 1000000, ReorgMode::kCompactAndRebuild,
                      "SmallFanoutUniqueKeys"},
        PropertyParam{0, 0, 5000, ReorgMode::kFreeAtEmpty,
                      "PageFanoutFreeAtEmpty"},
        PropertyParam{0, 0, 5000, ReorgMode::kIncrementalBaseNode,
                      "PageFanoutIncremental"}),
    ParamName);

}  // namespace
}  // namespace bulkdel

// Guttman R-tree (future work §5) — unit and property tests, including the
// one-pass RID-probing bulk delete.

#include "rtree/rtree.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "util/random.h"

namespace bulkdel {
namespace {

class RTreeTest : public ::testing::Test {
 protected:
  RTreeTest() : pool_(&disk_, 2048 * kPageSize) {}

  static Rect RandomRect(Random* rng, int64_t space = 100000,
                         int64_t max_extent = 100) {
    int64_t x = rng->UniformInt(0, space);
    int64_t y = rng->UniformInt(0, space);
    return Rect{x, y, x + rng->UniformInt(0, max_extent),
                y + rng->UniformInt(0, max_extent)};
  }

  DiskManager disk_;
  BufferPool pool_;
};

TEST(RectTest, GeometryBasics) {
  Rect a{0, 0, 10, 10};
  Rect b{5, 5, 15, 15};
  Rect c{11, 11, 12, 12};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(Rect{1, 1, 9, 9}));
  EXPECT_FALSE(a.Contains(b));
  EXPECT_EQ(a.Union(c).x2, 12);
  EXPECT_DOUBLE_EQ(a.Area(), 100.0);
  EXPECT_DOUBLE_EQ(a.EnlargementTo(Rect{0, 0, 20, 10}), 100.0);
  EXPECT_TRUE(Rect::Point(3, 4).Contains(Rect::Point(3, 4)));
}

TEST_F(RTreeTest, InsertAndSearch) {
  auto tree = *RTree::Create(&pool_);
  for (int64_t i = 0; i < 2000; ++i) {
    Rect r = Rect::Point(i * 10, i * 10);
    ASSERT_TRUE(tree.Insert(r, Rid(static_cast<PageId>(i + 1), 0)).ok()) << i;
  }
  EXPECT_EQ(tree.entry_count(), 2000u);
  EXPECT_GT(tree.height(), 1);
  ASSERT_TRUE(tree.CheckInvariants().ok());

  // Window query.
  std::set<int64_t> hits;
  ASSERT_TRUE(tree.SearchIntersect(Rect{100, 100, 200, 200},
                                   [&](const Rect& r, const Rid&) {
                                     hits.insert(r.x1);
                                     return Status::OK();
                                   })
                  .ok());
  // Points 10i with 100 <= 10i <= 200: i in [10, 20].
  EXPECT_EQ(hits.size(), 11u);
}

TEST_F(RTreeTest, TraditionalDelete) {
  auto tree = *RTree::Create(&pool_);
  Random rng(1);
  std::vector<std::pair<Rect, Rid>> entries;
  for (int i = 0; i < 3000; ++i) {
    Rect r = RandomRect(&rng);
    Rid rid(static_cast<PageId>(i + 1), static_cast<uint16_t>(i % 4));
    entries.push_back({r, rid});
    ASSERT_TRUE(tree.Insert(r, rid).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int i = 0; i < 3000; i += 2) {
    ASSERT_TRUE(tree.Delete(entries[i].first, entries[i].second).ok()) << i;
  }
  EXPECT_EQ(tree.entry_count(), 1500u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_TRUE(tree.Delete(entries[0].first, entries[0].second).IsNotFound());
  // Survivors still findable.
  uint64_t found = 0;
  ASSERT_TRUE(tree.ScanAll([&](const Rect&, const Rid&) {
                    ++found;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(found, 1500u);
}

TEST_F(RTreeTest, DeleteEverythingCollapsesTree) {
  auto tree = *RTree::Create(&pool_);
  Random rng(2);
  std::vector<std::pair<Rect, Rid>> entries;
  for (int i = 0; i < 1000; ++i) {
    Rect r = RandomRect(&rng);
    Rid rid(static_cast<PageId>(i + 1), 0);
    entries.push_back({r, rid});
    ASSERT_TRUE(tree.Insert(r, rid).ok());
  }
  for (auto& [r, rid] : entries) {
    ASSERT_TRUE(tree.Delete(r, rid).ok());
  }
  EXPECT_EQ(tree.entry_count(), 0u);
  EXPECT_EQ(tree.height(), 1);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  // Reusable afterwards.
  ASSERT_TRUE(tree.Insert(Rect::Point(1, 1), Rid(1, 1)).ok());
  EXPECT_EQ(tree.entry_count(), 1u);
}

TEST_F(RTreeTest, BulkDeleteByRidsMatchesModel) {
  auto tree = *RTree::Create(&pool_);
  Random rng(3);
  std::map<uint64_t, Rect> model;  // packed rid -> rect
  for (int i = 0; i < 5000; ++i) {
    Rect r = RandomRect(&rng);
    Rid rid(static_cast<PageId>(i + 1), static_cast<uint16_t>(i % 8));
    model[rid.Pack()] = r;
    ASSERT_TRUE(tree.Insert(r, rid).ok());
  }
  std::vector<Rid> doomed;
  for (const auto& [packed, r] : model) {
    if (rng.Bernoulli(0.4)) doomed.push_back(Rid::Unpack(packed));
  }
  RtreeBulkDeleteStats stats;
  ASSERT_TRUE(tree.BulkDeleteByRids(doomed, &stats).ok());
  EXPECT_EQ(stats.entries_deleted, doomed.size());
  EXPECT_GT(stats.nodes_freed + 1, 0u);
  for (const Rid& rid : doomed) model.erase(rid.Pack());
  EXPECT_EQ(tree.entry_count(), model.size());
  ASSERT_TRUE(tree.CheckInvariants().ok());

  std::set<uint64_t> seen;
  ASSERT_TRUE(tree.ScanAll([&](const Rect& r, const Rid& rid) {
                    auto it = model.find(rid.Pack());
                    if (it == model.end() || !(it->second == r)) {
                      return Status::Internal("unexpected entry");
                    }
                    seen.insert(rid.Pack());
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen.size(), model.size());
}

TEST_F(RTreeTest, BulkDeleteAllAndIdempotence) {
  auto tree = *RTree::Create(&pool_);
  Random rng(4);
  std::vector<Rid> all;
  for (int i = 0; i < 2000; ++i) {
    Rid rid(static_cast<PageId>(i + 1), 0);
    all.push_back(rid);
    ASSERT_TRUE(tree.Insert(RandomRect(&rng), rid).ok());
  }
  RtreeBulkDeleteStats stats;
  ASSERT_TRUE(tree.BulkDeleteByRids(all, &stats).ok());
  EXPECT_EQ(stats.entries_deleted, 2000u);
  EXPECT_EQ(tree.entry_count(), 0u);
  EXPECT_EQ(tree.height(), 1);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  ASSERT_TRUE(tree.BulkDeleteByRids(all, &stats).ok());
  EXPECT_EQ(stats.entries_deleted, 0u);
}

TEST_F(RTreeTest, BulkDeleteVisitsEachNodeOnce) {
  auto tree = *RTree::Create(&pool_);
  Random rng(5);
  std::vector<Rid> rids;
  for (int i = 0; i < 5000; ++i) {
    Rid rid(static_cast<PageId>(i + 1), 0);
    rids.push_back(rid);
    ASSERT_TRUE(tree.Insert(RandomRect(&rng), rid).ok());
  }
  uint32_t nodes = tree.num_nodes();
  RtreeBulkDeleteStats stats;
  ASSERT_TRUE(tree.BulkDeleteByRids({rids.begin(), rids.begin() + 2500},
                                    &stats)
                  .ok());
  EXPECT_LE(stats.leaves_visited + stats.inner_visited, nodes);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(RTreeTest, ReopenFromMeta) {
  PageId meta;
  {
    auto tree = *RTree::Create(&pool_);
    meta = tree.meta_page();
    Random rng(6);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(
          tree.Insert(RandomRect(&rng), Rid(static_cast<PageId>(i + 1), 0))
              .ok());
    }
    ASSERT_TRUE(tree.FlushMeta().ok());
  }
  auto tree = RTree::Open(&pool_, meta);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->entry_count(), 1000u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST_F(RTreeTest, RandomizedAgainstBruteForce) {
  auto tree = *RTree::Create(&pool_);
  Random rng(7);
  std::vector<std::pair<Rect, Rid>> reference;
  for (int step = 0; step < 3000; ++step) {
    if (reference.empty() || rng.Bernoulli(0.7)) {
      Rect r = RandomRect(&rng, 10000, 500);
      Rid rid(static_cast<PageId>(step + 1), 0);
      reference.push_back({r, rid});
      ASSERT_TRUE(tree.Insert(r, rid).ok());
    } else {
      size_t i = rng.Uniform(reference.size());
      ASSERT_TRUE(
          tree.Delete(reference[i].first, reference[i].second).ok());
      reference.erase(reference.begin() + static_cast<long>(i));
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok());
    }
  }
  // Window queries agree with brute force.
  for (int q = 0; q < 20; ++q) {
    Rect window = RandomRect(&rng, 10000, 2000);
    std::set<uint64_t> expect;
    for (const auto& [r, rid] : reference) {
      if (r.Intersects(window)) expect.insert(rid.Pack());
    }
    std::set<uint64_t> got;
    ASSERT_TRUE(tree.SearchIntersect(window,
                                     [&](const Rect&, const Rid& rid) {
                                       got.insert(rid.Pack());
                                       return Status::OK();
                                     })
                    .ok());
    EXPECT_EQ(got, expect) << "query " << q;
  }
}

}  // namespace
}  // namespace bulkdel

// Grid file (future work §5) — unit and property tests including the
// cell-partitioned bulk delete.

#include "gridfile/grid_file.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "util/random.h"

namespace bulkdel {
namespace {

class GridFileTest : public ::testing::Test {
 protected:
  GridFileTest() : pool_(&disk_, 2048 * kPageSize) {}

  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(GridFileTest, EmptyGrid) {
  auto grid = *GridFile::Create(&pool_);
  EXPECT_EQ(grid.entry_count(), 0u);
  EXPECT_EQ(grid.num_cells(), 1u);
  ASSERT_TRUE(grid.CheckInvariants().ok());
  int hits = 0;
  ASSERT_TRUE(grid.ScanAll([&](int64_t, int64_t, const Rid&) {
                    ++hits;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(hits, 0);
}

TEST_F(GridFileTest, InsertSearchDelete) {
  auto grid = *GridFile::Create(&pool_);
  Random rng(1);
  std::vector<std::tuple<int64_t, int64_t, Rid>> entries;
  for (int i = 0; i < 5000; ++i) {
    int64_t x = rng.UniformInt(0, GridFile::kDomain - 1);
    int64_t y = rng.UniformInt(0, GridFile::kDomain - 1);
    Rid rid(static_cast<PageId>(i + 1), 0);
    entries.emplace_back(x, y, rid);
    ASSERT_TRUE(grid.Insert(x, y, rid).ok()) << i;
  }
  EXPECT_EQ(grid.entry_count(), 5000u);
  EXPECT_GT(grid.num_cells(), 1u);
  ASSERT_TRUE(grid.CheckInvariants().ok());

  // Exact-match via a degenerate range query.
  auto [x0, y0, rid0] = entries[1234];
  bool found = false;
  ASSERT_TRUE(grid.SearchRange(x0, y0, x0, y0,
                               [&](int64_t, int64_t, const Rid& rid) {
                                 if (rid == rid0) found = true;
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_TRUE(found);

  ASSERT_TRUE(grid.Delete(x0, y0, rid0).ok());
  EXPECT_TRUE(grid.Delete(x0, y0, rid0).IsNotFound());
  EXPECT_EQ(grid.entry_count(), 4999u);
  ASSERT_TRUE(grid.CheckInvariants().ok());
}

TEST_F(GridFileTest, DomainChecked) {
  auto grid = *GridFile::Create(&pool_);
  EXPECT_FALSE(grid.Insert(-1, 0, Rid(1, 0)).ok());
  EXPECT_FALSE(grid.Insert(0, GridFile::kDomain, Rid(1, 0)).ok());
}

TEST_F(GridFileTest, DuplicatePointDistinctRids) {
  auto grid = *GridFile::Create(&pool_);
  for (uint16_t s = 0; s < 600; ++s) {
    ASSERT_TRUE(grid.Insert(7, 7, Rid(1, s)).ok()) << s;  // overflow chains
  }
  EXPECT_EQ(grid.Insert(7, 7, Rid(1, 5)).code(), StatusCode::kAlreadyExists);
  uint64_t hits = 0;
  ASSERT_TRUE(grid.SearchRange(7, 7, 7, 7,
                               [&](int64_t, int64_t, const Rid&) {
                                 ++hits;
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(hits, 600u);
  ASSERT_TRUE(grid.CheckInvariants().ok());
}

TEST_F(GridFileTest, RangeQueryMatchesBruteForce) {
  auto grid = *GridFile::Create(&pool_);
  Random rng(2);
  std::vector<std::tuple<int64_t, int64_t, uint64_t>> reference;
  for (int i = 0; i < 4000; ++i) {
    int64_t x = rng.UniformInt(0, 1 << 20);
    int64_t y = rng.UniformInt(0, 1 << 20);
    Rid rid(static_cast<PageId>(i + 1), 0);
    reference.emplace_back(x, y, rid.Pack());
    ASSERT_TRUE(grid.Insert(x, y, rid).ok());
  }
  for (int q = 0; q < 20; ++q) {
    int64_t x1 = rng.UniformInt(0, 1 << 20);
    int64_t y1 = rng.UniformInt(0, 1 << 20);
    int64_t x2 = x1 + rng.UniformInt(0, 1 << 18);
    int64_t y2 = y1 + rng.UniformInt(0, 1 << 18);
    std::set<uint64_t> expect;
    for (auto& [x, y, packed] : reference) {
      if (x >= x1 && x <= x2 && y >= y1 && y <= y2) expect.insert(packed);
    }
    std::set<uint64_t> got;
    ASSERT_TRUE(grid.SearchRange(x1, y1, x2, y2,
                                 [&](int64_t, int64_t, const Rid& rid) {
                                   got.insert(rid.Pack());
                                   return Status::OK();
                                 })
                    .ok());
    EXPECT_EQ(got, expect) << "query " << q;
  }
}

TEST_F(GridFileTest, BulkDeleteMatchesModel) {
  auto grid = *GridFile::Create(&pool_);
  Random rng(3);
  std::vector<std::tuple<int64_t, int64_t, Rid>> entries;
  for (int i = 0; i < 8000; ++i) {
    int64_t x = rng.UniformInt(0, GridFile::kDomain - 1);
    int64_t y = rng.UniformInt(0, GridFile::kDomain - 1);
    Rid rid(static_cast<PageId>(i + 1), 0);
    entries.emplace_back(x, y, rid);
    ASSERT_TRUE(grid.Insert(x, y, rid).ok());
  }
  std::vector<std::tuple<int64_t, int64_t, Rid>> doomed;
  std::set<uint64_t> doomed_rids;
  for (size_t i = 0; i < entries.size(); i += 3) {
    doomed.push_back(entries[i]);
    doomed_rids.insert(std::get<2>(entries[i]).Pack());
  }
  GridBulkDeleteStats stats;
  ASSERT_TRUE(grid.BulkDelete(doomed, &stats).ok());
  EXPECT_EQ(stats.entries_deleted, doomed.size());
  EXPECT_EQ(grid.entry_count(), entries.size() - doomed.size());
  EXPECT_LE(stats.buckets_visited, grid.num_cells());
  ASSERT_TRUE(grid.CheckInvariants().ok());
  ASSERT_TRUE(grid.ScanAll([&](int64_t, int64_t, const Rid& rid) {
                    if (doomed_rids.count(rid.Pack()) > 0) {
                      return Status::Internal("doomed entry survived");
                    }
                    return Status::OK();
                  })
                  .ok());
  // Idempotent re-run.
  ASSERT_TRUE(grid.BulkDelete(doomed, &stats).ok());
  EXPECT_EQ(stats.entries_deleted, 0u);
}

TEST_F(GridFileTest, SkewedDataStaysCorrect) {
  auto grid = *GridFile::Create(&pool_);
  Random rng(4);
  // Everything in one tiny corner: the directory maxes out and overflow
  // chains take over — correctness must hold.
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(grid.Insert(rng.UniformInt(0, 63), rng.UniformInt(0, 63),
                            Rid(static_cast<PageId>(i + 1), 0))
                    .ok())
        << i;
  }
  EXPECT_EQ(grid.entry_count(), 3000u);
  ASSERT_TRUE(grid.CheckInvariants().ok());
  uint64_t hits = 0;
  ASSERT_TRUE(grid.SearchRange(0, 0, 63, 63,
                               [&](int64_t, int64_t, const Rid&) {
                                 ++hits;
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(hits, 3000u);
}

TEST_F(GridFileTest, ReopenFromMeta) {
  PageId meta;
  {
    auto grid = *GridFile::Create(&pool_);
    meta = grid.meta_page();
    Random rng(5);
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(grid.Insert(rng.UniformInt(0, 1 << 20),
                              rng.UniformInt(0, 1 << 20),
                              Rid(static_cast<PageId>(i + 1), 0))
                      .ok());
    }
    ASSERT_TRUE(grid.FlushMeta().ok());
  }
  auto grid = GridFile::Open(&pool_, meta);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->entry_count(), 2000u);
  ASSERT_TRUE(grid->CheckInvariants().ok());
}

}  // namespace
}  // namespace bulkdel

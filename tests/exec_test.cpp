// Tests for the ⋉̸ operator implementations: merge, classic hash, and
// range-partitioned hash, against a common reference setup.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "exec/delete_list.h"
#include "exec/hash_delete.h"
#include "exec/merge_delete.h"
#include "exec/partitioned_delete.h"
#include "util/random.h"

namespace bulkdel {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() : pool_(&disk_, 512 * kPageSize) {}

  /// Builds an index over n entries with key = i * 2, rid = (i+1, i%16).
  BTree MakeIndex(int n) {
    auto tree = *BTree::Create(&pool_);
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(tree.Insert(i * 2,
                              Rid(static_cast<PageId>(i + 1),
                                  static_cast<uint16_t>(i % 16)))
                      .ok());
    }
    return tree;
  }

  DiskManager disk_;
  BufferPool pool_;
};

TEST(U64HashSetTest, InsertContains) {
  U64HashSet set(100);
  for (uint64_t v = 0; v < 100; ++v) set.Insert(v * 7919);
  for (uint64_t v = 0; v < 100; ++v) {
    EXPECT_TRUE(set.Contains(v * 7919));
    EXPECT_FALSE(set.Contains(v * 7919 + 1));
  }
  EXPECT_EQ(set.size(), 100u);
}

TEST(U64HashSetTest, GrowsBeyondExpectation) {
  U64HashSet set(4);
  for (uint64_t v = 0; v < 10000; ++v) set.Insert(v);
  EXPECT_EQ(set.size(), 10000u);
  for (uint64_t v = 0; v < 10000; ++v) EXPECT_TRUE(set.Contains(v));
  EXPECT_FALSE(set.Contains(10000));
}

TEST(U64HashSetTest, DuplicateInsertIdempotent) {
  U64HashSet set(4);
  set.Insert(42);
  set.Insert(42);
  EXPECT_EQ(set.size(), 1u);
}

TEST(U64HashSetTest, SentinelValueHandled) {
  // key -1 casts to the all-ones pattern, which doubles as the empty-slot
  // sentinel internally; membership must still be exact.
  U64HashSet set(4);
  EXPECT_FALSE(set.Contains(~0ULL));
  set.Insert(5);
  EXPECT_FALSE(set.Contains(~0ULL));
  set.Insert(~0ULL);
  EXPECT_TRUE(set.Contains(~0ULL));
  set.Insert(~0ULL);
  EXPECT_EQ(set.size(), 2u);
}

TEST(U64HashSetTest, EstimateBytesMonotone) {
  EXPECT_LE(U64HashSet::EstimateBytes(10), U64HashSet::EstimateBytes(1000));
  U64HashSet set(1000);
  EXPECT_LE(set.bytes(), U64HashSet::EstimateBytes(1000));
}

TEST_F(ExecTest, MergeDeleteIndexByKeysSortsInput) {
  auto tree = MakeIndex(5000);
  std::vector<int64_t> keys;
  Random rng(7);
  std::set<int64_t> chosen;
  while (chosen.size() < 500) {
    chosen.insert(static_cast<int64_t>(rng.Uniform(5000)) * 2);
  }
  keys.assign(chosen.begin(), chosen.end());
  // Shuffle to prove the operator sorts.
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Uniform(i)]);
  }
  std::vector<Rid> deleted;
  BtreeBulkDeleteStats stats;
  ASSERT_TRUE(MergeDeleteIndexByKeys(&tree, &disk_, 1 << 20, &keys,
                                     /*already_sorted=*/false,
                                     ReorgMode::kFreeAtEmpty, &deleted, &stats)
                  .ok());
  EXPECT_EQ(stats.entries_deleted, 500u);
  EXPECT_EQ(deleted.size(), 500u);
  EXPECT_EQ(tree.entry_count(), 4500u);
  for (int64_t k : chosen) EXPECT_TRUE(tree.Search(k)->empty());
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(ExecTest, HashDeleteIndexByRidsMatchesMergeResult) {
  auto tree_a = MakeIndex(4000);
  auto tree_b = MakeIndex(4000);
  std::vector<Rid> rids;
  for (int i = 0; i < 4000; i += 3) {
    rids.emplace_back(static_cast<PageId>(i + 1),
                      static_cast<uint16_t>(i % 16));
  }
  BtreeBulkDeleteStats hash_stats;
  ASSERT_TRUE(HashDeleteIndexByRids(&tree_a, rids, ReorgMode::kFreeAtEmpty,
                                    &hash_stats)
                  .ok());
  // Equivalent merge by exact entries.
  std::vector<KeyRid> entries;
  for (int i = 0; i < 4000; i += 3) {
    entries.emplace_back(i * 2, Rid(static_cast<PageId>(i + 1),
                                    static_cast<uint16_t>(i % 16)));
  }
  BtreeBulkDeleteStats merge_stats;
  ASSERT_TRUE(MergeDeleteIndexByEntries(&tree_b, &disk_, 1 << 20, &entries,
                                        false, ReorgMode::kFreeAtEmpty,
                                        &merge_stats)
                  .ok());
  EXPECT_EQ(hash_stats.entries_deleted, merge_stats.entries_deleted);
  EXPECT_EQ(tree_a.entry_count(), tree_b.entry_count());
  ASSERT_TRUE(tree_a.CheckInvariants().ok());
}

TEST_F(ExecTest, PartitionedHashSinglePartitionWhenFits) {
  auto tree = MakeIndex(2000);
  std::vector<KeyRid> entries;
  for (int i = 0; i < 2000; i += 5) {
    entries.emplace_back(i * 2, Rid(static_cast<PageId>(i + 1),
                                    static_cast<uint16_t>(i % 16)));
  }
  PartitionedDeleteStats stats;
  ASSERT_TRUE(PartitionedHashDeleteIndex(&tree, &disk_, 1 << 20, entries,
                                         ReorgMode::kFreeAtEmpty, &stats)
                  .ok());
  EXPECT_EQ(stats.partitions, 1);
  EXPECT_EQ(stats.pages_spilled, 0);
  EXPECT_EQ(stats.btree.entries_deleted, entries.size());
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(ExecTest, PartitionedHashManyPartitionsUnderTinyBudget) {
  auto tree = MakeIndex(8000);
  std::vector<KeyRid> entries;
  for (int i = 0; i < 8000; i += 2) {
    entries.emplace_back(i * 2, Rid(static_cast<PageId>(i + 1),
                                    static_cast<uint16_t>(i % 16)));
  }
  // Tiny budget: forces several range partitions plus staging I/O.
  PartitionedDeleteStats stats;
  ASSERT_TRUE(PartitionedHashDeleteIndex(&tree, &disk_, 8 * 1024, entries,
                                         ReorgMode::kFreeAtEmpty, &stats)
                  .ok());
  EXPECT_GT(stats.partitions, 1);
  EXPECT_GT(stats.pages_spilled, 0);
  EXPECT_EQ(stats.btree.entries_deleted, entries.size());
  EXPECT_EQ(tree.entry_count(), 4000u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  // Every surviving key is odd-indexed.
  ASSERT_TRUE(tree.ScanAll([](int64_t k, const Rid&, uint16_t) {
                    EXPECT_NE(k % 4, 0) << k;
                    return Status::OK();
                  })
                  .ok());
  // Scratch pages all freed.
  EXPECT_EQ(disk_.NumFreePages() + tree.num_leaves() + tree.num_inner_nodes() + 1,
            disk_.NumAllocatedPages());
}

TEST_F(ExecTest, PartitionedHashBoundedLeafTraffic) {
  auto tree = MakeIndex(8000);
  // Narrow key range: only a slice of the leaves should be visited.
  std::vector<KeyRid> entries;
  for (int i = 1000; i < 1200; ++i) {
    entries.emplace_back(i * 2, Rid(static_cast<PageId>(i + 1),
                                    static_cast<uint16_t>(i % 16)));
  }
  PartitionedDeleteStats stats;
  ASSERT_TRUE(PartitionedHashDeleteIndex(&tree, &disk_, 1 << 20, entries,
                                         ReorgMode::kFreeAtEmpty, &stats)
                  .ok());
  EXPECT_EQ(stats.btree.entries_deleted, 200u);
  EXPECT_LT(stats.btree.leaves_visited, tree.num_leaves() / 2);
}

TEST_F(ExecTest, PartitionedHashEmptyListIsNoop) {
  auto tree = MakeIndex(100);
  PartitionedDeleteStats stats;
  ASSERT_TRUE(PartitionedHashDeleteIndex(&tree, &disk_, 1 << 20, {},
                                         ReorgMode::kFreeAtEmpty, &stats)
                  .ok());
  EXPECT_EQ(stats.partitions, 0);
  EXPECT_EQ(stats.btree.entries_deleted, 0u);
  EXPECT_EQ(tree.entry_count(), 100u);
}

TEST_F(ExecTest, MergeDeleteEmptyKeyListIsNoop) {
  auto tree = MakeIndex(100);
  std::vector<int64_t> keys;
  BtreeBulkDeleteStats stats;
  ASSERT_TRUE(MergeDeleteIndexByKeys(&tree, &disk_, 1 << 20, &keys, false,
                                     ReorgMode::kFreeAtEmpty, nullptr, &stats)
                  .ok());
  EXPECT_EQ(stats.entries_deleted, 0u);
}

TEST_F(ExecTest, HashDeleteNegativeKeys) {
  auto tree = *BTree::Create(&pool_);
  for (int64_t k = -50; k < 50; ++k) {
    ASSERT_TRUE(tree.Insert(k, Rid(1, static_cast<uint16_t>(k + 50))).ok());
  }
  // -1 is the internal hash-set sentinel pattern; it must still delete.
  BtreeBulkDeleteStats stats;
  ASSERT_TRUE(HashDeleteIndexByKeys(&tree, {-1, -50, 49},
                                    ReorgMode::kFreeAtEmpty, &stats)
                  .ok());
  EXPECT_EQ(stats.entries_deleted, 3u);
  EXPECT_TRUE(tree.Search(-1)->empty());
  EXPECT_EQ(tree.entry_count(), 97u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(ExecTest, MergeDeleteTableProjectsFeeds) {
  Schema schema = *Schema::PaperStyle(3, 64);
  auto table = *HeapTable::Create(&pool_, schema);
  std::vector<Rid> rids;
  for (int64_t i = 0; i < 3000; ++i) {
    std::vector<char> tuple(schema.tuple_size(), 0);
    schema.SetInt(tuple.data(), 0, i);
    schema.SetInt(tuple.data(), 1, i * 10);
    schema.SetInt(tuple.data(), 2, i * 100);
    rids.push_back(*table.Insert(tuple.data()));
  }
  std::vector<Rid> doomed;
  for (size_t i = 0; i < rids.size(); i += 4) doomed.push_back(rids[i]);
  // Shuffle: the operator must sort into physical order itself.
  Random rng(9);
  for (size_t i = doomed.size(); i > 1; --i) {
    std::swap(doomed[i - 1], doomed[rng.Uniform(i)]);
  }
  std::vector<IndexFeed> feeds(2);
  feeds[0].column = 1;
  feeds[1].column = 2;
  uint64_t deleted = 0;
  ASSERT_TRUE(MergeDeleteTable(&table, &disk_, 1 << 20, &doomed, false,
                               &feeds, &deleted)
                  .ok());
  EXPECT_EQ(deleted, doomed.size());
  ASSERT_EQ(feeds[0].entries.size(), doomed.size());
  ASSERT_EQ(feeds[1].entries.size(), doomed.size());
  // Feed pairs are consistent: value of column 2 = 10x value of column 1.
  for (size_t i = 0; i < feeds[0].entries.size(); ++i) {
    EXPECT_EQ(feeds[0].entries[i].key * 10, feeds[1].entries[i].key);
    EXPECT_TRUE(feeds[0].entries[i].rid == feeds[1].entries[i].rid);
  }
  EXPECT_EQ(table.tuple_count(), 3000u - doomed.size());
}

TEST_F(ExecTest, ExtractKeysFromTable) {
  Schema schema = *Schema::PaperStyle(2, 0);
  auto d_table = *HeapTable::Create(&pool_, schema);
  for (int64_t i = 0; i < 100; ++i) {
    std::vector<char> tuple(schema.tuple_size(), 0);
    schema.SetInt(tuple.data(), 0, i * 3);
    schema.SetInt(tuple.data(), 1, -i);
    ASSERT_TRUE(d_table.Insert(tuple.data()).ok());
  }
  auto keys = ExtractKeysFromTable(&d_table, 0);
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), 100u);
  EXPECT_EQ((*keys)[10], 30);
  EXPECT_FALSE(ExtractKeysFromTable(&d_table, 5).ok());
}

TEST_F(ExecTest, ExtractKeysByScanPredicate) {
  Schema schema = *Schema::PaperStyle(2, 0);
  auto table = *HeapTable::Create(&pool_, schema);
  for (int64_t i = 0; i < 100; ++i) {
    std::vector<char> tuple(schema.tuple_size(), 0);
    schema.SetInt(tuple.data(), 0, i);        // key column
    schema.SetInt(tuple.data(), 1, i * 2);    // filter column
    ASSERT_TRUE(table.Insert(tuple.data()).ok());
  }
  auto keys = ExtractKeysByScanPredicate(&table, 0, 1, 10, 20);
  ASSERT_TRUE(keys.ok());
  // filter 10 <= 2i <= 20  =>  i in [5, 10].
  ASSERT_EQ(keys->size(), 6u);
  EXPECT_EQ(keys->front(), 5);
  EXPECT_EQ(keys->back(), 10);
}

}  // namespace
}  // namespace bulkdel

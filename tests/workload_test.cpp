#include "workload/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "core/database.h"

namespace bulkdel {
namespace {

std::unique_ptr<Database> MakeDb() {
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  return *Database::Create(options);
}

TEST(WorkloadTest, ColumnsAreDuplicateFree) {
  auto db = MakeDb();
  WorkloadSpec spec;
  spec.n_tuples = 3000;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A"});
  for (const auto& column : workload.values) {
    std::set<int64_t> distinct(column.begin(), column.end());
    EXPECT_EQ(distinct.size(), column.size());
  }
  EXPECT_EQ(workload.rids.size(), spec.n_tuples);
}

TEST(WorkloadTest, DeterministicUnderSeed) {
  WorkloadSpec spec;
  spec.n_tuples = 500;
  spec.n_int_columns = 3;
  spec.tuple_size = 64;
  auto db1 = MakeDb();
  auto db2 = MakeDb();
  auto w1 = *SetUpPaperDatabase(db1.get(), spec, {"A"});
  auto w2 = *SetUpPaperDatabase(db2.get(), spec, {"A"});
  EXPECT_EQ(w1.values[0], w2.values[0]);
  EXPECT_EQ(w1.values[2], w2.values[2]);
  EXPECT_EQ(w1.MakeDeleteKeys(0.1, 9), w2.MakeDeleteKeys(0.1, 9));
}

TEST(WorkloadTest, DeleteKeysAreDistinctExistingAValues) {
  auto db = MakeDb();
  WorkloadSpec spec;
  spec.n_tuples = 2000;
  spec.n_int_columns = 3;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A"});
  std::set<int64_t> population(workload.values[0].begin(),
                               workload.values[0].end());
  auto keys = workload.MakeDeleteKeys(0.25, 4);
  EXPECT_EQ(keys.size(), 500u);
  std::set<int64_t> distinct(keys.begin(), keys.end());
  EXPECT_EQ(distinct.size(), keys.size());
  for (int64_t k : keys) EXPECT_EQ(population.count(k), 1u) << k;
}

TEST(WorkloadTest, FractionClampedToWholeTable) {
  auto db = MakeDb();
  WorkloadSpec spec;
  spec.n_tuples = 100;
  spec.n_int_columns = 2;
  spec.tuple_size = 32;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A"});
  EXPECT_EQ(workload.MakeDeleteKeys(5.0, 1).size(), 100u);
  EXPECT_TRUE(workload.MakeDeleteKeys(0.0, 1).empty());
}

TEST(WorkloadTest, ClusteredLoadSortsAllColumnsConsistently) {
  auto db = MakeDb();
  WorkloadSpec spec;
  spec.n_tuples = 1000;
  spec.n_int_columns = 3;
  spec.tuple_size = 64;
  spec.clustered_on_a = true;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A", "B"});
  // A ascends in row order...
  for (size_t i = 1; i < workload.values[0].size(); ++i) {
    EXPECT_LT(workload.values[0][i - 1], workload.values[0][i]);
  }
  // ...and each row's values stayed together: verify via the table.
  TableDef* table = db->GetTable("R");
  for (size_t i = 0; i < 100; ++i) {
    auto row = db->GetRow("R", workload.rids[i]);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ((*row)[0], workload.values[0][i]);
    EXPECT_EQ((*row)[1], workload.values[1][i]);
  }
  (void)table;
}

TEST(WorkloadTest, PaperStyleSchemaValidation) {
  EXPECT_FALSE(Schema::PaperStyle(0, 512).ok());
  EXPECT_FALSE(Schema::PaperStyle(27, 512).ok());
  EXPECT_FALSE(Schema::PaperStyle(10, 40).ok());  // smaller than the ints
  Schema s = *Schema::PaperStyle(10, 512);
  EXPECT_EQ(s.tuple_size(), 512u);
  EXPECT_EQ(s.num_columns(), 11u);
  Schema no_pad = *Schema::PaperStyle(2, 16);
  EXPECT_EQ(no_pad.num_columns(), 2u);
}

}  // namespace
}  // namespace bulkdel

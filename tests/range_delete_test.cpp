// Range predicates (BETWEEN) are first-class: the planner gets a symbolic
// [lo, hi] instead of an expanded key list, and every strategy must delete
// exactly the rows whose key lies in the range *at execution time*. The
// suite checks (a) strategy equivalence for range plans across workload
// shapes and thread counts, (b) logical equivalence with the keys-mode
// delete of the same doomed set, (c) the edge cases (inverted, empty,
// whole-table, non-indexed-column, bounds absent from the table), and
// (d) the extract-then-execute race the predicate class exists to close:
// a row entering the range after parse but before execution still dies,
// and a row admitted after the statement's lock window survives.

#include <gtest/gtest.h>

#include <atomic>
#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/sql.h"
#include "fault/crash_sweep.h"
#include "workload/generator.h"

namespace bulkdel {
namespace {

struct RangeParam {
  Strategy strategy;
  int n_indices;  // 1..3 (A always first)
  bool clustered;
  const char* name;
};

std::string ParamName(const ::testing::TestParamInfo<RangeParam>& info) {
  return info.param.name;
}

class RangeDeleteTest : public ::testing::TestWithParam<RangeParam> {};

constexpr uint64_t kTuples = 4000;

WorkloadSpec MakeSpec(const RangeParam& param) {
  WorkloadSpec spec;
  spec.n_tuples = kTuples;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  spec.clustered_on_a = param.clustered;
  return spec;
}

std::vector<std::string> IndexedColumns(int n_indices) {
  std::vector<std::string> columns = {"A", "B", "C"};
  columns.resize(static_cast<size_t>(n_indices));
  return columns;
}

BulkDeleteSpec RangeSpec(int64_t lo, int64_t hi) {
  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.predicate = DeletePredicate::kRange;
  bd.range_lo = lo;
  bd.range_hi = hi;
  bd.keys_sorted = true;
  return bd;
}

/// The quantile range [sorted_a[begin], sorted_a[begin + count - 1]]:
/// A-values are duplicate-free, so it dooms exactly `count` rows.
struct QuantileRange {
  int64_t lo;
  int64_t hi;
};
QuantileRange MidRange(const Workload& workload, size_t begin, size_t count) {
  std::vector<int64_t> sorted = workload.values[0];
  std::sort(sorted.begin(), sorted.end());
  return QuantileRange{sorted[begin], sorted[begin + count - 1]};
}

std::set<int64_t> DoomedInRange(const Workload& workload, int column,
                                int64_t lo, int64_t hi) {
  std::set<int64_t> doomed;
  for (int64_t v : workload.values[static_cast<size_t>(column)]) {
    if (v >= lo && v <= hi) doomed.insert(v);
  }
  return doomed;
}

struct RunOutcome {
  uint64_t rows_deleted = 0;
  std::multiset<int64_t> surviving_a;
  std::string hash;
};

/// Builds the workload fresh, runs the given delete spec, verifies the end
/// state against the doomed set (computed on column A) and returns the
/// outcome plus the RID-free content hash for cross-run comparison.
RunOutcome RunDelete(const RangeParam& param, const BulkDeleteSpec& bd,
                     const std::set<int64_t>& doomed, int exec_threads) {
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  options.exec_threads = exec_threads;
  auto db = *Database::Create(options);
  auto workload =
      *SetUpPaperDatabase(db.get(), MakeSpec(param),
                          IndexedColumns(param.n_indices));
  (void)workload;

  auto report = db->BulkDelete(bd, param.strategy);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (!report.ok()) return RunOutcome{};

  RunOutcome out;
  out.rows_deleted = report->rows_deleted;
  EXPECT_EQ(report->rows_deleted, doomed.size());

  TableDef* table = db->GetTable("R");
  EXPECT_EQ(table->table->tuple_count(), kTuples - doomed.size());
  EXPECT_TRUE(table->table
                  ->Scan([&](const Rid&, const char* tuple) {
                    int64_t a = table->schema->GetInt(tuple, 0);
                    EXPECT_EQ(doomed.count(a), 0u) << "doomed row survived";
                    out.surviving_a.insert(a);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(out.surviving_a.size(), kTuples - doomed.size());
  EXPECT_TRUE(db->VerifyIntegrity().ok());
  out.hash = *LogicalContentHash(db.get(), "R");
  return out;
}

/// Every strategy deletes exactly the rows in the range — no expansion into
/// a key list anywhere on the way.
TEST_P(RangeDeleteTest, EndStateMatchesDoomedSet) {
  const RangeParam& param = GetParam();
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  auto probe = *Database::Create(options);
  auto workload =
      *SetUpPaperDatabase(probe.get(), MakeSpec(param),
                          IndexedColumns(param.n_indices));
  QuantileRange range = MidRange(workload, 1800, 400);
  std::set<int64_t> doomed = DoomedInRange(workload, 0, range.lo, range.hi);
  ASSERT_EQ(doomed.size(), 400u);
  RunDelete(param, RangeSpec(range.lo, range.hi), doomed, /*exec_threads=*/1);
}

/// The phase-DAG scheduler must be invisible to results for range plans
/// exactly as for key-list plans.
TEST_P(RangeDeleteTest, ParallelEndStateMatchesSerial) {
  const RangeParam& param = GetParam();
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  auto probe = *Database::Create(options);
  auto workload =
      *SetUpPaperDatabase(probe.get(), MakeSpec(param),
                          IndexedColumns(param.n_indices));
  QuantileRange range = MidRange(workload, 1200, 600);
  std::set<int64_t> doomed = DoomedInRange(workload, 0, range.lo, range.hi);
  RunOutcome serial =
      RunDelete(param, RangeSpec(range.lo, range.hi), doomed, 1);
  RunOutcome parallel =
      RunDelete(param, RangeSpec(range.lo, range.hi), doomed, 4);
  EXPECT_EQ(serial.rows_deleted, parallel.rows_deleted);
  EXPECT_EQ(serial.surviving_a, parallel.surviving_a);
  EXPECT_EQ(serial.hash, parallel.hash);
}

/// A range delete and a keys-mode delete of the same doomed set must leave
/// logically identical databases (the leaf-run and extent-drop fast paths
/// change the physical history, never the visible contents).
TEST_P(RangeDeleteTest, MatchesEquivalentKeyListDelete) {
  const RangeParam& param = GetParam();
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  auto probe = *Database::Create(options);
  auto workload =
      *SetUpPaperDatabase(probe.get(), MakeSpec(param),
                          IndexedColumns(param.n_indices));
  QuantileRange range = MidRange(workload, 2600, 500);
  std::set<int64_t> doomed = DoomedInRange(workload, 0, range.lo, range.hi);

  RunOutcome by_range =
      RunDelete(param, RangeSpec(range.lo, range.hi), doomed, 1);

  BulkDeleteSpec by_keys;
  by_keys.table = "R";
  by_keys.key_column = "A";
  by_keys.keys.assign(doomed.begin(), doomed.end());
  by_keys.keys_sorted = true;
  RunOutcome by_list = RunDelete(param, by_keys, doomed, 1);

  EXPECT_EQ(by_range.rows_deleted, by_list.rows_deleted);
  EXPECT_EQ(by_range.surviving_a, by_list.surviving_a);
  EXPECT_EQ(by_range.hash, by_list.hash);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RangeDeleteTest,
    ::testing::Values(
        RangeParam{Strategy::kTraditional, 1, true, "TraditionalClustered"},
        RangeParam{Strategy::kTraditionalSorted, 3, false,
                   "TraditionalSorted3Idx"},
        RangeParam{Strategy::kDropCreate, 3, false, "DropCreate3Idx"},
        RangeParam{Strategy::kVerticalSortMerge, 3, false, "SortMerge3Idx"},
        RangeParam{Strategy::kVerticalSortMerge, 1, true,
                   "SortMergeClusteredExtentDrop"},
        RangeParam{Strategy::kVerticalHash, 3, false, "Hash3Idx"},
        RangeParam{Strategy::kVerticalPartitionedHash, 3, false,
                   "Partitioned3Idx"},
        RangeParam{Strategy::kOptimizer, 1, true, "OptimizerClustered"},
        RangeParam{Strategy::kOptimizer, 3, false, "Optimizer3Idx"}),
    ParamName);

// ---------------------------------------------------------------------------
// Edge cases. All use the optimizer plus one explicit vertical strategy:
// the point is the predicate semantics, not the full strategy matrix.
// ---------------------------------------------------------------------------

struct EdgeFixture {
  std::unique_ptr<Database> db;
  Workload workload;
};

EdgeFixture MakeEdgeFixture(bool clustered, int n_indices) {
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  EdgeFixture f;
  f.db = *Database::Create(options);
  WorkloadSpec spec;
  spec.n_tuples = kTuples;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  spec.clustered_on_a = clustered;
  f.workload = *SetUpPaperDatabase(f.db.get(), spec,
                                   IndexedColumns(n_indices));
  return f;
}

/// Inverted bounds (lo > hi) are an empty range: a 0-row report, not an
/// error — and the table is untouched.
TEST(RangeDeleteEdgeCases, InvertedBoundsDeleteZeroRows) {
  for (Strategy s : {Strategy::kOptimizer, Strategy::kVerticalSortMerge,
                     Strategy::kTraditional}) {
    EdgeFixture f = MakeEdgeFixture(/*clustered=*/true, /*n_indices=*/1);
    auto report = f.db->BulkDelete(RangeSpec(5000, 100), s);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->rows_deleted, 0u);
    EXPECT_EQ(f.db->GetTable("R")->table->tuple_count(), kTuples);
    EXPECT_TRUE(f.db->VerifyIntegrity().ok());
  }
}

/// A well-formed range that covers no live key also reports zero rows.
TEST(RangeDeleteEdgeCases, EmptyRangeDeletesZeroRows) {
  EdgeFixture f = MakeEdgeFixture(/*clustered=*/false, /*n_indices=*/2);
  int64_t min_a = *std::min_element(f.workload.values[0].begin(),
                                    f.workload.values[0].end());
  auto report =
      f.db->BulkDelete(RangeSpec(min_a - 1000, min_a - 1),
                       Strategy::kOptimizer);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, 0u);
  EXPECT_EQ(f.db->GetTable("R")->table->tuple_count(), kTuples);
  EXPECT_TRUE(f.db->VerifyIntegrity().ok());
}

/// The whole-table range, including the int64 extremes (whose width
/// overflows a uint64 — the estimate clamps instead of wrapping).
TEST(RangeDeleteEdgeCases, WholeTableRangeDeletesEverything) {
  EdgeFixture f = MakeEdgeFixture(/*clustered=*/true, /*n_indices=*/3);
  auto report =
      f.db->BulkDelete(RangeSpec(std::numeric_limits<int64_t>::min(),
                                 std::numeric_limits<int64_t>::max()),
                       Strategy::kOptimizer);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, kTuples);
  EXPECT_EQ(f.db->GetTable("R")->table->tuple_count(), 0u);
  EXPECT_TRUE(f.db->VerifyIntegrity().ok());
}

/// A range on a column with no index of its own falls back to the
/// full-scan predicate path but must still maintain every other index.
TEST(RangeDeleteEdgeCases, NonIndexedColumnRangeFallsBackToScan) {
  EdgeFixture f = MakeEdgeFixture(/*clustered=*/false, /*n_indices=*/1);
  std::vector<int64_t> sorted_b = f.workload.values[1];
  std::sort(sorted_b.begin(), sorted_b.end());
  int64_t lo = sorted_b[1000];
  int64_t hi = sorted_b[1299];
  std::set<int64_t> doomed_b = DoomedInRange(f.workload, 1, lo, hi);
  ASSERT_EQ(doomed_b.size(), 300u);

  BulkDeleteSpec bd = RangeSpec(lo, hi);
  bd.key_column = "B";
  auto report = f.db->BulkDelete(bd, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, doomed_b.size());
  TableDef* table = f.db->GetTable("R");
  EXPECT_EQ(table->table->tuple_count(), kTuples - doomed_b.size());
  EXPECT_TRUE(table->table
                  ->Scan([&](const Rid&, const char* tuple) {
                    int64_t b = table->schema->GetInt(tuple, 1);
                    EXPECT_EQ(doomed_b.count(b), 0u);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_TRUE(f.db->VerifyIntegrity().ok());
}

/// Bounds that are not themselves live keys (they fall into gaps of the
/// duplicate-free population) behave identically to bounds that are: the
/// doomed set is whatever lies inside, computed at execution time.
TEST(RangeDeleteEdgeCases, AbsentBoundsBehaveLikePresentBounds) {
  EdgeFixture probe = MakeEdgeFixture(/*clustered=*/true, /*n_indices=*/1);
  std::set<int64_t> live(probe.workload.values[0].begin(),
                         probe.workload.values[0].end());
  // A-values are duplicate-free with density < 1, so gaps exist; find a
  // lo/hi pair that misses the population around the 40% quantile.
  std::vector<int64_t> sorted(live.begin(), live.end());
  int64_t lo = sorted[1600] + 1;
  while (live.count(lo) > 0) ++lo;
  int64_t hi = sorted[2000] - 1;
  while (live.count(hi) > 0) --hi;
  ASSERT_LT(lo, hi);
  std::set<int64_t> doomed = DoomedInRange(probe.workload, 0, lo, hi);
  ASSERT_GT(doomed.size(), 0u);

  for (Strategy s : {Strategy::kVerticalSortMerge, Strategy::kOptimizer}) {
    EdgeFixture f = MakeEdgeFixture(/*clustered=*/true, /*n_indices=*/1);
    auto report = f.db->BulkDelete(RangeSpec(lo, hi), s);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->rows_deleted, doomed.size());
    EXPECT_TRUE(f.db->VerifyIntegrity().ok());
  }
}

/// A narrow range inside a single leaf exercises the boundary-only path of
/// the leaf-run pass (nothing to drop whole), a wide one frees many full
/// leaves; both must agree with the doomed set exactly.
TEST(RangeDeleteEdgeCases, MidLeafAndMultiLeafRanges) {
  EdgeFixture probe = MakeEdgeFixture(/*clustered=*/true, /*n_indices=*/1);
  std::vector<int64_t> sorted = probe.workload.values[0];
  std::sort(sorted.begin(), sorted.end());
  struct Window {
    size_t begin;
    size_t count;
  };
  // 3 keys sit well inside one leaf; 1500 span dozens of leaves (and, with
  // the clustered table, dozens of heap extents).
  for (Window w : {Window{500, 3}, Window{900, 1500}}) {
    int64_t lo = sorted[w.begin];
    int64_t hi = sorted[w.begin + w.count - 1];
    std::set<int64_t> doomed = DoomedInRange(probe.workload, 0, lo, hi);
    ASSERT_EQ(doomed.size(), w.count);
    EdgeFixture f = MakeEdgeFixture(/*clustered=*/true, /*n_indices=*/1);
    auto report = f.db->BulkDelete(RangeSpec(lo, hi),
                                   Strategy::kVerticalSortMerge);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->rows_deleted, w.count);
    EXPECT_EQ(f.db->GetTable("R")->table->tuple_count(), kTuples - w.count);
    EXPECT_TRUE(f.db->VerifyIntegrity().ok());
  }
}

// ---------------------------------------------------------------------------
// The mid-statement insert race (the bug this predicate class fixes).
// ---------------------------------------------------------------------------

/// Finds an A-value inside [lo, hi] that no live row carries (so the probe
/// insert cannot trip the unique key index).
int64_t AbsentKeyInRange(const Workload& workload, int64_t lo, int64_t hi) {
  std::set<int64_t> live(workload.values[0].begin(),
                         workload.values[0].end());
  for (int64_t v = lo; v <= hi; ++v) {
    if (live.count(v) == 0) return v;
  }
  ADD_FAILURE() << "no gap in [" << lo << ", " << hi << "]";
  return lo;
}

/// A row inserted *between parse and execution* with a key inside the range
/// must die: the predicate is evaluated inside the statement's lock window,
/// not frozen into a key list at parse time. (Under the old BETWEEN
/// expansion this row survived — the extract-then-execute race.)
TEST(RangeDeleteRace, RowInsertedAfterParseStillDies) {
  for (Strategy s : {Strategy::kVerticalSortMerge, Strategy::kTraditional,
                     Strategy::kOptimizer}) {
    EdgeFixture f = MakeEdgeFixture(/*clustered=*/false, /*n_indices=*/1);
    QuantileRange range = MidRange(f.workload, 2000, 300);
    std::set<int64_t> doomed =
        DoomedInRange(f.workload, 0, range.lo, range.hi);
    int64_t straggler = AbsentKeyInRange(f.workload, range.lo, range.hi);

    auto spec = ParseBulkDelete(
        f.db.get(), "DELETE FROM R WHERE A BETWEEN " +
                        std::to_string(range.lo) + " AND " +
                        std::to_string(range.hi));
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    ASSERT_TRUE(spec->is_range());

    // The race: a row enters the range after the statement was parsed.
    ASSERT_TRUE(f.db->InsertRow("R", {straggler, 1, 2, 3}).ok());

    auto report = f.db->BulkDelete(*spec, s);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->rows_deleted, doomed.size() + 1);
    EXPECT_EQ(f.db->GetTable("R")->table->tuple_count(),
              kTuples - doomed.size());
    EXPECT_TRUE(f.db->VerifyIntegrity().ok());

    // Serial replay: the same insert acknowledged before the delete.
    EdgeFixture ref = MakeEdgeFixture(/*clustered=*/false, /*n_indices=*/1);
    ASSERT_TRUE(ref.db->InsertRow("R", {straggler, 1, 2, 3}).ok());
    ASSERT_TRUE(
        ref.db->BulkDelete(RangeSpec(range.lo, range.hi), s).ok());
    EXPECT_EQ(*LogicalContentHash(f.db.get(), "R"),
              *LogicalContentHash(ref.db.get(), "R"));
  }
}

/// A concurrent insert released mid-statement blocks on the table lock and
/// is admitted only after the delete's window closes: the row survives, and
/// the end state equals the serial replay "delete, then insert".
TEST(RangeDeleteRace, ConcurrentInsertIsAdmittedAfterTheWindow) {
  std::atomic<bool> statement_started{false};
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  options.phase_begin_hook = [&](const std::string&) {
    statement_started.store(true, std::memory_order_release);
  };
  auto db = *Database::Create(options);
  WorkloadSpec spec;
  spec.n_tuples = kTuples;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  spec.clustered_on_a = true;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A"});

  QuantileRange range = MidRange(workload, 1500, 500);
  std::set<int64_t> doomed = DoomedInRange(workload, 0, range.lo, range.hi);
  int64_t straggler = AbsentKeyInRange(workload, range.lo, range.hi);

  std::thread inserter([&]() {
    while (!statement_started.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // Blocks on the table's shared lock until the statement commits; the
    // row is admitted after the delete's window and must survive.
    ASSERT_TRUE(db->InsertRow("R", {straggler, 1, 2, 3}).ok());
  });
  auto report =
      db->BulkDelete(RangeSpec(range.lo, range.hi),
                     Strategy::kVerticalSortMerge);
  inserter.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, doomed.size());
  EXPECT_EQ(db->GetTable("R")->table->tuple_count(),
            kTuples - doomed.size() + 1);
  EXPECT_TRUE(db->VerifyIntegrity().ok());

  // Serial replay of the acknowledged order: delete, then insert.
  DatabaseOptions ref_options;
  ref_options.memory_budget_bytes = 256 * 1024;
  auto ref = *Database::Create(ref_options);
  ASSERT_TRUE(SetUpPaperDatabase(ref.get(), spec, {"A"}).ok());
  ASSERT_TRUE(ref->BulkDelete(RangeSpec(range.lo, range.hi),
                              Strategy::kVerticalSortMerge)
                  .ok());
  ASSERT_TRUE(ref->InsertRow("R", {straggler, 1, 2, 3}).ok());
  EXPECT_EQ(*LogicalContentHash(db.get(), "R"),
            *LogicalContentHash(ref.get(), "R"));
}

}  // namespace
}  // namespace bulkdel

#include "core/catalog.h"

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"

namespace bulkdel {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : pool_(&disk_, 128 * kPageSize) {}

  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(CatalogTest, FormatAndReload) {
  Catalog catalog(&pool_);
  ASSERT_TRUE(catalog.Format().ok());
  PageId page = catalog.catalog_page();

  Schema schema = *Schema::PaperStyle(3, 64);
  auto table = catalog.CreateTable("R", schema);
  ASSERT_TRUE(table.ok());
  IndexOptions options;
  options.unique = true;
  options.max_inner_entries = 100;
  ASSERT_TRUE(catalog.CreateIndex("R", "A", options, true).ok());
  ASSERT_TRUE(catalog.CreateIndex("R", "B", {}, false).ok());
  ASSERT_TRUE(pool_.FlushAll().ok());

  Catalog reloaded(&pool_);
  ASSERT_TRUE(reloaded.Load(page).ok());
  TableDef* r = reloaded.GetTable("R");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->schema->num_columns(), 4u);  // A, B, C, PAD
  EXPECT_EQ(r->schema->tuple_size(), 64u);
  ASSERT_EQ(r->indices.size(), 2u);
  IndexDef* a = reloaded.GetIndex("R", "A");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->options.unique);
  EXPECT_TRUE(a->clustered);
  EXPECT_EQ(a->options.max_inner_entries, 100);
  IndexDef* b = reloaded.GetIndex("R", "B");
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(b->options.unique);
}

TEST_F(CatalogTest, DuplicateAndMissingNames) {
  Catalog catalog(&pool_);
  ASSERT_TRUE(catalog.Format().ok());
  Schema schema = *Schema::PaperStyle(2, 0);
  ASSERT_TRUE(catalog.CreateTable("T", schema).ok());
  EXPECT_EQ(catalog.CreateTable("T", schema).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog.CreateIndex("missing", "A", {}, false)
                  .status()
                  .IsNotFound());
  ASSERT_TRUE(catalog.CreateIndex("T", "A", {}, false).ok());
  EXPECT_EQ(catalog.CreateIndex("T", "A", {}, false).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog.RemoveIndex("T", "B").IsNotFound());
  ASSERT_TRUE(catalog.RemoveIndex("T", "A").ok());
  EXPECT_EQ(catalog.GetIndex("T", "A"), nullptr);
}

TEST_F(CatalogTest, NonIntColumnsNotIndexable) {
  Catalog catalog(&pool_);
  ASSERT_TRUE(catalog.Format().ok());
  Schema schema = *Schema::PaperStyle(2, 64);  // has a PAD column
  ASSERT_TRUE(catalog.CreateTable("T", schema).ok());
  EXPECT_EQ(catalog.CreateIndex("T", "PAD", {}, false).status().code(),
            StatusCode::kNotSupported);
}

TEST_F(CatalogTest, ManyTablesUntilPageOverflows) {
  Catalog catalog(&pool_);
  ASSERT_TRUE(catalog.Format().ok());
  Schema schema = *Schema::PaperStyle(2, 0);
  // The catalog lives on one page; creation must fail cleanly (not corrupt)
  // once serialization overflows.
  Status last = Status::OK();
  int created = 0;
  for (int i = 0; i < 500 && last.ok(); ++i) {
    last = catalog.CreateTable("table_" + std::to_string(i), schema).status();
    if (last.ok()) ++created;
  }
  if (!last.ok()) {
    EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
    EXPECT_GT(created, 20);  // plenty of room for realistic catalogs
  }
}

TEST_F(CatalogTest, SchemaRoundTripAllColumnTypes) {
  Catalog catalog(&pool_);
  ASSERT_TRUE(catalog.Format().ok());
  std::vector<Column> cols = {Column::Int64("id"),
                              Column::FixedBytes("blob", 100),
                              Column::Int64("value")};
  ASSERT_TRUE(catalog.CreateTable("X", Schema{cols}).ok());
  ASSERT_TRUE(pool_.FlushAll().ok());
  Catalog reloaded(&pool_);
  ASSERT_TRUE(reloaded.Load(catalog.catalog_page()).ok());
  TableDef* x = reloaded.GetTable("X");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->schema->column(1).type, ColumnType::kFixedBytes);
  EXPECT_EQ(x->schema->column(1).size, 100u);
  EXPECT_EQ(x->schema->tuple_size(), 116u);
}

}  // namespace
}  // namespace bulkdel

// The multi-client SQL server (docs/SERVER.md): session lifecycle, bounded
// admission, per-session state isolation, protocol error handling, graceful
// drain, and the §3.1 acceptance test — N concurrent connections running DML
// while a bulk delete holds secondary indices off-line must leave the exact
// logical state a serial replay of the same acknowledged statements leaves.

#include "net/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/sql.h"
#include "fault/crash_sweep.h"
#include "net/client.h"
#include "util/json.h"

namespace bulkdel {
namespace net {
namespace {

std::unique_ptr<Database> MakeDb(DatabaseOptions options = {}) {
  if (options.memory_budget_bytes == DatabaseOptions{}.memory_budget_bytes) {
    options.memory_budget_bytes = 512 * 1024;
  }
  return *Database::Create(std::move(options));
}

/// One raw HTTP exchange against the /metrics endpoint: send `request`
/// verbatim, read to EOF (the server closes after each response).
std::string HttpExchange(uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string reply;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    reply.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

std::string HttpGetMetrics(uint16_t port, const std::string& path) {
  return HttpExchange(
      port, "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

TEST(NetServer, StartStopIdempotent) {
  auto db = MakeDb();
  auto server = *Server::Start(db.get(), {});
  EXPECT_GT(server->port(), 0);
  EXPECT_TRUE(server->Stop().ok());
  EXPECT_TRUE(server->Stop().ok());  // second Stop is a no-op
  EXPECT_EQ(server->active_sessions(), 0);
}

TEST(NetServer, PingAndSqlRoundTrip) {
  auto db = MakeDb();
  auto server = *Server::Start(db.get(), {});
  auto client = *Client::Connect("127.0.0.1", server->port());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Execute("CREATE TABLE T (A INT, B INT)").ok());
  EXPECT_TRUE(client.Execute("CREATE UNIQUE INDEX ON T (A)").ok());
  for (int i = 0; i < 10; ++i) {
    auto r = client.Execute("INSERT INTO T VALUES (" + std::to_string(i) +
                            ", " + std::to_string(i * 2) + ")");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  auto count = client.Execute("SELECT COUNT(*) FROM T");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, "count = 10");
  auto del = client.Execute("DELETE FROM T WHERE A IN (1, 3, 5)");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(del->substr(0, 16), "deleted 3 row(s)");
  count = client.Execute("SELECT COUNT(*) FROM T");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, "count = 7");
  EXPECT_EQ(server->statements_served(), 15u);
}

TEST(NetServer, StatementErrorKeepsSessionUsable) {
  auto db = MakeDb();
  auto server = *Server::Start(db.get(), {});
  auto client = *Client::Connect("127.0.0.1", server->port());
  // Malformed SQL and unknown tables come back as typed statuses over the
  // wire; the connection survives all of them.
  auto r = client.Execute("FROBNICATE EVERYTHING");
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  r = client.Execute("SELECT COUNT(*) FROM missing");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  r = client.Execute("DELETE FROM missing WHERE A IN (1)");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  r = client.Execute("");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(client.Ping().ok()) << "session should have survived";
}

TEST(NetServer, PerSessionStrategyIsolation) {
  auto db = MakeDb();
  auto server = *Server::Start(db.get(), {});
  auto a = *Client::Connect("127.0.0.1", server->port());
  auto b = *Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(a.Execute("SET STRATEGY vertical-hash").ok());
  auto shown = a.Execute("SHOW STRATEGY");
  ASSERT_TRUE(shown.ok());
  EXPECT_EQ(*shown, "strategy = vertical-hash");
  shown = b.Execute("SHOW STRATEGY");
  ASSERT_TRUE(shown.ok());
  EXPECT_EQ(*shown, "strategy = optimizer") << "b must not see a's SET";
  EXPECT_FALSE(a.Execute("SET STRATEGY warp-drive").ok());
}

TEST(NetServer, OversizedDeleteListIsCleanError) {
  auto db = MakeDb();
  ServerOptions options;
  options.max_delete_keys = 4;
  auto server = *Server::Start(db.get(), options);
  auto client = *Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.Execute("CREATE TABLE T (A INT)").ok());
  ASSERT_TRUE(client.Execute("CREATE UNIQUE INDEX ON T (A)").ok());
  auto r = client.Execute("DELETE FROM T WHERE A IN (1, 2, 3, 4, 5, 6)");
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  // In-bounds lists still work on the same connection.
  EXPECT_TRUE(client.Execute("DELETE FROM T WHERE A IN (1, 2)").ok());
}

TEST(NetServer, AdmissionBoundRejectsLoudly) {
  auto db = MakeDb();
  ServerOptions options;
  options.max_sessions = 1;
  auto server = *Server::Start(db.get(), options);
  auto first = *Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(first.Ping().ok());  // session 1 is established and admitted
  auto second = *Client::Connect("127.0.0.1", server->port());
  Status s = second.Ping();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  // Freeing the slot lets the next connection in.
  first.Close();
  for (int attempt = 0;; ++attempt) {
    auto next = Client::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(next.ok());
    if (next->Ping().ok()) break;
    ASSERT_LT(attempt, 100) << "slot never freed after disconnect";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TEST(NetServer, OversizedFrameClosesSession) {
  auto db = MakeDb();
  ServerOptions options;
  options.max_frame_bytes = 128;
  auto server = *Server::Start(db.get(), options);
  auto client = *Client::Connect("127.0.0.1", server->port());
  auto r = client.Execute("SELECT COUNT(*) FROM " + std::string(300, 'x'));
  // The server answers with the framing error, then hangs up: the stream
  // cannot be re-synchronized after an invalid length.
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << r.status().ToString();
  EXPECT_FALSE(client.Ping().ok());
}

// Stop() must let an in-flight statement finish and deliver its response.
// A phase_begin_hook holds the bulk delete mid-statement until the test has
// called Stop() from another thread, making the race deterministic.
TEST(NetServer, GracefulShutdownDrainsInFlightStatement) {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false, release = false;
  DatabaseOptions db_options;
  db_options.memory_budget_bytes = 512 * 1024;
  db_options.phase_begin_hook = [&](const std::string&) {
    std::unique_lock<std::mutex> lock(mu);
    if (entered) return;  // only gate the first phase
    entered = true;
    cv.notify_all();
    cv.wait_for(lock, std::chrono::seconds(10), [&] { return release; });
  };
  auto db = MakeDb(std::move(db_options));
  auto server = *Server::Start(db.get(), {});
  uint16_t port = server->port();

  auto setup = *Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(setup.Execute("CREATE TABLE T (A INT, B INT)").ok());
  ASSERT_TRUE(setup.Execute("CREATE UNIQUE INDEX ON T (A)").ok());
  ASSERT_TRUE(setup.Execute("CREATE INDEX ON T (B)").ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(setup.Execute("INSERT INTO T VALUES (" + std::to_string(i) +
                              ", " + std::to_string(i % 7) + ")")
                    .ok());
  }
  setup.Close();

  Result<std::string> delete_result = Status::Internal("never ran");
  std::thread deleter([&] {
    auto client = *Client::Connect("127.0.0.1", port);
    std::string statement = "DELETE FROM T WHERE A IN (";
    for (int i = 0; i < 100; ++i) {
      statement += (i ? ", " : "") + std::to_string(i);
    }
    statement += ")";
    delete_result = client.Execute(statement);
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(
        cv.wait_for(lock, std::chrono::seconds(10), [&] { return entered; }))
        << "bulk delete never reached its first phase";
  }
  std::thread stopper([&] { EXPECT_TRUE(server->Stop().ok()); });
  // Stop() is now draining while the statement is provably mid-flight.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  stopper.join();
  deleter.join();
  ASSERT_TRUE(delete_result.ok())
      << "in-flight statement lost in drain: " << delete_result.status().ToString();
  EXPECT_EQ(delete_result->substr(0, 18), "deleted 100 row(s)");
  // The delete committed exactly once.
  EXPECT_TRUE(db->VerifyIntegrity().ok());
  auto count = ExecuteStatement(db.get(), "SELECT COUNT(*) FROM T");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, "count = 100");
  // New connections are refused after Stop.
  auto late = Client::Connect("127.0.0.1", port);
  EXPECT_TRUE(!late.ok() || !late->Ping().ok());
}

// ---------------------------------------------------------------------------
// Live observability plane: /metrics endpoint, sys.* over the wire,
// slow-query capture
// ---------------------------------------------------------------------------

TEST(NetServer, MetricsEndpointServesPrometheusText) {
  auto db = MakeDb();
  ServerOptions options;
  options.metrics_port = 0;  // ephemeral
  auto server = *Server::Start(db.get(), options);
  ASSERT_GT(server->metrics_port(), 0);

  // Move some counters so the exposition carries live traffic.
  auto client = *Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.Execute("CREATE TABLE T (A INT)").ok());
  ASSERT_TRUE(client.Execute("INSERT INTO T VALUES (1)").ok());

  std::string reply = HttpGetMetrics(server->metrics_port(), "/metrics");
  EXPECT_EQ(reply.substr(0, 15), "HTTP/1.1 200 OK") << reply;
  EXPECT_NE(reply.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(reply.find("# TYPE bulkdel_net_conns gauge\n"),
            std::string::npos) << reply;
  EXPECT_NE(reply.find("bulkdel_net_accepted 1\n"), std::string::npos);
  EXPECT_NE(reply.find("bulkdel_net_req_ns_bucket{le=\"+Inf\"}"),
            std::string::npos);
  // Registry-external gauges from the statement registry ride along.
  EXPECT_NE(reply.find("bulkdel_sessions_active"), std::string::npos);
  EXPECT_NE(reply.find("bulkdel_statements_total"), std::string::npos);

  // Wrong path and wrong method are typed HTTP errors, not hangs.
  EXPECT_EQ(HttpGetMetrics(server->metrics_port(), "/nope").substr(0, 12),
            "HTTP/1.1 404");
  EXPECT_EQ(HttpExchange(server->metrics_port(),
                         "POST /metrics HTTP/1.1\r\n\r\n")
                .substr(0, 12),
            "HTTP/1.1 405");

  client.Close();
  ASSERT_TRUE(server->Stop().ok());
  // The endpoint dies with the server.
  EXPECT_EQ(HttpGetMetrics(server->metrics_port(), "/metrics"), "");
}

TEST(NetServer, SlowQueryCaptureWritesTracecatConsumableRecords) {
  std::string path = ::testing::TempDir() + "/net_slow_query_test.jsonl";
  std::remove(path.c_str());
  auto db = MakeDb();
  ServerOptions options;
  options.slow_query_ns = 1;  // everything is slow
  options.slow_query_log = path;
  auto server = *Server::Start(db.get(), options);
  auto client = *Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.Execute("CREATE TABLE T (A INT, B INT)").ok());
  ASSERT_TRUE(client.Execute("CREATE UNIQUE INDEX ON T (A)").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.Execute("INSERT INTO T VALUES (" + std::to_string(i) +
                               ", " + std::to_string(i) + ")")
                    .ok());
  }
  ASSERT_TRUE(client.Execute("DELETE FROM T WHERE A IN (1, 2, 3)").ok());
  client.Close();
  EXPECT_GT(server->slow_queries_logged(), 0u);
  ASSERT_TRUE(server->Stop().ok());

  std::ifstream in(path);
  std::string line;
  int records = 0, delete_reports = 0;
  while (std::getline(in, line)) {
    ++records;
    auto rec = json::Parse(line);
    ASSERT_TRUE(rec.ok()) << line;
    EXPECT_GT(rec->IntOr("session"), 0) << line;
    EXPECT_GT(rec->IntOr("elapsed_ns"), 0);
    const json::Value* report = rec->Find("report");
    if (report != nullptr) {
      ++delete_reports;
      // The span subtree bulkdel_tracecat --slowlog walks.
      const json::Value* phases = report->Find("phases");
      ASSERT_NE(phases, nullptr) << line;
      EXPECT_FALSE(phases->array.empty());
    }
  }
  EXPECT_EQ(records, 53);
  EXPECT_EQ(delete_reports, 1);
  std::remove(path.c_str());
}

// TSan-covered: continuous /metrics scrapes and sys.statements queries race
// a bulk delete and three socket updaters. The plane must stay readable and
// data-race-free while secondary indices are off-line, and the SQL result
// must survive VerifyIntegrity.
TEST(NetServer, ObservabilityPlaneUnderConcurrentLoad) {
  DatabaseOptions db_options;
  db_options.memory_budget_bytes = 512 * 1024;
  db_options.concurrency = ConcurrencyProtocol::kSideFile;
  auto db = MakeDb(std::move(db_options));
  ServerOptions options;
  options.metrics_port = 0;
  auto server = *Server::Start(db.get(), options);
  uint16_t port = server->port();
  uint16_t http_port = server->metrics_port();

  const int kUpdaters = 3;
  const int64_t kPreload = 600;
  {
    auto setup = *Client::Connect("127.0.0.1", port);
    ASSERT_TRUE(setup.Execute("CREATE TABLE R (A INT, B INT, C INT)").ok());
    ASSERT_TRUE(setup.Execute("CREATE UNIQUE INDEX ON R (A)").ok());
    ASSERT_TRUE(setup.Execute("CREATE INDEX ON R (B)").ok());
    for (int64_t k = 1; k <= kPreload; ++k) {
      ASSERT_TRUE(setup.Execute("INSERT INTO R VALUES (" + std::to_string(k) +
                                ", " + std::to_string(k % 31) + ", " +
                                std::to_string(k % 17) + ")")
                      .ok());
    }
  }
  std::string bulk_delete = "DELETE FROM R WHERE A IN (";
  for (int64_t k = 1; k <= kPreload / 2; ++k) {
    bulk_delete += (k > 1 ? ", " : "") + std::to_string(k * 2);
  }
  bulk_delete += ")";

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<int> scrapes{0};
  std::atomic<int> sys_queries{0};
  std::atomic<bool> saw_running_statement{false};

  std::thread observer([&] {
    auto conn = Client::Connect("127.0.0.1", port);
    if (!conn.ok()) {
      ++failures;
      return;
    }
    while (!done.load(std::memory_order_acquire)) {
      std::string scraped = HttpGetMetrics(http_port, "/metrics");
      if (scraped.substr(0, 15) == "HTTP/1.1 200 OK" &&
          scraped.find("bulkdel_net_conns") != std::string::npos) {
        ++scrapes;
      } else {
        ++failures;
      }
      auto r = conn->Execute("SELECT * FROM sys.statements");
      if (r.ok()) {
        ++sys_queries;
        // The probe's own SELECT is always in flight while rendering, so
        // every reply deterministically shows at least one "run" row.
        if (r->find(" run ") != std::string::npos) {
          saw_running_statement.store(true, std::memory_order_relaxed);
        }
      } else {
        ++failures;
      }
    }
  });
  std::vector<std::thread> updaters;
  for (int t = 0; t < kUpdaters; ++t) {
    updaters.emplace_back([&, t] {
      auto conn = Client::Connect("127.0.0.1", port);
      if (!conn.ok()) {
        ++failures;
        return;
      }
      int64_t base = (static_cast<int64_t>(t) + 1) << 32;
      int64_t next = 0;
      while (!done.load(std::memory_order_acquire) || next < 10) {
        auto r = conn->Execute("INSERT INTO R VALUES (" +
                               std::to_string(base + next) + ", 1, 2)");
        if (!r.ok()) {
          ++failures;
          break;
        }
        ++next;
      }
    });
  }
  {
    auto conn = *Client::Connect("127.0.0.1", port);
    auto r = conn.Execute(bulk_delete);
    if (!r.ok()) ++failures;
    done.store(true, std::memory_order_release);
  }
  observer.join();
  for (std::thread& t : updaters) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(scrapes.load(), 0);
  EXPECT_GT(sys_queries.load(), 0);
  EXPECT_TRUE(saw_running_statement.load());
  ASSERT_TRUE(server->Stop().ok());
  ASSERT_TRUE(db->VerifyIntegrity().ok());
}

// The acceptance test: N concurrent socket sessions run disjoint-range DML
// (inserts, point reads, deletes of their own rows) while one session runs a
// large BULK DELETE that takes secondary indices off-line (§3.1 side-file
// protocol). Every acknowledged statement is recorded; a fresh database then
// replays them serially (per-session order; ranges are disjoint so
// cross-session order cannot matter). The RID-free logical content digests
// must match exactly — concurrency may reorder physical placement, never
// visible state.
void RunConcurrentDmlEquivalence(DatabaseOptions db_options) {
  db_options.memory_budget_bytes = 512 * 1024;
  db_options.concurrency = ConcurrencyProtocol::kSideFile;
  db_options.enable_recovery_log = true;
  auto db = MakeDb(std::move(db_options));
  auto server = *Server::Start(db.get(), {});
  uint16_t port = server->port();

  const int kUpdaters = 3;
  const int64_t kPreload = 600;
  std::vector<std::string> setup_statements = {
      "CREATE TABLE R (A INT, B INT, C INT)", "CREATE UNIQUE INDEX ON R (A)",
      "CREATE INDEX ON R (B)", "CREATE INDEX ON R (C)"};
  {
    auto setup = *Client::Connect("127.0.0.1", port);
    for (const std::string& ddl : setup_statements) {
      ASSERT_TRUE(setup.Execute(ddl).ok()) << ddl;
    }
    for (int64_t k = 1; k <= kPreload; ++k) {
      std::string insert = "INSERT INTO R VALUES (" + std::to_string(k) +
                           ", " + std::to_string(k % 31) + ", " +
                           std::to_string(k % 17) + ")";
      ASSERT_TRUE(setup.Execute(insert).ok());
      setup_statements.push_back(std::move(insert));
    }
  }

  // One big delete of half the preload range, racing kUpdaters sessions that
  // insert into their own key ranges and delete some of their own inserts.
  std::string bulk_delete = "DELETE FROM R WHERE A IN (";
  for (int64_t k = 1; k <= kPreload / 2; ++k) {
    bulk_delete += (k > 1 ? ", " : "") + std::to_string(k * 2);
  }
  bulk_delete += ")";

  std::atomic<bool> delete_done{false};
  std::vector<std::vector<std::string>> acked(kUpdaters);
  std::atomic<int> failures{0};
  std::vector<std::thread> updaters;
  updaters.reserve(kUpdaters);
  for (int t = 0; t < kUpdaters; ++t) {
    updaters.emplace_back([&, t] {
      auto conn = Client::Connect("127.0.0.1", port);
      if (!conn.ok()) {
        ++failures;
        return;
      }
      int64_t base = (static_cast<int64_t>(t) + 1) << 32;
      int64_t next = 0;
      // Keep issuing DML until the bulk delete has finished, so some of it
      // provably lands inside the off-line window.
      while (!delete_done.load(std::memory_order_acquire) || next < 10) {
        int64_t key = base + next;
        std::string insert = "INSERT INTO R VALUES (" + std::to_string(key) +
                             ", " + std::to_string(key % 31) + ", " +
                             std::to_string(key % 17) + ")";
        auto r = conn->Execute(insert);
        if (!r.ok()) {
          ++failures;
          break;
        }
        acked[static_cast<size_t>(t)].push_back(std::move(insert));
        if (next % 5 == 4) {  // delete one of our own earlier rows
          std::string del = "DELETE FROM R WHERE A IN (" +
                            std::to_string(base + next - 2) + ")";
          auto d = conn->Execute(del);
          if (!d.ok()) {
            ++failures;
            break;
          }
          acked[static_cast<size_t>(t)].push_back(std::move(del));
        }
        if (next % 3 == 0) {  // point read; no state effect, just load
          auto q = conn->Execute("SELECT COUNT(*) FROM R WHERE A BETWEEN " +
                                 std::to_string(key) + " AND " +
                                 std::to_string(key));
          if (!q.ok()) {
            ++failures;
            break;
          }
        }
        ++next;
      }
    });
  }
  std::thread deleter([&] {
    auto conn = *Client::Connect("127.0.0.1", port);
    auto r = conn.Execute(bulk_delete);
    if (!r.ok()) ++failures;
    delete_done.store(true, std::memory_order_release);
  });
  deleter.join();
  for (std::thread& t : updaters) t.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_TRUE(server->Stop().ok());
  ASSERT_TRUE(db->VerifyIntegrity().ok());
  auto concurrent_digest = LogicalContentHash(db.get(), "R");
  ASSERT_TRUE(concurrent_digest.ok()) << concurrent_digest.status().ToString();

  // Serial reference: same statements, one connection's worth at a time, on
  // a plain single-threaded database (no server, no side-files).
  auto reference = MakeDb();
  for (const std::string& s : setup_statements) {
    ASSERT_TRUE(ExecuteStatement(reference.get(), s).ok()) << s;
  }
  auto del = ExecuteStatement(reference.get(), bulk_delete);
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  for (const auto& session_statements : acked) {
    for (const std::string& s : session_statements) {
      ASSERT_TRUE(ExecuteStatement(reference.get(), s).ok()) << s;
    }
  }
  ASSERT_TRUE(reference->VerifyIntegrity().ok());
  auto reference_digest = LogicalContentHash(reference.get(), "R");
  ASSERT_TRUE(reference_digest.ok());
  EXPECT_EQ(*concurrent_digest, *reference_digest)
      << "concurrent execution diverged from the serial reference";
}

TEST(NetServer, ConcurrentDmlMatchesSerialReferenceSim) {
  RunConcurrentDmlEquivalence({});
}

TEST(NetServer, ConcurrentDmlMatchesSerialReferenceFile) {
  std::string dir = ::testing::TempDir() + "/bulkdel_net_server_file";
  std::remove((dir + "/pages.db").c_str());
  std::remove((dir + "/wal.log").c_str());
  DatabaseOptions options;
  options.backend = StorageBackend::kFile;
  options.path = dir;
  RunConcurrentDmlEquivalence(std::move(options));
}

}  // namespace
}  // namespace net
}  // namespace bulkdel

// Extendible-hash index (the paper's §5 future work) — unit and property
// tests, including the bulk delete by hash partitioning.

#include "hashidx/hash_index.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "util/random.h"

namespace bulkdel {
namespace {

class HashIndexTest : public ::testing::Test {
 protected:
  HashIndexTest() : pool_(&disk_, 1024 * kPageSize) {}

  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(HashIndexTest, EmptyIndex) {
  auto index = *HashIndex::Create(&pool_);
  EXPECT_EQ(index.entry_count(), 0u);
  EXPECT_EQ(index.global_depth(), 0);
  EXPECT_TRUE(index.Search(42)->empty());
  ASSERT_TRUE(index.CheckInvariants().ok());
}

TEST_F(HashIndexTest, InsertSearchDelete) {
  auto index = *HashIndex::Create(&pool_);
  for (int64_t k = 0; k < 5000; ++k) {
    ASSERT_TRUE(index.Insert(k, Rid(static_cast<PageId>(k + 1), 0)).ok()) << k;
  }
  EXPECT_EQ(index.entry_count(), 5000u);
  EXPECT_GT(index.global_depth(), 0);
  ASSERT_TRUE(index.CheckInvariants().ok());
  for (int64_t k : {0, 77, 4999}) {
    auto rids = index.Search(k);
    ASSERT_TRUE(rids.ok());
    ASSERT_EQ(rids->size(), 1u);
    EXPECT_EQ((*rids)[0].page, static_cast<PageId>(k + 1));
  }
  EXPECT_TRUE(index.Search(5000)->empty());

  ASSERT_TRUE(index.Delete(123, Rid(124, 0)).ok());
  EXPECT_TRUE(index.Search(123)->empty());
  EXPECT_TRUE(index.Delete(123, Rid(124, 0)).IsNotFound());
  EXPECT_EQ(index.entry_count(), 4999u);
  ASSERT_TRUE(index.CheckInvariants().ok());
}

TEST_F(HashIndexTest, DuplicateCompositeRejected) {
  auto index = *HashIndex::Create(&pool_);
  ASSERT_TRUE(index.Insert(1, Rid(1, 1)).ok());
  EXPECT_EQ(index.Insert(1, Rid(1, 1)).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(index.Insert(1, Rid(1, 2)).ok());  // same key, new rid is fine
  EXPECT_EQ(index.Search(1)->size(), 2u);
}

TEST_F(HashIndexTest, HeavyDuplicatesUseOverflowChains) {
  auto index = *HashIndex::Create(&pool_);
  // 2000 entries with the same key can never be split apart: overflow
  // chains must absorb them.
  for (uint16_t s = 0; s < 2000; ++s) {
    ASSERT_TRUE(index.Insert(7, Rid(1, 0)).ok() ||
                true);  // first iteration only
    break;
  }
  for (int i = 0; i < 2000; ++i) {
    Status st = index.Insert(7, Rid(static_cast<PageId>(i + 2), 0));
    ASSERT_TRUE(st.ok()) << i << " " << st.ToString();
  }
  EXPECT_EQ(index.Search(7)->size(), 2001u);
  ASSERT_TRUE(index.CheckInvariants().ok());
  // Bulk delete removes the whole chain in one pass.
  HashBulkDeleteStats stats;
  ASSERT_TRUE(index.BulkDeleteKeys({7}, &stats).ok());
  EXPECT_EQ(stats.entries_deleted, 2001u);
  EXPECT_GT(stats.overflow_pages_visited, 0u);
  EXPECT_TRUE(index.Search(7)->empty());
  ASSERT_TRUE(index.CheckInvariants().ok());
}

TEST_F(HashIndexTest, BulkDeleteMatchesModel) {
  auto index = *HashIndex::Create(&pool_);
  Random rng(5);
  std::map<int64_t, Rid> model;
  for (int i = 0; i < 20000; ++i) {
    int64_t k = static_cast<int64_t>(rng.Next() >> 16);
    Rid rid(static_cast<PageId>(i + 1), static_cast<uint16_t>(i % 8));
    if (model.emplace(k, rid).second) {
      ASSERT_TRUE(index.Insert(k, rid).ok());
    }
  }
  ASSERT_TRUE(index.CheckInvariants().ok());

  // Delete a random 30% of the keys in bulk.
  std::vector<int64_t> doomed;
  for (const auto& [k, rid] : model) {
    if (rng.Bernoulli(0.3)) doomed.push_back(k);
  }
  HashBulkDeleteStats stats;
  ASSERT_TRUE(index.BulkDeleteKeys(doomed, &stats).ok());
  EXPECT_EQ(stats.entries_deleted, doomed.size());
  for (int64_t k : doomed) model.erase(k);
  EXPECT_EQ(index.entry_count(), model.size());
  ASSERT_TRUE(index.CheckInvariants().ok());

  // Everything left is exactly the model.
  std::set<int64_t> seen;
  ASSERT_TRUE(index
                  .ScanAll([&](int64_t k, const Rid& rid) {
                    auto it = model.find(k);
                    if (it == model.end() || !(it->second == rid)) {
                      return Status::Internal("unexpected entry");
                    }
                    seen.insert(k);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen.size(), model.size());
}

TEST_F(HashIndexTest, BulkDeleteMissingKeysIsIdempotent) {
  auto index = *HashIndex::Create(&pool_);
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(index.Insert(k, Rid(1, static_cast<uint16_t>(k))).ok());
  }
  HashBulkDeleteStats stats;
  ASSERT_TRUE(index.BulkDeleteKeys({-5, 50, 1000}, &stats).ok());
  EXPECT_EQ(stats.entries_deleted, 1u);
  ASSERT_TRUE(index.BulkDeleteKeys({-5, 50, 1000}, &stats).ok());
  EXPECT_EQ(stats.entries_deleted, 0u);
  ASSERT_TRUE(index.CheckInvariants().ok());
}

TEST_F(HashIndexTest, BulkDeleteVisitsEachAffectedBucketOnce) {
  auto index = *HashIndex::Create(&pool_);
  for (int64_t k = 0; k < 10000; ++k) {
    ASSERT_TRUE(index.Insert(k, Rid(static_cast<PageId>(k + 1), 0)).ok());
  }
  // Many keys landing in few buckets: visited buckets must stay bounded by
  // the number of distinct affected buckets, not the key count.
  std::vector<int64_t> doomed;
  for (int64_t k = 0; k < 10000; k += 2) doomed.push_back(k);
  HashBulkDeleteStats stats;
  ASSERT_TRUE(index.BulkDeleteKeys(doomed, &stats).ok());
  EXPECT_EQ(stats.entries_deleted, doomed.size());
  EXPECT_LE(stats.buckets_visited, index.num_buckets());
  ASSERT_TRUE(index.CheckInvariants().ok());
}

TEST_F(HashIndexTest, ReopenFromMeta) {
  PageId meta;
  {
    auto index = *HashIndex::Create(&pool_);
    meta = index.meta_page();
    for (int64_t k = 0; k < 3000; ++k) {
      ASSERT_TRUE(index.Insert(k, Rid(1, 0)).ok());
    }
    ASSERT_TRUE(index.FlushMeta().ok());
  }
  auto index = HashIndex::Open(&pool_, meta);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->entry_count(), 3000u);
  EXPECT_EQ(index->Search(1234)->size(), 1u);
  ASSERT_TRUE(index->CheckInvariants().ok());
}

TEST_F(HashIndexTest, RandomizedInsertDeleteAgainstModel) {
  auto index = *HashIndex::Create(&pool_);
  Random rng(31);
  std::set<std::pair<int64_t, uint64_t>> model;  // (key, packed rid)
  for (int step = 0; step < 20000; ++step) {
    if (model.empty() || rng.Bernoulli(0.65)) {
      int64_t k = rng.UniformInt(0, 2000);  // plenty of duplicates
      Rid rid(static_cast<PageId>(rng.Uniform(500) + 1),
              static_cast<uint16_t>(rng.Uniform(16)));
      Status s = index.Insert(k, rid);
      if (model.count({k, rid.Pack()}) > 0) {
        EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        model.insert({k, rid.Pack()});
      }
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(index.Delete(it->first, Rid::Unpack(it->second)).ok());
      model.erase(it);
    }
  }
  EXPECT_EQ(index.entry_count(), model.size());
  ASSERT_TRUE(index.CheckInvariants().ok());
}

}  // namespace
}  // namespace bulkdel

#include "plan/planner.h"

#include <gtest/gtest.h>

#include "storage/page.h"

namespace bulkdel {
namespace {

/// A paper-shaped input: 100k-tuple table, three indices, A unique.
PlannerInput PaperInput(uint64_t n_delete, bool a_clustered = false) {
  PlannerInput input;
  input.table.tuples = 100000;
  input.table.pages = 100000 / 15;
  input.table.tuples_per_page = 15;
  input.n_delete = n_delete;
  const char* names[] = {"R.A", "R.B", "R.C"};
  for (int i = 0; i < 3; ++i) {
    IndexInfo info;
    info.name = names[i];
    info.column = i;
    info.entries = 100000;
    info.leaves = 100000 / 250;
    info.height = 3;
    info.unique = i == 0;
    info.clustered = i == 0 && a_clustered;
    info.is_key_index = i == 0;
    input.indices.push_back(info);
  }
  return input;
}

CostModel DefaultCost(size_t budget = 1 << 20) {
  return CostModel(DiskModel(), budget);
}

TEST(CostModelTest, SeqCheaperThanRandom) {
  CostModel cost = DefaultCost();
  EXPECT_LT(cost.SeqPages(100), cost.RandomPages(100));
}

TEST(CostModelTest, SortFreeWhenFits) {
  CostModel cost = DefaultCost(1 << 20);
  EXPECT_EQ(cost.SortCost(1000, 8), 0.0);
  EXPECT_GT(cost.SortCost(10 * 1000 * 1000, 8), 0.0);
}

TEST(CostModelTest, TraditionalGrowsWithDeletes) {
  CostModel cost = DefaultCost();
  PlannerInput small = PaperInput(100);
  PlannerInput large = PaperInput(20000);
  EXPECT_LT(
      cost.TraditionalCost(small.table, small.indices, small.n_delete, false),
      cost.TraditionalCost(large.table, large.indices, large.n_delete, false));
}

TEST(CostModelTest, SortedTraditionalBeatsUnsorted) {
  CostModel cost = DefaultCost();
  PlannerInput input = PaperInput(15000);
  EXPECT_LT(
      cost.TraditionalCost(input.table, input.indices, input.n_delete, true),
      cost.TraditionalCost(input.table, input.indices, input.n_delete, false));
}

TEST(CostModelTest, MergePassInsensitiveToHeight) {
  CostModel cost = DefaultCost();
  IndexInfo h3;
  h3.leaves = 400;
  h3.height = 3;
  IndexInfo h4 = h3;
  h4.height = 4;
  EXPECT_EQ(cost.IndexMergePassCost(h3, 15000),
            cost.IndexMergePassCost(h4, 15000));
}

TEST(PlannerTest, LargeDeleteChoosesVertical) {
  CostModel cost = DefaultCost();
  Planner planner(cost);
  auto plan = planner.Choose(PaperInput(15000));  // 15%
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->strategy == Strategy::kVerticalSortMerge ||
              plan->strategy == Strategy::kVerticalHash ||
              plan->strategy == Strategy::kVerticalPartitionedHash);
}

TEST(PlannerTest, TinyDeleteChoosesHorizontal) {
  CostModel cost = DefaultCost();
  Planner planner(cost);
  auto plan = planner.Choose(PaperInput(3));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->strategy == Strategy::kTraditional ||
              plan->strategy == Strategy::kTraditionalSorted)
      << StrategyName(plan->strategy);
}

TEST(PlannerTest, VerticalPlanOrdersUniqueFirst) {
  CostModel cost = DefaultCost();
  Planner planner(cost);
  PlannerInput input = PaperInput(15000);
  input.indices[2].unique = true;  // make R.C unique too
  auto plan = planner.PlanFor(Strategy::kVerticalSortMerge, input);
  ASSERT_TRUE(plan.ok());
  // Steps: key index, table, then R.C (unique) before R.B.
  ASSERT_EQ(plan->steps.size(), 4u);
  EXPECT_EQ(plan->steps[0].structure, "R.A");
  EXPECT_TRUE(plan->steps[1].is_table);
  EXPECT_EQ(plan->steps[2].structure, "R.C");
  EXPECT_EQ(plan->steps[3].structure, "R.B");
}

TEST(PlannerTest, PriorityOrdersNonUniqueIndices) {
  // §3.1.3: critical indices first. R.C gets a high priority.
  CostModel cost = DefaultCost();
  Planner planner(cost);
  PlannerInput input = PaperInput(15000);
  input.indices[2].priority = 5;  // R.C before R.B
  auto plan = planner.PlanFor(Strategy::kVerticalSortMerge, input);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 4u);
  EXPECT_EQ(plan->steps[2].structure, "R.C");
  EXPECT_EQ(plan->steps[3].structure, "R.B");
  // Unique still trumps priority.
  input.indices[1].unique = true;  // R.B unique, low priority
  plan = planner.PlanFor(Strategy::kVerticalSortMerge, input);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps[2].structure, "R.B");
  EXPECT_EQ(plan->steps[3].structure, "R.C");
}

TEST(PlannerTest, ClusteredKeyIndexSkipsRidSort) {
  CostModel cost = DefaultCost();
  Planner planner(cost);
  auto plan = planner.PlanFor(Strategy::kVerticalSortMerge,
                              PaperInput(15000, /*a_clustered=*/true));
  ASSERT_TRUE(plan.ok());
  ASSERT_GE(plan->steps.size(), 2u);
  EXPECT_TRUE(plan->steps[1].is_table);
  EXPECT_TRUE(plan->steps[1].input_sorted);
}

TEST(PlannerTest, HashForcedFallsBackToPartitionedWhenTooBig) {
  // Budget too small for a 15k-RID hash set.
  CostModel cost = DefaultCost(32 * 1024);
  Planner planner(cost);
  auto plan = planner.PlanFor(Strategy::kVerticalHash, PaperInput(15000));
  ASSERT_TRUE(plan.ok());
  bool any_partitioned = false;
  for (const PlanStep& step : plan->steps) {
    if (step.method == DeleteMethod::kPartitionedHash) any_partitioned = true;
    EXPECT_NE(step.method == DeleteMethod::kClassicHash && !step.is_table &&
                  step.structure != "R.A",
              true)
        << "classic hash chosen despite not fitting";
  }
  EXPECT_TRUE(any_partitioned);
}

TEST(PlannerTest, ExplainMentionsEveryStructure) {
  CostModel cost = DefaultCost();
  Planner planner(cost);
  auto plan = planner.PlanFor(Strategy::kVerticalSortMerge, PaperInput(15000));
  ASSERT_TRUE(plan.ok());
  std::string text = plan->Explain();
  EXPECT_NE(text.find("R.A"), std::string::npos);
  EXPECT_NE(text.find("R.B"), std::string::npos);
  EXPECT_NE(text.find("R.C"), std::string::npos);
  EXPECT_NE(text.find("table"), std::string::npos);
}

TEST(PlannerTest, EstimatesComparableToSimulatedScale) {
  // The estimate should land within the right order of magnitude of a
  // leaf-level pass: 3 indices * 400 leaves * ~0.4ms plus table pass.
  CostModel cost = DefaultCost();
  Planner planner(cost);
  auto plan = planner.PlanFor(Strategy::kVerticalSortMerge, PaperInput(15000));
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->est_micros, 1e5);
  EXPECT_LT(plan->est_micros, 1e8);
}

}  // namespace
}  // namespace bulkdel

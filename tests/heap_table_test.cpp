#include "table/heap_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "table/heap_page.h"
#include "util/random.h"

namespace bulkdel {
namespace {

Schema SmallSchema() {
  return *Schema::PaperStyle(/*n_ints=*/3, /*tuple_size=*/64);
}

class HeapTableTest : public ::testing::Test {
 protected:
  HeapTableTest() : pool_(&disk_, 64 * kPageSize), schema_(SmallSchema()) {}

  std::vector<char> MakeTuple(int64_t a, int64_t b, int64_t c) {
    std::vector<char> t(schema_.tuple_size(), 0);
    schema_.SetInt(t.data(), 0, a);
    schema_.SetInt(t.data(), 1, b);
    schema_.SetInt(t.data(), 2, c);
    return t;
  }

  DiskManager disk_;
  BufferPool pool_;
  Schema schema_;
};

TEST(HeapPageTest, CapacityMatchesLayout) {
  for (uint32_t ts : {16u, 64u, 256u, 512u, 1024u}) {
    uint16_t cap = HeapPage::CapacityFor(ts);
    EXPECT_GT(cap, 0u);
    // header + bitmap + tuples must fit.
    EXPECT_LE(8u + (cap + 7u) / 8u + cap * ts, kPageSize);
    // one more would not fit.
    EXPECT_GT(8u + (cap + 8u) / 8u + (cap + 1u) * ts, kPageSize);
  }
}

TEST(HeapPageTest, InsertDeleteRoundTrip) {
  alignas(8) char buf[kPageSize];
  HeapPage page(buf, 64);
  page.Init();
  EXPECT_TRUE(page.IsEmpty());
  char tuple[64];
  std::memset(tuple, 7, sizeof(tuple));
  int s0 = page.Insert(tuple);
  ASSERT_GE(s0, 0);
  EXPECT_TRUE(page.SlotOccupied(static_cast<uint16_t>(s0)));
  EXPECT_EQ(page.live_count(), 1);
  EXPECT_TRUE(page.Delete(static_cast<uint16_t>(s0)));
  EXPECT_FALSE(page.Delete(static_cast<uint16_t>(s0)));  // double delete
  EXPECT_TRUE(page.IsEmpty());
}

TEST(HeapPageTest, FillsToCapacityThenRejects) {
  alignas(8) char buf[kPageSize];
  HeapPage page(buf, 128);
  page.Init();
  char tuple[128] = {};
  uint16_t cap = HeapPage::CapacityFor(128);
  for (uint16_t i = 0; i < cap; ++i) {
    ASSERT_GE(page.Insert(tuple), 0) << "slot " << i;
  }
  EXPECT_TRUE(page.IsFull());
  EXPECT_EQ(page.Insert(tuple), -1);
}

TEST_F(HeapTableTest, InsertGetDelete) {
  auto table = HeapTable::Create(&pool_, schema_);
  ASSERT_TRUE(table.ok());
  auto t = MakeTuple(1, 2, 3);
  auto rid = table->Insert(t.data());
  ASSERT_TRUE(rid.ok());
  std::vector<char> out(schema_.tuple_size());
  ASSERT_TRUE(table->Get(*rid, out.data()).ok());
  EXPECT_EQ(schema_.GetInt(out.data(), 0), 1);
  EXPECT_EQ(schema_.GetInt(out.data(), 2), 3);
  EXPECT_EQ(table->tuple_count(), 1u);

  std::vector<char> deleted(schema_.tuple_size());
  ASSERT_TRUE(table->Delete(*rid, deleted.data()).ok());
  EXPECT_EQ(schema_.GetInt(deleted.data(), 1), 2);
  EXPECT_EQ(table->tuple_count(), 0u);
  EXPECT_TRUE(table->Get(*rid, out.data()).IsNotFound());
  EXPECT_TRUE(table->Delete(*rid).IsNotFound());
}

TEST_F(HeapTableTest, ScanVisitsAllInInsertionOrder) {
  auto table = *HeapTable::Create(&pool_, schema_);
  constexpr int kN = 1000;
  for (int i = 0; i < kN; ++i) {
    auto t = MakeTuple(i, i * 2, i * 3);
    ASSERT_TRUE(table.Insert(t.data()).ok());
  }
  int64_t expect = 0;
  ASSERT_TRUE(table
                  .Scan([&](const Rid&, const char* tuple) {
                    EXPECT_EQ(schema_.GetInt(tuple, 0), expect);
                    ++expect;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(expect, kN);
  EXPECT_GT(table.num_data_pages(), 1u);
}

TEST_F(HeapTableTest, DeletedSlotsAreReused) {
  auto table = *HeapTable::Create(&pool_, schema_);
  std::vector<Rid> rids;
  for (int i = 0; i < 500; ++i) {
    auto t = MakeTuple(i, 0, 0);
    rids.push_back(*table.Insert(t.data()));
  }
  uint32_t pages_before = table.num_data_pages();
  for (int i = 0; i < 500; i += 2) ASSERT_TRUE(table.Delete(rids[i]).ok());
  for (int i = 0; i < 250; ++i) {
    auto t = MakeTuple(1000 + i, 0, 0);
    ASSERT_TRUE(table.Insert(t.data()).ok());
  }
  EXPECT_EQ(table.num_data_pages(), pages_before);  // no growth: slots reused
  EXPECT_EQ(table.tuple_count(), 500u);
}

TEST_F(HeapTableTest, BulkDeleteSortedRidsOnePassAndIdempotent) {
  auto table = *HeapTable::Create(&pool_, schema_);
  std::vector<Rid> rids;
  for (int i = 0; i < 2000; ++i) {
    auto t = MakeTuple(i, 0, 0);
    rids.push_back(*table.Insert(t.data()));
  }
  // Delete every third tuple.
  std::vector<Rid> doomed;
  for (size_t i = 0; i < rids.size(); i += 3) doomed.push_back(rids[i]);
  std::sort(doomed.begin(), doomed.end());

  std::vector<int64_t> seen;
  uint64_t deleted = 0, missing = 0;
  ASSERT_TRUE(table
                  .BulkDeleteSortedRids(
                      doomed,
                      [&](const Rid&, const char* tuple) {
                        seen.push_back(schema_.GetInt(tuple, 0));
                      },
                      &deleted, &missing)
                  .ok());
  EXPECT_EQ(deleted, doomed.size());
  EXPECT_EQ(missing, 0u);
  EXPECT_EQ(seen.size(), doomed.size());
  EXPECT_EQ(table.tuple_count(), 2000u - doomed.size());

  // Re-execution is a no-op (crash-recovery idempotence).
  ASSERT_TRUE(table.BulkDeleteSortedRids(doomed, nullptr, &deleted, &missing)
                  .ok());
  EXPECT_EQ(deleted, 0u);
  EXPECT_EQ(missing, doomed.size());
  EXPECT_EQ(table.tuple_count(), 2000u - doomed.size());
}

TEST_F(HeapTableTest, ScanDeleteIfMatchesPredicate) {
  auto table = *HeapTable::Create(&pool_, schema_);
  for (int i = 0; i < 1000; ++i) {
    auto t = MakeTuple(i, 0, 0);
    ASSERT_TRUE(table.Insert(t.data()).ok());
  }
  uint64_t deleted = 0;
  ASSERT_TRUE(table
                  .ScanDeleteIf(
                      [&](const Rid&, const char* tuple) {
                        return schema_.GetInt(tuple, 0) % 2 == 0;
                      },
                      nullptr, &deleted)
                  .ok());
  EXPECT_EQ(deleted, 500u);
  EXPECT_EQ(table.tuple_count(), 500u);
  ASSERT_TRUE(table
                  .Scan([&](const Rid&, const char* tuple) {
                    EXPECT_EQ(schema_.GetInt(tuple, 0) % 2, 1);
                    return Status::OK();
                  })
                  .ok());
}

TEST_F(HeapTableTest, ReopenAfterFlushMeta) {
  PageId header;
  {
    auto table = *HeapTable::Create(&pool_, schema_);
    header = table.header_page();
    for (int i = 0; i < 100; ++i) {
      auto t = MakeTuple(i, 0, 0);
      ASSERT_TRUE(table.Insert(t.data()).ok());
    }
    ASSERT_TRUE(table.FlushMeta().ok());
  }
  auto reopened = HeapTable::Open(&pool_, schema_, header);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->tuple_count(), 100u);
  int rows = 0;
  ASSERT_TRUE(reopened
                  ->Scan([&](const Rid&, const char*) {
                    ++rows;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(rows, 100);
}

TEST_F(HeapTableTest, RecountFromScanRepairsStaleCount) {
  auto table = *HeapTable::Create(&pool_, schema_);
  for (int i = 0; i < 50; ++i) {
    auto t = MakeTuple(i, 0, 0);
    ASSERT_TRUE(table.Insert(t.data()).ok());
  }
  ASSERT_TRUE(table.RecountFromScan().ok());
  EXPECT_EQ(table.tuple_count(), 50u);
}

TEST_F(HeapTableTest, DropFreesAllPages) {
  uint32_t free_before = disk_.NumFreePages();
  auto table = *HeapTable::Create(&pool_, schema_);
  for (int i = 0; i < 500; ++i) {
    auto t = MakeTuple(i, 0, 0);
    ASSERT_TRUE(table.Insert(t.data()).ok());
  }
  uint32_t pages = table.num_data_pages();
  ASSERT_TRUE(table.Drop().ok());
  EXPECT_EQ(disk_.NumFreePages(), free_before + pages + 1);  // + header
}

TEST_F(HeapTableTest, RandomizedAgainstReferenceModel) {
  auto table = *HeapTable::Create(&pool_, schema_);
  Random rng(42);
  std::map<uint64_t, int64_t> model;  // packed rid -> A value
  int64_t next_a = 0;
  for (int step = 0; step < 5000; ++step) {
    if (model.empty() || rng.Bernoulli(0.6)) {
      auto t = MakeTuple(next_a, 0, 0);
      Rid rid = *table.Insert(t.data());
      ASSERT_EQ(model.count(rid.Pack()), 0u) << "RID reused while live";
      model[rid.Pack()] = next_a++;
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      Rid rid = Rid::Unpack(it->first);
      std::vector<char> out(schema_.tuple_size());
      ASSERT_TRUE(table.Delete(rid, out.data()).ok());
      EXPECT_EQ(schema_.GetInt(out.data(), 0), it->second);
      model.erase(it);
    }
  }
  EXPECT_EQ(table.tuple_count(), model.size());
  size_t visited = 0;
  ASSERT_TRUE(table
                  .Scan([&](const Rid& rid, const char* tuple) {
                    auto it = model.find(rid.Pack());
                    EXPECT_NE(it, model.end());
                    if (it != model.end()) {
                      EXPECT_EQ(schema_.GetInt(tuple, 0), it->second);
                    }
                    ++visited;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(visited, model.size());
}

}  // namespace
}  // namespace bulkdel

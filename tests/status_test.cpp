#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace bulkdel {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "key 42");
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_FALSE(StatusCodeName(static_cast<StatusCode>(c)).empty());
  }
}

Status FailingFn() { return Status::IOError("disk gone"); }

Status Propagates() {
  BULKDEL_RETURN_IF_ERROR(FailingFn());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = Propagates();
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

Result<int> MakeValue(bool fail) {
  if (fail) return Status::InvalidArgument("nope");
  return 7;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = MakeValue(false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = MakeValue(true);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> AssignOrReturnUser(bool fail) {
  BULKDEL_ASSIGN_OR_RETURN(int v, MakeValue(fail));
  return v + 1;
}

TEST(ResultTest, AssignOrReturn) {
  EXPECT_EQ(*AssignOrReturnUser(false), 8);
  EXPECT_FALSE(AssignOrReturnUser(true).ok());
}

}  // namespace
}  // namespace bulkdel

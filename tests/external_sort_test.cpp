#include "sort/external_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "storage/spill.h"
#include "util/random.h"

namespace bulkdel {
namespace {

TEST(ExternalSortTest, InMemorySortNoIo) {
  DiskManager disk;
  ExternalSorter<int64_t> sorter(&disk, 1 << 20);
  Random rng(1);
  std::vector<int64_t> expect;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-100000, 100000);
    expect.push_back(v);
    ASSERT_TRUE(sorter.Add(v).ok());
  }
  std::sort(expect.begin(), expect.end());
  auto out = sorter.FinishToVector();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, expect);
  EXPECT_EQ(sorter.stats().runs, 0);
  EXPECT_EQ(disk.stats().reads + disk.stats().writes, 0);
}

TEST(ExternalSortTest, SpillsAndMergesUnderTinyBudget) {
  DiskManager disk;
  // Budget of 2 pages of int64 => 1024 items per run.
  ExternalSorter<int64_t> sorter(&disk, 2 * kPageSize);
  Random rng(2);
  std::vector<int64_t> expect;
  for (int i = 0; i < 50000; ++i) {
    int64_t v = static_cast<int64_t>(rng.Next() % 1000000);
    expect.push_back(v);
    ASSERT_TRUE(sorter.Add(v).ok());
  }
  std::sort(expect.begin(), expect.end());
  auto out = sorter.FinishToVector();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, expect);
  EXPECT_GT(sorter.stats().runs, 1);
  EXPECT_GT(sorter.stats().pages_spilled, 0);
  EXPECT_GT(disk.stats().writes, 0);
  // Multi-pass merging: run count exceeded the fan-in of a 2-page budget.
  EXPECT_GE(sorter.stats().merge_passes, 1);
  // All scratch pages returned.
  EXPECT_EQ(disk.NumFreePages(), disk.NumAllocatedPages());
}

TEST(ExternalSortTest, EmptyInput) {
  DiskManager disk;
  ExternalSorter<int64_t> sorter(&disk, 1 << 20);
  auto out = sorter.FinishToVector();
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(ExternalSortTest, DuplicatesSurvive) {
  DiskManager disk;
  ExternalSorter<int64_t> sorter(&disk, 2 * kPageSize);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(sorter.Add(i % 7).ok());
  }
  auto out = sorter.FinishToVector();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 10000u);
  EXPECT_TRUE(std::is_sorted(out->begin(), out->end()));
}

TEST(ExternalSortTest, KeyRidCompositeOrder) {
  DiskManager disk;
  std::vector<KeyRid> entries;
  Random rng(3);
  for (int i = 0; i < 20000; ++i) {
    entries.emplace_back(rng.UniformInt(0, 100),
                         Rid(static_cast<PageId>(rng.Uniform(1000)),
                             static_cast<uint16_t>(rng.Uniform(64))));
  }
  std::vector<KeyRid> expect = entries;
  std::sort(expect.begin(), expect.end());
  ASSERT_TRUE(SortKeyRids(&disk, 2 * kPageSize, &entries).ok());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_TRUE(entries[i] == expect[i]);
  }
}

TEST(ExternalSortTest, RidPhysicalOrder) {
  DiskManager disk;
  std::vector<Rid> rids;
  Random rng(4);
  for (int i = 0; i < 5000; ++i) {
    rids.emplace_back(static_cast<PageId>(rng.Uniform(100000)),
                      static_cast<uint16_t>(rng.Uniform(64)));
  }
  SortStats stats;
  ASSERT_TRUE(SortRids(&disk, 1 << 20, &rids, &stats).ok());
  EXPECT_TRUE(std::is_sorted(rids.begin(), rids.end()));
  EXPECT_EQ(stats.items, 5000);
}

struct SortSweepParam {
  size_t budget_bytes;
  size_t items;
  const char* name;
};

class ExternalSortSweep : public ::testing::TestWithParam<SortSweepParam> {};

TEST_P(ExternalSortSweep, SortsCorrectlyAndFreesScratch) {
  const SortSweepParam& param = GetParam();
  DiskManager disk;
  ExternalSorter<int64_t> sorter(&disk, param.budget_bytes);
  Random rng(param.items * 31 + param.budget_bytes);
  std::vector<int64_t> expect;
  expect.reserve(param.items);
  for (size_t i = 0; i < param.items; ++i) {
    int64_t v = static_cast<int64_t>(rng.Next());
    expect.push_back(v);
    ASSERT_TRUE(sorter.Add(v).ok());
  }
  std::sort(expect.begin(), expect.end());
  int64_t prev = INT64_MIN;
  size_t count = 0;
  ASSERT_TRUE(sorter
                  .Finish([&](const int64_t& v) {
                    if (v < prev) return Status::Internal("out of order");
                    if (v != expect[count]) {
                      return Status::Internal("wrong element");
                    }
                    prev = v;
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, param.items);
  // Every scratch page is back on the free list.
  EXPECT_EQ(disk.NumFreePages(), disk.NumAllocatedPages());
}

INSTANTIATE_TEST_SUITE_P(
    BudgetSweep, ExternalSortSweep,
    ::testing::Values(
        SortSweepParam{1 << 22, 100, "TinyInputHugeBudget"},
        SortSweepParam{1 << 22, 100000, "BigInputHugeBudget"},
        SortSweepParam{2 * kPageSize, 5000, "TwoPageBudget"},
        SortSweepParam{3 * kPageSize, 40000, "ThreePageBudgetMultiPass"},
        SortSweepParam{8 * kPageSize, 100000, "EightPageBudget"},
        SortSweepParam{1, 3000, "DegenerateBudgetClamped"}),
    [](const ::testing::TestParamInfo<SortSweepParam>& info) {
      return info.param.name;
    });

TEST(SpillTest, RoundTripAndFree) {
  DiskManager disk;
  std::vector<KeyRid> items;
  for (int i = 0; i < 3000; ++i) {
    items.emplace_back(i, Rid(static_cast<PageId>(i * 2), 3));
  }
  auto list = SpillToDisk(&disk, items);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->count, items.size());
  auto back = ReadSpilled(&disk, *list);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_TRUE((*back)[i] == items[i]);
  }
  ASSERT_TRUE(FreeSpilled(&disk, &*list).ok());
  EXPECT_EQ(disk.NumFreePages(), disk.NumAllocatedPages());
}

TEST(SpillTest, EmptyList) {
  DiskManager disk;
  auto list = SpillToDisk(&disk, std::vector<int64_t>{});
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->count, 0u);
  auto back = ReadSpilled(&disk, *list);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

}  // namespace
}  // namespace bulkdel

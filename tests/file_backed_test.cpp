// End-to-end tests of the file durability backend: a Database opened with a
// non-empty path keeps its pages in `<dir>/pages.db` (pread/pwrite + fsync)
// and its WAL in `<dir>/wal.log` (checksummed binary frames, group-commit
// fsync). Crashes are simulated the way a real crash behaves — every
// in-memory structure is discarded and the database reopens from the files
// alone. The simulated I/O accounting must be bit-identical to the
// in-memory backend's: the DiskModel charges by page-access sequence, never
// by medium.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/database.h"
#include "fault/fault_injector.h"
#include "workload/generator.h"

namespace bulkdel {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::string cleanup = "rm -rf " + dir;
  [[maybe_unused]] int rc = std::system(cleanup.c_str());
  return dir;
}

DatabaseOptions FileOptions(const std::string& dir) {
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  options.path = dir;
  return options;
}

Workload LoadPaperWorkload(Database* db, uint64_t n_tuples = 2000) {
  WorkloadSpec spec;
  spec.n_tuples = n_tuples;
  spec.n_int_columns = 3;
  spec.tuple_size = 64;
  return *SetUpPaperDatabase(db, spec, {"A", "B"});
}

TEST(FileBackedTest, BulkDeleteAndCrashRecoverFromDisk) {
  auto db = *Database::Create(FileOptions(FreshDir("bd_file_crash")));
  EXPECT_EQ(db->storage_backend(), StorageBackend::kFile);
  Workload workload = LoadPaperWorkload(db.get());

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.2, 3);
  auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, 400u);
  EXPECT_EQ(report->backend, "file");
  ASSERT_TRUE(db->VerifyIntegrity().ok());
  ASSERT_TRUE(db->Checkpoint().ok());

  // Crash: all process state discarded, reopened from pages.db + wal.log.
  ASSERT_TRUE(db->SimulateCrashAndRecover().ok());
  EXPECT_EQ(db->GetTable("R")->table->tuple_count(), 1600u);
  ASSERT_TRUE(db->VerifyIntegrity().ok());
}

TEST(FileBackedTest, CleanCloseThenOpenRestoresTheDatabase) {
  std::string dir = FreshDir("bd_file_reopen");
  uint64_t free_pages = 0;
  {
    auto db = *Database::Create(FileOptions(dir));
    Workload workload = LoadPaperWorkload(db.get());
    BulkDeleteSpec bd;
    bd.table = "R";
    bd.key_column = "A";
    bd.keys = workload.MakeDeleteKeys(0.25, 5);
    ASSERT_TRUE(db->BulkDelete(bd, Strategy::kVerticalHash).ok());
    free_pages = db->disk().NumFreePages();
    ASSERT_TRUE(db->Close().ok());
  }
  // A separate "process": a brand-new Database object over the directory.
  auto reopened = Database::Open(FileOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto db = std::move(reopened).TakeValue();
  EXPECT_EQ(db->GetTable("R")->table->tuple_count(), 1500u);
  // The clean-shutdown sidecar restored the free list exactly.
  EXPECT_EQ(db->disk().NumFreePages(), free_pages);
  ASSERT_TRUE(db->VerifyIntegrity().ok());

  // The sidecar is consumed on open: a second open without a Close in
  // between behaves like a crash reopen (free list leaked, not corrupted).
  ASSERT_TRUE(db->Close().ok());
}

TEST(FileBackedTest, OpenOnEmptyDirectoryReportsNotFound) {
  auto missing = Database::Open(FileOptions(FreshDir("bd_file_missing")));
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status().ToString();
}

TEST(FileBackedTest, PageFileGrowsWithData) {
  std::string dir = FreshDir("bd_file_grow");
  auto db = *Database::Create(FileOptions(dir));
  Schema schema = *Schema::PaperStyle(2, 256);
  ASSERT_TRUE(db->CreateTable("T", schema).ok());
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(db->InsertRow("T", {i, i}).ok());
  }
  ASSERT_TRUE(db->Checkpoint().ok());
  // ~1000 * 256B = 64+ pages must be in the page file.
  std::string pages_path = dir + "/pages.db";
  FILE* f = std::fopen(pages_path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  EXPECT_GT(size, 64 * 4096);
  // The WAL file exists alongside.
  FILE* wal = std::fopen((dir + "/wal.log").c_str(), "r");
  ASSERT_NE(wal, nullptr);
  std::fclose(wal);
}

/// The acceptance bar for the pluggable backend: same workload, same seed,
/// same strategy — the simulated I/O totals and the fault-site hit counts
/// must be bit-identical between the sim and file backends. Wall time is the
/// only thing allowed to differ.
TEST(FileBackedTest, SimAndFileBackendsChargeIdenticalIo) {
  struct RunResult {
    IoStats io;
    uint64_t rows = 0;
    std::map<std::string, uint64_t> fault_hits;
  };
  auto run = [](const std::string& dir) -> RunResult {
    DatabaseOptions options;
    options.memory_budget_bytes = 128 * 1024;  // small: force evictions
    options.enable_recovery_log = true;
    options.path = dir;  // empty = sim
    auto injector = std::make_shared<FaultInjector>(1);
    options.fault_injector = injector;
    auto db = *Database::Create(options);
    Workload workload = LoadPaperWorkload(db.get(), 1500);
    injector->ResetCounts();
    BulkDeleteSpec bd;
    bd.table = "R";
    bd.key_column = "A";
    bd.keys = workload.MakeDeleteKeys(0.3, 9);
    auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    RunResult result;
    result.io = report->io;
    result.rows = report->rows_deleted;
    result.fault_hits = injector->HitCounts();
    return result;
  };

  RunResult sim = run("");
  RunResult file = run(FreshDir("bd_file_identity"));
  EXPECT_EQ(sim.rows, file.rows);
  EXPECT_EQ(sim.io.reads, file.io.reads);
  EXPECT_EQ(sim.io.writes, file.io.writes);
  EXPECT_EQ(sim.io.sequential_accesses, file.io.sequential_accesses);
  EXPECT_EQ(sim.io.random_accesses, file.io.random_accesses);
  EXPECT_EQ(sim.io.simulated_micros, file.io.simulated_micros);
  // Every fault site passed through the same number of times: the file
  // paths check injection before touching the fd, exactly like the
  // in-memory paths.
  EXPECT_EQ(sim.fault_hits, file.fault_hits);
}

TEST(FileBackedTest, TornWalSyncSurvivesReopenFromDisk) {
  // Arm a torn log sync during the delete, then crash-reopen from disk: the
  // half-written frame must fail its CRC and recovery must still converge.
  std::string dir = FreshDir("bd_file_torn");
  DatabaseOptions options = FileOptions(dir);
  options.enable_recovery_log = true;
  auto injector = std::make_shared<FaultInjector>(7);
  options.fault_injector = injector;
  auto db = *Database::Create(options);
  Workload workload = LoadPaperWorkload(db.get());
  ASSERT_TRUE(db->Checkpoint().ok());

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.2, 3);
  injector->ResetCounts();
  injector->Arm(fault_sites::kLogSync, 3, FaultMode::kTornWrite);
  auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
  ASSERT_FALSE(report.ok());  // the crash interrupted the statement
  ASSERT_TRUE(injector->tripped());

  injector->Disarm();
  ASSERT_TRUE(db->SimulateCrashAndRecover().ok());
  ASSERT_TRUE(db->VerifyIntegrity().ok());
  // Recovery rolled the delete forward or dropped it whole; either way the
  // log drained and the tuple count is one of the two legal states.
  EXPECT_EQ(db->log().durable_size(), 0u);
  uint64_t tuples = db->GetTable("R")->table->tuple_count();
  EXPECT_TRUE(tuples == 1600u || tuples == 2000u) << tuples;
}

}  // namespace
}  // namespace bulkdel

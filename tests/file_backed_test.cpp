// End-to-end on a real file: the DiskManager's file backing, durability
// across process-style reopen (new Database over the same file is not
// supported — the catalog page id is, by construction, page 0 — so this
// exercises file-backed storage within one Database lifetime plus raw
// DiskManager reopen).

#include <gtest/gtest.h>

#include "core/database.h"
#include "workload/generator.h"

namespace bulkdel {
namespace {

TEST(FileBackedTest, BulkDeleteOnFileBackedDatabase) {
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  options.path = ::testing::TempDir() + "/bulkdel_file_test.db";
  auto db = *Database::Create(options);

  WorkloadSpec spec;
  spec.n_tuples = 2000;
  spec.n_int_columns = 3;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A", "B"});

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.2, 3);
  auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, 400u);
  ASSERT_TRUE(db->VerifyIntegrity().ok());
  ASSERT_TRUE(db->Checkpoint().ok());

  // Crash-and-recover works on the file backing too.
  ASSERT_TRUE(db->SimulateCrashAndRecover().ok());
  EXPECT_EQ(db->GetTable("R")->table->tuple_count(), 1600u);
  ASSERT_TRUE(db->VerifyIntegrity().ok());
}

TEST(FileBackedTest, FileGrowsWithData) {
  std::string path = ::testing::TempDir() + "/bulkdel_grow_test.db";
  DatabaseOptions options;
  options.memory_budget_bytes = 128 * 1024;
  options.path = path;
  auto db = *Database::Create(options);
  Schema schema = *Schema::PaperStyle(2, 256);
  ASSERT_TRUE(db->CreateTable("T", schema).ok());
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(db->InsertRow("T", {i, i}).ok());
  }
  ASSERT_TRUE(db->Checkpoint().ok());
  // ~1000 * 256B = 64+ pages must be on disk.
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  EXPECT_GT(size, 64 * 4096);
}

}  // namespace
}  // namespace bulkdel

// Wire protocol codec (docs/SERVER.md): buffer-level framing and the
// fd-level read/write paths, including the error taxonomy a session relies
// on — clean EOF vs mid-frame EOF vs oversized length.

#include "net/wire.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

namespace bulkdel {
namespace net {
namespace {

TEST(WireCodec, RoundTrip) {
  std::string buffer;
  AppendFrame(&buffer, FrameType::kQuery, "SELECT COUNT(*) FROM R");
  Frame frame;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(buffer, kDefaultMaxFrameBytes, &frame, &consumed),
            DecodeResult::kFrame);
  EXPECT_EQ(consumed, buffer.size());
  EXPECT_EQ(frame.type, FrameType::kQuery);
  EXPECT_EQ(frame.payload, "SELECT COUNT(*) FROM R");
}

TEST(WireCodec, EmptyPayload) {
  std::string buffer;
  AppendFrame(&buffer, FrameType::kPing, "");
  EXPECT_EQ(buffer.size(), kFrameHeaderBytes + 1u);  // length + type byte
  Frame frame;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(buffer, kDefaultMaxFrameBytes, &frame, &consumed),
            DecodeResult::kFrame);
  EXPECT_EQ(frame.type, FrameType::kPing);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(WireCodec, NeedMoreAtEveryPrefix) {
  std::string buffer;
  AppendFrame(&buffer, FrameType::kOk, "pong");
  for (size_t n = 0; n < buffer.size(); ++n) {
    Frame frame;
    size_t consumed = 99;
    EXPECT_EQ(DecodeFrame(std::string_view(buffer.data(), n),
                          kDefaultMaxFrameBytes, &frame, &consumed),
              DecodeResult::kNeedMore)
        << "prefix " << n;
  }
}

TEST(WireCodec, TwoFramesInOneBuffer) {
  std::string buffer;
  AppendFrame(&buffer, FrameType::kQuery, "one");
  size_t first_size = buffer.size();
  AppendFrame(&buffer, FrameType::kQuery, "two");
  Frame frame;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(buffer, kDefaultMaxFrameBytes, &frame, &consumed),
            DecodeResult::kFrame);
  EXPECT_EQ(frame.payload, "one");
  EXPECT_EQ(consumed, first_size);
  std::string_view rest(buffer.data() + consumed, buffer.size() - consumed);
  ASSERT_EQ(DecodeFrame(rest, kDefaultMaxFrameBytes, &frame, &consumed),
            DecodeResult::kFrame);
  EXPECT_EQ(frame.payload, "two");
}

TEST(WireCodec, RejectsZeroLength) {
  // A length of 0 cannot hold the type byte: framing error, not a wait.
  std::string buffer(kFrameHeaderBytes, '\0');
  Frame frame;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(buffer, kDefaultMaxFrameBytes, &frame, &consumed),
            DecodeResult::kBad);
}

TEST(WireCodec, RejectsOversizedLength) {
  std::string buffer;
  AppendFrame(&buffer, FrameType::kQuery, std::string(100, 'x'));
  Frame frame;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(buffer, /*max_frame_bytes=*/50, &frame, &consumed),
            DecodeResult::kBad);
  // The same bytes decode fine with a big enough cap: the cap, not the
  // content, is what was violated.
  EXPECT_EQ(DecodeFrame(buffer, kDefaultMaxFrameBytes, &frame, &consumed),
            DecodeResult::kFrame);
}

TEST(WireCodec, ErrorPayloadRoundTrip) {
  for (StatusCode code :
       {StatusCode::kNotFound, StatusCode::kInvalidArgument,
        StatusCode::kResourceExhausted, StatusCode::kAborted,
        StatusCode::kInternal}) {
    Status original(code, "something went wrong");
    Status decoded = DecodeErrorPayload(EncodeErrorPayload(original));
    EXPECT_EQ(decoded.code(), code);
    EXPECT_EQ(decoded.message(), "something went wrong");
  }
}

TEST(WireCodec, ErrorPayloadGarbage) {
  // Empty payload or an out-of-range code byte must still produce a
  // non-OK status (never a fabricated success).
  EXPECT_FALSE(DecodeErrorPayload("").ok());
  EXPECT_FALSE(DecodeErrorPayload(std::string(1, '\xff') + "msg").ok());
  EXPECT_FALSE(DecodeErrorPayload(std::string(1, '\0') + "ok?").ok());
}

class WireFdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(WireFdTest, WriteThenRead) {
  ASSERT_TRUE(WriteFrame(fds_[0], FrameType::kQuery, "INSERT ...").ok());
  Frame frame;
  ASSERT_TRUE(ReadFrame(fds_[1], kDefaultMaxFrameBytes, &frame).ok());
  EXPECT_EQ(frame.type, FrameType::kQuery);
  EXPECT_EQ(frame.payload, "INSERT ...");
}

TEST_F(WireFdTest, CleanEofIsAborted) {
  ::close(fds_[0]);
  fds_[0] = -1;
  Frame frame;
  Status s = ReadFrame(fds_[1], kDefaultMaxFrameBytes, &frame);
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
}

TEST_F(WireFdTest, MidFrameEofIsCorruption) {
  std::string buffer;
  AppendFrame(&buffer, FrameType::kQuery, "half");
  // Send only part of the frame, then close: the reader is desynced.
  ASSERT_GT(::send(fds_[0], buffer.data(), buffer.size() - 2, 0), 0);
  ::close(fds_[0]);
  fds_[0] = -1;
  Frame frame;
  Status s = ReadFrame(fds_[1], kDefaultMaxFrameBytes, &frame);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

TEST_F(WireFdTest, OversizedFrameIsCorruption) {
  ASSERT_TRUE(
      WriteFrame(fds_[0], FrameType::kQuery, std::string(1000, 'x')).ok());
  Frame frame;
  Status s = ReadFrame(fds_[1], /*max_frame_bytes=*/100, &frame);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

TEST_F(WireFdTest, LargePayloadAcrossThreads) {
  // Bigger than any socket buffer, so WriteFrame must loop on partial
  // sends while the reader drains concurrently.
  std::string big(3u << 20, 'z');
  std::thread writer([this, &big] {
    EXPECT_TRUE(WriteFrame(fds_[0], FrameType::kOk, big).ok());
  });
  Frame frame;
  ASSERT_TRUE(ReadFrame(fds_[1], kDefaultMaxFrameBytes, &frame).ok());
  writer.join();
  EXPECT_EQ(frame.payload.size(), big.size());
  EXPECT_EQ(frame.payload, big);
}

}  // namespace
}  // namespace net
}  // namespace bulkdel

// The SQL front end for the paper's statement class.

#include "core/sql.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/database.h"
#include "obs/slow_query_log.h"
#include "obs/statement_registry.h"
#include "util/json.h"

namespace bulkdel {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() {
    DatabaseOptions options;
    options.memory_budget_bytes = 256 * 1024;
    db_ = *Database::Create(options);
    Schema schema = *Schema::PaperStyle(3, 64);
    EXPECT_TRUE(db_->CreateTable("R", schema).ok());
    EXPECT_TRUE(db_->CreateIndex("R", "A", {.unique = true}).ok());
    EXPECT_TRUE(db_->CreateIndex("R", "B").ok());
    for (int64_t i = 0; i < 1000; ++i) {
      EXPECT_TRUE(db_->InsertRow("R", {i, i * 2, i * 3}).ok());
    }
    // Table D with the keys 0, 10, 20, ..., 90.
    Schema d_schema = *Schema::PaperStyle(1, 0);
    EXPECT_TRUE(db_->CreateTable("D", d_schema).ok());
    for (int64_t k = 0; k < 100; k += 10) {
      EXPECT_TRUE(db_->InsertRow("D", {k}).ok());
    }
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SqlTest, InLiteralList) {
  auto spec = ParseBulkDelete(db_.get(), "DELETE FROM R WHERE A IN (1, 2, 3)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->table, "R");
  EXPECT_EQ(spec->key_column, "A");
  EXPECT_EQ(spec->keys, (std::vector<int64_t>{1, 2, 3}));
}

TEST_F(SqlTest, NegativeLiteralsAndSemicolon) {
  auto spec =
      ParseBulkDelete(db_.get(), "delete from R where A in (-5, 7);");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->keys, (std::vector<int64_t>{-5, 7}));
}

TEST_F(SqlTest, InSubquery) {
  auto spec = ParseBulkDelete(
      db_.get(), "DELETE FROM R WHERE R_A IN (SELECT A FROM D)");
  EXPECT_FALSE(spec.ok());  // no column R_A
  spec = ParseBulkDelete(db_.get(),
                         "DELETE FROM R WHERE A IN (SELECT A FROM D)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->keys.size(), 10u);
}

TEST_F(SqlTest, Between) {
  // BETWEEN parses to a first-class range predicate — no point-key
  // expansion, no extraction scan at parse time.
  auto spec =
      ParseBulkDelete(db_.get(), "DELETE FROM R WHERE A BETWEEN 100 AND 109");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(spec->is_range());
  EXPECT_EQ(spec->range_lo, 100);
  EXPECT_EQ(spec->range_hi, 109);
  EXPECT_TRUE(spec->keys.empty());
  EXPECT_TRUE(spec->keys_sorted);
}

TEST_F(SqlTest, BetweenWithoutIndexFallsBackToScan) {
  // A range on a non-indexed column still parses to a range spec; the
  // executor evaluates the predicate with a scan at execution time.
  auto spec =
      ParseBulkDelete(db_.get(), "DELETE FROM R WHERE C BETWEEN 0 AND 29");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(spec->is_range());
  EXPECT_EQ(spec->range_lo, 0);
  EXPECT_EQ(spec->range_hi, 29);
  auto report = ExecuteSql(db_.get(), "DELETE FROM R WHERE C BETWEEN 0 AND 29",
                           Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, 10u);  // C = 3i, i in [0, 9]
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(SqlTest, Errors) {
  EXPECT_FALSE(ParseBulkDelete(db_.get(), "SELECT * FROM R").ok());
  EXPECT_FALSE(ParseBulkDelete(db_.get(), "DELETE FROM nope WHERE A IN (1)")
                   .ok());
  EXPECT_FALSE(ParseBulkDelete(db_.get(), "DELETE FROM R WHERE Z IN (1)")
                   .ok());
  EXPECT_FALSE(ParseBulkDelete(db_.get(), "DELETE FROM R WHERE A IN (1,)")
                   .ok());
  EXPECT_FALSE(ParseBulkDelete(db_.get(), "DELETE FROM R WHERE A IN (1) x")
                   .ok());
  EXPECT_FALSE(
      ParseBulkDelete(db_.get(), "DELETE FROM R WHERE A BETWEEN 1").ok());
  EXPECT_FALSE(ParseBulkDelete(
                   db_.get(), "DELETE FROM R WHERE A IN (SELECT A FROM nope)")
                   .ok());
}

TEST_F(SqlTest, ExecuteStatementFullSession) {
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  auto db = *Database::Create(options);

  auto run = [&](const std::string& s) {
    auto r = ExecuteStatement(db.get(), s);
    EXPECT_TRUE(r.ok()) << s << " -> " << r.status().ToString();
    return r.ok() ? *r : std::string();
  };
  run("CREATE TABLE T (A INT, B INT, PAD CHAR(16))");
  run("CREATE UNIQUE INDEX ON T (A)");
  run("CREATE INDEX ON T (B) PRIORITY 3");
  for (int64_t i = 0; i < 50; ++i) {
    run("INSERT INTO T VALUES (" + std::to_string(i) + ", " +
        std::to_string(i * 2) + ")");
  }
  EXPECT_EQ(run("SELECT COUNT(*) FROM T"), "count = 50");
  EXPECT_NE(run("EXPLAIN DELETE FROM T WHERE A BETWEEN 0 AND 9")
                .find("BulkDeletePlan"),
            std::string::npos);
  EXPECT_EQ(run("SELECT COUNT(*) FROM T"), "count = 50");  // EXPLAIN ran nothing
  std::string deleted = run("DELETE FROM T WHERE A BETWEEN 0 AND 9");
  EXPECT_NE(deleted.find("deleted 10 row(s)"), std::string::npos) << deleted;
  EXPECT_EQ(run("SELECT COUNT(*) FROM T"), "count = 40");
  EXPECT_NE(run("SELECT COUNT(*) FROM T WHERE B BETWEEN 20 AND 40")
                .find("count = 11"),
            std::string::npos);
  ASSERT_TRUE(db->VerifyIntegrity().ok());
}

// A DELETE that cascades reports the per-table attribution inline — "forget
// user X" answers show where the collateral rows went — and the report's
// phase trace carries the fk-plan and cascade:<table> labels that
// sys.statements surfaces while the statement runs.
TEST_F(SqlTest, DeleteCascadeSummaryLineAndPhases) {
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  auto db = *Database::Create(options);
  Schema schema = *Schema::PaperStyle(2, 32);
  ASSERT_TRUE(db->CreateTable("USERS", schema).ok());
  ASSERT_TRUE(db->CreateIndex("USERS", "A", {.unique = true}).ok());
  ASSERT_TRUE(db->CreateTable("ORD", schema).ok());
  ASSERT_TRUE(db->CreateIndex("ORD", "A", {.unique = true}).ok());
  ASSERT_TRUE(db->CreateIndex("ORD", "B").ok());
  for (int64_t u = 0; u < 20; ++u) {
    ASSERT_TRUE(db->InsertRow("USERS", {u, u * 2}).ok());
    ASSERT_TRUE(db->InsertRow("ORD", {2 * u, u}).ok());
    ASSERT_TRUE(db->InsertRow("ORD", {2 * u + 1, u}).ok());
  }
  ASSERT_TRUE(
      db->AddForeignKey("ORD", "B", "USERS", "A", FkAction::kCascade).ok());

  auto line = ExecuteStatement(db.get(), "DELETE FROM USERS WHERE A IN (3, 7)");
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_NE(line->find("deleted 2 row(s)"), std::string::npos) << *line;
  EXPECT_NE(line->find("cascaded 4 row(s) (ORD: 4)"), std::string::npos)
      << *line;

  // Same statement class through ExecuteSql: the report's phase trace must
  // carry the planning and per-leg cascade labels.
  auto report = ExecuteSql(db.get(), "DELETE FROM USERS WHERE A IN (11, 12)",
                           Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, 2u);
  EXPECT_EQ(report->cascaded_rows, 4u);
  bool saw_fk_plan = false, saw_cascade_leg = false;
  for (const PhaseStats& phase : report->phases) {
    if (phase.name == "fk-plan") saw_fk_plan = true;
    if (phase.name == "cascade:ORD") saw_cascade_leg = true;
  }
  EXPECT_TRUE(saw_fk_plan) << report->ToString();
  EXPECT_TRUE(saw_cascade_leg) << report->ToString();
  // A DELETE with nothing to cascade keeps the plain result line.
  auto plain = ExecuteStatement(db.get(), "DELETE FROM ORD WHERE A IN (40)");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->find("cascaded"), std::string::npos) << *plain;
  ASSERT_TRUE(db->VerifyIntegrity().ok());
}

TEST_F(SqlTest, ExecuteStatementErrors) {
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  auto db = *Database::Create(options);
  EXPECT_FALSE(ExecuteStatement(db.get(), "DROP TABLE x").ok());
  EXPECT_FALSE(ExecuteStatement(db.get(), "CREATE VIEW v").ok());
  EXPECT_FALSE(ExecuteStatement(db.get(), "CREATE TABLE T (A FLOAT)").ok());
  EXPECT_FALSE(ExecuteStatement(db.get(), "INSERT INTO nope VALUES (1)").ok());
  EXPECT_FALSE(ExecuteStatement(db.get(), "SELECT * FROM nope").ok());
  EXPECT_FALSE(ExecuteStatement(db.get(), "EXPLAIN").ok());
}

// Error paths a network server depends on: every malformed or out-of-bounds
// statement must come back as a typed Status — never an abort — and leave
// the database usable.
TEST_F(SqlTest, MalformedStatementsAreInvalidArgument) {
  for (const char* bad :
       {"", ";", "DELETE", "DELETE FROM", "DELETE FROM R",
        "DELETE FROM R WHERE", "DELETE FROM R WHERE A",
        "DELETE FROM R WHERE A IN", "DELETE FROM R WHERE A IN (",
        "DELETE FROM R WHERE A IN (1,", "DELETE FROM R WHERE A IN (1 2)",
        "DELETE FROM R WHERE A BETWEEN 1", "DELETE FROM R WHERE A = 5",
        "INSERT INTO R", "INSERT INTO R VALUES", "INSERT INTO R VALUES (",
        "SELECT * FROM R", "SELECT COUNT(*) FROM R WHERE A > 5",
        "SET", "SET STRATEGY", "SHOW", "DROP", "DROP INDEX ON R",
        "CREATE", "@#$%", "DELETE FROM R WHERE A IN (SELECT)",
        "DELETE FROM R WHERE A IN (SELECT A FROM)"}) {
    SqlSession session;
    auto r = ExecuteStatement(db_.get(), &session, bad);
    EXPECT_FALSE(r.ok()) << "accepted: \"" << bad << "\"";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << bad << " -> " << r.status().ToString();
    EXPECT_EQ(session.statements, 0u);
  }
  // The database is still fully usable after all of that.
  EXPECT_TRUE(ExecuteStatement(db_.get(), "SELECT COUNT(*) FROM R").ok());
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(SqlTest, UnknownTableAndIndexAreNotFound) {
  struct Case {
    const char* statement;
    StatusCode code;
  } cases[] = {
      {"DELETE FROM nope WHERE A IN (1)", StatusCode::kNotFound},
      {"DELETE FROM R WHERE Z IN (1)", StatusCode::kNotFound},
      {"DELETE FROM R WHERE A IN (SELECT A FROM nope)", StatusCode::kNotFound},
      {"DELETE FROM R WHERE A IN (SELECT Z FROM D)", StatusCode::kNotFound},
      {"SELECT COUNT(*) FROM nope", StatusCode::kNotFound},
      {"SELECT COUNT(*) FROM R WHERE Z BETWEEN 1 AND 2", StatusCode::kNotFound},
      {"INSERT INTO nope VALUES (1)", StatusCode::kNotFound},
      {"DROP INDEX ON nope (A)", StatusCode::kNotFound},
      {"DROP INDEX ON R (PAD)", StatusCode::kNotFound},
      {"EXPLAIN DELETE FROM nope WHERE A IN (1)", StatusCode::kNotFound},
  };
  for (const Case& c : cases) {
    auto r = ExecuteStatement(db_.get(), c.statement);
    ASSERT_FALSE(r.ok()) << c.statement;
    EXPECT_EQ(r.status().code(), c.code)
        << c.statement << " -> " << r.status().ToString();
  }
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(SqlTest, OversizedInListIsResourceExhausted) {
  SqlSession session;
  session.max_delete_keys = 5;
  // Literal list over the bound: refused before any key extraction work.
  auto r = ExecuteStatement(db_.get(), &session,
                            "DELETE FROM R WHERE A IN (1, 2, 3, 4, 5, 6)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  // Subquery (D holds 10 keys) hits the same bound — enforced during the
  // extraction scan itself, before a full list is ever built.
  r = ExecuteStatement(db_.get(), &session,
                       "DELETE FROM R WHERE A IN (SELECT A FROM D)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // Nothing was deleted by the refused statements; in-bounds ones work.
  EXPECT_EQ(*ExecuteStatement(db_.get(), "SELECT COUNT(*) FROM R"),
            "count = 1000");
  r = ExecuteStatement(db_.get(), &session,
                       "DELETE FROM R WHERE A IN (1, 2, 3)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(session.statements, 1u);
  // BETWEEN is a first-class range predicate: it never expands into a key
  // list, so the session key bound does not apply — a sliding-window delete
  // over a wide range must not error.
  r = ExecuteStatement(db_.get(), &session,
                       "DELETE FROM R WHERE A BETWEEN 0 AND 99");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*ExecuteStatement(db_.get(), "SELECT COUNT(*) FROM R"),
            "count = 900");  // 1000 - 3 (IN list) - 97 still in [0, 99]
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(SqlTest, SessionStrategyAndDropIndex) {
  SqlSession session;
  EXPECT_EQ(*ExecuteStatement(db_.get(), &session, "SHOW STRATEGY"),
            "strategy = optimizer");
  auto r = ExecuteStatement(db_.get(), &session, "SET STRATEGY warp-drive");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(
      ExecuteStatement(db_.get(), &session, "SET STRATEGY vertical-hash")
          .ok());
  EXPECT_EQ(*ExecuteStatement(db_.get(), &session, "SHOW STRATEGY"),
            "strategy = vertical-hash");
  // Another session is unaffected.
  SqlSession other;
  EXPECT_EQ(*ExecuteStatement(db_.get(), &other, "SHOW STRATEGY"),
            "strategy = optimizer");
  ASSERT_TRUE(
      ExecuteStatement(db_.get(), &session, "DROP INDEX ON R (B)").ok());
  EXPECT_EQ(db_->GetIndex("R", "B"), nullptr);
  EXPECT_FALSE(
      ExecuteStatement(db_.get(), &session, "DROP INDEX ON R (B)").ok());
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

// ---------------------------------------------------------------------------
// sys.* virtual tables + SHOW sugar + slow-query capture
// ---------------------------------------------------------------------------

/// sys.sessions / sys.statements read process-global state; each test starts
/// and ends from a clean registry so ordering does not leak between tests.
struct RegistryReset {
  RegistryReset() { obs::StatementRegistry::Global().Reset(); }
  ~RegistryReset() { obs::StatementRegistry::Global().Reset(); }
};

TEST_F(SqlTest, SysMetricsAndHistogramsSelect) {
  RegistryReset reset;
  // Generate some metric traffic first so value columns are nonzero.
  ASSERT_TRUE(
      ExecuteStatement(db_.get(), "DELETE FROM R WHERE A IN (1, 2, 3)").ok());
  auto r = ExecuteStatement(db_.get(), "SELECT * FROM sys.metrics");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Header row then one row per registered metric, counters and histograms.
  EXPECT_NE(r->find("name"), std::string::npos) << *r;
  EXPECT_NE(r->find("kind"), std::string::npos);
  EXPECT_NE(r->find("sched.phases_dispatched"), std::string::npos) << *r;
  EXPECT_NE(r->find("bp.fetch_ns"), std::string::npos);
  EXPECT_NE(r->find("net.conns"), std::string::npos);

  // Nonzero buckets (and only those) show as per-bucket rows with their
  // (lo, hi] edges and cumulative counts.
  db_->metrics().histogram(obs::metric_names::kWalSyncRecords)->Observe(5);
  r = ExecuteStatement(db_.get(), "SELECT * FROM sys.histograms");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->find("bucket"), std::string::npos) << *r;
  EXPECT_NE(r->find("cum"), std::string::npos);
  EXPECT_NE(r->find("wal.sync_records"), std::string::npos) << *r;
}

TEST_F(SqlTest, SysSessionsAndStatementsSelect) {
  RegistryReset reset;
  obs::StatementRegistry& reg = obs::StatementRegistry::Global();
  SqlSession session;
  session.session_id = reg.RegisterSession("test:1");
  ASSERT_TRUE(ExecuteStatement(db_.get(), &session,
                               "DELETE FROM R WHERE A IN (10, 11)")
                  .ok());
  auto r = ExecuteStatement(db_.get(), &session, "SELECT * FROM sys.sessions");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->find("test:1"), std::string::npos) << *r;

  r = ExecuteStatement(db_.get(), &session, "SELECT * FROM sys.statements");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The finished DELETE is in the recent ring with its row count; the
  // SELECT itself shows as in-flight (state "run").
  EXPECT_NE(r->find("DELETE FROM R WHERE A IN (10, 11)"), std::string::npos)
      << *r;
  EXPECT_NE(r->find("ok"), std::string::npos);
  EXPECT_NE(r->find("run"), std::string::npos) << *r;
  EXPECT_NE(r->find("SELECT * FROM sys.statements"), std::string::npos);
  reg.UnregisterSession(session.session_id);
}

TEST_F(SqlTest, ShowMetricsAndSessionsAreSysSugar) {
  RegistryReset reset;
  auto show = ExecuteStatement(db_.get(), "SHOW METRICS");
  auto select = ExecuteStatement(db_.get(), "SELECT * FROM sys.metrics");
  ASSERT_TRUE(show.ok()) << show.status().ToString();
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  EXPECT_EQ(*show, *select);
  auto sessions = ExecuteStatement(db_.get(), "SHOW SESSIONS");
  ASSERT_TRUE(sessions.ok()) << sessions.status().ToString();
  EXPECT_NE(sessions->find("session"), std::string::npos) << *sessions;
}

TEST_F(SqlTest, SysSelectTypedErrors) {
  // Unknown sys table: NotFound naming the known ones.
  auto r = ExecuteStatement(db_.get(), "SELECT * FROM sys.nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound)
      << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("sys.metrics"), std::string::npos);
  // SELECT * over a data table stays unsupported, with a typed error.
  r = ExecuteStatement(db_.get(), "SELECT * FROM R");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Bad SHOW argument names all three options.
  r = ExecuteStatement(db_.get(), "SHOW GIBBERISH");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("SESSIONS"), std::string::npos)
      << r.status().ToString();
}

TEST_F(SqlTest, SlowQueryCaptureWritesParseableRecordsWithReports) {
  RegistryReset reset;
  std::string path = ::testing::TempDir() + "/sql_slow_query_test.jsonl";
  std::remove(path.c_str());
  obs::SlowQueryLog log(path, 1);  // 1 ns: every statement is "slow"
  ASSERT_TRUE(log.enabled()) << log.open_status().ToString();
  SqlSession session;
  session.session_id = obs::StatementRegistry::Global().RegisterSession("t");
  session.slow_log = &log;
  ASSERT_TRUE(ExecuteStatement(db_.get(), &session,
                               "DELETE FROM R WHERE A IN (20, 21, 22)")
                  .ok());
  // Failed statements are captured too, with their error text.
  EXPECT_FALSE(
      ExecuteStatement(db_.get(), &session, "DELETE FROM nope WHERE A IN (1)")
          .ok());
  obs::StatementRegistry::Global().UnregisterSession(session.session_id);
  EXPECT_EQ(log.records(), 2u);

  std::ifstream in(path);
  std::string line;
  int deletes_with_report = 0, errors = 0;
  while (std::getline(in, line)) {
    auto rec = json::Parse(line);
    ASSERT_TRUE(rec.ok()) << line;
    EXPECT_GT(rec->IntOr("elapsed_ns"), 0);
    EXPECT_EQ(rec->IntOr("threshold_ns"), 1);
    const json::Value* report = rec->Find("report");
    if (report != nullptr) {
      ++deletes_with_report;
      // The embedded BulkDeleteReport carries the phase spans tracecat
      // consumes and the simulated I/O totals.
      EXPECT_NE(report->Find("phases"), nullptr) << line;
      const json::Value* io = report->Find("io");
      ASSERT_NE(io, nullptr);
      // A 3-key delete may be fully cached (0 reads); the totals just have
      // to be present and sane.
      EXPECT_NE(io->Find("reads"), nullptr) << line;
      EXPECT_GE(io->IntOr("simulated_micros"), 0);
    }
    if (rec->Find("error") != nullptr) ++errors;
  }
  EXPECT_EQ(deletes_with_report, 1);
  EXPECT_EQ(errors, 1);
  std::remove(path.c_str());
}

TEST_F(SqlTest, PlaneOnOffSqlRunsAreMetricIdentical) {
  // The full plane (session registration + attribution + slow-query capture)
  // must not change what the engine does: two identical statement streams,
  // one under the plane and one bare, land on identical deterministic
  // counters and identical data.
  RegistryReset reset;
  std::string path = ::testing::TempDir() + "/sql_plane_identity.jsonl";
  std::remove(path.c_str());
  auto run = [&](bool plane) {
    DatabaseOptions options;
    options.memory_budget_bytes = 256 * 1024;
    auto db = *Database::Create(options);
    obs::SlowQueryLog log(path, plane ? 1 : 0);
    SqlSession session;
    if (plane) {
      session.session_id =
          obs::StatementRegistry::Global().RegisterSession("t");
      session.slow_log = &log;
    }
    auto exec = [&](const std::string& s) {
      auto r = ExecuteStatement(db.get(), &session, s);
      EXPECT_TRUE(r.ok()) << s << " -> " << r.status().ToString();
    };
    exec("CREATE TABLE T (A INT, B INT)");
    exec("CREATE UNIQUE INDEX ON T (A)");
    exec("CREATE INDEX ON T (B)");
    for (int64_t i = 0; i < 200; ++i) {
      exec("INSERT INTO T VALUES (" + std::to_string(i) + ", " +
           std::to_string(i % 7) + ")");
    }
    exec("DELETE FROM T WHERE A BETWEEN 50 AND 149");
    auto count = ExecuteStatement(db.get(), &session, "SELECT COUNT(*) FROM T");
    EXPECT_TRUE(count.ok());
    if (plane) {
      obs::StatementRegistry::Global().UnregisterSession(session.session_id);
      EXPECT_GT(log.records(), 0u);
    }
    obs::MetricsSnapshot snap = db->metrics().Snapshot();
    return std::make_pair(count.ok() ? *count : std::string(), snap);
  };
  auto [count_off, off] = run(false);
  auto [count_on, on] = run(true);
  EXPECT_EQ(count_off, "count = 100");
  EXPECT_EQ(count_on, count_off);
  for (const char* name :
       {"sched.phases_dispatched", "ckpt.inline", "ckpt.deferred",
        "leaf.pages_reorganized", "disk.write_runs", "disk.syncs"}) {
    EXPECT_EQ(off.CounterOr(name), on.CounterOr(name)) << name;
  }
  std::remove(path.c_str());
}

TEST_F(SqlTest, ExecuteSqlEndToEnd) {
  auto report = ExecuteSql(
      db_.get(), "DELETE FROM R WHERE A IN (SELECT A FROM D)");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, 10u);
  EXPECT_EQ(db_->GetTable("R")->table->tuple_count(), 990u);
  EXPECT_TRUE(db_->GetIndex("R", "A")->tree->Search(50)->empty());
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(SqlTest, ExecuteSqlBetweenDeletesRange) {
  auto report = ExecuteSql(
      db_.get(), "DELETE FROM R WHERE A BETWEEN 500 AND 999",
      Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, 500u);
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

}  // namespace
}  // namespace bulkdel

// Multi-threaded buffer-pool stress (pin/unpin/dirty/evict/prefetch across
// shards; the tier-1 build runs it under ASan/UBSan, the tsan job under
// TSan), plus the I/O-identity acceptance tests: simulated DiskStats totals
// must be unchanged by shard count and by read-ahead, serial and parallel,
// and coalesced write-behind must batch adjacent dirty evictions when (and
// only when) enabled.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/coding.h"
#include "workload/generator.h"

namespace bulkdel {
namespace {

// ---------------------------------------------------------------------------
// Raw-pool stress across shards
// ---------------------------------------------------------------------------

TEST(BufferPoolStressTest, ConcurrentPinDirtyEvictAcrossShards) {
  DiskManager disk;
  BufferPoolOptions options;
  // 64 frames over 4 shards, 4 threads x 64 private pages: every thread
  // misses constantly and evictions (including dirty write-backs) happen on
  // every shard while the others are fetching.
  options.budget_bytes = 64 * kPageSize;
  options.shards = 4;
  BufferPool pool(&disk, options);

  constexpr int kThreads = 4;
  constexpr int kPagesPerThread = 64;
  constexpr int kRounds = 40;

  // Each thread owns a disjoint page set; increments to the owner's counter
  // word must survive any interleaving of evictions and flushes.
  std::vector<std::vector<PageId>> owned(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPagesPerThread; ++i) {
      auto guard = pool.NewPage();
      ASSERT_TRUE(guard.ok());
      owned[t].push_back(guard->page_id());
      guard->MarkDirty();
    }
  }
  ASSERT_TRUE(pool.FlushAll().ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (PageId page : owned[t]) {
          auto guard = pool.FetchPage(page);
          if (!guard.ok()) {
            ++failures;
            return;
          }
          uint32_t count = LoadU32(guard->data());
          StoreU32(guard->data(), count + 1);
          guard->MarkDirty();
        }
        if (round % 8 == t % 8 && !pool.FlushAll().ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);

  for (int t = 0; t < kThreads; ++t) {
    for (PageId page : owned[t]) {
      auto guard = pool.FetchPage(page);
      ASSERT_TRUE(guard.ok());
      EXPECT_EQ(LoadU32(guard->data()), static_cast<uint32_t>(kRounds))
          << "page " << page << " lost updates";
    }
  }
  BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_GT(stats.dirty_writebacks, 0);
}

TEST(BufferPoolStressTest, ConcurrentPrefetchAndDemandFetch) {
  DiskManager disk;
  BufferPoolOptions options;
  options.budget_bytes = 128 * kPageSize;
  options.shards = 4;
  options.readahead_pages = 16;
  BufferPool pool(&disk, options);

  std::vector<PageId> pages;
  for (int i = 0; i < 256; ++i) {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    StoreU32(guard->data(), static_cast<uint32_t>(i));
    guard->MarkDirty();
    pages.push_back(guard->page_id());
  }
  ASSERT_TRUE(pool.Reset().ok());

  // Readers demand-fetch while announcers prefetch the same id ranges: the
  // pool must never serve wrong contents or double-place a page.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < pages.size(); i += 16) {
        size_t n = std::min<size_t>(16, pages.size() - i);
        pool.PrefetchPages(pages.data() + i, n);
      }
    });
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < pages.size(); ++i) {
        size_t at = t == 0 ? i : pages.size() - 1 - i;
        auto guard = pool.FetchPage(pages[at]);
        if (!guard.ok() ||
            LoadU32(guard->data()) != static_cast<uint32_t>(at)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// Coalesced write-behind
// ---------------------------------------------------------------------------

TEST(BufferPoolStressTest, CoalescedWritebackBatchesAdjacentDirtyEvictions) {
  for (bool coalesce : {false, true}) {
    DiskManager disk;
    BufferPoolOptions options;
    options.budget_bytes = 16 * kPageSize;
    options.shards = 1;
    options.coalesce_writebacks = coalesce;
    BufferPool pool(&disk, options);

    // Fill the pool with 16 adjacent dirty pages, then fault in fresh ones:
    // each eviction finds a run of dirty neighbors in the same shard.
    std::vector<PageId> first_wave;
    for (int i = 0; i < 16; ++i) {
      auto guard = pool.NewPage();
      ASSERT_TRUE(guard.ok());
      guard->data()[0] = static_cast<char>(i);
      guard->MarkDirty();
      first_wave.push_back(guard->page_id());
    }
    for (int i = 0; i < 16; ++i) {
      auto guard = pool.NewPage();
      ASSERT_TRUE(guard.ok());
      guard->MarkDirty();
    }
    BufferPoolStats stats = pool.stats();
    if (coalesce) {
      EXPECT_GT(stats.coalesced_writebacks, 0);
    } else {
      EXPECT_EQ(stats.coalesced_writebacks, 0);
    }
    // Either way every first-wave page must read back intact.
    for (int i = 0; i < 16; ++i) {
      auto guard = pool.FetchPage(first_wave[i]);
      ASSERT_TRUE(guard.ok());
      EXPECT_EQ(guard->data()[0], static_cast<char>(i));
    }
  }
}

// ---------------------------------------------------------------------------
// I/O identity across shard counts and read-ahead windows
// ---------------------------------------------------------------------------

struct IdentityRun {
  BulkDeleteReport report;
  IoStats disk_total;
};

IdentityRun RunWorkload(size_t pool_shards, size_t readahead_pages,
                        int exec_threads, size_t memory_budget) {
  DatabaseOptions options;
  options.memory_budget_bytes = memory_budget;
  options.exec_threads = exec_threads;
  options.pool_shards = pool_shards;
  options.readahead_pages = readahead_pages;
  auto db = *Database::Create(options);

  WorkloadSpec spec;
  spec.n_tuples = 20000;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A", "B", "C"});
  // Start the measured statement from a cold cache: deterministic regardless
  // of how load-time evictions fell, and the initial free frames let
  // read-ahead engage (prefetch only ever uses free or speculative frames).
  EXPECT_TRUE(db->pool().Reset().ok());

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.15, 42);

  auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(db->VerifyIntegrity().ok());

  IdentityRun run;
  if (report.ok()) run.report = *report;
  run.disk_total = db->disk().stats();
  return run;
}

void ExpectIoIdentical(const IdentityRun& a, const IdentityRun& b,
                       const std::string& label) {
  EXPECT_EQ(a.report.io.reads, b.report.io.reads) << label;
  EXPECT_EQ(a.report.io.writes, b.report.io.writes) << label;
  EXPECT_EQ(a.report.io.sequential_accesses, b.report.io.sequential_accesses)
      << label;
  EXPECT_EQ(a.report.io.random_accesses, b.report.io.random_accesses) << label;
  EXPECT_EQ(a.report.io.simulated_micros, b.report.io.simulated_micros)
      << label;
  ASSERT_EQ(a.report.phases.size(), b.report.phases.size()) << label;
  for (size_t i = 0; i < a.report.phases.size(); ++i) {
    // Phases are recorded in completion order, which is schedule-dependent
    // under exec_threads > 1 — match by name.
    const PhaseStats& p = a.report.phases[i];
    const PhaseStats* found = nullptr;
    for (const PhaseStats& candidate : b.report.phases) {
      if (candidate.name == p.name) {
        found = &candidate;
        break;
      }
    }
    ASSERT_NE(found, nullptr) << label << " phase " << p.name << " missing";
    const PhaseStats& q = *found;
    EXPECT_EQ(p.io.reads, q.io.reads) << label << " phase " << p.name;
    EXPECT_EQ(p.io.writes, q.io.writes) << label << " phase " << p.name;
    EXPECT_EQ(p.io.sequential_accesses, q.io.sequential_accesses)
        << label << " phase " << p.name;
    EXPECT_EQ(p.io.random_accesses, q.io.random_accesses)
        << label << " phase " << p.name;
    EXPECT_EQ(p.io.simulated_micros, q.io.simulated_micros)
        << label << " phase " << p.name;
  }
}

TEST(IoIdentityTest, ShardCountDoesNotChangeSimulatedIo) {
  // Generous budget: the working set stays resident, so residency (and
  // therefore every simulated charge) cannot depend on how frames are
  // distributed over shards. This is the same precondition the parallel
  // scheduler's cross-thread identity test relies on.
  constexpr size_t kResident = 16ull << 20;
  for (int threads : {1, 4}) {
    IdentityRun one = RunWorkload(1, 0, threads, kResident);
    IdentityRun eight = RunWorkload(8, 0, threads, kResident);
    ExpectIoIdentical(one, eight,
                      "shards 1 vs 8, threads " + std::to_string(threads));
    EXPECT_EQ(one.disk_total.reads, eight.disk_total.reads);
    EXPECT_EQ(one.disk_total.writes, eight.disk_total.writes);
    EXPECT_EQ(one.disk_total.simulated_micros,
              eight.disk_total.simulated_micros);
  }
  // The effective shard count is visible in the report's per-shard stats.
  IdentityRun eight = RunWorkload(8, 0, 1, kResident);
  EXPECT_EQ(eight.report.pool_shards.size(), 8u);
  EXPECT_GT(eight.report.pool.hits, 0);
}

TEST(IoIdentityTest, ReadAheadDoesNotChangeSimulatedIo) {
  // Tight budget (≈1 MB for a ~2.4 MB working set): the delete passes evict
  // constantly and read-ahead genuinely fires — prefetch charges on
  // consumption, so the simulated trace must still be bit-identical to the
  // no-read-ahead run. Serial only: under eviction pressure the page-access
  // interleaving of concurrent phases is schedule-dependent with or without
  // read-ahead, so exact identity is only defined for the serial order.
  constexpr size_t kTight = 1ull << 20;
  for (size_t shards : {size_t{1}, size_t{8}}) {
    IdentityRun off = RunWorkload(shards, 0, 1, kTight);
    IdentityRun on = RunWorkload(shards, 16, 1, kTight);
    ExpectIoIdentical(off, on,
                      "readahead 0 vs 16, shards " + std::to_string(shards));
    EXPECT_EQ(off.disk_total.reads, on.disk_total.reads);
    EXPECT_EQ(off.disk_total.writes, on.disk_total.writes);
    EXPECT_EQ(off.disk_total.sequential_accesses,
              on.disk_total.sequential_accesses);
    EXPECT_EQ(off.disk_total.random_accesses, on.disk_total.random_accesses);
    EXPECT_EQ(off.disk_total.simulated_micros, on.disk_total.simulated_micros);
    // Prove read-ahead actually engaged rather than trivially matching.
    EXPECT_GT(on.report.pool.prefetched, 0)
        << "read-ahead never fired at shards " << shards;
    EXPECT_EQ(off.report.pool.prefetched, 0);
  }
}

// ---------------------------------------------------------------------------
// Cross-shard maintenance under live parallel phases
// ---------------------------------------------------------------------------

TEST(BufferPoolStressTest, ConcurrentFlushDuringParallelPhasesIsSafe) {
  // A phase-begin hook runs FlushAll from a worker thread while sibling
  // phases are fetching and dirtying pages — the cross-shard sweep must
  // coordinate with per-shard traffic (this is the TSan-checked seam), and
  // a concurrent Reset must either succeed (flush-then-drop, losing nothing)
  // or refuse cleanly because pages are pinned; both leave the database
  // consistent.
  std::unique_ptr<Database> db;
  std::atomic<int> flushes{0};

  DatabaseOptions options;
  options.memory_budget_bytes = 8ull << 20;
  options.exec_threads = 4;
  options.pool_shards = 8;
  // The hook only fires on phase threads while a bulk delete is executing,
  // well after `db` is assigned below, so capturing it by reference is safe.
  options.phase_begin_hook = [&](const std::string& phase) {
    if (phase == "index:R.B") {
      Status s = db->pool().FlushAll();
      EXPECT_TRUE(s.ok()) << s.ToString();
      ++flushes;
    } else if (phase == "index:R.C") {
      Status s = db->pool().Reset();
      // Sibling phases usually hold pins, so Reset may refuse — but it must
      // refuse cleanly, never drop an unflushed update.
      if (!s.ok()) {
        EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
      }
    }
  };
  db = *Database::Create(options);

  WorkloadSpec spec;
  spec.n_tuples = 20000;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A", "B", "C"});
  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.15, 42);
  auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(flushes.load(), 1);
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

}  // namespace
}  // namespace bulkdel

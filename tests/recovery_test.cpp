// §3.2: checkpointing and roll-forward recovery. A bulk delete interrupted
// by a crash must be *finished* on restart (not rolled back), with the final
// state identical to the uninterrupted execution — regardless of which phase
// the crash hit.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/database.h"
#include "workload/generator.h"

namespace bulkdel {
namespace {

DatabaseOptions RecoveryOptions() {
  DatabaseOptions options;
  options.memory_budget_bytes = 512 * 1024;
  options.enable_recovery_log = true;
  return options;
}

struct Fixture {
  std::unique_ptr<Database> db;
  Workload workload;
  BulkDeleteSpec spec;
  std::set<int64_t> doomed;
  uint64_t n_tuples;
};

Fixture MakeFixture(double fraction = 0.2, uint64_t n = 3000) {
  Fixture f;
  f.db = *Database::Create(RecoveryOptions());
  WorkloadSpec spec;
  spec.n_tuples = n;
  spec.n_int_columns = 3;
  spec.tuple_size = 64;
  f.n_tuples = n;
  f.workload = *SetUpPaperDatabase(f.db.get(), spec, {"A", "B", "C"});
  EXPECT_TRUE(f.db->Checkpoint().ok());
  f.spec.table = "R";
  f.spec.key_column = "A";
  f.spec.keys = f.workload.MakeDeleteKeys(fraction, 123);
  f.doomed.insert(f.spec.keys.begin(), f.spec.keys.end());
  return f;
}

void ExpectFinalState(Fixture& f) {
  TableDef* table = f.db->GetTable("R");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->table->tuple_count(), f.n_tuples - f.doomed.size());
  ASSERT_TRUE(table->table
                  ->Scan([&](const Rid&, const char* tuple) {
                    EXPECT_EQ(f.doomed.count(table->schema->GetInt(tuple, 0)),
                              0u);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_TRUE(f.db->VerifyIntegrity().ok());
  // The log was truncated after completion.
  EXPECT_EQ(f.db->log().durable_size(), 0u);
}

TEST(RecoveryTest, CompletesWithoutCrash) {
  Fixture f = MakeFixture();
  auto report = f.db->BulkDelete(f.spec, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ExpectFinalState(f);
}

class RecoveryCrashPointTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RecoveryCrashPointTest, CrashAtPhaseThenRollForward) {
  Fixture f = MakeFixture();
  f.db->SetCrashPoint(GetParam());
  auto report = f.db->BulkDelete(f.spec, Strategy::kVerticalSortMerge);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsAborted()) << report.status().ToString();
  ASSERT_TRUE(f.db->SimulateCrashAndRecover().ok());
  ExpectFinalState(f);
}

INSTANTIATE_TEST_SUITE_P(Phases, RecoveryCrashPointTest,
                         ::testing::Values("index:R.A", "table", "index:R.B",
                                           "index:R.C"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ':' || c == '.') c = '_';
                           }
                           return name;
                         });

TEST(RecoveryTest, CrashBeforeAnyDurableWorkDropsStatement) {
  Fixture f = MakeFixture();
  // Crash at the very first phase; nothing was checkpointed, so whether the
  // statement is dropped or finished, the database must be consistent. Our
  // implementation syncs the input list at Begin, so it rolls forward.
  f.db->SetCrashPoint("index:R.A");
  auto report = f.db->BulkDelete(f.spec, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.status().IsAborted());
  ASSERT_TRUE(f.db->SimulateCrashAndRecover().ok());
  ExpectFinalState(f);
}

TEST(RecoveryTest, DoubleCrashDuringRecoveryIsIdempotent) {
  Fixture f = MakeFixture();
  f.db->SetCrashPoint("table");
  ASSERT_TRUE(
      f.db->BulkDelete(f.spec, Strategy::kVerticalSortMerge).status()
          .IsAborted());
  // First recovery is itself interrupted at a later phase.
  f.db->SetCrashPoint("index:R.C");
  Status first = f.db->SimulateCrashAndRecover();
  ASSERT_TRUE(first.IsAborted()) << first.ToString();
  // Second recovery finishes the job.
  ASSERT_TRUE(f.db->SimulateCrashAndRecover().ok());
  ExpectFinalState(f);
}

TEST(RecoveryTest, CrashAfterCompletionIsNoop) {
  Fixture f = MakeFixture();
  ASSERT_TRUE(f.db->BulkDelete(f.spec, Strategy::kVerticalSortMerge).ok());
  ASSERT_TRUE(f.db->SimulateCrashAndRecover().ok());
  ExpectFinalState(f);
}

TEST(RecoveryTest, SequentialBulkDeletesWithCrashBetween) {
  Fixture f = MakeFixture(0.1);
  ASSERT_TRUE(f.db->BulkDelete(f.spec, Strategy::kVerticalSortMerge).ok());

  // Second statement over the survivors, crashed and recovered.
  std::vector<int64_t> second;
  TableDef* table = f.db->GetTable("R");
  ASSERT_TRUE(table->table
                  ->Scan([&](const Rid&, const char* tuple) {
                    int64_t a = table->schema->GetInt(tuple, 0);
                    if (second.size() < 200) second.push_back(a);
                    return Status::OK();
                  })
                  .ok());
  BulkDeleteSpec spec2 = f.spec;
  spec2.keys = second;
  f.doomed.insert(second.begin(), second.end());

  f.db->SetCrashPoint("index:R.B");
  ASSERT_TRUE(
      f.db->BulkDelete(spec2, Strategy::kVerticalSortMerge).status()
          .IsAborted());
  ASSERT_TRUE(f.db->SimulateCrashAndRecover().ok());
  ExpectFinalState(f);
}

TEST(RecoveryTest, WalSupersedesLostPageWrites) {
  // Force heavy eviction (tiny pool) so parts of the modified leaf level are
  // written back (durable) while others are lost at the crash: the WAL +
  // idempotent re-run must still converge.
  Fixture f;
  DatabaseOptions options = RecoveryOptions();
  options.memory_budget_bytes = 64 * 1024;  // 16 frames
  f.db = *Database::Create(options);
  WorkloadSpec spec;
  spec.n_tuples = 3000;
  spec.n_int_columns = 3;
  spec.tuple_size = 64;
  f.n_tuples = spec.n_tuples;
  f.workload = *SetUpPaperDatabase(f.db.get(), spec, {"A", "B", "C"});
  ASSERT_TRUE(f.db->Checkpoint().ok());
  f.spec.table = "R";
  f.spec.key_column = "A";
  f.spec.keys = f.workload.MakeDeleteKeys(0.3, 5);
  f.doomed.insert(f.spec.keys.begin(), f.spec.keys.end());

  f.db->SetCrashPoint("table");
  ASSERT_TRUE(
      f.db->BulkDelete(f.spec, Strategy::kVerticalSortMerge).status()
          .IsAborted());
  ASSERT_TRUE(f.db->SimulateCrashAndRecover().ok());
  ExpectFinalState(f);
}

TEST(RecoveryTest, ParallelCrashBetweenSecondariesAndFinalizeCheckpoint) {
  // With exec_threads > 1 the per-secondary checkpoints are deferred: each
  // parallel phase only records its PhaseDone label, and the finalize step
  // flushes once for all of them. Crash in exactly that window — every
  // secondary phase has completed, nothing about them is durable yet — and
  // recovery must re-run them idempotently.
  Fixture f;
  DatabaseOptions options = RecoveryOptions();
  options.exec_threads = 4;
  auto injector = std::make_shared<FaultInjector>(1);
  options.fault_injector = injector;
  f.db = *Database::Create(options);
  WorkloadSpec spec;
  spec.n_tuples = 3000;
  spec.n_int_columns = 3;
  spec.tuple_size = 64;
  f.n_tuples = spec.n_tuples;
  f.workload = *SetUpPaperDatabase(f.db.get(), spec, {"A", "B", "C"});
  ASSERT_TRUE(f.db->Checkpoint().ok());
  f.spec.table = "R";
  f.spec.key_column = "A";
  f.spec.keys = f.workload.MakeDeleteKeys(0.2, 123);
  f.doomed.insert(f.spec.keys.begin(), f.spec.keys.end());

  injector->Arm(fault_sites::kExecFinalize, 1);
  auto report = f.db->BulkDelete(f.spec, Strategy::kVerticalSortMerge);
  ASSERT_FALSE(report.ok());
  ASSERT_TRUE(injector->tripped()) << report.status().ToString();

  injector->Disarm();
  ASSERT_TRUE(f.db->SimulateCrashAndRecover().ok());
  ExpectFinalState(f);
  // The re-run is idempotent: crashing again after completion changes
  // nothing.
  ASSERT_TRUE(f.db->SimulateCrashAndRecover().ok());
  ExpectFinalState(f);
}

TEST(LogManagerTest, SyncAndVolatileTail) {
  LogManager log;
  LogRecord r;
  r.type = LogRecordType::kBegin;
  r.bd_id = 1;
  log.Append(r);
  EXPECT_EQ(log.durable_size(), 0u);
  log.Sync();
  EXPECT_EQ(log.durable_size(), 1u);
  r.type = LogRecordType::kCommit;
  log.Append(r);
  log.DropVolatileTail();
  log.Sync();
  EXPECT_EQ(log.durable_size(), 1u);  // commit was lost in the "crash"
}

TEST(LogManagerTest, TruncateRemovesCompleted) {
  LogManager log;
  for (uint64_t id : {1ull, 2ull}) {
    LogRecord r;
    r.bd_id = id;
    r.type = LogRecordType::kBegin;
    log.Append(r);
  }
  LogRecord end;
  end.bd_id = 1;
  end.type = LogRecordType::kEnd;
  log.Append(end);
  log.Sync();
  log.TruncateCompleted();
  auto records = log.DurableSnapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].bd_id, 2u);  // the incomplete one survives
}

}  // namespace
}  // namespace bulkdel

// Integration tests of the Database façade: DDL, index-maintaining DML,
// bulk-delete strategies, bulk update, catalog persistence.

#include "core/database.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workload/generator.h"

namespace bulkdel {
namespace {

DatabaseOptions SmallOptions() {
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  return options;
}

WorkloadSpec SmallSpec(uint64_t n = 5000) {
  WorkloadSpec spec;
  spec.n_tuples = n;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  return spec;
}

TEST(DatabaseTest, CreateTableAndIndexDdl) {
  auto db = *Database::Create(SmallOptions());
  Schema schema = *Schema::PaperStyle(3, 64);
  ASSERT_TRUE(db->CreateTable("R", schema).ok());
  EXPECT_EQ(db->CreateTable("R", schema).status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(db->CreateIndex("R", "A", {.unique = true}).ok());
  EXPECT_EQ(db->CreateIndex("R", "A").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db->CreateIndex("R", "Z").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db->CreateIndex("S", "A").status().code(), StatusCode::kNotFound);
  EXPECT_NE(db->GetIndex("R", "A"), nullptr);
  EXPECT_EQ(db->GetIndex("R", "B"), nullptr);
}

TEST(DatabaseTest, InsertGetDeleteRowMaintainsIndices) {
  auto db = *Database::Create(SmallOptions());
  Schema schema = *Schema::PaperStyle(3, 64);
  ASSERT_TRUE(db->CreateTable("R", schema).ok());
  ASSERT_TRUE(db->CreateIndex("R", "A", {.unique = true}).ok());
  ASSERT_TRUE(db->CreateIndex("R", "B").ok());

  auto rid = db->InsertRow("R", {1, 10, 100});
  ASSERT_TRUE(rid.ok());
  auto row = db->GetRow("R", *rid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, (std::vector<int64_t>{1, 10, 100}));

  // Unique violation rolls the heap insert back.
  auto dup = db->InsertRow("R", {1, 20, 200});
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(db->GetTable("R")->table->tuple_count(), 1u);
  ASSERT_TRUE(db->VerifyIntegrity().ok());

  ASSERT_TRUE(db->DeleteRow("R", *rid).ok());
  EXPECT_TRUE(db->GetRow("R", *rid).status().IsNotFound());
  EXPECT_TRUE(db->GetIndex("R", "A")->tree->Search(1)->empty());
  ASSERT_TRUE(db->VerifyIntegrity().ok());
}

TEST(DatabaseTest, InsertRowArityChecked) {
  auto db = *Database::Create(SmallOptions());
  Schema schema = *Schema::PaperStyle(3, 64);
  ASSERT_TRUE(db->CreateTable("R", schema).ok());
  EXPECT_EQ(db->InsertRow("R", {1, 2}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db->InsertRow("R", {1, 2, 3, 4}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, WorkloadLoaderPopulatesEverything) {
  auto db = *Database::Create(SmallOptions());
  auto workload = SetUpPaperDatabase(db.get(), SmallSpec(), {"A", "B", "C"});
  ASSERT_TRUE(workload.ok());
  TableDef* table = db->GetTable("R");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->table->tuple_count(), 5000u);
  EXPECT_EQ(db->GetIndex("R", "A")->tree->entry_count(), 5000u);
  EXPECT_TRUE(db->GetIndex("R", "A")->options.unique);
  ASSERT_TRUE(db->VerifyIntegrity().ok());
}

TEST(DatabaseTest, WorkloadClusteredLoadIsRidOrderedOnA) {
  auto db = *Database::Create(SmallOptions());
  WorkloadSpec spec = SmallSpec();
  spec.clustered_on_a = true;
  auto workload = SetUpPaperDatabase(db.get(), spec, {"A"});
  ASSERT_TRUE(workload.ok());
  EXPECT_TRUE(db->GetIndex("R", "A")->clustered);
  // Ascending A implies ascending RID.
  int64_t prev_key = -1;
  Rid prev_rid;
  ASSERT_TRUE(db->GetIndex("R", "A")
                  ->tree
                  ->ScanAll([&](int64_t k, const Rid& rid, uint16_t) {
                    EXPECT_GT(k, prev_key);
                    if (prev_key >= 0) {
                      EXPECT_TRUE(prev_rid < rid);
                    }
                    prev_key = k;
                    prev_rid = rid;
                    return Status::OK();
                  })
                  .ok());
}

TEST(DatabaseTest, DeleteKeysExistAndVerify) {
  auto db = *Database::Create(SmallOptions());
  auto workload =
      *SetUpPaperDatabase(db.get(), SmallSpec(), {"A", "B", "C"});
  std::vector<int64_t> keys = workload.MakeDeleteKeys(0.1, 42);
  EXPECT_EQ(keys.size(), 500u);
  std::set<int64_t> distinct(keys.begin(), keys.end());
  EXPECT_EQ(distinct.size(), keys.size());  // rows sampled without repeats
  for (int64_t k : keys) {
    auto rids = db->GetIndex("R", "A")->tree->Search(k);
    ASSERT_TRUE(rids.ok());
    EXPECT_EQ(rids->size(), 1u);
  }
}

TEST(DatabaseTest, ExplainShowsChosenPlan) {
  auto db = *Database::Create(SmallOptions());
  auto workload =
      *SetUpPaperDatabase(db.get(), SmallSpec(), {"A", "B", "C"});
  BulkDeleteSpec spec;
  spec.table = "R";
  spec.key_column = "A";
  spec.keys = workload.MakeDeleteKeys(0.15, 1);
  auto plan = db->ExplainBulkDelete(spec, Strategy::kOptimizer);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->Explain().empty());
  EXPECT_NE(plan->strategy, Strategy::kOptimizer);  // resolved
}

TEST(DatabaseTest, BulkDeleteUnknownTableOrColumn) {
  auto db = *Database::Create(SmallOptions());
  BulkDeleteSpec spec;
  spec.table = "nope";
  spec.key_column = "A";
  EXPECT_TRUE(db->BulkDelete(spec, Strategy::kVerticalSortMerge)
                  .status()
                  .IsNotFound());
}

TEST(DatabaseTest, VerticalWithoutKeyIndexFallsBackToScan) {
  auto db = *Database::Create(SmallOptions());
  auto workload = *SetUpPaperDatabase(db.get(), SmallSpec(), {"B", "C"});
  BulkDeleteSpec spec;
  spec.table = "R";
  spec.key_column = "A";  // no index on A
  spec.keys = workload.MakeDeleteKeys(0.1, 3);
  auto report = db->BulkDelete(spec, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, spec.keys.size());
  ASSERT_TRUE(db->VerifyIntegrity().ok());
  EXPECT_EQ(db->GetTable("R")->table->tuple_count(),
            5000u - spec.keys.size());
}

TEST(DatabaseTest, BulkUpdateColumnMovesIndexEntries) {
  auto db = *Database::Create(SmallOptions());
  auto workload = *SetUpPaperDatabase(db.get(), SmallSpec(), {"A", "B"});
  (void)workload;
  // Shift B by +1000000000 for rows whose A value is in the lower half.
  auto report =
      db->BulkUpdateColumn("R", "B", 1000000000, "A", 0, 20000);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->rows_deleted, 0u);  // rows updated
  EXPECT_EQ(report->rows_deleted, report->index_entries_deleted);
  ASSERT_TRUE(db->VerifyIntegrity().ok());
  // Updated B values are present in the index at their new positions.
  uint64_t huge = 0;
  ASSERT_TRUE(db->GetIndex("R", "B")
                  ->tree
                  ->RangeScan(1000000000, INT64_MAX,
                              [&](int64_t, const Rid&) {
                                ++huge;
                                return Status::OK();
                              })
                  .ok());
  EXPECT_EQ(huge, report->rows_deleted);
}

TEST(DatabaseTest, CheckpointPersistsCatalogAndCounts) {
  auto db = *Database::Create(SmallOptions());
  auto workload = *SetUpPaperDatabase(db.get(), SmallSpec(1000), {"A", "B"});
  (void)workload;
  ASSERT_TRUE(db->Checkpoint().ok());
  // Simulated crash right after a checkpoint: nothing lost.
  ASSERT_TRUE(db->SimulateCrashAndRecover().ok());
  EXPECT_EQ(db->GetTable("R")->table->tuple_count(), 1000u);
  EXPECT_EQ(db->GetIndex("R", "A")->tree->entry_count(), 1000u);
  ASSERT_TRUE(db->VerifyIntegrity().ok());
}

TEST(DatabaseTest, ReportContainsPhasesAndIo) {
  auto db = *Database::Create(SmallOptions());
  auto workload =
      *SetUpPaperDatabase(db.get(), SmallSpec(), {"A", "B", "C"});
  BulkDeleteSpec spec;
  spec.table = "R";
  spec.key_column = "A";
  spec.keys = workload.MakeDeleteKeys(0.15, 5);
  auto report = db->BulkDelete(spec, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->phases.size(), 4u);  // key index, table, B, C, finalize
  EXPECT_GT(report->io.reads + report->io.writes, 0);
  EXPECT_GT(report->simulated_seconds(), 0.0);
  EXPECT_FALSE(report->plan_explain.empty());
  EXPECT_FALSE(report->ToString().empty());
}

}  // namespace
}  // namespace bulkdel

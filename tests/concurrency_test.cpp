// §3.1 protocols: concurrent updater transactions during a bulk delete,
// under both the side-file and the direct-propagation protocol. Updaters
// block on the table lock until the commit point, then run against off-line
// secondary indices; the final state must be exactly "bulk delete applied,
// then all updater operations applied".

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/database.h"
#include "workload/generator.h"

namespace bulkdel {
namespace {

struct ConcurrencyParam {
  ConcurrencyProtocol protocol;
  const char* name;
};

std::string ParamName(const ::testing::TestParamInfo<ConcurrencyParam>& info) {
  return info.param.name;
}

class ConcurrencyTest : public ::testing::TestWithParam<ConcurrencyParam> {};

TEST_P(ConcurrencyTest, UpdatersDuringBulkDelete) {
  DatabaseOptions options;
  options.memory_budget_bytes = 512 * 1024;
  options.concurrency = GetParam().protocol;
  options.bulk_chunk_entries = 64;  // many latch windows for interleaving
  auto db = *Database::Create(options);

  WorkloadSpec spec;
  spec.n_tuples = 4000;
  spec.n_int_columns = 3;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A", "B", "C"});

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.25, 99);
  std::set<int64_t> doomed(bd.keys.begin(), bd.keys.end());

  // Updater threads insert fresh rows (values far outside the generated
  // range) and delete some of them again. They start before the bulk delete
  // commits, so they exercise the lock wait + off-line index paths.
  constexpr int kUpdaters = 4;
  constexpr int kOpsPerUpdater = 150;
  std::atomic<int> inserted_live{0};
  std::atomic<bool> updater_failed{false};
  std::vector<std::thread> updaters;
  updaters.reserve(kUpdaters);
  for (int u = 0; u < kUpdaters; ++u) {
    updaters.emplace_back([&, u] {
      for (int i = 0; i < kOpsPerUpdater; ++i) {
        int64_t base = 10000000000LL + u * 1000000 + i;
        auto rid = db->InsertRow("R", {base, base + 1, base + 2});
        if (!rid.ok()) {
          updater_failed = true;
          return;
        }
        if (i % 3 == 0) {
          if (!db->DeleteRow("R", *rid).ok()) {
            updater_failed = true;
            return;
          }
        } else {
          ++inserted_live;
        }
      }
    });
  }

  auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
  for (std::thread& t : updaters) t.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(updater_failed);
  EXPECT_EQ(report->rows_deleted, bd.keys.size());

  // All indices back on-line.
  for (auto& index : db->GetTable("R")->indices) {
    EXPECT_EQ(index->cc->mode.load(), IndexMode::kOnline) << index->name;
  }

  // Final state: original rows minus doomed, plus surviving updater rows.
  TableDef* table = db->GetTable("R");
  EXPECT_EQ(table->table->tuple_count(),
            spec.n_tuples - doomed.size() +
                static_cast<uint64_t>(inserted_live.load()));
  ASSERT_TRUE(table->table
                  ->Scan([&](const Rid&, const char* tuple) {
                    int64_t a = table->schema->GetInt(tuple, 0);
                    EXPECT_EQ(doomed.count(a), 0u);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_TRUE(db->VerifyIntegrity().ok());
}

TEST_P(ConcurrencyTest, UpdaterRowsWithDoomedRidsSurvive) {
  // The §3.1.2 race: an updater inserts a row whose RID was just freed by
  // the bulk delete; the index entry must not be removed by the still-running
  // bulk deleter (undeletable marker / side-file ordering).
  DatabaseOptions options;
  options.memory_budget_bytes = 512 * 1024;
  options.concurrency = GetParam().protocol;
  options.bulk_chunk_entries = 16;
  auto db = *Database::Create(options);

  WorkloadSpec spec;
  spec.n_tuples = 2000;
  spec.n_int_columns = 3;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A", "B", "C"});

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.5, 7);

  std::atomic<bool> stop{false};
  std::atomic<bool> updater_failed{false};
  std::atomic<int> inserted{0};
  // Insert aggressively so freed slots (and thus RIDs from the delete set)
  // are re-used while the bulk delete still processes secondary indices.
  std::thread updater([&] {
    int64_t next = 20000000000LL;
    while (!stop.load()) {
      auto rid = db->InsertRow("R", {next, next + 1, next + 2});
      if (!rid.ok()) {
        updater_failed = true;
        return;
      }
      ++inserted;
      ++next;
    }
  });

  auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
  stop = true;
  updater.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(updater_failed);
  EXPECT_EQ(db->GetTable("R")->table->tuple_count(),
            spec.n_tuples - bd.keys.size() +
                static_cast<uint64_t>(inserted.load()));
  ASSERT_TRUE(db->VerifyIntegrity().ok());
}

TEST_P(ConcurrencyTest, ReadersBlockedUntilCommitPoint) {
  DatabaseOptions options;
  options.memory_budget_bytes = 512 * 1024;
  options.concurrency = GetParam().protocol;
  auto db = *Database::Create(options);

  WorkloadSpec spec;
  spec.n_tuples = 3000;
  spec.n_int_columns = 3;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A", "B", "C"});

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.3, 5);
  std::set<int64_t> doomed(bd.keys.begin(), bd.keys.end());

  // A reader that repeatedly reads one surviving row: it must never observe
  // a torn state (GetRow either blocks or sees the row).
  Rid victim_rid;
  int64_t victim_a = 0;
  for (size_t i = 0; i < workload.rids.size(); ++i) {
    if (doomed.count(workload.values[0][i]) == 0) {
      victim_rid = workload.rids[i];
      victim_a = workload.values[0][i];
      break;
    }
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> reader_failed{false};
  std::thread reader([&] {
    while (!stop.load()) {
      auto row = db->GetRow("R", victim_rid);
      if (!row.ok() || (*row)[0] != victim_a) {
        reader_failed = true;
        return;
      }
    }
  });

  auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
  stop = true;
  reader.join();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(reader_failed);
  ASSERT_TRUE(db->VerifyIntegrity().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ConcurrencyTest,
    ::testing::Values(
        ConcurrencyParam{ConcurrencyProtocol::kSideFile, "SideFile"},
        ConcurrencyParam{ConcurrencyProtocol::kDirectPropagation,
                         "DirectPropagation"}),
    ParamName);

TEST(LockManagerTest, ExclusiveExcludesShared) {
  LockManager lm;
  lm.LockExclusive("R");
  std::atomic<bool> got_shared{false};
  std::thread t([&] {
    lm.LockShared("R");
    got_shared = true;
    lm.UnlockShared("R");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(got_shared.load());
  lm.UnlockExclusive("R");
  t.join();
  EXPECT_TRUE(got_shared.load());
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  lm.LockShared("R");
  std::atomic<bool> got{false};
  std::thread t([&] {
    lm.LockShared("R");
    got = true;
    lm.UnlockShared("R");
  });
  t.join();
  EXPECT_TRUE(got.load());
  lm.UnlockShared("R");
}

TEST(SideFileTest, AppendPeekConsumeOrdering) {
  SideFile sf;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sf.TryEnterAppend());
    ASSERT_TRUE(
        sf.Append(SideFileOp{true, i, Rid(1, static_cast<uint16_t>(i))},
                  nullptr)
            .ok());
    sf.ExitAppend();
  }
  EXPECT_EQ(sf.size(), 10u);
  // All appends came from this thread (one shard), so order is FIFO.
  auto batch = *sf.PeekBatch(4);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].key, 0);
  EXPECT_EQ(batch[3].key, 3);
  // Peek does not consume: the same front comes back until ConsumeFront.
  EXPECT_EQ(sf.size(), 10u);
  auto again = *sf.PeekBatch(4);
  EXPECT_EQ(again[0].key, 0);
  ASSERT_TRUE(sf.ConsumeFront(4).ok());
  EXPECT_EQ(sf.size(), 6u);
  batch = *sf.PeekBatch(100);
  EXPECT_EQ(batch.size(), 6u);
  EXPECT_EQ(batch[0].key, 4);
  ASSERT_TRUE(sf.ConsumeFront(batch.size()).ok());
  EXPECT_EQ(sf.size(), 0u);
  // Over-consuming is an error, not a crash.
  EXPECT_FALSE(sf.ConsumeFront(1).ok());
}

TEST(SideFileTest, QuiesceGateRejectsAppenders) {
  SideFile sf;
  {
    SideFile::QuiesceGuard quiesce(&sf);
    EXPECT_FALSE(sf.TryEnterAppend());
  }
  EXPECT_TRUE(sf.TryEnterAppend());
  sf.ExitAppend();
}

}  // namespace
}  // namespace bulkdel

// Bulk UPDATE via bulk delete + bulk insert on the affected index — the
// paper's Emp.salary example (§1).

#include <gtest/gtest.h>

#include "core/database.h"

namespace bulkdel {
namespace {

class BulkUpdateTest : public ::testing::Test {
 protected:
  BulkUpdateTest() {
    DatabaseOptions options;
    options.memory_budget_bytes = 256 * 1024;
    db_ = *Database::Create(options);
    Schema schema = *Schema::PaperStyle(3, 64);  // EMP(A=id, B=salary, C=dept)
    EXPECT_TRUE(db_->CreateTable("EMP", schema).ok());
    EXPECT_TRUE(db_->CreateIndex("EMP", "A", {.unique = true}).ok());
    EXPECT_TRUE(db_->CreateIndex("EMP", "B").ok());
    for (int64_t i = 0; i < 2000; ++i) {
      EXPECT_TRUE(db_->InsertRow("EMP", {i, 1000 + i, i % 10}).ok());
    }
  }

  std::unique_ptr<Database> db_;
};

TEST_F(BulkUpdateTest, RaisesSalariesAboveThreshold) {
  // +500 for everyone with salary >= 2000 (the "above-average" employees).
  auto report = db_->BulkUpdateColumn("EMP", "B", 500, "B", 2000, INT64_MAX);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, 1000u);  // rows updated
  EXPECT_EQ(report->index_entries_deleted, 1000u);
  ASSERT_TRUE(db_->VerifyIntegrity().ok());

  // Old values gone, new values present, RIDs unchanged. Salaries were
  // 1000..2999; those >= 2000 moved to 2500..3499.
  EXPECT_TRUE(db_->GetIndex("EMP", "B")->tree->Search(2000)->empty());
  EXPECT_EQ(db_->GetIndex("EMP", "B")->tree->Search(1999)->size(), 1u);
  EXPECT_EQ(db_->GetIndex("EMP", "B")->tree->Search(2500)->size(), 1u);
  EXPECT_EQ(db_->GetIndex("EMP", "B")->tree->Search(3499)->size(), 1u);
  EXPECT_EQ(db_->GetIndex("EMP", "B")->tree->entry_count(), 2000u);
}

TEST_F(BulkUpdateTest, NoMatchesIsNoop) {
  auto report = db_->BulkUpdateColumn("EMP", "B", 500, "B", -100, -1);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_deleted, 0u);
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(BulkUpdateTest, UpdateOnUnindexedColumnSkipsIndexPhases) {
  // C has no index: the update is table-only.
  auto report = db_->BulkUpdateColumn("EMP", "C", 100, "A", 0, 99);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, 100u);
  EXPECT_EQ(report->index_entries_deleted, 0u);
  auto row = db_->GetRow("EMP",
                         db_->GetIndex("EMP", "A")->tree->Search(5)->at(0));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[2], 5 % 10 + 100);
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(BulkUpdateTest, UnknownColumnsRejected) {
  EXPECT_TRUE(
      db_->BulkUpdateColumn("EMP", "Z", 1, "A", 0, 10).status().IsNotFound());
  EXPECT_TRUE(
      db_->BulkUpdateColumn("EMP", "B", 1, "Z", 0, 10).status().IsNotFound());
  EXPECT_TRUE(
      db_->BulkUpdateColumn("NOPE", "B", 1, "A", 0, 10).status().IsNotFound());
}

TEST_F(BulkUpdateTest, UpdatePreservesOtherIndices) {
  auto report = db_->BulkUpdateColumn("EMP", "B", 10000, "A", 100, 199);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_deleted, 100u);
  // The A index was never touched: every id still resolves.
  for (int64_t id : {0, 100, 150, 1999}) {
    EXPECT_EQ(db_->GetIndex("EMP", "A")->tree->Search(id)->size(), 1u) << id;
  }
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

}  // namespace
}  // namespace bulkdel

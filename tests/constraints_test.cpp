// Referential-integrity processing (§2.1's vertical constraint checking):
// RESTRICT and CASCADE foreign keys under both row-level DML and bulk
// deletes, including multi-level cascades and cycle rejection.

#include <gtest/gtest.h>

#include <set>

#include "core/database.h"

namespace bulkdel {
namespace {

class ConstraintsTest : public ::testing::Test {
 protected:
  ConstraintsTest() {
    DatabaseOptions options;
    options.memory_budget_bytes = 256 * 1024;
    db_ = *Database::Create(options);
    Schema parent_schema = *Schema::PaperStyle(2, 64);  // CUSTOMER(A=id, B)
    Schema child_schema = *Schema::PaperStyle(3, 64);   // ORD(A=id, B=cust, C)
    EXPECT_TRUE(db_->CreateTable("CUSTOMER", parent_schema).ok());
    EXPECT_TRUE(db_->CreateIndex("CUSTOMER", "A", {.unique = true}).ok());
    EXPECT_TRUE(db_->CreateTable("ORD", child_schema).ok());
    EXPECT_TRUE(db_->CreateIndex("ORD", "A", {.unique = true}).ok());
    EXPECT_TRUE(db_->CreateIndex("ORD", "B").ok());

    for (int64_t c = 0; c < 100; ++c) {
      EXPECT_TRUE(db_->InsertRow("CUSTOMER", {c, c * 10}).ok());
    }
    // 3 orders per customer 0..49; customers 50..99 have none.
    int64_t oid = 0;
    for (int64_t c = 0; c < 50; ++c) {
      for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(db_->InsertRow("ORD", {oid++, c, c + i}).ok());
      }
    }
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ConstraintsTest, AddForeignKeyValidatesExistingData) {
  ASSERT_TRUE(db_->AddForeignKey("ORD", "B", "CUSTOMER", "A").ok());
  // A second FK whose data is violated: ORD.C values include c+2 up to 51,
  // all < 100, so actually valid... use ORD.A (ids 0..149) against
  // CUSTOMER.A (0..99): ids 100..149 have no parent.
  Status s = db_->AddForeignKey("ORD", "A", "CUSTOMER", "A");
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
}

TEST_F(ConstraintsTest, AddForeignKeyRequiresUniqueParentIndex) {
  // CUSTOMER.B has no index at all.
  EXPECT_EQ(db_->AddForeignKey("ORD", "C", "CUSTOMER", "B").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(db_->AddForeignKey("ORD", "B", "NOPE", "A").IsNotFound());
  EXPECT_TRUE(db_->AddForeignKey("ORD", "Z", "CUSTOMER", "A").IsNotFound());
}

TEST_F(ConstraintsTest, InsertIntoChildChecksParent) {
  ASSERT_TRUE(db_->AddForeignKey("ORD", "B", "CUSTOMER", "A").ok());
  EXPECT_TRUE(db_->InsertRow("ORD", {1000, 42, 0}).ok());     // customer 42 ok
  auto bad = db_->InsertRow("ORD", {1001, 12345, 0});          // no such parent
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);
  // The failed insert left no orphan row behind.
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(ConstraintsTest, DeleteRowRestrict) {
  ASSERT_TRUE(db_->AddForeignKey("ORD", "B", "CUSTOMER", "A").ok());
  Rid customer0 = db_->GetIndex("CUSTOMER", "A")->tree->Search(0)->at(0);
  Status s = db_->DeleteRow("CUSTOMER", customer0);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // Referenced row untouched.
  EXPECT_TRUE(db_->GetRow("CUSTOMER", customer0).ok());
  // Customer 99 has no orders: deletable.
  Rid customer99 = db_->GetIndex("CUSTOMER", "A")->tree->Search(99)->at(0);
  EXPECT_TRUE(db_->DeleteRow("CUSTOMER", customer99).ok());
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(ConstraintsTest, DeleteRowCascade) {
  ASSERT_TRUE(
      db_->AddForeignKey("ORD", "B", "CUSTOMER", "A", FkAction::kCascade)
          .ok());
  Rid customer7 = db_->GetIndex("CUSTOMER", "A")->tree->Search(7)->at(0);
  uint64_t orders_before = db_->GetTable("ORD")->table->tuple_count();
  ASSERT_TRUE(db_->DeleteRow("CUSTOMER", customer7).ok());
  EXPECT_EQ(db_->GetTable("ORD")->table->tuple_count(), orders_before - 3);
  EXPECT_TRUE(db_->GetIndex("ORD", "B")->tree->Search(7)->empty());
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(ConstraintsTest, BulkDeleteRestrictFailsEarlyWithNothingDeleted) {
  ASSERT_TRUE(db_->AddForeignKey("ORD", "B", "CUSTOMER", "A").ok());
  BulkDeleteSpec spec;
  spec.table = "CUSTOMER";
  spec.key_column = "A";
  spec.keys = {10, 60, 70};  // customer 10 is referenced
  auto report = db_->BulkDelete(spec, Strategy::kVerticalSortMerge);
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  // Nothing was deleted — the check ran before any destructive work.
  EXPECT_EQ(db_->GetTable("CUSTOMER")->table->tuple_count(), 100u);
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(ConstraintsTest, BulkDeleteRestrictPassesWhenUnreferenced) {
  ASSERT_TRUE(db_->AddForeignKey("ORD", "B", "CUSTOMER", "A").ok());
  BulkDeleteSpec spec;
  spec.table = "CUSTOMER";
  spec.key_column = "A";
  for (int64_t c = 60; c < 90; ++c) spec.keys.push_back(c);
  auto report = db_->BulkDelete(spec, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, 30u);
  EXPECT_EQ(report->cascaded_rows, 0u);
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(ConstraintsTest, BulkDeleteCascadesChildren) {
  ASSERT_TRUE(
      db_->AddForeignKey("ORD", "B", "CUSTOMER", "A", FkAction::kCascade)
          .ok());
  BulkDeleteSpec spec;
  spec.table = "CUSTOMER";
  spec.key_column = "A";
  for (int64_t c = 0; c < 20; ++c) spec.keys.push_back(c);  // 20 x 3 orders
  auto report = db_->BulkDelete(spec, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, 20u);
  EXPECT_EQ(report->cascaded_rows, 60u);
  EXPECT_EQ(db_->GetTable("ORD")->table->tuple_count(), 90u);
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(ConstraintsTest, MultiLevelCascade) {
  // LINE(A=id, B=order_id) referencing ORD.A; CUSTOMER -> ORD -> LINE.
  Schema line_schema = *Schema::PaperStyle(2, 32);
  ASSERT_TRUE(db_->CreateTable("LINE", line_schema).ok());
  ASSERT_TRUE(db_->CreateIndex("LINE", "A", {.unique = true}).ok());
  ASSERT_TRUE(db_->CreateIndex("LINE", "B").ok());
  // Two lines per order 0..29.
  int64_t lid = 0;
  for (int64_t o = 0; o < 30; ++o) {
    ASSERT_TRUE(db_->InsertRow("LINE", {lid++, o}).ok());
    ASSERT_TRUE(db_->InsertRow("LINE", {lid++, o}).ok());
  }
  ASSERT_TRUE(
      db_->AddForeignKey("ORD", "B", "CUSTOMER", "A", FkAction::kCascade)
          .ok());
  ASSERT_TRUE(
      db_->AddForeignKey("LINE", "B", "ORD", "A", FkAction::kCascade).ok());

  BulkDeleteSpec spec;
  spec.table = "CUSTOMER";
  spec.key_column = "A";
  spec.keys = {0, 1};  // orders 0..5 -> lines 0..11
  auto report = db_->BulkDelete(spec, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, 2u);
  EXPECT_EQ(report->cascaded_rows, 6u + 12u);
  EXPECT_EQ(db_->GetTable("LINE")->table->tuple_count(), 60u - 12u);
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(ConstraintsTest, FkOnNonKeyColumnOfBulkDelete) {
  // FK references CUSTOMER.A but the bulk delete keys on CUSTOMER.B: the
  // doomed rows' A values must be collected via the key index + row fetch.
  ASSERT_TRUE(db_->CreateIndex("CUSTOMER", "B", {.unique = true}).ok());
  ASSERT_TRUE(
      db_->AddForeignKey("ORD", "B", "CUSTOMER", "A", FkAction::kCascade)
          .ok());
  BulkDeleteSpec spec;
  spec.table = "CUSTOMER";
  spec.key_column = "B";  // B = A * 10
  spec.keys = {30, 40};   // customers 3 and 4
  auto report = db_->BulkDelete(spec, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, 2u);
  EXPECT_EQ(report->cascaded_rows, 6u);
  EXPECT_TRUE(db_->GetIndex("ORD", "B")->tree->Search(3)->empty());
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(ConstraintsTest, SelfReferenceCycleRejected) {
  // EMP(A=id, B=manager_id) with a cascade FK onto itself: deleting a
  // manager via bulk delete must detect the cycle instead of recursing.
  Schema emp_schema = *Schema::PaperStyle(2, 32);
  ASSERT_TRUE(db_->CreateTable("EMP", emp_schema).ok());
  ASSERT_TRUE(db_->CreateIndex("EMP", "A", {.unique = true}).ok());
  ASSERT_TRUE(db_->CreateIndex("EMP", "B").ok());
  ASSERT_TRUE(db_->InsertRow("EMP", {1, 1}).ok());  // the boss manages herself
  ASSERT_TRUE(db_->InsertRow("EMP", {2, 1}).ok());
  ASSERT_TRUE(
      db_->AddForeignKey("EMP", "B", "EMP", "A", FkAction::kCascade).ok());
  BulkDeleteSpec spec;
  spec.table = "EMP";
  spec.key_column = "A";
  spec.keys = {1};
  auto report = db_->BulkDelete(spec, Strategy::kVerticalSortMerge);
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ConstraintsTest, CascadeBeforeRestrictLeavesChildrenUntouched) {
  // Catalog order {CASCADE, RESTRICT}: the RESTRICT comes *after* the
  // cascade in FK order, but planning evaluates every RESTRICT before any
  // mutation, so the cascade must not have run when the statement fails.
  ASSERT_TRUE(
      db_->AddForeignKey("ORD", "B", "CUSTOMER", "A", FkAction::kCascade)
          .ok());
  Schema inv_schema = *Schema::PaperStyle(2, 32);  // INV(A=id, B=cust)
  ASSERT_TRUE(db_->CreateTable("INV", inv_schema).ok());
  ASSERT_TRUE(db_->CreateIndex("INV", "A", {.unique = true}).ok());
  ASSERT_TRUE(db_->CreateIndex("INV", "B").ok());
  ASSERT_TRUE(db_->InsertRow("INV", {0, 10}).ok());  // invoice for customer 10
  ASSERT_TRUE(db_->AddForeignKey("INV", "B", "CUSTOMER", "A").ok());

  BulkDeleteSpec spec;
  spec.table = "CUSTOMER";
  spec.key_column = "A";
  spec.keys = {10, 60};  // 10 is RESTRICT-referenced by INV
  auto report = db_->BulkDelete(spec, Strategy::kVerticalSortMerge);
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition)
      << report.status().ToString();
  // The cascade leg (customer 10 has 3 orders) must not have fired.
  EXPECT_EQ(db_->GetTable("CUSTOMER")->table->tuple_count(), 100u);
  EXPECT_EQ(db_->GetTable("ORD")->table->tuple_count(), 150u);
  EXPECT_EQ(db_->GetTable("INV")->table->tuple_count(), 1u);
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(ConstraintsTest, RestrictBeforeCascadeLeavesChildrenUntouched) {
  // Mirror ordering {RESTRICT, CASCADE}: same outcome regardless of the
  // position of the violated RESTRICT in the FK catalog.
  Schema inv_schema = *Schema::PaperStyle(2, 32);
  ASSERT_TRUE(db_->CreateTable("INV", inv_schema).ok());
  ASSERT_TRUE(db_->CreateIndex("INV", "A", {.unique = true}).ok());
  ASSERT_TRUE(db_->CreateIndex("INV", "B").ok());
  ASSERT_TRUE(db_->InsertRow("INV", {0, 10}).ok());
  ASSERT_TRUE(db_->AddForeignKey("INV", "B", "CUSTOMER", "A").ok());
  ASSERT_TRUE(
      db_->AddForeignKey("ORD", "B", "CUSTOMER", "A", FkAction::kCascade)
          .ok());

  BulkDeleteSpec spec;
  spec.table = "CUSTOMER";
  spec.key_column = "A";
  spec.keys = {10, 60};
  auto report = db_->BulkDelete(spec, Strategy::kVerticalSortMerge);
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db_->GetTable("CUSTOMER")->table->tuple_count(), 100u);
  EXPECT_EQ(db_->GetTable("ORD")->table->tuple_count(), 150u);
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(ConstraintsTest, RowDeleteCascadeBeforeRestrictLeavesChildrenUntouched) {
  // Same two-phase guarantee on the row-level DML path.
  ASSERT_TRUE(
      db_->AddForeignKey("ORD", "B", "CUSTOMER", "A", FkAction::kCascade)
          .ok());
  Schema inv_schema = *Schema::PaperStyle(2, 32);
  ASSERT_TRUE(db_->CreateTable("INV", inv_schema).ok());
  ASSERT_TRUE(db_->CreateIndex("INV", "A", {.unique = true}).ok());
  ASSERT_TRUE(db_->CreateIndex("INV", "B").ok());
  ASSERT_TRUE(db_->InsertRow("INV", {0, 10}).ok());
  ASSERT_TRUE(db_->AddForeignKey("INV", "B", "CUSTOMER", "A").ok());

  Rid customer10 = db_->GetIndex("CUSTOMER", "A")->tree->Search(10)->at(0);
  Status s = db_->DeleteRow("CUSTOMER", customer10);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
  EXPECT_TRUE(db_->GetRow("CUSTOMER", customer10).ok());
  EXPECT_EQ(db_->GetTable("ORD")->table->tuple_count(), 150u);
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(ConstraintsTest, TransitiveRestrictThroughCascadeChain) {
  // CUSTOMER -> ORD is CASCADE but ORD <- LINE is RESTRICT: deleting a
  // customer whose orders are referenced must fail with nothing deleted —
  // the RESTRICT is evaluated against pre-statement state even though it
  // only becomes relevant through the cascade chain.
  Schema line_schema = *Schema::PaperStyle(2, 32);
  ASSERT_TRUE(db_->CreateTable("LINE", line_schema).ok());
  ASSERT_TRUE(db_->CreateIndex("LINE", "A", {.unique = true}).ok());
  ASSERT_TRUE(db_->CreateIndex("LINE", "B").ok());
  ASSERT_TRUE(db_->InsertRow("LINE", {0, 3}).ok());  // references order 3
  ASSERT_TRUE(
      db_->AddForeignKey("ORD", "B", "CUSTOMER", "A", FkAction::kCascade)
          .ok());
  ASSERT_TRUE(db_->AddForeignKey("LINE", "B", "ORD", "A").ok());

  BulkDeleteSpec spec;
  spec.table = "CUSTOMER";
  spec.key_column = "A";
  spec.keys = {1};  // customer 1 owns orders 3,4,5; order 3 is referenced
  auto report = db_->BulkDelete(spec, Strategy::kVerticalSortMerge);
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db_->GetTable("CUSTOMER")->table->tuple_count(), 100u);
  EXPECT_EQ(db_->GetTable("ORD")->table->tuple_count(), 150u);
  EXPECT_EQ(db_->GetTable("LINE")->table->tuple_count(), 1u);
  // Customer 2's orders are unreferenced: deletable.
  spec.keys = {2};
  auto ok_report = db_->BulkDelete(spec, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(ok_report.ok()) << ok_report.status().ToString();
  EXPECT_EQ(ok_report->cascaded_rows, 3u);
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(ConstraintsTest, CascadeTableAttributionAndJsonRoundTrip) {
  // Per-table cascade attribution in the report, deepest leg first, and a
  // lossless JSON round-trip of the new field.
  Schema line_schema = *Schema::PaperStyle(2, 32);
  ASSERT_TRUE(db_->CreateTable("LINE", line_schema).ok());
  ASSERT_TRUE(db_->CreateIndex("LINE", "A", {.unique = true}).ok());
  ASSERT_TRUE(db_->CreateIndex("LINE", "B").ok());
  int64_t lid = 0;
  for (int64_t o = 0; o < 30; ++o) {
    ASSERT_TRUE(db_->InsertRow("LINE", {lid++, o}).ok());
    ASSERT_TRUE(db_->InsertRow("LINE", {lid++, o}).ok());
  }
  ASSERT_TRUE(
      db_->AddForeignKey("ORD", "B", "CUSTOMER", "A", FkAction::kCascade)
          .ok());
  ASSERT_TRUE(
      db_->AddForeignKey("LINE", "B", "ORD", "A", FkAction::kCascade).ok());

  BulkDeleteSpec spec;
  spec.table = "CUSTOMER";
  spec.key_column = "A";
  spec.keys = {0, 1};
  auto report = db_->BulkDelete(spec, Strategy::kVerticalSortMerge);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->cascade_tables.size(), 2u);
  EXPECT_EQ(report->cascade_tables[0], (CascadeTableRows{"LINE", 12}));
  EXPECT_EQ(report->cascade_tables[1], (CascadeTableRows{"ORD", 6}));

  auto round = BulkDeleteReport::FromJson(report->ToJson());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->cascaded_rows, report->cascaded_rows);
  EXPECT_EQ(round->cascade_tables, report->cascade_tables);
}

TEST_F(ConstraintsTest, NonUniqueParentIndexRefused) {
  // A *non-unique* index on the parent column is not enough: cascading from
  // a duplicated parent value could doom children of surviving parents.
  ASSERT_TRUE(db_->CreateIndex("CUSTOMER", "B").ok());  // non-unique
  EXPECT_EQ(db_->AddForeignKey("ORD", "C", "CUSTOMER", "B").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ConstraintsTest, DroppingFkBackingIndexRefused) {
  ASSERT_TRUE(db_->AddForeignKey("ORD", "B", "CUSTOMER", "A").ok());
  EXPECT_EQ(db_->DropIndex("CUSTOMER", "A").code(),
            StatusCode::kFailedPrecondition);
  // Unrelated indices still droppable.
  EXPECT_TRUE(db_->DropIndex("ORD", "B").ok());
}

TEST_F(ConstraintsTest, ForeignKeysSurviveReopen) {
  ASSERT_TRUE(
      db_->AddForeignKey("ORD", "B", "CUSTOMER", "A", FkAction::kCascade)
          .ok());
  ASSERT_TRUE(db_->Checkpoint().ok());
  ASSERT_TRUE(db_->SimulateCrashAndRecover().ok());
  ASSERT_EQ(db_->catalog().foreign_keys().size(), 1u);
  EXPECT_EQ(db_->catalog().foreign_keys()[0].action, FkAction::kCascade);
  // Enforcement still works after the reopen.
  auto bad = db_->InsertRow("ORD", {5000, 99999, 0});
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace bulkdel

// Every strategy must produce exactly the same end state: the doomed rows
// gone from the table and every index, everything else untouched, and all
// structural invariants intact. Parameterized across strategies × workload
// shapes (clustered / unclustered, index counts, delete fractions, reorg
// modes).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/database.h"
#include "workload/generator.h"

namespace bulkdel {
namespace {

struct EquivalenceParam {
  Strategy strategy;
  double fraction;
  int n_indices;       // 1..3 (A always first)
  bool clustered;
  ReorgMode reorg;
  const char* name;
};

std::string ParamName(const ::testing::TestParamInfo<EquivalenceParam>& info) {
  return info.param.name;
}

class StrategyEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParam> {};

struct RunOutcome {
  uint64_t rows_deleted = 0;
  int64_t simulated_micros = 0;
  std::multiset<int64_t> surviving_a;
};

/// Builds the parameterized workload on a fresh database, runs the bulk
/// delete with `exec_threads` workers, and checks the end state against the
/// doomed set. Returns the outcome so callers can compare across thread
/// counts.
RunOutcome RunOnce(const EquivalenceParam& param, int exec_threads,
                   size_t memory_budget_bytes) {
  DatabaseOptions options;
  options.memory_budget_bytes = memory_budget_bytes;
  options.reorg = param.reorg;
  options.exec_threads = exec_threads;
  auto db = *Database::Create(options);

  WorkloadSpec spec;
  spec.n_tuples = 4000;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  spec.clustered_on_a = param.clustered;
  std::vector<std::string> columns = {"A", "B", "C"};
  columns.resize(static_cast<size_t>(param.n_indices));
  auto workload = *SetUpPaperDatabase(db.get(), spec, columns);

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(param.fraction, 77);
  std::set<int64_t> doomed(bd.keys.begin(), bd.keys.end());

  auto report = db->BulkDelete(bd, param.strategy);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (!report.ok()) return RunOutcome{};

  RunOutcome out;
  out.rows_deleted = report->rows_deleted;
  out.simulated_micros = report->io.simulated_micros;
  EXPECT_EQ(report->rows_deleted, bd.keys.size());

  // Exactly the expected rows remain.
  TableDef* table = db->GetTable("R");
  EXPECT_EQ(table->table->tuple_count(), spec.n_tuples - doomed.size());
  EXPECT_TRUE(table->table
                  ->Scan([&](const Rid&, const char* tuple) {
                    int64_t a = table->schema->GetInt(tuple, 0);
                    EXPECT_EQ(doomed.count(a), 0u) << "doomed row survived";
                    out.surviving_a.insert(a);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(out.surviving_a.size(), spec.n_tuples - doomed.size());

  // All indices consistent with the table.
  EXPECT_TRUE(db->VerifyIntegrity().ok());
  return out;
}

TEST_P(StrategyEquivalenceTest, EndStateMatchesReference) {
  RunOnce(GetParam(), /*exec_threads=*/1, /*memory_budget_bytes=*/256 * 1024);
}

/// The phase-DAG scheduler must be invisible to results: the same strategy
/// at exec_threads 1 and 4 produces the identical post-state. Run under the
/// tight memory budget so eviction paths are exercised concurrently.
TEST_P(StrategyEquivalenceTest, ParallelEndStateMatchesSerial) {
  const EquivalenceParam& param = GetParam();
  RunOutcome serial = RunOnce(param, 1, 256 * 1024);
  RunOutcome parallel = RunOnce(param, 4, 256 * 1024);
  EXPECT_EQ(serial.rows_deleted, parallel.rows_deleted);
  EXPECT_EQ(serial.surviving_a, parallel.surviving_a);
}

/// With the working set resident (no evictions, so each phase performs the
/// same page-access sequence regardless of interleaving), the attributed
/// simulated I/O must be bit-identical across thread counts — per-phase
/// attribution classifies sequential/random against the phase's own disk
/// head, not the globally interleaved one.
TEST_P(StrategyEquivalenceTest, ParallelSimulatedIoMatchesSerial) {
  const EquivalenceParam& param = GetParam();
  const size_t roomy = 8ull << 20;
  RunOutcome serial = RunOnce(param, 1, roomy);
  RunOutcome parallel = RunOnce(param, 4, roomy);
  EXPECT_EQ(serial.rows_deleted, parallel.rows_deleted);
  EXPECT_EQ(serial.surviving_a, parallel.surviving_a);
  EXPECT_EQ(serial.simulated_micros, parallel.simulated_micros);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrategyEquivalenceTest,
    ::testing::Values(
        EquivalenceParam{Strategy::kTraditional, 0.10, 3, false,
                         ReorgMode::kFreeAtEmpty, "Traditional3Idx"},
        EquivalenceParam{Strategy::kTraditionalSorted, 0.10, 3, false,
                         ReorgMode::kFreeAtEmpty, "TraditionalSorted3Idx"},
        EquivalenceParam{Strategy::kDropCreate, 0.10, 3, false,
                         ReorgMode::kFreeAtEmpty, "DropCreate3Idx"},
        EquivalenceParam{Strategy::kVerticalSortMerge, 0.10, 3, false,
                         ReorgMode::kFreeAtEmpty, "SortMerge3Idx"},
        EquivalenceParam{Strategy::kVerticalHash, 0.10, 3, false,
                         ReorgMode::kFreeAtEmpty, "Hash3Idx"},
        EquivalenceParam{Strategy::kVerticalPartitionedHash, 0.10, 3, false,
                         ReorgMode::kFreeAtEmpty, "Partitioned3Idx"},
        EquivalenceParam{Strategy::kOptimizer, 0.10, 3, false,
                         ReorgMode::kFreeAtEmpty, "Optimizer3Idx"},
        EquivalenceParam{Strategy::kVerticalSortMerge, 0.15, 1, true,
                         ReorgMode::kFreeAtEmpty, "SortMergeClustered"},
        EquivalenceParam{Strategy::kTraditionalSorted, 0.15, 1, true,
                         ReorgMode::kFreeAtEmpty, "TradSortedClustered"},
        EquivalenceParam{Strategy::kVerticalSortMerge, 0.20, 2, false,
                         ReorgMode::kCompactAndRebuild, "SortMergeCompact"},
        EquivalenceParam{Strategy::kVerticalHash, 0.20, 2, false,
                         ReorgMode::kIncrementalBaseNode, "HashIncremental"},
        EquivalenceParam{Strategy::kVerticalSortMerge, 0.002, 3, false,
                         ReorgMode::kFreeAtEmpty, "SortMergeTinyList"},
        EquivalenceParam{Strategy::kDropCreate, 0.20, 2, false,
                         ReorgMode::kFreeAtEmpty, "DropCreateBig"},
        EquivalenceParam{Strategy::kVerticalPartitionedHash, 0.25, 3, false,
                         ReorgMode::kFreeAtEmpty, "PartitionedBig"}),
    ParamName);

}  // namespace
}  // namespace bulkdel

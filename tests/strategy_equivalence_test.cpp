// Every strategy must produce exactly the same end state: the doomed rows
// gone from the table and every index, everything else untouched, and all
// structural invariants intact. Parameterized across strategies × workload
// shapes (clustered / unclustered, index counts, delete fractions, reorg
// modes).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/database.h"
#include "workload/generator.h"

namespace bulkdel {
namespace {

struct EquivalenceParam {
  Strategy strategy;
  double fraction;
  int n_indices;       // 1..3 (A always first)
  bool clustered;
  ReorgMode reorg;
  const char* name;
};

std::string ParamName(const ::testing::TestParamInfo<EquivalenceParam>& info) {
  return info.param.name;
}

class StrategyEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(StrategyEquivalenceTest, EndStateMatchesReference) {
  const EquivalenceParam& param = GetParam();

  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  options.reorg = param.reorg;
  auto db = *Database::Create(options);

  WorkloadSpec spec;
  spec.n_tuples = 4000;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  spec.clustered_on_a = param.clustered;
  std::vector<std::string> columns = {"A", "B", "C"};
  columns.resize(static_cast<size_t>(param.n_indices));
  auto workload = *SetUpPaperDatabase(db.get(), spec, columns);

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(param.fraction, 77);
  std::set<int64_t> doomed(bd.keys.begin(), bd.keys.end());

  auto report = db->BulkDelete(bd, param.strategy);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, bd.keys.size());

  // Exactly the expected rows remain.
  TableDef* table = db->GetTable("R");
  EXPECT_EQ(table->table->tuple_count(), spec.n_tuples - doomed.size());
  std::set<int64_t> surviving_a;
  ASSERT_TRUE(table->table
                  ->Scan([&](const Rid&, const char* tuple) {
                    int64_t a = table->schema->GetInt(tuple, 0);
                    EXPECT_EQ(doomed.count(a), 0u) << "doomed row survived";
                    surviving_a.insert(a);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(surviving_a.size(), spec.n_tuples - doomed.size());

  // All indices consistent with the table.
  ASSERT_TRUE(db->VerifyIntegrity().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrategyEquivalenceTest,
    ::testing::Values(
        EquivalenceParam{Strategy::kTraditional, 0.10, 3, false,
                         ReorgMode::kFreeAtEmpty, "Traditional3Idx"},
        EquivalenceParam{Strategy::kTraditionalSorted, 0.10, 3, false,
                         ReorgMode::kFreeAtEmpty, "TraditionalSorted3Idx"},
        EquivalenceParam{Strategy::kDropCreate, 0.10, 3, false,
                         ReorgMode::kFreeAtEmpty, "DropCreate3Idx"},
        EquivalenceParam{Strategy::kVerticalSortMerge, 0.10, 3, false,
                         ReorgMode::kFreeAtEmpty, "SortMerge3Idx"},
        EquivalenceParam{Strategy::kVerticalHash, 0.10, 3, false,
                         ReorgMode::kFreeAtEmpty, "Hash3Idx"},
        EquivalenceParam{Strategy::kVerticalPartitionedHash, 0.10, 3, false,
                         ReorgMode::kFreeAtEmpty, "Partitioned3Idx"},
        EquivalenceParam{Strategy::kOptimizer, 0.10, 3, false,
                         ReorgMode::kFreeAtEmpty, "Optimizer3Idx"},
        EquivalenceParam{Strategy::kVerticalSortMerge, 0.15, 1, true,
                         ReorgMode::kFreeAtEmpty, "SortMergeClustered"},
        EquivalenceParam{Strategy::kTraditionalSorted, 0.15, 1, true,
                         ReorgMode::kFreeAtEmpty, "TradSortedClustered"},
        EquivalenceParam{Strategy::kVerticalSortMerge, 0.20, 2, false,
                         ReorgMode::kCompactAndRebuild, "SortMergeCompact"},
        EquivalenceParam{Strategy::kVerticalHash, 0.20, 2, false,
                         ReorgMode::kIncrementalBaseNode, "HashIncremental"},
        EquivalenceParam{Strategy::kVerticalSortMerge, 0.002, 3, false,
                         ReorgMode::kFreeAtEmpty, "SortMergeTinyList"},
        EquivalenceParam{Strategy::kDropCreate, 0.20, 2, false,
                         ReorgMode::kFreeAtEmpty, "DropCreateBig"},
        EquivalenceParam{Strategy::kVerticalPartitionedHash, 0.25, 3, false,
                         ReorgMode::kFreeAtEmpty, "PartitionedBig"}),
    ParamName);

}  // namespace
}  // namespace bulkdel

// txn/ units: the sharded LockManager (writer preference, bounded entry
// map, shared re-entrancy) and the SideFile (epoch-gate admission, spill
// round-trip, restartable peek/consume), plus a ThreadSanitizer stress of
// the Append-vs-BringOnline race through the database DML path.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "storage/disk_manager.h"
#include "txn/lock_manager.h"
#include "txn/side_file.h"
#include "workload/generator.h"

namespace bulkdel {
namespace {

TEST(LockManagerTest, WriterNotStarvedByReaderStream) {
  LockManager lm;
  lm.LockShared("R");

  std::atomic<bool> writer_acquired{false};
  std::thread writer([&] {
    lm.LockExclusive("R");
    writer_acquired = true;
    lm.UnlockExclusive("R");
  });
  // Give the writer time to queue (waiting_writers > 0) and block.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_FALSE(writer_acquired.load());

  // A fresh reader arriving behind a waiting writer must queue behind it —
  // this is what prevents a steady reader stream from starving the writer.
  std::atomic<bool> late_reader_acquired{false};
  std::thread late_reader([&] {
    lm.LockShared("R");
    late_reader_acquired = true;
    lm.UnlockShared("R");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(late_reader_acquired.load());
  EXPECT_FALSE(writer_acquired.load());

  lm.UnlockShared("R");
  writer.join();
  late_reader.join();
  EXPECT_TRUE(writer_acquired.load());
  EXPECT_TRUE(late_reader_acquired.load());
}

TEST(LockManagerTest, EntryMapStaysBounded) {
  // The pre-fix map grew one entry per resource name ever locked and never
  // shrank; a long-lived database locking per-statement names leaked without
  // bound. Entries must disappear once fully released.
  LockManager lm;
  for (int i = 0; i < 1000; ++i) {
    std::string name = "resource-" + std::to_string(i);
    lm.LockShared(name);
    lm.UnlockShared(name);
    lm.LockExclusive(name);
    lm.UnlockExclusive(name);
  }
  EXPECT_EQ(lm.entry_count(), 0u);
  lm.LockShared("held");
  EXPECT_EQ(lm.entry_count(), 1u);
  lm.UnlockShared("held");
  EXPECT_EQ(lm.entry_count(), 0u);
}

TEST(LockManagerTest, SharedReentrantDespiteWaitingWriter) {
  // Self-referencing cascades re-acquire the table's shared lock on the same
  // thread. With writer preference, the second acquisition would deadlock
  // behind a waiting writer unless re-entrancy bypasses the writer queue.
  LockManager lm;
  lm.LockShared("R");
  std::atomic<bool> writer_acquired{false};
  std::thread writer([&] {
    lm.LockExclusive("R");
    writer_acquired = true;
    lm.UnlockExclusive("R");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_FALSE(writer_acquired.load());
  lm.LockShared("R");  // re-entrant: must not block behind the writer
  lm.UnlockShared("R");
  lm.UnlockShared("R");
  writer.join();
  EXPECT_TRUE(writer_acquired.load());
}

TEST(SideFileTest, SpillRoundTrip) {
  DiskManager disk;
  SideFile sf;
  sf.Configure(&disk, 8);  // tiny threshold: force several spills

  std::vector<PageId> spilled_pages;
  constexpr int kOps = 100;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(sf.TryEnterAppend());
    SideFileOp op;
    op.is_insert = (i % 3 != 0);
    op.key = i;
    op.rid = Rid(static_cast<PageId>(1 + i / 50), static_cast<uint16_t>(i));
    ASSERT_TRUE(sf.Append(op, &spilled_pages).ok());
    sf.ExitAppend();
  }
  EXPECT_EQ(sf.size(), static_cast<size_t>(kOps));
  EXPECT_FALSE(spilled_pages.empty());
  EXPECT_GT(sf.spilled_page_count(), 0u);

  // Everything drains back out, spilled chunks first, in append order
  // (single appender thread = single shard = FIFO).
  auto batch = *sf.PeekBatch(kOps);
  ASSERT_EQ(batch.size(), static_cast<size_t>(kOps));
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(batch[i].key, i);
    EXPECT_EQ(batch[i].is_insert, i % 3 != 0);
    EXPECT_EQ(batch[i].rid,
              Rid(static_cast<PageId>(1 + i / 50), static_cast<uint16_t>(i)));
  }
  ASSERT_TRUE(sf.ConsumeFront(batch.size()).ok());
  EXPECT_EQ(sf.size(), 0u);

  // Read-back queues the scratch pages for reclamation instead of freeing
  // them inline (they may still be named by WAL records); the owner frees
  // them post-End. Every spilled page must be accounted for exactly once.
  std::vector<PageId> reclaim = sf.TakeReclaimablePages();
  EXPECT_EQ(std::set<PageId>(reclaim.begin(), reclaim.end()),
            std::set<PageId>(spilled_pages.begin(), spilled_pages.end()));
  for (PageId p : reclaim) ASSERT_TRUE(disk.FreePage(p).ok());
  EXPECT_EQ(sf.TakeReclaimablePages().size(), 0u);
}

TEST(SideFileTest, ConcurrentAppendersVsQuiescingDrainer) {
  // TSan target: the epoch gate (TryEnterAppend / QuiesceGuard) and the
  // sharded queues under real concurrency. Every appended op must be
  // drained exactly once; no op may slip in during a quiesce window.
  SideFile sf;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::atomic<bool> go{false};
  std::vector<std::thread> appenders;
  for (int t = 0; t < kThreads; ++t) {
    appenders.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kOpsPerThread; ++i) {
        SideFileOp op;
        op.key = t * kOpsPerThread + i;
        op.rid = Rid(1, 0);
        while (!sf.TryEnterAppend()) std::this_thread::yield();
        ASSERT_TRUE(sf.Append(op, nullptr).ok());
        sf.ExitAppend();
      }
    });
  }
  go = true;
  size_t drained = 0;
  std::set<int64_t> seen;
  while (drained < static_cast<size_t>(kThreads) * kOpsPerThread) {
    {
      // Periodic quiesce windows interleaved with the appenders: nothing
      // may enter while the guard is alive.
      SideFile::QuiesceGuard quiesce(&sf);
      size_t frozen = sf.size();
      auto batch = *sf.PeekBatch(frozen);
      EXPECT_EQ(batch.size(), frozen);
      for (const SideFileOp& op : batch) {
        EXPECT_TRUE(seen.insert(op.key).second) << "duplicate op " << op.key;
      }
      ASSERT_TRUE(sf.ConsumeFront(batch.size()).ok());
      drained += batch.size();
    }
    std::this_thread::yield();
  }
  for (std::thread& t : appenders) t.join();
  EXPECT_EQ(sf.size(), 0u);
  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads) * kOpsPerThread);
}

TEST(TxnStressTest, AppendRacesBringOnlineWithSpill) {
  // The §3.1.1 handoff under TSan: updaters run the double-checked
  // mode.load() → TryEnterAppend admission in Database::ApplyIndex* while
  // the bulk deleter drains and flips each index on-line; a tiny spill
  // threshold keeps the side-file spilling to scratch pages throughout.
  DatabaseOptions options;
  options.memory_budget_bytes = 512 * 1024;
  options.concurrency = ConcurrencyProtocol::kSideFile;
  options.bulk_chunk_entries = 32;  // many latch windows
  options.side_file_spill_ops = 4;
  auto db = *Database::Create(options);

  WorkloadSpec spec;
  spec.n_tuples = 3000;
  spec.n_int_columns = 3;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A", "B", "C"});

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.4, 11);

  std::atomic<bool> stop{false};
  std::atomic<bool> updater_failed{false};
  std::atomic<int> inserted_live{0};
  constexpr int kUpdaters = 3;
  std::vector<std::thread> updaters;
  for (int u = 0; u < kUpdaters; ++u) {
    updaters.emplace_back([&, u] {
      int64_t next = 40000000000LL + u * 100000000LL;
      while (!stop.load()) {
        auto rid = db->InsertRow("R", {next, next + 1, next + 2});
        if (!rid.ok()) {
          updater_failed = true;
          return;
        }
        if (next % 4 == 0) {
          if (!db->DeleteRow("R", *rid).ok()) {
            updater_failed = true;
            return;
          }
        } else {
          ++inserted_live;
        }
        ++next;
      }
    });
  }

  auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
  stop = true;
  for (std::thread& t : updaters) t.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(updater_failed.load());
  for (auto& index : db->GetTable("R")->indices) {
    EXPECT_EQ(index->cc->mode.load(), IndexMode::kOnline) << index->name;
  }
  EXPECT_EQ(db->GetTable("R")->table->tuple_count(),
            spec.n_tuples - bd.keys.size() +
                static_cast<uint64_t>(inserted_live.load()));
  ASSERT_TRUE(db->VerifyIntegrity().ok());
}

}  // namespace
}  // namespace bulkdel

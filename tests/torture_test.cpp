// System torture: long randomized interleavings of row DML, bulk deletes of
// every strategy, bulk updates and crash/recovery cycles, with full
// integrity verification between rounds. This is the "does the whole thing
// hold together" test.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/database.h"
#include "util/random.h"

namespace bulkdel {
namespace {

TEST(TortureTest, MixedWorkloadManyRounds) {
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  options.enable_recovery_log = true;
  auto db = *Database::Create(options);
  Schema schema = *Schema::PaperStyle(3, 64);
  ASSERT_TRUE(db->CreateTable("R", schema).ok());
  ASSERT_TRUE(db->CreateIndex("R", "A", {.unique = true}).ok());
  ASSERT_TRUE(db->CreateIndex("R", "B").ok());
  ASSERT_TRUE(db->CreateIndex("R", "C").ok());

  Random rng(20010407);
  // Reference model: A value -> (B, C). RIDs tracked separately per A.
  std::map<int64_t, std::pair<int64_t, int64_t>> model;
  std::map<int64_t, Rid> rids;
  int64_t next_a = 0;

  const Strategy strategies[] = {
      Strategy::kTraditional,       Strategy::kTraditionalSorted,
      Strategy::kDropCreate,        Strategy::kVerticalSortMerge,
      Strategy::kVerticalHash,      Strategy::kVerticalPartitionedHash,
      Strategy::kOptimizer,
  };

  for (int round = 0; round < 12; ++round) {
    // Phase 1: random row DML.
    for (int op = 0; op < 800; ++op) {
      if (model.empty() || rng.Bernoulli(0.7)) {
        int64_t a = next_a++;
        int64_t b = static_cast<int64_t>(rng.Next() >> 20);
        int64_t c = static_cast<int64_t>(rng.Next() >> 20);
        auto rid = db->InsertRow("R", {a, b, c});
        ASSERT_TRUE(rid.ok()) << rid.status().ToString();
        model[a] = {b, c};
        rids[a] = *rid;
      } else {
        auto it = model.begin();
        std::advance(it, rng.Uniform(model.size()));
        ASSERT_TRUE(db->DeleteRow("R", rids[it->first]).ok());
        rids.erase(it->first);
        model.erase(it);
      }
    }

    // Phase 2: a bulk delete of ~20% with a rotating strategy.
    std::vector<int64_t> doomed;
    for (const auto& [a, bc] : model) {
      if (rng.Bernoulli(0.2)) doomed.push_back(a);
    }
    BulkDeleteSpec spec;
    spec.table = "R";
    spec.key_column = "A";
    spec.keys = doomed;
    Strategy strategy = strategies[round % std::size(strategies)];
    auto report = db->BulkDelete(spec, strategy);
    ASSERT_TRUE(report.ok())
        << StrategyName(strategy) << ": " << report.status().ToString();
    ASSERT_EQ(report->rows_deleted, doomed.size());
    for (int64_t a : doomed) {
      model.erase(a);
      rids.erase(a);
    }

    // Phase 3: occasionally a bulk update on B...
    if (round % 3 == 1 && !model.empty()) {
      int64_t lo = model.begin()->first;
      int64_t hi = lo + 500;
      auto updated = db->BulkUpdateColumn("R", "B", 7, "A", lo, hi);
      ASSERT_TRUE(updated.ok()) << updated.status().ToString();
      for (auto& [a, bc] : model) {
        if (a >= lo && a <= hi) bc.first += 7;
      }
    }

    // Phase 4: ...or a crash + recovery mid-bulk-delete.
    if (round % 4 == 2 && model.size() > 10) {
      std::vector<int64_t> doomed2;
      for (const auto& [a, bc] : model) {
        if (rng.Bernoulli(0.1)) doomed2.push_back(a);
      }
      const char* points[] = {"index:R.A", "table", "index:R.B", "index:R.C"};
      ASSERT_TRUE(db->Checkpoint().ok());
      db->SetCrashPoint(points[round % 4]);
      BulkDeleteSpec spec2;
      spec2.table = "R";
      spec2.key_column = "A";
      spec2.keys = doomed2;
      auto crashed = db->BulkDelete(spec2, Strategy::kVerticalSortMerge);
      ASSERT_TRUE(crashed.status().IsAborted());
      ASSERT_TRUE(db->SimulateCrashAndRecover().ok());
      for (int64_t a : doomed2) {
        model.erase(a);
        rids.erase(a);
      }
      // RIDs may have been recycled across the crash for rows inserted
      // after... (no inserts happened mid-crash). Re-derive RIDs.
      rids.clear();
      TableDef* table = db->GetTable("R");
      ASSERT_TRUE(table->table
                      ->Scan([&](const Rid& rid, const char* tuple) {
                        rids[table->schema->GetInt(tuple, 0)] = rid;
                        return Status::OK();
                      })
                      .ok());
    }

    // Verify: table contents equal the model, all indices consistent.
    TableDef* table = db->GetTable("R");
    ASSERT_EQ(table->table->tuple_count(), model.size()) << "round " << round;
    uint64_t seen = 0;
    ASSERT_TRUE(table->table
                    ->Scan([&](const Rid&, const char* tuple) {
                      int64_t a = table->schema->GetInt(tuple, 0);
                      auto it = model.find(a);
                      if (it == model.end()) {
                        return Status::Internal("unexpected row");
                      }
                      if (table->schema->GetInt(tuple, 1) !=
                              it->second.first ||
                          table->schema->GetInt(tuple, 2) !=
                              it->second.second) {
                        return Status::Internal("row payload mismatch");
                      }
                      ++seen;
                      return Status::OK();
                    })
                    .ok())
        << "round " << round;
    ASSERT_EQ(seen, model.size());
    ASSERT_TRUE(db->VerifyIntegrity().ok()) << "round " << round;
  }
}

TEST(EdgeCaseTest, EmptyDeleteListEveryStrategy) {
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  auto db = *Database::Create(options);
  Schema schema = *Schema::PaperStyle(2, 64);
  ASSERT_TRUE(db->CreateTable("R", schema).ok());
  ASSERT_TRUE(db->CreateIndex("R", "A", {.unique = true}).ok());
  ASSERT_TRUE(db->CreateIndex("R", "B").ok());
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->InsertRow("R", {i, i}).ok());
  }
  BulkDeleteSpec spec;
  spec.table = "R";
  spec.key_column = "A";  // keys empty
  for (Strategy s : {Strategy::kTraditional, Strategy::kTraditionalSorted,
                     Strategy::kDropCreate, Strategy::kVerticalSortMerge,
                     Strategy::kVerticalHash,
                     Strategy::kVerticalPartitionedHash,
                     Strategy::kOptimizer}) {
    auto report = db->BulkDelete(spec, s);
    ASSERT_TRUE(report.ok()) << StrategyName(s);
    EXPECT_EQ(report->rows_deleted, 0u) << StrategyName(s);
    ASSERT_TRUE(db->VerifyIntegrity().ok()) << StrategyName(s);
  }
  EXPECT_EQ(db->GetTable("R")->table->tuple_count(), 100u);
}

TEST(EdgeCaseTest, DeleteEverythingEveryVerticalStrategy) {
  for (Strategy s : {Strategy::kVerticalSortMerge, Strategy::kVerticalHash,
                     Strategy::kVerticalPartitionedHash,
                     Strategy::kTraditionalSorted, Strategy::kDropCreate}) {
    DatabaseOptions options;
    options.memory_budget_bytes = 256 * 1024;
    auto db = *Database::Create(options);
    Schema schema = *Schema::PaperStyle(3, 64);
    ASSERT_TRUE(db->CreateTable("R", schema).ok());
    ASSERT_TRUE(db->CreateIndex("R", "A", {.unique = true}).ok());
    ASSERT_TRUE(db->CreateIndex("R", "B").ok());
    BulkDeleteSpec spec;
    spec.table = "R";
    spec.key_column = "A";
    for (int64_t i = 0; i < 2000; ++i) {
      ASSERT_TRUE(db->InsertRow("R", {i, i * 2, i * 3}).ok());
      spec.keys.push_back(i);
    }
    auto report = db->BulkDelete(spec, s);
    ASSERT_TRUE(report.ok()) << StrategyName(s);
    EXPECT_EQ(report->rows_deleted, 2000u) << StrategyName(s);
    EXPECT_EQ(db->GetTable("R")->table->tuple_count(), 0u);
    ASSERT_TRUE(db->VerifyIntegrity().ok()) << StrategyName(s);
    // The database is fully usable after total deletion.
    ASSERT_TRUE(db->InsertRow("R", {1, 2, 3}).ok());
    ASSERT_TRUE(db->VerifyIntegrity().ok());
  }
}

TEST(EdgeCaseTest, RepeatedBulkDeletesShrinkToNothing) {
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  options.reorg = ReorgMode::kCompactAndRebuild;
  auto db = *Database::Create(options);
  Schema schema = *Schema::PaperStyle(2, 64);
  ASSERT_TRUE(db->CreateTable("R", schema).ok());
  ASSERT_TRUE(db->CreateIndex("R", "A", {.unique = true}).ok());
  std::vector<int64_t> alive;
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(db->InsertRow("R", {i, i}).ok());
    alive.push_back(i);
  }
  Random rng(8);
  while (alive.size() > 10) {
    BulkDeleteSpec spec;
    spec.table = "R";
    spec.key_column = "A";
    std::vector<int64_t> survivors;
    for (int64_t a : alive) {
      if (rng.Bernoulli(0.5)) {
        spec.keys.push_back(a);
      } else {
        survivors.push_back(a);
      }
    }
    auto report = db->BulkDelete(spec, Strategy::kVerticalSortMerge);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->rows_deleted, spec.keys.size());
    alive = std::move(survivors);
    ASSERT_TRUE(db->VerifyIntegrity().ok());
  }
  EXPECT_EQ(db->GetTable("R")->table->tuple_count(), alive.size());
}

}  // namespace
}  // namespace bulkdel

#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"

namespace bulkdel {
namespace {

TEST(DiskManagerTest, AllocateReadWrite) {
  DiskManager disk;
  auto p0 = disk.AllocatePage();
  ASSERT_TRUE(p0.ok());
  char buf[kPageSize];
  std::memset(buf, 0xAB, kPageSize);
  ASSERT_TRUE(disk.WritePage(*p0, buf).ok());
  char out[kPageSize];
  ASSERT_TRUE(disk.ReadPage(*p0, out).ok());
  EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0);
}

TEST(DiskManagerTest, FreeListReusesPages) {
  DiskManager disk;
  PageId a = *disk.AllocatePage();
  PageId b = *disk.AllocatePage();
  (void)b;
  ASSERT_TRUE(disk.FreePage(a).ok());
  EXPECT_EQ(disk.NumFreePages(), 1u);
  PageId c = *disk.AllocatePage();
  EXPECT_EQ(c, a);
  EXPECT_EQ(disk.NumFreePages(), 0u);
}

TEST(DiskManagerTest, OutOfBoundsRejected) {
  DiskManager disk;
  char buf[kPageSize];
  EXPECT_FALSE(disk.ReadPage(17, buf).ok());
  EXPECT_FALSE(disk.WritePage(17, buf).ok());
  EXPECT_FALSE(disk.FreePage(17).ok());
}

TEST(DiskManagerTest, SequentialVsRandomAccounting) {
  DiskModel model;
  DiskManager disk(model);
  std::vector<PageId> pages;
  for (int i = 0; i < 10; ++i) pages.push_back(*disk.AllocatePage());
  char buf[kPageSize] = {};
  disk.ResetStats();
  // Ascending pass: first access random, the rest sequential.
  for (PageId p : pages) ASSERT_TRUE(disk.WritePage(p, buf).ok());
  IoStats s = disk.stats();
  EXPECT_EQ(s.writes, 10);
  EXPECT_EQ(s.random_accesses, 1);
  EXPECT_EQ(s.sequential_accesses, 9);
  EXPECT_EQ(s.simulated_micros,
            model.random_page_micros + 9 * model.sequential_page_micros);

  disk.ResetStats();
  // Strided pass: all random.
  for (int i = 9; i >= 0; --i) ASSERT_TRUE(disk.ReadPage(pages[i], buf).ok());
  s = disk.stats();
  EXPECT_EQ(s.random_accesses, 10);
}

TEST(DiskManagerTest, FileBackedRoundTrip) {
  std::string path = ::testing::TempDir() + "/bulkdel_disk_test.db";
  PageId p;
  {
    DiskManager disk(path, /*truncate=*/true);
    p = *disk.AllocatePage();
    char buf[kPageSize];
    std::memset(buf, 0x5C, kPageSize);
    ASSERT_TRUE(disk.WritePage(p, buf).ok());
  }
  DiskManager disk(path, /*truncate=*/false);
  char out[kPageSize];
  ASSERT_TRUE(disk.ReadPage(p, out).ok());
  EXPECT_EQ(out[0], 0x5C);
  EXPECT_EQ(out[kPageSize - 1], 0x5C);
}

class BufferPoolTest : public ::testing::Test {
 protected:
  DiskManager disk_;
  BufferPool pool_{&disk_, 8 * kPageSize};
};

TEST_F(BufferPoolTest, NewPageIsZeroedAndPersists) {
  PageId id;
  {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    id = guard->page_id();
    for (uint32_t i = 0; i < kPageSize; ++i) EXPECT_EQ(guard->data()[i], 0);
    guard->data()[0] = 'x';
    guard->MarkDirty();
  }
  ASSERT_TRUE(pool_.FlushAll().ok());
  char buf[kPageSize];
  ASSERT_TRUE(disk_.ReadPage(id, buf).ok());
  EXPECT_EQ(buf[0], 'x');
}

TEST_F(BufferPoolTest, FetchHitDoesNotTouchDisk) {
  PageId id;
  {
    auto guard = pool_.NewPage();
    id = guard->page_id();
  }
  int64_t reads_before = disk_.stats().reads;
  {
    auto guard = pool_.FetchPage(id);
    ASSERT_TRUE(guard.ok());
  }
  EXPECT_EQ(disk_.stats().reads, reads_before);
  EXPECT_GE(pool_.stats().hits, 1);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  // Fill beyond capacity; early dirty pages must be written back and
  // re-readable.
  std::vector<PageId> ids;
  for (int i = 0; i < 20; ++i) {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->data()[0] = static_cast<char>(i);
    guard->MarkDirty();
    ids.push_back(guard->page_id());
  }
  EXPECT_GT(pool_.stats().evictions, 0);
  for (int i = 0; i < 20; ++i) {
    auto guard = pool_.FetchPage(ids[i]);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data()[0], static_cast<char>(i));
  }
}

TEST_F(BufferPoolTest, AllPinnedIsResourceExhausted) {
  std::vector<PageGuard> guards;
  for (size_t i = 0; i < pool_.capacity_frames(); ++i) {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    guards.push_back(std::move(*guard));
  }
  auto extra = pool_.NewPage();
  EXPECT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().code(), StatusCode::kResourceExhausted);
  guards.clear();
  EXPECT_TRUE(pool_.NewPage().ok());
}

TEST_F(BufferPoolTest, DeletePageFreesFrameAndDiskPage) {
  PageId id;
  {
    auto guard = pool_.NewPage();
    id = guard->page_id();
  }
  ASSERT_TRUE(pool_.DeletePage(id).ok());
  EXPECT_EQ(disk_.NumFreePages(), 1u);
}

TEST_F(BufferPoolTest, DeletePinnedPageRefused) {
  auto guard = pool_.NewPage();
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(pool_.DeletePage(guard->page_id()).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(BufferPoolTest, DiscardAllForCrashTestDropsUnflushedWrites) {
  PageId id;
  {
    auto guard = pool_.NewPage();
    id = guard->page_id();
    guard->data()[0] = 'x';
    guard->MarkDirty();
  }
  ASSERT_TRUE(pool_.FlushAll().ok());
  {
    auto guard = pool_.FetchPage(id);
    guard->data()[0] = 'y';  // modified but never flushed
    guard->MarkDirty();
  }
  pool_.DiscardAllForCrashTest();
  auto guard = pool_.FetchPage(id);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->data()[0], 'x');
}

TEST_F(BufferPoolTest, MovedGuardReleasesOnce) {
  PageId id;
  {
    auto guard = pool_.NewPage();
    id = guard->page_id();
    PageGuard moved = std::move(*guard);
    EXPECT_TRUE(moved.valid());
    EXPECT_FALSE(guard->valid());
  }
  // If pin accounting broke, the page would be unevictable; deleting it
  // verifies pin count is back to zero.
  EXPECT_TRUE(pool_.DeletePage(id).ok());
}

TEST_F(BufferPoolTest, MoveAssignReleasesPreviousPin) {
  auto a = pool_.NewPage();
  auto b = pool_.NewPage();
  ASSERT_TRUE(a.ok() && b.ok());
  PageId a_id = a->page_id();
  PageId b_id = b->page_id();

  *a = std::move(*b);  // must unpin a's original page, then take over b's
  EXPECT_EQ(a->page_id(), b_id);
  EXPECT_TRUE(a->valid());
  EXPECT_FALSE(b->valid());
  // b is moved-from: it must not report the stale page id.
  EXPECT_EQ(b->page_id(), kInvalidPageId);

  // a's original page was unpinned by the assignment.
  EXPECT_TRUE(pool_.DeletePage(a_id).ok());
  a->Release();
  EXPECT_TRUE(pool_.DeletePage(b_id).ok());
}

TEST_F(BufferPoolTest, SelfMoveAssignKeepsGuardValid) {
  auto guard = pool_.NewPage();
  ASSERT_TRUE(guard.ok());
  PageId id = guard->page_id();
  PageGuard& alias = *guard;
  *guard = std::move(alias);  // self-move must be a no-op, not a release
  EXPECT_TRUE(guard->valid());
  EXPECT_EQ(guard->page_id(), id);
  EXPECT_NE(guard->data(), nullptr);
  // Still pinned: DeletePage must refuse.
  EXPECT_EQ(pool_.DeletePage(id).code(), StatusCode::kFailedPrecondition);
  guard->Release();
  EXPECT_TRUE(pool_.DeletePage(id).ok());
}

TEST_F(BufferPoolTest, DoubleReleaseIsIdempotent) {
  auto guard = pool_.NewPage();
  ASSERT_TRUE(guard.ok());
  PageId id = guard->page_id();
  guard->Release();
  EXPECT_FALSE(guard->valid());
  EXPECT_EQ(guard->page_id(), kInvalidPageId);
  guard->Release();  // second release: no-op, must not corrupt pin counts
  // Pin count reached exactly zero: page is deletable, and fetching it anew
  // still works (the frame was not double-unpinned into a negative count).
  {
    auto again = pool_.FetchPage(id);
    ASSERT_TRUE(again.ok());
  }
  EXPECT_TRUE(pool_.DeletePage(id).ok());
}

TEST_F(BufferPoolTest, ReleaseThenDestructorDoesNotDoubleUnpin) {
  PageId shared;
  {
    auto first = pool_.NewPage();
    shared = first->page_id();
    // Two pins on the same page; releasing one explicitly and letting the
    // other die must leave exactly zero pins — not minus one.
    auto second = pool_.FetchPage(shared);
    ASSERT_TRUE(second.ok());
    second->Release();
    second->Release();
  }
  EXPECT_TRUE(pool_.DeletePage(shared).ok());
}

}  // namespace
}  // namespace bulkdel

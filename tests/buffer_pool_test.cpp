#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/coding.h"

namespace bulkdel {
namespace {

TEST(DiskManagerTest, AllocateReadWrite) {
  DiskManager disk;
  auto p0 = disk.AllocatePage();
  ASSERT_TRUE(p0.ok());
  char buf[kPageSize];
  std::memset(buf, 0xAB, kPageSize);
  ASSERT_TRUE(disk.WritePage(*p0, buf).ok());
  char out[kPageSize];
  ASSERT_TRUE(disk.ReadPage(*p0, out).ok());
  EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0);
}

TEST(DiskManagerTest, FreeListReusesPages) {
  DiskManager disk;
  PageId a = *disk.AllocatePage();
  PageId b = *disk.AllocatePage();
  (void)b;
  ASSERT_TRUE(disk.FreePage(a).ok());
  EXPECT_EQ(disk.NumFreePages(), 1u);
  PageId c = *disk.AllocatePage();
  EXPECT_EQ(c, a);
  EXPECT_EQ(disk.NumFreePages(), 0u);
}

TEST(DiskManagerTest, OutOfBoundsRejected) {
  DiskManager disk;
  char buf[kPageSize];
  EXPECT_FALSE(disk.ReadPage(17, buf).ok());
  EXPECT_FALSE(disk.WritePage(17, buf).ok());
  EXPECT_FALSE(disk.FreePage(17).ok());
}

TEST(DiskManagerTest, SequentialVsRandomAccounting) {
  DiskModel model;
  DiskManager disk(model);
  std::vector<PageId> pages;
  for (int i = 0; i < 10; ++i) pages.push_back(*disk.AllocatePage());
  char buf[kPageSize] = {};
  disk.ResetStats();
  // Ascending pass: first access random, the rest sequential.
  for (PageId p : pages) ASSERT_TRUE(disk.WritePage(p, buf).ok());
  IoStats s = disk.stats();
  EXPECT_EQ(s.writes, 10);
  EXPECT_EQ(s.random_accesses, 1);
  EXPECT_EQ(s.sequential_accesses, 9);
  EXPECT_EQ(s.simulated_micros,
            model.random_page_micros + 9 * model.sequential_page_micros);

  disk.ResetStats();
  // Strided pass: all random.
  for (int i = 9; i >= 0; --i) ASSERT_TRUE(disk.ReadPage(pages[i], buf).ok());
  s = disk.stats();
  EXPECT_EQ(s.random_accesses, 10);
}

TEST(DiskManagerTest, FileBackedRoundTrip) {
  std::string path = ::testing::TempDir() + "/bulkdel_disk_test.db";
  PageId p;
  {
    DiskManager disk(path, /*truncate=*/true);
    p = *disk.AllocatePage();
    char buf[kPageSize];
    std::memset(buf, 0x5C, kPageSize);
    ASSERT_TRUE(disk.WritePage(p, buf).ok());
  }
  DiskManager disk(path, /*truncate=*/false);
  char out[kPageSize];
  ASSERT_TRUE(disk.ReadPage(p, out).ok());
  EXPECT_EQ(out[0], 0x5C);
  EXPECT_EQ(out[kPageSize - 1], 0x5C);
}

class BufferPoolTest : public ::testing::Test {
 protected:
  DiskManager disk_;
  BufferPool pool_{&disk_, 8 * kPageSize};
};

TEST_F(BufferPoolTest, NewPageIsZeroedAndPersists) {
  PageId id;
  {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    id = guard->page_id();
    for (uint32_t i = 0; i < kPageSize; ++i) EXPECT_EQ(guard->data()[i], 0);
    guard->data()[0] = 'x';
    guard->MarkDirty();
  }
  ASSERT_TRUE(pool_.FlushAll().ok());
  char buf[kPageSize];
  ASSERT_TRUE(disk_.ReadPage(id, buf).ok());
  EXPECT_EQ(buf[0], 'x');
}

TEST_F(BufferPoolTest, FetchHitDoesNotTouchDisk) {
  PageId id;
  {
    auto guard = pool_.NewPage();
    id = guard->page_id();
  }
  int64_t reads_before = disk_.stats().reads;
  {
    auto guard = pool_.FetchPage(id);
    ASSERT_TRUE(guard.ok());
  }
  EXPECT_EQ(disk_.stats().reads, reads_before);
  EXPECT_GE(pool_.stats().hits, 1);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  // Fill beyond capacity; early dirty pages must be written back and
  // re-readable.
  std::vector<PageId> ids;
  for (int i = 0; i < 20; ++i) {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->data()[0] = static_cast<char>(i);
    guard->MarkDirty();
    ids.push_back(guard->page_id());
  }
  EXPECT_GT(pool_.stats().evictions, 0);
  for (int i = 0; i < 20; ++i) {
    auto guard = pool_.FetchPage(ids[i]);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data()[0], static_cast<char>(i));
  }
}

TEST_F(BufferPoolTest, AllPinnedIsResourceExhausted) {
  std::vector<PageGuard> guards;
  for (size_t i = 0; i < pool_.capacity_frames(); ++i) {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    guards.push_back(std::move(*guard));
  }
  auto extra = pool_.NewPage();
  EXPECT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().code(), StatusCode::kResourceExhausted);
  guards.clear();
  EXPECT_TRUE(pool_.NewPage().ok());
}

TEST_F(BufferPoolTest, DeletePageFreesFrameAndDiskPage) {
  PageId id;
  {
    auto guard = pool_.NewPage();
    id = guard->page_id();
  }
  ASSERT_TRUE(pool_.DeletePage(id).ok());
  EXPECT_EQ(disk_.NumFreePages(), 1u);
}

TEST_F(BufferPoolTest, DeletePinnedPageRefused) {
  auto guard = pool_.NewPage();
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(pool_.DeletePage(guard->page_id()).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(BufferPoolTest, DiscardAllForCrashTestDropsUnflushedWrites) {
  PageId id;
  {
    auto guard = pool_.NewPage();
    id = guard->page_id();
    guard->data()[0] = 'x';
    guard->MarkDirty();
  }
  ASSERT_TRUE(pool_.FlushAll().ok());
  {
    auto guard = pool_.FetchPage(id);
    guard->data()[0] = 'y';  // modified but never flushed
    guard->MarkDirty();
  }
  pool_.DiscardAllForCrashTest();
  auto guard = pool_.FetchPage(id);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->data()[0], 'x');
}

TEST_F(BufferPoolTest, MovedGuardReleasesOnce) {
  PageId id;
  {
    auto guard = pool_.NewPage();
    id = guard->page_id();
    PageGuard moved = std::move(*guard);
    EXPECT_TRUE(moved.valid());
    EXPECT_FALSE(guard->valid());
  }
  // If pin accounting broke, the page would be unevictable; deleting it
  // verifies pin count is back to zero.
  EXPECT_TRUE(pool_.DeletePage(id).ok());
}

TEST_F(BufferPoolTest, MoveAssignReleasesPreviousPin) {
  auto a = pool_.NewPage();
  auto b = pool_.NewPage();
  ASSERT_TRUE(a.ok() && b.ok());
  PageId a_id = a->page_id();
  PageId b_id = b->page_id();

  *a = std::move(*b);  // must unpin a's original page, then take over b's
  EXPECT_EQ(a->page_id(), b_id);
  EXPECT_TRUE(a->valid());
  EXPECT_FALSE(b->valid());
  // b is moved-from: it must not report the stale page id.
  EXPECT_EQ(b->page_id(), kInvalidPageId);

  // a's original page was unpinned by the assignment.
  EXPECT_TRUE(pool_.DeletePage(a_id).ok());
  a->Release();
  EXPECT_TRUE(pool_.DeletePage(b_id).ok());
}

TEST_F(BufferPoolTest, SelfMoveAssignKeepsGuardValid) {
  auto guard = pool_.NewPage();
  ASSERT_TRUE(guard.ok());
  PageId id = guard->page_id();
  PageGuard& alias = *guard;
  *guard = std::move(alias);  // self-move must be a no-op, not a release
  EXPECT_TRUE(guard->valid());
  EXPECT_EQ(guard->page_id(), id);
  EXPECT_NE(guard->data(), nullptr);
  // Still pinned: DeletePage must refuse.
  EXPECT_EQ(pool_.DeletePage(id).code(), StatusCode::kFailedPrecondition);
  guard->Release();
  EXPECT_TRUE(pool_.DeletePage(id).ok());
}

TEST_F(BufferPoolTest, DoubleReleaseIsIdempotent) {
  auto guard = pool_.NewPage();
  ASSERT_TRUE(guard.ok());
  PageId id = guard->page_id();
  guard->Release();
  EXPECT_FALSE(guard->valid());
  EXPECT_EQ(guard->page_id(), kInvalidPageId);
  guard->Release();  // second release: no-op, must not corrupt pin counts
  // Pin count reached exactly zero: page is deletable, and fetching it anew
  // still works (the frame was not double-unpinned into a negative count).
  {
    auto again = pool_.FetchPage(id);
    ASSERT_TRUE(again.ok());
  }
  EXPECT_TRUE(pool_.DeletePage(id).ok());
}

TEST_F(BufferPoolTest, ReleaseThenDestructorDoesNotDoubleUnpin) {
  PageId shared;
  {
    auto first = pool_.NewPage();
    shared = first->page_id();
    // Two pins on the same page; releasing one explicitly and letting the
    // other die must leave exactly zero pins — not minus one.
    auto second = pool_.FetchPage(shared);
    ASSERT_TRUE(second.ok());
    second->Release();
    second->Release();
  }
  EXPECT_TRUE(pool_.DeletePage(shared).ok());
}

TEST(BufferPoolOptionsTest, BudgetBytesReportsConfiguredValue) {
  DiskManager disk;
  // A budget that is not a whole number of frames: budget_bytes() must
  // report the configured value, while the frame math still rounds down
  // (this is what the Fig. 9 sweep labels — 2.5 MB must not print as
  // 2.49 MB).
  size_t budget = 8 * kPageSize + 123;
  BufferPool pool(&disk, budget);
  EXPECT_EQ(pool.budget_bytes(), budget);
  EXPECT_EQ(pool.capacity_frames(), 8u);
}

TEST(BufferPoolOptionsTest, ShardCountHonoredAndClamped) {
  DiskManager disk;
  BufferPoolOptions options;
  options.budget_bytes = 64 * kPageSize;
  options.shards = 4;
  BufferPool pool(&disk, options);
  EXPECT_EQ(pool.num_shards(), 4u);
  EXPECT_EQ(pool.capacity_frames(), 64u);

  // A tiny pool collapses to fewer shards instead of starving each one.
  BufferPoolOptions tiny;
  tiny.budget_bytes = 8 * kPageSize;
  tiny.shards = 8;
  BufferPool tiny_pool(&disk, tiny);
  EXPECT_EQ(tiny_pool.num_shards(), 1u);
  EXPECT_EQ(tiny_pool.capacity_frames(), 8u);
}

TEST_F(BufferPoolTest, DiscardAllForCrashTestZeroesStats) {
  std::vector<PageId> ids;
  for (int i = 0; i < 12; ++i) {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->MarkDirty();
    ids.push_back(guard->page_id());
  }
  for (PageId id : ids) ASSERT_TRUE(pool_.FetchPage(id).ok());
  BufferPoolStats before = pool_.stats();
  EXPECT_GT(before.hits + before.misses + before.evictions, 0);

  pool_.DiscardAllForCrashTest();
  // A restarted process has cold counters; carrying the pre-crash numbers
  // forward would double-count the crash sweep's per-run I/O reporting.
  BufferPoolStats after = pool_.stats();
  EXPECT_EQ(after.hits, 0);
  EXPECT_EQ(after.misses, 0);
  EXPECT_EQ(after.evictions, 0);
  EXPECT_EQ(after.dirty_writebacks, 0);
  EXPECT_EQ(after.prefetched, 0);
  EXPECT_EQ(after.prefetch_hits, 0);
  EXPECT_EQ(after.coalesced_writebacks, 0);
}

// Regression test for the Reset() write-back race: the old implementation
// released the pool mutex between the inner FlushAll() and re-acquiring it to
// drop frames, so a page dirtied by a concurrent thread in that window was
// dropped without write-back. The pre-writeback hook fires during Reset's
// flush sweep (with all shard latches held); we use it as the rendezvous to
// launch a concurrent writer at exactly the vulnerable moment.
TEST(BufferPoolResetRaceTest, ConcurrentDirtyPageIsNotDroppedUnflushed) {
  DiskManager disk;
  BufferPoolOptions options;
  options.budget_bytes = 16 * kPageSize;
  options.shards = 2;
  BufferPool pool(&disk, options);

  PageId victim;
  {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    victim = guard->page_id();
    guard->data()[0] = 'x';
    guard->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  {
    // A second dirty page so Reset's flush sweep has work and the hook fires.
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->MarkDirty();
  }

  std::atomic<bool> go{false};
  std::atomic<bool> fired{false};
  std::thread writer([&] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    // With the fix this blocks on the shard latch until Reset has dropped
    // every frame, so the update lands strictly after the reset. With the
    // old bug it could slip between flush and drop and be lost.
    auto guard = pool.FetchPage(victim);
    ASSERT_TRUE(guard.ok());
    guard->data()[0] = 'y';
    guard->MarkDirty();
  });
  pool.SetPreWritebackHook([&] {
    if (!fired.exchange(true)) {
      go.store(true, std::memory_order_release);
      // Give the writer a moment to reach the pool while the sweep runs.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  ASSERT_TRUE(pool.Reset().ok());
  writer.join();
  ASSERT_TRUE(fired.load());

  auto guard = pool.FetchPage(victim);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->data()[0], 'y') << "concurrent dirty update was dropped "
                                      "without write-back during Reset";
}

TEST(BufferPoolPrefetchTest, PrefetchPagesChargesOnConsumption) {
  DiskManager disk;
  BufferPoolOptions options;
  options.budget_bytes = 32 * kPageSize;
  options.readahead_pages = 8;
  BufferPool pool(&disk, options);

  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->data()[0] = static_cast<char>('a' + i);
    guard->MarkDirty();
    ids.push_back(guard->page_id());
  }
  ASSERT_TRUE(pool.Reset().ok());
  disk.ResetStats();
  pool.ResetStats();

  // The physical reads happen here, but no simulated I/O is charged yet:
  // the cost model charges at consumption so runs with and without
  // read-ahead produce identical simulated traces.
  EXPECT_EQ(pool.PrefetchPages(ids.data(), ids.size()), ids.size());
  EXPECT_EQ(disk.stats().reads, 0);
  EXPECT_EQ(pool.stats().prefetched, static_cast<int64_t>(ids.size()));

  for (size_t i = 0; i < ids.size(); ++i) {
    auto guard = pool.FetchPage(ids[i]);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data()[0], static_cast<char>('a' + i));
  }
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(disk.stats().reads, static_cast<int64_t>(ids.size()));
  EXPECT_EQ(stats.hits, static_cast<int64_t>(ids.size()));
  EXPECT_EQ(stats.prefetch_hits, static_cast<int64_t>(ids.size()));
  EXPECT_EQ(stats.misses, 0);
}

TEST(BufferPoolPrefetchTest, PrefetchChainFollowsLinksAndNeverWrites) {
  DiskManager disk;
  BufferPoolOptions options;
  options.budget_bytes = 8 * kPageSize;
  options.readahead_pages = 8;
  BufferPool pool(&disk, options);

  // Build a 6-page chain: bytes [4,8) of each page hold the next page id
  // (same layout the B-tree right-sibling link uses).
  std::vector<PageId> chain;
  for (int i = 0; i < 6; ++i) {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    chain.push_back(guard->page_id());
    guard->MarkDirty();
  }
  for (size_t i = 0; i < chain.size(); ++i) {
    auto guard = pool.FetchPage(chain[i]);
    ASSERT_TRUE(guard.ok());
    StoreU32(guard->data() + 4,
             i + 1 < chain.size() ? chain[i + 1] : kInvalidPageId);
    guard->MarkDirty();
  }
  ASSERT_TRUE(pool.Reset().ok());
  int64_t writes_before = disk.stats().writes;

  auto next_of = [](const char* data) -> PageId { return LoadU32(data + 4); };
  size_t covered = pool.PrefetchChain(chain.front(), 6, next_of);
  EXPECT_EQ(covered, chain.size());
  EXPECT_EQ(pool.stats().prefetched, static_cast<int64_t>(chain.size()));
  // The never-write rule: prefetch may evict clean frames but must not
  // trigger a single disk write.
  EXPECT_EQ(disk.stats().writes, writes_before);

  // Now dirty every frame: a further prefetch cannot place anything without
  // evicting a dirty victim, so it must cover zero pages and write nothing.
  std::vector<PageId> extra;
  for (int i = 0; i < 8; ++i) {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    extra.push_back(guard->page_id());
    guard->MarkDirty();
  }
  writes_before = disk.stats().writes;
  EXPECT_EQ(pool.PrefetchChain(chain.front(), 6, next_of), 0u);
  EXPECT_EQ(disk.stats().writes, writes_before);
}

}  // namespace
}  // namespace bulkdel

// Verified-erasure scavenger tests (DatabaseOptions::scrub_deleted_pages):
// after a delete completes, the raw page file must not contain the deleted
// tuples' bytes. Each test plants distinctive 8-byte sentinel values in an
// *unindexed* column (so the only durable copy in pages.db is the heap
// tuple), deletes rows, closes the database, and then greps the raw
// `pages.db` bytes for the doomed sentinels the way a disk scavenger would.
// A control leg with scrubbing off proves the probe actually detects
// residual bytes. WAL files are out of scope: scrubbing is a page-file
// erasure guarantee (see docs/CONSTRAINTS.md).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/database.h"

namespace bulkdel {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::string cleanup = "rm -rf " + dir;
  [[maybe_unused]] int rc = std::system(cleanup.c_str());
  return dir;
}

DatabaseOptions ScrubOptions(const std::string& dir, bool scrub) {
  DatabaseOptions options;
  options.memory_budget_bytes = 256 * 1024;
  options.path = dir;
  options.scrub_deleted_pages = scrub;
  return options;
}

std::string ReadWholeFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string bytes(static_cast<size_t>(size), '\0');
  size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  EXPECT_EQ(got, bytes.size());
  return bytes;
}

/// Occurrences of the native (little-endian) 8-byte encoding of `value`.
size_t CountSentinel(const std::string& bytes, int64_t value) {
  char pattern[sizeof(value)];
  std::memcpy(pattern, &value, sizeof(value));
  size_t count = 0;
  for (size_t pos = 0; pos + sizeof(pattern) <= bytes.size(); ++pos) {
    if (std::memcmp(bytes.data() + pos, pattern, sizeof(pattern)) == 0) {
      ++count;
    }
  }
  return count;
}

/// Sentinels are high-entropy values no other subsystem writes: the id is
/// folded into the low bytes, the top bytes make accidental collision with
/// page ids, counts, or keys effectively impossible.
int64_t Sentinel(int64_t i) { return 0x5EC0FFEE00000000LL + i * 7919 + 13; }

/// T(A=id indexed unique, B=sentinel UNINDEXED). Indexing the sentinel
/// column would copy its bytes into index leaves, which scrubbing does not
/// (and need not) chase — the erasure contract covers heap tuple bytes.
void LoadSentinelTable(Database* db, int64_t n_rows) {
  Schema schema = *Schema::PaperStyle(2, 64);
  ASSERT_TRUE(db->CreateTable("T", schema).ok());
  ASSERT_TRUE(db->CreateIndex("T", "A", {.unique = true}).ok());
  for (int64_t i = 0; i < n_rows; ++i) {
    ASSERT_TRUE(db->InsertRow("T", {i, Sentinel(i)}).ok());
  }
}

TEST(ScrubTest, VerticalKeysDeleteErasesDeadTupleBytes) {
  std::string dir = FreshDir("bd_scrub_keys");
  {
    auto db = *Database::Create(ScrubOptions(dir, /*scrub=*/true));
    LoadSentinelTable(db.get(), 400);
    BulkDeleteSpec spec;
    spec.table = "T";
    spec.key_column = "A";
    for (int64_t i = 0; i < 400; i += 2) spec.keys.push_back(i);
    auto report = db->BulkDelete(spec, Strategy::kVerticalSortMerge);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->rows_deleted, 200u);
    ASSERT_TRUE(db->VerifyIntegrity().ok());
    ASSERT_TRUE(db->Close().ok());
  }
  std::string bytes = ReadWholeFile(dir + "/pages.db");
  for (int64_t i = 0; i < 400; i += 2) {
    EXPECT_EQ(CountSentinel(bytes, Sentinel(i)), 0u)
        << "deleted sentinel " << i << " survives in pages.db";
  }
  // Survivors are still there (the probe is not vacuously passing).
  size_t survivors = 0;
  for (int64_t i = 1; i < 400; i += 2) survivors += CountSentinel(bytes, Sentinel(i));
  EXPECT_GE(survivors, 200u);
}

TEST(ScrubTest, RangeDeleteErasesDroppedExtentPages) {
  // A wide range delete drops fully-covered heap pages whole; those pages
  // are zero-overwritten after End is durable, and boundary pages take the
  // per-slot scrub path. Either way no sentinel byte survives.
  std::string dir = FreshDir("bd_scrub_range");
  {
    auto db = *Database::Create(ScrubOptions(dir, /*scrub=*/true));
    LoadSentinelTable(db.get(), 1000);
    BulkDeleteSpec spec;
    spec.table = "T";
    spec.key_column = "A";
    spec.predicate = DeletePredicate::kRange;
    spec.range_lo = 0;
    spec.range_hi = 899;
    auto report = db->BulkDelete(spec, Strategy::kVerticalSortMerge);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->rows_deleted, 900u);
    ASSERT_TRUE(db->VerifyIntegrity().ok());
    ASSERT_TRUE(db->Close().ok());
  }
  std::string bytes = ReadWholeFile(dir + "/pages.db");
  for (int64_t i = 0; i < 900; ++i) {
    ASSERT_EQ(CountSentinel(bytes, Sentinel(i)), 0u)
        << "deleted sentinel " << i << " survives in pages.db";
  }
  size_t survivors = 0;
  for (int64_t i = 900; i < 1000; ++i) survivors += CountSentinel(bytes, Sentinel(i));
  EXPECT_GE(survivors, 100u);

  // The scrubbed database is still a valid database: reopen and verify.
  auto reopened = Database::Open(ScrubOptions(dir, /*scrub=*/true));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->GetTable("T")->table->tuple_count(), 100u);
  ASSERT_TRUE((*reopened)->VerifyIntegrity().ok());
}

TEST(ScrubTest, RowDeleteErasesSlotBytes) {
  std::string dir = FreshDir("bd_scrub_row");
  {
    auto db = *Database::Create(ScrubOptions(dir, /*scrub=*/true));
    LoadSentinelTable(db.get(), 100);
    for (int64_t i = 10; i < 20; ++i) {
      Rid rid = db->GetIndex("T", "A")->tree->Search(i)->at(0);
      ASSERT_TRUE(db->DeleteRow("T", rid).ok());
    }
    ASSERT_TRUE(db->VerifyIntegrity().ok());
    ASSERT_TRUE(db->Close().ok());
  }
  std::string bytes = ReadWholeFile(dir + "/pages.db");
  for (int64_t i = 10; i < 20; ++i) {
    EXPECT_EQ(CountSentinel(bytes, Sentinel(i)), 0u)
        << "deleted sentinel " << i << " survives in pages.db";
  }
  EXPECT_GE(CountSentinel(bytes, Sentinel(50)), 1u);
}

TEST(ScrubTest, ControlWithoutScrubLeavesBytesBehind) {
  // Scrubbing off (the default): the same delete leaves dead tuple bytes in
  // the page file. This leg proves the scavenger probe detects leakage —
  // without it, the erasure assertions above could pass vacuously.
  std::string dir = FreshDir("bd_scrub_control");
  {
    auto db = *Database::Create(ScrubOptions(dir, /*scrub=*/false));
    LoadSentinelTable(db.get(), 400);
    BulkDeleteSpec spec;
    spec.table = "T";
    spec.key_column = "A";
    for (int64_t i = 0; i < 400; i += 2) spec.keys.push_back(i);
    auto report = db->BulkDelete(spec, Strategy::kVerticalSortMerge);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(db->Close().ok());
  }
  std::string bytes = ReadWholeFile(dir + "/pages.db");
  size_t leaked = 0;
  for (int64_t i = 0; i < 400; i += 2) leaked += CountSentinel(bytes, Sentinel(i));
  EXPECT_GT(leaked, 0u) << "probe failed to detect residual tuple bytes";
}

TEST(ScrubTest, CascadeDeleteErasesChildBytesToo) {
  // The "forget user X" shape: scrubbing covers cascade legs because each
  // child leg runs the same vertical executor under the same option.
  std::string dir = FreshDir("bd_scrub_cascade");
  {
    auto db = *Database::Create(ScrubOptions(dir, /*scrub=*/true));
    Schema users = *Schema::PaperStyle(2, 64);
    Schema orders = *Schema::PaperStyle(3, 64);
    ASSERT_TRUE(db->CreateTable("USERS", users).ok());
    ASSERT_TRUE(db->CreateIndex("USERS", "A", {.unique = true}).ok());
    ASSERT_TRUE(db->CreateTable("ORDERS", orders).ok());
    ASSERT_TRUE(db->CreateIndex("ORDERS", "A", {.unique = true}).ok());
    ASSERT_TRUE(db->CreateIndex("ORDERS", "B").ok());
    int64_t oid = 0;
    for (int64_t u = 0; u < 100; ++u) {
      ASSERT_TRUE(db->InsertRow("USERS", {u, Sentinel(u)}).ok());
      for (int k = 0; k < 2; ++k) {
        // Column C (unindexed) carries the order's sentinel.
        ASSERT_TRUE(db->InsertRow("ORDERS", {oid, u, Sentinel(1000 + oid)}).ok());
        ++oid;
      }
    }
    ASSERT_TRUE(
        db->AddForeignKey("ORDERS", "B", "USERS", "A", FkAction::kCascade)
            .ok());
    BulkDeleteSpec spec;
    spec.table = "USERS";
    spec.key_column = "A";
    spec.keys = {7};
    auto report = db->BulkDelete(spec, Strategy::kVerticalSortMerge);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->cascaded_rows, 2u);
    ASSERT_TRUE(db->Close().ok());
  }
  std::string bytes = ReadWholeFile(dir + "/pages.db");
  EXPECT_EQ(CountSentinel(bytes, Sentinel(7)), 0u);
  EXPECT_EQ(CountSentinel(bytes, Sentinel(1000 + 14)), 0u);  // order 14 = user 7
  EXPECT_EQ(CountSentinel(bytes, Sentinel(1000 + 15)), 0u);
  EXPECT_GE(CountSentinel(bytes, Sentinel(8)), 1u);
}

}  // namespace
}  // namespace bulkdel

// Tests for the phase-DAG execution core: the PhaseScheduler itself, the
// parallel vertical executor on the Fig. 8 workload shape (3 indices, 15 %
// deletes), per-phase I/O attribution identity across thread counts, and the
// structured phase trace with its JSON round-trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/exec_context.h"
#include "core/phase_scheduler.h"
#include "workload/generator.h"

namespace bulkdel {
namespace {

// ---------------------------------------------------------------------------
// PhaseScheduler unit tests
// ---------------------------------------------------------------------------

TEST(PhaseSchedulerTest, SerialRunsInVectorOrder) {
  ExecContext ctx(nullptr);
  std::vector<int> order;
  std::vector<PhaseTask> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back(PhaseTask{"t" + std::to_string(i),
                              i > 0 ? std::vector<int>{i - 1}
                                    : std::vector<int>{},
                              [&order, i] {
                                order.push_back(i);
                                return Status::OK();
                              }});
  }
  ASSERT_TRUE(PhaseScheduler::Run(std::move(tasks), 1, &ctx).ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(PhaseSchedulerTest, ParallelRespectsDependencies) {
  ExecContext ctx(nullptr);
  std::atomic<bool> a_done{false}, b_done{false}, c_done{false};
  std::vector<PhaseTask> tasks;
  tasks.push_back(PhaseTask{"a", {}, [&] {
                              a_done = true;
                              return Status::OK();
                            }});
  // b and c fan out from a; d joins them.
  tasks.push_back(PhaseTask{"b", {0}, [&] {
                              EXPECT_TRUE(a_done.load());
                              b_done = true;
                              return Status::OK();
                            }});
  tasks.push_back(PhaseTask{"c", {0}, [&] {
                              EXPECT_TRUE(a_done.load());
                              c_done = true;
                              return Status::OK();
                            }});
  tasks.push_back(PhaseTask{"d", {1, 2}, [&] {
                              EXPECT_TRUE(b_done.load() && c_done.load());
                              return Status::OK();
                            }});
  ASSERT_TRUE(PhaseScheduler::Run(std::move(tasks), 4, &ctx).ok());
}

TEST(PhaseSchedulerTest, IndependentTasksOverlapOnWorkers) {
  ExecContext ctx(nullptr);
  // Two dependency-free tasks that each wait for the other to have started:
  // only possible if the pool really runs them concurrently.
  std::atomic<int> started{0};
  auto body = [&] {
    ++started;
    for (int spins = 0; started.load() < 2 && spins < 10000; ++spins) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return started.load() == 2
               ? Status::OK()
               : Status::Internal("peer task never started");
  };
  std::vector<PhaseTask> tasks;
  tasks.push_back(PhaseTask{"x", {}, body});
  tasks.push_back(PhaseTask{"y", {}, body});
  EXPECT_TRUE(PhaseScheduler::Run(std::move(tasks), 2, &ctx).ok());
}

TEST(PhaseSchedulerTest, ErrorCancelsUnstartedTasks) {
  for (int threads : {1, 4}) {
    ExecContext ctx(nullptr);
    std::atomic<bool> late_ran{false};
    std::vector<PhaseTask> tasks;
    tasks.push_back(PhaseTask{"boom", {}, [] {
                                return Status::Internal("injected");
                              }});
    tasks.push_back(PhaseTask{"late", {0}, [&] {
                                late_ran = true;
                                return Status::OK();
                              }});
    Status s = PhaseScheduler::Run(std::move(tasks), threads, &ctx);
    EXPECT_FALSE(s.ok()) << "threads=" << threads;
    EXPECT_NE(s.ToString().find("injected"), std::string::npos);
    EXPECT_FALSE(late_ran.load()) << "threads=" << threads;
    EXPECT_TRUE(ctx.cancelled());
  }
}

TEST(PhaseSchedulerTest, ForwardDependencyRejected) {
  ExecContext ctx(nullptr);
  std::vector<PhaseTask> tasks;
  tasks.push_back(PhaseTask{"a", {1}, [] { return Status::OK(); }});
  tasks.push_back(PhaseTask{"b", {}, [] { return Status::OK(); }});
  EXPECT_FALSE(PhaseScheduler::Run(std::move(tasks), 2, &ctx).ok());
}

// ---------------------------------------------------------------------------
// Parallel vertical execution on the Fig. 8 workload shape
// ---------------------------------------------------------------------------

struct Fig8Run {
  BulkDeleteReport report;
  std::multiset<int64_t> surviving_a;
};

Fig8Run RunFig8(int exec_threads, size_t n_tuples = 20000,
                std::function<void(const std::string&)> phase_begin_hook = {},
                bool enable_recovery_log = false) {
  DatabaseOptions options;
  // Generous budget: the working set stays resident, so every phase performs
  // the same page accesses regardless of scheduling — the precondition for
  // exact I/O identity across thread counts.
  options.memory_budget_bytes = 16ull << 20;
  options.exec_threads = exec_threads;
  options.phase_begin_hook = std::move(phase_begin_hook);
  options.enable_recovery_log = enable_recovery_log;
  auto db = *Database::Create(options);

  WorkloadSpec spec;
  spec.n_tuples = n_tuples;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A", "B", "C"});

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.15, 42);  // Fig. 8: 15 % deletes

  auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
  EXPECT_TRUE(report.ok()) << report.status().ToString();

  Fig8Run run;
  if (report.ok()) run.report = *report;
  TableDef* table = db->GetTable("R");
  EXPECT_TRUE(table->table
                  ->Scan([&](const Rid&, const char* tuple) {
                    run.surviving_a.insert(table->schema->GetInt(tuple, 0));
                    return Status::OK();
                  })
                  .ok());
  EXPECT_TRUE(db->VerifyIntegrity().ok());
  return run;
}

const PhaseStats* FindPhase(const BulkDeleteReport& report,
                            const std::string& name) {
  for (const PhaseStats& p : report.phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

TEST(ParallelVerticalTest, SecondaryPhasesOverlapAtFourThreads) {
  // A single-CPU host may never preempt one short secondary phase to run the
  // other, so wall-clock overlap cannot be left to scheduling luck. The
  // phase-begin hook rendezvouses the two non-unique secondary phases
  // instead: each blocks at begin (after its begin timestamp) until the
  // other has also begun. The barrier can only release promptly if the
  // scheduler truly dispatched both concurrently; a serial schedule times
  // out the first phase and the trace then shows no overlap, failing below.
  std::atomic<int> secondaries_begun{0};
  auto rendezvous = [&](const std::string& phase) {
    if (phase != "index:R.B" && phase != "index:R.C") return;
    ++secondaries_begun;
    for (int spins = 0; secondaries_begun.load() < 2 && spins < 20000;
         ++spins) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  };
  Fig8Run run = RunFig8(4, 20000, rendezvous);
  EXPECT_EQ(secondaries_begun.load(), 2);
  const PhaseStats* b = FindPhase(run.report, "index:R.B");
  const PhaseStats* c = FindPhase(run.report, "index:R.C");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(b->OverlapsInTime(*c))
      << "B [" << b->begin_micros << "," << b->end_micros << "] vs C ["
      << c->begin_micros << "," << c->end_micros << "]";
  EXPECT_NE(b->thread_id, c->thread_id)
      << "overlapping phases cannot share a thread";
}

TEST(ParallelVerticalTest, SecondaryPortionWallTimeShrinksOnMultiCoreHosts) {
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "a single-CPU host cannot shrink wall time by threading";
  }
  // The secondary-index portion spans from the first secondary phase's begin
  // to the last one's end. Serially that is the sum of both passes; with a
  // pool and >= 2 CPUs it approaches the longer pass alone. Retry with a
  // lenient threshold: this asserts scaling, not a precise speedup.
  auto secondary_span = [](const BulkDeleteReport& report) {
    const PhaseStats* b = FindPhase(report, "index:R.B");
    const PhaseStats* c = FindPhase(report, "index:R.C");
    EXPECT_NE(b, nullptr);
    EXPECT_NE(c, nullptr);
    if (b == nullptr || c == nullptr) return int64_t{0};
    return std::max(b->end_micros, c->end_micros) -
           std::min(b->begin_micros, c->begin_micros);
  };
  for (int attempt = 0; attempt < 5; ++attempt) {
    int64_t serial = secondary_span(RunFig8(1, 40000).report);
    int64_t parallel = secondary_span(RunFig8(4, 40000).report);
    if (parallel > 0 && parallel < serial * 9 / 10) return;
  }
  FAIL() << "secondary-index span never dropped below 90% of serial";
}

TEST(ParallelVerticalTest, SerialSchedulePhasesDoNotOverlap) {
  Fig8Run run = RunFig8(1);
  for (size_t i = 0; i < run.report.phases.size(); ++i) {
    EXPECT_EQ(run.report.phases[i].thread_id, 0);
    for (size_t j = i + 1; j < run.report.phases.size(); ++j) {
      EXPECT_FALSE(run.report.phases[i].OverlapsInTime(run.report.phases[j]))
          << run.report.phases[i].name << " vs " << run.report.phases[j].name;
    }
  }
}

TEST(ParallelVerticalTest, SimulatedIoIdenticalAcrossThreadCounts) {
  Fig8Run serial = RunFig8(1);
  Fig8Run parallel = RunFig8(4);

  EXPECT_EQ(serial.report.rows_deleted, parallel.report.rows_deleted);
  EXPECT_EQ(serial.report.index_entries_deleted,
            parallel.report.index_entries_deleted);
  EXPECT_EQ(serial.surviving_a, parallel.surviving_a);

  // The headline acceptance criterion: the simulated I/O totals are
  // bit-identical, because attribution classifies each phase's accesses
  // against that phase's own disk head.
  EXPECT_EQ(serial.report.io.simulated_micros,
            parallel.report.io.simulated_micros);
  EXPECT_EQ(serial.report.io.reads, parallel.report.io.reads);
  EXPECT_EQ(serial.report.io.writes, parallel.report.io.writes);
  EXPECT_EQ(serial.report.io.sequential_accesses,
            parallel.report.io.sequential_accesses);
  EXPECT_EQ(serial.report.io.random_accesses,
            parallel.report.io.random_accesses);

  // And per-phase I/O matches too, phase by phase.
  for (const PhaseStats& p : serial.report.phases) {
    const PhaseStats* q = FindPhase(parallel.report, p.name);
    ASSERT_NE(q, nullptr) << p.name;
    EXPECT_EQ(p.io.simulated_micros, q->io.simulated_micros) << p.name;
    EXPECT_EQ(p.items, q->items) << p.name;
  }
}

TEST(ParallelVerticalTest, RecoveryLoggingWorksWithDeferredCheckpoints) {
  // With the recovery log on, parallel secondary phases defer their durable
  // checkpoints to the exclusive finalize node (a mid-run pool flush would
  // race sibling phases mutating pinned pages). The logged parallel run must
  // still complete and leave the same post-state as the logged serial run.
  Fig8Run serial = RunFig8(1, 20000, {}, /*enable_recovery_log=*/true);
  Fig8Run parallel = RunFig8(4, 20000, {}, /*enable_recovery_log=*/true);
  EXPECT_EQ(serial.report.rows_deleted, parallel.report.rows_deleted);
  EXPECT_EQ(serial.surviving_a, parallel.surviving_a);
  EXPECT_FALSE(parallel.report.phases.empty());
}

TEST(ParallelVerticalTest, TraceFieldsAreStructurallySound) {
  Fig8Run run = RunFig8(4);
  ASSERT_FALSE(run.report.phases.empty());
  for (const PhaseStats& p : run.report.phases) {
    EXPECT_GE(p.begin_micros, 0) << p.name;
    EXPECT_GE(p.end_micros, p.begin_micros) << p.name;
    EXPECT_EQ(p.wall_micros, p.end_micros - p.begin_micros) << p.name;
    EXPECT_GE(p.thread_id, 0) << p.name;
  }
  // The DAG shape is recorded via parent links: secondaries hang off the
  // table pass, the table pass off the key-index probe.
  const PhaseStats* table = FindPhase(run.report, "table");
  const PhaseStats* b = FindPhase(run.report, "index:R.B");
  ASSERT_NE(table, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(table->parent, "index:R.A");
  EXPECT_EQ(b->parent, "table");
}

// ---------------------------------------------------------------------------
// JSON round-trip of the structured trace
// ---------------------------------------------------------------------------

TEST(ReportJsonTest, RoundTripsAllFields) {
  Fig8Run run = RunFig8(4, /*n_tuples=*/4000);
  const BulkDeleteReport& r = run.report;

  std::string json = r.ToJson();
  auto parsed = BulkDeleteReport::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;

  EXPECT_EQ(parsed->strategy_used, r.strategy_used);
  EXPECT_EQ(parsed->rows_deleted, r.rows_deleted);
  EXPECT_EQ(parsed->index_entries_deleted, r.index_entries_deleted);
  EXPECT_EQ(parsed->cascaded_rows, r.cascaded_rows);
  EXPECT_EQ(parsed->wall_micros, r.wall_micros);
  EXPECT_EQ(parsed->plan_explain, r.plan_explain);
  EXPECT_EQ(parsed->io.reads, r.io.reads);
  EXPECT_EQ(parsed->io.writes, r.io.writes);
  EXPECT_EQ(parsed->io.sequential_accesses, r.io.sequential_accesses);
  EXPECT_EQ(parsed->io.random_accesses, r.io.random_accesses);
  EXPECT_EQ(parsed->io.simulated_micros, r.io.simulated_micros);

  EXPECT_EQ(parsed->pool.hits, r.pool.hits);
  EXPECT_EQ(parsed->pool.misses, r.pool.misses);
  EXPECT_EQ(parsed->pool.evictions, r.pool.evictions);
  EXPECT_EQ(parsed->pool.dirty_writebacks, r.pool.dirty_writebacks);
  EXPECT_EQ(parsed->pool.prefetched, r.pool.prefetched);
  EXPECT_EQ(parsed->pool.prefetch_hits, r.pool.prefetch_hits);
  EXPECT_EQ(parsed->pool.coalesced_writebacks, r.pool.coalesced_writebacks);
  EXPECT_GT(r.pool.hits + r.pool.misses, 0) << "pool stats never collected";
  ASSERT_EQ(parsed->pool_shards.size(), r.pool_shards.size());
  for (size_t i = 0; i < r.pool_shards.size(); ++i) {
    EXPECT_EQ(parsed->pool_shards[i].hits, r.pool_shards[i].hits);
    EXPECT_EQ(parsed->pool_shards[i].misses, r.pool_shards[i].misses);
    EXPECT_EQ(parsed->pool_shards[i].evictions, r.pool_shards[i].evictions);
  }

  ASSERT_EQ(parsed->phases.size(), r.phases.size());
  for (size_t i = 0; i < r.phases.size(); ++i) {
    const PhaseStats& a = r.phases[i];
    const PhaseStats& b = parsed->phases[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.items, b.items);
    EXPECT_EQ(a.wall_micros, b.wall_micros);
    EXPECT_EQ(a.begin_micros, b.begin_micros);
    EXPECT_EQ(a.end_micros, b.end_micros);
    EXPECT_EQ(a.thread_id, b.thread_id);
    EXPECT_EQ(a.io.reads, b.io.reads);
    EXPECT_EQ(a.io.writes, b.io.writes);
    EXPECT_EQ(a.io.sequential_accesses, b.io.sequential_accesses);
    EXPECT_EQ(a.io.random_accesses, b.io.random_accesses);
    EXPECT_EQ(a.io.simulated_micros, b.io.simulated_micros);
  }

  // A second serialize must be byte-identical (stable emitter).
  EXPECT_EQ(parsed->ToJson(), json);
}

TEST(ReportJsonTest, EscapesSpecialCharacters) {
  BulkDeleteReport r;
  r.plan_explain = "line1\nline2\t\"quoted\" \\slash\x01";
  PhaseStats p;
  p.name = "weird \"phase\"";
  r.phases.push_back(p);
  std::string json = r.ToJson();
  auto parsed = BulkDeleteReport::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  EXPECT_EQ(parsed->plan_explain, r.plan_explain);
  ASSERT_EQ(parsed->phases.size(), 1u);
  EXPECT_EQ(parsed->phases[0].name, p.name);
}

TEST(ReportJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(BulkDeleteReport::FromJson("").ok());
  EXPECT_FALSE(BulkDeleteReport::FromJson("{").ok());
  EXPECT_FALSE(BulkDeleteReport::FromJson("[1,2]").ok());
  EXPECT_FALSE(BulkDeleteReport::FromJson("{\"phases\": 3}").ok());
}

}  // namespace
}  // namespace bulkdel

// ThreadSanitizer stress for the observability subsystem: hammers the
// lock-free per-thread trace rings from many recording threads while a
// concurrent exporter repeatedly serializes the published prefix, and runs a
// traced parallel bulk delete under the same concurrent-export pressure.
// Run under TSan in CI (label: tsan); the assertions are deliberately loose —
// the point is the interleavings, not the values.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/database.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "util/json.h"
#include "workload/generator.h"

namespace bulkdel {
namespace {

TEST(TraceStressTest, ConcurrentRecordAndExport) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.SetEnabled(false);
  recorder.Reset();
  // Bound the rings so repeated exports stay cheap; the writers spill past
  // capacity on purpose (the drop path is part of what TSan should see).
  recorder.SetThreadCapacity(1);
  recorder.SetEnabled(true);

  std::atomic<int> done{0};
  constexpr int kWriters = 4;
  constexpr int kEventsPerWriter = 10000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&recorder, &done, t] {
      for (int i = 0; i < kEventsPerWriter; ++i) {
        int64_t now = MonotonicNanos();
        recorder.RecordComplete(obs::TraceCategory::kPool, "stress.span",
                                now - 10, now, "i", i, "stress.parent");
        recorder.RecordInstant(obs::TraceCategory::kDisk, "stress.tick", "t",
                               t);
      }
      done.fetch_add(1);
    });
  }
  // Export races the writers: published slots are immutable, the cursor is
  // acquire-loaded, so every serialization must parse.
  int rounds = 0;
  do {
    auto parsed = json::Parse(recorder.ToChromeTraceJson());
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    ++rounds;
  } while (done.load() < kWriters && rounds < 200);
  for (auto& w : writers) w.join();
  recorder.SetEnabled(false);
  EXPECT_EQ(recorder.EventCount() + recorder.DroppedCount(),
            static_cast<uint64_t>(kWriters * kEventsPerWriter * 2));
  recorder.Reset();
  recorder.SetThreadCapacity(obs::TraceRecorder::kDefaultCapacity);
}

TEST(TraceStressTest, ConcurrentHistogramObserveAndSnapshot) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.histogram("stress.h");
  obs::Counter* c = registry.counter("stress.c");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        h->Observe(i & 1023);
        c->Add(1);
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    obs::MetricsSnapshot snap = registry.Snapshot();
    const obs::HistogramSnapshot* hs = snap.FindHistogram("stress.h");
    ASSERT_NE(hs, nullptr);
    EXPECT_GE(hs->count, 0);
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  // Writers quiesced: the final snapshot is exact.
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.FindHistogram("stress.h")->count, snap.CounterOr("stress.c"));
}

TEST(TraceStressTest, TracedParallelDeleteUnderConcurrentExport) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.SetEnabled(false);
  recorder.Reset();

  DatabaseOptions options;
  options.memory_budget_bytes = 4ull << 20;
  options.exec_threads = 4;
  options.trace_spans = true;
  auto db = *Database::Create(options);
  WorkloadSpec spec;
  spec.n_tuples = 20000;
  spec.n_int_columns = 4;
  spec.tuple_size = 64;
  auto workload = *SetUpPaperDatabase(db.get(), spec, {"A", "B", "C"});

  std::atomic<bool> stop{false};
  std::thread exporter([&recorder, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto parsed = json::Parse(recorder.ToChromeTraceJson());
      EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    }
  });

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.15, 42);
  auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
  stop.store(true);
  exporter.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(db->VerifyIntegrity().ok());
  EXPECT_GT(recorder.EventCount(), 0u);
  recorder.SetEnabled(false);
  recorder.Reset();
}

}  // namespace
}  // namespace bulkdel

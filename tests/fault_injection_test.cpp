// Deterministic fault injection (docs/FAULTS.md): the injector's
// arm/fire/trip lifecycle, partial-write modes on the disk and log paths,
// and the crash-recovery sweep — every enumerable site, every vertical
// strategy, serial and parallel execution.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fault/crash_sweep.h"
#include "fault/fault_injector.h"
#include "plan/plan.h"
#include "recovery/log_manager.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace bulkdel {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector lifecycle
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, FiresAtExactOccurrenceThenStaysTripped) {
  FaultInjector injector;
  injector.Arm(fault_sites::kDiskRead, 3);
  EXPECT_TRUE(injector.Check(fault_sites::kDiskRead).ok());
  EXPECT_TRUE(injector.Check(fault_sites::kDiskRead).ok());
  Status s = injector.Check(fault_sites::kDiskRead);
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  EXPECT_TRUE(injector.tripped());
  // A dead process performs no operation at any site.
  EXPECT_TRUE(injector.Check(fault_sites::kDiskWrite).IsAborted());
  EXPECT_TRUE(injector.Check(fault_sites::kLogSync).IsAborted());
  EXPECT_TRUE(injector.Check(fault_sites::kDiskRead).IsAborted());
}

TEST(FaultInjectorTest, OtherSitesDoNotAdvanceTheArmedCount) {
  FaultInjector injector;
  injector.Arm(fault_sites::kPoolFlush, 2);
  EXPECT_TRUE(injector.Check(fault_sites::kPoolEvict).ok());
  EXPECT_TRUE(injector.Check(fault_sites::kPoolEvict).ok());
  EXPECT_TRUE(injector.Check(fault_sites::kPoolFlush).ok());
  EXPECT_TRUE(injector.Check(fault_sites::kPoolFlush).IsAborted());
  EXPECT_EQ(injector.HitCount(fault_sites::kPoolEvict), 2u);
  EXPECT_EQ(injector.HitCount(fault_sites::kPoolFlush), 2u);
}

TEST(FaultInjectorTest, DisarmRevivesButKeepsCounts) {
  FaultInjector injector;
  injector.Arm(fault_sites::kDiskRead, 1);
  EXPECT_TRUE(injector.Check(fault_sites::kDiskRead).IsAborted());
  EXPECT_TRUE(injector.tripped());
  injector.Disarm();
  EXPECT_FALSE(injector.tripped());
  EXPECT_TRUE(injector.Check(fault_sites::kDiskRead).ok());
  EXPECT_EQ(injector.HitCount(fault_sites::kDiskRead), 2u);
  injector.ResetCounts();
  EXPECT_EQ(injector.HitCount(fault_sites::kDiskRead), 0u);
}

TEST(FaultInjectorTest, TripDescriptionNamesTheExactCase) {
  FaultInjector injector;
  injector.Arm(fault_sites::kExecCheckpoint, 2);
  EXPECT_TRUE(injector.Check(fault_sites::kExecCheckpoint, "index:R.B").ok());
  Status s = injector.Check(fault_sites::kExecCheckpoint, "index:R.C");
  EXPECT_TRUE(s.IsAborted());
  std::string desc = injector.trip_description();
  EXPECT_NE(desc.find("exec.checkpoint"), std::string::npos) << desc;
  EXPECT_NE(desc.find("occurrence=2"), std::string::npos) << desc;
  EXPECT_NE(desc.find("index:R.C"), std::string::npos) << desc;
  // The error of every later operation carries the original crash identity.
  EXPECT_NE(injector.TrippedError().ToString().find("occurrence=2"),
            std::string::npos);
}

TEST(FaultInjectorTest, NonWriteSiteTreatsTornModeAsCrash) {
  FaultInjector injector;
  injector.Arm(fault_sites::kPoolFlush, 1, FaultMode::kTornWrite);
  // Check (no Hit out-param) cannot apply a partial effect: fail outright.
  EXPECT_TRUE(injector.Check(fault_sites::kPoolFlush).IsAborted());
  EXPECT_TRUE(injector.tripped());
}

TEST(FaultInjectorTest, CheckWriteReportsTheHitForPartialModes) {
  FaultInjector injector(99);
  injector.Arm(fault_sites::kDiskWrite, 1, FaultMode::kShortWrite);
  FaultInjector::Hit hit;
  Status s = injector.CheckWrite(fault_sites::kDiskWrite, &hit);
  // The caller gets OK + fire so it can apply the partial write first.
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(hit.fire);
  EXPECT_EQ(hit.mode, FaultMode::kShortWrite);
  EXPECT_TRUE(injector.tripped());
  EXPECT_TRUE(injector.CheckWrite(fault_sites::kDiskWrite, &hit).IsAborted());
}

TEST(FaultInjectorTest, KnownSitesAreStableAndQueryable) {
  const auto& sites = FaultInjector::KnownSites();
  EXPECT_EQ(sites.size(), 17u);
  for (const FaultSiteInfo& site : sites) {
    EXPECT_TRUE(FaultInjector::IsKnownSite(site.name)) << site.name;
  }
  EXPECT_FALSE(FaultInjector::IsKnownSite("no.such.site"));
  EXPECT_TRUE(FaultInjector::IsKnownSite(fault_sites::kExecFinalizePreEnd));
}

TEST(FaultSiteCatalog, VerticalPlanExplainListsTheSites) {
  BulkDeletePlan plan;
  plan.strategy = Strategy::kVerticalHash;
  std::string text = plan.Explain();
  EXPECT_NE(text.find("fault sites:"), std::string::npos) << text;
  EXPECT_NE(text.find("exec.finalize"), std::string::npos) << text;
  EXPECT_NE(text.find("disk.write*"), std::string::npos) << text;
  BulkDeletePlan traditional;
  traditional.strategy = Strategy::kTraditional;
  EXPECT_EQ(traditional.Explain().find("fault sites:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// DiskManager: torn and short page writes, idempotent free
// ---------------------------------------------------------------------------

TEST(DiskManagerFaultTest, TornWriteLeavesHalfOldHalfNew) {
  FaultInjector injector(5);
  DiskManager disk;
  disk.SetFaultInjector(&injector);
  PageId page = *disk.AllocatePage();
  std::string old_bytes(kPageSize, 'A');
  ASSERT_TRUE(disk.WritePage(page, old_bytes.data()).ok());

  injector.ResetCounts();  // the baseline write above was hit #1
  injector.Arm(fault_sites::kDiskWrite, 1, FaultMode::kTornWrite);
  std::string new_bytes(kPageSize, 'B');
  EXPECT_TRUE(disk.WritePage(page, new_bytes.data()).IsAborted());
  EXPECT_TRUE(injector.tripped());
  // The dead process cannot even read its disk back.
  std::string out(kPageSize, 'x');
  EXPECT_TRUE(disk.ReadPage(page, out.data()).IsAborted());

  injector.Disarm();
  ASSERT_TRUE(disk.ReadPage(page, out.data()).ok());
  for (size_t i = 0; i < kPageSize; ++i) {
    EXPECT_EQ(out[i], i < kPageSize / 2 ? 'B' : 'A') << "byte " << i;
  }
}

TEST(DiskManagerFaultTest, ShortWriteLeavesAPrefixOfNewBytes) {
  FaultInjector injector(17);
  DiskManager disk;
  disk.SetFaultInjector(&injector);
  PageId page = *disk.AllocatePage();
  std::string old_bytes(kPageSize, 'A');
  ASSERT_TRUE(disk.WritePage(page, old_bytes.data()).ok());

  injector.ResetCounts();  // the baseline write above was hit #1
  injector.Arm(fault_sites::kDiskWrite, 1, FaultMode::kShortWrite);
  std::string new_bytes(kPageSize, 'B');
  EXPECT_TRUE(disk.WritePage(page, new_bytes.data()).IsAborted());
  injector.Disarm();

  std::string out(kPageSize, 'x');
  ASSERT_TRUE(disk.ReadPage(page, out.data()).ok());
  // Some prefix (possibly empty) is new, the rest is strictly old.
  size_t boundary = 0;
  while (boundary < kPageSize && out[boundary] == 'B') ++boundary;
  for (size_t i = boundary; i < kPageSize; ++i) {
    EXPECT_EQ(out[i], 'A') << "byte " << i;
  }
}

TEST(DiskManagerFaultTest, TrippedInjectorFreezesAllocationToo) {
  FaultInjector injector;
  DiskManager disk;
  disk.SetFaultInjector(&injector);
  PageId page = *disk.AllocatePage();
  injector.Arm(fault_sites::kDiskRead, 1);
  std::string out(kPageSize, 'x');
  EXPECT_TRUE(disk.ReadPage(page, out.data()).IsAborted());
  EXPECT_TRUE(disk.AllocatePage().status().IsAborted());
  EXPECT_TRUE(disk.FreePage(page).IsAborted());
}

TEST(BufferPoolFaultTest, CrashDiscardZeroesPoolStats) {
  // A simulated crash drops the pool's frames AND its counters: recovery
  // runs in a restarted process with cold caches, and carrying pre-crash
  // hit/miss numbers forward would double-count the crash sweep's per-run
  // I/O reporting.
  FaultInjector injector;
  DiskManager disk;
  disk.SetFaultInjector(&injector);
  BufferPool pool(&disk, 8 * kPageSize);
  pool.SetFaultInjector(&injector);
  std::vector<PageId> ids;
  for (int i = 0; i < 12; ++i) {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->MarkDirty();
    ids.push_back(guard->page_id());
  }
  for (PageId id : ids) ASSERT_TRUE(pool.FetchPage(id).ok());
  BufferPoolStats before = pool.stats();
  EXPECT_GT(before.hits + before.misses, 0);
  EXPECT_GT(before.evictions, 0);

  pool.DiscardAllForCrashTest();
  BufferPoolStats after = pool.stats();
  EXPECT_EQ(after.hits, 0);
  EXPECT_EQ(after.misses, 0);
  EXPECT_EQ(after.evictions, 0);
  EXPECT_EQ(after.dirty_writebacks, 0);
  EXPECT_EQ(after.prefetched, 0);
  EXPECT_EQ(after.prefetch_hits, 0);
  EXPECT_EQ(after.coalesced_writebacks, 0);
  // And the frames really are gone: the next fetch misses.
  ASSERT_TRUE(pool.FetchPage(ids[0]).ok());
  EXPECT_EQ(pool.stats().misses, 1);
}

TEST(DiskManagerTest, FreePageIsIdempotent) {
  DiskManager disk;
  PageId first = *disk.AllocatePage();
  PageId second = *disk.AllocatePage();
  ASSERT_TRUE(disk.FreePage(first).ok());
  // A recovery re-run may re-free a page it already freed before the crash;
  // the duplicate must not enter the free list a second time.
  ASSERT_TRUE(disk.FreePage(first).ok());
  EXPECT_EQ(disk.NumFreePages(), 1u);
  PageId reused = *disk.AllocatePage();
  EXPECT_EQ(reused, first);
  PageId fresh = *disk.AllocatePage();
  EXPECT_NE(fresh, first);
  EXPECT_NE(fresh, second);
}

// ---------------------------------------------------------------------------
// LogManager: torn sync tails
// ---------------------------------------------------------------------------

TEST(LogManagerFaultTest, TornSyncKeepsAPrefixAndDetectsTheTail) {
  FaultInjector injector(7);
  LogManager log;
  log.SetFaultInjector(&injector);
  for (int i = 0; i < 8; ++i) {
    LogRecord r;
    r.type = LogRecordType::kEntryDeleted;
    r.bd_id = 1;
    r.key = i;
    log.Append(r);
  }
  injector.Arm(fault_sites::kLogSync, 1, FaultMode::kTornWrite);
  log.Sync();
  EXPECT_TRUE(injector.tripped());

  // The durable log holds only records whose frames passed the CRC check: a
  // strict prefix of the batch, intact and in append order. The torn frame's
  // bytes sit past the clean prefix as checksummed-out garbage, never as a
  // flagged record.
  auto records = log.DurableSnapshot();
  ASSERT_LT(records.size(), 8u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].key, static_cast<int64_t>(i));
  }

  // A dead process syncs nothing more.
  LogRecord late;
  late.type = LogRecordType::kEnd;
  late.bd_id = 1;
  log.Append(late);
  log.Sync();
  EXPECT_EQ(log.durable_size(), records.size());

  // Restart: DropTornTail truncates the garbage bytes after the last clean
  // frame; the decoded prefix is untouched.
  size_t dropped_bytes = log.DropTornTail();
  EXPECT_GT(dropped_bytes, 0u);
  EXPECT_EQ(log.durable_size(), records.size());
  EXPECT_EQ(log.DropTornTail(), 0u);  // idempotent
}

TEST(LogManagerFaultTest, CrashModeSyncLosesTheWholeBatch) {
  FaultInjector injector;
  LogManager log;
  log.SetFaultInjector(&injector);
  LogRecord r;
  r.type = LogRecordType::kBegin;
  r.bd_id = 1;
  log.Append(r);
  log.Sync();
  EXPECT_EQ(log.durable_size(), 1u);

  r.type = LogRecordType::kCommit;
  log.Append(r);
  // Counts are cumulative: the first Sync above already hit the site once.
  injector.ResetCounts();
  injector.Arm(fault_sites::kLogSync, 1);
  log.Sync();
  EXPECT_TRUE(injector.tripped());
  EXPECT_EQ(log.durable_size(), 1u);  // the commit batch evaporated
}

TEST(LogManagerTest, DropTornTailOnCleanLogIsANoop) {
  LogManager log;
  LogRecord r;
  r.type = LogRecordType::kBegin;
  r.bd_id = 1;
  log.Append(r);
  log.Sync();
  EXPECT_EQ(log.DropTornTail(), 0u);
  EXPECT_EQ(log.durable_size(), 1u);
}

// ---------------------------------------------------------------------------
// The crash-recovery sweep: every site x strategy x thread count
// ---------------------------------------------------------------------------

/// Occurrence budget per site. CI's fault-sweep job sets
/// BULKDEL_SWEEP_OCCURRENCES=0 for the exhaustive sweep; the local default
/// keeps the tier-1 run fast.
uint64_t SweepBudgetFromEnv() {
  const char* env = std::getenv("BULKDEL_SWEEP_OCCURRENCES");
  if (env == nullptr || *env == '\0') return 4;
  return std::strtoull(env, nullptr, 10);
}

class CrashSweepTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(CrashSweepTest, EverySiteRecoversToTheReferenceState) {
  SweepConfig config;
  config.strategies = {GetParam()};
  config.thread_counts = {1, 4};
  config.occurrences_per_site = SweepBudgetFromEnv();
  SweepStats stats;
  Status s = RunCrashSweep(config, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(stats.cases_run, 0u);
  std::string reports;
  for (const std::string& r : stats.failure_reports) reports += r + "\n";
  EXPECT_EQ(stats.failures, 0u) << reports;
}

/// The multi-table "forget user X" statement: USERS -> ORDERS -> EVENTS with
/// cascading FKs. A crash at any site must recover to an exact leg prefix
/// (S0 untouched .. S3 fully forgotten) across all three tables — never a
/// partially-applied leg or cross-table skew. Swept on both backends so the
/// file WAL's statement boundaries get the same scrutiny as the sim image.
TEST_P(CrashSweepTest, CascadeRecoversToALegPrefixOnBothBackends) {
  for (const char* backend : {"sim", "file"}) {
    SweepConfig config;
    config.cascade = true;
    config.backend = backend;
    config.scratch_dir = ::testing::TempDir() + "/bd_cascade_sweep";
    config.n_tuples = 700;  // 100 users -> 200 orders -> 400 events
    config.strategies = {GetParam()};
    config.thread_counts = {1};
    config.occurrences_per_site = SweepBudgetFromEnv();
    SweepStats stats;
    Status s = RunCrashSweep(config, &stats);
    ASSERT_TRUE(s.ok()) << backend << ": " << s.ToString();
    EXPECT_GT(stats.cases_run, 0u) << backend;
    std::string reports;
    for (const std::string& r : stats.failure_reports) reports += r + "\n";
    EXPECT_EQ(stats.failures, 0u) << backend << "\n" << reports;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Vertical, CrashSweepTest,
    ::testing::Values(Strategy::kVerticalSortMerge, Strategy::kVerticalHash,
                      Strategy::kVerticalPartitionedHash),
    [](const ::testing::TestParamInfo<Strategy>& info) {
      std::string name = StrategyName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// §3.1 concurrent-updater crash coverage (docs/CONCURRENCY.md). CI's
// fault-sweep job runs the full exhaustive matrix through the standalone
// driver (--concurrency={sidefile,direct}); these tier-1 legs pin the two
// historically buggy windows deterministically.

class ConcurrencySweepTest
    : public ::testing::TestWithParam<ConcurrencyProtocol> {};

/// Regression: crashing at the BringOnline flip — after the side-file's
/// quiesced tail drain, or after direct propagation's marker-clearing pass —
/// must neither lose acknowledged updater DML nor leave stale
/// kEntryUndeletable markers behind (the recovered digest includes entry
/// flags, so a surviving marker is a hard mismatch).
TEST_P(ConcurrencySweepTest, OnlineFlipCrashKeepsAcknowledgedUpdaterWork) {
  SweepConfig config;
  config.concurrency = GetParam();
  config.strategies = {Strategy::kVerticalSortMerge};
  config.thread_counts = {1};
  config.only_site = "txn.online_flip";
  config.occurrences_per_site = 0;  // every flip of every off-line index
  SweepStats stats;
  Status s = RunCrashSweep(config, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(stats.cases_run, 0u);
  std::string reports;
  for (const std::string& r : stats.failure_reports) reports += r + "\n";
  EXPECT_EQ(stats.failures, 0u) << reports;
}

/// Sampled all-site sweep with updaters riding along, both exec_threads
/// values — the protocol machinery (WAL'd DML, spill pages, catch-up
/// batches) must recover at every crash point, not just the flip.
TEST_P(ConcurrencySweepTest, EverySiteRecoversWithUpdaters) {
  SweepConfig config;
  config.concurrency = GetParam();
  config.strategies = {Strategy::kVerticalSortMerge};
  config.thread_counts = {1, 4};
  config.occurrences_per_site = SweepBudgetFromEnv();
  SweepStats stats;
  Status s = RunCrashSweep(config, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(stats.cases_run, 0u);
  std::string reports;
  for (const std::string& r : stats.failure_reports) reports += r + "\n";
  EXPECT_EQ(stats.failures, 0u) << reports;
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ConcurrencySweepTest,
    ::testing::Values(ConcurrencyProtocol::kSideFile,
                      ConcurrencyProtocol::kDirectPropagation),
    [](const ::testing::TestParamInfo<ConcurrencyProtocol>& info) {
      return info.param == ConcurrencyProtocol::kSideFile ? "sidefile"
                                                          : "direct";
    });

}  // namespace
}  // namespace bulkdel

// Property tests for the WAL frame codec (recovery/wal_codec.h): every
// record type round-trips bit-exactly through encode/decode, and any
// corruption — a flipped bit anywhere in a frame, or a truncated tail — is
// caught by the length/CRC check and truncates the scan at the last clean
// frame instead of yielding a garbled record.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "recovery/wal_codec.h"
#include "util/crc32.h"

namespace bulkdel {
namespace {

bool RecordsEqual(const LogRecord& a, const LogRecord& b) {
  return a.type == b.type && a.bd_id == b.bd_id && a.label == b.label &&
         a.aux == b.aux && a.pages == b.pages && a.count == b.count &&
         a.key == b.key && a.rid.Pack() == b.rid.Pack() &&
         a.values == b.values;
}

/// A record exercising every field, varied by `salt` so consecutive records
/// differ. Cycles through all record types.
LogRecord MakeRecord(uint64_t salt) {
  LogRecord r;
  r.type = static_cast<LogRecordType>(salt % kNumLogRecordTypes);
  r.bd_id = salt * 77 + 1;
  r.label = "label-" + std::to_string(salt);
  r.aux = std::string(salt % 13, static_cast<char>('a' + salt % 26));
  for (uint64_t p = 0; p < salt % 5; ++p) {
    r.pages.push_back(static_cast<PageId>(salt + p));
  }
  r.count = salt << 7;
  r.key = static_cast<int64_t>(salt) * -31;
  r.rid = Rid{static_cast<PageId>(salt % 1000), static_cast<uint16_t>(salt)};
  for (uint64_t v = 0; v < salt % 4; ++v) {
    r.values.push_back(static_cast<int64_t>(salt * v) - 5);
  }
  return r;
}

TEST(WalCodecTest, EveryRecordTypeRoundTrips) {
  for (uint8_t t = 0; t < kNumLogRecordTypes; ++t) {
    LogRecord r = MakeRecord(17 + t * 13);
    r.type = static_cast<LogRecordType>(t);
    std::string image;
    EncodeLogRecord(r, &image);
    EXPECT_EQ(image.size(), EncodedLogRecordSize(r));

    WalScanResult scan = DecodeLogRecords(image);
    EXPECT_FALSE(scan.torn_tail);
    EXPECT_EQ(scan.clean_bytes, image.size());
    ASSERT_EQ(scan.records.size(), 1u) << "type " << static_cast<int>(t);
    EXPECT_TRUE(RecordsEqual(r, scan.records[0]))
        << "type " << static_cast<int>(t);
  }
}

TEST(WalCodecTest, EdgeValuesRoundTrip) {
  LogRecord r;
  r.type = LogRecordType::kEntryDeleted;
  r.bd_id = ~0ull;
  r.label = "";  // empty strings
  r.aux = std::string("\0\xff\x7f binary \n", 10);
  r.count = ~0ull;
  r.key = INT64_MIN;
  r.values.assign(10000, INT64_MAX);  // huge values vector
  std::string image;
  EncodeLogRecord(r, &image);
  WalScanResult scan = DecodeLogRecords(image);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(RecordsEqual(r, scan.records[0]));

  LogRecord empty;  // all defaults
  image.clear();
  EncodeLogRecord(empty, &image);
  scan = DecodeLogRecords(image);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(RecordsEqual(empty, scan.records[0]));
}

TEST(WalCodecTest, MultiRecordImageDecodesInOrder) {
  std::string image;
  std::vector<LogRecord> originals;
  for (uint64_t i = 0; i < 64; ++i) {
    originals.push_back(MakeRecord(i));
    EncodeLogRecord(originals.back(), &image);
  }
  WalScanResult scan = DecodeLogRecords(image);
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), originals.size());
  for (size_t i = 0; i < originals.size(); ++i) {
    EXPECT_TRUE(RecordsEqual(originals[i], scan.records[i])) << "record " << i;
  }
}

TEST(WalCodecTest, EveryPossibleTruncationStopsCleanly) {
  // Any strict byte prefix of a frame must fail to decode: the length header
  // is cut short, claims bytes past the end, or the CRC does not verify.
  std::string image;
  std::vector<size_t> boundaries;  // cumulative clean sizes
  for (uint64_t i = 0; i < 8; ++i) {
    EncodeLogRecord(MakeRecord(i * 5 + 1), &image);
    boundaries.push_back(image.size());
  }
  for (size_t cut = 0; cut < image.size(); ++cut) {
    std::string prefix = image.substr(0, cut);
    WalScanResult scan = DecodeLogRecords(prefix);
    // The scan keeps exactly the frames that fit entirely within the cut.
    size_t want_records = 0;
    size_t want_clean = 0;
    for (size_t b = 0; b < boundaries.size(); ++b) {
      if (boundaries[b] <= cut) {
        want_records = b + 1;
        want_clean = boundaries[b];
      }
    }
    EXPECT_EQ(scan.records.size(), want_records) << "cut at " << cut;
    EXPECT_EQ(scan.clean_bytes, want_clean) << "cut at " << cut;
    EXPECT_EQ(scan.torn_tail, cut != want_clean) << "cut at " << cut;
  }
}

TEST(WalCodecTest, EveryBitFlipIsDetected) {
  // Flip one bit at a time across a two-frame image. Whatever byte it lands
  // in — length, CRC, or payload — the affected frame must fail to verify
  // and the scan must stop at the last clean frame before it.
  std::string image;
  LogRecord first = MakeRecord(3);
  LogRecord second = MakeRecord(9);
  EncodeLogRecord(first, &image);
  const size_t first_bytes = image.size();
  EncodeLogRecord(second, &image);

  for (size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = image;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      WalScanResult scan = DecodeLogRecords(corrupt);
      if (byte < first_bytes) {
        // First frame corrupted: nothing decodes...
        // ...unless the flip made frame 1's length header claim a larger
        // frame whose CRC coincidentally verifies — impossible for CRC32
        // over a changed length field, so the scan must stop at 0.
        EXPECT_EQ(scan.records.size(), 0u)
            << "byte " << byte << " bit " << bit;
        EXPECT_EQ(scan.clean_bytes, 0u) << "byte " << byte << " bit " << bit;
      } else {
        // Second frame corrupted: the first decodes, then the scan stops.
        ASSERT_EQ(scan.records.size(), 1u)
            << "byte " << byte << " bit " << bit;
        EXPECT_TRUE(RecordsEqual(first, scan.records[0]));
        EXPECT_EQ(scan.clean_bytes, first_bytes);
      }
      EXPECT_TRUE(scan.torn_tail) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(WalCodecTest, RandomGarbageNeverDecodes) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(1 + rng() % 200, '\0');
    for (char& c : garbage) c = static_cast<char>(rng());
    WalScanResult scan = DecodeLogRecords(garbage);
    // A 1-in-2^32 CRC collision on random bytes is possible in principle;
    // with a fixed seed this is deterministic and does not happen.
    EXPECT_TRUE(scan.records.empty()) << "trial " << trial;
    EXPECT_TRUE(scan.torn_tail);
  }
}

TEST(WalCodecTest, TrailingGarbageInsideVerifiedFrameIsRejected) {
  // A frame whose payload decodes but leaves unconsumed bytes is corrupt
  // even though its CRC matches (it was encoded that way): the decoder must
  // not silently ignore payload bytes.
  LogRecord r = MakeRecord(4);
  std::string clean;
  EncodeLogRecord(r, &clean);
  // Rebuild the frame with two extra payload bytes and a matching CRC.
  std::string payload = clean.substr(kWalFrameHeaderBytes);
  payload += "xx";
  std::string forged;
  EncodeLogRecord(r, &forged);  // throwaway, for sizing only
  forged.clear();
  auto store_u32 = [&forged](uint32_t v) {
    forged.push_back(static_cast<char>(v));
    forged.push_back(static_cast<char>(v >> 8));
    forged.push_back(static_cast<char>(v >> 16));
    forged.push_back(static_cast<char>(v >> 24));
  };
  store_u32(static_cast<uint32_t>(payload.size()));
  store_u32(Crc32(payload.data(), payload.size()));
  forged += payload;
  WalScanResult scan = DecodeLogRecords(forged);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_TRUE(scan.torn_tail);
}

}  // namespace
}  // namespace bulkdel

// Figure 1 of the paper: bulk deletes on a commercial RDBMS — 500 MB table,
// three indices, varying the number of deleted tuples (1/5/10/15 %).
// Series: `traditional` (record-at-a-time, unsorted delete list, the way the
// commercial product executed the statement) and `drop & create` (drop the
// secondary indices, delete, re-create).
//
// Expected shape: traditional climbs steeply (≈ 3 h at 15 % at paper scale);
// drop & create grows much more slowly and wins beyond ~5 %.

#include <cstdio>

#include "bench/bench_common.h"

namespace bulkdel {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  size_t memory = config.ScaledMemoryBytes(5.0);
  std::printf("Figure 1: %llu tuples x %u B, 3 indices, memory %zu KiB\n",
              static_cast<unsigned long long>(config.n_tuples),
              config.tuple_size, memory / 1024);

  ResultTable table("Figure 1: commercial-style baseline, 3 indices",
                    "deleted (%)", {"traditional", "drop & create"});
  const double fractions[] = {0.01, 0.05, 0.10, 0.15};
  for (double fraction : fractions) {
    char x[16];
    std::snprintf(x, sizeof(x), "%.0f%%", fraction * 100);
    {
      auto bench = BuildBenchDb(config, {"A", "B", "C"}, memory);
      if (!bench.ok()) {
        std::fprintf(stderr, "setup: %s\n", bench.status().ToString().c_str());
        return 1;
      }
      auto report = RunDelete(&*bench, fraction, Strategy::kTraditional);
      if (!report.ok()) {
        std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
        return 1;
      }
      table.AddCell(x, "traditional", report->simulated_minutes());
    }
    {
      auto bench = BuildBenchDb(config, {"A", "B", "C"}, memory);
      if (!bench.ok()) return 1;
      auto report = RunDelete(&*bench, fraction, Strategy::kDropCreate);
      if (!report.ok()) {
        std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
        return 1;
      }
      table.AddCell(x, "drop & create", report->simulated_minutes());
    }
  }
  table.Print();
  std::printf(
      "\npaper (Fig. 1, 1M x 512B): traditional 1%%≈13min rising to "
      "15%%≈2h49m;\ndrop & create ≈ flat 35-45 min, overtaking traditional "
      "at ~5%%.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

// Ablation for §3.1: side-file vs direct propagation. Measures updater
// throughput achieved while a bulk delete processes off-line indices, and
// the bulk delete's wall time, for both protocols (plus the exclusive
// baseline). Wall-clock based (threads), so run on an otherwise idle
// machine for stable numbers.
//
// Extra flags (on top of the common bench flags):
//   --updaters=N       concurrent updater threads per protocol (default 1)
//   --json-out=FILE    append one machine-readable JSON line (consumed by
//                      tools/bench_smoke_summary.py --concurrency=FILE)
//
// With no updaters running, the protocol machinery must be free: the run
// also executes every protocol with zero updaters and checks the simulated
// bulk-delete I/O is bit-identical to the exclusive baseline.

#include <sys/stat.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace bulkdel {
namespace bench {
namespace {

struct ProtocolDef {
  const char* name;  ///< human label
  const char* key;   ///< JSON key
  ConcurrencyProtocol protocol;
};

constexpr ProtocolDef kProtocols[] = {
    {"exclusive (none)", "none", ConcurrencyProtocol::kNone},
    {"side-file", "sidefile", ConcurrencyProtocol::kSideFile},
    {"direct propagation", "direct", ConcurrencyProtocol::kDirectPropagation},
};

struct ProtocolResult {
  double wall_ms = 0;
  uint64_t updater_ops = 0;
  double updater_ops_per_sec = 0;
  uint64_t sim_micros = 0;
  uint64_t io_reads = 0;
  uint64_t io_writes = 0;
  /// WAL activity across the whole run (zero unless the recovery log is on):
  /// Sync() calls made vs. physical flush batches performed. Group commit's
  /// whole point is fsyncs << syncs under concurrent committers.
  uint64_t wal_syncs = 0;
  uint64_t wal_fsyncs = 0;
};

/// Durability knobs for the group-commit ablation; defaults reproduce the
/// classic protocol comparison (sim backend, no recovery log).
struct DurabilityOpts {
  std::string path;           ///< non-empty = file backend rooted here
  bool recovery_log = false;  ///< WAL on: every updater ack syncs it
  bool group_commit = true;
};

/// One bulk delete under `protocol` with `n_updaters` insert threads
/// hammering the table for its whole duration.
Result<ProtocolResult> RunProtocol(const BenchConfig& config,
                                   ConcurrencyProtocol protocol,
                                   int n_updaters,
                                   const DurabilityOpts& durability = {}) {
  DatabaseOptions options;
  options.memory_budget_bytes = config.ScaledMemoryBytes(5.0);
  options.concurrency = protocol;
  options.bulk_chunk_entries = 128;
  options.path = durability.path;
  options.enable_recovery_log = durability.recovery_log;
  options.wal_group_commit = durability.group_commit;
  BULKDEL_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                           Database::Create(options));
  WorkloadSpec spec;
  spec.n_tuples = config.n_tuples;
  spec.n_int_columns = 3;
  spec.tuple_size = config.tuple_size;
  spec.seed = config.seed;
  BULKDEL_ASSIGN_OR_RETURN(Workload workload,
                           SetUpPaperDatabase(db.get(), spec, {"A", "B", "C"}));

  BulkDeleteSpec bd;
  bd.table = "R";
  bd.key_column = "A";
  bd.keys = workload.MakeDeleteKeys(0.3, 11);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  std::vector<std::thread> updaters;
  if (protocol != ConcurrencyProtocol::kNone) {
    for (int u = 0; u < n_updaters; ++u) {
      updaters.emplace_back([&, u] {
        // Disjoint key ranges per thread; inserts only, so tuple counts stay
        // comparable across protocols.
        int64_t next = 30000000000LL + u * 1000000000LL;
        while (!stop.load()) {
          if (db->InsertRow("R", {next, next + 1, next + 2}).ok()) {
            ++ops;
          }
          ++next;
        }
      });
    }
  }
  Stopwatch watch;
  auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
  double wall_ms = static_cast<double>(watch.ElapsedMicros()) / 1000.0;
  stop = true;
  for (std::thread& t : updaters) t.join();
  BULKDEL_RETURN_IF_ERROR(report.status());
  BULKDEL_RETURN_IF_ERROR(db->VerifyIntegrity());

  ProtocolResult result;
  result.wall_ms = wall_ms;
  result.updater_ops = ops.load();
  result.updater_ops_per_sec =
      wall_ms > 0 ? static_cast<double>(result.updater_ops) / wall_ms * 1000.0
                  : 0;
  result.sim_micros = report->io.simulated_micros;
  result.io_reads = report->io.reads;
  result.io_writes = report->io.writes;
  result.wal_syncs = static_cast<uint64_t>(
      db->metrics().counter(obs::metric_names::kWalSyncs)->value());
  result.wal_fsyncs = static_cast<uint64_t>(
      db->metrics().counter(obs::metric_names::kWalFsyncs)->value());
  return result;
}

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  int n_updaters = 1;
  std::string json_out;
  std::string gc_dir = config.db_dir + "/ablation_gc";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--updaters=", 11) == 0) {
      n_updaters = std::atoi(argv[i] + 11);
      if (n_updaters < 1) n_updaters = 1;
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    }
  }
  // Keep this one modest: it is wall-clock bound.
  if (config.n_tuples > 20000) config.n_tuples = 20000;
  std::printf(
      "Ablation: concurrency protocols (wall-clock, %llu tuples, "
      "%d updater thread%s)\n",
      static_cast<unsigned long long>(config.n_tuples), n_updaters,
      n_updaters == 1 ? "" : "s");

  // With no updaters, every protocol must cost nothing: identical simulated
  // bulk-delete I/O (the §3.1 machinery only acts when DML actually
  // arrives while an index is off-line).
  uint64_t baseline_sim = 0, baseline_reads = 0, baseline_writes = 0;
  for (const ProtocolDef& p : kProtocols) {
    auto quiet = RunProtocol(config, p.protocol, 0);
    if (!quiet.ok()) {
      std::fprintf(stderr, "%s (quiet): %s\n", p.name,
                   quiet.status().ToString().c_str());
      return 1;
    }
    if (p.protocol == ConcurrencyProtocol::kNone) {
      baseline_sim = quiet->sim_micros;
      baseline_reads = quiet->io_reads;
      baseline_writes = quiet->io_writes;
    } else if (quiet->sim_micros != baseline_sim ||
               quiet->io_reads != baseline_reads ||
               quiet->io_writes != baseline_writes) {
      std::fprintf(stderr,
                   "I/O identity violated: %s with no updaters simulated "
                   "%llu us (%llu r / %llu w) vs baseline %llu us "
                   "(%llu r / %llu w)\n",
                   p.name,
                   static_cast<unsigned long long>(quiet->sim_micros),
                   static_cast<unsigned long long>(quiet->io_reads),
                   static_cast<unsigned long long>(quiet->io_writes),
                   static_cast<unsigned long long>(baseline_sim),
                   static_cast<unsigned long long>(baseline_reads),
                   static_cast<unsigned long long>(baseline_writes));
      return 1;
    }
  }
  std::printf("quiet-run I/O identity: all protocols simulate %llu us\n",
              static_cast<unsigned long long>(baseline_sim));

  std::printf("%-22s %16s %14s %16s\n", "protocol", "delete wall(ms)",
              "updater ops", "updater ops/s");
  std::string json = "{\"bench\": \"ablation_concurrency\", \"tuples\": " +
                     std::to_string(config.n_tuples) +
                     ", \"updaters\": " + std::to_string(n_updaters) +
                     ", \"protocols\": {";
  bool first = true;
  for (const ProtocolDef& p : kProtocols) {
    auto result = RunProtocol(config, p.protocol, n_updaters);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", p.name,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-22s %16.1f %14llu %16.0f\n", p.name, result->wall_ms,
                static_cast<unsigned long long>(result->updater_ops),
                result->updater_ops_per_sec);
    char entry[256];
    std::snprintf(entry, sizeof(entry),
                  "%s\"%s\": {\"delete_wall_ms\": %.1f, \"updater_ops\": "
                  "%llu, \"updater_ops_per_sec\": %.0f, \"sim_micros\": %llu}",
                  first ? "" : ", ", p.key, result->wall_ms,
                  static_cast<unsigned long long>(result->updater_ops),
                  result->updater_ops_per_sec,
                  static_cast<unsigned long long>(result->sim_micros));
    json += entry;
    first = false;
  }
  json += "}";

  // WAL group-commit ablation: the same side-file run, file-backed with the
  // recovery log on, so every acknowledged updater op pays a WAL sync before
  // returning OK. With group commit, concurrent committers coalesce onto one
  // leader fsync per batch — physical fsyncs land well below acknowledged
  // ops. Without it, every Sync() does its own flush + fsync.
  int gc_updaters = n_updaters < 2 ? 2 : n_updaters;
  ::mkdir(config.db_dir.c_str(), 0755);
  ::mkdir(gc_dir.c_str(), 0755);
  std::printf(
      "\nWAL group-commit ablation (file-backed under %s, side-file "
      "protocol, %d updaters)\n",
      gc_dir.c_str(), gc_updaters);
  std::printf("%-14s %16s %12s %12s %12s\n", "group commit", "delete wall(ms)",
              "acked ops", "wal syncs", "wal fsyncs");
  json += ", \"wal_group_commit\": {";
  uint64_t fsyncs_on = 0, ops_on = 0;
  for (bool group_commit : {true, false}) {
    DurabilityOpts durability;
    durability.path = gc_dir + (group_commit ? "/gc_on" : "/gc_off");
    durability.recovery_log = true;
    durability.group_commit = group_commit;
    auto result = RunProtocol(config, ConcurrencyProtocol::kSideFile,
                              gc_updaters, durability);
    if (!result.ok()) {
      std::fprintf(stderr, "group-commit %s: %s\n",
                   group_commit ? "on" : "off",
                   result.status().ToString().c_str());
      return 1;
    }
    if (group_commit) {
      fsyncs_on = result->wal_fsyncs;
      ops_on = result->updater_ops;
    }
    std::printf("%-14s %16.1f %12llu %12llu %12llu\n",
                group_commit ? "on" : "off", result->wall_ms,
                static_cast<unsigned long long>(result->updater_ops),
                static_cast<unsigned long long>(result->wal_syncs),
                static_cast<unsigned long long>(result->wal_fsyncs));
    char entry[256];
    std::snprintf(entry, sizeof(entry),
                  "%s\"%s\": {\"delete_wall_ms\": %.1f, \"updater_ops\": "
                  "%llu, \"wal_syncs\": %llu, \"wal_fsyncs\": %llu}",
                  group_commit ? "" : ", ", group_commit ? "on" : "off",
                  result->wall_ms,
                  static_cast<unsigned long long>(result->updater_ops),
                  static_cast<unsigned long long>(result->wal_syncs),
                  static_cast<unsigned long long>(result->wal_fsyncs));
    json += entry;
  }
  json += "}";
  if (ops_on > 0 && fsyncs_on >= ops_on) {
    std::fprintf(stderr,
                 "group commit failed to coalesce: %llu fsyncs for %llu "
                 "acknowledged ops\n",
                 static_cast<unsigned long long>(fsyncs_on),
                 static_cast<unsigned long long>(ops_on));
    return 1;
  }

  json += "}";
  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }
  std::printf(
      "\nexpectation: both on-line protocols sustain updater traffic during "
      "the\nbulk delete (the exclusive baseline allows none); direct "
      "propagation\nadmits updates into the off-line index at latch "
      "granularity, the\nside-file defers them and replays at the end.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

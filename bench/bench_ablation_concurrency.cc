// Ablation for §3.1: side-file vs direct propagation. Measures updater
// throughput achieved while a bulk delete processes off-line indices, and
// the bulk delete's wall time, for both protocols (plus the exclusive
// baseline). Wall-clock based (threads), so run on an otherwise idle
// machine for stable numbers.

#include <atomic>
#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "util/stopwatch.h"

namespace bulkdel {
namespace bench {
namespace {

struct ProtocolDef {
  const char* name;
  ConcurrencyProtocol protocol;
};

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  // Keep this one modest: it is wall-clock bound.
  if (config.n_tuples > 20000) config.n_tuples = 20000;
  std::printf("Ablation: concurrency protocols (wall-clock, %llu tuples)\n",
              static_cast<unsigned long long>(config.n_tuples));

  const ProtocolDef protocols[] = {
      {"exclusive (none)", ConcurrencyProtocol::kNone},
      {"side-file", ConcurrencyProtocol::kSideFile},
      {"direct propagation", ConcurrencyProtocol::kDirectPropagation},
  };
  std::printf("%-22s %16s %20s\n", "protocol", "delete wall(ms)",
              "updater ops during");
  for (const ProtocolDef& p : protocols) {
    DatabaseOptions options;
    options.memory_budget_bytes = config.ScaledMemoryBytes(5.0);
    options.concurrency = p.protocol;
    options.bulk_chunk_entries = 128;
    auto db = *Database::Create(options);
    WorkloadSpec spec;
    spec.n_tuples = config.n_tuples;
    spec.n_int_columns = 3;
    spec.tuple_size = config.tuple_size;
    spec.seed = config.seed;
    auto workload = SetUpPaperDatabase(db.get(), spec, {"A", "B", "C"});
    if (!workload.ok()) return 1;

    BulkDeleteSpec bd;
    bd.table = "R";
    bd.key_column = "A";
    bd.keys = workload->MakeDeleteKeys(0.3, 11);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> ops{0};
    std::thread updater;
    if (p.protocol != ConcurrencyProtocol::kNone) {
      updater = std::thread([&] {
        int64_t next = 30000000000LL;
        while (!stop.load()) {
          if (db->InsertRow("R", {next, next + 1, next + 2}).ok()) {
            ++ops;
          }
          ++next;
        }
      });
    }
    Stopwatch watch;
    auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
    double wall_ms = static_cast<double>(watch.ElapsedMicros()) / 1000.0;
    stop = true;
    if (updater.joinable()) updater.join();
    if (!report.ok()) {
      std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
      return 1;
    }
    Status integrity = db->VerifyIntegrity();
    std::printf("%-22s %16.1f %20llu %s\n", p.name, wall_ms,
                static_cast<unsigned long long>(ops.load()),
                integrity.ok() ? "" : integrity.ToString().c_str());
  }
  std::printf(
      "\nexpectation: both on-line protocols sustain updater traffic during "
      "the\nbulk delete (the exclusive baseline allows none); direct "
      "propagation\nadmits updates into the off-line index at latch "
      "granularity, the\nside-file defers them and replays at the end.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

// Future-work experiment (paper §5): bulk deletes from a grid file. The
// vertical adaptation here is *cell-partitioning*: group the delete list by
// grid bucket via the directory and touch each affected bucket chain once;
// the traditional path pays one directory + bucket probe per deleted entry.

#include <cstdio>
#include <tuple>

#include "bench/bench_common.h"
#include "gridfile/grid_file.h"
#include "util/random.h"

namespace bulkdel {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  uint64_t n = config.n_tuples;
  std::printf("Future work: bulk deletes from a grid file (%llu points)\n",
              static_cast<unsigned long long>(n));

  ResultTable table("Grid-file deletes (simulated minutes)", "deleted (%)",
                    {"traditional", "bulk (cell-partitioned)"});
  for (double fraction : {0.05, 0.10, 0.15, 0.20}) {
    char x[16];
    std::snprintf(x, sizeof(x), "%.0f%%", fraction * 100);
    for (int bulk = 0; bulk <= 1; ++bulk) {
      DiskManager disk;
      BufferPool pool(&disk, config.ScaledMemoryBytes(5.0));
      auto grid = *GridFile::Create(&pool);
      Random rng(config.seed);
      std::vector<std::tuple<int64_t, int64_t, Rid>> entries;
      entries.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        int64_t px = rng.UniformInt(0, GridFile::kDomain - 1);
        int64_t py = rng.UniformInt(0, GridFile::kDomain - 1);
        Rid rid(static_cast<PageId>(i / 8 + 1), static_cast<uint16_t>(i % 8));
        entries.emplace_back(px, py, rid);
        Status s = grid.Insert(px, py, rid);
        if (!s.ok()) {
          std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
          return 1;
        }
      }
      uint64_t n_del =
          static_cast<uint64_t>(fraction * static_cast<double>(n));
      for (uint64_t i = 0; i < n_del; ++i) {
        std::swap(entries[i], entries[i + rng.Uniform(entries.size() - i)]);
      }
      disk.ResetStats();
      Status s;
      if (bulk) {
        std::vector<std::tuple<int64_t, int64_t, Rid>> doomed(
            entries.begin(), entries.begin() + static_cast<long>(n_del));
        GridBulkDeleteStats stats;
        s = grid.BulkDelete(doomed, &stats);
      } else {
        for (uint64_t i = 0; i < n_del && s.ok(); ++i) {
          auto& [px, py, rid] = entries[i];
          s = grid.Delete(px, py, rid);
        }
      }
      if (!s.ok()) {
        std::fprintf(stderr, "run: %s\n", s.ToString().c_str());
        return 1;
      }
      if (!pool.FlushAll().ok()) return 1;
      IoStats io = disk.stats();
      table.AddCell(x, bulk ? "bulk (cell-partitioned)" : "traditional",
                    static_cast<double>(io.simulated_micros) / 60e6);
    }
  }
  table.Print();
  std::printf(
      "\nexpectation: the bulk path is bounded by the bucket count while the\n"
      "traditional path grows linearly with the delete-list size — the "
      "vertical\nprinciple applied to the third index family the paper "
      "names.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

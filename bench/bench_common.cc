#include "bench/bench_common.h"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/trace_recorder.h"

namespace bulkdel {
namespace bench {

BenchConfig BenchConfig::FromArgs(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--tuples=", 9) == 0) {
      config.n_tuples = std::strtoull(arg + 9, nullptr, 10);
    } else if (std::strncmp(arg, "--tuple-size=", 13) == 0) {
      config.tuple_size =
          static_cast<uint32_t>(std::strtoul(arg + 13, nullptr, 10));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      config.exec_threads =
          static_cast<int>(std::strtol(arg + 10, nullptr, 10));
      if (config.exec_threads < 1) config.exec_threads = 1;
    } else if (std::strncmp(arg, "--pool-shards=", 14) == 0) {
      config.pool_shards = std::strtoull(arg + 14, nullptr, 10);
    } else if (std::strncmp(arg, "--readahead=", 12) == 0) {
      config.readahead_pages = std::strtoull(arg + 12, nullptr, 10);
    } else if (std::strncmp(arg, "--backend=", 10) == 0) {
      config.backend = arg + 10;
      if (config.backend != "sim" && config.backend != "file") {
        std::fprintf(stderr, "bad --backend '%s' (sim|file)\n",
                     config.backend.c_str());
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--db-dir=", 9) == 0) {
      config.db_dir = arg + 9;
    } else if (std::strncmp(arg, "--wal-group-commit=", 19) == 0) {
      config.wal_group_commit = std::atoi(arg + 19) != 0;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      config.trace_out = arg + 12;
    } else if (std::strncmp(arg, "--perfetto-out=", 15) == 0) {
      config.perfetto_out = arg + 15;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "flags: --tuples=N --tuple-size=BYTES --seed=N --threads=N "
          "--pool-shards=N --readahead=PAGES --backend=sim|file "
          "--db-dir=PATH --wal-group-commit=0|1 --trace-out=FILE "
          "--perfetto-out=FILE\n"
          "paper scale: --tuples=1000000 --tuple-size=512\n");
      std::exit(0);
    }
  }
  return config;
}

Result<BenchDb> BuildBenchDb(const BenchConfig& config,
                             const std::vector<std::string>& columns,
                             size_t memory_bytes, bool clustered_on_a,
                             IndexOptions a_options) {
  DatabaseOptions options;
  options.memory_budget_bytes = memory_bytes;
  options.exec_threads = config.exec_threads;
  options.pool_shards = config.pool_shards;
  options.readahead_pages = config.readahead_pages;
  options.trace_spans = !config.perfetto_out.empty();
  options.wal_group_commit = config.wal_group_commit;
  if (config.backend == "file") {
    // Benches build many databases (one per cell); each gets its own
    // numbered subdirectory so lifetimes never overlap on disk.
    static std::atomic<int> next_db{0};
    ::mkdir(config.db_dir.c_str(), 0755);  // EEXIST is fine
    options.path =
        config.db_dir + "/db" + std::to_string(next_db.fetch_add(1));
  }
  BenchDb bench;
  BULKDEL_ASSIGN_OR_RETURN(bench.db, Database::Create(options));

  WorkloadSpec spec;
  spec.n_tuples = config.n_tuples;
  spec.n_int_columns = config.n_int_columns;
  spec.tuple_size = config.tuple_size;
  spec.clustered_on_a = clustered_on_a;
  spec.seed = config.seed;
  BULKDEL_ASSIGN_OR_RETURN(
      bench.workload,
      SetUpPaperDatabase(bench.db.get(), spec, columns, a_options));
  // Loading is not part of any experiment: reset counters.
  bench.db->disk().ResetStats();
  return bench;
}

Result<BulkDeleteReport> RunDelete(BenchDb* bench, double fraction,
                                   Strategy strategy, uint64_t key_seed,
                                   bool pre_sort_keys) {
  BulkDeleteSpec spec;
  spec.table = bench->workload.spec.table_name;
  spec.key_column = "A";
  spec.keys = bench->workload.MakeDeleteKeys(fraction, key_seed);
  if (pre_sort_keys) {
    std::sort(spec.keys.begin(), spec.keys.end());
    spec.keys_sorted = true;
  }
  return bench->db->BulkDelete(spec, strategy);
}

void MaybeWriteTrace(const BenchConfig& config,
                     const BulkDeleteReport& report) {
  if (config.trace_out.empty()) return;
  std::FILE* f = std::fopen(config.trace_out.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "trace-out: cannot open %s\n",
                 config.trace_out.c_str());
    return;
  }
  std::string json = report.ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

void MaybeExportPerfetto(const BenchConfig& config) {
  if (config.perfetto_out.empty()) return;
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  Status s = recorder.ExportChromeTrace(config.perfetto_out);
  if (!s.ok()) {
    std::fprintf(stderr, "perfetto-out: %s\n", s.ToString().c_str());
    return;
  }
  std::printf("perfetto trace: %s (%llu events, %llu dropped)\n",
              config.perfetto_out.c_str(),
              static_cast<unsigned long long>(recorder.EventCount()),
              static_cast<unsigned long long>(recorder.DroppedCount()));
}

ResultTable::ResultTable(std::string title, std::string x_label,
                         std::vector<std::string> series)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      series_(std::move(series)) {}

void ResultTable::AddCell(const std::string& x, const std::string& series,
                          double sim_minutes, double wall_millis) {
  size_t xi = xs_.size();
  for (size_t i = 0; i < xs_.size(); ++i) {
    if (xs_[i] == x) {
      xi = i;
      break;
    }
  }
  if (xi == xs_.size()) {
    xs_.push_back(x);
    cells_.emplace_back(series_.size(), -1.0);
    walls_.emplace_back(series_.size(), -1.0);
  }
  for (size_t s = 0; s < series_.size(); ++s) {
    if (series_[s] == series) {
      cells_[xi][s] = sim_minutes;
      walls_[xi][s] = wall_millis;
      return;
    }
  }
}

void ResultTable::Print() const {
  std::printf("\n== %s ==\n(simulated minutes under the 2001 disk model)\n\n",
              title_.c_str());
  std::printf("%-14s", x_label_.c_str());
  for (const std::string& s : series_) std::printf(" | %18s", s.c_str());
  std::printf("\n");
  std::printf("--------------");
  for (size_t s = 0; s < series_.size(); ++s) std::printf("-+-------------------");
  std::printf("\n");
  for (size_t i = 0; i < xs_.size(); ++i) {
    std::printf("%-14s", xs_[i].c_str());
    for (size_t s = 0; s < cells_[i].size(); ++s) {
      double v = cells_[i][s];
      double wall = walls_[i][s];
      if (v < 0) {
        std::printf(" | %18s", "-");
      } else if (wall >= 0) {
        // Simulated minutes with the host wall time alongside.
        char cell[32];
        std::snprintf(cell, sizeof(cell), "%.2f (%.0fms)", v, wall);
        std::printf(" | %18s", cell);
      } else {
        std::printf(" | %18.2f", v);
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace bulkdel

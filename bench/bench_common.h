#ifndef BULKDEL_BENCH_BENCH_COMMON_H_
#define BULKDEL_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "workload/generator.h"

namespace bulkdel {
namespace bench {

/// Scale configuration shared by all figure/table benchmarks.
///
/// The paper runs 1,000,000 × 512 B tuples (a 512 MB table) with 5 MB of
/// main memory (Fig. 9 varies 2–10 MB). The benchmarks default to a
/// scaled-down table and scale every memory setting by the same
/// table-bytes ratio, so cache-pressure effects are preserved. Run with
/// `--tuples=1000000 --tuple-size=512` to reproduce at paper scale.
struct BenchConfig {
  uint64_t n_tuples = 50000;
  uint32_t tuple_size = 256;
  int n_int_columns = 10;
  uint64_t seed = 20010407;
  /// Worker threads for the phase-DAG scheduler (`--threads=N`); 1 = the
  /// historical serial execution.
  int exec_threads = 1;
  /// Buffer-pool shard count (`--pool-shards=N`); 0 = auto (8 sub-pools when
  /// threads > 1, one otherwise). See docs/BUFFERPOOL.md.
  size_t pool_shards = 0;
  /// Leaf read-ahead window in pages (`--readahead=N`); 0 = off. Keeps
  /// simulated I/O identical — only host wall time changes.
  size_t readahead_pages = 0;
  /// Durability backend (`--backend=sim|file`). "sim" (default) runs over
  /// in-memory pages and WAL image; "file" runs the identical workload over
  /// a real pwrite/fsync page file and on-disk WAL under `db_dir`. Simulated
  /// I/O totals are bit-identical between the two; only wall time changes.
  std::string backend = "sim";
  /// Directory for file-backed databases (`--db-dir=PATH`); each
  /// BuildBenchDb call gets its own numbered subdirectory. tmpfs recommended.
  std::string db_dir = "/tmp/bulkdel_bench";
  /// WAL group commit (`--wal-group-commit=0|1`, default on). Off = every
  /// Sync() performs its own flush+fsync; the ablation's baseline.
  bool wal_group_commit = true;
  /// If non-empty (`--trace-out=FILE`), every report produced via RunDelete
  /// is appended to FILE as one BulkDeleteReport::ToJson() line (JSONL), for
  /// machine-readable per-phase breakdowns of EXPERIMENTS runs.
  std::string trace_out;
  /// If non-empty (`--perfetto-out=FILE`), span tracing is enabled
  /// (DatabaseOptions::trace_spans) and the whole run's trace is written to
  /// FILE as Chrome trace-event JSON on MaybeExportPerfetto() — load it in
  /// Perfetto / chrome://tracing, or feed it to bulkdel_tracecat. Simulated
  /// I/O is bit-identical with or without this flag (docs/OBSERVABILITY.md).
  std::string perfetto_out;

  static BenchConfig FromArgs(int argc, char** argv);

  double ScaleFactor() const {
    return static_cast<double>(n_tuples) * tuple_size /
           (1000000.0 * 512.0);
  }

  /// Paper memory size (MB) scaled to this configuration's table size.
  size_t ScaledMemoryBytes(double paper_mb) const {
    double bytes = paper_mb * 1024.0 * 1024.0 * ScaleFactor();
    return static_cast<size_t>(bytes) < (64u << 10)
               ? (64u << 10)
               : static_cast<size_t>(bytes);
  }
};

/// A freshly built paper database plus its workload description.
struct BenchDb {
  std::unique_ptr<Database> db;
  Workload workload;
};

/// Builds R with indices on `columns` ("A" unique; clustered per flag) under
/// `memory_bytes` of buffer/sort memory. `a_options` tweaks the key index
/// (the height experiment shrinks its inner fan-out).
Result<BenchDb> BuildBenchDb(const BenchConfig& config,
                             const std::vector<std::string>& columns,
                             size_t memory_bytes, bool clustered_on_a = false,
                             IndexOptions a_options = {});

/// Runs one bulk delete of `fraction` of the rows with `strategy`; the
/// database is consumed (mutated).
Result<BulkDeleteReport> RunDelete(BenchDb* bench, double fraction,
                                   Strategy strategy, uint64_t key_seed = 1,
                                   bool pre_sort_keys = false);

/// Appends `report` as one JSON line to `config.trace_out`, if set. Errors
/// are reported to stderr but do not fail the benchmark.
void MaybeWriteTrace(const BenchConfig& config,
                     const BulkDeleteReport& report);

/// Writes the global TraceRecorder's Chrome trace to `config.perfetto_out`,
/// if set (call once, at the end of the benchmark). Errors are reported to
/// stderr but do not fail the benchmark.
void MaybeExportPerfetto(const BenchConfig& config);

/// Markdown-ish result table: one row per x-value, one column per series,
/// cells in simulated minutes — optionally with host wall milliseconds
/// alongside (`12.34 (56ms)`), so sim-model time and real-backend time read
/// side by side.
class ResultTable {
 public:
  ResultTable(std::string title, std::string x_label,
              std::vector<std::string> series);

  /// `wall_millis` < 0 omits the wall column for this cell.
  void AddCell(const std::string& x, const std::string& series,
               double sim_minutes, double wall_millis = -1.0);
  /// Renders and prints the table plus per-cell I/O footnotes if provided.
  void Print() const;

 private:
  std::string title_;
  std::string x_label_;
  std::vector<std::string> series_;
  std::vector<std::string> xs_;
  std::vector<std::vector<double>> cells_;  // [x][series], sim minutes
  std::vector<std::vector<double>> walls_;  // [x][series], wall ms (<0 = n/a)
};

}  // namespace bench
}  // namespace bulkdel

#endif  // BULKDEL_BENCH_BENCH_COMMON_H_

// Figure 9 / Experiment 4: vary the available main memory (paper: 2, 6,
// 10 MB; scaled to our table size), 1 unclustered index, 15 % deletes.
// Series: sorted/trad, not sorted/trad, bulk delete.
//
// Expected shape: bulk delete is flat — even the smallest memory sorts the
// delete list in one pass and the merging passes need almost nothing.
// not sorted/trad improves markedly with memory (random probes start
// hitting the cache); sorted/trad improves mildly.

#include <cstdio>

#include "bench/bench_common.h"

namespace bulkdel {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::printf("Figure 9: %llu tuples x %u B, 15%% deletes, 1 uncl. index\n",
              static_cast<unsigned long long>(config.n_tuples),
              config.tuple_size);

  struct SeriesDef {
    const char* name;
    Strategy strategy;
  };
  const SeriesDef series[] = {
      {"sorted/trad", Strategy::kTraditionalSorted},
      {"not sorted/trad", Strategy::kTraditional},
      {"bulk delete", Strategy::kVerticalSortMerge},
  };
  ResultTable table("Figure 9: vary available memory, 15% deleted",
                    "memory",
                    {"sorted/trad", "not sorted/trad", "bulk delete"});
  for (double paper_mb : {2.0, 6.0, 10.0}) {
    size_t memory = config.ScaledMemoryBytes(paper_mb);
    char x[32];
    std::snprintf(x, sizeof(x), "%.0fMB (%zuKiB)", paper_mb, memory / 1024);
    for (const SeriesDef& s : series) {
      auto bench = BuildBenchDb(config, {"A"}, memory);
      if (!bench.ok()) {
        std::fprintf(stderr, "setup: %s\n", bench.status().ToString().c_str());
        return 1;
      }
      auto report = RunDelete(&*bench, 0.15, s.strategy);
      if (!report.ok()) {
        std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
        return 1;
      }
      MaybeWriteTrace(config, *report);
      table.AddCell(x, s.name, report->simulated_minutes(),
                    static_cast<double>(report->wall_micros) / 1000.0);
    }
  }
  table.Print();
  MaybeExportPerfetto(config);
  std::printf(
      "\npaper (Fig. 9): bulk delete flat ~25min from 2MB up; not "
      "sorted/trad\nfalls ~180 -> ~130 min as memory grows 2->10MB; "
      "sorted/trad falls mildly\n~70 -> ~60 min.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

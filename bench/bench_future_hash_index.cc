// Future-work experiment (paper §5): bulk deletes from a *hash table* index.
// The vertical idea transfers: instead of sorting the delete list into key
// order, hash-partition it by bucket number — the physical layout of the
// hash table — and touch each affected bucket chain once. Compared against
// the traditional key-at-a-time probing.

#include <cstdio>

#include "bench/bench_common.h"
#include "hashidx/hash_index.h"
#include "util/random.h"

namespace bulkdel {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::printf("Future work: bulk deletes from an extendible-hash index\n");

  ResultTable table("Hash-index deletes (simulated minutes)", "deleted (%)",
                    {"traditional", "bulk (hash-partitioned)"});
  for (double fraction : {0.05, 0.10, 0.15, 0.20}) {
    char x[16];
    std::snprintf(x, sizeof(x), "%.0f%%", fraction * 100);
    for (int bulk = 0; bulk <= 1; ++bulk) {
      DiskModel model;
      DiskManager disk(model);
      // Memory budget scaled as in the other benches.
      BufferPool pool(&disk, config.ScaledMemoryBytes(5.0));
      auto index = *HashIndex::Create(&pool);
      Random rng(config.seed);
      std::vector<int64_t> keys;
      keys.reserve(config.n_tuples);
      for (uint64_t i = 0; i < config.n_tuples; ++i) {
        int64_t k = static_cast<int64_t>(i * 8 + rng.Uniform(8));
        keys.push_back(k);
        Status s = index.Insert(
            k, Rid(static_cast<PageId>(i / 8 + 1),
                   static_cast<uint16_t>(i % 8)));
        if (!s.ok()) {
          std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
          return 1;
        }
      }
      // Sample the doomed keys.
      std::vector<int64_t> doomed;
      uint64_t n = static_cast<uint64_t>(fraction *
                                         static_cast<double>(keys.size()));
      for (uint64_t i = 0; i < n; ++i) {
        std::swap(keys[i], keys[i + rng.Uniform(keys.size() - i)]);
        doomed.push_back(keys[i]);
      }
      disk.ResetStats();
      Status s;
      if (bulk) {
        HashBulkDeleteStats stats;
        s = index.BulkDeleteKeys(doomed, &stats);
      } else {
        for (int64_t k : doomed) {
          auto rids = index.Search(k);
          if (!rids.ok()) {
            s = rids.status();
            break;
          }
          for (const Rid& rid : *rids) {
            s = index.Delete(k, rid);
            if (!s.ok()) break;
          }
        }
      }
      if (!s.ok()) {
        std::fprintf(stderr, "run: %s\n", s.ToString().c_str());
        return 1;
      }
      Status flush = pool.FlushAll();
      if (!flush.ok()) return 1;
      IoStats io = disk.stats();
      table.AddCell(x, bulk ? "bulk (hash-partitioned)" : "traditional",
                    static_cast<double>(io.simulated_micros) / 60e6);
    }
  }
  table.Print();
  std::printf(
      "\nexpectation: the traditional path pays ~2 random bucket I/Os per "
      "key;\nthe partitioned bulk path reads/writes each affected bucket "
      "chain once,\nso its cost is bounded by the bucket count — the same "
      "flattening the\nB-tree experiments show, transferred to a hash "
      "index.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

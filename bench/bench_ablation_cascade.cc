// Ablation for the two-phase cascade engine on a "forget user X" workload.
//
// A deep multi-table schema — USERS referenced by ORDERS, SESSIONS, POSTS,
// COMMENTS and LIKES (all CASCADE), ORDERS referenced by EVENTS — forgets 1%
// of its users, keyed on the users' external id (NOT the primary key, so
// deriving the referenced USERS.A values needs the rid-sort + fetch pass).
// Three executions of the same statement:
//
//   shared-sort     — the engine's default: ONE doomed-rid derivation and
//                     ONE fetch pass project every FK-referenced column
//                     (DatabaseOptions::fk_shared_sort = true)
//   per-FK-naive    — re-derive the doomed set per referencing FK, the
//                     pre-refactor behavior (fk_shared_sort = false);
//                     phase ordering is identical, only derivation differs
//   row-at-a-time   — DELETE each user through the row DML path, cascades
//                     resolved per parent row (the traditional baseline)
//
// The shared-sort plan must charge fewer simulated page transfers than the
// per-FK-naive plan by at least kMinSharedAdvantage; the run FAILS below
// that bar, so CI holds the line on the shared derivation.
//
// Extra flags (on top of the common bench flags):
//   --json-out=FILE    append one machine-readable JSON line
//                      (consumed by tools/bench_smoke_summary.py
//                      --cascade=FILE)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace bulkdel {
namespace bench {
namespace {

/// Minimum (per-FK-naive cost) / (shared-sort cost) ratio in simulated page
/// transfers. USERS carries five referencing FKs, so the naive plan pays
/// the rid-derivation + fetch pass five times where shared pays once.
/// Simulated I/O is deterministic — the margin is a stable gate, not a
/// noisy benchmark threshold.
constexpr double kMinSharedAdvantage = 1.10;

constexpr double kForgetFraction = 0.01;

struct VariantResult {
  uint64_t users_deleted = 0;
  uint64_t cascaded_rows = 0;
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t sim_micros = 0;
  int64_t wall_micros = 0;
};

/// Builds the forget-me schema: per user, 2 orders + 2 sessions + 1 post +
/// 1 comment + 1 like, plus 2 events per order — 12 rows per user across
/// seven tables, five of them referencing USERS directly.
Status BuildForgetDb(const BenchConfig& config, size_t memory,
                     bool fk_shared_sort, int64_t n_users,
                     std::unique_ptr<Database>* out) {
  DatabaseOptions options;
  options.memory_budget_bytes = memory;
  options.exec_threads = config.exec_threads;
  options.fk_shared_sort = fk_shared_sort;
  auto db = Database::Create(options);
  BULKDEL_RETURN_IF_ERROR(db.status());
  *out = std::move(db).TakeValue();
  Database* d = out->get();

  Schema schema = *Schema::PaperStyle(3, config.tuple_size);
  for (const char* t : {"USERS", "ORDERS", "SESSIONS", "POSTS", "COMMENTS",
                        "LIKES", "EVENTS"}) {
    BULKDEL_RETURN_IF_ERROR(d->CreateTable(t, schema).status());
    BULKDEL_RETURN_IF_ERROR(d->CreateIndex(t, "A", {.unique = true}).status());
  }
  // The statement keys on the users' external id, not the primary key.
  BULKDEL_RETURN_IF_ERROR(d->CreateIndex("USERS", "B", {.unique = true})
                              .status());
  for (const char* t : {"ORDERS", "SESSIONS", "POSTS", "COMMENTS", "LIKES",
                        "EVENTS"}) {
    BULKDEL_RETURN_IF_ERROR(d->CreateIndex(t, "B").status());
  }

  for (int64_t u = 0; u < n_users; ++u) {
    // ext_id deliberately decorrelated from id: the doomed rid set is
    // scattered, so the derivation's sort actually earns its keep.
    int64_t ext = (u * 2654435761LL) % (n_users * 64) + 1000000;
    BULKDEL_RETURN_IF_ERROR(d->InsertRow("USERS", {u, ext, u * 7}).status());
    for (int64_t o = 2 * u; o < 2 * u + 2; ++o) {
      BULKDEL_RETURN_IF_ERROR(d->InsertRow("ORDERS", {o, u, o * 5}).status());
      for (int64_t e = 2 * o; e < 2 * o + 2; ++e) {
        BULKDEL_RETURN_IF_ERROR(
            d->InsertRow("EVENTS", {e, o, e * 11}).status());
      }
    }
    for (int64_t s = 2 * u; s < 2 * u + 2; ++s) {
      BULKDEL_RETURN_IF_ERROR(d->InsertRow("SESSIONS", {s, u, s * 3}).status());
    }
    BULKDEL_RETURN_IF_ERROR(d->InsertRow("POSTS", {u, u, u * 13}).status());
    BULKDEL_RETURN_IF_ERROR(
        d->InsertRow("COMMENTS", {u, u, u * 17}).status());
    BULKDEL_RETURN_IF_ERROR(d->InsertRow("LIKES", {u, u, u * 19}).status());
  }
  for (const char* t : {"ORDERS", "SESSIONS", "POSTS", "COMMENTS", "LIKES"}) {
    BULKDEL_RETURN_IF_ERROR(
        d->AddForeignKey(t, "B", "USERS", "A", FkAction::kCascade));
  }
  BULKDEL_RETURN_IF_ERROR(
      d->AddForeignKey("EVENTS", "B", "ORDERS", "A", FkAction::kCascade));
  return d->Checkpoint();
}

/// The doomed users' external ids: every (1/fraction)-th user.
std::vector<int64_t> ForgottenExtIds(int64_t n_users,
                                     std::vector<int64_t>* user_ids) {
  int64_t stride = static_cast<int64_t>(1.0 / kForgetFraction);
  std::vector<int64_t> ext_ids;
  for (int64_t u = 0; u < n_users; u += stride) {
    ext_ids.push_back((u * 2654435761LL) % (n_users * 64) + 1000000);
    if (user_ids != nullptr) user_ids->push_back(u);
  }
  return ext_ids;
}

uint64_t TotalRows(Database* db) {
  uint64_t total = 0;
  for (const char* t : {"USERS", "ORDERS", "SESSIONS", "POSTS", "COMMENTS",
                        "LIKES", "EVENTS"}) {
    total += db->GetTable(t)->table->tuple_count();
  }
  return total;
}

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    }
  }
  size_t memory = config.ScaledMemoryBytes(5.0);
  int64_t n_users = static_cast<int64_t>(config.n_tuples / 12);
  if (n_users < 200) n_users = 200;
  std::printf(
      "Ablation: forget %.0f%% of %lld users across USERS -> {ORDERS -> "
      "EVENTS, SESSIONS, POSTS, COMMENTS, LIKES}\n",
      kForgetFraction * 100.0, static_cast<long long>(n_users));

  const char* names[] = {"shared-sort", "per-FK-naive", "row-at-a-time"};
  VariantResult results[3];
  for (int variant = 0; variant < 3; ++variant) {
    std::unique_ptr<Database> db;
    Status s = BuildForgetDb(config, memory, /*fk_shared_sort=*/variant == 0,
                             n_users, &db);
    if (!s.ok()) {
      std::fprintf(stderr, "setup: %s\n", s.ToString().c_str());
      return 1;
    }
    std::vector<int64_t> user_ids;
    std::vector<int64_t> ext_ids = ForgottenExtIds(n_users, &user_ids);
    uint64_t rows_before = TotalRows(db.get());

    db->disk().ResetStats();
    IoStats before = db->disk().stats();
    int64_t wall_micros = 0;
    uint64_t users_deleted = 0;
    uint64_t cascaded = 0;
    if (variant < 2) {
      BulkDeleteSpec spec;
      spec.table = "USERS";
      spec.key_column = "B";
      spec.keys = ext_ids;
      auto report = db->BulkDelete(spec, Strategy::kOptimizer);
      if (!report.ok()) {
        std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
        return 1;
      }
      users_deleted = report->rows_deleted;
      cascaded = report->cascaded_rows;
      wall_micros = report->wall_micros;
    } else {
      // Traditional: one row DML per user, cascade fan-out per statement.
      auto t0 = std::chrono::steady_clock::now();
      for (int64_t u : user_ids) {
        auto rids = db->GetIndex("USERS", "A")->tree->Search(u);
        if (!rids.ok() || rids->empty()) {
          std::fprintf(stderr, "run: lost user %lld\n",
                       static_cast<long long>(u));
          return 1;
        }
        Status del = db->DeleteRow("USERS", rids->at(0));
        if (!del.ok()) {
          std::fprintf(stderr, "run: %s\n", del.ToString().c_str());
          return 1;
        }
        ++users_deleted;
      }
      wall_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
      cascaded = rows_before - TotalRows(db.get()) - users_deleted;
    }
    IoStats io = db->disk().stats() - before;
    results[variant] = {users_deleted, cascaded,          io.reads,
                        io.writes,     io.simulated_micros, wall_micros};
    std::printf(
        "%-14s users=%llu cascaded=%llu reads=%lld writes=%lld sim=%.2f "
        "min  wall=%.0f ms\n",
        names[variant], static_cast<unsigned long long>(users_deleted),
        static_cast<unsigned long long>(cascaded),
        static_cast<long long>(io.reads), static_cast<long long>(io.writes),
        static_cast<double>(io.simulated_micros) / 60e6,
        static_cast<double>(wall_micros) / 1000.0);
  }

  for (int variant = 1; variant < 3; ++variant) {
    if (results[variant].users_deleted != results[0].users_deleted ||
        results[variant].cascaded_rows != results[0].cascaded_rows) {
      std::fprintf(stderr,
                   "FAIL: %s deleted %llu users / %llu cascaded, "
                   "shared-sort deleted %llu / %llu — the plans disagree\n",
                   names[variant],
                   static_cast<unsigned long long>(
                       results[variant].users_deleted),
                   static_cast<unsigned long long>(
                       results[variant].cascaded_rows),
                   static_cast<unsigned long long>(results[0].users_deleted),
                   static_cast<unsigned long long>(results[0].cascaded_rows));
      return 1;
    }
  }
  int64_t shared_cost = results[0].reads + results[0].writes;
  int64_t naive_cost = results[1].reads + results[1].writes;
  double ratio = shared_cost == 0 ? 0.0
                                  : static_cast<double>(naive_cost) /
                                        static_cast<double>(shared_cost);
  std::printf(
      "\nshared-sort: %lld page transfers; per-FK-naive: %lld (%.2fx); "
      "row-at-a-time: %lld\n",
      static_cast<long long>(shared_cost), static_cast<long long>(naive_cost),
      static_cast<long long>(results[2].reads + results[2].writes), ratio);
  if (shared_cost == 0 || ratio < kMinSharedAdvantage) {
    std::fprintf(stderr,
                 "FAIL: the shared-sort cascade plan must charge at least "
                 "%.2fx fewer simulated transfers than per-FK-naive "
                 "(got %.2fx)\n",
                 kMinSharedAdvantage, ratio);
    return 1;
  }
  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\"bench\":\"ablation_cascade\",\"n_users\":%lld,"
        "\"fraction\":%.2f,\"users_deleted\":%llu,\"cascaded_rows\":%llu,"
        "\"shared\":{\"io_reads\":%lld,\"io_writes\":%lld,"
        "\"sim_micros\":%lld,\"wall_micros\":%lld},"
        "\"naive\":{\"io_reads\":%lld,\"io_writes\":%lld,"
        "\"sim_micros\":%lld,\"wall_micros\":%lld},"
        "\"row_at_a_time\":{\"io_reads\":%lld,\"io_writes\":%lld,"
        "\"sim_micros\":%lld,\"wall_micros\":%lld},"
        "\"ratio\":%.2f}\n",
        static_cast<long long>(n_users), kForgetFraction,
        static_cast<unsigned long long>(results[0].users_deleted),
        static_cast<unsigned long long>(results[0].cascaded_rows),
        static_cast<long long>(results[0].reads),
        static_cast<long long>(results[0].writes),
        static_cast<long long>(results[0].sim_micros),
        static_cast<long long>(results[0].wall_micros),
        static_cast<long long>(results[1].reads),
        static_cast<long long>(results[1].writes),
        static_cast<long long>(results[1].sim_micros),
        static_cast<long long>(results[1].wall_micros),
        static_cast<long long>(results[2].reads),
        static_cast<long long>(results[2].writes),
        static_cast<long long>(results[2].sim_micros),
        static_cast<long long>(results[2].wall_micros), ratio);
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

// Future-work experiment (paper §5): bulk deletes from an R-tree. The
// vertical idea generalizes even without a sort order: probing by RID needs
// none — one depth-first pass over the tree deletes everything, while the
// traditional path pays a spatial root-to-leaf search per entry.

#include <cstdio>

#include "bench/bench_common.h"
#include "rtree/rtree.h"
#include "util/random.h"

namespace bulkdel {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  uint64_t n = config.n_tuples;
  std::printf("Future work: bulk deletes from an R-tree (%llu rects)\n",
              static_cast<unsigned long long>(n));

  ResultTable table("R-tree deletes (simulated minutes)", "deleted (%)",
                    {"traditional", "bulk (RID probe)"});
  for (double fraction : {0.05, 0.10, 0.15, 0.20}) {
    char x[16];
    std::snprintf(x, sizeof(x), "%.0f%%", fraction * 100);
    for (int bulk = 0; bulk <= 1; ++bulk) {
      DiskManager disk;
      BufferPool pool(&disk, config.ScaledMemoryBytes(5.0));
      auto tree = *RTree::Create(&pool);
      Random rng(config.seed);
      std::vector<std::pair<Rect, Rid>> entries;
      entries.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        int64_t px = rng.UniformInt(0, 1000000);
        int64_t py = rng.UniformInt(0, 1000000);
        Rect r{px, py, px + rng.UniformInt(0, 100),
               py + rng.UniformInt(0, 100)};
        Rid rid(static_cast<PageId>(i / 8 + 1), static_cast<uint16_t>(i % 8));
        entries.push_back({r, rid});
        Status s = tree.Insert(r, rid);
        if (!s.ok()) {
          std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
          return 1;
        }
      }
      uint64_t n_del = static_cast<uint64_t>(fraction *
                                             static_cast<double>(n));
      // Random victims.
      for (uint64_t i = 0; i < n_del; ++i) {
        std::swap(entries[i], entries[i + rng.Uniform(entries.size() - i)]);
      }
      disk.ResetStats();
      Status s;
      if (bulk) {
        std::vector<Rid> rids;
        for (uint64_t i = 0; i < n_del; ++i) rids.push_back(entries[i].second);
        RtreeBulkDeleteStats stats;
        s = tree.BulkDeleteByRids(rids, &stats);
      } else {
        for (uint64_t i = 0; i < n_del && s.ok(); ++i) {
          s = tree.Delete(entries[i].first, entries[i].second);
        }
      }
      if (!s.ok()) {
        std::fprintf(stderr, "run: %s\n", s.ToString().c_str());
        return 1;
      }
      if (!pool.FlushAll().ok()) return 1;
      IoStats io = disk.stats();
      table.AddCell(x, bulk ? "bulk (RID probe)" : "traditional",
                    static_cast<double>(io.simulated_micros) / 60e6);
    }
  }
  table.Print();
  std::printf(
      "\nexpectation: one DFS pass bounds the bulk path by the node count; "
      "the\ntraditional path's spatial searches grow linearly with the "
      "delete-list\nsize — the same flattening as for B-trees and hash "
      "tables.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

// Figure 10 / Experiment 5: clustered index. Table R is physically sorted
// by A, so the index on A is clustered; 6–20 % deletes, 5 MB memory
// (scaled).
// Series: sorted/trad/clust, sorted/trad/unclust (baseline from Fig. 7),
// not sorted/trad/clust, bulk delete.
//
// Expected shape: with a clustered key index and a sorted list, the
// traditional approach turns its table accesses sequential and slightly
// *beats* bulk delete (which pays its fixed leaf/table passes without
// gaining anything from the clustering) — the paper's analogue of index
// nested-loop joins winning on a clustered index with sorted outer. The
// not-sorted variant still performs poorly.

#include <cstdio>

#include "bench/bench_common.h"

namespace bulkdel {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  size_t memory = config.ScaledMemoryBytes(5.0);
  std::printf("Figure 10: %llu tuples x %u B, clustered I_A, %zu KiB\n",
              static_cast<unsigned long long>(config.n_tuples),
              config.tuple_size, memory / 1024);

  struct SeriesDef {
    const char* name;
    Strategy strategy;
    bool clustered;
  };
  const SeriesDef series[] = {
      {"sorted/trad/clust", Strategy::kTraditionalSorted, true},
      {"sorted/trad/unclust", Strategy::kTraditionalSorted, false},
      {"not sorted/trad/clust", Strategy::kTraditional, true},
      {"bulk delete", Strategy::kVerticalSortMerge, true},
  };
  ResultTable table("Figure 10: clustered index", "deleted (%)",
                    {"sorted/trad/clust", "sorted/trad/unclust",
                     "not sorted/trad/clust", "bulk delete"});
  for (double fraction : {0.06, 0.10, 0.15, 0.20}) {
    char x[16];
    std::snprintf(x, sizeof(x), "%.0f%%", fraction * 100);
    for (const SeriesDef& s : series) {
      auto bench = BuildBenchDb(config, {"A"}, memory, s.clustered);
      if (!bench.ok()) {
        std::fprintf(stderr, "setup: %s\n", bench.status().ToString().c_str());
        return 1;
      }
      auto report = RunDelete(&*bench, fraction, s.strategy);
      if (!report.ok()) {
        std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
        return 1;
      }
      table.AddCell(x, s.name, report->simulated_minutes());
    }
  }
  table.Print();
  std::printf(
      "\npaper (Fig. 10): sorted/trad/clust is the best series (slightly "
      "below\nbulk delete); bulk delete close behind and flat; "
      "sorted/trad/unclust\nclimbs to ~100min at 20%%; not sorted/trad/clust "
      "worst (~150min+).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

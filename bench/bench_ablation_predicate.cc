// Ablation for §2.1's "primary ⋉̸ predicate", in two parts.
//
// Part 1 — probe predicate: locating secondary-index entries by key (merge
// with the sorted (key,RID) feed) vs by RID (hash probe over the whole leaf
// level) vs by RID within key ranges (partitioned). Exercises the exec
// operators directly on one secondary index.
//
// Part 2 — statement predicate class: a BETWEEN over 10% of the key space,
// executed as a first-class range plan (leaf-run + extent-drop passes) vs
// the same doomed set expanded into an explicit IN-list (the pre-range
// behavior, handed to the planner as a sorted key list — its best case).
// Clustered key-index-only table at Figure-7 scale. The range plan must
// charge at least 5x fewer simulated page transfers (reads + writes) than
// the expanded plan; the run FAILS below that ratio, so CI holds the line.
//
// Extra flags (on top of the common bench flags):
//   --json-out=FILE    append one machine-readable JSON line for part 2
//                      (consumed by tools/bench_smoke_summary.py
//                      --predicate=FILE)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "exec/hash_delete.h"
#include "exec/merge_delete.h"
#include "exec/partitioned_delete.h"

namespace bulkdel {
namespace bench {
namespace {

/// Minimum (expanded IN-list cost) / (range plan cost) ratio in simulated
/// page transfers — the acceptance bar for the first-class range path.
constexpr double kMinRangeAdvantage = 5.0;

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    }
  }
  size_t memory = config.ScaledMemoryBytes(5.0);
  std::printf("Ablation: primary ⋉̸ predicate on a secondary index\n");

  ResultTable table("Probe predicate on I_B (15% deleted)", "predicate",
                    {"sim minutes", "leaves visited"});
  struct Variant {
    const char* name;
    int kind;  // 0 = by key (merge), 1 = by rid (hash), 2 = partitioned
  };
  const Variant variants[] = {
      {"by key (merge)", 0},
      {"by RID (hash)", 1},
      {"by RID (partitioned)", 2},
  };
  for (const Variant& v : variants) {
    auto bench = BuildBenchDb(config, {"A", "B"}, memory);
    if (!bench.ok()) return 1;
    auto* db = bench->db.get();
    const Workload& w = bench->workload;

    // Build the feed exactly as the table phase would: (B value, RID) of
    // the doomed rows.
    std::vector<int64_t> keys = w.MakeDeleteKeys(0.15, 9);
    U64HashSet doomed_a(keys.size());
    for (int64_t k : keys) doomed_a.Insert(static_cast<uint64_t>(k));
    std::vector<KeyRid> feed;
    for (size_t i = 0; i < w.rids.size(); ++i) {
      if (doomed_a.Contains(static_cast<uint64_t>(w.values[0][i]))) {
        feed.emplace_back(w.values[1][i], w.rids[i]);
      }
    }
    auto* index = db->GetIndex("R", "B");
    db->disk().ResetStats();
    IoStats before = db->disk().stats();
    BtreeBulkDeleteStats stats;
    Status s;
    switch (v.kind) {
      case 0:
        s = MergeDeleteIndexByEntries(index->tree.get(), &db->disk(), memory,
                                      &feed, /*already_sorted=*/false,
                                      ReorgMode::kFreeAtEmpty, &stats);
        break;
      case 1: {
        std::vector<Rid> rids;
        for (const KeyRid& e : feed) rids.push_back(e.rid);
        s = HashDeleteIndexByRids(index->tree.get(), rids,
                                  ReorgMode::kFreeAtEmpty, &stats);
        break;
      }
      default: {
        PartitionedDeleteStats pstats;
        s = PartitionedHashDeleteIndex(index->tree.get(), &db->disk(), memory,
                                       feed, ReorgMode::kFreeAtEmpty,
                                       &pstats);
        stats = pstats.btree;
        break;
      }
    }
    if (!s.ok()) {
      std::fprintf(stderr, "run: %s\n", s.ToString().c_str());
      return 1;
    }
    IoStats io = db->disk().stats() - before;
    std::printf("%-22s deleted=%llu leaves=%llu sim=%.2f min\n", v.name,
                static_cast<unsigned long long>(stats.entries_deleted),
                static_cast<unsigned long long>(stats.leaves_visited),
                static_cast<double>(io.simulated_micros) / 60e6);
    table.AddCell(v.name, "sim minutes",
                  static_cast<double>(io.simulated_micros) / 60e6);
    table.AddCell(v.name, "leaves visited",
                  static_cast<double>(stats.leaves_visited));
  }
  table.Print();
  std::printf(
      "\nexpectation: all predicates visit ~the whole leaf level once; the\n"
      "key probe pays the feed sort, the RID probes skip it — differences\n"
      "stay small, exactly the paper's point that predicate choice is a\n"
      "planner degree of freedom rather than a correctness concern.\n");

  // Part 2: statement predicate class — range plan vs expanded IN-list on a
  // clustered key-index-only table (Figure-7 scale, 10% of the rows, taken
  // as the centered quantile window of the A-population so the doomed set
  // is one contiguous key range).
  std::printf("\nAblation: BETWEEN as a range plan vs expanded IN-list\n");
  constexpr double kFraction = 0.10;
  struct PlanResult {
    uint64_t rows_deleted = 0;
    int64_t reads = 0;
    int64_t writes = 0;
    int64_t sim_micros = 0;
    int64_t wall_micros = 0;
    std::string backend;
  };
  PlanResult results[2];  // [0] = range, [1] = expanded IN-list
  for (int variant = 0; variant < 2; ++variant) {
    auto bench = BuildBenchDb(config, {"A"}, memory, /*clustered_on_a=*/true);
    if (!bench.ok()) {
      std::fprintf(stderr, "setup: %s\n", bench.status().ToString().c_str());
      return 1;
    }
    const Workload& w = bench->workload;
    std::vector<int64_t> sorted_a = w.values[0];
    std::sort(sorted_a.begin(), sorted_a.end());
    size_t n = static_cast<size_t>(kFraction * sorted_a.size());
    if (n == 0) n = 1;
    size_t start = (sorted_a.size() - n) / 2;

    BulkDeleteSpec spec;
    spec.table = w.spec.table_name;
    spec.key_column = "A";
    spec.keys_sorted = true;
    if (variant == 0) {
      spec.predicate = DeletePredicate::kRange;
      spec.range_lo = sorted_a[start];
      spec.range_hi = sorted_a[start + n - 1];
    } else {
      // The same doomed set as an already-sorted point-key list: exactly
      // what expanding the BETWEEN used to hand the planner, at its best.
      spec.keys.assign(sorted_a.begin() + start, sorted_a.begin() + start + n);
    }
    auto report = bench->db->BulkDelete(spec, Strategy::kOptimizer);
    if (!report.ok()) {
      std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
      return 1;
    }
    results[variant] = {report->rows_deleted, report->io.reads,
                        report->io.writes, report->io.simulated_micros,
                        report->wall_micros, report->backend};
    std::printf("%-18s deleted=%llu reads=%lld writes=%lld sim=%.2f min\n",
                variant == 0 ? "range plan" : "expanded IN-list",
                static_cast<unsigned long long>(report->rows_deleted),
                static_cast<long long>(report->io.reads),
                static_cast<long long>(report->io.writes),
                static_cast<double>(report->io.simulated_micros) / 60e6);
  }
  if (results[0].rows_deleted != results[1].rows_deleted) {
    std::fprintf(stderr,
                 "FAIL: range plan deleted %llu rows, expanded IN-list "
                 "deleted %llu — the plans disagree on the doomed set\n",
                 static_cast<unsigned long long>(results[0].rows_deleted),
                 static_cast<unsigned long long>(results[1].rows_deleted));
    return 1;
  }
  int64_t range_cost = results[0].reads + results[0].writes;
  int64_t expanded_cost = results[1].reads + results[1].writes;
  double ratio = range_cost == 0
                     ? 0.0
                     : static_cast<double>(expanded_cost) /
                           static_cast<double>(range_cost);
  std::printf(
      "\nrange plan: %lld page transfers; expanded IN-list: %lld "
      "(%.1fx)\n",
      static_cast<long long>(range_cost),
      static_cast<long long>(expanded_cost), ratio);
  if (range_cost == 0 || ratio < kMinRangeAdvantage) {
    std::fprintf(stderr,
                 "FAIL: range plan must charge at least %.0fx fewer "
                 "simulated transfers than the expanded IN-list plan "
                 "(got %.1fx)\n",
                 kMinRangeAdvantage, ratio);
    return 1;
  }
  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\"bench\":\"ablation_predicate\",\"backend\":\"%s\","
        "\"n_tuples\":%llu,\"fraction\":%.2f,\"rows_deleted\":%llu,"
        "\"range\":{\"io_reads\":%lld,\"io_writes\":%lld,"
        "\"sim_micros\":%lld,\"wall_micros\":%lld},"
        "\"expanded_in\":{\"io_reads\":%lld,\"io_writes\":%lld,"
        "\"sim_micros\":%lld,\"wall_micros\":%lld},"
        "\"ratio\":%.2f}\n",
        results[0].backend.c_str(),
        static_cast<unsigned long long>(config.n_tuples), kFraction,
        static_cast<unsigned long long>(results[0].rows_deleted),
        static_cast<long long>(results[0].reads),
        static_cast<long long>(results[0].writes),
        static_cast<long long>(results[0].sim_micros),
        static_cast<long long>(results[0].wall_micros),
        static_cast<long long>(results[1].reads),
        static_cast<long long>(results[1].writes),
        static_cast<long long>(results[1].sim_micros),
        static_cast<long long>(results[1].wall_micros), ratio);
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

// Ablation for §2.1's "primary ⋉̸ predicate": locating secondary-index
// entries by key (merge with the sorted (key,RID) feed) vs by RID (hash
// probe over the whole leaf level) vs by RID within key ranges (partitioned).
// Exercises the exec operators directly on one secondary index.

#include <cstdio>

#include "bench/bench_common.h"
#include "exec/hash_delete.h"
#include "exec/merge_delete.h"
#include "exec/partitioned_delete.h"

namespace bulkdel {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  size_t memory = config.ScaledMemoryBytes(5.0);
  std::printf("Ablation: primary ⋉̸ predicate on a secondary index\n");

  ResultTable table("Probe predicate on I_B (15% deleted)", "predicate",
                    {"sim minutes", "leaves visited"});
  struct Variant {
    const char* name;
    int kind;  // 0 = by key (merge), 1 = by rid (hash), 2 = partitioned
  };
  const Variant variants[] = {
      {"by key (merge)", 0},
      {"by RID (hash)", 1},
      {"by RID (partitioned)", 2},
  };
  for (const Variant& v : variants) {
    auto bench = BuildBenchDb(config, {"A", "B"}, memory);
    if (!bench.ok()) return 1;
    auto* db = bench->db.get();
    const Workload& w = bench->workload;

    // Build the feed exactly as the table phase would: (B value, RID) of
    // the doomed rows.
    std::vector<int64_t> keys = w.MakeDeleteKeys(0.15, 9);
    U64HashSet doomed_a(keys.size());
    for (int64_t k : keys) doomed_a.Insert(static_cast<uint64_t>(k));
    std::vector<KeyRid> feed;
    for (size_t i = 0; i < w.rids.size(); ++i) {
      if (doomed_a.Contains(static_cast<uint64_t>(w.values[0][i]))) {
        feed.emplace_back(w.values[1][i], w.rids[i]);
      }
    }
    auto* index = db->GetIndex("R", "B");
    db->disk().ResetStats();
    IoStats before = db->disk().stats();
    BtreeBulkDeleteStats stats;
    Status s;
    switch (v.kind) {
      case 0:
        s = MergeDeleteIndexByEntries(index->tree.get(), &db->disk(), memory,
                                      &feed, /*already_sorted=*/false,
                                      ReorgMode::kFreeAtEmpty, &stats);
        break;
      case 1: {
        std::vector<Rid> rids;
        for (const KeyRid& e : feed) rids.push_back(e.rid);
        s = HashDeleteIndexByRids(index->tree.get(), rids,
                                  ReorgMode::kFreeAtEmpty, &stats);
        break;
      }
      default: {
        PartitionedDeleteStats pstats;
        s = PartitionedHashDeleteIndex(index->tree.get(), &db->disk(), memory,
                                       feed, ReorgMode::kFreeAtEmpty,
                                       &pstats);
        stats = pstats.btree;
        break;
      }
    }
    if (!s.ok()) {
      std::fprintf(stderr, "run: %s\n", s.ToString().c_str());
      return 1;
    }
    IoStats io = db->disk().stats() - before;
    std::printf("%-22s deleted=%llu leaves=%llu sim=%.2f min\n", v.name,
                static_cast<unsigned long long>(stats.entries_deleted),
                static_cast<unsigned long long>(stats.leaves_visited),
                static_cast<double>(io.simulated_micros) / 60e6);
    table.AddCell(v.name, "sim minutes",
                  static_cast<double>(io.simulated_micros) / 60e6);
    table.AddCell(v.name, "leaves visited",
                  static_cast<double>(stats.leaves_visited));
  }
  table.Print();
  std::printf(
      "\nexpectation: all predicates visit ~the whole leaf level once; the\n"
      "key probe pays the feed sort, the RID probes skip it — differences\n"
      "stay small, exactly the paper's point that predicate choice is a\n"
      "planner degree of freedom rather than a correctness concern.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

// Table 1 / Experiment 3: vary the height of the index. The paper builds a
// height-4 version of I_A by artificially storing only 100 keys per inner
// node; we shrink the inner fan-out until the bulk-loaded tree gains a
// level. 15 % deletes, one unclustered index, 5 MB memory (scaled).
//
// Rows: sorted/bulk, not sorted/bulk, sorted/trad, not sorted/trad.
// Expected shape: bulk delete is essentially independent of the height (it
// never traverses root-to-leaf per record — it runs along the leaf level);
// the traditional variants get sharply worse with the extra level.

#include <cstdio>

#include "bench/bench_common.h"

namespace bulkdel {
namespace bench {
namespace {

struct Cell {
  const char* name;
  Strategy strategy;
  bool pre_sorted;
};

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  size_t memory = config.ScaledMemoryBytes(5.0);
  std::printf("Table 1: %llu tuples x %u B, 15%% deletes, %zu KiB\n",
              static_cast<unsigned long long>(config.n_tuples),
              config.tuple_size, memory / 1024);

  const Cell cells[] = {
      {"sorted/bulk", Strategy::kVerticalSortMerge, true},
      {"not sorted/bulk", Strategy::kVerticalSortMerge, false},
      {"sorted/trad", Strategy::kTraditionalSorted, true},
      {"not sorted/trad", Strategy::kTraditional, false},
  };

  ResultTable table("Table 1: vary index height", "approach",
                    {"normal height", "height + 1"});
  int heights[2] = {0, 0};
  for (int tall = 0; tall <= 1; ++tall) {
    IndexOptions a_options;
    if (tall) {
      // Shrink the inner fan-out until the index gains a level, mirroring
      // the paper's 100-keys-per-node trick at their scale.
      for (uint16_t fanout : {100, 40, 16, 8, 4}) {
        a_options.max_inner_entries = fanout;
        auto probe = BuildBenchDb(config, {"A"}, memory, false, a_options);
        if (!probe.ok()) return 1;
        int h = probe->db->GetIndex("R", "A")->tree->height();
        if (heights[0] > 0 && h > heights[0]) break;
      }
    }
    for (const Cell& cell : cells) {
      auto bench = BuildBenchDb(config, {"A"}, memory, false, a_options);
      if (!bench.ok()) {
        std::fprintf(stderr, "setup: %s\n", bench.status().ToString().c_str());
        return 1;
      }
      heights[tall] = bench->db->GetIndex("R", "A")->tree->height();
      auto report = RunDelete(&*bench, 0.15, cell.strategy, /*key_seed=*/1,
                              cell.pre_sorted);
      if (!report.ok()) {
        std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
        return 1;
      }
      table.AddCell(cell.name, tall ? "height + 1" : "normal height",
                    report->simulated_minutes());
    }
  }
  table.Print();
  std::printf("\nmeasured index heights: normal=%d, tall=%d\n", heights[0],
              heights[1]);
  std::printf(
      "\npaper (Table 1, heights 3 vs 4, minutes):\n"
      "  sorted/bulk      24.87 -> 26.79\n"
      "  not sorted/bulk  24.87 -> 26.79\n"
      "  sorted/trad      64.65 -> 80.65\n"
      "  not sorted/trad 102.05 -> 136.09\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

// google-benchmark micro suite for the B-link tree and the bulk-delete
// primitives: wall-clock costs of the core operations at memory-resident
// scale (the figure benches measure simulated disk time; this one measures
// CPU).

#include <benchmark/benchmark.h>

#include <vector>

#include "btree/btree.h"
#include "storage/buffer_pool.h"
#include "util/random.h"

namespace bulkdel {
namespace {

struct TreeFixture {
  TreeFixture(int64_t n, size_t pool_pages = 4096)
      : pool(&disk, pool_pages * kPageSize) {
    tree = std::make_unique<BTree>(*BTree::Create(&pool));
    Random rng(7);
    for (int64_t i = 0; i < n; ++i) {
      (void)tree->Insert(static_cast<int64_t>(rng.Next() >> 16),
                         Rid(static_cast<PageId>(i + 1),
                             static_cast<uint16_t>(i % 32)));
    }
  }
  DiskManager disk;
  BufferPool pool;
  std::unique_ptr<BTree> tree;
};

void BM_Insert(benchmark::State& state) {
  TreeFixture f(state.range(0));
  Random rng(99);
  int64_t i = 0;
  for (auto _ : state) {
    (void)f.tree->Insert(static_cast<int64_t>(rng.Next() >> 8),
                         Rid(static_cast<PageId>(1000000 + i), 0));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Insert)->Arg(10000)->Arg(100000);

void BM_Search(benchmark::State& state) {
  TreeFixture f(state.range(0));
  Random rng(7);
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < state.range(0); ++i) {
    keys.push_back(static_cast<int64_t>(rng.Next() >> 16));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tree->Search(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Search)->Arg(10000)->Arg(100000);

void BM_TraditionalDelete(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    TreeFixture f(state.range(0));
    std::vector<KeyRid> entries;
    (void)f.tree->ScanAll([&](int64_t k, const Rid& rid, uint16_t) {
      entries.emplace_back(k, rid);
      return Status::OK();
    });
    state.ResumeTiming();
    for (size_t i = 0; i < entries.size(); i += 10) {
      (void)f.tree->Delete(entries[i].key, entries[i].rid);
    }
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(entries.size() / 10));
  }
}
BENCHMARK(BM_TraditionalDelete)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_BulkDeleteSortedKeys(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    TreeFixture f(state.range(0));
    std::vector<int64_t> keys;
    (void)f.tree->ScanAll([&](int64_t k, const Rid&, uint16_t) {
      if (keys.size() % 10 == 0 || keys.empty() || keys.back() != k) {
        // take every ~10th distinct key
      }
      keys.push_back(k);
      return Status::OK();
    });
    std::vector<int64_t> doomed;
    for (size_t i = 0; i < keys.size(); i += 10) doomed.push_back(keys[i]);
    state.ResumeTiming();
    (void)f.tree->BulkDeleteSortedKeys(doomed, ReorgMode::kFreeAtEmpty,
                                       nullptr);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(doomed.size()));
  }
}
BENCHMARK(BM_BulkDeleteSortedKeys)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_BulkLoad(benchmark::State& state) {
  std::vector<KeyRid> entries;
  for (int64_t i = 0; i < state.range(0); ++i) {
    entries.emplace_back(i * 3, Rid(static_cast<PageId>(i + 1), 0));
  }
  for (auto _ : state) {
    state.PauseTiming();
    DiskManager disk;
    BufferPool pool(&disk, 4096 * kPageSize);
    auto tree = *BTree::Create(&pool);
    state.ResumeTiming();
    (void)tree.BulkLoad(entries);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(entries.size()));
  }
}
BENCHMARK(BM_BulkLoad)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_LeafScan(benchmark::State& state) {
  TreeFixture f(state.range(0));
  for (auto _ : state) {
    uint64_t n = 0;
    (void)f.tree->ScanAll([&](int64_t, const Rid&, uint16_t) {
      ++n;
      return Status::OK();
    });
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LeafScan)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bulkdel

BENCHMARK_MAIN();

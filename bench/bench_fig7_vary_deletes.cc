// Figure 7 / Experiment 1: vary the number of deleted records (5–20 %),
// one unclustered index, 5 MB memory (scaled).
// Series: sorted/trad, not sorted/trad, bulk delete (vertical sort/merge).
//
// Expected shape: both traditional variants climb steeply with the delete
// fraction; bulk delete stays nearly flat; at 20 % the gap to not-sorted
// traditional approaches an order of magnitude.

#include <cstdio>

#include "bench/bench_common.h"

namespace bulkdel {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  size_t memory = config.ScaledMemoryBytes(5.0);
  std::printf("Figure 7: %llu tuples x %u B, 1 unclustered index, %zu KiB\n",
              static_cast<unsigned long long>(config.n_tuples),
              config.tuple_size, memory / 1024);

  struct SeriesDef {
    const char* name;
    Strategy strategy;
  };
  const SeriesDef series[] = {
      {"sorted/trad", Strategy::kTraditionalSorted},
      {"not sorted/trad", Strategy::kTraditional},
      {"bulk delete", Strategy::kVerticalSortMerge},
  };
  ResultTable table("Figure 7: vary deleted tuples, 1 unclustered index",
                    "deleted (%)",
                    {"sorted/trad", "not sorted/trad", "bulk delete"});
  for (double fraction : {0.05, 0.10, 0.15, 0.20}) {
    char x[16];
    std::snprintf(x, sizeof(x), "%.0f%%", fraction * 100);
    for (const SeriesDef& s : series) {
      auto bench = BuildBenchDb(config, {"A"}, memory);
      if (!bench.ok()) {
        std::fprintf(stderr, "setup: %s\n", bench.status().ToString().c_str());
        return 1;
      }
      auto report = RunDelete(&*bench, fraction, s.strategy);
      if (!report.ok()) {
        std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
        return 1;
      }
      MaybeWriteTrace(config, *report);
      table.AddCell(x, s.name, report->simulated_minutes(),
                    static_cast<double>(report->wall_micros) / 1000.0);
    }
  }
  table.Print();
  MaybeExportPerfetto(config);
  std::printf(
      "\npaper (Fig. 7, 1M x 512B): at 20%% — not sorted/trad >2h, "
      "sorted/trad ~1h20m,\nbulk delete ~30min (nearly flat across "
      "5-20%%).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

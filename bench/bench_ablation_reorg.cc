// Ablation for §2.3 (reorganization): free-at-empty vs full leaf compaction
// with inner rebuild vs the incremental base-node scheme. Measures (a) the
// bulk delete itself and (b) the cost of a full index scan afterwards — the
// payoff of compaction is a denser leaf level for later readers.

#include <cstdio>

#include "bench/bench_common.h"

namespace bulkdel {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  size_t memory = config.ScaledMemoryBytes(5.0);
  std::printf("Ablation: reorganization modes, 1 index, 60%% deleted\n");

  struct ModeDef {
    const char* name;
    ReorgMode mode;
  };
  const ModeDef modes[] = {
      {"free-at-empty", ReorgMode::kFreeAtEmpty},
      {"compact+rebuild", ReorgMode::kCompactAndRebuild},
      {"base-node incr.", ReorgMode::kIncrementalBaseNode},
  };

  ResultTable table("Reorganization modes, 60% bulk delete", "metric",
                    {"free-at-empty", "compact+rebuild", "base-node incr."});
  std::printf("%-18s %14s %14s %14s %14s\n", "mode", "delete(min)",
              "scan-after(min)", "leaves", "height");
  for (const ModeDef& m : modes) {
    DatabaseOptions options;
    options.memory_budget_bytes = memory;
    options.reorg = m.mode;
    auto db = *Database::Create(options);
    WorkloadSpec spec;
    spec.n_tuples = config.n_tuples;
    spec.n_int_columns = config.n_int_columns;
    spec.tuple_size = config.tuple_size;
    spec.seed = config.seed;
    auto workload = SetUpPaperDatabase(db.get(), spec, {"A"});
    if (!workload.ok()) return 1;
    db->disk().ResetStats();

    BulkDeleteSpec bd;
    bd.table = "R";
    bd.key_column = "A";
    bd.keys = workload->MakeDeleteKeys(0.6, 3);
    auto report = db->BulkDelete(bd, Strategy::kVerticalSortMerge);
    if (!report.ok()) {
      std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
      return 1;
    }
    double delete_min = report->simulated_minutes();

    // Post-delete full scan cost from a cold cache.
    auto* index = db->GetIndex("R", "A");
    (void)db->pool().Reset();
    IoStats before = db->disk().stats();
    uint64_t n = 0;
    Status s = index->tree->ScanAll([&](int64_t, const Rid&, uint16_t) {
      ++n;
      return Status::OK();
    });
    if (!s.ok()) return 1;
    IoStats scan = db->disk().stats() - before;
    double scan_min = static_cast<double>(scan.simulated_micros) / 60e6;

    std::printf("%-18s %14.2f %14.3f %14u %14d\n", m.name, delete_min,
                scan_min, index->tree->num_leaves(), index->tree->height());
    table.AddCell("delete", m.name, delete_min);
    table.AddCell("scan-after", m.name, scan_min);
  }
  table.Print();
  std::printf(
      "\nexpectation: compaction costs extra during the delete but shrinks "
      "the\nleaf level (~60%% fewer leaves), making the post-delete scan "
      "cheaper;\nfree-at-empty leaves sparse pages in place (the paper's "
      "experimental\nsetting — with uniformly random deletes almost no page "
      "empties).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

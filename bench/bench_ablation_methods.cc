// Ablation: the three ⋉̸ methods (sort/merge, classic hash, range-
// partitioned hash) on the same vertical plan, as the delete-list size
// crosses the memory budget (§2.2's join-method tradeoff). The paper argues
// the differences mirror sort-vs-hash joins and are small next to the
// horizontal/vertical gap — this bench quantifies that for our substrate.

#include <cstdio>

#include "bench/bench_common.h"

namespace bulkdel {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::printf("Ablation: ⋉̸ method sweep, 3 indices\n");

  struct SeriesDef {
    const char* name;
    Strategy strategy;
  };
  const SeriesDef series[] = {
      {"sort/merge", Strategy::kVerticalSortMerge},
      {"classic hash", Strategy::kVerticalHash},
      {"partitioned hash", Strategy::kVerticalPartitionedHash},
      {"optimizer", Strategy::kOptimizer},
  };

  for (double paper_mb : {5.0, 0.25}) {
    size_t memory = config.ScaledMemoryBytes(paper_mb);
    char title[128];
    std::snprintf(title, sizeof(title),
                  "⋉̸ methods at %zu KiB memory (paper-scale %.2f MB), in SECONDS",
                  memory / 1024, paper_mb);
    ResultTable table(title, "deleted (%)",
                      {"sort/merge", "classic hash", "partitioned hash",
                       "optimizer"});
    for (double fraction : {0.05, 0.15, 0.30}) {
      char x[16];
      std::snprintf(x, sizeof(x), "%.0f%%", fraction * 100);
      for (const SeriesDef& s : series) {
        auto bench = BuildBenchDb(config, {"A", "B", "C"}, memory);
        if (!bench.ok()) {
          std::fprintf(stderr, "setup: %s\n",
                       bench.status().ToString().c_str());
          return 1;
        }
        auto report = RunDelete(&*bench, fraction, s.strategy);
        if (!report.ok()) {
          std::fprintf(stderr, "run: %s\n",
                       report.status().ToString().c_str());
          return 1;
        }
        table.AddCell(x, s.name, report->simulated_seconds());
      }
    }
    table.Print();
  }
  std::printf(
      "\nexpectation: all three vertical methods within a small factor of "
      "each\nother (the hash variants skip the feed sorts; partitioned pays "
      "staging\nI/O once the list outgrows memory); the optimizer should "
      "track the best.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

// Figure 8 / Experiment 2: vary the number of indices (1–3) at 15 % deletes,
// unclustered indices, 5 MB memory (scaled).
// Series: sorted/trad, not sorted/trad, drop/create, bulk delete.
//
// Expected shape: the traditional variants grow with every added index (one
// more root-to-leaf probe per deleted record each); bulk delete adds only
// one cheap sequential leaf pass per index and stays almost flat. Note on
// drop/create: in the paper's prototype index creation was slow, making
// drop/create the worst series; our rebuild uses external sort + bulk
// loading, so drop/create behaves like the *commercial* system of Fig. 1
// (flat, beating traditional). EXPERIMENTS.md discusses the difference.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace bulkdel {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  size_t memory = config.ScaledMemoryBytes(5.0);
  std::printf(
      "Figure 8: %llu tuples x %u B, 15%% deletes, %zu KiB, %d thread(s)\n",
      static_cast<unsigned long long>(config.n_tuples), config.tuple_size,
      memory / 1024, config.exec_threads);

  struct SeriesDef {
    const char* name;
    Strategy strategy;
  };
  const SeriesDef series[] = {
      {"sorted/trad", Strategy::kTraditionalSorted},
      {"not sorted/trad", Strategy::kTraditional},
      {"drop/create", Strategy::kDropCreate},
      {"bulk delete", Strategy::kVerticalSortMerge},
  };
  ResultTable table("Figure 8: vary number of indices, 15% deleted",
                    "# indices",
                    {"sorted/trad", "not sorted/trad", "drop/create",
                     "bulk delete"});
  const std::vector<std::string> all_columns = {"A", "B", "C"};
  for (int n_indices = 1; n_indices <= 3; ++n_indices) {
    std::vector<std::string> columns(all_columns.begin(),
                                     all_columns.begin() + n_indices);
    std::string x = std::to_string(n_indices);
    for (const SeriesDef& s : series) {
      if (s.strategy == Strategy::kDropCreate && n_indices == 1) {
        // No secondary index to drop: the paper omits this point too.
        continue;
      }
      auto bench = BuildBenchDb(config, columns, memory);
      if (!bench.ok()) {
        std::fprintf(stderr, "setup: %s\n", bench.status().ToString().c_str());
        return 1;
      }
      auto report = RunDelete(&*bench, 0.15, s.strategy);
      if (!report.ok()) {
        std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
        return 1;
      }
      MaybeWriteTrace(config, *report);
      table.AddCell(x, s.name, report->simulated_minutes());
    }
  }
  table.Print();
  std::printf(
      "\npaper (Fig. 8, 1M x 512B): at 3 indices — not sorted/trad >3h,\n"
      "sorted/trad >2h, drop/create worst in *their* prototype (slow index\n"
      "creation; the commercial system of Fig. 1 shows it flat instead),\n"
      "bulk delete ~30 min.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::bench::Run(argc, argv); }

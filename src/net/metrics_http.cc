#include "net/metrics_http.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "core/database.h"
#include "obs/exposition.h"
#include "obs/statement_registry.h"

namespace bulkdel {
namespace net {

namespace {

/// Largest request head we accept; a scrape request line is tens of bytes.
constexpr size_t kMaxRequestBytes = 8192;

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer gone; scrape responses are best-effort
    }
    off += static_cast<size_t>(n);
  }
}

std::string HttpResponse(int code, const char* reason,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\n"
                    "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                    "Content-Length: " +
                    std::to_string(body.size()) +
                    "\r\n"
                    "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(Database* db, MetricsHttpOptions options)
    : db_(db), options_(std::move(options)) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Result<std::unique_ptr<MetricsHttpServer>> MetricsHttpServer::Start(
    Database* db, MetricsHttpOptions options) {
  if (db == nullptr) {
    return Status::InvalidArgument("metrics endpoint needs a database");
  }
  std::unique_ptr<MetricsHttpServer> server(
      new MetricsHttpServer(db, std::move(options)));
  BULKDEL_RETURN_IF_ERROR(server->Listen());
  server->accept_thread_ =
      std::thread([s = server.get()] { s->AcceptLoop(); });
  server->Log("metrics on http://" + server->options_.host + ":" +
              std::to_string(server->port_) + "/metrics");
  return server;
}

Status MetricsHttpServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IOError(std::string("bind ") + options_.host + ":" +
                               std::to_string(options_.port) + ": " +
                               std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 16) < 0) {
    Status s = Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    Status s =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

void MetricsHttpServer::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Stop() closed the listener
    }
    // Short timeouts so a stalled scraper cannot wedge the (serial) loop.
    timeval timeout{};
    timeout.tv_sec = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    HandleConnection(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::HandleConnection(int fd) {
  // Read until the end of the request head (we ignore headers and bodies).
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (request.find('\n') == std::string::npos) return;  // no request line
      break;  // request line arrived; headers cut short is fine
    }
    request.append(buf, static_cast<size_t>(n));
  }
  size_t eol = request.find('\n');
  if (eol == std::string::npos) return;
  std::string line = request.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  size_t sp1 = line.find(' ');
  size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  std::string method =
      sp1 == std::string::npos ? line : line.substr(0, sp1);
  std::string target =
      sp1 == std::string::npos || sp2 == std::string::npos
          ? std::string()
          : line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    WriteAll(fd, HttpResponse(405, "Method Not Allowed",
                              "only GET is supported\n"));
    return;
  }
  if (target != "/metrics") {
    WriteAll(fd, HttpResponse(404, "Not Found", "try /metrics\n"));
    return;
  }
  obs::StatementRegistry& statements = obs::StatementRegistry::Global();
  std::string body = obs::PrometheusText(
      db_->metrics().Snapshot(),
      {{"sessions_active", statements.sessions_active()},
       {"statements_inflight", statements.statements_inflight()},
       {"statements_total", statements.statements_begun()}});
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  WriteAll(fd, HttpResponse(200, "OK", body));
}

Status MetricsHttpServer::Stop() {
  if (stopped_.exchange(true)) return Status::OK();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  Log("metrics endpoint stopped after " + std::to_string(scrapes()) +
      " scrape(s)");
  return Status::OK();
}

void MetricsHttpServer::Log(const std::string& line) {
  if (options_.logger) options_.logger("[metrics] " + line);
}

}  // namespace net
}  // namespace bulkdel

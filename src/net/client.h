#ifndef BULKDEL_NET_CLIENT_H_
#define BULKDEL_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/wire.h"
#include "util/result.h"

namespace bulkdel {
namespace net {

/// Blocking single-connection client for the wire protocol (docs/SERVER.md).
/// One outstanding request at a time — the protocol is strictly
/// request/response per connection. Not thread-safe; give each thread its
/// own Client (that is the whole point of the server).
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;

  static Result<Client> Connect(const std::string& host, uint16_t port,
                                size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Runs one SQL statement; returns the server's result line, or the
  /// reconstructed server-side Status (same code, same message) on error.
  Result<std::string> Execute(const std::string& statement);

  /// Liveness probe.
  Status Ping();

  bool connected() const { return fd_ >= 0; }
  void Close();

 private:
  Result<std::string> RoundTrip(FrameType type, const std::string& payload);

  int fd_ = -1;
  size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace net
}  // namespace bulkdel

#endif  // BULKDEL_NET_CLIENT_H_

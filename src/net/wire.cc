#include "net/wire.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

namespace bulkdel {
namespace net {

namespace {

uint32_t LoadLe32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

void AppendLe32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

/// Writes all of [data, data+size); EINTR-safe, no SIGPIPE.
Status WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes. `*eof_at_start` distinguishes a clean close
/// on a message boundary from a mid-frame truncation.
Status ReadAll(int fd, char* data, size_t size, bool* eof_at_start) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (eof_at_start != nullptr && got == 0) {
        *eof_at_start = true;
        return Status::Aborted("connection closed");
      }
      return Status::Corruption("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

void AppendFrame(std::string* out, FrameType type, std::string_view payload) {
  AppendLe32(out, static_cast<uint32_t>(payload.size() + 1));
  out->push_back(static_cast<char>(type));
  out->append(payload);
}

DecodeResult DecodeFrame(std::string_view data, size_t max_frame_bytes,
                         Frame* frame, size_t* consumed) {
  if (data.size() < kFrameHeaderBytes) return DecodeResult::kNeedMore;
  uint32_t length = LoadLe32(data.data());
  if (length < 1 || length > max_frame_bytes) return DecodeResult::kBad;
  if (data.size() < kFrameHeaderBytes + length) return DecodeResult::kNeedMore;
  frame->type = static_cast<FrameType>(
      static_cast<unsigned char>(data[kFrameHeaderBytes]));
  frame->payload.assign(data.substr(kFrameHeaderBytes + 1, length - 1));
  *consumed = kFrameHeaderBytes + length;
  return DecodeResult::kFrame;
}

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  std::string encoded;
  encoded.reserve(kFrameHeaderBytes + 1 + payload.size());
  AppendFrame(&encoded, type, payload);
  return WriteAll(fd, encoded.data(), encoded.size());
}

Status ReadFrame(int fd, size_t max_frame_bytes, Frame* frame) {
  char header[kFrameHeaderBytes];
  bool eof_at_start = false;
  Status s = ReadAll(fd, header, sizeof(header), &eof_at_start);
  if (!s.ok()) return s;
  uint32_t length = LoadLe32(header);
  if (length < 1 || length > max_frame_bytes) {
    return Status::Corruption("invalid frame length " + std::to_string(length));
  }
  std::string body(length, '\0');
  BULKDEL_RETURN_IF_ERROR(ReadAll(fd, body.data(), body.size(), nullptr));
  frame->type = static_cast<FrameType>(static_cast<unsigned char>(body[0]));
  frame->payload.assign(body, 1, body.size() - 1);
  return Status::OK();
}

std::string EncodeErrorPayload(const Status& status) {
  std::string payload;
  payload.push_back(static_cast<char>(status.code()));
  payload.append(status.message());
  return payload;
}

Status DecodeErrorPayload(std::string_view payload) {
  if (payload.empty()) return Status::Internal("empty error payload");
  auto code = static_cast<StatusCode>(static_cast<unsigned char>(payload[0]));
  if (code == StatusCode::kOk || code > StatusCode::kInternal) {
    return Status::Internal("bad wire status code; message: " +
                            std::string(payload.substr(1)));
  }
  return Status(code, std::string(payload.substr(1)));
}

}  // namespace net
}  // namespace bulkdel

#ifndef BULKDEL_NET_SERVER_H_
#define BULKDEL_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/sql.h"
#include "net/metrics_http.h"
#include "net/wire.h"
#include "obs/slow_query_log.h"
#include "util/result.h"

namespace bulkdel {
namespace net {

struct ServerOptions {
  /// Bind address. The server is a loopback/experiment front end; binding a
  /// public interface is the operator's explicit choice.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks, Server::port() reports it.
  uint16_t port = 0;
  int listen_backlog = 64;
  /// Bounded worker admission: at most this many connection threads run at
  /// once; connection N+1 is answered with kError/kResourceExhausted and
  /// closed rather than queued, so a flood degrades loudly instead of
  /// building an invisible backlog.
  int max_sessions = 64;
  /// Frame-length cap enforced on every received frame (docs/SERVER.md).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-session delete-list bound handed to the SQL parser.
  size_t max_delete_keys = 1u << 20;
  /// Strategy each new session starts with (SET STRATEGY rebinds per
  /// session).
  Strategy default_strategy = Strategy::kOptimizer;
  /// Optional log sink for one-line connection/lifecycle events. Called from
  /// server threads; must be thread-safe. Null = silent.
  std::function<void(const std::string&)> logger;
  /// Port for the GET-only /metrics HTTP endpoint (Prometheus text
  /// exposition; docs/OBSERVABILITY.md). -1 = no endpoint; 0 = ephemeral,
  /// Server::metrics_port() reports the bound port. Shares `host`.
  int metrics_port = -1;
  /// Statements slower than this many host nanoseconds append a JSONL
  /// record to `slow_query_log`. 0 = capture off.
  int64_t slow_query_ns = 0;
  /// Path of the slow-query JSONL sink; empty = capture off.
  std::string slow_query_log;
};

/// Multi-client SQL server: one accept loop, one thread per admitted
/// connection, every session funneling statements into one shared Database
/// through its own SqlSession (docs/SERVER.md).
///
/// Lifecycle: Start() binds/listens and returns once the accept loop runs.
/// Stop() drains gracefully — it stops accepting, lets every in-flight
/// statement finish and its response go out, wakes idle sessions off their
/// blocking read, then joins all threads. The destructor calls Stop().
///
/// Instrumentation (db->metrics()): net.conns gauge, net.accepted /
/// net.rejected / net.bytes_in / net.bytes_out counters, net.req_ns
/// per-statement latency histogram.
class Server {
 public:
  static Result<std::unique_ptr<Server>> Start(Database* db,
                                               ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolves option `port == 0`).
  uint16_t port() const { return port_; }

  /// Bound port of the /metrics endpoint, or 0 when disabled.
  uint16_t metrics_port() const;

  /// Slow-query records appended so far (0 when capture is off).
  uint64_t slow_queries_logged() const;

  /// Graceful shutdown; idempotent. Returns after every session thread has
  /// exited.
  Status Stop();

  int active_sessions() const {
    return active_sessions_.load(std::memory_order_relaxed);
  }
  uint64_t sessions_served() const {
    return sessions_served_.load(std::memory_order_relaxed);
  }
  uint64_t statements_served() const {
    return statements_served_.load(std::memory_order_relaxed);
  }

 private:
  Server(Database* db, ServerOptions options);

  Status Listen();
  void AcceptLoop();
  void SessionLoop(uint64_t id, int fd);
  /// Joins threads of sessions that already exited (accept-loop housekeeping
  /// so a long-lived server does not accumulate dead std::thread objects).
  void ReapFinishedSessions();
  void Log(const std::string& line);

  Database* db_;
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  /// Live observability plane: /metrics endpoint + shared slow-query sink
  /// (both optional; see ServerOptions). The endpoint outlives the SQL
  /// drain in Stop() so the server stays scrapeable while draining.
  std::unique_ptr<MetricsHttpServer> metrics_http_;
  std::unique_ptr<obs::SlowQueryLog> slow_log_;

  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  std::mutex mu_;
  uint64_t next_session_id_ = 1;
  std::map<uint64_t, std::pair<int, std::thread>> sessions_;  ///< id -> fd+thread
  std::vector<uint64_t> finished_;  ///< ids whose loop returned; join pending

  std::atomic<int> active_sessions_{0};
  std::atomic<uint64_t> sessions_served_{0};
  std::atomic<uint64_t> statements_served_{0};

  // Instruments resolved once at Start().
  obs::Gauge* conns_gauge_ = nullptr;
  obs::Counter* accepted_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Counter* bytes_in_counter_ = nullptr;
  obs::Counter* bytes_out_counter_ = nullptr;
  obs::Histogram* req_ns_histogram_ = nullptr;
};

}  // namespace net
}  // namespace bulkdel

#endif  // BULKDEL_NET_SERVER_H_

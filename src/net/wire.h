#ifndef BULKDEL_NET_WIRE_H_
#define BULKDEL_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace bulkdel {
namespace net {

/// Wire protocol (docs/SERVER.md): every message is one length-prefixed
/// frame, symmetric in both directions:
///
///   [u32 length, little-endian] [u8 type] [payload: length-1 bytes]
///
/// `length` counts the type byte plus the payload, so a valid frame has
/// length >= 1. Payloads are raw bytes (SQL text and result text are UTF-8;
/// kError carries a 1-byte StatusCode followed by the message). A frame whose
/// length exceeds the receiver's limit is a protocol error: the receiver
/// must answer kError/kResourceExhausted (server) or fail the call (client)
/// and close, since the stream can no longer be trusted to be in sync.
enum class FrameType : uint8_t {
  // Requests.
  kQuery = 'Q',  ///< payload = one SQL statement
  kPing = 'P',   ///< liveness probe; payload ignored
  // Responses.
  kOk = 'R',     ///< payload = human-readable result line
  kError = 'E',  ///< payload = [u8 StatusCode][message]
};

/// Fixed header size: u32 length prefix.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Default cap on length (type + payload). Statements routinely carry large
/// IN-lists; 4 MiB bounds a hostile or corrupt length prefix while leaving
/// room for ~400k-key delete lists.
inline constexpr size_t kDefaultMaxFrameBytes = 4u << 20;

struct Frame {
  FrameType type = FrameType::kQuery;
  std::string payload;
};

/// Appends one encoded frame to `out`.
void AppendFrame(std::string* out, FrameType type, std::string_view payload);

/// Outcome of one streaming decode attempt.
enum class DecodeResult {
  kFrame,     ///< a complete frame was decoded; *consumed bytes were used
  kNeedMore,  ///< the buffer holds only a prefix of a frame
  kBad,       ///< malformed (zero length or over `max_frame_bytes`)
};

/// Decodes the first frame of `data`. On kFrame, `*frame` holds it and
/// `*consumed` the encoded size. On kNeedMore nothing is written. On kBad the
/// stream is unrecoverable (the length prefix itself is invalid).
DecodeResult DecodeFrame(std::string_view data, size_t max_frame_bytes,
                         Frame* frame, size_t* consumed);

/// Blocking full-frame socket I/O. WriteFrame loops until every byte is
/// written (EINTR-safe, SIGPIPE suppressed). ReadFrame loops until one full
/// frame arrives. Errors:
///   kAborted     clean EOF before any header byte (peer closed)
///   kCorruption  mid-frame EOF or an invalid/oversized length prefix
///   kIOError     errno-level socket failure
Status WriteFrame(int fd, FrameType type, std::string_view payload);
Status ReadFrame(int fd, size_t max_frame_bytes, Frame* frame);

/// Response payload helpers: kError frames carry the StatusCode so the
/// client can reconstruct the same Status the statement produced server-side.
std::string EncodeErrorPayload(const Status& status);
Status DecodeErrorPayload(std::string_view payload);

}  // namespace net
}  // namespace bulkdel

#endif  // BULKDEL_NET_WIRE_H_

#include "net/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "obs/statement_registry.h"
#include "util/clock.h"

namespace bulkdel {
namespace net {

Server::Server(Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Result<std::unique_ptr<Server>> Server::Start(Database* db,
                                              ServerOptions options) {
  if (db == nullptr) {
    return Status::InvalidArgument("server needs a database");
  }
  if (options.max_sessions < 1) {
    return Status::InvalidArgument("max_sessions must be >= 1");
  }
  std::unique_ptr<Server> server(new Server(db, std::move(options)));
  BULKDEL_RETURN_IF_ERROR(server->Listen());
  obs::MetricsRegistry& metrics = db->metrics();
  server->conns_gauge_ = metrics.gauge(obs::metric_names::kNetConns);
  server->accepted_counter_ = metrics.counter(obs::metric_names::kNetAccepted);
  server->rejected_counter_ = metrics.counter(obs::metric_names::kNetRejected);
  server->bytes_in_counter_ = metrics.counter(obs::metric_names::kNetBytesIn);
  server->bytes_out_counter_ = metrics.counter(obs::metric_names::kNetBytesOut);
  server->req_ns_histogram_ = metrics.histogram(obs::metric_names::kNetReqNs);
  if (server->options_.metrics_port >= 0) {
    MetricsHttpOptions http;
    http.host = server->options_.host;
    http.port = static_cast<uint16_t>(server->options_.metrics_port);
    http.logger = server->options_.logger;
    BULKDEL_ASSIGN_OR_RETURN(server->metrics_http_,
                             MetricsHttpServer::Start(db, std::move(http)));
  }
  if (server->options_.slow_query_ns > 0 &&
      !server->options_.slow_query_log.empty()) {
    server->slow_log_ = std::make_unique<obs::SlowQueryLog>(
        server->options_.slow_query_log, server->options_.slow_query_ns);
    BULKDEL_RETURN_IF_ERROR(server->slow_log_->open_status());
    server->Log("slow-query capture > " +
                std::to_string(server->options_.slow_query_ns) + " ns -> " +
                server->options_.slow_query_log);
  }
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  server->Log("listening on " + server->options_.host + ":" +
              std::to_string(server->port_));
  return server;
}

uint16_t Server::metrics_port() const {
  return metrics_http_ != nullptr ? metrics_http_->port() : 0;
}

uint64_t Server::slow_queries_logged() const {
  return slow_log_ != nullptr ? slow_log_->records() : 0;
}

Status Server::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IOError(std::string("bind ") + options_.host + ":" +
                               std::to_string(options_.port) + ": " +
                               std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    Status s = Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    Status s = Status::IOError(std::string("getsockname: ") +
                               std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

void Server::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() closed the listen socket (or it failed hard): accept no more.
      break;
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ReapFinishedSessions();
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<int>(sessions_.size()) >= options_.max_sessions) {
      // Bounded admission: refuse loudly. The write is best-effort — the
      // refused client may already be gone.
      WriteFrame(fd, FrameType::kError,
                 EncodeErrorPayload(Status::ResourceExhausted(
                     "server busy: " + std::to_string(options_.max_sessions) +
                     " sessions active")))
          .ok();
      ::close(fd);
      rejected_counter_->Add();
      Log("rejected connection (at max_sessions=" +
          std::to_string(options_.max_sessions) + ")");
      continue;
    }
    uint64_t id = next_session_id_++;
    accepted_counter_->Add();
    sessions_served_.fetch_add(1, std::memory_order_relaxed);
    active_sessions_.fetch_add(1, std::memory_order_relaxed);
    conns_gauge_->Set(active_sessions_.load(std::memory_order_relaxed));
    std::thread worker([this, id, fd] { SessionLoop(id, fd); });
    sessions_.emplace(id, std::make_pair(fd, std::move(worker)));
    Log("session " + std::to_string(id) + " connected");
  }
}

void Server::SessionLoop(uint64_t id, int fd) {
  SqlSession sql;
  sql.strategy = options_.default_strategy;
  sql.max_delete_keys = options_.max_delete_keys;
  // Register with the live observability plane: the session rows in
  // sys.sessions, its statements attribute to it in sys.statements, and
  // over-threshold statements land in the shared slow-query log.
  sql.session_id =
      obs::StatementRegistry::Global().RegisterSession("tcp:" +
                                                       std::to_string(id));
  sql.slow_log = slow_log_.get();
  uint64_t statements = 0;
  std::string close_reason = "peer closed";
  while (true) {
    Frame frame;
    Status s = ReadFrame(fd, options_.max_frame_bytes, &frame);
    if (!s.ok()) {
      if (!s.IsAborted()) {
        // Framing is broken (oversized length, mid-frame EOF, socket error):
        // answer best-effort, then drop the connection — the stream can no
        // longer be re-synchronized.
        WriteFrame(fd, FrameType::kError, EncodeErrorPayload(s)).ok();
        close_reason = s.ToString();
      }
      break;
    }
    int64_t begin_ns = MonotonicNanos();
    bytes_in_counter_->Add(static_cast<int64_t>(frame.payload.size()));
    Status write;
    switch (frame.type) {
      case FrameType::kPing:
        write = WriteFrame(fd, FrameType::kOk, "pong");
        bytes_out_counter_->Add(4);
        break;
      case FrameType::kQuery: {
        Result<std::string> result =
            ExecuteStatement(db_, &sql, frame.payload);
        ++statements;
        statements_served_.fetch_add(1, std::memory_order_relaxed);
        if (result.ok()) {
          write = WriteFrame(fd, FrameType::kOk, *result);
          bytes_out_counter_->Add(static_cast<int64_t>(result->size()));
        } else {
          std::string payload = EncodeErrorPayload(result.status());
          write = WriteFrame(fd, FrameType::kError, payload);
          bytes_out_counter_->Add(static_cast<int64_t>(payload.size()));
        }
        break;
      }
      default:
        // Unknown type with intact framing: report and keep the session.
        write = WriteFrame(
            fd, FrameType::kError,
            EncodeErrorPayload(Status::InvalidArgument(
                "unexpected frame type " +
                std::to_string(static_cast<int>(frame.type)))));
        break;
    }
    req_ns_histogram_->Observe(MonotonicNanos() - begin_ns);
    if (!write.ok()) {
      close_reason = write.ToString();
      break;
    }
    if (draining_.load(std::memory_order_acquire)) {
      close_reason = "drained";
      break;
    }
  }
  ::close(fd);
  obs::StatementRegistry::Global().UnregisterSession(sql.session_id);
  active_sessions_.fetch_sub(1, std::memory_order_relaxed);
  conns_gauge_->Set(active_sessions_.load(std::memory_order_relaxed));
  Log("session " + std::to_string(id) + " closed after " +
      std::to_string(statements) + " statement(s): " + close_reason);
  std::lock_guard<std::mutex> lock(mu_);
  finished_.push_back(id);
}

void Server::ReapFinishedSessions() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t id : finished_) {
      auto it = sessions_.find(id);
      if (it == sessions_.end()) continue;
      done.push_back(std::move(it->second.second));
      sessions_.erase(it);
    }
    finished_.clear();
  }
  for (std::thread& t : done) t.join();
}

Status Server::Stop() {
  if (stopped_.exchange(true)) return Status::OK();
  // Phase 1: no new work. The accept loop exits when the listen fd dies;
  // sessions finish the statement they are executing (the drain check sits
  // after the response write, so in-flight work always completes and its
  // result always goes out).
  draining_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Phase 2: wake sessions that are idle in ReadFrame. SHUT_RD makes their
  // blocking read return 0 (clean EOF) while leaving the write side open, so
  // a response racing the shutdown is still delivered.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, entry] : sessions_) {
      ::shutdown(entry.first, SHUT_RD);
    }
  }
  // Phase 3: join everything.
  std::map<uint64_t, std::pair<int, std::thread>> remaining;
  {
    std::lock_guard<std::mutex> lock(mu_);
    remaining.swap(sessions_);
    finished_.clear();
  }
  for (auto& [id, entry] : remaining) {
    if (entry.second.joinable()) entry.second.join();
  }
  listen_fd_ = -1;
  // The /metrics endpoint drains last so the server stays scrapeable while
  // in-flight statements finish.
  if (metrics_http_ != nullptr) metrics_http_->Stop();
  Log("stopped: served " + std::to_string(sessions_served()) +
      " session(s), " + std::to_string(statements_served()) +
      " statement(s)");
  return Status::OK();
}

void Server::Log(const std::string& line) {
  if (options_.logger) options_.logger("[server] " + line);
}

}  // namespace net
}  // namespace bulkdel

#include "net/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace bulkdel {
namespace net {

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    max_frame_bytes_ = other.max_frame_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               size_t max_frame_bytes) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status s = Status::IOError(std::string("connect ") + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Client client;
  client.fd_ = fd;
  client.max_frame_bytes_ = max_frame_bytes;
  return client;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::string> Client::RoundTrip(FrameType type,
                                      const std::string& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  Status s = WriteFrame(fd_, type, payload);
  if (!s.ok()) {
    Close();
    return s;
  }
  Frame response;
  s = ReadFrame(fd_, max_frame_bytes_, &response);
  if (!s.ok()) {
    // EOF here means the server closed between our request and its response
    // (shutdown or admission rejection already delivered earlier).
    Close();
    return s;
  }
  if (response.type == FrameType::kOk) return std::move(response.payload);
  if (response.type == FrameType::kError) {
    return DecodeErrorPayload(response.payload);
  }
  Close();
  return Status::Corruption("unexpected response frame type " +
                            std::to_string(static_cast<int>(response.type)));
}

Result<std::string> Client::Execute(const std::string& statement) {
  return RoundTrip(FrameType::kQuery, statement);
}

Status Client::Ping() {
  Result<std::string> pong = RoundTrip(FrameType::kPing, "");
  return pong.ok() ? Status::OK() : pong.status();
}

}  // namespace net
}  // namespace bulkdel

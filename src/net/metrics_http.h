#ifndef BULKDEL_NET_METRICS_HTTP_H_
#define BULKDEL_NET_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "util/result.h"

namespace bulkdel {

class Database;

namespace net {

struct MetricsHttpOptions {
  /// Bind address; loopback by default, like the SQL listener.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks, MetricsHttpServer::port() reports it.
  uint16_t port = 0;
  /// Optional log sink (thread-safe; null = silent).
  std::function<void(const std::string&)> logger;
};

/// Minimal GET-only HTTP/1.1 endpoint serving the database's metrics in
/// Prometheus text exposition format at `/metrics` (obs/exposition.h),
/// including statement/session gauges from the global StatementRegistry.
/// Anything but `GET /metrics` gets 404; non-GET methods get 405. One
/// accept thread handles scrapes serially with short socket timeouts — a
/// scrape is a few KB and Prometheus polls on the order of seconds, so
/// serial service keeps the server to one thread and zero allocations of
/// session state. Connections close after each response.
///
/// Reading metrics only snapshots atomics; the endpoint never touches the
/// DiskManager, so scraping cannot perturb simulated I/O.
class MetricsHttpServer {
 public:
  static Result<std::unique_ptr<MetricsHttpServer>> Start(
      Database* db, MetricsHttpOptions options);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// The bound TCP port (resolves option `port == 0`).
  uint16_t port() const { return port_; }

  /// Closes the listener and joins the accept thread; idempotent.
  Status Stop();

  uint64_t scrapes() const {
    return scrapes_.load(std::memory_order_relaxed);
  }

 private:
  MetricsHttpServer(Database* db, MetricsHttpOptions options);

  Status Listen();
  void AcceptLoop();
  void HandleConnection(int fd);
  void Log(const std::string& line);

  Database* db_;
  MetricsHttpOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> scrapes_{0};
};

}  // namespace net
}  // namespace bulkdel

#endif  // BULKDEL_NET_METRICS_HTTP_H_

#ifndef BULKDEL_WORKLOAD_GENERATOR_H_
#define BULKDEL_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"
#include "util/result.h"

namespace bulkdel {

/// The paper's benchmark database (§4.1), scale-parameterized: one table R
/// with `n_int_columns` duplicate-free random integer attributes A, B, C, ...
/// padded to `tuple_size` bytes. The paper uses 1,000,000 tuples of 512 bytes
/// with ten integer attributes; the benchmarks default to a scaled-down
/// configuration with the memory budget scaled by the same factor.
struct WorkloadSpec {
  std::string table_name = "R";
  uint64_t n_tuples = 100000;
  int n_int_columns = 10;
  uint32_t tuple_size = 256;
  /// Physically order the table by column A (makes an index on A clustered).
  bool clustered_on_a = false;
  uint64_t seed = 20010407;  // ICDE 2001
};

/// The generated population: per indexed column, the value of every row in
/// row order. Used to build delete lists that hit existing rows.
struct Workload {
  WorkloadSpec spec;
  /// values[c][row] = value of int column c for that row (row = load order).
  std::vector<std::vector<int64_t>> values;
  std::vector<Rid> rids;  ///< RID of each loaded row, in load order

  /// A delete list for the paper's statement: the A-values of
  /// `fraction` * n_tuples distinct random rows (table D's contents).
  std::vector<int64_t> MakeDeleteKeys(double fraction, uint64_t seed) const;
};

/// Creates table R (schema per `spec`) in `db` and loads it. Indices should
/// be created *before* calling this so they are populated by the row inserts
/// (matching how the paper's tables were built), or afterwards via
/// drop/create-style bulk loading — see CreateIndexesThenLoad for the usual
/// path used by the benchmarks.
Result<Workload> LoadWorkload(Database* db, const WorkloadSpec& spec);

/// Convenience used by benchmarks: creates R, creates indices on the given
/// columns ("A" is unique + the key index; clustered if spec says so), then
/// loads the rows.
Result<Workload> SetUpPaperDatabase(Database* db, const WorkloadSpec& spec,
                                    const std::vector<std::string>& indexed_columns,
                                    const IndexOptions& a_options = {});

}  // namespace bulkdel

#endif  // BULKDEL_WORKLOAD_GENERATOR_H_

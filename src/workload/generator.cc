#include "workload/generator.h"

#include <algorithm>
#include <numeric>

#include "util/random.h"

namespace bulkdel {

namespace {
/// Duplicate-free random values: a shuffled permutation of a sparse range,
/// mirroring the paper ("each attribute is free of duplicates because
/// Jannink's B+-tree implementation does not support duplicates").
std::vector<int64_t> DistinctRandomValues(uint64_t n, Random* rng) {
  std::vector<int64_t> values(n);
  // Spread values over 8x the range so they look random, then shuffle.
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = static_cast<int64_t>(i * 8 + rng->Uniform(8));
  }
  for (uint64_t i = n; i > 1; --i) {
    std::swap(values[i - 1], values[rng->Uniform(i)]);
  }
  return values;
}
}  // namespace

std::vector<int64_t> Workload::MakeDeleteKeys(double fraction,
                                              uint64_t seed) const {
  Random rng(seed);
  uint64_t n = static_cast<uint64_t>(static_cast<double>(spec.n_tuples) *
                                     fraction);
  n = std::min<uint64_t>(n, spec.n_tuples);
  // Sample n distinct row positions (partial Fisher–Yates over an index
  // vector), then project their A values — exactly table D's construction.
  std::vector<uint64_t> rows(spec.n_tuples);
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<int64_t> keys;
  keys.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t j = i + rng.Uniform(spec.n_tuples - i);
    std::swap(rows[i], rows[j]);
    keys.push_back(values[0][rows[i]]);
  }
  return keys;
}

Result<Workload> LoadWorkload(Database* db, const WorkloadSpec& spec) {
  Workload workload;
  workload.spec = spec;

  Random rng(spec.seed);
  workload.values.resize(static_cast<size_t>(spec.n_int_columns));
  for (int c = 0; c < spec.n_int_columns; ++c) {
    workload.values[static_cast<size_t>(c)] =
        DistinctRandomValues(spec.n_tuples, &rng);
  }
  if (spec.clustered_on_a) {
    // Physically order by A: sort all columns by the A value.
    std::vector<uint64_t> order(spec.n_tuples);
    std::iota(order.begin(), order.end(), 0);
    const std::vector<int64_t>& a = workload.values[0];
    std::sort(order.begin(), order.end(),
              [&](uint64_t x, uint64_t y) { return a[x] < a[y]; });
    for (auto& column : workload.values) {
      std::vector<int64_t> sorted(spec.n_tuples);
      for (uint64_t i = 0; i < spec.n_tuples; ++i) {
        sorted[i] = column[order[i]];
      }
      column = std::move(sorted);
    }
  }

  workload.rids.reserve(spec.n_tuples);
  std::vector<int64_t> row(static_cast<size_t>(spec.n_int_columns));
  for (uint64_t i = 0; i < spec.n_tuples; ++i) {
    for (int c = 0; c < spec.n_int_columns; ++c) {
      row[static_cast<size_t>(c)] = workload.values[static_cast<size_t>(c)][i];
    }
    BULKDEL_ASSIGN_OR_RETURN(Rid rid, db->InsertRow(spec.table_name, row));
    workload.rids.push_back(rid);
  }
  return workload;
}

Result<Workload> SetUpPaperDatabase(
    Database* db, const WorkloadSpec& spec,
    const std::vector<std::string>& indexed_columns,
    const IndexOptions& a_options) {
  BULKDEL_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::PaperStyle(spec.n_int_columns, spec.tuple_size));
  BULKDEL_RETURN_IF_ERROR(
      db->CreateTable(spec.table_name, schema).status());
  for (const std::string& column : indexed_columns) {
    IndexOptions options;
    bool clustered = false;
    if (column == "A") {
      options = a_options;
      options.unique = true;  // A is the key of R
      clustered = spec.clustered_on_a;
    }
    BULKDEL_RETURN_IF_ERROR(
        db->CreateIndex(spec.table_name, column, options, clustered)
            .status());
  }
  return LoadWorkload(db, spec);
}

}  // namespace bulkdel

#include "exec/partitioned_delete.h"

#include <algorithm>

#include "exec/hash_delete.h"
#include "storage/spill.h"

namespace bulkdel {

namespace {
/// Largest item count whose hash set fits `budget` bytes.
size_t MaxItemsForBudget(size_t budget) {
  size_t m = budget / (2 * sizeof(uint64_t));
  while (m > 8 && U64HashSet::EstimateBytes(m) > budget) m /= 2;
  return std::max<size_t>(m, 8);
}

/// Deletes one partition: hash-probe by RID over the bounded leaf range.
Status DeletePartition(BTree* index, const std::vector<KeyRid>& part,
                       ReorgMode reorg, BtreeBulkDeleteStats* agg) {
  if (part.empty()) return Status::OK();
  U64HashSet set(part.size());
  int64_t lo = part.front().key;
  int64_t hi = part.front().key;
  for (const KeyRid& e : part) {
    set.Insert(e.rid.Pack());
    lo = std::min(lo, e.key);
    hi = std::max(hi, e.key);
  }
  BtreeBulkDeleteStats stats;
  BULKDEL_RETURN_IF_ERROR(index->BulkDeleteByPredicate(
      [&](int64_t, const Rid& rid) { return set.Contains(rid.Pack()); },
      reorg, &stats, lo, hi));
  agg->entries_deleted += stats.entries_deleted;
  agg->leaves_visited += stats.leaves_visited;
  agg->leaves_freed += stats.leaves_freed;
  agg->skipped_undeletable += stats.skipped_undeletable;
  return Status::OK();
}
}  // namespace

Status PartitionedHashDeleteIndex(BTree* index, DiskManager* disk,
                                  size_t memory_budget_bytes,
                                  const std::vector<KeyRid>& entries,
                                  ReorgMode reorg,
                                  PartitionedDeleteStats* stats) {
  PartitionedDeleteStats local;
  if (!entries.empty()) {
    size_t max_items = MaxItemsForBudget(memory_budget_bytes);
    size_t n_parts = (entries.size() + max_items - 1) / max_items;
    local.partitions = static_cast<int>(n_parts);

    if (n_parts <= 1) {
      BULKDEL_RETURN_IF_ERROR(
          DeletePartition(index, entries, reorg, &local.btree));
    } else {
      // Range-partition by key into equal-sized chunks of the key-ordered
      // list (nth_element per boundary; no full sort needed).
      std::vector<KeyRid> work = entries;
      std::vector<size_t> bounds;
      for (size_t p = 1; p < n_parts; ++p) {
        bounds.push_back(p * work.size() / n_parts);
      }
      auto by_key = [](const KeyRid& a, const KeyRid& b) { return a < b; };
      size_t prev = 0;
      for (size_t b : bounds) {
        std::nth_element(work.begin() + prev, work.begin() + b, work.end(),
                         by_key);
        prev = b;
      }
      // The whole list exceeds the budget by construction: stage each
      // partition to scratch pages, then process them one at a time, so at
      // most one partition's data is in memory at once.
      std::vector<SpilledList<KeyRid>> staged;
      prev = 0;
      for (size_t p = 0; p < n_parts; ++p) {
        size_t end = p + 1 < n_parts ? bounds[p] : work.size();
        std::vector<KeyRid> part(work.begin() + prev, work.begin() + end);
        BULKDEL_ASSIGN_OR_RETURN(SpilledList<KeyRid> list,
                                 SpillToDisk(disk, part));
        local.pages_spilled += static_cast<int64_t>(list.pages.size());
        staged.push_back(std::move(list));
        prev = end;
      }
      work.clear();
      work.shrink_to_fit();
      for (SpilledList<KeyRid>& list : staged) {
        BULKDEL_ASSIGN_OR_RETURN(std::vector<KeyRid> part,
                                 ReadSpilled(disk, list));
        BULKDEL_RETURN_IF_ERROR(
            DeletePartition(index, part, reorg, &local.btree));
        BULKDEL_RETURN_IF_ERROR(FreeSpilled(disk, &list));
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace bulkdel

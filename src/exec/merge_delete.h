#ifndef BULKDEL_EXEC_MERGE_DELETE_H_
#define BULKDEL_EXEC_MERGE_DELETE_H_

#include <cstdint>
#include <vector>

#include "btree/btree.h"
#include "sort/external_sort.h"
#include "table/heap_table.h"
#include "util/result.h"

namespace bulkdel {

/// Sort/merge-based bulk-delete operators (paper §2.2.1 / Fig. 3). Each
/// operator first sorts the (small) delete list to match the physical
/// clustering of its target — keys for an index leaf level, RIDs for the base
/// table — then performs one sequential pass, avoiding the random I/O of the
/// traditional record-at-a-time approach.

/// ⋉̸ on an index by key: sorts `keys` in place (spilling under
/// `sort_budget_bytes` through `disk`) unless `already_sorted`, then removes
/// every matching entry in one leaf-level pass. Deleted RIDs are appended to
/// `deleted_rids` (key order) when non-null.
Status MergeDeleteIndexByKeys(BTree* index, DiskManager* disk,
                              size_t sort_budget_bytes,
                              std::vector<int64_t>* keys, bool already_sorted,
                              ReorgMode reorg,
                              std::vector<Rid>* deleted_rids = nullptr,
                              BtreeBulkDeleteStats* stats = nullptr,
                              SortStats* sort_stats = nullptr);

/// ⋉̸ on an index by exact (key, RID) entries.
Status MergeDeleteIndexByEntries(BTree* index, DiskManager* disk,
                                 size_t sort_budget_bytes,
                                 std::vector<KeyRid>* entries,
                                 bool already_sorted, ReorgMode reorg,
                                 BtreeBulkDeleteStats* stats = nullptr,
                                 SortStats* sort_stats = nullptr);

/// Per-secondary-index projection collected while deleting from the table:
/// the (column value, RID) stream that is piped into the next ⋉̸.
struct IndexFeed {
  int column = -1;
  std::vector<KeyRid> entries;
};

/// ⋉̸ on the base table by RID: sorts `rids` into physical order unless
/// `already_sorted`, deletes in one page-ordered pass, and projects
/// `feeds[i].column` of every deleted tuple into `feeds[i].entries` —
/// the split output streams of the paper's Fig. 3 plan.
Status MergeDeleteTable(HeapTable* table, DiskManager* disk,
                        size_t sort_budget_bytes, std::vector<Rid>* rids,
                        bool already_sorted, std::vector<IndexFeed>* feeds,
                        uint64_t* deleted_count,
                        SortStats* sort_stats = nullptr);

}  // namespace bulkdel

#endif  // BULKDEL_EXEC_MERGE_DELETE_H_

#include "exec/merge_delete.h"

namespace bulkdel {

Status MergeDeleteIndexByKeys(BTree* index, DiskManager* disk,
                              size_t sort_budget_bytes,
                              std::vector<int64_t>* keys, bool already_sorted,
                              ReorgMode reorg, std::vector<Rid>* deleted_rids,
                              BtreeBulkDeleteStats* stats,
                              SortStats* sort_stats) {
  if (!already_sorted) {
    BULKDEL_RETURN_IF_ERROR(
        SortKeys(disk, sort_budget_bytes, keys, sort_stats));
  }
  return index->BulkDeleteSortedKeys(*keys, reorg, deleted_rids, stats);
}

Status MergeDeleteIndexByEntries(BTree* index, DiskManager* disk,
                                 size_t sort_budget_bytes,
                                 std::vector<KeyRid>* entries,
                                 bool already_sorted, ReorgMode reorg,
                                 BtreeBulkDeleteStats* stats,
                                 SortStats* sort_stats) {
  if (!already_sorted) {
    BULKDEL_RETURN_IF_ERROR(
        SortKeyRids(disk, sort_budget_bytes, entries, sort_stats));
  }
  return index->BulkDeleteSortedEntries(*entries, reorg, stats);
}

Status MergeDeleteTable(HeapTable* table, DiskManager* disk,
                        size_t sort_budget_bytes, std::vector<Rid>* rids,
                        bool already_sorted, std::vector<IndexFeed>* feeds,
                        uint64_t* deleted_count, SortStats* sort_stats) {
  if (!already_sorted) {
    BULKDEL_RETURN_IF_ERROR(SortRids(disk, sort_budget_bytes, rids,
                                     sort_stats));
  }
  const Schema& schema = table->schema();
  if (feeds != nullptr) {
    for (IndexFeed& feed : *feeds) {
      if (feed.column < 0 ||
          static_cast<size_t>(feed.column) >= schema.num_columns()) {
        return Status::InvalidArgument("bad feed column");
      }
      feed.entries.reserve(rids->size());
    }
  }
  return table->BulkDeleteSortedRids(
      *rids,
      [&](const Rid& rid, const char* tuple) {
        if (feeds == nullptr) return;
        for (IndexFeed& feed : *feeds) {
          feed.entries.emplace_back(
              schema.GetInt(tuple, static_cast<size_t>(feed.column)), rid);
        }
      },
      deleted_count);
}

}  // namespace bulkdel

#ifndef BULKDEL_EXEC_DELETE_LIST_H_
#define BULKDEL_EXEC_DELETE_LIST_H_

#include <cstdint>
#include <vector>

#include "table/heap_table.h"
#include "util/result.h"

namespace bulkdel {

/// Extraction of the delete list — the paper's table D holding the key values
/// of every record to delete (produced by the first step of archiving).

/// Projects column `column` of every tuple in `d_table`.
Result<std::vector<int64_t>> ExtractKeysFromTable(HeapTable* d_table,
                                                  int column);

/// Projects `key_column` of every tuple in `table` whose `filter_column`
/// value lies in [lo, hi] — the "find all orders processed more than three
/// months ago" sub-query of the archiving scenario, run as a table scan.
/// `max_keys` (0 = unbounded) bounds the result *during* the scan: the scan
/// stops with ResourceExhausted as soon as the bound would be exceeded,
/// instead of materializing the whole vector first.
Result<std::vector<int64_t>> ExtractKeysByScanPredicate(HeapTable* table,
                                                        int key_column,
                                                        int filter_column,
                                                        int64_t lo, int64_t hi,
                                                        size_t max_keys = 0);

}  // namespace bulkdel

#endif  // BULKDEL_EXEC_DELETE_LIST_H_

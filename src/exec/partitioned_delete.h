#ifndef BULKDEL_EXEC_PARTITIONED_DELETE_H_
#define BULKDEL_EXEC_PARTITIONED_DELETE_H_

#include <cstdint>
#include <vector>

#include "btree/btree.h"
#include "storage/disk_manager.h"
#include "util/result.h"

namespace bulkdel {

struct PartitionedDeleteStats {
  int partitions = 0;
  int64_t pages_spilled = 0;  ///< partition staging I/O (when list > budget)
  BtreeBulkDeleteStats btree;
};

/// Range-partitioned hash ⋉̸ on an index (paper §2.2.2 / Fig. 5).
///
/// When the RID list's hash table exceeds the memory budget, the (key, RID)
/// list is range-partitioned by key into partitions whose hash tables fit;
/// each partition's bulk delete is then a main-memory hash probe over the
/// contiguous leaf range covering the partition's keys, so no leaf page is
/// read more than once in total. Entries are matched by RID inside their key
/// range, which is exact because a record contributes one entry per index.
///
/// Partitions larger than the budget are staged through scratch pages of
/// `disk` (charged I/O); a list that fits is partitioned in memory at no I/O
/// cost.
Status PartitionedHashDeleteIndex(BTree* index, DiskManager* disk,
                                  size_t memory_budget_bytes,
                                  const std::vector<KeyRid>& entries,
                                  ReorgMode reorg,
                                  PartitionedDeleteStats* stats = nullptr);

}  // namespace bulkdel

#endif  // BULKDEL_EXEC_PARTITIONED_DELETE_H_

#ifndef BULKDEL_EXEC_HASH_DELETE_H_
#define BULKDEL_EXEC_HASH_DELETE_H_

#include <cstdint>
#include <vector>

#include "btree/btree.h"
#include "table/heap_table.h"
#include "util/result.h"

namespace bulkdel {

/// Open-addressing hash set of 64-bit values with explicit size accounting.
///
/// The classic-hash bulk-delete plan (paper §2.2.2 / Fig. 4) builds a
/// main-memory hash table over the RID list and probes every leaf entry and
/// table record against it; the plan is only applicable when the table fits
/// the memory budget, which `EstimateBytes` lets the planner check.
class U64HashSet {
 public:
  /// Bytes a set sized for `n` items occupies (load factor 0.5, rounded up to
  /// a power of two).
  static size_t EstimateBytes(size_t n);

  explicit U64HashSet(size_t expected_items);

  void Insert(uint64_t v);
  bool Contains(uint64_t v) const;
  size_t size() const { return size_; }
  size_t bytes() const { return slots_.size() * sizeof(uint64_t); }

 private:
  static constexpr uint64_t kEmpty = ~0ULL;
  size_t Probe(uint64_t v) const;
  void Grow();

  std::vector<uint64_t> slots_;
  size_t size_ = 0;
  uint64_t mask_ = 0;
  /// The all-ones value doubles as the empty-slot sentinel (it is, e.g.,
  /// key -1 cast to unsigned), so its membership is tracked out of band.
  bool has_sentinel_ = false;
};

/// Classic-hash ⋉̸ on an index: builds a hash set over `rids` and removes, in
/// one sequential leaf-level pass, every entry whose RID probes positive.
Status HashDeleteIndexByRids(BTree* index, const std::vector<Rid>& rids,
                             ReorgMode reorg,
                             BtreeBulkDeleteStats* stats = nullptr);

/// Classic-hash ⋉̸ on the base table: scans every page, probing each record's
/// RID; `on_delete` sees each doomed tuple (for downstream projections).
Status HashDeleteTableByRids(
    HeapTable* table, const std::vector<Rid>& rids,
    const std::function<void(const Rid&, const char*)>& on_delete,
    uint64_t* deleted_count);

/// Hash ⋉̸ on an index probing by key instead of RID (for plans where the
/// key list is available but unsorted; keys absent from the index are
/// ignored). Removes every entry whose key is in `keys`.
Status HashDeleteIndexByKeys(BTree* index, const std::vector<int64_t>& keys,
                             ReorgMode reorg,
                             BtreeBulkDeleteStats* stats = nullptr);

}  // namespace bulkdel

#endif  // BULKDEL_EXEC_HASH_DELETE_H_

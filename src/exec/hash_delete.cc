#include "exec/hash_delete.h"

namespace bulkdel {

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

uint64_t Mix(uint64_t v) {
  // SplitMix64 finalizer: good avalanche for packed RIDs and keys.
  v ^= v >> 30;
  v *= 0xbf58476d1ce4e5b9ULL;
  v ^= v >> 27;
  v *= 0x94d049bb133111ebULL;
  v ^= v >> 31;
  return v;
}
}  // namespace

size_t U64HashSet::EstimateBytes(size_t n) {
  return RoundUpPow2(std::max<size_t>(n * 2, 16)) * sizeof(uint64_t);
}

U64HashSet::U64HashSet(size_t expected_items) {
  size_t cap = RoundUpPow2(std::max<size_t>(expected_items * 2, 16));
  slots_.assign(cap, kEmpty);
  mask_ = cap - 1;
}

size_t U64HashSet::Probe(uint64_t v) const {
  size_t i = Mix(v) & mask_;
  while (slots_[i] != kEmpty && slots_[i] != v) {
    i = (i + 1) & mask_;
  }
  return i;
}

void U64HashSet::Insert(uint64_t v) {
  if (v == kEmpty) {
    if (!has_sentinel_) {
      has_sentinel_ = true;
      ++size_;
    }
    return;
  }
  size_t i = Probe(v);
  if (slots_[i] == v) return;
  slots_[i] = v;
  ++size_;
  if (size_ * 2 > slots_.size()) Grow();
}

bool U64HashSet::Contains(uint64_t v) const {
  if (v == kEmpty) return has_sentinel_;
  return slots_[Probe(v)] == v;
}

void U64HashSet::Grow() {
  std::vector<uint64_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, kEmpty);
  mask_ = slots_.size() - 1;
  size_ = 0;
  for (uint64_t v : old) {
    if (v != kEmpty) Insert(v);
  }
}

Status HashDeleteIndexByRids(BTree* index, const std::vector<Rid>& rids,
                             ReorgMode reorg, BtreeBulkDeleteStats* stats) {
  U64HashSet set(rids.size());
  for (const Rid& rid : rids) set.Insert(rid.Pack());
  return index->BulkDeleteByPredicate(
      [&](int64_t, const Rid& rid) { return set.Contains(rid.Pack()); },
      reorg, stats);
}

Status HashDeleteTableByRids(
    HeapTable* table, const std::vector<Rid>& rids,
    const std::function<void(const Rid&, const char*)>& on_delete,
    uint64_t* deleted_count) {
  U64HashSet set(rids.size());
  for (const Rid& rid : rids) set.Insert(rid.Pack());
  return table->ScanDeleteIf(
      [&](const Rid& rid, const char*) { return set.Contains(rid.Pack()); },
      on_delete, deleted_count);
}

Status HashDeleteIndexByKeys(BTree* index, const std::vector<int64_t>& keys,
                             ReorgMode reorg, BtreeBulkDeleteStats* stats) {
  U64HashSet set(keys.size());
  for (int64_t k : keys) set.Insert(static_cast<uint64_t>(k));
  return index->BulkDeleteByPredicate(
      [&](int64_t key, const Rid&) {
        return set.Contains(static_cast<uint64_t>(key));
      },
      reorg, stats);
}

}  // namespace bulkdel

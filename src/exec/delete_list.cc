#include "exec/delete_list.h"

namespace bulkdel {

Result<std::vector<int64_t>> ExtractKeysFromTable(HeapTable* d_table,
                                                  int column) {
  if (column < 0 ||
      static_cast<size_t>(column) >= d_table->schema().num_columns()) {
    return Status::InvalidArgument("bad projection column");
  }
  std::vector<int64_t> keys;
  keys.reserve(d_table->tuple_count());
  const Schema& schema = d_table->schema();
  BULKDEL_RETURN_IF_ERROR(
      d_table->Scan([&](const Rid&, const char* tuple) {
        keys.push_back(schema.GetInt(tuple, static_cast<size_t>(column)));
        return Status::OK();
      }));
  return keys;
}

Result<std::vector<int64_t>> ExtractKeysByScanPredicate(HeapTable* table,
                                                        int key_column,
                                                        int filter_column,
                                                        int64_t lo,
                                                        int64_t hi,
                                                        size_t max_keys) {
  const Schema& schema = table->schema();
  if (key_column < 0 ||
      static_cast<size_t>(key_column) >= schema.num_columns() ||
      filter_column < 0 ||
      static_cast<size_t>(filter_column) >= schema.num_columns()) {
    return Status::InvalidArgument("bad column index");
  }
  std::vector<int64_t> keys;
  BULKDEL_RETURN_IF_ERROR(table->Scan([&](const Rid&, const char* tuple) {
    int64_t v = schema.GetInt(tuple, static_cast<size_t>(filter_column));
    if (v >= lo && v <= hi) {
      if (max_keys != 0 && keys.size() >= max_keys) {
        return Status::ResourceExhausted(
            "delete list exceeds the session bound of " +
            std::to_string(max_keys) + " keys");
      }
      keys.push_back(schema.GetInt(tuple, static_cast<size_t>(key_column)));
    }
    return Status::OK();
  }));
  return keys;
}

}  // namespace bulkdel

#ifndef BULKDEL_GRIDFILE_GRID_FILE_H_
#define BULKDEL_GRIDFILE_GRID_FILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "storage/buffer_pool.h"
#include "table/rid.h"
#include "util/result.h"

namespace bulkdel {

struct GridBulkDeleteStats {
  uint64_t entries_deleted = 0;
  uint64_t buckets_visited = 0;
  uint64_t overflow_pages_visited = 0;
};

/// Two-dimensional grid file mapping points to RIDs — the last of the three
/// index families in the paper's future work (§5: "hash tables, R-trees, or
/// grid files").
///
/// Simplified EXCELL-style organization: the directory is a 2^dx × 2^dy grid
/// over the fixed domain [0, 2^30)² with midpoint splits, so a point's cell
/// is (x >> (30-dx), y >> (30-dy)). Several cells may share one bucket; an
/// overflowing bucket whose region spans more than one cell splits in half,
/// otherwise the directory doubles (alternating dimensions) — and once the
/// directory page is full, overflow chains absorb further growth. This keeps
/// the classic grid-file property (any exact-match probe costs one directory
/// access + one bucket access) without dynamic linear scales; skewed data
/// degrades to chains, uniform data stays balanced. See DESIGN.md.
///
/// Bulk deletes adapt the delete list to this physical layout by
/// *cell-partitioning*: doomed points are grouped by bucket via the grid
/// directory, and each affected bucket chain is read and written exactly
/// once — the grid-file analogue of sorting for a B-tree and of
/// hash-partitioning for a hash table.
class GridFile {
 public:
  /// Points must lie in [0, kDomain)².
  static constexpr int64_t kDomainBits = 30;
  static constexpr int64_t kDomain = 1ll << kDomainBits;

  static Result<GridFile> Create(BufferPool* pool);
  static Result<GridFile> Open(BufferPool* pool, PageId meta_page);

  GridFile(GridFile&&) = default;
  GridFile& operator=(GridFile&&) = default;

  PageId meta_page() const { return meta_page_; }
  uint64_t entry_count() const { return entry_count_; }
  int dx() const { return dx_; }
  int dy() const { return dy_; }
  uint32_t num_cells() const { return 1u << (dx_ + dy_); }

  Status Insert(int64_t x, int64_t y, const Rid& rid);

  /// Traditional delete: one directory probe + bucket-chain search.
  Status Delete(int64_t x, int64_t y, const Rid& rid);

  /// All entries with x in [x1,x2], y in [y1,y2].
  Status SearchRange(
      int64_t x1, int64_t y1, int64_t x2, int64_t y2,
      const std::function<Status(int64_t, int64_t, const Rid&)>& visitor);

  /// Bulk delete of exact (x, y, rid) entries, cell-partitioned.
  Status BulkDelete(const std::vector<std::tuple<int64_t, int64_t, Rid>>& doomed,
                    GridBulkDeleteStats* stats = nullptr);

  Status ScanAll(
      const std::function<Status(int64_t, int64_t, const Rid&)>& visitor);

  Status FlushMeta();

  /// Validates: every entry lies in its bucket's cell region, counts match.
  Status CheckInvariants();

 private:
  explicit GridFile(BufferPool* pool, PageId meta_page)
      : pool_(pool), meta_page_(meta_page) {}

  uint32_t CellOf(int64_t x, int64_t y) const {
    uint32_t cx = static_cast<uint32_t>(x >> (kDomainBits - dx_));
    uint32_t cy = static_cast<uint32_t>(y >> (kDomainBits - dy_));
    return (cx << dy_) | cy;
  }

  Status LoadMeta();
  Result<PageId> DirEntry(uint32_t cell);
  Result<PageId> NewBucket();

  /// Splits the bucket containing `cell` (halving its cell region or
  /// doubling the directory); ResourceExhausted when the directory is full.
  Status SplitBucket(uint32_t cell);

  Status ProcessChain(
      PageId head,
      const std::function<bool(int64_t, int64_t, const Rid&)>& pred,
      uint64_t* deleted, uint64_t* overflow_pages);

  BufferPool* pool_;
  PageId meta_page_;
  PageId directory_page_ = kInvalidPageId;
  int dx_ = 0, dy_ = 0;
  uint64_t entry_count_ = 0;
};

}  // namespace bulkdel

#endif  // BULKDEL_GRIDFILE_GRID_FILE_H_

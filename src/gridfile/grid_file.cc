#include "gridfile/grid_file.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <tuple>

#include "util/coding.h"

namespace bulkdel {

namespace {
constexpr uint32_t kGridMagic = 0x47524431;  // "GRD1"
constexpr int kMaxDirBits = 10;  // 1024 u32 cells fit one directory page

/// Bucket page: [u16 count][u16 pad][u32 overflow][8 pad]; entries at 16,
/// stride 24: [i64 x][i64 y][u32 rid.page][u16 rid.slot][2 pad].
class GBucket {
 public:
  static constexpr uint32_t kHeaderSize = 16;
  static constexpr uint32_t kEntrySize = 24;
  static constexpr uint16_t Capacity() {
    return (kPageSize - kHeaderSize) / kEntrySize;
  }

  explicit GBucket(char* data) : data_(data) {}

  void Init() {
    std::memset(data_, 0, kPageSize);
    StoreU32(data_ + 4, kInvalidPageId);
  }

  uint16_t count() const { return LoadU16(data_); }
  void set_count(uint16_t c) { StoreU16(data_, c); }
  PageId overflow() const { return LoadU32(data_ + 4); }
  void set_overflow(PageId p) { StoreU32(data_ + 4, p); }

  int64_t X(uint16_t i) const { return LoadI64(Entry(i)); }
  int64_t Y(uint16_t i) const { return LoadI64(Entry(i) + 8); }
  Rid RidAt(uint16_t i) const {
    return Rid(LoadU32(Entry(i) + 16), LoadU16(Entry(i) + 20));
  }
  bool Append(int64_t x, int64_t y, const Rid& rid) {
    if (count() >= Capacity()) return false;
    char* e = Entry(count());
    StoreI64(e, x);
    StoreI64(e + 8, y);
    StoreU32(e + 16, rid.page);
    StoreU16(e + 20, rid.slot);
    StoreU16(e + 22, 0);
    set_count(count() + 1);
    return true;
  }
  void RemoveAt(uint16_t i) {
    uint16_t n = count();
    if (i + 1 < n) std::memcpy(Entry(i), Entry(n - 1), kEntrySize);
    set_count(n - 1);
  }

 private:
  char* Entry(uint16_t i) const {
    return data_ + kHeaderSize + static_cast<uint32_t>(i) * kEntrySize;
  }
  char* data_;
};

struct GEntry {
  int64_t x, y;
  Rid rid;
};
}  // namespace

Result<GridFile> GridFile::Create(BufferPool* pool) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard meta, pool->NewPage());
  GridFile grid(pool, meta.page_id());
  BULKDEL_ASSIGN_OR_RETURN(PageGuard dir, pool->NewPage());
  grid.directory_page_ = dir.page_id();
  BULKDEL_ASSIGN_OR_RETURN(PageId bucket, grid.NewBucket());
  StoreU32(dir.data(), bucket);
  dir.MarkDirty();
  StoreU32(meta.data(), kGridMagic);
  meta.MarkDirty();
  meta.Release();
  dir.Release();
  BULKDEL_RETURN_IF_ERROR(grid.FlushMeta());
  return grid;
}

Result<GridFile> GridFile::Open(BufferPool* pool, PageId meta_page) {
  GridFile grid(pool, meta_page);
  BULKDEL_RETURN_IF_ERROR(grid.LoadMeta());
  return grid;
}

Status GridFile::LoadMeta() {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard meta, pool_->FetchPage(meta_page_));
  if (LoadU32(meta.data()) != kGridMagic) {
    return Status::Corruption("bad grid file magic");
  }
  dx_ = static_cast<int>(LoadU32(meta.data() + 4));
  dy_ = static_cast<int>(LoadU32(meta.data() + 8));
  entry_count_ = LoadU64(meta.data() + 12);
  directory_page_ = LoadU32(meta.data() + 20);
  return Status::OK();
}

Status GridFile::FlushMeta() {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard meta, pool_->FetchPage(meta_page_));
  StoreU32(meta.data(), kGridMagic);
  StoreU32(meta.data() + 4, static_cast<uint32_t>(dx_));
  StoreU32(meta.data() + 8, static_cast<uint32_t>(dy_));
  StoreU64(meta.data() + 12, entry_count_);
  StoreU32(meta.data() + 20, directory_page_);
  meta.MarkDirty();
  return Status::OK();
}

Result<PageId> GridFile::DirEntry(uint32_t cell) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard dir, pool_->FetchPage(directory_page_));
  return static_cast<PageId>(LoadU32(dir.data() + 4 * cell));
}

Result<PageId> GridFile::NewBucket() {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->NewPage());
  GBucket bucket(page.data());
  bucket.Init();
  page.MarkDirty();
  return page.page_id();
}

Status GridFile::Insert(int64_t x, int64_t y, const Rid& rid) {
  if (x < 0 || x >= kDomain || y < 0 || y >= kDomain) {
    return Status::InvalidArgument("point outside grid domain");
  }
  for (int attempt = 0; attempt <= 2 * kMaxDirBits + 2; ++attempt) {
    uint32_t cell = CellOf(x, y);
    BULKDEL_ASSIGN_OR_RETURN(PageId head, DirEntry(cell));
    PageId cur = head;
    PageId tail = head;
    PageId space_page = kInvalidPageId;
    while (cur != kInvalidPageId) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      GBucket bucket(guard.data());
      for (uint16_t i = 0; i < bucket.count(); ++i) {
        if (bucket.X(i) == x && bucket.Y(i) == y && bucket.RidAt(i) == rid) {
          return Status::AlreadyExists("entry already in grid file");
        }
      }
      if (space_page == kInvalidPageId &&
          bucket.count() < GBucket::Capacity()) {
        space_page = cur;
      }
      tail = cur;
      cur = bucket.overflow();
    }
    if (space_page != kInvalidPageId) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(space_page));
      GBucket bucket(guard.data());
      bucket.Append(x, y, rid);
      guard.MarkDirty();
      ++entry_count_;
      return Status::OK();
    }
    Status split = SplitBucket(cell);
    if (split.ok()) continue;
    if (split.code() != StatusCode::kResourceExhausted) return split;
    // Directory exhausted: chain an overflow page.
    BULKDEL_ASSIGN_OR_RETURN(PageId fresh, NewBucket());
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard tguard, pool_->FetchPage(tail));
      GBucket tbucket(tguard.data());
      tbucket.set_overflow(fresh);
      tguard.MarkDirty();
    }
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(fresh));
    GBucket bucket(guard.data());
    bucket.Append(x, y, rid);
    guard.MarkDirty();
    ++entry_count_;
    return Status::OK();
  }
  return Status::Internal("grid insert did not converge");
}

Status GridFile::SplitBucket(uint32_t cell) {
  BULKDEL_ASSIGN_OR_RETURN(PageId head, DirEntry(cell));

  // Determine the bucket's cell region by scanning the directory.
  uint32_t n_cells = num_cells();
  uint32_t min_cx = ~0u, max_cx = 0, min_cy = ~0u, max_cy = 0;
  {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard dir, pool_->FetchPage(directory_page_));
    for (uint32_t c = 0; c < n_cells; ++c) {
      if (LoadU32(dir.data() + 4 * c) != head) continue;
      uint32_t cx = c >> dy_;
      uint32_t cy = c & ((1u << dy_) - 1);
      min_cx = std::min(min_cx, cx);
      max_cx = std::max(max_cx, cx);
      min_cy = std::min(min_cy, cy);
      max_cy = std::max(max_cy, cy);
    }
  }
  bool spans_x = max_cx > min_cx;
  bool spans_y = max_cy > min_cy;

  if (!spans_x && !spans_y) {
    // Single-cell region: the directory must grow first.
    if (dx_ + dy_ + 1 > kMaxDirBits) {
      return Status::ResourceExhausted("grid directory full");
    }
    bool double_x = dx_ <= dy_;
    BULKDEL_ASSIGN_OR_RETURN(PageGuard dir, pool_->FetchPage(directory_page_));
    std::vector<uint32_t> old(n_cells);
    for (uint32_t c = 0; c < n_cells; ++c) {
      old[c] = LoadU32(dir.data() + 4 * c);
    }
    if (double_x) {
      ++dx_;
      for (uint32_t c = 0; c < (n_cells << 1); ++c) {
        uint32_t cx = c >> dy_;
        uint32_t cy = c & ((1u << dy_) - 1);
        StoreU32(dir.data() + 4 * c, old[((cx >> 1) << dy_) | cy]);
      }
    } else {
      ++dy_;
      for (uint32_t c = 0; c < (n_cells << 1); ++c) {
        uint32_t cx = c >> dy_;
        uint32_t cy = c & ((1u << dy_) - 1);
        StoreU32(dir.data() + 4 * c, old[(cx << (dy_ - 1)) | (cy >> 1)]);
      }
    }
    dir.MarkDirty();
    // The bucket's region now spans two cells; recurse to do the real split.
    uint32_t recell = double_x ? (((min_cx << 1) << dy_) | min_cy)
                               : ((min_cx << dy_) | (min_cy << 1));
    return SplitBucket(recell);
  }

  // Split the wider dimension at the midpoint of the cell region.
  bool split_x = spans_x && (!spans_y || (max_cx - min_cx) >= (max_cy - min_cy));
  uint32_t mid_cx = (min_cx + max_cx + 1) / 2;  // first cx of the new bucket
  uint32_t mid_cy = (min_cy + max_cy + 1) / 2;

  // Collect the whole chain's entries and free overflow pages.
  std::vector<GEntry> entries;
  {
    PageId cur = head;
    bool first = true;
    std::vector<PageId> overflow_pages;
    while (cur != kInvalidPageId) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      GBucket bucket(guard.data());
      for (uint16_t i = 0; i < bucket.count(); ++i) {
        entries.push_back(GEntry{bucket.X(i), bucket.Y(i), bucket.RidAt(i)});
      }
      PageId next = bucket.overflow();
      if (!first) overflow_pages.push_back(cur);
      first = false;
      cur = next;
    }
    for (PageId p : overflow_pages) {
      BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(p));
    }
  }

  BULKDEL_ASSIGN_OR_RETURN(PageId sibling, NewBucket());
  {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(head));
    GBucket bucket(guard.data());
    bucket.Init();
    guard.MarkDirty();
  }
  // Re-point the upper half of the region.
  {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard dir, pool_->FetchPage(directory_page_));
    for (uint32_t c = 0; c < n_cells; ++c) {
      if (LoadU32(dir.data() + 4 * c) != head &&
          LoadU32(dir.data() + 4 * c) != sibling) {
        continue;
      }
      uint32_t cx = c >> dy_;
      uint32_t cy = c & ((1u << dy_) - 1);
      bool high = split_x ? cx >= mid_cx : cy >= mid_cy;
      StoreU32(dir.data() + 4 * c, high ? sibling : head);
    }
    dir.MarkDirty();
  }

  // Redistribute entries by coordinate.
  for (const GEntry& e : entries) {
    uint32_t cx = static_cast<uint32_t>(e.x >> (kDomainBits - dx_));
    uint32_t cy = static_cast<uint32_t>(e.y >> (kDomainBits - dy_));
    bool high = split_x ? cx >= mid_cx : cy >= mid_cy;
    PageId target = high ? sibling : head;
    while (true) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(target));
      GBucket bucket(guard.data());
      if (bucket.Append(e.x, e.y, e.rid)) {
        guard.MarkDirty();
        break;
      }
      if (bucket.overflow() == kInvalidPageId) {
        BULKDEL_ASSIGN_OR_RETURN(PageId fresh, NewBucket());
        bucket.set_overflow(fresh);
        guard.MarkDirty();
        target = fresh;
      } else {
        target = bucket.overflow();
      }
    }
  }
  return Status::OK();
}

Status GridFile::Delete(int64_t x, int64_t y, const Rid& rid) {
  uint32_t cell = CellOf(x, y);
  BULKDEL_ASSIGN_OR_RETURN(PageId head, DirEntry(cell));
  PageId prev = kInvalidPageId;
  PageId cur = head;
  while (cur != kInvalidPageId) {
    PageId next;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      GBucket bucket(guard.data());
      next = bucket.overflow();
      for (uint16_t i = 0; i < bucket.count(); ++i) {
        if (bucket.X(i) == x && bucket.Y(i) == y && bucket.RidAt(i) == rid) {
          bucket.RemoveAt(i);
          guard.MarkDirty();
          --entry_count_;
          if (cur != head && bucket.count() == 0) {
            guard.Release();
            BULKDEL_ASSIGN_OR_RETURN(PageGuard pguard, pool_->FetchPage(prev));
            GBucket pbucket(pguard.data());
            pbucket.set_overflow(next);
            pguard.MarkDirty();
            pguard.Release();
            BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(cur));
          }
          return Status::OK();
        }
      }
    }
    prev = cur;
    cur = next;
  }
  return Status::NotFound("entry not in grid file");
}

Status GridFile::SearchRange(
    int64_t x1, int64_t y1, int64_t x2, int64_t y2,
    const std::function<Status(int64_t, int64_t, const Rid&)>& visitor) {
  uint32_t cx1 = static_cast<uint32_t>(std::max<int64_t>(x1, 0) >>
                                       (kDomainBits - dx_));
  uint32_t cx2 = static_cast<uint32_t>(
      std::min<int64_t>(x2, kDomain - 1) >> (kDomainBits - dx_));
  uint32_t cy1 = static_cast<uint32_t>(std::max<int64_t>(y1, 0) >>
                                       (kDomainBits - dy_));
  uint32_t cy2 = static_cast<uint32_t>(
      std::min<int64_t>(y2, kDomain - 1) >> (kDomainBits - dy_));
  std::set<PageId> seen;
  for (uint32_t cx = cx1; cx <= cx2; ++cx) {
    for (uint32_t cy = cy1; cy <= cy2; ++cy) {
      BULKDEL_ASSIGN_OR_RETURN(PageId head, DirEntry((cx << dy_) | cy));
      if (!seen.insert(head).second) continue;
      PageId cur = head;
      while (cur != kInvalidPageId) {
        BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
        GBucket bucket(guard.data());
        for (uint16_t i = 0; i < bucket.count(); ++i) {
          int64_t x = bucket.X(i), y = bucket.Y(i);
          if (x >= x1 && x <= x2 && y >= y1 && y <= y2) {
            BULKDEL_RETURN_IF_ERROR(visitor(x, y, bucket.RidAt(i)));
          }
        }
        cur = bucket.overflow();
      }
    }
  }
  return Status::OK();
}

Status GridFile::ScanAll(
    const std::function<Status(int64_t, int64_t, const Rid&)>& visitor) {
  return SearchRange(0, 0, kDomain - 1, kDomain - 1, visitor);
}

Status GridFile::ProcessChain(
    PageId head, const std::function<bool(int64_t, int64_t, const Rid&)>& pred,
    uint64_t* deleted, uint64_t* overflow_pages) {
  PageId prev = kInvalidPageId;
  PageId cur = head;
  while (cur != kInvalidPageId) {
    PageId next;
    bool empty_overflow;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      GBucket bucket(guard.data());
      next = bucket.overflow();
      if (cur != head) ++*overflow_pages;
      bool modified = false;
      uint16_t i = 0;
      while (i < bucket.count()) {
        if (pred(bucket.X(i), bucket.Y(i), bucket.RidAt(i))) {
          bucket.RemoveAt(i);
          ++*deleted;
          modified = true;
        } else {
          ++i;
        }
      }
      if (modified) guard.MarkDirty();
      empty_overflow = cur != head && bucket.count() == 0;
    }
    if (empty_overflow) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard pguard, pool_->FetchPage(prev));
      GBucket pbucket(pguard.data());
      pbucket.set_overflow(next);
      pguard.MarkDirty();
      pguard.Release();
      BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(cur));
    } else {
      prev = cur;
    }
    cur = next;
  }
  return Status::OK();
}

Status GridFile::BulkDelete(
    const std::vector<std::tuple<int64_t, int64_t, Rid>>& doomed,
    GridBulkDeleteStats* stats) {
  GridBulkDeleteStats local;
  // Cell-partition the delete list; several cells may share a bucket, so
  // group by the bucket head page.
  std::map<PageId, std::vector<std::tuple<int64_t, int64_t, uint64_t>>>
      by_bucket;
  for (const auto& [x, y, rid] : doomed) {
    if (x < 0 || x >= kDomain || y < 0 || y >= kDomain) continue;
    BULKDEL_ASSIGN_OR_RETURN(PageId head, DirEntry(CellOf(x, y)));
    by_bucket[head].emplace_back(x, y, rid.Pack());
  }
  for (auto& [head, list] : by_bucket) {
    std::sort(list.begin(), list.end());
    ++local.buckets_visited;
    uint64_t deleted = 0;
    BULKDEL_RETURN_IF_ERROR(ProcessChain(
        head,
        [&](int64_t x, int64_t y, const Rid& rid) {
          return std::binary_search(
              list.begin(), list.end(),
              std::make_tuple(x, y, rid.Pack()));
        },
        &deleted, &local.overflow_pages_visited));
    local.entries_deleted += deleted;
  }
  entry_count_ -= local.entries_deleted;
  BULKDEL_RETURN_IF_ERROR(FlushMeta());
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status GridFile::CheckInvariants() {
  uint64_t total = 0;
  std::set<PageId> seen;
  uint32_t n_cells = num_cells();
  for (uint32_t c = 0; c < n_cells; ++c) {
    BULKDEL_ASSIGN_OR_RETURN(PageId head, DirEntry(c));
    if (!seen.insert(head).second) continue;
    PageId cur = head;
    while (cur != kInvalidPageId) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      GBucket bucket(guard.data());
      for (uint16_t i = 0; i < bucket.count(); ++i) {
        uint32_t cell = CellOf(bucket.X(i), bucket.Y(i));
        BULKDEL_ASSIGN_OR_RETURN(PageId owner, DirEntry(cell));
        if (owner != head) {
          return Status::Corruption("grid entry in wrong bucket");
        }
      }
      total += bucket.count();
      cur = bucket.overflow();
    }
  }
  if (total != entry_count_) {
    return Status::Corruption("grid file count mismatch");
  }
  return Status::OK();
}

}  // namespace bulkdel

#include "plan/planner.h"

#include <algorithm>

namespace bulkdel {

namespace {
const IndexInfo* FindKeyIndex(const PlannerInput& input) {
  for (const IndexInfo& index : input.indices) {
    if (index.is_key_index) return &index;
  }
  return nullptr;
}
}  // namespace

BulkDeletePlan Planner::MakeHorizontal(Strategy strategy,
                                       const PlannerInput& input) const {
  BulkDeletePlan plan;
  plan.strategy = strategy;
  PlanStep step;
  step.structure = "(all structures, record-at-a-time)";
  step.is_table = true;
  step.phase_id = 0;
  step.method = DeleteMethod::kMerge;  // nominal; horizontal has no ⋉̸
  step.probe = ProbeBy::kKey;
  step.input_sorted =
      strategy == Strategy::kTraditionalSorted || input.keys_sorted;
  step.est_micros = cost_.TraditionalCost(
      input.table, input.indices, input.n_delete,
      strategy == Strategy::kTraditionalSorted || input.is_range);
  step.note = input.is_range
                  ? "horizontal: range-scan key index for keys, then "
                    "record-at-a-time"
                  : "horizontal: probe key index per record, delete everywhere";
  if (input.is_range) step.input_sorted = true;  // ranges are in key order
  plan.steps.push_back(step);
  plan.est_micros = step.est_micros;
  return plan;
}

BulkDeletePlan Planner::MakeDropCreate(const PlannerInput& input) const {
  BulkDeletePlan plan;
  plan.strategy = Strategy::kDropCreate;
  PlanStep step;
  step.structure = "(drop secondaries, delete, rebuild)";
  step.is_table = true;
  step.phase_id = 0;
  step.method = DeleteMethod::kMerge;
  step.probe = ProbeBy::kKey;
  step.est_micros =
      cost_.DropCreateCost(input.table, input.indices, input.n_delete);
  plan.steps.push_back(step);
  plan.est_micros = step.est_micros;
  return plan;
}

Result<BulkDeletePlan> Planner::MakeVertical(const PlannerInput& input,
                                             int forced_method) const {
  const IndexInfo* key_index = FindKeyIndex(input);
  BulkDeletePlan plan;
  plan.strategy = forced_method < 0 ? Strategy::kVerticalSortMerge
                  : static_cast<DeleteMethod>(forced_method) ==
                          DeleteMethod::kMerge
                      ? Strategy::kVerticalSortMerge
                  : static_cast<DeleteMethod>(forced_method) ==
                          DeleteMethod::kClassicHash
                      ? Strategy::kVerticalHash
                      : Strategy::kVerticalPartitionedHash;

  // Step 1: the key index, probed by key. Merge is the only applicable
  // method when the incoming list holds bare keys (no RIDs to hash yet) —
  // unless we hash by *key*, which the classic-hash strategy does.
  // Phase-DAG ids are assigned densely in emission order; dependency edges
  // express the data flow of Fig. 3: key-index probe -> RID list -> table
  // pass -> independent per-secondary feeds.
  int table_phase_id = -1;
  if (key_index != nullptr) {
    PlanStep step;
    step.structure = key_index->name;
    step.is_table = false;
    step.phase_id = static_cast<int>(plan.steps.size());
    step.probe = ProbeBy::kKey;
    DeleteMethod m = forced_method < 0
                         ? DeleteMethod::kMerge
                         : static_cast<DeleteMethod>(forced_method);
    if (m == DeleteMethod::kPartitionedHash) m = DeleteMethod::kMerge;
    if (input.is_range) m = DeleteMethod::kMerge;  // leaf-run pass is a merge
    step.method = m;
    step.input_sorted =
        (input.keys_sorted || input.is_range) && m == DeleteMethod::kMerge;
    step.est_micros =
        input.is_range
            ? cost_.IndexRangeLeafRunCost(*key_index, input.n_delete)
        : m == DeleteMethod::kMerge
            ? cost_.IndexMergePassCost(*key_index, input.n_delete)
            : cost_.IndexHashPassCost(*key_index, input.n_delete);
    step.note = input.is_range
                    ? "range leaf-run pass: frees covered leaves whole, "
                      "locates doomed RIDs"
                    : "locates doomed RIDs";
    plan.steps.push_back(step);
  }

  // Step 2: the base table, probed by RID, merge (page-ordered) pass. When
  // the key index is clustered the RID list arrives already in page order.
  // Range plans over a clustered key index take the extent-drop pass:
  // fully-covered heap pages are spliced out of the chain unread.
  {
    PlanStep step;
    step.structure = "table";
    step.is_table = true;
    step.phase_id = static_cast<int>(plan.steps.size());
    if (key_index != nullptr) step.deps.push_back(step.phase_id - 1);
    table_phase_id = step.phase_id;
    step.probe = ProbeBy::kRid;
    step.method = DeleteMethod::kMerge;
    step.input_sorted = key_index != nullptr && key_index->clustered;
    bool extent_drop =
        input.is_range && key_index != nullptr && key_index->clustered;
    step.est_micros = extent_drop
                          ? cost_.HeapExtentDropCost(input.table,
                                                     input.n_delete)
                          : cost_.TablePassCost(input.table, input.n_delete);
    if (key_index == nullptr) {
      step.note = input.is_range
                      ? "no key index: full scan with [lo,hi] predicate"
                      : "no key index: full scan probing a key hash set";
      step.probe = ProbeBy::kKey;
    } else if (extent_drop) {
      step.note = "extent-drop pass: splices covered pages out unread";
    } else if (input.is_range) {
      step.note = "page-ordered RID pass (key index not clustered)";
    } else {
      step.note = "projects secondary-index feeds";
    }
    plan.steps.push_back(step);
  }

  // Steps 3..n: secondary indices, unique first (§3.1.3), cheapest method.
  std::vector<const IndexInfo*> secondaries;
  for (const IndexInfo& index : input.indices) {
    if (!index.is_key_index) secondaries.push_back(&index);
  }
  std::stable_sort(secondaries.begin(), secondaries.end(),
                   [](const IndexInfo* a, const IndexInfo* b) {
                     if (a->unique != b->unique) return a->unique > b->unique;
                     return a->priority > b->priority;
                   });
  for (const IndexInfo* index : secondaries) {
    PlanStep step;
    step.structure = index->name;
    step.is_table = false;
    // Each secondary feed depends only on the table pass; secondaries are
    // mutually independent, so a multi-threaded executor may overlap them.
    step.phase_id = static_cast<int>(plan.steps.size());
    step.deps.push_back(table_phase_id);
    double merge_cost = cost_.IndexMergePassCost(*index, input.n_delete);
    double hash_cost = cost_.IndexHashPassCost(*index, input.n_delete);
    double part_cost = cost_.IndexPartitionedPassCost(*index, input.n_delete);
    bool hash_fits = cost_.HashSetFits(input.n_delete);
    DeleteMethod method;
    if (forced_method >= 0) {
      method = static_cast<DeleteMethod>(forced_method);
      if (method == DeleteMethod::kClassicHash && !hash_fits) {
        // The paper's fallback: partition when the hash table exceeds memory.
        method = DeleteMethod::kPartitionedHash;
      }
    } else if (hash_fits && hash_cost <= merge_cost) {
      method = DeleteMethod::kClassicHash;
    } else if (!hash_fits && part_cost < merge_cost) {
      method = DeleteMethod::kPartitionedHash;
    } else {
      method = DeleteMethod::kMerge;
    }
    step.method = method;
    step.probe = method == DeleteMethod::kMerge ? ProbeBy::kKey : ProbeBy::kRid;
    step.input_sorted = index->clustered && method == DeleteMethod::kMerge &&
                        key_index != nullptr && key_index->clustered;
    step.est_micros = method == DeleteMethod::kMerge     ? merge_cost
                      : method == DeleteMethod::kClassicHash ? hash_cost
                                                             : part_cost;
    if (input.is_range && key_index != nullptr) {
      // Range plans with a key index skip feed projection: secondaries are
      // probed straight from the RID list produced by the leaf-run pass.
      step.probe = ProbeBy::kRid;
      step.note = index->unique ? "unique, rid-probed from range RID list"
                                : "rid-probed from range RID list";
    } else if (index->unique) {
      step.note = "unique: processed before non-unique";
    }
    plan.steps.push_back(step);
  }

  for (const PlanStep& step : plan.steps) plan.est_micros += step.est_micros;
  return plan;
}

Result<BulkDeletePlan> Planner::PlanFor(Strategy strategy,
                                        const PlannerInput& input) const {
  switch (strategy) {
    case Strategy::kTraditional:
    case Strategy::kTraditionalSorted:
      return MakeHorizontal(strategy, input);
    case Strategy::kDropCreate:
      return MakeDropCreate(input);
    case Strategy::kVerticalSortMerge:
      return MakeVertical(input, static_cast<int>(DeleteMethod::kMerge));
    case Strategy::kVerticalHash:
      return MakeVertical(input, static_cast<int>(DeleteMethod::kClassicHash));
    case Strategy::kVerticalPartitionedHash:
      return MakeVertical(input,
                          static_cast<int>(DeleteMethod::kPartitionedHash));
    case Strategy::kOptimizer:
      return Choose(input);
  }
  return Status::InvalidArgument("unknown strategy");
}

Result<BulkDeletePlan> Planner::Choose(const PlannerInput& input) const {
  std::vector<BulkDeletePlan> candidates;
  candidates.push_back(MakeHorizontal(Strategy::kTraditionalSorted, input));
  candidates.push_back(MakeDropCreate(input));
  BULKDEL_ASSIGN_OR_RETURN(BulkDeletePlan vertical,
                           MakeVertical(input, /*forced_method=*/-1));
  candidates.push_back(std::move(vertical));

  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i].est_micros < candidates[best].est_micros) best = i;
  }
  return candidates[best];
}

}  // namespace bulkdel

#ifndef BULKDEL_PLAN_COST_MODEL_H_
#define BULKDEL_PLAN_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/disk_model.h"

namespace bulkdel {

/// Statistics the planner keeps about the target table.
struct TableInfo {
  uint64_t tuples = 0;
  uint32_t pages = 0;
  uint32_t tuples_per_page = 1;
};

/// Statistics about one index of the target table.
struct IndexInfo {
  std::string name;
  int column = -1;
  uint64_t entries = 0;
  uint32_t leaves = 1;
  int height = 1;
  bool unique = false;
  /// Processing-order hint (§3.1.3); higher goes earlier among non-unique.
  int16_t priority = 0;
  /// Table is physically ordered by this index's key, so RID order and key
  /// order coincide (the paper's clustered-index special cases).
  bool clustered = false;
  /// This index is on the DELETE statement's IN-list column (the I_A role:
  /// it locates the doomed records and must be processed first).
  bool is_key_index = false;
};

/// I/O-centric cost model for bulk-delete planning. All costs are estimated
/// simulated-disk microseconds under the same DiskModel the DiskManager
/// charges, so estimates and measurements are directly comparable.
class CostModel {
 public:
  CostModel(const DiskModel& disk, size_t memory_budget_bytes);

  double SeqPages(double n) const;
  double RandomPages(double n) const;

  /// Fraction of random accesses to a working set of `pages` that miss the
  /// buffer pool (clamped simple cache model).
  double MissRatio(double working_set_pages) const;

  /// Cost of externally sorting `items` records of `item_bytes` each:
  /// zero I/O when the list fits the budget, otherwise spill + merge passes.
  double SortCost(uint64_t items, size_t item_bytes) const;

  /// Whether a hash set over `items` RIDs fits the memory budget.
  bool HashSetFits(uint64_t items) const;

  /// One merging ⋉̸ pass over an index leaf level: sequential read of the
  /// leaves plus write-back of the touched fraction.
  double IndexMergePassCost(const IndexInfo& index, uint64_t n_delete) const;

  /// One probing (classic hash) pass: same leaf traffic, no sort.
  double IndexHashPassCost(const IndexInfo& index, uint64_t n_delete) const;

  /// Range-partitioned hash: leaf pass plus partition staging I/O.
  double IndexPartitionedPassCost(const IndexInfo& index,
                                  uint64_t n_delete) const;

  /// The table ⋉̸ pass: page-ordered pass over the pages holding doomed
  /// tuples (≈ min(n_delete, pages) page reads + dirty write-backs).
  double TablePassCost(const TableInfo& table, uint64_t n_delete) const;

  /// Range leaf-run pass over the key index: descend once, walk the covered
  /// leaf chain. Fully-covered leaves are freed with one header write each
  /// (no entry-level rewrite); only the two boundary leaves pay a full
  /// read-modify-write. No sort — a range is trivially in key order.
  double IndexRangeLeafRunCost(const IndexInfo& index,
                               uint64_t n_delete) const;

  /// Range extent-drop pass over the heap: fully-covered pages are spliced
  /// out of the chain without being read (one predecessor write per dropped
  /// run), and only boundary pages pay the ordinary read-modify-write. Valid
  /// only with a clustered key index (contiguous keys ⇒ contiguous pages).
  double HeapExtentDropCost(const TableInfo& table, uint64_t n_delete) const;

  /// Traditional horizontal execution: per-record random probes of the key
  /// index, the table, and every index.
  double TraditionalCost(const TableInfo& table,
                         const std::vector<IndexInfo>& indices,
                         uint64_t n_delete, bool sorted_list) const;

  /// Drop secondary indices, traditional delete on the rest, rebuild.
  double DropCreateCost(const TableInfo& table,
                        const std::vector<IndexInfo>& indices,
                        uint64_t n_delete) const;

  size_t memory_budget_bytes() const { return memory_budget_; }
  const DiskModel& disk() const { return disk_; }

 private:
  DiskModel disk_;
  size_t memory_budget_;
  double pool_pages_;
};

}  // namespace bulkdel

#endif  // BULKDEL_PLAN_COST_MODEL_H_

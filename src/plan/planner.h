#ifndef BULKDEL_PLAN_PLANNER_H_
#define BULKDEL_PLAN_PLANNER_H_

#include <vector>

#include "plan/cost_model.h"
#include "plan/plan.h"
#include "util/result.h"

namespace bulkdel {

/// Everything the planner needs to know about one bulk DELETE.
struct PlannerInput {
  TableInfo table;
  std::vector<IndexInfo> indices;  ///< exactly one flagged is_key_index
  uint64_t n_delete = 0;
  bool keys_sorted = false;  ///< delete list arrives pre-sorted
  /// Range-predicate class (DELETE ... BETWEEN lo AND hi): the plan never
  /// materializes a key list up front. n_delete then holds the clamped
  /// width estimate min(hi - lo + 1, tuples).
  bool is_range = false;
  int64_t range_lo = 0;
  int64_t range_hi = 0;
};

/// Cost-based planner for bulk DELETE statements.
///
/// The paper observes that the ⋉̸ operator behaves like a join, so the
/// optimizer chooses (a) horizontal vs vertical processing, (b) the ⋉̸
/// method per structure (merge / classic hash / partitioned hash), and
/// (c) the primary probe predicate (key for the key index, RID downstream).
/// Processing order is fixed by correctness: the key index locates the RIDs,
/// the base table produces the projections, and unique indices go before
/// non-unique ones so they can come back on-line at commit (§3.1.3).
class Planner {
 public:
  explicit Planner(const CostModel& cost) : cost_(cost) {}

  /// Builds the plan for a forced strategy (kOptimizer picks the cheapest).
  Result<BulkDeletePlan> PlanFor(Strategy strategy,
                                 const PlannerInput& input) const;

  /// Cost-based choice among all strategies, with per-index method mixing
  /// for the vertical plan.
  Result<BulkDeletePlan> Choose(const PlannerInput& input) const;

 private:
  BulkDeletePlan MakeHorizontal(Strategy strategy,
                                const PlannerInput& input) const;
  BulkDeletePlan MakeDropCreate(const PlannerInput& input) const;
  /// `forced_method` < 0 means pick the cheapest method per index.
  Result<BulkDeletePlan> MakeVertical(const PlannerInput& input,
                                      int forced_method) const;

  const CostModel& cost_;
};

}  // namespace bulkdel

#endif  // BULKDEL_PLAN_PLANNER_H_

#ifndef BULKDEL_PLAN_PLAN_H_
#define BULKDEL_PLAN_PLAN_H_

#include <string>
#include <vector>

namespace bulkdel {

/// Execution strategies for a bulk DELETE statement.
enum class Strategy {
  /// Record-at-a-time ("horizontal"): probe the key index per key, delete the
  /// record from the table and every index before the next record.
  kTraditional,
  /// Traditional, but the delete list is sorted first (the paper's
  /// sorted/trad baseline).
  kTraditionalSorted,
  /// Drop all secondary indices, delete traditionally, rebuild them.
  kDropCreate,
  /// Vertical set-oriented processing with sort/merge ⋉̸ operators (Fig. 3).
  kVerticalSortMerge,
  /// Vertical with classic main-memory hash ⋉̸ operators (Fig. 4).
  kVerticalHash,
  /// Vertical with range-partitioned hash ⋉̸ operators (Fig. 5).
  kVerticalPartitionedHash,
  /// Let the cost-based planner pick the strategy and per-structure methods.
  kOptimizer,
};

const char* StrategyName(Strategy s);

/// Inverse of StrategyName ("vertical-sort-merge" -> kVerticalSortMerge).
/// Returns false (leaving *out untouched) for unknown names.
bool StrategyFromName(const std::string& name, Strategy* out);

/// Join method of one ⋉̸ operator (paper §2.1: "⋉̸ method").
enum class DeleteMethod {
  kMerge,            ///< sort the list, one merging leaf/page pass
  kClassicHash,      ///< main-memory hash set, one probing pass
  kPartitionedHash,  ///< range partitions of memory-fitting hash sets
};

const char* DeleteMethodName(DeleteMethod m);

/// Primary ⋉̸ predicate (paper §2.1): locate doomed entries by key or by RID.
enum class ProbeBy { kKey, kRid };

/// One vertical step: a ⋉̸ against a single structure.
struct PlanStep {
  std::string structure;  ///< "R" for the table, "R.A" etc. for indices
  bool is_table = false;
  DeleteMethod method = DeleteMethod::kMerge;
  ProbeBy probe = ProbeBy::kKey;
  /// The incoming list already matches the structure's physical order, so
  /// the sort is elided (clustered-index interesting orders, §2.2.1).
  bool input_sorted = false;
  double est_micros = 0;
  std::string note;

  /// Node id of this step in the plan's phase DAG (dense, 0-based).
  int phase_id = -1;
  /// phase_ids of the steps whose output this step consumes. The key-index
  /// probe has no dependencies, the table pass depends on the RID list it
  /// produces, and every secondary-index feed depends only on the table pass
  /// — secondaries are mutually independent and may execute concurrently.
  std::vector<int> deps;

  bool DependsOn(int other_phase_id) const {
    for (int d : deps) {
      if (d == other_phase_id) return true;
    }
    return false;
  }
};

/// A complete bulk-delete plan. Horizontal plans are a single conceptual
/// step; vertical plans are a *phase DAG*: the key-index probe feeds the
/// table pass, which feeds one independent ⋉̸ per secondary index. The
/// executor schedules steps whose dependencies are satisfied — concurrently
/// when `DatabaseOptions::exec_threads` allows — with unique indices ordered
/// before non-unique ones at equal depth so the commit point is reached as
/// early as possible (§3.1.3).
struct BulkDeletePlan {
  Strategy strategy = Strategy::kVerticalSortMerge;
  std::vector<PlanStep> steps;
  double est_micros = 0;

  std::string Explain() const;

  /// Steps with no unmet dependencies among `pending` (by phase_id).
  /// Validates the DAG shape: every dep must name an earlier phase_id.
  bool DagIsValid() const;
};

}  // namespace bulkdel

#endif  // BULKDEL_PLAN_PLAN_H_

#ifndef BULKDEL_PLAN_PLAN_H_
#define BULKDEL_PLAN_PLAN_H_

#include <string>
#include <vector>

namespace bulkdel {

/// Execution strategies for a bulk DELETE statement.
enum class Strategy {
  /// Record-at-a-time ("horizontal"): probe the key index per key, delete the
  /// record from the table and every index before the next record.
  kTraditional,
  /// Traditional, but the delete list is sorted first (the paper's
  /// sorted/trad baseline).
  kTraditionalSorted,
  /// Drop all secondary indices, delete traditionally, rebuild them.
  kDropCreate,
  /// Vertical set-oriented processing with sort/merge ⋉̸ operators (Fig. 3).
  kVerticalSortMerge,
  /// Vertical with classic main-memory hash ⋉̸ operators (Fig. 4).
  kVerticalHash,
  /// Vertical with range-partitioned hash ⋉̸ operators (Fig. 5).
  kVerticalPartitionedHash,
  /// Let the cost-based planner pick the strategy and per-structure methods.
  kOptimizer,
};

const char* StrategyName(Strategy s);

/// Join method of one ⋉̸ operator (paper §2.1: "⋉̸ method").
enum class DeleteMethod {
  kMerge,            ///< sort the list, one merging leaf/page pass
  kClassicHash,      ///< main-memory hash set, one probing pass
  kPartitionedHash,  ///< range partitions of memory-fitting hash sets
};

const char* DeleteMethodName(DeleteMethod m);

/// Primary ⋉̸ predicate (paper §2.1): locate doomed entries by key or by RID.
enum class ProbeBy { kKey, kRid };

/// One vertical step: a ⋉̸ against a single structure.
struct PlanStep {
  std::string structure;  ///< "R" for the table, "R.A" etc. for indices
  bool is_table = false;
  DeleteMethod method = DeleteMethod::kMerge;
  ProbeBy probe = ProbeBy::kKey;
  /// The incoming list already matches the structure's physical order, so
  /// the sort is elided (clustered-index interesting orders, §2.2.1).
  bool input_sorted = false;
  double est_micros = 0;
  std::string note;
};

/// A complete bulk-delete plan, either horizontal (a single conceptual step)
/// or vertical (one ⋉̸ per structure, in processing order: key index first,
/// then the base table, then unique indices, then the rest — §3.1.3).
struct BulkDeletePlan {
  Strategy strategy = Strategy::kVerticalSortMerge;
  std::vector<PlanStep> steps;
  double est_micros = 0;

  std::string Explain() const;
};

}  // namespace bulkdel

#endif  // BULKDEL_PLAN_PLAN_H_

#include "plan/plan.h"

#include <cstdio>

namespace bulkdel {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kTraditional:
      return "traditional";
    case Strategy::kTraditionalSorted:
      return "traditional-sorted";
    case Strategy::kDropCreate:
      return "drop-and-create";
    case Strategy::kVerticalSortMerge:
      return "vertical-sort-merge";
    case Strategy::kVerticalHash:
      return "vertical-hash";
    case Strategy::kVerticalPartitionedHash:
      return "vertical-partitioned-hash";
    case Strategy::kOptimizer:
      return "optimizer";
  }
  return "unknown";
}

const char* DeleteMethodName(DeleteMethod m) {
  switch (m) {
    case DeleteMethod::kMerge:
      return "merge";
    case DeleteMethod::kClassicHash:
      return "hash";
    case DeleteMethod::kPartitionedHash:
      return "partitioned-hash";
  }
  return "unknown";
}

std::string BulkDeletePlan::Explain() const {
  std::string out = "BulkDeletePlan strategy=";
  out += StrategyName(strategy);
  char buf[128];
  std::snprintf(buf, sizeof(buf), " est=%.1f ms\n", est_micros / 1000.0);
  out += buf;
  int i = 1;
  for (const PlanStep& step : steps) {
    std::snprintf(buf, sizeof(buf), "  %d. %s %s", i++,
                  step.is_table ? "table" : "index", step.structure.c_str());
    out += buf;
    out += "  [";
    out += DeleteMethodName(step.method);
    out += " by ";
    out += step.probe == ProbeBy::kKey ? "key" : "rid";
    if (step.input_sorted) out += ", input pre-sorted";
    out += "]";
    std::snprintf(buf, sizeof(buf), " est=%.1f ms", step.est_micros / 1000.0);
    out += buf;
    if (!step.note.empty()) {
      out += "  -- ";
      out += step.note;
    }
    out += "\n";
  }
  return out;
}

}  // namespace bulkdel

#include "plan/plan.h"

#include <cstdio>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"

namespace bulkdel {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kTraditional:
      return "traditional";
    case Strategy::kTraditionalSorted:
      return "traditional-sorted";
    case Strategy::kDropCreate:
      return "drop-and-create";
    case Strategy::kVerticalSortMerge:
      return "vertical-sort-merge";
    case Strategy::kVerticalHash:
      return "vertical-hash";
    case Strategy::kVerticalPartitionedHash:
      return "vertical-partitioned-hash";
    case Strategy::kOptimizer:
      return "optimizer";
  }
  return "unknown";
}

bool StrategyFromName(const std::string& name, Strategy* out) {
  for (Strategy s :
       {Strategy::kTraditional, Strategy::kTraditionalSorted,
        Strategy::kDropCreate, Strategy::kVerticalSortMerge,
        Strategy::kVerticalHash, Strategy::kVerticalPartitionedHash,
        Strategy::kOptimizer}) {
    if (name == StrategyName(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

const char* DeleteMethodName(DeleteMethod m) {
  switch (m) {
    case DeleteMethod::kMerge:
      return "merge";
    case DeleteMethod::kClassicHash:
      return "hash";
    case DeleteMethod::kPartitionedHash:
      return "partitioned-hash";
  }
  return "unknown";
}

std::string BulkDeletePlan::Explain() const {
  std::string out = "BulkDeletePlan strategy=";
  out += StrategyName(strategy);
  char buf[128];
  std::snprintf(buf, sizeof(buf), " est=%.1f ms\n", est_micros / 1000.0);
  out += buf;
  for (const PlanStep& step : steps) {
    std::snprintf(buf, sizeof(buf), "  #%d %s %s", step.phase_id,
                  step.is_table ? "table" : "index", step.structure.c_str());
    out += buf;
    out += "  [";
    out += DeleteMethodName(step.method);
    out += " by ";
    out += step.probe == ProbeBy::kKey ? "key" : "rid";
    if (step.input_sorted) out += ", input pre-sorted";
    out += "]";
    if (step.deps.empty()) {
      out += " deps=[]";
    } else {
      out += " deps=[";
      for (size_t d = 0; d < step.deps.size(); ++d) {
        if (d > 0) out += ",";
        out += std::to_string(step.deps[d]);
      }
      out += "]";
    }
    std::snprintf(buf, sizeof(buf), " est=%.1f ms", step.est_micros / 1000.0);
    out += buf;
    if (!step.note.empty()) {
      out += "  -- ";
      out += step.note;
    }
    out += "\n";
  }
  // Render the DAG shape: independent steps on one line can run in parallel.
  if (steps.size() > 1) {
    out += "  dag:";
    int depth = 0;
    bool printed_any = true;
    std::vector<int> level(steps.size(), 0);
    for (size_t i = 0; i < steps.size(); ++i) {
      int d = 0;
      for (int dep : steps[i].deps) {
        for (size_t j = 0; j < steps.size(); ++j) {
          if (steps[j].phase_id == dep && level[j] + 1 > d) d = level[j] + 1;
        }
      }
      level[i] = d;
    }
    while (printed_any) {
      printed_any = false;
      std::string stage;
      for (size_t i = 0; i < steps.size(); ++i) {
        if (level[i] != depth) continue;
        if (!stage.empty()) stage += " | ";
        stage += steps[i].structure;
        printed_any = true;
      }
      if (printed_any) {
        if (depth > 0) out += " ->";
        out += " {" + stage + "}";
      }
      ++depth;
    }
    out += "\n";
  }
  // Crash-testing aid: the enumerable fault-injection sites an execution of
  // this plan passes through (see docs/FAULTS.md; arm with
  // bulkdel_crashsweep --site=NAME --occurrence=N).
  bool vertical = strategy == Strategy::kVerticalSortMerge ||
                  strategy == Strategy::kVerticalHash ||
                  strategy == Strategy::kVerticalPartitionedHash;
  if (vertical) {
    out += "  fault sites:";
    for (const FaultSiteInfo& site : FaultInjector::KnownSites()) {
      out += " ";
      out += site.name;
      if (site.supports_write_modes) out += "*";
    }
    out += "  (* = torn/short write modes)\n";
    // observability
    // The metric names an execution populates (report.metrics delta) and the
    // trace categories its spans/instants land under (docs/OBSERVABILITY.md;
    // enable with DatabaseOptions::trace_spans or bench --perfetto-out).
    out += "  metrics:";
    for (const obs::MetricInfo& metric : obs::KnownMetrics()) {
      out += " ";
      out += metric.name;
    }
    out += "\n  trace categories:";
    for (const char* category : obs::KnownTraceCategories()) {
      out += " ";
      out += category;
    }
    out += "  (off unless trace_spans)\n";
  }
  return out;
}

bool BulkDeletePlan::DagIsValid() const {
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].phase_id != static_cast<int>(i)) return false;
    for (int dep : steps[i].deps) {
      if (dep < 0 || dep >= steps[i].phase_id) return false;
    }
  }
  return true;
}

}  // namespace bulkdel

#include "plan/cost_model.h"

#include <algorithm>
#include <cmath>

#include "btree/btree_node.h"
#include "exec/hash_delete.h"
#include "storage/page.h"

namespace bulkdel {

CostModel::CostModel(const DiskModel& disk, size_t memory_budget_bytes)
    : disk_(disk),
      memory_budget_(memory_budget_bytes),
      pool_pages_(static_cast<double>(memory_budget_bytes) / kPageSize) {}

double CostModel::SeqPages(double n) const {
  return n * static_cast<double>(disk_.sequential_page_micros);
}

double CostModel::RandomPages(double n) const {
  return n * static_cast<double>(disk_.random_page_micros);
}

double CostModel::MissRatio(double working_set_pages) const {
  if (working_set_pages <= pool_pages_) return 0.05;  // warm-up residue
  return 1.0 - pool_pages_ / working_set_pages;
}

double CostModel::SortCost(uint64_t items, size_t item_bytes) const {
  double bytes = static_cast<double>(items) * static_cast<double>(item_bytes);
  if (bytes <= static_cast<double>(memory_budget_)) return 0.0;
  double pages = bytes / kPageSize;
  // Run generation (write+read) per merge level; fan-in bounds the levels.
  double fan_in =
      std::max(2.0, pool_pages_ - 1.0);
  double runs = bytes / static_cast<double>(memory_budget_);
  double levels = std::max(1.0, std::ceil(std::log(runs) / std::log(fan_in)));
  return SeqPages(2.0 * pages * levels);
}

bool CostModel::HashSetFits(uint64_t items) const {
  return U64HashSet::EstimateBytes(items) <= memory_budget_;
}

namespace {
/// Fraction of leaves that receive at least one delete, assuming the doomed
/// keys are spread uniformly (the paper's workload): 1 - (1-1/L)^n.
double TouchedFraction(uint64_t n_delete, uint32_t leaves) {
  if (leaves == 0) return 0.0;
  double l = static_cast<double>(leaves);
  return 1.0 - std::exp(-static_cast<double>(n_delete) / l);
}
}  // namespace

double CostModel::IndexMergePassCost(const IndexInfo& index,
                                     uint64_t n_delete) const {
  double sort = SortCost(n_delete, sizeof(int64_t) + sizeof(uint64_t));
  double read = SeqPages(index.leaves);
  double write = SeqPages(static_cast<double>(index.leaves) *
                          TouchedFraction(n_delete, index.leaves));
  return sort + read + write;
}

double CostModel::IndexHashPassCost(const IndexInfo& index,
                                    uint64_t n_delete) const {
  double read = SeqPages(index.leaves);
  double write = SeqPages(static_cast<double>(index.leaves) *
                          TouchedFraction(n_delete, index.leaves));
  return read + write;
}

double CostModel::IndexPartitionedPassCost(const IndexInfo& index,
                                           uint64_t n_delete) const {
  double list_pages =
      static_cast<double>(n_delete) *
      (sizeof(int64_t) + sizeof(uint64_t)) / kPageSize;
  double staging = HashSetFits(n_delete) ? 0.0 : SeqPages(2.0 * list_pages);
  return staging + IndexHashPassCost(index, n_delete);
}

double CostModel::TablePassCost(const TableInfo& table,
                                uint64_t n_delete) const {
  double touched = static_cast<double>(table.pages) *
                   TouchedFraction(n_delete, table.pages);
  // Page-ordered pass: touched pages read ~sequentially (gaps cost a little
  // more; approximate with sequential since RIDs are sorted).
  double sort = SortCost(n_delete, sizeof(uint64_t));
  return sort + SeqPages(touched) + SeqPages(touched);  // read + write back
}

double CostModel::IndexRangeLeafRunCost(const IndexInfo& index,
                                        uint64_t n_delete) const {
  if (index.entries == 0) return 0.0;
  // A contiguous key range covers a contiguous run of leaves.
  double frac = std::min(
      1.0, static_cast<double>(n_delete) / static_cast<double>(index.entries));
  double covered = static_cast<double>(index.leaves) * frac;
  // Each covered leaf is read once (sequential chain walk). Interior leaves
  // are emptied with one header write; only the ~2 boundary leaves pay an
  // entry-level rewrite, and the parent fix-ups are amortized into the same
  // header-write term.
  double read = SeqPages(covered);
  double write = SeqPages(covered) * 0.25 + SeqPages(2.0);
  return read + write;
}

double CostModel::HeapExtentDropCost(const TableInfo& table,
                                     uint64_t n_delete) const {
  if (table.tuples == 0) return 0.0;
  double frac = std::min(
      1.0, static_cast<double>(n_delete) / static_cast<double>(table.tuples));
  double covered = static_cast<double>(table.pages) * frac;
  // Fully-covered pages are never read: the splice rewrites one predecessor
  // page per dropped run (a contiguous range is ~1 run), and the ~2 boundary
  // pages take the ordinary read-modify-write path. The page frees are
  // header-only metadata writes, far below one page I/O each — charge a
  // small per-page residue so a huge drop is not literally free.
  double boundary = RandomPages(2.0) + SeqPages(2.0);
  double splice = RandomPages(1.0);
  double residue = SeqPages(covered) * 0.02;
  return boundary + splice + residue;
}

double CostModel::TraditionalCost(const TableInfo& table,
                                  const std::vector<IndexInfo>& indices,
                                  uint64_t n_delete, bool sorted_list) const {
  double n = static_cast<double>(n_delete);
  double cost = sorted_list ? SortCost(n_delete, sizeof(int64_t)) : 0.0;

  for (const IndexInfo& index : indices) {
    double leaf_ws = index.leaves;
    if (index.is_key_index && sorted_list) {
      // Sorted probes walk the leaf level in order: each touched leaf is hit
      // once, inner nodes stay cached.
      double touched = static_cast<double>(index.leaves) *
                       TouchedFraction(n_delete, index.leaves);
      cost += RandomPages(touched * MissRatio(leaf_ws)) +
              SeqPages(touched);  // write-back
      continue;
    }
    // Random root-to-leaf probe per record. Inner levels cache well when the
    // pool can hold them; leaves mostly miss.
    double inner_pages = std::max(1.0, index.leaves / 100.0);
    double inner_miss = MissRatio(inner_pages);
    double per_probe =
        static_cast<double>(index.height - 1) * inner_miss +  // inner levels
        MissRatio(leaf_ws);                                   // leaf read
    double writeback = MissRatio(leaf_ws);  // dirty leaf eventually rewritten
    cost += RandomPages(n * (per_probe + writeback));
  }

  // Table accesses: random per record (in RID order only when the key index
  // is clustered AND the list is sorted).
  const IndexInfo* key_index = nullptr;
  for (const IndexInfo& index : indices) {
    if (index.is_key_index) key_index = &index;
  }
  bool rid_ordered = sorted_list && key_index != nullptr &&
                     key_index->clustered;
  double touched_pages = static_cast<double>(table.pages) *
                         TouchedFraction(n_delete, table.pages);
  if (rid_ordered) {
    cost += SeqPages(touched_pages) + SeqPages(touched_pages);
  } else {
    double miss = MissRatio(table.pages);
    cost += RandomPages(n * miss) + RandomPages(touched_pages * miss);
  }
  return cost;
}

double CostModel::DropCreateCost(const TableInfo& table,
                                 const std::vector<IndexInfo>& indices,
                                 uint64_t n_delete) const {
  std::vector<IndexInfo> kept;
  std::vector<IndexInfo> dropped;
  for (const IndexInfo& index : indices) {
    if (index.is_key_index) {
      kept.push_back(index);
    } else {
      dropped.push_back(index);
    }
  }
  double cost = TraditionalCost(table, kept, n_delete, /*sorted_list=*/true);
  for (const IndexInfo& index : dropped) {
    // Rebuild: full table scan + external sort of all entries + leaf writes.
    double entry_pages =
        static_cast<double>(table.tuples) *
        BTreeNode::kLeafEntrySize / kPageSize;
    cost += SeqPages(table.pages);
    cost += SortCost(table.tuples, BTreeNode::kLeafEntrySize) +
            SeqPages(2.0 * entry_pages);  // run write + read even if 1 pass
    cost += SeqPages(entry_pages);        // leaf construction
    (void)index;
  }
  return cost;
}

}  // namespace bulkdel

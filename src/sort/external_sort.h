#ifndef BULKDEL_SORT_EXTERNAL_SORT_H_
#define BULKDEL_SORT_EXTERNAL_SORT_H_

#include <algorithm>
#include <cstring>
#include <functional>
#include <queue>
#include <type_traits>
#include <vector>

#include "btree/btree_node.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "table/rid.h"
#include "util/result.h"
#include "util/status.h"

namespace bulkdel {

/// Counters reported by an external sort.
struct SortStats {
  int64_t items = 0;
  int64_t runs = 0;           ///< spilled runs (0 = pure in-memory sort)
  int64_t merge_passes = 0;   ///< extra passes beyond the final merge
  int64_t pages_spilled = 0;  ///< scratch pages written across all passes
};

/// External merge sort of trivially-copyable records under a byte budget.
///
/// The paper's bulk-delete plans sort the (small) lists of keys and RIDs that
/// specify what to delete — never the tables or indices themselves — so the
/// common case is a single in-memory sort. When a list exceeds the budget,
/// runs are spilled to scratch pages of the same DiskManager, so the spill
/// I/O is charged to the experiment like every other page access (sequential
/// within a run). Multi-pass merging kicks in when the run count exceeds the
/// fan-in the budget allows.
template <typename T, typename Less = std::less<T>>
class ExternalSorter {
  static_assert(std::is_trivially_copyable_v<T>,
                "ExternalSorter requires trivially copyable records");

 public:
  /// `memory_budget_bytes` bounds both run size and merge fan-in.
  ExternalSorter(DiskManager* disk, size_t memory_budget_bytes,
                 Less less = Less())
      : disk_(disk),
        budget_items_(std::max<size_t>(memory_budget_bytes / sizeof(T),
                                       2 * kItemsPerPage)),
        less_(less) {}

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  Status Add(const T& item) {
    current_.push_back(item);
    ++stats_.items;
    if (current_.size() >= budget_items_) {
      return SpillRun();
    }
    return Status::OK();
  }

  Status AddAll(const std::vector<T>& items) {
    for (const T& item : items) {
      BULKDEL_RETURN_IF_ERROR(Add(item));
    }
    return Status::OK();
  }

  /// Sorts everything added so far and streams the records in order. The
  /// sorter is exhausted afterwards; scratch pages are freed.
  Status Finish(const std::function<Status(const T&)>& emit) {
    if (runs_.empty()) {
      // Entire input fit in the budget: one in-memory sort, no I/O.
      std::sort(current_.begin(), current_.end(), less_);
      for (const T& item : current_) {
        BULKDEL_RETURN_IF_ERROR(emit(item));
      }
      current_.clear();
      return Status::OK();
    }
    if (!current_.empty()) {
      BULKDEL_RETURN_IF_ERROR(SpillRun());
    }
    // Reduce the run count until one merge fits the budget's fan-in
    // (one input page per run plus one output page). A fan-in below 2 could
    // never converge, so binary merging is the floor.
    size_t fan_in =
        std::max<size_t>(budget_items_ / kItemsPerPage > 1
                             ? budget_items_ / kItemsPerPage - 1
                             : 2,
                         2);
    while (runs_.size() > fan_in) {
      ++stats_.merge_passes;
      std::vector<Run> next;
      for (size_t i = 0; i < runs_.size(); i += fan_in) {
        size_t hi = std::min(i + fan_in, runs_.size());
        std::vector<Run> group(runs_.begin() + i, runs_.begin() + hi);
        Run merged;
        BULKDEL_RETURN_IF_ERROR(MergeRuns(group, [&](const T& item) {
          return AppendToRun(&merged, item);
        }));
        BULKDEL_RETURN_IF_ERROR(FlushRun(&merged));
        for (Run& r : group) {
          BULKDEL_RETURN_IF_ERROR(FreeRun(&r));
        }
        next.push_back(std::move(merged));
      }
      runs_ = std::move(next);
    }
    std::vector<Run> all = std::move(runs_);
    runs_.clear();
    Status s = MergeRuns(all, emit);
    for (Run& r : all) {
      Status fs = FreeRun(&r);
      if (s.ok()) s = fs;
    }
    return s;
  }

  /// Convenience: collect the sorted output into a vector.
  Result<std::vector<T>> FinishToVector() {
    std::vector<T> out;
    out.reserve(static_cast<size_t>(stats_.items));
    BULKDEL_RETURN_IF_ERROR(Finish([&](const T& item) {
      out.push_back(item);
      return Status::OK();
    }));
    return out;
  }

  const SortStats& stats() const { return stats_; }

 private:
  static constexpr size_t kItemsPerPage = kPageSize / sizeof(T);

  struct Run {
    std::vector<PageId> pages;
    size_t count = 0;
    // Write-side buffer (only while building).
    std::vector<T> tail;
  };

  Status SpillRun() {
    std::sort(current_.begin(), current_.end(), less_);
    Run run;
    for (const T& item : current_) {
      BULKDEL_RETURN_IF_ERROR(AppendToRun(&run, item));
    }
    BULKDEL_RETURN_IF_ERROR(FlushRun(&run));
    runs_.push_back(std::move(run));
    ++stats_.runs;
    current_.clear();
    return Status::OK();
  }

  Status AppendToRun(Run* run, const T& item) {
    run->tail.push_back(item);
    ++run->count;
    if (run->tail.size() == kItemsPerPage) {
      return FlushRun(run);
    }
    return Status::OK();
  }

  Status FlushRun(Run* run) {
    if (run->tail.empty()) return Status::OK();
    char page[kPageSize] = {};
    std::memcpy(page, run->tail.data(), run->tail.size() * sizeof(T));
    BULKDEL_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage());
    BULKDEL_RETURN_IF_ERROR(disk_->WritePage(id, page));
    run->pages.push_back(id);
    ++stats_.pages_spilled;
    run->tail.clear();
    return Status::OK();
  }

  Status FreeRun(Run* run) {
    for (PageId id : run->pages) {
      BULKDEL_RETURN_IF_ERROR(disk_->FreePage(id));
    }
    run->pages.clear();
    run->count = 0;
    return Status::OK();
  }

  /// Cursor over one spilled run, buffering one page.
  struct Cursor {
    const Run* run;
    size_t page_index = 0;
    size_t item_index = 0;   // within the buffered page
    size_t consumed = 0;     // total items consumed
    std::vector<T> buffer;

    Status Load(DiskManager* disk) {
      char page[kPageSize];
      BULKDEL_RETURN_IF_ERROR(disk->ReadPage(run->pages[page_index], page));
      size_t remaining = run->count - page_index * kItemsPerPage;
      size_t n = std::min(remaining, kItemsPerPage);
      buffer.resize(n);
      std::memcpy(buffer.data(), page, n * sizeof(T));
      item_index = 0;
      return Status::OK();
    }

    bool exhausted() const { return consumed >= run->count; }
    const T& peek() const { return buffer[item_index]; }

    Status Advance(DiskManager* disk) {
      ++item_index;
      ++consumed;
      if (consumed < run->count && item_index >= buffer.size()) {
        ++page_index;
        return Load(disk);
      }
      return Status::OK();
    }
  };

  Status MergeRuns(const std::vector<Run>& runs,
                   const std::function<Status(const T&)>& emit) {
    std::vector<Cursor> cursors;
    cursors.reserve(runs.size());
    for (const Run& run : runs) {
      if (run.count == 0) continue;
      Cursor c;
      c.run = &run;
      BULKDEL_RETURN_IF_ERROR(c.Load(disk_));
      cursors.push_back(std::move(c));
    }
    auto greater = [&](size_t a, size_t b) {
      return less_(cursors[b].peek(), cursors[a].peek());
    };
    std::priority_queue<size_t, std::vector<size_t>, decltype(greater)> heap(
        greater);
    for (size_t i = 0; i < cursors.size(); ++i) heap.push(i);
    while (!heap.empty()) {
      size_t i = heap.top();
      heap.pop();
      BULKDEL_RETURN_IF_ERROR(emit(cursors[i].peek()));
      BULKDEL_RETURN_IF_ERROR(cursors[i].Advance(disk_));
      if (!cursors[i].exhausted()) heap.push(i);
    }
    return Status::OK();
  }

  DiskManager* disk_;
  size_t budget_items_;
  Less less_;
  std::vector<T> current_;
  std::vector<Run> runs_;
  SortStats stats_;
};

/// Comparator sorting KeyRid lists by physical RID order — used to adapt a
/// RID list to the base table's layout before the table ⋉̸ pass.
struct OrderByRid {
  bool operator()(const KeyRid& a, const KeyRid& b) const {
    return a.rid < b.rid;
  }
};

/// Sorts a RID list in place under the budget, spilling if needed.
Status SortRids(DiskManager* disk, size_t budget_bytes, std::vector<Rid>* rids,
                SortStats* stats = nullptr);

/// Sorts a (key, RID) list in (key, rid) order under the budget.
Status SortKeyRids(DiskManager* disk, size_t budget_bytes,
                   std::vector<KeyRid>* entries, SortStats* stats = nullptr);

/// Sorts a bare key list under the budget.
Status SortKeys(DiskManager* disk, size_t budget_bytes,
                std::vector<int64_t>* keys, SortStats* stats = nullptr);

}  // namespace bulkdel

#endif  // BULKDEL_SORT_EXTERNAL_SORT_H_

#include "sort/external_sort.h"

namespace bulkdel {

namespace {
template <typename T, typename Less>
Status SortVector(DiskManager* disk, size_t budget_bytes, std::vector<T>* v,
                  SortStats* stats, Less less) {
  ExternalSorter<T, Less> sorter(disk, budget_bytes, less);
  BULKDEL_RETURN_IF_ERROR(sorter.AddAll(*v));
  size_t i = 0;
  BULKDEL_RETURN_IF_ERROR(sorter.Finish([&](const T& item) {
    (*v)[i++] = item;
    return Status::OK();
  }));
  if (stats != nullptr) *stats = sorter.stats();
  return Status::OK();
}
}  // namespace

Status SortRids(DiskManager* disk, size_t budget_bytes, std::vector<Rid>* rids,
                SortStats* stats) {
  return SortVector(disk, budget_bytes, rids, stats, std::less<Rid>());
}

Status SortKeyRids(DiskManager* disk, size_t budget_bytes,
                   std::vector<KeyRid>* entries, SortStats* stats) {
  return SortVector(disk, budget_bytes, entries, stats, std::less<KeyRid>());
}

Status SortKeys(DiskManager* disk, size_t budget_bytes,
                std::vector<int64_t>* keys, SortStats* stats) {
  return SortVector(disk, budget_bytes, keys, stats, std::less<int64_t>());
}

}  // namespace bulkdel

#include "hashidx/hash_index.h"

#include <algorithm>

#include <cstring>

#include "exec/hash_delete.h"
#include "util/coding.h"

namespace bulkdel {

namespace {
constexpr uint32_t kHashMagic = 0x48534831;  // "HSH1"
constexpr uint32_t kMetaDepthOff = 4;
constexpr uint32_t kMetaCountOff = 8;
constexpr uint32_t kMetaDirOff = 16;

constexpr int kMaxGlobalDepth = 10;  // 1024 u32 slots fit one directory page

/// View over a bucket page.
class Bucket {
 public:
  static constexpr uint32_t kHeaderSize = 16;
  static constexpr uint32_t kEntrySize = 16;
  static constexpr uint16_t Capacity() {
    return (kPageSize - kHeaderSize) / kEntrySize;
  }

  explicit Bucket(char* data) : data_(data) {}

  void Init(uint8_t local_depth) {
    std::memset(data_, 0, kPageSize);
    data_[0] = static_cast<char>(local_depth);
    StoreU32(data_ + 4, kInvalidPageId);  // overflow
  }

  uint8_t local_depth() const { return static_cast<uint8_t>(data_[0]); }
  void set_local_depth(uint8_t d) { data_[0] = static_cast<char>(d); }
  uint16_t count() const { return LoadU16(data_ + 2); }
  void set_count(uint16_t c) { StoreU16(data_ + 2, c); }
  PageId overflow() const { return LoadU32(data_ + 4); }
  void set_overflow(PageId p) { StoreU32(data_ + 4, p); }

  int64_t Key(uint16_t i) const { return LoadI64(Entry(i)); }
  Rid RidAt(uint16_t i) const {
    return Rid(LoadU32(Entry(i) + 8), LoadU16(Entry(i) + 12));
  }
  void Set(uint16_t i, int64_t key, const Rid& rid) {
    char* e = Entry(i);
    StoreI64(e, key);
    StoreU32(e + 8, rid.page);
    StoreU16(e + 12, rid.slot);
    StoreU16(e + 14, 0);
  }
  bool Append(int64_t key, const Rid& rid) {
    if (count() >= Capacity()) return false;
    Set(count(), key, rid);
    set_count(count() + 1);
    return true;
  }
  void RemoveAt(uint16_t i) {
    uint16_t n = count();
    if (i + 1 < n) {
      std::memcpy(Entry(i), Entry(n - 1), kEntrySize);
    }
    set_count(n - 1);
  }

 private:
  char* Entry(uint16_t i) const {
    return data_ + kHeaderSize + static_cast<uint32_t>(i) * kEntrySize;
  }
  char* data_;
};
}  // namespace

uint64_t HashIndex::HashKey(int64_t key) {
  uint64_t v = static_cast<uint64_t>(key);
  v ^= v >> 30;
  v *= 0xbf58476d1ce4e5b9ULL;
  v ^= v >> 27;
  v *= 0x94d049bb133111ebULL;
  v ^= v >> 31;
  return v;
}

Result<HashIndex> HashIndex::Create(BufferPool* pool) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard meta, pool->NewPage());
  HashIndex index(pool, meta.page_id());
  BULKDEL_ASSIGN_OR_RETURN(PageGuard dir, pool->NewPage());
  index.directory_page_ = dir.page_id();
  index.global_depth_ = 0;
  BULKDEL_ASSIGN_OR_RETURN(PageId bucket, index.NewBucket(0));
  StoreU32(dir.data(), bucket);
  dir.MarkDirty();
  StoreU32(meta.data(), kHashMagic);
  meta.MarkDirty();
  meta.Release();
  dir.Release();
  BULKDEL_RETURN_IF_ERROR(index.FlushMeta());
  return index;
}

Result<HashIndex> HashIndex::Open(BufferPool* pool, PageId meta_page) {
  HashIndex index(pool, meta_page);
  BULKDEL_RETURN_IF_ERROR(index.LoadMeta());
  return index;
}

Status HashIndex::LoadMeta() {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard meta, pool_->FetchPage(meta_page_));
  if (LoadU32(meta.data()) != kHashMagic) {
    return Status::Corruption("bad hash index magic");
  }
  global_depth_ = static_cast<int>(LoadU32(meta.data() + kMetaDepthOff));
  entry_count_ = LoadU64(meta.data() + kMetaCountOff);
  directory_page_ = LoadU32(meta.data() + kMetaDirOff);
  return Status::OK();
}

Status HashIndex::FlushMeta() {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard meta, pool_->FetchPage(meta_page_));
  StoreU32(meta.data(), kHashMagic);
  StoreU32(meta.data() + kMetaDepthOff, static_cast<uint32_t>(global_depth_));
  StoreU64(meta.data() + kMetaCountOff, entry_count_);
  StoreU32(meta.data() + kMetaDirOff, directory_page_);
  meta.MarkDirty();
  return Status::OK();
}

Result<PageId> HashIndex::DirEntry(uint32_t slot) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard dir, pool_->FetchPage(directory_page_));
  return static_cast<PageId>(LoadU32(dir.data() + 4 * slot));
}

Status HashIndex::SetDirEntry(uint32_t slot, PageId bucket) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard dir, pool_->FetchPage(directory_page_));
  StoreU32(dir.data() + 4 * slot, bucket);
  dir.MarkDirty();
  return Status::OK();
}

Result<PageId> HashIndex::NewBucket(uint8_t local_depth) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->NewPage());
  Bucket bucket(page.data());
  bucket.Init(local_depth);
  page.MarkDirty();
  return page.page_id();
}

Status HashIndex::Insert(int64_t key, const Rid& rid) {
  for (int attempt = 0; attempt <= kMaxGlobalDepth + 1; ++attempt) {
    uint32_t slot = DirSlotFor(key);
    BULKDEL_ASSIGN_OR_RETURN(PageId head, DirEntry(slot));
    // Duplicate check + find a page with space along the chain.
    PageId cur = head;
    PageId space_page = kInvalidPageId;
    PageId tail = head;
    uint8_t head_depth = 0;
    while (cur != kInvalidPageId) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      Bucket bucket(guard.data());
      if (cur == head) head_depth = bucket.local_depth();
      for (uint16_t i = 0; i < bucket.count(); ++i) {
        if (bucket.Key(i) == key && bucket.RidAt(i) == rid) {
          return Status::AlreadyExists("entry already in hash index");
        }
      }
      if (space_page == kInvalidPageId &&
          bucket.count() < Bucket::Capacity()) {
        space_page = cur;
      }
      tail = cur;
      cur = bucket.overflow();
    }
    if (space_page != kInvalidPageId) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(space_page));
      Bucket bucket(guard.data());
      bucket.Append(key, rid);
      guard.MarkDirty();
      ++entry_count_;
      return Status::OK();
    }
    // Chain full: split the primary bucket if the depths allow, else chain
    // one more overflow page.
    if (head_depth < kMaxGlobalDepth) {
      Status split = SplitBucket(slot);
      if (split.ok()) continue;  // re-probe: the key may map elsewhere now
      if (split.code() != StatusCode::kResourceExhausted) return split;
    }
    BULKDEL_ASSIGN_OR_RETURN(PageId fresh, NewBucket(head_depth));
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard tguard, pool_->FetchPage(tail));
      Bucket tbucket(tguard.data());
      tbucket.set_overflow(fresh);
      tguard.MarkDirty();
    }
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(fresh));
    Bucket bucket(guard.data());
    bucket.Append(key, rid);
    guard.MarkDirty();
    ++entry_count_;
    return Status::OK();
  }
  return Status::Internal("hash insert did not converge");
}

Status HashIndex::SplitBucket(uint32_t dir_slot) {
  BULKDEL_ASSIGN_OR_RETURN(PageId head, DirEntry(dir_slot));
  uint8_t old_depth;
  {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(head));
    old_depth = Bucket(guard.data()).local_depth();
  }
  if (old_depth >= kMaxGlobalDepth) {
    return Status::ResourceExhausted("bucket at max depth");
  }
  if (old_depth == global_depth_) {
    // Double the directory.
    if (global_depth_ + 1 > kMaxGlobalDepth) {
      return Status::ResourceExhausted("directory page full");
    }
    BULKDEL_ASSIGN_OR_RETURN(PageGuard dir, pool_->FetchPage(directory_page_));
    uint32_t n = 1u << global_depth_;
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t v = LoadU32(dir.data() + 4 * i);
      StoreU32(dir.data() + 4 * (i + n), v);
    }
    dir.MarkDirty();
    ++global_depth_;
  }

  // Collect the whole chain's entries, then redistribute on the new bit.
  std::vector<KeyRid> entries;
  std::vector<PageId> overflow_pages;
  {
    PageId cur = head;
    bool first = true;
    while (cur != kInvalidPageId) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      Bucket bucket(guard.data());
      for (uint16_t i = 0; i < bucket.count(); ++i) {
        entries.emplace_back(bucket.Key(i), bucket.RidAt(i));
      }
      PageId next = bucket.overflow();
      if (!first) overflow_pages.push_back(cur);
      first = false;
      cur = next;
    }
  }
  for (PageId p : overflow_pages) {
    BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(p));
  }

  uint8_t new_depth = static_cast<uint8_t>(old_depth + 1);
  BULKDEL_ASSIGN_OR_RETURN(PageId sibling, NewBucket(new_depth));
  {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(head));
    Bucket bucket(guard.data());
    bucket.Init(new_depth);
    guard.MarkDirty();
  }

  // Rewire directory: among the slots that pointed at `head`, those with the
  // new bit set now point at `sibling`.
  uint32_t pattern = dir_slot & ((1u << old_depth) - 1);
  {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard dir, pool_->FetchPage(directory_page_));
    uint32_t n = 1u << global_depth_;
    for (uint32_t i = 0; i < n; ++i) {
      if ((i & ((1u << old_depth) - 1)) != pattern) continue;
      bool high = (i >> old_depth) & 1;
      StoreU32(dir.data() + 4 * i, high ? sibling : head);
    }
    dir.MarkDirty();
  }

  // Reinsert the collected entries into the two fresh chains.
  for (const KeyRid& e : entries) {
    bool high = (HashKey(e.key) >> old_depth) & 1;
    PageId target = high ? sibling : head;
    // Append along the chain, adding overflow pages as needed.
    while (true) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(target));
      Bucket bucket(guard.data());
      if (bucket.Append(e.key, e.rid)) {
        guard.MarkDirty();
        break;
      }
      if (bucket.overflow() == kInvalidPageId) {
        BULKDEL_ASSIGN_OR_RETURN(PageId fresh, NewBucket(new_depth));
        bucket.set_overflow(fresh);
        guard.MarkDirty();
        target = fresh;
      } else {
        target = bucket.overflow();
      }
    }
  }
  return Status::OK();
}

Status HashIndex::Delete(int64_t key, const Rid& rid) {
  uint32_t slot = DirSlotFor(key);
  BULKDEL_ASSIGN_OR_RETURN(PageId head, DirEntry(slot));
  PageId prev = kInvalidPageId;
  PageId cur = head;
  while (cur != kInvalidPageId) {
    PageId next;
    bool emptied_overflow = false;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      Bucket bucket(guard.data());
      next = bucket.overflow();
      for (uint16_t i = 0; i < bucket.count(); ++i) {
        if (bucket.Key(i) == key && bucket.RidAt(i) == rid) {
          bucket.RemoveAt(i);
          guard.MarkDirty();
          --entry_count_;
          emptied_overflow = cur != head && bucket.count() == 0;
          if (emptied_overflow) {
            // Unlink and free the empty overflow page (free-at-empty).
            guard.Release();
            BULKDEL_ASSIGN_OR_RETURN(PageGuard pguard, pool_->FetchPage(prev));
            Bucket pbucket(pguard.data());
            pbucket.set_overflow(next);
            pguard.MarkDirty();
            pguard.Release();
            BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(cur));
          }
          return Status::OK();
        }
      }
    }
    prev = cur;
    cur = next;
  }
  return Status::NotFound("entry not in hash index");
}

Result<std::vector<Rid>> HashIndex::Search(int64_t key) {
  std::vector<Rid> rids;
  uint32_t slot = DirSlotFor(key);
  BULKDEL_ASSIGN_OR_RETURN(PageId cur, DirEntry(slot));
  while (cur != kInvalidPageId) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
    Bucket bucket(guard.data());
    for (uint16_t i = 0; i < bucket.count(); ++i) {
      if (bucket.Key(i) == key) rids.push_back(bucket.RidAt(i));
    }
    cur = bucket.overflow();
  }
  return rids;
}

Status HashIndex::ProcessChain(
    PageId head, const std::function<bool(int64_t, const Rid&)>& pred,
    uint64_t* deleted, uint64_t* overflow_pages) {
  PageId prev = kInvalidPageId;
  PageId cur = head;
  while (cur != kInvalidPageId) {
    PageId next;
    bool empty_overflow;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      Bucket bucket(guard.data());
      next = bucket.overflow();
      if (cur != head) ++*overflow_pages;
      bool modified = false;
      uint16_t i = 0;
      while (i < bucket.count()) {
        if (pred(bucket.Key(i), bucket.RidAt(i))) {
          bucket.RemoveAt(i);
          ++*deleted;
          modified = true;
        } else {
          ++i;
        }
      }
      if (modified) guard.MarkDirty();
      empty_overflow = cur != head && bucket.count() == 0;
    }
    if (empty_overflow) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard pguard, pool_->FetchPage(prev));
      Bucket pbucket(pguard.data());
      pbucket.set_overflow(next);
      pguard.MarkDirty();
      pguard.Release();
      BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(cur));
    } else {
      prev = cur;
    }
    cur = next;
  }
  return Status::OK();
}

Status HashIndex::BulkDeleteKeys(const std::vector<int64_t>& keys,
                                 HashBulkDeleteStats* stats) {
  HashBulkDeleteStats local;
  // Hash-partition the delete list by directory slot — the hash-table
  // analogue of sorting the list into a B-tree's key order.
  std::vector<std::pair<uint32_t, int64_t>> partitioned;
  partitioned.reserve(keys.size());
  for (int64_t k : keys) partitioned.emplace_back(DirSlotFor(k), k);
  std::sort(partitioned.begin(), partitioned.end());

  size_t i = 0;
  while (i < partitioned.size()) {
    uint32_t slot = partitioned[i].first;
    U64HashSet doomed(16);
    while (i < partitioned.size() && partitioned[i].first == slot) {
      doomed.Insert(static_cast<uint64_t>(partitioned[i].second));
      ++i;
    }
    BULKDEL_ASSIGN_OR_RETURN(PageId head, DirEntry(slot));
    ++local.buckets_visited;
    uint64_t deleted = 0;
    BULKDEL_RETURN_IF_ERROR(ProcessChain(
        head,
        [&](int64_t key, const Rid&) {
          return doomed.Contains(static_cast<uint64_t>(key));
        },
        &deleted, &local.overflow_pages_visited));
    local.entries_deleted += deleted;
  }
  entry_count_ -= local.entries_deleted;
  BULKDEL_RETURN_IF_ERROR(FlushMeta());
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status HashIndex::ScanAll(
    const std::function<Status(int64_t, const Rid&)>& visitor) {
  uint32_t n = num_buckets();
  for (uint32_t slot = 0; slot < n; ++slot) {
    BULKDEL_ASSIGN_OR_RETURN(PageId head, DirEntry(slot));
    uint8_t ld;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(head));
      ld = Bucket(guard.data()).local_depth();
    }
    // Visit each bucket only from its canonical (lowest) directory slot.
    if (slot != (slot & ((1u << ld) - 1))) continue;
    PageId cur = head;
    while (cur != kInvalidPageId) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      Bucket bucket(guard.data());
      for (uint16_t i = 0; i < bucket.count(); ++i) {
        BULKDEL_RETURN_IF_ERROR(visitor(bucket.Key(i), bucket.RidAt(i)));
      }
      cur = bucket.overflow();
    }
  }
  return Status::OK();
}

Status HashIndex::CheckInvariants() {
  uint64_t total = 0;
  uint32_t n = num_buckets();
  for (uint32_t slot = 0; slot < n; ++slot) {
    BULKDEL_ASSIGN_OR_RETURN(PageId head, DirEntry(slot));
    uint8_t ld;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(head));
      ld = Bucket(guard.data()).local_depth();
    }
    if (ld > global_depth_) {
      return Status::Corruption("local depth exceeds global depth");
    }
    // Every slot sharing the pattern must point to the same page.
    uint32_t pattern = slot & ((1u << ld) - 1);
    BULKDEL_ASSIGN_OR_RETURN(PageId canonical, DirEntry(pattern));
    if (canonical != head) {
      return Status::Corruption("directory slots disagree for one bucket");
    }
    if (slot != pattern) continue;  // count each bucket once
    PageId cur = head;
    while (cur != kInvalidPageId) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      Bucket bucket(guard.data());
      for (uint16_t i = 0; i < bucket.count(); ++i) {
        uint32_t expect =
            static_cast<uint32_t>(HashKey(bucket.Key(i)) & ((1u << ld) - 1));
        if (expect != pattern) {
          return Status::Corruption("entry hashed to wrong bucket");
        }
      }
      total += bucket.count();
      cur = bucket.overflow();
    }
  }
  if (total != entry_count_) {
    return Status::Corruption("hash index count mismatch: stored " +
                              std::to_string(entry_count_) + ", found " +
                              std::to_string(total));
  }
  return Status::OK();
}

}  // namespace bulkdel

#ifndef BULKDEL_HASHIDX_HASH_INDEX_H_
#define BULKDEL_HASHIDX_HASH_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "btree/btree_node.h"  // KeyRid
#include "storage/buffer_pool.h"
#include "table/rid.h"
#include "util/result.h"

namespace bulkdel {

struct HashBulkDeleteStats {
  uint64_t entries_deleted = 0;
  uint64_t buckets_visited = 0;
  uint64_t overflow_pages_visited = 0;
};

/// Extendible-hashing index mapping int64 keys to RIDs, with per-bucket
/// overflow chains for heavy duplicates.
///
/// This implements the paper's *future work* (§5): "we plan to generalize
/// our approach and study algorithms to delete records in bulk from other
/// index structures such as hash tables". The vertical idea carries over
/// directly — instead of sorting the delete list to match a B-tree's key
/// order, the list is *hash-partitioned by bucket number*, which is the
/// physical layout of a hash table; each affected bucket (and its overflow
/// chain) is then read and written exactly once, regardless of how many
/// keys in the list fall into it. The traditional path probes the directory
/// and bucket once per deleted key.
///
/// Layout:
///   meta page:      [u32 magic][u8 global_depth][u64 entry_count]
///                   [u32 directory_page]
///   directory page: 2^global_depth bucket page-ids (u32 each); one page,
///                   so global depth is capped at log2(kPageSize/4).
///   bucket page:    [u8 local_depth][u8 pad][u16 count][u32 overflow]
///                   [u32 pad]; entries at 16, stride 16:
///                   [i64 key][u32 rid.page][u16 rid.slot][u16 flags]
class HashIndex {
 public:
  static Result<HashIndex> Create(BufferPool* pool);
  static Result<HashIndex> Open(BufferPool* pool, PageId meta_page);

  HashIndex(HashIndex&&) = default;
  HashIndex& operator=(HashIndex&&) = default;

  PageId meta_page() const { return meta_page_; }
  uint64_t entry_count() const { return entry_count_; }
  int global_depth() const { return global_depth_; }
  uint32_t num_buckets() const { return 1u << global_depth_; }

  /// Inserts (key, rid); exact composite duplicates are rejected.
  Status Insert(int64_t key, const Rid& rid);

  /// Traditional single delete of the exact (key, rid) entry.
  Status Delete(int64_t key, const Rid& rid);

  /// All RIDs stored under `key`.
  Result<std::vector<Rid>> Search(int64_t key);

  /// Bulk delete: removes every entry whose key is in `keys`. The list is
  /// hash-partitioned by bucket, and each affected bucket chain is processed
  /// once. Returns per-operation stats.
  Status BulkDeleteKeys(const std::vector<int64_t>& keys,
                        HashBulkDeleteStats* stats = nullptr);

  /// Visits every entry (arbitrary order).
  Status ScanAll(const std::function<Status(int64_t, const Rid&)>& visitor);

  Status FlushMeta();

  /// Structural validation: directory pointers consistent with local/global
  /// depths, every entry hashed to the right bucket, counts correct.
  Status CheckInvariants();

 private:
  explicit HashIndex(BufferPool* pool, PageId meta_page)
      : pool_(pool), meta_page_(meta_page) {}

  static uint64_t HashKey(int64_t key);
  uint32_t DirSlotFor(int64_t key) const {
    return static_cast<uint32_t>(HashKey(key) &
                                 ((1ull << global_depth_) - 1));
  }

  Status LoadMeta();
  Result<PageId> DirEntry(uint32_t slot);
  Status SetDirEntry(uint32_t slot, PageId bucket);
  Result<PageId> NewBucket(uint8_t local_depth);

  /// Splits the bucket serving `dir_slot`; may double the directory.
  Status SplitBucket(uint32_t dir_slot);

  /// Removes matching entries from one bucket chain; `pred` decides.
  Status ProcessChain(PageId head,
                      const std::function<bool(int64_t, const Rid&)>& pred,
                      uint64_t* deleted, uint64_t* overflow_pages);

  BufferPool* pool_;
  PageId meta_page_;
  PageId directory_page_ = kInvalidPageId;
  int global_depth_ = 0;
  uint64_t entry_count_ = 0;
};

}  // namespace bulkdel

#endif  // BULKDEL_HASHIDX_HASH_INDEX_H_

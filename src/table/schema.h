#ifndef BULKDEL_TABLE_SCHEMA_H_
#define BULKDEL_TABLE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/coding.h"
#include "util/result.h"

namespace bulkdel {

enum class ColumnType : uint8_t {
  kInt64,      ///< 8-byte signed integer (all indexed attributes).
  kFixedBytes  ///< fixed-length opaque padding (the paper's attribute K).
};

struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  /// Byte width; 8 for kInt64, arbitrary for kFixedBytes.
  uint32_t size = 8;

  static Column Int64(std::string name) {
    return Column{std::move(name), ColumnType::kInt64, 8};
  }
  static Column FixedBytes(std::string name, uint32_t size) {
    return Column{std::move(name), ColumnType::kFixedBytes, size};
  }
};

/// Fixed-length record layout. The paper's table R has ten duplicate-free
/// random integer attributes A..J plus a padding string K for a 512-byte
/// tuple; fixed-length layouts keep slotted pages trivial and RID arithmetic
/// exact, which is all the experiments need.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Convenience: `n_ints` int64 columns named A, B, C, ... plus padding to
  /// reach `tuple_size` bytes (0 = no padding). Mirrors the paper's R.
  static Result<Schema> PaperStyle(int n_ints, uint32_t tuple_size);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }
  uint32_t tuple_size() const { return tuple_size_; }
  uint32_t offset(size_t i) const { return offsets_[i]; }

  /// Index of the column with `name`, or -1.
  int FindColumn(const std::string& name) const;

  int64_t GetInt(const char* tuple, size_t col) const {
    return LoadI64(tuple + offsets_[col]);
  }
  void SetInt(char* tuple, size_t col, int64_t v) const {
    StoreI64(tuple + offsets_[col], v);
  }

 private:
  std::vector<Column> columns_;
  std::vector<uint32_t> offsets_;
  uint32_t tuple_size_ = 0;
};

}  // namespace bulkdel

#endif  // BULKDEL_TABLE_SCHEMA_H_

#include "table/heap_table.h"

#include <algorithm>
#include <cstring>

#include "table/heap_page.h"
#include "util/coding.h"

namespace bulkdel {

namespace {
// Header page layout offsets.
constexpr uint32_t kMagicOff = 0;
constexpr uint32_t kFirstOff = 4;
constexpr uint32_t kLastOff = 8;
constexpr uint32_t kCountOff = 12;
constexpr uint32_t kTupleSizeOff = 20;
constexpr uint32_t kNumPagesOff = 24;
constexpr uint32_t kTableMagic = 0x54424C31;  // "TBL1"
}  // namespace

Result<HeapTable> HeapTable::Create(BufferPool* pool, const Schema& schema) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard header, pool->NewPage());
  HeapTable table(pool, &schema, header.page_id());
  StoreU32(header.data() + kMagicOff, kTableMagic);
  StoreU32(header.data() + kFirstOff, kInvalidPageId);
  StoreU32(header.data() + kLastOff, kInvalidPageId);
  StoreU64(header.data() + kCountOff, 0);
  StoreU32(header.data() + kTupleSizeOff, schema.tuple_size());
  StoreU32(header.data() + kNumPagesOff, 0);
  header.MarkDirty();
  return table;
}

Result<HeapTable> HeapTable::Open(BufferPool* pool, const Schema& schema,
                                  PageId header_page) {
  HeapTable table(pool, &schema, header_page);
  BULKDEL_RETURN_IF_ERROR(table.LoadMeta());
  return table;
}

Status HeapTable::LoadMeta() {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard header, pool_->FetchPage(header_page_));
  if (LoadU32(header.data() + kMagicOff) != kTableMagic) {
    return Status::Corruption("bad table header magic on page " +
                              std::to_string(header_page_));
  }
  if (LoadU32(header.data() + kTupleSizeOff) != schema_->tuple_size()) {
    return Status::Corruption("schema tuple size mismatch");
  }
  first_data_page_ = LoadU32(header.data() + kFirstOff);
  last_data_page_ = LoadU32(header.data() + kLastOff);
  tuple_count_ = LoadU64(header.data() + kCountOff);
  num_data_pages_ = LoadU32(header.data() + kNumPagesOff);
  return Status::OK();
}

Status HeapTable::FlushMeta() {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard header, pool_->FetchPage(header_page_));
  StoreU32(header.data() + kFirstOff, first_data_page_);
  StoreU32(header.data() + kLastOff, last_data_page_);
  StoreU64(header.data() + kCountOff, tuple_count_);
  StoreU32(header.data() + kNumPagesOff, num_data_pages_);
  header.MarkDirty();
  return Status::OK();
}

Status HeapTable::AppendDataPage(PageId* new_page) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->NewPage());
  HeapPage hp(page.data(), schema_->tuple_size());
  hp.Init();
  page.MarkDirty();
  *new_page = page.page_id();
  page.Release();
  if (first_data_page_ == kInvalidPageId) {
    first_data_page_ = *new_page;
  } else {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard last, pool_->FetchPage(last_data_page_));
    HeapPage last_hp(last.data(), schema_->tuple_size());
    last_hp.set_next_page(*new_page);
    last.MarkDirty();
  }
  last_data_page_ = *new_page;
  ++num_data_pages_;
  return Status::OK();
}

Result<Rid> HeapTable::Insert(const char* tuple) {
  // Try pages known to have space first (slots freed by deletes).
  while (!pages_with_space_.empty()) {
    PageId candidate = pages_with_space_.back();
    BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(candidate));
    HeapPage hp(page.data(), schema_->tuple_size());
    int slot = hp.Insert(tuple);
    if (slot >= 0) {
      page.MarkDirty();
      if (hp.IsFull()) pages_with_space_.pop_back();
      ++tuple_count_;
      return Rid(candidate, static_cast<uint16_t>(slot));
    }
    pages_with_space_.pop_back();  // stale entry
  }
  // Append to the tail page, allocating a new one when full.
  if (last_data_page_ != kInvalidPageId) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(last_data_page_));
    HeapPage hp(page.data(), schema_->tuple_size());
    int slot = hp.Insert(tuple);
    if (slot >= 0) {
      page.MarkDirty();
      ++tuple_count_;
      return Rid(last_data_page_, static_cast<uint16_t>(slot));
    }
  }
  PageId fresh;
  BULKDEL_RETURN_IF_ERROR(AppendDataPage(&fresh));
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(fresh));
  HeapPage hp(page.data(), schema_->tuple_size());
  int slot = hp.Insert(tuple);
  if (slot < 0) {
    return Status::Internal("fresh heap page rejected insert");
  }
  page.MarkDirty();
  ++tuple_count_;
  return Rid(fresh, static_cast<uint16_t>(slot));
}

Result<Rid> HeapTable::PeekInsertRid() {
  // Mirror Insert()'s choice exactly, without mutating slot state.
  while (!pages_with_space_.empty()) {
    PageId candidate = pages_with_space_.back();
    BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(candidate));
    HeapPage hp(page.data(), schema_->tuple_size());
    int slot = hp.FirstFreeSlot();
    if (slot >= 0) return Rid(candidate, static_cast<uint16_t>(slot));
    pages_with_space_.pop_back();  // stale entry, same as Insert()
  }
  if (last_data_page_ != kInvalidPageId) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(last_data_page_));
    HeapPage hp(page.data(), schema_->tuple_size());
    int slot = hp.FirstFreeSlot();
    if (slot >= 0) return Rid(last_data_page_, static_cast<uint16_t>(slot));
  }
  // Every known page is full: allocate the tail page now so the predicted
  // RID is what Insert() will use (an empty linked page is harmless if the
  // caller never follows through).
  PageId fresh;
  BULKDEL_RETURN_IF_ERROR(AppendDataPage(&fresh));
  return Rid(fresh, 0);
}

Status HeapTable::InsertAt(const Rid& rid, const char* tuple) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(rid.page));
  HeapPage hp(page.data(), schema_->tuple_size());
  if (hp.capacity() == 0) {
    // Never-formatted page: a pre-crash tail append whose Init was lost.
    hp.Init();
    page.MarkDirty();
    if (first_data_page_ == kInvalidPageId) {
      first_data_page_ = rid.page;
      last_data_page_ = rid.page;
      ++num_data_pages_;
    } else if (rid.page != last_data_page_) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard last,
                               pool_->FetchPage(last_data_page_));
      HeapPage last_hp(last.data(), schema_->tuple_size());
      last_hp.set_next_page(rid.page);
      last.MarkDirty();
      last_data_page_ = rid.page;
      ++num_data_pages_;
    }
  }
  if (rid.slot >= hp.capacity()) {
    return Status::Corruption("replay insert outside page capacity at " +
                              rid.ToString());
  }
  if (hp.SlotOccupied(rid.slot)) {
    if (std::memcmp(hp.TupleAt(rid.slot), tuple, schema_->tuple_size()) == 0) {
      return Status::OK();  // already applied
    }
    return Status::Corruption("replay insert collides at " + rid.ToString());
  }
  if (!hp.InsertAt(rid.slot, tuple)) {
    return Status::Corruption("replay insert failed at " + rid.ToString());
  }
  page.MarkDirty();
  ++tuple_count_;
  return Status::OK();
}

Status HeapTable::Get(const Rid& rid, char* out) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(rid.page));
  HeapPage hp(page.data(), schema_->tuple_size());
  if (rid.slot >= hp.capacity() || !hp.SlotOccupied(rid.slot)) {
    return Status::NotFound("no tuple at " + rid.ToString());
  }
  std::memcpy(out, hp.TupleAt(rid.slot), schema_->tuple_size());
  return Status::OK();
}

bool HeapTable::Exists(const Rid& rid) {
  auto page = pool_->FetchPage(rid.page);
  if (!page.ok()) return false;
  HeapPage hp(page->data(), schema_->tuple_size());
  return rid.slot < hp.capacity() && hp.SlotOccupied(rid.slot);
}

Status HeapTable::Delete(const Rid& rid, char* deleted_tuple) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(rid.page));
  HeapPage hp(page.data(), schema_->tuple_size());
  if (rid.slot >= hp.capacity() || !hp.SlotOccupied(rid.slot)) {
    return Status::NotFound("no tuple at " + rid.ToString());
  }
  if (deleted_tuple != nullptr) {
    std::memcpy(deleted_tuple, hp.TupleAt(rid.slot), schema_->tuple_size());
  }
  bool was_full = hp.IsFull();
  hp.Delete(rid.slot);
  page.MarkDirty();
  --tuple_count_;
  if (was_full) pages_with_space_.push_back(rid.page);
  return Status::OK();
}

Status HeapTable::UpdateInPlace(const Rid& rid, const char* tuple) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(rid.page));
  HeapPage hp(page.data(), schema_->tuple_size());
  if (rid.slot >= hp.capacity() || !hp.SlotOccupied(rid.slot)) {
    return Status::NotFound("no tuple at " + rid.ToString());
  }
  std::memcpy(hp.TupleAt(rid.slot), tuple, schema_->tuple_size());
  page.MarkDirty();
  return Status::OK();
}

namespace {
// Chain accessor handed to BufferPool::PrefetchChain; next_page lives at a
// fixed offset independent of the tuple size.
PageId HeapChainNextOf(const char* data) { return LoadU32(data + 4); }

// Read-ahead countdown for the heap chain walks, mirroring the B-tree leaf
// prefetcher: announce a window, then stay quiet until it is consumed.
class HeapChainPrefetcher {
 public:
  explicit HeapChainPrefetcher(BufferPool* pool)
      : pool_(pool), window_(pool->readahead_pages()) {}
  void Announce(PageId next) {
    if (window_ == 0 || next == kInvalidPageId) return;
    if (countdown_ > 0) {
      --countdown_;
      return;
    }
    size_t covered = pool_->PrefetchChain(next, window_, &HeapChainNextOf);
    countdown_ = covered > 0 ? covered : window_;
  }

 private:
  BufferPool* pool_;
  size_t window_;
  size_t countdown_ = 0;
};
}  // namespace

Status HeapTable::Scan(
    const std::function<Status(const Rid&, const char*)>& visitor) {
  PageId current = first_data_page_;
  HeapChainPrefetcher prefetch(pool_);
  while (current != kInvalidPageId) {
    PageId next;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(current));
      HeapPage hp(page.data(), schema_->tuple_size());
      uint16_t cap = hp.capacity();
      for (uint16_t slot = 0; slot < cap; ++slot) {
        if (!hp.SlotOccupied(slot)) continue;
        BULKDEL_RETURN_IF_ERROR(visitor(Rid(current, slot), hp.TupleAt(slot)));
      }
      next = hp.next_page();
    }
    prefetch.Announce(next);
    current = next;
  }
  return Status::OK();
}

Status HeapTable::ScanDeleteIf(
    const std::function<bool(const Rid&, const char*)>& pred,
    const std::function<void(const Rid&, const char*)>& on_delete,
    uint64_t* deleted_count) {
  uint64_t deleted = 0;
  PageId current = first_data_page_;
  HeapChainPrefetcher prefetch(pool_);
  while (current != kInvalidPageId) {
    PageId next;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(current));
      HeapPage hp(page.data(), schema_->tuple_size());
      bool was_full = hp.IsFull();
      bool modified = false;
      uint16_t cap = hp.capacity();
      for (uint16_t slot = 0; slot < cap; ++slot) {
        if (!hp.SlotOccupied(slot)) continue;
        Rid rid(current, slot);
        const char* tuple = hp.TupleAt(slot);
        if (!pred(rid, tuple)) continue;
        if (on_delete) on_delete(rid, tuple);
        hp.Delete(slot);
        modified = true;
        ++deleted;
      }
      if (modified) {
        page.MarkDirty();
        if (was_full && !hp.IsFull()) pages_with_space_.push_back(current);
      }
      next = hp.next_page();
    }
    prefetch.Announce(next);
    current = next;
  }
  tuple_count_ -= deleted;
  if (deleted_count != nullptr) *deleted_count = deleted;
  return Status::OK();
}

Status HeapTable::BulkDeleteSortedRids(
    const std::vector<Rid>& rids,
    const std::function<void(const Rid&, const char*)>& on_delete,
    uint64_t* deleted_count, uint64_t* missing) {
  uint64_t deleted = 0;
  uint64_t absent = 0;
  // The sorted RID list names every upcoming page exactly; announce them to
  // the pool in windows so the reads overlap the per-page work. Simulated
  // I/O is unaffected: prefetch charges on consumption (see PrefetchPages).
  std::vector<PageId> upcoming;
  const size_t window = pool_->readahead_pages();
  if (window > 0) {
    upcoming.reserve(rids.size() / 8 + 1);
    for (size_t k = 0; k < rids.size(); ++k) {
      if (upcoming.empty() || upcoming.back() != rids[k].page) {
        upcoming.push_back(rids[k].page);
      }
    }
  }
  size_t next_announce = 0;  // index into `upcoming` of the next window start
  size_t page_ordinal = 0;   // distinct pages consumed so far
  size_t i = 0;
  while (i < rids.size()) {
    PageId page_id = rids[i].page;
    if (window > 0 && page_ordinal >= next_announce) {
      size_t n = std::min(window, upcoming.size() - page_ordinal);
      pool_->PrefetchPages(upcoming.data() + page_ordinal, n);
      next_announce = page_ordinal + n;
    }
    ++page_ordinal;
    BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(page_id));
    HeapPage hp(page.data(), schema_->tuple_size());
    bool was_full = hp.IsFull();
    bool modified = false;
    for (; i < rids.size() && rids[i].page == page_id; ++i) {
      uint16_t slot = rids[i].slot;
      if (slot >= hp.capacity() || !hp.SlotOccupied(slot)) {
        ++absent;
        continue;
      }
      if (on_delete) on_delete(rids[i], hp.TupleAt(slot));
      hp.Delete(slot);
      modified = true;
      ++deleted;
    }
    if (modified) {
      page.MarkDirty();
      if (was_full && !hp.IsFull()) pages_with_space_.push_back(page_id);
    }
  }
  tuple_count_ -= deleted;
  if (deleted_count != nullptr) *deleted_count = deleted;
  if (missing != nullptr) *missing = absent;
  return Status::OK();
}

Status HeapTable::RecountFromScan() {
  uint64_t count = 0;
  BULKDEL_RETURN_IF_ERROR(Scan([&](const Rid&, const char*) {
    ++count;
    return Status::OK();
  }));
  tuple_count_ = count;
  return FlushMeta();
}

Status HeapTable::Drop() {
  PageId current = first_data_page_;
  while (current != kInvalidPageId) {
    PageId next;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(current));
      HeapPage hp(page.data(), schema_->tuple_size());
      next = hp.next_page();
    }
    BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(current));
    current = next;
  }
  BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(header_page_));
  first_data_page_ = last_data_page_ = kInvalidPageId;
  tuple_count_ = 0;
  num_data_pages_ = 0;
  pages_with_space_.clear();
  return Status::OK();
}

}  // namespace bulkdel

#include "table/heap_table.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "table/heap_page.h"
#include "util/coding.h"

namespace bulkdel {

namespace {
// Header page layout offsets.
constexpr uint32_t kMagicOff = 0;
constexpr uint32_t kFirstOff = 4;
constexpr uint32_t kLastOff = 8;
constexpr uint32_t kCountOff = 12;
constexpr uint32_t kTupleSizeOff = 20;
constexpr uint32_t kNumPagesOff = 24;
constexpr uint32_t kTableMagic = 0x54424C31;  // "TBL1"
}  // namespace

Result<HeapTable> HeapTable::Create(BufferPool* pool, const Schema& schema) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard header, pool->NewPage());
  HeapTable table(pool, &schema, header.page_id());
  StoreU32(header.data() + kMagicOff, kTableMagic);
  StoreU32(header.data() + kFirstOff, kInvalidPageId);
  StoreU32(header.data() + kLastOff, kInvalidPageId);
  StoreU64(header.data() + kCountOff, 0);
  StoreU32(header.data() + kTupleSizeOff, schema.tuple_size());
  StoreU32(header.data() + kNumPagesOff, 0);
  header.MarkDirty();
  table.extent_map_valid_ = true;  // empty map, maintained by DML from here
  return table;
}

Result<HeapTable> HeapTable::Open(BufferPool* pool, const Schema& schema,
                                  PageId header_page) {
  HeapTable table(pool, &schema, header_page);
  BULKDEL_RETURN_IF_ERROR(table.LoadMeta());
  return table;
}

Status HeapTable::LoadMeta() {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard header, pool_->FetchPage(header_page_));
  if (LoadU32(header.data() + kMagicOff) != kTableMagic) {
    return Status::Corruption("bad table header magic on page " +
                              std::to_string(header_page_));
  }
  if (LoadU32(header.data() + kTupleSizeOff) != schema_->tuple_size()) {
    return Status::Corruption("schema tuple size mismatch");
  }
  first_data_page_ = LoadU32(header.data() + kFirstOff);
  last_data_page_ = LoadU32(header.data() + kLastOff);
  tuple_count_ = LoadU64(header.data() + kCountOff);
  num_data_pages_ = LoadU32(header.data() + kNumPagesOff);
  return Status::OK();
}

Status HeapTable::FlushMeta() {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard header, pool_->FetchPage(header_page_));
  StoreU32(header.data() + kFirstOff, first_data_page_);
  StoreU32(header.data() + kLastOff, last_data_page_);
  StoreU64(header.data() + kCountOff, tuple_count_);
  StoreU32(header.data() + kNumPagesOff, num_data_pages_);
  header.MarkDirty();
  return Status::OK();
}

Status HeapTable::AppendDataPage(PageId* new_page) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->NewPage());
  HeapPage hp(page.data(), schema_->tuple_size());
  hp.Init();
  page.MarkDirty();
  *new_page = page.page_id();
  page.Release();
  if (first_data_page_ == kInvalidPageId) {
    first_data_page_ = *new_page;
  } else {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard last, pool_->FetchPage(last_data_page_));
    HeapPage last_hp(last.data(), schema_->tuple_size());
    last_hp.set_next_page(*new_page);
    last.MarkDirty();
  }
  last_data_page_ = *new_page;
  ++num_data_pages_;
  ExtentMapAppend(*new_page, 0);
  return Status::OK();
}

void HeapTable::ExtentMapAppend(PageId page, uint32_t occupied) {
  if (!extent_map_valid_) return;
  extent_pos_[page] = extents_.size();
  extents_.push_back(Extent{page, occupied});
}

void HeapTable::BumpOccupancy(PageId page, int delta) {
  if (!extent_map_valid_) return;
  auto it = extent_pos_.find(page);
  if (it == extent_pos_.end()) {
    // A page the map never saw (e.g. a replayed pre-crash tail page): the
    // map can no longer prove coverage — fail safe and rebuild on demand.
    extent_map_valid_ = false;
    extents_.clear();
    extent_pos_.clear();
    return;
  }
  extents_[it->second].occupied =
      static_cast<uint32_t>(static_cast<int64_t>(extents_[it->second].occupied) +
                            delta);
}


Result<Rid> HeapTable::Insert(const char* tuple) {
  // Try pages known to have space first (slots freed by deletes).
  while (!pages_with_space_.empty()) {
    PageId candidate = pages_with_space_.back();
    BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(candidate));
    HeapPage hp(page.data(), schema_->tuple_size());
    int slot = hp.Insert(tuple);
    if (slot >= 0) {
      page.MarkDirty();
      if (hp.IsFull()) pages_with_space_.pop_back();
      ++tuple_count_;
      BumpOccupancy(candidate, 1);
      return Rid(candidate, static_cast<uint16_t>(slot));
    }
    pages_with_space_.pop_back();  // stale entry
  }
  // Append to the tail page, allocating a new one when full.
  if (last_data_page_ != kInvalidPageId) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(last_data_page_));
    HeapPage hp(page.data(), schema_->tuple_size());
    int slot = hp.Insert(tuple);
    if (slot >= 0) {
      page.MarkDirty();
      ++tuple_count_;
      BumpOccupancy(last_data_page_, 1);
      return Rid(last_data_page_, static_cast<uint16_t>(slot));
    }
  }
  PageId fresh;
  BULKDEL_RETURN_IF_ERROR(AppendDataPage(&fresh));
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(fresh));
  HeapPage hp(page.data(), schema_->tuple_size());
  int slot = hp.Insert(tuple);
  if (slot < 0) {
    return Status::Internal("fresh heap page rejected insert");
  }
  page.MarkDirty();
  ++tuple_count_;
  BumpOccupancy(fresh, 1);
  return Rid(fresh, static_cast<uint16_t>(slot));
}

Result<Rid> HeapTable::PeekInsertRid() {
  // Mirror Insert()'s choice exactly, without mutating slot state.
  while (!pages_with_space_.empty()) {
    PageId candidate = pages_with_space_.back();
    BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(candidate));
    HeapPage hp(page.data(), schema_->tuple_size());
    int slot = hp.FirstFreeSlot();
    if (slot >= 0) return Rid(candidate, static_cast<uint16_t>(slot));
    pages_with_space_.pop_back();  // stale entry, same as Insert()
  }
  if (last_data_page_ != kInvalidPageId) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(last_data_page_));
    HeapPage hp(page.data(), schema_->tuple_size());
    int slot = hp.FirstFreeSlot();
    if (slot >= 0) return Rid(last_data_page_, static_cast<uint16_t>(slot));
  }
  // Every known page is full: allocate the tail page now so the predicted
  // RID is what Insert() will use (an empty linked page is harmless if the
  // caller never follows through).
  PageId fresh;
  BULKDEL_RETURN_IF_ERROR(AppendDataPage(&fresh));
  return Rid(fresh, 0);
}

Status HeapTable::InsertAt(const Rid& rid, const char* tuple) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(rid.page));
  HeapPage hp(page.data(), schema_->tuple_size());
  if (hp.capacity() == 0) {
    // Never-formatted page: a pre-crash tail append whose Init was lost.
    hp.Init();
    page.MarkDirty();
    if (first_data_page_ == kInvalidPageId) {
      first_data_page_ = rid.page;
      last_data_page_ = rid.page;
      ++num_data_pages_;
    } else if (rid.page != last_data_page_) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard last,
                               pool_->FetchPage(last_data_page_));
      HeapPage last_hp(last.data(), schema_->tuple_size());
      last_hp.set_next_page(rid.page);
      last.MarkDirty();
      last_data_page_ = rid.page;
      ++num_data_pages_;
    }
  }
  if (rid.slot >= hp.capacity()) {
    return Status::Corruption("replay insert outside page capacity at " +
                              rid.ToString());
  }
  if (hp.SlotOccupied(rid.slot)) {
    if (std::memcmp(hp.TupleAt(rid.slot), tuple, schema_->tuple_size()) == 0) {
      return Status::OK();  // already applied
    }
    return Status::Corruption("replay insert collides at " + rid.ToString());
  }
  if (!hp.InsertAt(rid.slot, tuple)) {
    return Status::Corruption("replay insert failed at " + rid.ToString());
  }
  page.MarkDirty();
  ++tuple_count_;
  BumpOccupancy(rid.page, 1);
  return Status::OK();
}

Status HeapTable::Get(const Rid& rid, char* out) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(rid.page));
  HeapPage hp(page.data(), schema_->tuple_size());
  if (rid.slot >= hp.capacity() || !hp.SlotOccupied(rid.slot)) {
    return Status::NotFound("no tuple at " + rid.ToString());
  }
  std::memcpy(out, hp.TupleAt(rid.slot), schema_->tuple_size());
  return Status::OK();
}

bool HeapTable::Exists(const Rid& rid) {
  auto page = pool_->FetchPage(rid.page);
  if (!page.ok()) return false;
  HeapPage hp(page->data(), schema_->tuple_size());
  return rid.slot < hp.capacity() && hp.SlotOccupied(rid.slot);
}

Status HeapTable::Delete(const Rid& rid, char* deleted_tuple) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(rid.page));
  HeapPage hp(page.data(), schema_->tuple_size());
  if (rid.slot >= hp.capacity() || !hp.SlotOccupied(rid.slot)) {
    return Status::NotFound("no tuple at " + rid.ToString());
  }
  if (deleted_tuple != nullptr) {
    std::memcpy(deleted_tuple, hp.TupleAt(rid.slot), schema_->tuple_size());
  }
  bool was_full = hp.IsFull();
  hp.Delete(rid.slot);
  page.MarkDirty();
  --tuple_count_;
  BumpOccupancy(rid.page, -1);
  if (was_full) pages_with_space_.push_back(rid.page);
  return Status::OK();
}

Status HeapTable::UpdateInPlace(const Rid& rid, const char* tuple) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(rid.page));
  HeapPage hp(page.data(), schema_->tuple_size());
  if (rid.slot >= hp.capacity() || !hp.SlotOccupied(rid.slot)) {
    return Status::NotFound("no tuple at " + rid.ToString());
  }
  std::memcpy(hp.TupleAt(rid.slot), tuple, schema_->tuple_size());
  page.MarkDirty();
  return Status::OK();
}

namespace {
// Chain accessor handed to BufferPool::PrefetchChain; next_page lives at a
// fixed offset independent of the tuple size.
PageId HeapChainNextOf(const char* data) { return LoadU32(data + 4); }

// Read-ahead countdown for the heap chain walks, mirroring the B-tree leaf
// prefetcher: announce a window, then stay quiet until it is consumed.
class HeapChainPrefetcher {
 public:
  explicit HeapChainPrefetcher(BufferPool* pool)
      : pool_(pool), window_(pool->readahead_pages()) {}
  void Announce(PageId next) {
    if (window_ == 0 || next == kInvalidPageId) return;
    if (countdown_ > 0) {
      --countdown_;
      return;
    }
    size_t covered = pool_->PrefetchChain(next, window_, &HeapChainNextOf);
    countdown_ = covered > 0 ? covered : window_;
  }

 private:
  BufferPool* pool_;
  size_t window_;
  size_t countdown_ = 0;
};
}  // namespace

Status HeapTable::Scan(
    const std::function<Status(const Rid&, const char*)>& visitor) {
  PageId current = first_data_page_;
  HeapChainPrefetcher prefetch(pool_);
  while (current != kInvalidPageId) {
    PageId next;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(current));
      HeapPage hp(page.data(), schema_->tuple_size());
      uint16_t cap = hp.capacity();
      for (uint16_t slot = 0; slot < cap; ++slot) {
        if (!hp.SlotOccupied(slot)) continue;
        BULKDEL_RETURN_IF_ERROR(visitor(Rid(current, slot), hp.TupleAt(slot)));
      }
      next = hp.next_page();
    }
    prefetch.Announce(next);
    current = next;
  }
  return Status::OK();
}

Status HeapTable::ScanDeleteIf(
    const std::function<bool(const Rid&, const char*)>& pred,
    const std::function<void(const Rid&, const char*)>& on_delete,
    uint64_t* deleted_count) {
  uint64_t deleted = 0;
  PageId current = first_data_page_;
  HeapChainPrefetcher prefetch(pool_);
  while (current != kInvalidPageId) {
    PageId next;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(current));
      HeapPage hp(page.data(), schema_->tuple_size());
      bool was_full = hp.IsFull();
      bool modified = false;
      uint16_t cap = hp.capacity();
      uint64_t page_deleted = 0;
      for (uint16_t slot = 0; slot < cap; ++slot) {
        if (!hp.SlotOccupied(slot)) continue;
        Rid rid(current, slot);
        const char* tuple = hp.TupleAt(slot);
        if (!pred(rid, tuple)) continue;
        if (on_delete) on_delete(rid, tuple);
        hp.Delete(slot);
        modified = true;
        ++page_deleted;
      }
      if (modified) {
        page.MarkDirty();
        deleted += page_deleted;
        BumpOccupancy(current, -static_cast<int>(page_deleted));
        if (was_full && !hp.IsFull()) pages_with_space_.push_back(current);
      }
      next = hp.next_page();
    }
    prefetch.Announce(next);
    current = next;
  }
  tuple_count_ -= deleted;
  if (deleted_count != nullptr) *deleted_count = deleted;
  return Status::OK();
}

Status HeapTable::BulkDeleteSortedRids(
    const std::vector<Rid>& rids,
    const std::function<void(const Rid&, const char*)>& on_delete,
    uint64_t* deleted_count, uint64_t* missing) {
  uint64_t deleted = 0;
  uint64_t absent = 0;
  // The sorted RID list names every upcoming page exactly; announce them to
  // the pool in windows so the reads overlap the per-page work. Simulated
  // I/O is unaffected: prefetch charges on consumption (see PrefetchPages).
  std::vector<PageId> upcoming;
  const size_t window = pool_->readahead_pages();
  if (window > 0) {
    upcoming.reserve(rids.size() / 8 + 1);
    for (size_t k = 0; k < rids.size(); ++k) {
      if (upcoming.empty() || upcoming.back() != rids[k].page) {
        upcoming.push_back(rids[k].page);
      }
    }
  }
  size_t next_announce = 0;  // index into `upcoming` of the next window start
  size_t page_ordinal = 0;   // distinct pages consumed so far
  size_t i = 0;
  while (i < rids.size()) {
    PageId page_id = rids[i].page;
    if (window > 0 && page_ordinal >= next_announce) {
      size_t n = std::min(window, upcoming.size() - page_ordinal);
      pool_->PrefetchPages(upcoming.data() + page_ordinal, n);
      next_announce = page_ordinal + n;
    }
    ++page_ordinal;
    BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(page_id));
    HeapPage hp(page.data(), schema_->tuple_size());
    bool was_full = hp.IsFull();
    bool modified = false;
    uint64_t page_deleted = 0;
    for (; i < rids.size() && rids[i].page == page_id; ++i) {
      uint16_t slot = rids[i].slot;
      if (slot >= hp.capacity() || !hp.SlotOccupied(slot)) {
        ++absent;
        continue;
      }
      if (on_delete) on_delete(rids[i], hp.TupleAt(slot));
      hp.Delete(slot);
      modified = true;
      ++page_deleted;
    }
    if (modified) {
      page.MarkDirty();
      deleted += page_deleted;
      BumpOccupancy(page_id, -static_cast<int>(page_deleted));
      if (was_full && !hp.IsFull()) pages_with_space_.push_back(page_id);
    }
  }
  tuple_count_ -= deleted;
  if (deleted_count != nullptr) *deleted_count = deleted;
  if (missing != nullptr) *missing = absent;
  return Status::OK();
}

Status HeapTable::EnsureExtentMap() {
  if (extent_map_valid_) return Status::OK();
  extents_.clear();
  extent_pos_.clear();
  PageId current = first_data_page_;
  HeapChainPrefetcher prefetch(pool_);
  while (current != kInvalidPageId) {
    PageId next;
    uint32_t live;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(current));
      HeapPage hp(page.data(), schema_->tuple_size());
      live = hp.live_count();
      next = hp.next_page();
    }
    extent_pos_[current] = extents_.size();
    extents_.push_back(Extent{current, live});
    prefetch.Announce(next);
    current = next;
  }
  extent_map_valid_ = true;
  return Status::OK();
}

Status HeapTable::BulkDeleteSortedRidsExtentDrop(
    const std::vector<Rid>& rids, const std::vector<PageId>& force_drop,
    const std::function<Status(PageId, uint64_t)>& on_drop,
    const std::function<void(const Rid&, const char*)>& on_delete,
    uint64_t* deleted_count, std::vector<PageId>* dropped_out) {
  BULKDEL_RETURN_IF_ERROR(EnsureExtentMap());
  uint64_t deleted = 0;

  // Classify pages. A page drops whole when the extent map proves every one
  // of its live tuples is doomed (occupied == doomed-RID count), or when its
  // kExtentDrop record is already durable (crash resume) and it is still
  // chained. Already-detached force_drop pages are skipped outright — their
  // tuples left the durable chain before the crash.
  std::unordered_map<PageId, uint64_t> doomed;
  for (const Rid& r : rids) ++doomed[r.page];
  std::unordered_set<PageId> forced(force_drop.begin(), force_drop.end());
  std::unordered_set<PageId> drops;
  std::unordered_set<PageId> skip;
  for (const auto& [page, n] : doomed) {
    auto it = extent_pos_.find(page);
    if (it == extent_pos_.end()) {
      skip.insert(page);  // not in the chain: nothing of it is visible
      continue;
    }
    if (forced.count(page) || extents_[it->second].occupied == n) {
      drops.insert(page);
    }
  }
  for (PageId page : forced) {
    // Forced pages may carry no doomed RIDs on resume (the RID list was
    // re-derived after their index entries died): still re-drop if chained.
    if (extent_pos_.count(page)) drops.insert(page);
  }

  // Boundary pages: the ordinary one-pass read-modify-write merge.
  size_t i = 0;
  while (i < rids.size()) {
    PageId page_id = rids[i].page;
    if (drops.count(page_id) || skip.count(page_id)) {
      for (; i < rids.size() && rids[i].page == page_id; ++i) {
      }
      continue;
    }
    BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(page_id));
    HeapPage hp(page.data(), schema_->tuple_size());
    bool was_full = hp.IsFull();
    bool modified = false;
    uint64_t page_deleted = 0;
    for (; i < rids.size() && rids[i].page == page_id; ++i) {
      uint16_t slot = rids[i].slot;
      if (slot >= hp.capacity() || !hp.SlotOccupied(slot)) continue;
      if (on_delete) on_delete(rids[i], hp.TupleAt(slot));
      hp.Delete(slot);
      modified = true;
      ++page_deleted;
    }
    if (modified) {
      page.MarkDirty();
      deleted += page_deleted;
      BumpOccupancy(page_id, -static_cast<int>(page_deleted));
      if (was_full && !hp.IsFull()) pages_with_space_.push_back(page_id);
    }
  }

  if (!drops.empty()) {
    // Log every drop first (record-before-mutation), then splice: a crash
    // between record and splice leaves the page chained, and the resume pass
    // re-drops it idempotently via force_drop.
    for (const Extent& e : extents_) {
      if (!drops.count(e.page)) continue;
      BULKDEL_RETURN_IF_ERROR(on_drop(e.page, e.occupied));
      if (dropped_out != nullptr) dropped_out->push_back(e.page);
      deleted += e.occupied;
    }
    // Splice the chain around the dropped runs, touching only the kept
    // predecessor of each run — never the dropped pages themselves.
    std::vector<Extent> kept;
    kept.reserve(extents_.size() - drops.size());
    for (const Extent& e : extents_) {
      if (!drops.count(e.page)) kept.push_back(e);
    }
    for (size_t j = 0; j < kept.size(); ++j) {
      PageId want_next =
          j + 1 < kept.size() ? kept[j + 1].page : kInvalidPageId;
      size_t old_pos = extent_pos_[kept[j].page];
      PageId old_next = old_pos + 1 < extents_.size()
                            ? extents_[old_pos + 1].page
                            : kInvalidPageId;
      if (old_next == want_next) continue;
      BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(kept[j].page));
      HeapPage hp(page.data(), schema_->tuple_size());
      hp.set_next_page(want_next);
      page.MarkDirty();
    }
    first_data_page_ = kept.empty() ? kInvalidPageId : kept.front().page;
    last_data_page_ = kept.empty() ? kInvalidPageId : kept.back().page;
    num_data_pages_ -= static_cast<uint32_t>(drops.size());
    pages_with_space_.erase(
        std::remove_if(pages_with_space_.begin(), pages_with_space_.end(),
                       [&](PageId p) { return drops.count(p) > 0; }),
        pages_with_space_.end());
    extents_ = std::move(kept);
    extent_pos_.clear();
    for (size_t j = 0; j < extents_.size(); ++j) {
      extent_pos_[extents_[j].page] = j;
    }
  }

  tuple_count_ -= deleted;
  if (deleted_count != nullptr) *deleted_count = deleted;
  return Status::OK();
}

Status HeapTable::FreeDroppedPages(const std::vector<PageId>& pages) {
  for (PageId page : pages) {
    BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(page));
  }
  return Status::OK();
}

Status HeapTable::ScrubDeadSlots(const std::vector<Rid>& rids,
                                 const std::unordered_set<PageId>& skip_pages) {
  const uint32_t tuple_size = schema_->tuple_size();
  for (size_t i = 0; i < rids.size();) {
    PageId pid = rids[i].page;
    size_t j = i;
    while (j < rids.size() && rids[j].page == pid) ++j;
    if (skip_pages.count(pid) == 0) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(pid));
      HeapPage hp(page.data(), tuple_size);
      bool dirtied = false;
      for (size_t k = i; k < j; ++k) {
        uint16_t slot = rids[k].slot;
        // Occupied slots are skipped: the RID may have been reused by an
        // insert since the delete (side-file / updater interleaving).
        if (slot >= hp.capacity() || hp.SlotOccupied(slot)) continue;
        std::memset(hp.TupleAt(slot), 0, tuple_size);
        dirtied = true;
      }
      if (dirtied) page.MarkDirty();
    }
    i = j;
  }
  return Status::OK();
}

Status HeapTable::RecountFromScan() {
  uint64_t count = 0;
  BULKDEL_RETURN_IF_ERROR(Scan([&](const Rid&, const char*) {
    ++count;
    return Status::OK();
  }));
  tuple_count_ = count;
  return FlushMeta();
}

Status HeapTable::Drop() {
  PageId current = first_data_page_;
  while (current != kInvalidPageId) {
    PageId next;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(current));
      HeapPage hp(page.data(), schema_->tuple_size());
      next = hp.next_page();
    }
    BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(current));
    current = next;
  }
  BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(header_page_));
  first_data_page_ = last_data_page_ = kInvalidPageId;
  tuple_count_ = 0;
  num_data_pages_ = 0;
  pages_with_space_.clear();
  extents_.clear();
  extent_pos_.clear();
  extent_map_valid_ = true;  // valid empty map: the table is gone
  return Status::OK();
}

}  // namespace bulkdel

#ifndef BULKDEL_TABLE_HEAP_TABLE_H_
#define BULKDEL_TABLE_HEAP_TABLE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/buffer_pool.h"
#include "table/rid.h"
#include "table/schema.h"
#include "util/relaxed_atomic.h"
#include "util/result.h"
#include "util/status.h"

namespace bulkdel {

/// Heap file of fixed-size tuples over the buffer pool.
///
/// Pages are chained in insertion order through their `next_page` header
/// field; since new pages are allocated in ascending page-id order, a chain
/// walk is a sequential scan and ascending-RID access is ascending-page
/// access. Tuple slots freed by deletes are reused by later inserts
/// (free-space management à la [6,14] of the paper, simplified to a
/// pages-with-space list).
///
/// The header page persists {first, last, count, pages}; the in-memory copy
/// is authoritative between FlushMeta() calls, and RecountFromScan() rebuilds
/// the count after a crash.
class HeapTable {
 public:
  /// Creates a new empty table; allocates its header page.
  static Result<HeapTable> Create(BufferPool* pool, const Schema& schema);

  /// Opens an existing table rooted at `header_page`.
  static Result<HeapTable> Open(BufferPool* pool, const Schema& schema,
                                PageId header_page);

  HeapTable(HeapTable&&) = default;
  HeapTable& operator=(HeapTable&&) = default;

  PageId header_page() const { return header_page_; }
  const Schema& schema() const { return *schema_; }
  uint64_t tuple_count() const { return tuple_count_; }
  uint32_t num_data_pages() const { return num_data_pages_; }
  PageId first_data_page() const { return first_data_page_; }

  /// Appends/fills a tuple; returns its RID.
  Result<Rid> Insert(const char* tuple);

  /// The RID the next Insert() will return, without placing a tuple. May
  /// allocate (and link) a fresh tail page when every known page is full, so
  /// the prediction is stable — lets a caller WAL-log the row *before*
  /// mutating it. Call under the same serialization as the Insert() itself.
  Result<Rid> PeekInsertRid();

  /// Idempotent targeted insert for WAL replay: places `tuple` at exactly
  /// `rid`. OK if the slot already holds an identical tuple; Corruption if
  /// it holds different bytes. Re-formats and re-links an uninitialized
  /// tail page (a pre-crash append whose formatting never became durable).
  Status InsertAt(const Rid& rid, const char* tuple);

  /// Copies the tuple at `rid` into `out` (tuple_size bytes).
  Status Get(const Rid& rid, char* out);

  /// Returns true if the tuple existed at `rid`.
  bool Exists(const Rid& rid);

  /// Deletes the tuple at `rid`. If `deleted_tuple` is non-null the tuple
  /// bytes are copied out first. NotFound if the slot is empty.
  Status Delete(const Rid& rid, char* deleted_tuple = nullptr);

  /// Overwrites the tuple at `rid` in place (fixed-size tuples keep their
  /// slot, so the RID — and therefore every index entry — stays valid).
  Status UpdateInPlace(const Rid& rid, const char* tuple);

  /// Sequential scan in chain (≈ RID) order. The visitor may not mutate the
  /// table. Stops early on non-OK from the visitor.
  Status Scan(const std::function<Status(const Rid&, const char*)>& visitor);

  /// Scan that deletes every tuple for which `pred` returns true, invoking
  /// `on_delete` with the doomed tuple first. This is the probe half of the
  /// hash-based bulk-delete operator on the base table.
  Status ScanDeleteIf(
      const std::function<bool(const Rid&, const char*)>& pred,
      const std::function<void(const Rid&, const char*)>& on_delete,
      uint64_t* deleted_count);

  /// Deletes an ascending-sorted RID list in one physical pass, touching each
  /// page once. `on_delete` sees each tuple before removal. RIDs that do not
  /// exist are counted in `*missing` (idempotent re-execution after a crash
  /// relies on this). This is the merge-based bulk-delete operator on the
  /// base table (the R ⋉̸ step of the paper's Fig. 3).
  Status BulkDeleteSortedRids(
      const std::vector<Rid>& rids,
      const std::function<void(const Rid&, const char*)>& on_delete,
      uint64_t* deleted_count, uint64_t* missing = nullptr);

  /// Extent-drop bulk delete: deletes an ascending-sorted RID list like
  /// BulkDeleteSortedRids, but pages whose every live tuple is doomed (the
  /// in-memory extent map proves `occupied(P) == doomed RIDs on P`) are
  /// *dropped whole*: spliced out of the page chain without ever being read.
  /// `on_drop(page, tuples)` fires once per dropped page before the splice
  /// (the recovery layer logs kExtentDrop); an error aborts with the page
  /// intact. Dropped pages are appended to `dropped_out` and stay allocated —
  /// the caller frees them with FreeDroppedPages() once the statement's End
  /// record is durable (freeing earlier would let the allocator alias them
  /// before the drop is recoverable). `force_drop` (crash resume) names
  /// pages whose kExtentDrop record is already durable: if still chained
  /// they are re-dropped idempotently, if already detached they are skipped.
  /// Boundary pages (partially covered) take the ordinary read-modify-write
  /// path with `on_delete`.
  Status BulkDeleteSortedRidsExtentDrop(
      const std::vector<Rid>& rids, const std::vector<PageId>& force_drop,
      const std::function<Status(PageId, uint64_t)>& on_drop,
      const std::function<void(const Rid&, const char*)>& on_delete,
      uint64_t* deleted_count, std::vector<PageId>* dropped_out);

  /// Frees pages previously detached by the extent-drop pass (idempotent —
  /// DiskManager::FreePage tolerates re-frees after a crash replay).
  Status FreeDroppedPages(const std::vector<PageId>& pages);

  /// Verified-erasure support (DatabaseOptions::scrub_deleted_pages): zeroes
  /// the tuple bytes of every *unoccupied* slot among `rids` (grouped by
  /// page — one fetch per distinct page for a sorted list). Pages in
  /// `skip_pages` are skipped (extent-dropped pages get zeroed whole by the
  /// caller); occupied slots are skipped too, so RIDs reused by later
  /// inserts are safe. Dirties pages through the pool; the caller flushes.
  Status ScrubDeadSlots(const std::vector<Rid>& rids,
                        const std::unordered_set<PageId>& skip_pages);

  /// Builds the in-memory extent map (chain-order page list + per-page live
  /// counts) if it is not current: one sequential chain walk. Create() starts
  /// with a valid empty map maintained incrementally by DML; Open()
  /// invalidates it, so the first extent-drop after a reopen pays the walk.
  Status EnsureExtentMap();

  /// Persists header metadata (count, chain endpoints).
  Status FlushMeta();

  /// Rebuilds the tuple count by scanning; used after crash recovery.
  Status RecountFromScan();

  /// Frees every data page and the header page. The table is unusable after.
  Status Drop();

 private:
  HeapTable(BufferPool* pool, const Schema* schema, PageId header_page)
      : pool_(pool), schema_(schema), header_page_(header_page) {}

  Status AppendDataPage(PageId* new_page);
  Status LoadMeta();

  /// Extent-map occupancy bookkeeping. A page the valid map does not know
  /// invalidates the map (fail safe: the next extent-drop rebuilds it).
  void BumpOccupancy(PageId page, int delta);
  void ExtentMapAppend(PageId page, uint32_t occupied);

  BufferPool* pool_;
  const Schema* schema_;
  PageId header_page_;
  PageId first_data_page_ = kInvalidPageId;
  PageId last_data_page_ = kInvalidPageId;
  // Relaxed atomics: read by the planner while updaters insert/delete.
  RelaxedAtomic<uint64_t> tuple_count_ = 0;
  RelaxedAtomic<uint32_t> num_data_pages_ = 0;
  /// Pages known to have at least one free slot (may contain stale entries;
  /// verified on use).
  std::vector<PageId> pages_with_space_;

  /// In-memory extent map: the page chain in order with per-page live
  /// counts, powering the extent-drop full-coverage proof without reading
  /// the pages. Valid from Create(); invalidated by Open() and rebuilt
  /// lazily by EnsureExtentMap().
  struct Extent {
    PageId page;
    uint32_t occupied;
  };
  std::vector<Extent> extents_;
  std::unordered_map<PageId, size_t> extent_pos_;
  bool extent_map_valid_ = false;
};

}  // namespace bulkdel

#endif  // BULKDEL_TABLE_HEAP_TABLE_H_

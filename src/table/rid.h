#ifndef BULKDEL_TABLE_RID_H_
#define BULKDEL_TABLE_RID_H_

#include <cstdint>
#include <functional>
#include <string>

#include "storage/page.h"

namespace bulkdel {

/// Row identifier: physical address of a record, composed of a page id and a
/// slot number within the page (the paper's "4.2" notation). RIDs order by
/// (page, slot), so sorting a RID list yields the physical scan order of the
/// table.
struct Rid {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  Rid() = default;
  Rid(PageId p, uint16_t s) : page(p), slot(s) {}

  bool valid() const { return page != kInvalidPageId; }

  /// Packs to a single integer preserving the (page, slot) order; used for
  /// sorting RID lists and as hash-table keys.
  uint64_t Pack() const {
    return (static_cast<uint64_t>(page) << 16) | slot;
  }
  static Rid Unpack(uint64_t v) {
    return Rid(static_cast<PageId>(v >> 16), static_cast<uint16_t>(v & 0xFFFF));
  }

  std::string ToString() const {
    return std::to_string(page) + "." + std::to_string(slot);
  }

  friend bool operator==(const Rid& a, const Rid& b) {
    return a.page == b.page && a.slot == b.slot;
  }
  friend bool operator!=(const Rid& a, const Rid& b) { return !(a == b); }
  friend bool operator<(const Rid& a, const Rid& b) {
    return a.Pack() < b.Pack();
  }
};

struct RidHash {
  size_t operator()(const Rid& r) const {
    return std::hash<uint64_t>()(r.Pack());
  }
};

}  // namespace bulkdel

#endif  // BULKDEL_TABLE_RID_H_

#ifndef BULKDEL_TABLE_HEAP_PAGE_H_
#define BULKDEL_TABLE_HEAP_PAGE_H_

#include <cstdint>

#include "storage/page.h"
#include "util/coding.h"

namespace bulkdel {

/// Slotted page holding fixed-size tuples.
///
/// Layout:
///   [u16 live_count][u16 capacity][u32 next_page][bitmap][tuples...]
///
/// `capacity` slots of `tuple_size` bytes follow a presence bitmap. Pages of
/// one table are chained through `next_page` in insertion order, so a chain
/// walk is a (mostly) sequential scan in RID order.
///
/// This is a stateless view over a raw page buffer; the caller owns pinning
/// and dirty marking.
class HeapPage {
 public:
  HeapPage(char* data, uint32_t tuple_size)
      : data_(data), tuple_size_(tuple_size) {}

  /// Max tuples a page of this tuple size can hold.
  static uint16_t CapacityFor(uint32_t tuple_size);

  /// Formats a zeroed buffer as an empty heap page.
  void Init();

  uint16_t live_count() const { return LoadU16(data_); }
  uint16_t capacity() const { return LoadU16(data_ + 2); }
  PageId next_page() const { return LoadU32(data_ + 4); }
  void set_next_page(PageId p) { StoreU32(data_ + 4, p); }

  bool IsFull() const { return live_count() >= capacity(); }
  bool IsEmpty() const { return live_count() == 0; }

  bool SlotOccupied(uint16_t slot) const {
    return (data_[kHeaderSize + slot / 8] >> (slot % 8)) & 1;
  }

  /// Inserts `tuple` into the first free slot; returns the slot or -1 if full.
  int Insert(const char* tuple);

  /// The slot Insert() would pick, or -1 if full.
  int FirstFreeSlot() const;

  /// Places `tuple` into the specific `slot`. Returns false if the slot is
  /// out of range or occupied.
  bool InsertAt(uint16_t slot, const char* tuple);

  /// Frees `slot`. Returns false if the slot was not occupied.
  bool Delete(uint16_t slot);

  /// Pointer to the tuple bytes of `slot` (occupied or not).
  char* TupleAt(uint16_t slot) {
    return data_ + DataOffset() + static_cast<uint32_t>(slot) * tuple_size_;
  }
  const char* TupleAt(uint16_t slot) const {
    return data_ + DataOffset() + static_cast<uint32_t>(slot) * tuple_size_;
  }

 private:
  static constexpr uint32_t kHeaderSize = 8;

  uint32_t BitmapBytes() const { return (capacity() + 7u) / 8u; }
  uint32_t DataOffset() const { return kHeaderSize + BitmapBytes(); }
  void SetSlot(uint16_t slot, bool occupied);
  void set_live_count(uint16_t c) { StoreU16(data_, c); }

  char* data_;
  uint32_t tuple_size_;
};

}  // namespace bulkdel

#endif  // BULKDEL_TABLE_HEAP_PAGE_H_

#include "table/heap_page.h"

#include <cstring>

namespace bulkdel {

uint16_t HeapPage::CapacityFor(uint32_t tuple_size) {
  // capacity * tuple_size + ceil(capacity/8) <= kPageSize - kHeaderSize.
  // Solve in bits: capacity * (8*tuple_size + 1) <= 8*(kPageSize - header).
  uint32_t budget_bits = 8u * (kPageSize - kHeaderSize);
  uint32_t per_tuple_bits = 8u * tuple_size + 1u;
  uint32_t cap = budget_bits / per_tuple_bits;
  // Guard against bitmap rounding: shrink until the layout actually fits.
  while (cap > 0 &&
         kHeaderSize + (cap + 7u) / 8u + cap * tuple_size > kPageSize) {
    --cap;
  }
  return static_cast<uint16_t>(cap);
}

void HeapPage::Init() {
  std::memset(data_, 0, kPageSize);
  StoreU16(data_, 0);                            // live_count
  StoreU16(data_ + 2, CapacityFor(tuple_size_));  // capacity
  StoreU32(data_ + 4, kInvalidPageId);            // next_page
}

int HeapPage::Insert(const char* tuple) {
  uint16_t cap = capacity();
  if (live_count() >= cap) return -1;
  for (uint16_t slot = 0; slot < cap; ++slot) {
    if (!SlotOccupied(slot)) {
      std::memcpy(TupleAt(slot), tuple, tuple_size_);
      SetSlot(slot, true);
      set_live_count(live_count() + 1);
      return slot;
    }
  }
  return -1;
}

int HeapPage::FirstFreeSlot() const {
  uint16_t cap = capacity();
  if (live_count() >= cap) return -1;
  for (uint16_t slot = 0; slot < cap; ++slot) {
    if (!SlotOccupied(slot)) return slot;
  }
  return -1;
}

bool HeapPage::InsertAt(uint16_t slot, const char* tuple) {
  if (slot >= capacity() || SlotOccupied(slot)) return false;
  std::memcpy(TupleAt(slot), tuple, tuple_size_);
  SetSlot(slot, true);
  set_live_count(live_count() + 1);
  return true;
}

bool HeapPage::Delete(uint16_t slot) {
  if (slot >= capacity() || !SlotOccupied(slot)) return false;
  SetSlot(slot, false);
  set_live_count(live_count() - 1);
  return true;
}

void HeapPage::SetSlot(uint16_t slot, bool occupied) {
  char& byte = data_[kHeaderSize + slot / 8];
  char mask = static_cast<char>(1 << (slot % 8));
  if (occupied) {
    byte |= mask;
  } else {
    byte &= ~mask;
  }
}

}  // namespace bulkdel

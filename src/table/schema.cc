#include "table/schema.h"

namespace bulkdel {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  uint32_t off = 0;
  for (const Column& c : columns_) {
    offsets_.push_back(off);
    off += c.size;
  }
  tuple_size_ = off;
}

Result<Schema> Schema::PaperStyle(int n_ints, uint32_t tuple_size) {
  if (n_ints < 1 || n_ints > 26) {
    return Status::InvalidArgument("n_ints must be in [1, 26]");
  }
  std::vector<Column> cols;
  cols.reserve(static_cast<size_t>(n_ints) + 1);
  for (int i = 0; i < n_ints; ++i) {
    cols.push_back(Column::Int64(std::string(1, static_cast<char>('A' + i))));
  }
  uint32_t ints_bytes = static_cast<uint32_t>(n_ints) * 8;
  if (tuple_size != 0) {
    if (tuple_size < ints_bytes) {
      return Status::InvalidArgument("tuple_size smaller than int columns");
    }
    if (tuple_size > ints_bytes) {
      cols.push_back(Column::FixedBytes("PAD", tuple_size - ints_bytes));
    }
  }
  return Schema(std::move(cols));
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace bulkdel

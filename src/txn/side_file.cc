#include "txn/side_file.h"

#include <functional>
#include <thread>

#include "storage/disk_manager.h"

namespace bulkdel {

void SideFile::Configure(DiskManager* disk, size_t spill_threshold_ops) {
  disk_ = disk;
  spill_threshold_ =
      spill_threshold_ops == 0 ? kDefaultSpillOps : spill_threshold_ops;
}

bool SideFile::TryEnterAppend() {
  uint64_t gate = gate_.load(std::memory_order_acquire);
  if (gate & 1) return false;  // quiesce in progress
  appenders_.fetch_add(1, std::memory_order_acq_rel);
  // Re-check: the gate may have closed between the load and the increment.
  // (A full close/reopen cycle also fails the comparison; the caller just
  // retries, so a rare spurious refusal is harmless.)
  if (gate_.load(std::memory_order_acquire) != gate) {
    appenders_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  return true;
}

void SideFile::ExitAppend() {
  appenders_.fetch_sub(1, std::memory_order_acq_rel);
}

SideFile::Shard& SideFile::ShardForThisThread() {
  size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h % kShards];
}

Status SideFile::Append(const SideFileOp& op,
                        std::vector<PageId>* spilled_pages_out) {
  Shard& shard = ShardForThisThread();
  std::lock_guard<std::mutex> lock(shard.mu);
  if (disk_ != nullptr && shard.ops.size() >= spill_threshold_) {
    // Spill the existing tail *before* admitting the new op so a failed
    // spill leaves the side-file exactly as it was (the op is rejected).
    std::vector<SideFileOp> chunk(shard.ops.begin(), shard.ops.end());
    BULKDEL_ASSIGN_OR_RETURN(SpilledList<SideFileOp> list,
                             SpillToDisk(disk_, chunk));
    if (spilled_pages_out != nullptr) {
      spilled_pages_out->insert(spilled_pages_out->end(), list.pages.begin(),
                                list.pages.end());
    }
    shard.spilled.push_back(std::move(list));
    shard.ops.clear();
  }
  shard.ops.push_back(op);
  total_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status SideFile::FillStage(size_t want) {
  for (Shard& shard : shards_) {
    if (stage_.size() >= want) break;
    std::lock_guard<std::mutex> lock(shard.mu);
    while (!shard.spilled.empty()) {
      SpilledList<SideFileOp> list = shard.spilled.front();
      BULKDEL_ASSIGN_OR_RETURN(std::vector<SideFileOp> ops,
                               ReadSpilled(disk_, list));
      // The ops are staged in memory from here on, but the scratch pages are
      // only *queued* for reclamation: freeing them now could let a later
      // allocation reuse the ids while the WAL still names them in a
      // kSideFileSpill record — a crash would then make recovery free a
      // live page. The owner frees them via TakeReclaimablePages() once the
      // statement's End record is durable (the records are truncated then).
      shard.spilled.erase(shard.spilled.begin());
      stage_.insert(stage_.end(), ops.begin(), ops.end());
      reclaim_.insert(reclaim_.end(), list.pages.begin(), list.pages.end());
    }
    stage_.insert(stage_.end(), shard.ops.begin(), shard.ops.end());
    shard.ops.clear();
  }
  return Status::OK();
}

Result<std::vector<SideFileOp>> SideFile::PeekBatch(size_t max) {
  if (stage_.size() < max) {
    BULKDEL_RETURN_IF_ERROR(FillStage(max));
  }
  size_t n = std::min(max, stage_.size());
  return std::vector<SideFileOp>(stage_.begin(), stage_.begin() + n);
}

Status SideFile::ConsumeFront(size_t n) {
  if (n > stage_.size()) {
    return Status::Internal("side-file: consuming more ops than staged");
  }
  stage_.erase(stage_.begin(), stage_.begin() + n);
  total_.fetch_sub(n, std::memory_order_acq_rel);
  return Status::OK();
}

std::vector<PageId> SideFile::TakeReclaimablePages() {
  return std::move(reclaim_);
}

void SideFile::Reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (disk_ != nullptr) {
      for (SpilledList<SideFileOp>& list : shard.spilled) {
        (void)FreeSpilled(disk_, &list);  // best-effort scratch reclamation
      }
    }
    shard.spilled.clear();
    shard.ops.clear();
  }
  if (disk_ != nullptr) {
    for (PageId p : reclaim_) (void)disk_->FreePage(p);
  }
  reclaim_.clear();
  stage_.clear();
  total_.store(0, std::memory_order_release);
}

size_t SideFile::spilled_page_count() const {
  size_t pages = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const SpilledList<SideFileOp>& list : shard.spilled) {
      pages += list.pages.size();
    }
  }
  return pages;
}

SideFile::QuiesceGuard::QuiesceGuard(SideFile* side_file)
    : side_file_(side_file) {
  side_file_->gate_.fetch_add(1, std::memory_order_acq_rel);  // even -> odd
  while (side_file_->appenders_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

SideFile::QuiesceGuard::~QuiesceGuard() {
  side_file_->gate_.fetch_add(1, std::memory_order_acq_rel);  // odd -> even
}

}  // namespace bulkdel

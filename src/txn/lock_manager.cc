#include "txn/lock_manager.h"

namespace bulkdel {

LockManager::Entry* LockManager::GetEntry(const std::string& resource) {
  std::lock_guard<std::mutex> lock(map_mu_);
  auto it = entries_.find(resource);
  if (it == entries_.end()) {
    it = entries_.emplace(resource, std::make_unique<Entry>()).first;
  }
  return it->second.get();
}

void LockManager::LockExclusive(const std::string& resource) {
  Entry* e = GetEntry(resource);
  std::unique_lock<std::mutex> lock(e->m);
  e->cv.wait(lock, [&] { return !e->writer && e->readers == 0; });
  e->writer = true;
}

void LockManager::UnlockExclusive(const std::string& resource) {
  Entry* e = GetEntry(resource);
  {
    std::lock_guard<std::mutex> lock(e->m);
    e->writer = false;
  }
  e->cv.notify_all();
}

void LockManager::LockShared(const std::string& resource) {
  Entry* e = GetEntry(resource);
  std::unique_lock<std::mutex> lock(e->m);
  e->cv.wait(lock, [&] { return !e->writer; });
  ++e->readers;
}

void LockManager::UnlockShared(const std::string& resource) {
  Entry* e = GetEntry(resource);
  {
    std::lock_guard<std::mutex> lock(e->m);
    --e->readers;
  }
  e->cv.notify_all();
}

}  // namespace bulkdel

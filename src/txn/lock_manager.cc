#include "txn/lock_manager.h"

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

namespace bulkdel {

namespace {

/// Shared locks held by the current thread, across all LockManager
/// instances (the database replaces its LockManager on simulated crash).
/// Used only for the re-entrancy bypass; a handful of entries at most.
thread_local std::vector<std::pair<const LockManager*, std::string>>
    t_held_shared;

}  // namespace

LockManager::Shard& LockManager::ShardFor(const std::string& resource) const {
  return shards_[std::hash<std::string>{}(resource) % kShardCount];
}

bool LockManager::HeldSharedByThisThread(const std::string& resource) const {
  for (const auto& held : t_held_shared) {
    if (held.first == this && held.second == resource) return true;
  }
  return false;
}

void LockManager::NoteSharedAcquired(const std::string& resource) {
  t_held_shared.emplace_back(this, resource);
}

void LockManager::NoteSharedReleased(const std::string& resource) {
  auto it = std::find(t_held_shared.begin(), t_held_shared.end(),
                      std::make_pair(static_cast<const LockManager*>(this),
                                     resource));
  if (it != t_held_shared.end()) t_held_shared.erase(it);
}

void LockManager::LockExclusive(const std::string& resource) {
  Shard& shard = ShardFor(resource);
  std::unique_lock<std::mutex> lock(shard.mu);
  Entry& e = shard.entries[resource];
  ++e.refs;
  ++e.waiting_writers;
  shard.cv.wait(lock, [&] { return !e.writer && e.readers == 0; });
  --e.waiting_writers;
  e.writer = true;
}

void LockManager::UnlockExclusive(const std::string& resource) {
  Shard& shard = ShardFor(resource);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(resource);
    if (it == shard.entries.end()) return;  // unbalanced unlock: ignore
    it->second.writer = false;
    if (--it->second.refs == 0) shard.entries.erase(it);
  }
  shard.cv.notify_all();
}

void LockManager::LockShared(const std::string& resource) {
  bool reentrant = HeldSharedByThisThread(resource);
  Shard& shard = ShardFor(resource);
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    Entry& e = shard.entries[resource];
    ++e.refs;
    if (!reentrant) {
      // Writer preference: a new share queues behind waiting writers too.
      shard.cv.wait(lock,
                    [&] { return !e.writer && e.waiting_writers == 0; });
    }
    // Re-entrant case: this thread already holds a share, so no writer can
    // be active; bypassing queued writers avoids self-deadlock.
    ++e.readers;
  }
  NoteSharedAcquired(resource);
}

void LockManager::UnlockShared(const std::string& resource) {
  NoteSharedReleased(resource);
  Shard& shard = ShardFor(resource);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(resource);
    if (it == shard.entries.end()) return;  // unbalanced unlock: ignore
    --it->second.readers;
    if (--it->second.refs == 0) shard.entries.erase(it);
  }
  shard.cv.notify_all();
}

size_t LockManager::entry_count() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.entries.size();
  }
  return n;
}

}  // namespace bulkdel

#ifndef BULKDEL_TXN_SIDE_FILE_H_
#define BULKDEL_TXN_SIDE_FILE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "storage/spill.h"
#include "table/rid.h"
#include "util/result.h"

namespace bulkdel {

class DiskManager;

/// How an index behaves while a bulk delete is propagating deletions to it
/// (paper §3.1). Off-line indices cannot serve reads or predicate locking.
enum class IndexMode : uint8_t {
  kOnline,
  /// Updaters append their changes to a side-file; the bulk deleter applies
  /// it after finishing the index, quiescing briefly to drain the tail
  /// (§3.1.1, after Mohan & Narang [17]).
  kOfflineSideFile,
  /// Updaters install changes directly into the off-line index under a
  /// latch; inserted entries are marked undeletable so the bulk deleter
  /// cannot remove a re-used RID (§3.1.2).
  kOfflineDirect,
};

/// One logical index maintenance operation logged to a side-file.
/// Trivially copyable so whole chunks can be spilled to scratch pages.
struct SideFileOp {
  bool is_insert = true;
  int64_t key = 0;
  Rid rid;
};
static_assert(std::is_trivially_copyable_v<SideFileOp>);

/// Append-only queue of index operations made while the index is off-line.
///
/// Appenders are admitted through an epoch gate (no global mutex): the gate
/// word is even while open; a quiesce increments it to odd, then waits for
/// the in-flight appender count to reach zero. Appends themselves land in
/// one of kShards thread-hashed shards, so concurrent updaters do not
/// contend on a single lock. Once a shard's in-memory tail exceeds the
/// configured spill threshold it is materialized to scratch pages through
/// the DiskManager (durability of the *operations* is the WAL's job — the
/// spill bounds memory and gives the catch-up a disk-backed queue).
///
/// Draining is single-threaded (the bulk deleter): PeekBatch() stages ops
/// without consuming them; ConsumeFront() drops them only after they have
/// been applied, so a failed catch-up batch can be retried — the drain loop
/// is restartable.
class SideFile {
 public:
  static constexpr size_t kShards = 8;
  static constexpr size_t kDefaultSpillOps = 4096;

  /// Arms spilling. Without a configured disk the side-file stays
  /// memory-only (unit tests; kNone protocol never calls this).
  void Configure(DiskManager* disk, size_t spill_threshold_ops);

  /// Epoch-gate admission for appenders. Returns false while a quiesce is
  /// in progress (caller should re-check the index mode and retry).
  bool TryEnterAppend();
  void ExitAppend();

  /// Appends one op to the calling thread's shard. Must be called between
  /// TryEnterAppend()/ExitAppend(). If the shard tail was spilled, the
  /// newly allocated scratch pages are appended to `spilled_pages_out`
  /// (may be null) so the caller can WAL-log them.
  Status Append(const SideFileOp& op, std::vector<PageId>* spilled_pages_out);

  /// Total ops not yet consumed (spilled + in-memory + staged).
  size_t size() const { return total_.load(std::memory_order_acquire); }

  /// Stages and returns up to `max` ops from the front without consuming
  /// them. Spilled chunks are read back (and their pages freed) as they are
  /// staged. Single-drainer only.
  Result<std::vector<SideFileOp>> PeekBatch(size_t max);

  /// Drops the first `n` previously peeked ops. Call only after the batch
  /// has been durably applied.
  Status ConsumeFront(size_t n);

  /// Scratch pages whose ops have been staged back into memory. They are
  /// deliberately NOT freed at read time: the WAL's kSideFileSpill records
  /// still name them, so freeing early would let a reallocation reuse an id
  /// that recovery (after a crash) would free again — on a live page. The
  /// drainer takes and frees them only after its End record is durable.
  std::vector<PageId> TakeReclaimablePages();

  /// Frees any remaining spilled pages and clears all queues.
  void Reset();

  /// Scratch pages currently backing spilled chunks (diagnostics/tests).
  size_t spilled_page_count() const;

  /// The quiesce window: closes the append gate for its lifetime and waits
  /// until every in-flight appender has exited, letting the bulk deleter
  /// drain the final tail and flip the index on-line atomically.
  class QuiesceGuard {
   public:
    explicit QuiesceGuard(SideFile* side_file);
    ~QuiesceGuard();
    QuiesceGuard(const QuiesceGuard&) = delete;
    QuiesceGuard& operator=(const QuiesceGuard&) = delete;

   private:
    SideFile* side_file_;
  };

 private:
  struct Shard {
    std::mutex mu;
    std::deque<SideFileOp> ops;
    std::vector<SpilledList<SideFileOp>> spilled;
  };

  Shard& ShardForThisThread();
  /// Moves ops from the shards into stage_ until stage_ holds at least
  /// `want` ops or the shards are empty.
  Status FillStage(size_t want);

  std::atomic<uint64_t> gate_{0};    // even = open, odd = quiescing
  std::atomic<int64_t> appenders_{0};
  std::atomic<size_t> total_{0};

  DiskManager* disk_ = nullptr;
  size_t spill_threshold_ = kDefaultSpillOps;

  mutable Shard shards_[kShards];
  // Drainer-private staging queue (single-threaded access by contract).
  std::deque<SideFileOp> stage_;
  // Drainer-private: spill pages read back and awaiting post-End reclamation.
  std::vector<PageId> reclaim_;
};

/// Concurrency state attached to each index.
struct IndexConcurrencyState {
  std::atomic<IndexMode> mode{IndexMode::kOnline};
  SideFile side_file;
  /// Serializes all structural operations on the B-tree (single-writer).
  std::mutex latch;
  /// Entries inserted with kEntryUndeletable while kOfflineDirect (§3.1.2).
  /// Lets BringOnline skip the full-leaf clearing scan when no updater ever
  /// marked anything — a quiet run must cost the same I/O as kNone.
  std::atomic<uint64_t> undeletable_marks{0};
};

}  // namespace bulkdel

#endif  // BULKDEL_TXN_SIDE_FILE_H_

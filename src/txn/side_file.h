#ifndef BULKDEL_TXN_SIDE_FILE_H_
#define BULKDEL_TXN_SIDE_FILE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "table/rid.h"

namespace bulkdel {

/// How an index behaves while a bulk delete is propagating deletions to it
/// (paper §3.1). Off-line indices cannot serve reads or predicate locking.
enum class IndexMode : uint8_t {
  kOnline,
  /// Updaters append their changes to a side-file; the bulk deleter applies
  /// it after finishing the index, quiescing briefly to drain the tail
  /// (§3.1.1, after Mohan & Narang [17]).
  kOfflineSideFile,
  /// Updaters install changes directly into the off-line index under a
  /// latch; inserted entries are marked undeletable so the bulk deleter
  /// cannot remove a re-used RID (§3.1.2).
  kOfflineDirect,
};

/// One logical index maintenance operation logged to a side-file.
struct SideFileOp {
  bool is_insert = true;
  int64_t key = 0;
  Rid rid;
};

/// Append-only queue of index operations made while the index is off-line.
class SideFile {
 public:
  void Append(const SideFileOp& op) {
    std::lock_guard<std::mutex> lock(mu_);
    ops_.push_back(op);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ops_.size();
  }

  /// Removes and returns up to `max` ops from the front.
  std::vector<SideFileOp> DrainBatch(size_t max) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = std::min(max, ops_.size());
    std::vector<SideFileOp> batch(ops_.begin(), ops_.begin() + n);
    ops_.erase(ops_.begin(), ops_.begin() + n);
    return batch;
  }

  /// The quiesce mutex: holding it blocks appenders, letting the bulk deleter
  /// drain the final tail and flip the index on-line atomically.
  std::mutex& append_mutex() { return append_mu_; }

 private:
  mutable std::mutex mu_;
  std::mutex append_mu_;
  std::deque<SideFileOp> ops_;
};

/// Concurrency state attached to each index.
struct IndexConcurrencyState {
  std::atomic<IndexMode> mode{IndexMode::kOnline};
  SideFile side_file;
  /// Serializes all structural operations on the B-tree (single-writer).
  std::mutex latch;
};

}  // namespace bulkdel

#endif  // BULKDEL_TXN_SIDE_FILE_H_

#ifndef BULKDEL_TXN_LOCK_MANAGER_H_
#define BULKDEL_TXN_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>

namespace bulkdel {

/// Table-granularity shared/exclusive locks.
///
/// The paper argues (§3.1) that processing the base table under anything
/// finer than a table lock is pointless for bulk deletes — lock escalation
/// would promote to a table lock anyway — so the bulk deleter takes an
/// exclusive lock on R until the table and all unique indices are processed,
/// then releases it while the remaining (off-line) indices catch up.
/// Updater transactions take shared locks.
///
/// The table is sharded by resource-name hash so unrelated resources never
/// contend on one mutex, grants prefer writers (new shared requests queue
/// behind a waiting exclusive, so a stream of updaters cannot starve the
/// bulk deleter), and entries are reference-counted and erased when the
/// last holder or waiter leaves — the map stays bounded by the number of
/// *currently locked* resources, not every resource ever named.
///
/// Shared locks are re-entrant per thread: a thread that already holds a
/// shared lock on a resource is granted another share immediately even if
/// a writer is queued (blocking it would self-deadlock — e.g. a cascading
/// delete on a self-referencing FK re-locks its own table).
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  void LockExclusive(const std::string& resource);
  void UnlockExclusive(const std::string& resource);
  void LockShared(const std::string& resource);
  void UnlockShared(const std::string& resource);

  /// Number of live lock-table entries across all shards (tests: must stay
  /// bounded by the set of currently held/waited resources).
  size_t entry_count() const;

  /// RAII helpers.
  class SharedGuard {
   public:
    SharedGuard(LockManager* lm, std::string resource)
        : lm_(lm), resource_(std::move(resource)) {
      lm_->LockShared(resource_);
    }
    ~SharedGuard() { lm_->UnlockShared(resource_); }
    SharedGuard(const SharedGuard&) = delete;
    SharedGuard& operator=(const SharedGuard&) = delete;

   private:
    LockManager* lm_;
    std::string resource_;
  };

 private:
  static constexpr size_t kShardCount = 16;

  struct Entry {
    int readers = 0;
    bool writer = false;
    int waiting_writers = 0;
    /// Holders + waiters currently referencing this entry; the entry is
    /// erased when it drops to zero.
    int refs = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::map<std::string, Entry> entries;
  };

  Shard& ShardFor(const std::string& resource) const;
  bool HeldSharedByThisThread(const std::string& resource) const;
  void NoteSharedAcquired(const std::string& resource);
  void NoteSharedReleased(const std::string& resource);

  mutable Shard shards_[kShardCount];
};

}  // namespace bulkdel

#endif  // BULKDEL_TXN_LOCK_MANAGER_H_

#ifndef BULKDEL_TXN_LOCK_MANAGER_H_
#define BULKDEL_TXN_LOCK_MANAGER_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace bulkdel {

/// Table-granularity shared/exclusive locks.
///
/// The paper argues (§3.1) that processing the base table under anything
/// finer than a table lock is pointless for bulk deletes — lock escalation
/// would promote to a table lock anyway — so the bulk deleter takes an
/// exclusive lock on R until the table and all unique indices are processed,
/// then releases it while the remaining (off-line) indices catch up.
/// Updater transactions take shared locks.
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  void LockExclusive(const std::string& resource);
  void UnlockExclusive(const std::string& resource);
  void LockShared(const std::string& resource);
  void UnlockShared(const std::string& resource);

  /// RAII helpers.
  class SharedGuard {
   public:
    SharedGuard(LockManager* lm, std::string resource)
        : lm_(lm), resource_(std::move(resource)) {
      lm_->LockShared(resource_);
    }
    ~SharedGuard() { lm_->UnlockShared(resource_); }
    SharedGuard(const SharedGuard&) = delete;
    SharedGuard& operator=(const SharedGuard&) = delete;

   private:
    LockManager* lm_;
    std::string resource_;
  };

 private:
  struct Entry {
    std::mutex m;
    std::condition_variable cv;
    int readers = 0;
    bool writer = false;
  };

  Entry* GetEntry(const std::string& resource);

  std::mutex map_mu_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace bulkdel

#endif  // BULKDEL_TXN_LOCK_MANAGER_H_

#include "fault/fault_injector.h"

namespace bulkdel {

const char* FaultModeName(FaultMode mode) {
  switch (mode) {
    case FaultMode::kCrash:
      return "crash";
    case FaultMode::kTornWrite:
      return "torn";
    case FaultMode::kShortWrite:
      return "short";
  }
  return "unknown";
}

const std::vector<FaultSiteInfo>& FaultInjector::KnownSites() {
  static const std::vector<FaultSiteInfo> kSites = {
      {fault_sites::kDiskRead, false},
      {fault_sites::kDiskWrite, true},
      {fault_sites::kDiskSync, false},
      {fault_sites::kPoolEvict, false},
      {fault_sites::kPoolFlush, false},
      {fault_sites::kLogSync, true},
      {fault_sites::kSchedPhaseStart, false},
      {fault_sites::kExecCheckpoint, false},
      {fault_sites::kExecCheckpointPostFlush, false},
      {fault_sites::kExecCommit, false},
      {fault_sites::kExecFinalize, false},
      {fault_sites::kExecFinalizePreEnd, false},
      {fault_sites::kTxnSideFileAppend, false},
      {fault_sites::kTxnCatchupBatch, false},
      {fault_sites::kTxnOnlineFlip, false},
      {fault_sites::kBtreeRangeLeafRun, false},
      {fault_sites::kHeapExtentDrop, false},
  };
  return kSites;
}

bool FaultInjector::IsKnownSite(const std::string& site) {
  for (const FaultSiteInfo& info : KnownSites()) {
    if (site == info.name) return true;
  }
  return false;
}

void FaultInjector::Arm(const std::string& site, uint64_t occurrence,
                        FaultMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_site_ = site;
  armed_occurrence_ = occurrence;
  armed_mode_ = mode;
  tripped_ = false;
  trip_description_.clear();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_site_.clear();
  armed_occurrence_ = 0;
  tripped_ = false;
  trip_description_.clear();
}

void FaultInjector::ResetCounts() {
  std::lock_guard<std::mutex> lock(mu_);
  counts_.clear();
}

bool FaultInjector::tripped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tripped_;
}

std::string FaultInjector::trip_description() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trip_description_;
}

uint64_t FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(site);
  return it == counts_.end() ? 0 : it->second;
}

std::map<std::string, uint64_t> FaultInjector::HitCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

Status FaultInjector::TrippedErrorLocked() const {
  return Status::Aborted("injected crash [" + trip_description_ +
                         "]: process is down");
}

Status FaultInjector::TrippedError() const {
  std::lock_guard<std::mutex> lock(mu_);
  return TrippedErrorLocked();
}

namespace {
/// splitmix64 — cheap, deterministic per-hit randomness.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

Status FaultInjector::CheckLocked(const char* site, const std::string& detail,
                                  Hit* hit) {
  if (tripped_) return TrippedErrorLocked();
  uint64_t n = ++counts_[site];
  if (armed_site_ != site || n != armed_occurrence_) return Status::OK();
  tripped_ = true;
  trip_description_ = "site=" + armed_site_ +
                      " occurrence=" + std::to_string(armed_occurrence_) +
                      " mode=" + FaultModeName(armed_mode_);
  if (!detail.empty()) trip_description_ += " at=" + detail;
  if (hit != nullptr && armed_mode_ != FaultMode::kCrash) {
    hit->fire = true;
    hit->mode = armed_mode_;
    hit->rng = Mix(seed_ ^ Mix(n));
    return Status::OK();  // the caller applies the partial write, then fails
  }
  return TrippedErrorLocked();
}

Status FaultInjector::Check(const char* site, const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckLocked(site, detail, nullptr);
}

Status FaultInjector::CheckWrite(const char* site, Hit* hit,
                                 const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckLocked(site, detail, hit);
}

}  // namespace bulkdel

#ifndef BULKDEL_FAULT_FAULT_INJECTOR_H_
#define BULKDEL_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace bulkdel {

/// How an armed fault manifests when it fires.
enum class FaultMode : uint8_t {
  /// The guarded operation fails before taking any effect — the cleanest
  /// crash model: every preceding write is durable, this one never happens.
  kCrash,
  /// Page write: the first half of the new bytes reach the page, the second
  /// half keeps its old content (a torn page).
  /// Log sync: a prefix of the appended records becomes durable and the next
  /// record is half-written — it reaches the durable log flagged `torn`, and
  /// recovery must treat the log as ending just before it.
  kTornWrite,
  /// Page write: only the first (rng % kPageSize) bytes of the new data reach
  /// the page; the tail keeps its old content.
  kShortWrite,
};

const char* FaultModeName(FaultMode mode);

/// Canonical injection-site names. A site is a *program point*, not an
/// event: the same site is hit many times per statement, and a fault is
/// armed at (site, occurrence). Keep this list in sync with KnownSites().
namespace fault_sites {
/// DiskManager::ReadPage, before the bytes are produced.
inline constexpr char kDiskRead[] = "disk.read";
/// DiskManager::WritePage, before the bytes reach the page. Supports
/// kTornWrite / kShortWrite.
inline constexpr char kDiskWrite[] = "disk.write";
/// DiskManager::Flush, before the page file is fsynced at a checkpoint or
/// commit barrier.
inline constexpr char kDiskSync[] = "disk.sync";
/// BufferPool eviction, before the dirty victim is written back.
inline constexpr char kPoolEvict[] = "pool.evict";
/// BufferPool::FlushAll, before the dirty sweep starts.
inline constexpr char kPoolFlush[] = "pool.flush";
/// LogManager::Sync, before the volatile tail becomes durable. Supports
/// kTornWrite (partial tail with a torn trailing record).
inline constexpr char kLogSync[] = "log.sync";
/// PhaseScheduler, immediately before dispatching a phase body (both the
/// serial and the worker-pool path).
inline constexpr char kSchedPhaseStart[] = "sched.phase_start";
/// VerticalRun::CheckpointPhase, before the checkpoint's meta/pool flush.
inline constexpr char kExecCheckpoint[] = "exec.checkpoint";
/// VerticalRun::CheckpointPhase, after the pool flush but before the
/// PhaseDone record is appended and synced — the window where the phase's
/// page writes are durable but the phase is not yet marked done.
inline constexpr char kExecCheckpointPostFlush[] = "exec.checkpoint.post_flush";
/// VerticalRun::CommitPoint, before the Commit record is appended.
inline constexpr char kExecCommit[] = "exec.commit";
/// VerticalRun::FinishRun entry — after every secondary phase completed but
/// before the finalize flush. With exec_threads > 1 the secondaries'
/// checkpoints are still deferred (volatile) here, so recovery must re-run
/// them idempotently.
inline constexpr char kExecFinalize[] = "exec.finalize";
/// VerticalRun::FinishRun, after the deferred PhaseDone records are appended
/// but before the End record is appended and synced.
inline constexpr char kExecFinalizePreEnd[] = "exec.finalize.pre_end";
/// Database::ApplyIndexInsert/Delete, §3.1 side-file protocol: after the
/// updater's row record is synced but before the op enters the side-file.
inline constexpr char kTxnSideFileAppend[] = "txn.sidefile.append";
/// VerticalRun::DrainAndApply, before a catch-up batch of side-file ops is
/// applied to the off-line index.
inline constexpr char kTxnCatchupBatch[] = "txn.catchup.batch";
/// VerticalRun::BringOnline, inside the quiesce window — side-file: after
/// the final drain, before the mode flips on-line; direct propagation:
/// after the flags clear has been requested, before the flip (the window
/// that used to strand persistent undeletable markers).
inline constexpr char kTxnOnlineFlip[] = "txn.online_flip";
/// BTree range delete, after a fully-covered leaf's kRangeLeafRun record is
/// appended but before the leaf is detached from the chain and freed.
inline constexpr char kBtreeRangeLeafRun[] = "btree.range.leafrun";
/// Heap range delete, after a fully-covered extent's kExtentDrop record is
/// appended but before the pages are spliced out of the table's page chain.
inline constexpr char kHeapExtentDrop[] = "heap.extent.drop";
}  // namespace fault_sites

struct FaultSiteInfo {
  const char* name;
  /// kTornWrite / kShortWrite are meaningful here (write-path sites). At any
  /// other site those modes degrade to kCrash.
  bool supports_write_modes;
};

/// Deterministic fault injection for crash-recovery testing.
///
/// The injector is armed at a named site and a 1-based occurrence count:
/// the n-th time execution passes the site, the fault *fires* and the
/// injector *trips*. A tripped injector models a dead process: every
/// subsequent Check at any site fails with kAborted, so execution cannot
/// limp past the crash point — the run unwinds, and the harness then
/// discards volatile state and runs recovery, exactly like a restart.
///
/// Sites are enumerable (KnownSites) and hits are counted per site, so a
/// driver can first run uninjected to learn each site's hit count and then
/// sweep "crash at site k, occurrence n" exhaustively.
///
/// Determinism: with exec_threads == 1 a given (site, occurrence, seed,
/// workload) always crashes at the same program state. With a worker pool
/// the occurrence → program-state mapping can vary with thread interleaving;
/// the verification contract is interleaving-agnostic (post-recovery state
/// must equal the uncrashed reference) and failures still report the exact
/// (site, occurrence, seed) that was armed.
///
/// Thread safety: all methods are internally synchronized; Check never calls
/// back into any other subsystem.
class FaultInjector {
 public:
  /// Outcome of a CheckWrite at a write-path site.
  struct Hit {
    bool fire = false;
    FaultMode mode = FaultMode::kCrash;
    /// Deterministic per-hit randomness (from the injector seed and the hit
    /// ordinal) for data-dependent mangling, e.g. the short-write length.
    uint64_t rng = 0;
  };

  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Every injection site, in a stable order.
  static const std::vector<FaultSiteInfo>& KnownSites();
  static bool IsKnownSite(const std::string& site);

  /// Arms a fault: the `occurrence`-th (1-based) hit of `site` fires with
  /// `mode`. Replaces any previously armed fault and clears a tripped state.
  void Arm(const std::string& site, uint64_t occurrence,
           FaultMode mode = FaultMode::kCrash);

  /// Clears the armed fault and the tripped state (hit counts are kept).
  /// Call before running recovery: the "restarted process" is alive again.
  void Disarm();

  /// Zeroes all hit counters (used between setup and the measured run).
  void ResetCounts();

  bool tripped() const;
  /// Human-readable description of the trip ("site=... occurrence=... ...");
  /// empty if not tripped.
  std::string trip_description() const;

  uint64_t HitCount(const std::string& site) const;
  std::map<std::string, uint64_t> HitCounts() const;

  /// The standard hook: counts a hit at `site`; fails if tripped or if this
  /// hit fires the armed fault (any mode — non-write sites treat torn/short
  /// as kCrash). `detail` (e.g. a phase label) is recorded on trip for the
  /// failure message.
  Status Check(const char* site, const std::string& detail = {});

  /// Write-path hook. Behaves like Check, except that when the armed fault
  /// fires with kTornWrite/kShortWrite it returns OK with hit->fire set: the
  /// caller applies the partial effect and then fails with TrippedError().
  Status CheckWrite(const char* site, Hit* hit, const std::string& detail = {});

  /// The error every operation reports once tripped.
  Status TrippedError() const;

 private:
  Status CheckLocked(const char* site, const std::string& detail, Hit* hit);
  Status TrippedErrorLocked() const;

  const uint64_t seed_;
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counts_;
  std::string armed_site_;
  uint64_t armed_occurrence_ = 0;
  FaultMode armed_mode_ = FaultMode::kCrash;
  bool tripped_ = false;
  std::string trip_description_;
};

}  // namespace bulkdel

#endif  // BULKDEL_FAULT_FAULT_INJECTOR_H_

#ifndef BULKDEL_FAULT_CRASH_SWEEP_H_
#define BULKDEL_FAULT_CRASH_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"
#include "fault/fault_injector.h"
#include "plan/plan.h"
#include "util/result.h"
#include "util/status.h"

namespace bulkdel {

/// RID-free logical content digest of one table: a stable hash over the
/// sorted multiset of row column values plus, per index, the sorted multiset
/// of (key, entry-flag) pairs. Unlike the crash sweep's internal digest this
/// deliberately excludes RIDs, so two histories that insert the same rows in
/// different physical orders (e.g. N concurrent connections vs a serial
/// replay of the same acknowledged statements) compare equal exactly when
/// their visible contents match. Pair with Database::VerifyIntegrity(),
/// which separately checks that every index entry resolves to its heap row.
/// Callers must quiesce DML first; the scan takes no locks.
Result<std::string> LogicalContentHash(Database* db,
                                       const std::string& table_name);

/// Configuration of one crash-recovery sweep (see docs/FAULTS.md).
///
/// A sweep fixes a workload, then for each (strategy, exec_threads) pair:
///   1. runs the bulk delete once uninjected to capture the reference
///      post-delete state and the per-site fault-occurrence counts,
///   2. for every known site and a sample of its occurrences, re-runs the
///      statement from a fresh database with a crash armed at
///      (site, occurrence), simulates the crash, recovers, and
///   3. asserts the recovered state is exactly the reference post-delete
///      state — or, when the crash preceded the delete list becoming
///      durable, exactly the pre-delete state (the statement atomically
///      never happened).
struct SweepConfig {
  // Workload shape. Small by default: the sweep multiplies every occurrence
  // by a full load + delete + recovery cycle.
  uint64_t n_tuples = 1200;
  int n_int_columns = 3;
  uint32_t tuple_size = 64;
  double delete_fraction = 0.25;
  /// Small on purpose: forces buffer-pool evictions and disk reads during
  /// the delete so `pool.evict` / `disk.read` sites actually fire.
  size_t memory_budget_bytes = 128u << 10;
  uint64_t workload_seed = 20010407;
  uint64_t delete_keys_seed = 7;
  /// Predicate class of the swept statement: "keys" (the paper's IN-list,
  /// the default) or "range" (BETWEEN [lo, hi] with the bounds chosen as a
  /// centered quantile window of the A-population covering
  /// `delete_fraction` of the rows — exercising the leaf-run / extent-drop
  /// WAL records and their fault sites).
  std::string predicate = "keys";
  /// Seeds the injector's partial-write RNG (torn log tails).
  uint64_t injector_seed = 1;

  /// Sweep a multi-table CASCADE statement instead of the single-table
  /// workload: a deterministic USERS -> ORDERS -> EVENTS schema with
  /// cascading FKs, deleting `delete_fraction` of the users. The cascade
  /// executes as flattened per-table legs (EVENTS, then ORDERS, then the
  /// USERS parent), each its own WAL statement, so the acceptable recovered
  /// states are exactly the leg prefixes S0..S3 — S0 the untouched
  /// database, S3 the fully-forgotten state — each checked across all three
  /// tables. Ignores `predicate` and requires `concurrency == kNone`.
  bool cascade = false;

  /// Durability backend under test: "sim" (in-memory pages + WAL image, the
  /// default) or "file" (real page file + WAL under `scratch_dir`, crashes
  /// simulated by discarding all process state and reopening from disk).
  /// Same sweep, same digests — only the medium changes.
  std::string backend = "sim";
  /// Directory for the file backend's page/WAL files. Reused across cases
  /// (cases run one at a time and Create() truncates); put it on tmpfs for
  /// speed.
  std::string scratch_dir = "/tmp/bulkdel_crashsweep";

  std::vector<Strategy> strategies = {Strategy::kVerticalSortMerge,
                                      Strategy::kVerticalHash,
                                      Strategy::kVerticalPartitionedHash};
  std::vector<int> thread_counts = {1, 4};

  /// §3.1 concurrent-updater coverage. With a protocol selected, a
  /// deterministic updater runs `updater_ops` DML statements (inserts plus
  /// deletes of its own rows) at the start of the first post-commit
  /// secondary-index phase — while that index is off-line — and the
  /// acceptance check requires the recovered state to equal the uncrashed
  /// reference *including* every acknowledged updater op. A tiny side-file
  /// spill threshold is used so kSideFile cases exercise the spill path.
  ConcurrencyProtocol concurrency = ConcurrencyProtocol::kNone;
  int updater_ops = 6;

  /// Max occurrences tested per site (evenly spaced, always including the
  /// first and the last). 0 = exhaustive — every single occurrence.
  uint64_t occurrences_per_site = 6;

  /// Also sweep `log.sync` in torn-write mode (a random prefix of the batch
  /// becomes durable plus one half-written record recovery must discard).
  bool include_torn_log_sync = true;

  /// Restrict the sweep to one site / one occurrence / one mode (repro
  /// mode; empty/0 = no restriction). `only_mode` is "crash" or "torn".
  std::string only_site;
  uint64_t only_occurrence = 0;
  std::string only_mode;

  /// Print one line per case to stdout.
  bool verbose = false;
};

/// Outcome counters plus a human-readable report per failed case. Each
/// report names the exact (strategy, threads, site, occurrence, mode, seeds)
/// and the bulkdel_crashsweep command line that reproduces it.
struct SweepStats {
  uint64_t cases_run = 0;
  /// Armed occurrences that were never reached. Impossible for serial runs
  /// (counted as failures there); legal under exec_threads > 1 where the
  /// interleaving can shift per-site counts between runs.
  uint64_t cases_unreached = 0;
  uint64_t failures = 0;
  std::vector<std::string> failure_reports;

  std::string Summary() const;
};

/// Runs the deterministic sweep. Returns non-OK iff the harness itself
/// breaks (e.g. the uninjected reference run fails); injected-case failures
/// are reported through `stats`.
Status RunCrashSweep(const SweepConfig& config, SweepStats* stats);

/// Time-bounded randomized variant: repeatedly picks a random
/// (strategy, threads, site, occurrence) — seeded, so a failing pick is
/// reproducible from the reported case — until `seconds` elapse.
Status RunTortureSweep(const SweepConfig& config, int seconds, uint64_t seed,
                       SweepStats* stats);

}  // namespace bulkdel

#endif  // BULKDEL_FAULT_CRASH_SWEEP_H_

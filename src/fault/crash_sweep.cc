#include "fault/crash_sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iterator>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <tuple>
#include <utility>

#include "core/database.h"
#include "workload/generator.h"

namespace bulkdel {

namespace {

/// FNV-1a over a stream of int64 words.
struct Fnv64 {
  uint64_t h = 1469598103934665603ull;
  void Mix(int64_t v) {
    uint64_t u = static_cast<uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      h ^= (u >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

}  // namespace

Result<std::string> LogicalContentHash(Database* db,
                                       const std::string& table_name) {
  TableDef* table = db->GetTable(table_name);
  if (table == nullptr) {
    return Status::NotFound("content hash: no table " + table_name);
  }
  const Schema& schema = *table->schema;
  std::vector<std::vector<int64_t>> rows;
  BULKDEL_RETURN_IF_ERROR(
      table->table->Scan([&](const Rid& rid, const char* tuple) {
        (void)rid;  // deliberately excluded — see header comment
        std::vector<int64_t> row;
        row.reserve(schema.num_columns());
        for (size_t c = 0; c < schema.num_columns(); ++c) {
          row.push_back(schema.GetInt(tuple, c));
        }
        rows.push_back(std::move(row));
        return Status::OK();
      }));
  std::sort(rows.begin(), rows.end());
  Fnv64 fnv;
  for (const auto& row : rows) {
    for (int64_t v : row) fnv.Mix(v);
    fnv.Mix(static_cast<int64_t>(0x517cc1b727220a95ull));  // row separator
  }
  std::string digest = "rows=" + std::to_string(rows.size()) + " hash=" +
                       std::to_string(fnv.h);
  for (const auto& index : table->indices) {
    std::vector<std::pair<int64_t, uint16_t>> entries;
    BULKDEL_RETURN_IF_ERROR(index->tree->ScanAll(
        [&](int64_t key, const Rid& rid, uint16_t flags) {
          (void)rid;
          entries.emplace_back(key, flags);
          return Status::OK();
        }));
    std::sort(entries.begin(), entries.end());
    Fnv64 idx;
    for (const auto& [key, flags] : entries) {
      idx.Mix(key);
      idx.Mix(static_cast<int64_t>(flags));
    }
    digest += "; " + index->name + ": n=" + std::to_string(entries.size()) +
              " hash=" + std::to_string(idx.h);
  }
  return digest;
}

namespace {

/// Logical content of a database: every live row (rid + column values) and
/// every index's (key, rid) entry set. Two runs that end in the same logical
/// state produce identical digests regardless of physical node layout.
struct StateDigest {
  /// Each entry: [rid.Pack(), col0, col1, ...]; sorted.
  std::vector<std::vector<int64_t>> rows;
  /// index name -> sorted (key, packed rid, entry flags) tuples. Flags are
  /// part of the digest so a stale kEntryUndeletable marker (the §3.1.2
  /// flip-before-cleanup crash window) is a detected divergence, not noise.
  std::vector<std::pair<std::string,
                        std::vector<std::tuple<int64_t, uint64_t, uint16_t>>>>
      indices;
};

Status CaptureDigest(Database* db, const std::string& table_name,
                     StateDigest* out) {
  out->rows.clear();
  out->indices.clear();
  TableDef* table = db->GetTable(table_name);
  if (table == nullptr) {
    return Status::NotFound("digest: no table " + table_name);
  }
  const Schema& schema = *table->schema;
  BULKDEL_RETURN_IF_ERROR(
      table->table->Scan([&](const Rid& rid, const char* tuple) {
        std::vector<int64_t> row;
        row.reserve(schema.num_columns() + 1);
        row.push_back(static_cast<int64_t>(rid.Pack()));
        for (size_t c = 0; c < schema.num_columns(); ++c) {
          row.push_back(schema.GetInt(tuple, c));
        }
        out->rows.push_back(std::move(row));
        return Status::OK();
      }));
  std::sort(out->rows.begin(), out->rows.end());
  for (const auto& index : table->indices) {
    std::vector<std::tuple<int64_t, uint64_t, uint16_t>> entries;
    BULKDEL_RETURN_IF_ERROR(index->tree->ScanAll(
        [&](int64_t key, const Rid& rid, uint16_t flags) {
          entries.emplace_back(key, rid.Pack(), flags);
          return Status::OK();
        }));
    std::sort(entries.begin(), entries.end());
    out->indices.emplace_back(index->name, std::move(entries));
  }
  return Status::OK();
}

bool DigestsEqual(const StateDigest& a, const StateDigest& b) {
  return a.rows == b.rows && a.indices == b.indices;
}

/// Human-readable first difference, for failure reports.
std::string DescribeDiff(const StateDigest& ref, const StateDigest& got) {
  if (ref.rows.size() != got.rows.size()) {
    return "row count " + std::to_string(got.rows.size()) + " != reference " +
           std::to_string(ref.rows.size());
  }
  for (size_t i = 0; i < ref.rows.size(); ++i) {
    if (ref.rows[i] != got.rows[i]) {
      return "row #" + std::to_string(i) + " differs (rid " +
             std::to_string(got.rows[i].empty() ? -1 : got.rows[i][0]) + ")";
    }
  }
  if (ref.indices.size() != got.indices.size()) {
    return "index count differs";
  }
  for (size_t i = 0; i < ref.indices.size(); ++i) {
    if (ref.indices[i].first != got.indices[i].first) {
      return "index name mismatch at #" + std::to_string(i);
    }
    if (ref.indices[i].second != got.indices[i].second) {
      return "index " + ref.indices[i].first + " entries differ (" +
             std::to_string(got.indices[i].second.size()) + " vs reference " +
             std::to_string(ref.indices[i].second.size()) + ")";
    }
  }
  return "digests equal";
}

std::vector<std::string> IndexedColumns(const SweepConfig& config) {
  std::vector<std::string> columns;
  for (int c = 0; c < config.n_int_columns; ++c) {
    columns.push_back(std::string(1, static_cast<char>('A' + c)));
  }
  return columns;
}

/// Deterministic §3.1 concurrent-updater workload: `total_ops` DML
/// statements (two inserts, then a delete of the second, repeating) fired
/// once, at the begin hook of the first post-commit secondary phase to run —
/// i.e. while non-unique indices are off-line and the table lock is free.
/// Sequential and seed-free, so run k produces the same rows (and, because
/// the heap state at the hook point is deterministic, the same RIDs) as the
/// first k ops of any other run over the same workload.
struct UpdaterDriver {
  Database* db = nullptr;
  std::string table;
  std::set<std::string> trigger_labels;
  int total_ops = 0;
  std::atomic<bool> fired{false};
  /// Ops attempted / acknowledged (returned OK). The driver stops at the
  /// first failure, so at most one op (attempted == succeeded + 1) is
  /// ambiguous: it may or may not have become durable before the crash.
  std::atomic<int> attempted{0};
  std::atomic<int> succeeded{0};

  void MaybeRun(const std::string& phase) {
    if (trigger_labels.count(phase) == 0) return;
    if (fired.exchange(true)) return;  // one-shot (recovery re-runs phases)
    Rid last_rid;
    bool have_last = false;
    for (int i = 0; i < total_ops; ++i) {
      attempted.store(i + 1);
      Status s;
      if (i % 3 == 2 && have_last) {
        s = db->DeleteRow(table, last_rid);
        have_last = false;
      } else {
        int64_t base = 30000000000LL + static_cast<int64_t>(i) * 10;
        auto rid = db->InsertRow(table, {base, base + 1, base + 2});
        s = rid.status();
        if (s.ok()) {
          last_rid = rid.value();
          have_last = true;
        }
      }
      if (!s.ok()) return;
      succeeded.store(i + 1);
    }
  }
};

/// One prepared, checkpointed database ready to run the sweep's statement.
struct CaseSetup {
  std::unique_ptr<Database> db;
  std::shared_ptr<FaultInjector> injector;
  std::shared_ptr<UpdaterDriver> updater;
  BulkDeleteSpec spec;
};

/// `updater_ops_cap` < 0 runs the configured number of updater ops;
/// 0..N caps them (used to capture the per-k reference digests).
Status PrepareCase(const SweepConfig& config, int threads, bool with_injector,
                   int updater_ops_cap, CaseSetup* out) {
  DatabaseOptions options;
  options.memory_budget_bytes = config.memory_budget_bytes;
  options.enable_recovery_log = true;
  options.exec_threads = threads;
  options.concurrency = config.concurrency;
  if (config.backend == "file") {
    // One scratch directory serves every case: cases run strictly one at a
    // time and Database::Create truncates both files.
    options.path = config.scratch_dir;
  } else if (config.backend != "sim") {
    return Status::InvalidArgument("unknown sweep backend: " + config.backend);
  }
  if (config.concurrency == ConcurrencyProtocol::kSideFile) {
    // Tiny threshold: a handful of updater ops is enough to exercise the
    // spill-to-scratch-pages path under injected faults.
    options.side_file_spill_ops = 4;
  }
  if (with_injector) {
    out->injector = std::make_shared<FaultInjector>(config.injector_seed);
    options.fault_injector = out->injector;
  }
  int updater_ops = updater_ops_cap < 0 ? config.updater_ops : updater_ops_cap;
  if (config.concurrency != ConcurrencyProtocol::kNone && updater_ops > 0) {
    out->updater = std::make_shared<UpdaterDriver>();
    out->updater->total_ops = updater_ops;
    std::shared_ptr<UpdaterDriver> updater = out->updater;
    options.phase_begin_hook = [updater](const std::string& phase) {
      updater->MaybeRun(phase);
    };
  }
  auto db = Database::Create(options);
  BULKDEL_RETURN_IF_ERROR(db.status());
  out->db = std::move(db).TakeValue();

  WorkloadSpec spec;
  spec.n_tuples = config.n_tuples;
  spec.n_int_columns = config.n_int_columns;
  spec.tuple_size = config.tuple_size;
  spec.seed = config.workload_seed;
  auto workload =
      SetUpPaperDatabase(out->db.get(), spec, IndexedColumns(config));
  BULKDEL_RETURN_IF_ERROR(workload.status());
  BULKDEL_RETURN_IF_ERROR(out->db->Checkpoint());

  out->spec.table = spec.table_name;
  out->spec.key_column = "A";
  if (config.predicate == "range") {
    // Centered quantile window of the duplicate-free A-population covering
    // delete_fraction of the rows: deterministic for a given workload seed,
    // and guaranteed to doom exactly `n` rows.
    std::vector<int64_t> sorted = workload.value().values[0];
    std::sort(sorted.begin(), sorted.end());
    size_t n = static_cast<size_t>(
        config.delete_fraction * static_cast<double>(config.n_tuples));
    if (n == 0) n = 1;
    if (n > sorted.size()) n = sorted.size();
    size_t start = (sorted.size() - n) / 2;
    out->spec.predicate = DeletePredicate::kRange;
    out->spec.range_lo = sorted[start];
    out->spec.range_hi = sorted[start + n - 1];
    out->spec.keys_sorted = true;
  } else if (config.predicate == "keys") {
    out->spec.keys = workload.value().MakeDeleteKeys(config.delete_fraction,
                                                     config.delete_keys_seed);
  } else {
    return Status::InvalidArgument("unknown sweep predicate: " +
                                   config.predicate);
  }
  if (out->updater != nullptr) {
    out->updater->db = out->db.get();
    out->updater->table = spec.table_name;
    TableDef* table = out->db->GetTable(spec.table_name);
    for (const auto& index : table->indices) {
      if (!index->options.unique) {
        out->updater->trigger_labels.insert("index:" + index->name);
      }
    }
    if (out->updater->trigger_labels.empty()) {
      return Status::Internal(
          "updater sweep needs a non-unique secondary index");
    }
  }
  return Status::OK();
}

enum class CaseOutcome { kPassed, kUnreached, kFailed };

// ---------------------------------------------------------------------------
// Cascade sweep (config.cascade): the "forget user X" statement.
//
// A deterministic three-level schema — user u owns orders {2u, 2u+1}, order
// o owns events {2o, 2o+1} — with cascading FKs. The swept statement deletes
// every stride-th user; the engine flattens that into three WAL statements
// (EVENTS leg, ORDERS leg, USERS parent, deepest first). A crash can land
// between legs, and recovery rolls only the *begun* statement forward, so
// the acceptable recovered states are exactly the leg prefixes S0..S3.
// ---------------------------------------------------------------------------

const char* const kCascadeTables[] = {"USERS", "ORDERS", "EVENTS"};

struct CascadeCaseSetup {
  std::unique_ptr<Database> db;
  std::shared_ptr<FaultInjector> injector;
  /// The statement under test: delete the doomed users from USERS.
  BulkDeleteSpec spec;
  std::vector<int64_t> doomed_users;
  std::vector<int64_t> doomed_orders;
};

Status PrepareCascadeCase(const SweepConfig& config, int threads,
                          bool with_injector, CascadeCaseSetup* out) {
  if (config.concurrency != ConcurrencyProtocol::kNone) {
    return Status::InvalidArgument(
        "cascade sweep does not take a concurrent updater");
  }
  DatabaseOptions options;
  options.memory_budget_bytes = config.memory_budget_bytes;
  options.enable_recovery_log = true;
  options.exec_threads = threads;
  if (config.backend == "file") {
    options.path = config.scratch_dir;
  } else if (config.backend != "sim") {
    return Status::InvalidArgument("unknown sweep backend: " + config.backend);
  }
  if (with_injector) {
    out->injector = std::make_shared<FaultInjector>(config.injector_seed);
    options.fault_injector = out->injector;
  }
  auto db = Database::Create(options);
  BULKDEL_RETURN_IF_ERROR(db.status());
  out->db = std::move(db).TakeValue();

  // u + 2u + 4u rows total: size the user population from n_tuples.
  int64_t n_users = static_cast<int64_t>(config.n_tuples / 7);
  if (n_users < 8) n_users = 8;
  Schema schema = *Schema::PaperStyle(3, config.tuple_size);
  for (const char* table : kCascadeTables) {
    BULKDEL_RETURN_IF_ERROR(out->db->CreateTable(table, schema).status());
    BULKDEL_RETURN_IF_ERROR(
        out->db->CreateIndex(table, "A", {.unique = true}).status());
  }
  BULKDEL_RETURN_IF_ERROR(out->db->CreateIndex("ORDERS", "B").status());
  BULKDEL_RETURN_IF_ERROR(out->db->CreateIndex("EVENTS", "B").status());
  for (int64_t u = 0; u < n_users; ++u) {
    BULKDEL_RETURN_IF_ERROR(
        out->db->InsertRow("USERS", {u, u * 3 + 1, u * 7}).status());
    for (int64_t o = 2 * u; o < 2 * u + 2; ++o) {
      BULKDEL_RETURN_IF_ERROR(
          out->db->InsertRow("ORDERS", {o, u, o * 5}).status());
      for (int64_t e = 2 * o; e < 2 * o + 2; ++e) {
        BULKDEL_RETURN_IF_ERROR(
            out->db->InsertRow("EVENTS", {e, o, e * 11}).status());
      }
    }
  }
  BULKDEL_RETURN_IF_ERROR(
      out->db->AddForeignKey("ORDERS", "B", "USERS", "A", FkAction::kCascade));
  BULKDEL_RETURN_IF_ERROR(
      out->db->AddForeignKey("EVENTS", "B", "ORDERS", "A", FkAction::kCascade));
  BULKDEL_RETURN_IF_ERROR(out->db->Checkpoint());

  int64_t stride = config.delete_fraction > 0
                       ? static_cast<int64_t>(1.0 / config.delete_fraction)
                       : n_users;
  if (stride < 1) stride = 1;
  for (int64_t u = 0; u < n_users; u += stride) {
    out->doomed_users.push_back(u);
    out->doomed_orders.push_back(2 * u);
    out->doomed_orders.push_back(2 * u + 1);
  }
  out->spec.table = "USERS";
  out->spec.key_column = "A";
  out->spec.keys = out->doomed_users;
  out->spec.keys_sorted = true;
  return Status::OK();
}

Status CaptureCascadeDigests(Database* db, std::vector<StateDigest>* out) {
  out->assign(std::size(kCascadeTables), StateDigest{});
  for (size_t i = 0; i < std::size(kCascadeTables); ++i) {
    BULKDEL_RETURN_IF_ERROR(CaptureDigest(db, kCascadeTables[i], &(*out)[i]));
  }
  return Status::OK();
}

bool CascadeDigestsEqual(const std::vector<StateDigest>& a,
                         const std::vector<StateDigest>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!DigestsEqual(a[i], b[i])) return false;
  }
  return true;
}

std::string DescribeCascadeDiff(const std::vector<StateDigest>& ref,
                                const std::vector<StateDigest>& got) {
  for (size_t i = 0; i < ref.size() && i < got.size(); ++i) {
    if (!DigestsEqual(ref[i], got[i])) {
      return std::string(kCascadeTables[i]) + ": " +
             DescribeDiff(ref[i], got[i]);
    }
  }
  return "digests equal";
}

/// `(*states)[k]` is the database after the first k cascade legs: S0 the
/// untouched load, S1 after the EVENTS leg, S2 after the ORDERS leg, S3 the
/// completed statement. Built by replaying the engine's own leg specs one
/// statement at a time on an uninjected database (already-deleted children
/// make the later legs' own cascade planning a no-op, so the end states are
/// identical to the real statement's prefixes).
Status CaptureCascadeReferences(
    const SweepConfig& config,
    std::vector<std::vector<StateDigest>>* states) {
  CascadeCaseSetup setup;
  BULKDEL_RETURN_IF_ERROR(
      PrepareCascadeCase(config, /*threads=*/1, /*with_injector=*/false,
                         &setup));
  states->assign(4, {});
  BULKDEL_RETURN_IF_ERROR(
      CaptureCascadeDigests(setup.db.get(), &(*states)[0]));

  BulkDeleteSpec events_leg;
  events_leg.table = "EVENTS";
  events_leg.key_column = "B";
  events_leg.keys = setup.doomed_orders;
  events_leg.keys_sorted = true;
  BULKDEL_RETURN_IF_ERROR(
      setup.db->BulkDelete(events_leg, Strategy::kVerticalSortMerge)
          .status());
  BULKDEL_RETURN_IF_ERROR(
      CaptureCascadeDigests(setup.db.get(), &(*states)[1]));

  BulkDeleteSpec orders_leg;
  orders_leg.table = "ORDERS";
  orders_leg.key_column = "B";
  orders_leg.keys = setup.doomed_users;
  orders_leg.keys_sorted = true;
  BULKDEL_RETURN_IF_ERROR(
      setup.db->BulkDelete(orders_leg, Strategy::kVerticalSortMerge)
          .status());
  BULKDEL_RETURN_IF_ERROR(
      CaptureCascadeDigests(setup.db.get(), &(*states)[2]));

  BULKDEL_RETURN_IF_ERROR(
      setup.db->BulkDelete(setup.spec, Strategy::kVerticalSortMerge)
          .status());
  BULKDEL_RETURN_IF_ERROR(setup.db->VerifyIntegrity());
  BULKDEL_RETURN_IF_ERROR(
      CaptureCascadeDigests(setup.db.get(), &(*states)[3]));
  return Status::OK();
}

/// Uninjected counting run for one (strategy, threads) pair of the cascade
/// statement, cross-checked against the completed-statement reference.
Status CountCascadeOccurrences(const SweepConfig& config, Strategy strategy,
                               int threads,
                               const std::vector<StateDigest>& reference,
                               std::map<std::string, uint64_t>* counts) {
  CascadeCaseSetup setup;
  BULKDEL_RETURN_IF_ERROR(
      PrepareCascadeCase(config, threads, /*with_injector=*/true, &setup));
  setup.injector->ResetCounts();
  BULKDEL_RETURN_IF_ERROR(setup.db->BulkDelete(setup.spec, strategy).status());
  *counts = setup.injector->HitCounts();
  std::vector<StateDigest> digests;
  BULKDEL_RETURN_IF_ERROR(CaptureCascadeDigests(setup.db.get(), &digests));
  if (!CascadeDigestsEqual(digests, reference)) {
    return Status::Internal(
        std::string("cascade counting run for ") + StrategyName(strategy) +
        " diverged from the reference state: " +
        DescribeCascadeDiff(reference, digests));
  }
  return Status::OK();
}

CaseOutcome RunOneCascadeCase(
    const SweepConfig& config, Strategy strategy, int threads,
    const std::string& site, uint64_t occurrence, FaultMode mode,
    const std::vector<std::vector<StateDigest>>& states, std::string* why) {
  CascadeCaseSetup setup;
  Status s = PrepareCascadeCase(config, threads, /*with_injector=*/true,
                                &setup);
  if (!s.ok()) {
    *why = "setup failed: " + s.ToString();
    return CaseOutcome::kFailed;
  }
  setup.injector->ResetCounts();
  setup.injector->Arm(site.c_str(), occurrence, mode);
  auto report = setup.db->BulkDelete(setup.spec, strategy);

  if (!setup.injector->tripped()) {
    setup.injector->Disarm();
    if (!report.ok()) {
      *why = "uninjected-path delete failed: " + report.status().ToString();
      return CaseOutcome::kFailed;
    }
    if (threads <= 1) {
      *why = "serial run never reached the armed occurrence";
      return CaseOutcome::kFailed;
    }
    return CaseOutcome::kUnreached;
  }
  if (report.ok()) {
    *why = "fault tripped [" + setup.injector->trip_description() +
           "] but BulkDelete reported success";
    return CaseOutcome::kFailed;
  }

  setup.injector->Disarm();
  s = setup.db->SimulateCrashAndRecover();
  if (!s.ok()) {
    *why = "recovery failed: " + s.ToString();
    return CaseOutcome::kFailed;
  }
  s = setup.db->VerifyIntegrity();
  if (!s.ok()) {
    *why = "post-recovery integrity check failed: " + s.ToString();
    return CaseOutcome::kFailed;
  }
  if (setup.db->log().durable_size() != 0) {
    *why = "recovery left " + std::to_string(setup.db->log().durable_size()) +
           " log records behind";
    return CaseOutcome::kFailed;
  }
  std::vector<StateDigest> recovered;
  s = CaptureCascadeDigests(setup.db.get(), &recovered);
  if (!s.ok()) {
    *why = "post-recovery digest failed: " + s.ToString();
    return CaseOutcome::kFailed;
  }
  // Recovery rolls the one begun statement forward; completed legs stay
  // completed, unbegun legs stay unbegun. Anything that is not an exact leg
  // prefix is lost work, a partially-applied leg, or cross-table skew.
  for (size_t k = 0; k < states.size(); ++k) {
    if (CascadeDigestsEqual(recovered, states[k])) {
      return CaseOutcome::kPassed;
    }
  }
  *why = "recovered state matches no cascade leg prefix S0..S3: vs S3: " +
         DescribeCascadeDiff(states.back(), recovered) +
         "; vs S0: " + DescribeCascadeDiff(states.front(), recovered);
  return CaseOutcome::kFailed;
}

const char* ConcurrencyFlagName(ConcurrencyProtocol protocol) {
  switch (protocol) {
    case ConcurrencyProtocol::kNone:
      return "none";
    case ConcurrencyProtocol::kSideFile:
      return "sidefile";
    case ConcurrencyProtocol::kDirectPropagation:
      return "direct";
  }
  return "unknown";
}

const char* ModeFlagName(FaultMode mode) {
  switch (mode) {
    case FaultMode::kCrash:
      return "crash";
    case FaultMode::kTornWrite:
      return "torn";
    case FaultMode::kShortWrite:
      return "short";
  }
  return "unknown";
}

/// The identity of one sweep case, and a command line that reproduces it.
std::string CaseName(const SweepConfig& config, Strategy strategy, int threads,
                     const std::string& site, uint64_t occurrence,
                     FaultMode mode) {
  std::string name = "strategy=";
  name += StrategyName(strategy);
  name += " threads=" + std::to_string(threads);
  name += " concurrency=";
  name += ConcurrencyFlagName(config.concurrency);
  name += " backend=" + config.backend;
  if (config.cascade) {
    name += " cascade=yes";
  } else {
    name += " predicate=" + config.predicate;
  }
  name += " site=" + site;
  name += " occurrence=" + std::to_string(occurrence);
  name += " mode=";
  name += ModeFlagName(mode);
  name += " seeds=" + std::to_string(config.workload_seed) + "/" +
          std::to_string(config.delete_keys_seed) + "/" +
          std::to_string(config.injector_seed);
  return name;
}

std::string ReproCommand(const SweepConfig& config, Strategy strategy,
                         int threads, const std::string& site,
                         uint64_t occurrence, FaultMode mode) {
  std::string cmd = "bulkdel_crashsweep --strategy=";
  cmd += StrategyName(strategy);
  cmd += " --threads=" + std::to_string(threads);
  cmd += " --concurrency=";
  cmd += ConcurrencyFlagName(config.concurrency);
  if (config.backend != "sim") {
    cmd += " --backend=" + config.backend;
    cmd += " --dir=" + config.scratch_dir;
  }
  if (config.cascade) {
    cmd += " --cascade";
  } else if (config.predicate != "keys") {
    cmd += " --predicate=" + config.predicate;
  }
  cmd += " --site=" + site;
  cmd += " --occurrence=" + std::to_string(occurrence);
  cmd += " --mode=";
  cmd += ModeFlagName(mode);
  cmd += " --workload-seed=" + std::to_string(config.workload_seed);
  cmd += " --keys-seed=" + std::to_string(config.delete_keys_seed);
  cmd += " --injector-seed=" + std::to_string(config.injector_seed);
  return cmd;
}

/// Runs one armed case end to end. `references[k]` is the uninjected
/// post-delete digest with the first k updater ops applied (size 1, just the
/// plain post-delete state, when no updater runs). On failure, `*why`
/// explains what broke.
CaseOutcome RunOneCase(const SweepConfig& config, Strategy strategy,
                       int threads, const std::string& site,
                       uint64_t occurrence, FaultMode mode,
                       const std::vector<StateDigest>& references,
                       std::string* why) {
  CaseSetup setup;
  Status s = PrepareCase(config, threads, /*with_injector=*/true,
                         /*updater_ops_cap=*/-1, &setup);
  if (!s.ok()) {
    *why = "setup failed: " + s.ToString();
    return CaseOutcome::kFailed;
  }
  StateDigest pre_digest;
  s = CaptureDigest(setup.db.get(), setup.spec.table, &pre_digest);
  if (!s.ok()) {
    *why = "pre-digest failed: " + s.ToString();
    return CaseOutcome::kFailed;
  }

  // Count only delete-statement occurrences: load and checkpoint traffic
  // passed through the same sites and must not shift the numbering.
  setup.injector->ResetCounts();
  setup.injector->Arm(site.c_str(), occurrence, mode);
  auto report = setup.db->BulkDelete(setup.spec, strategy);

  if (!setup.injector->tripped()) {
    setup.injector->Disarm();
    if (!report.ok()) {
      *why = "uninjected-path delete failed: " + report.status().ToString();
      return CaseOutcome::kFailed;
    }
    // The armed occurrence was never reached. Deterministic (= a harness
    // bug) in serial mode; a legal interleaving effect in parallel mode.
    if (threads <= 1) {
      *why = "serial run never reached the armed occurrence";
      return CaseOutcome::kFailed;
    }
    return CaseOutcome::kUnreached;
  }
  if (report.ok()) {
    *why = "fault tripped [" + setup.injector->trip_description() +
           "] but BulkDelete reported success";
    return CaseOutcome::kFailed;
  }

  // Updater-durability accounting: every op the updater saw acknowledged
  // (OK after the WAL sync) must survive recovery; the single op that may
  // have been attempted but never acknowledged may legitimately be present
  // (its record became durable) or absent (it did not) — but nothing else.
  size_t acked = 0;
  size_t attempted = 0;
  if (setup.updater != nullptr) {
    acked = static_cast<size_t>(setup.updater->succeeded.load());
    attempted = static_cast<size_t>(setup.updater->attempted.load());
  }
  if (acked >= references.size()) {
    *why = "updater acknowledged " + std::to_string(acked) +
           " ops but only " + std::to_string(references.size() - 1) +
           " reference states exist";
    return CaseOutcome::kFailed;
  }

  // The process is "down": drop volatile state, reopen, roll forward. The
  // crash also "kills the client": if the armed fault fired before the
  // updater's trigger phase, the hook must not fire for the first time
  // inside the recovery-resumed run.
  if (setup.updater != nullptr) setup.updater->fired.store(true);
  setup.injector->Disarm();
  s = setup.db->SimulateCrashAndRecover();
  if (!s.ok()) {
    *why = "recovery failed: " + s.ToString();
    return CaseOutcome::kFailed;
  }
  s = setup.db->VerifyIntegrity();
  if (!s.ok()) {
    *why = "post-recovery integrity check failed: " + s.ToString();
    return CaseOutcome::kFailed;
  }
  if (setup.db->log().durable_size() != 0) {
    *why = "recovery left " + std::to_string(setup.db->log().durable_size()) +
           " log records behind";
    return CaseOutcome::kFailed;
  }

  StateDigest recovered;
  s = CaptureDigest(setup.db.get(), setup.spec.table, &recovered);
  if (!s.ok()) {
    *why = "post-recovery digest failed: " + s.ToString();
    return CaseOutcome::kFailed;
  }
  // Roll-forward either finished the statement with every acknowledged
  // updater op applied (references[acked]; plus possibly the one ambiguous
  // unacknowledged op, references[acked + 1]), or — when the crash preceded
  // the delete list becoming durable, which also precedes any updater DML —
  // legitimately dropped it whole (pre-delete state). Anything else is lost
  // committed work or corruption.
  if (DigestsEqual(recovered, references[acked])) {
    return CaseOutcome::kPassed;
  }
  if (attempted > acked && acked + 1 < references.size() &&
      DigestsEqual(recovered, references[acked + 1])) {
    return CaseOutcome::kPassed;
  }
  if (acked == 0 && DigestsEqual(recovered, pre_digest)) {
    return CaseOutcome::kPassed;
  }
  *why = "recovered state matches neither the completed delete (with " +
         std::to_string(acked) + " acknowledged updater ops) nor the "
         "untouched database: vs post: " +
         DescribeDiff(references[acked], recovered) +
         "; vs pre: " + DescribeDiff(pre_digest, recovered);
  return CaseOutcome::kFailed;
}

/// Evenly spaced sample of 1..count, always including 1 and count.
/// budget == 0 means exhaustive.
std::vector<uint64_t> SampleOccurrences(uint64_t count, uint64_t budget) {
  std::vector<uint64_t> out;
  if (count == 0) return out;
  if (budget == 0 || count <= budget) {
    for (uint64_t i = 1; i <= count; ++i) out.push_back(i);
    return out;
  }
  for (uint64_t i = 0; i < budget; ++i) {
    uint64_t occurrence = 1 + (i * (count - 1)) / (budget - 1);
    if (out.empty() || out.back() != occurrence) out.push_back(occurrence);
  }
  return out;
}

/// Runs the statement uninjected (but with a counting injector installed) to
/// learn how many times each site fires for this (strategy, threads) pair,
/// and cross-checks its end state against the reference digest.
Status CountOccurrences(const SweepConfig& config, Strategy strategy,
                        int threads, const StateDigest& reference,
                        std::map<std::string, uint64_t>* counts) {
  CaseSetup setup;
  BULKDEL_RETURN_IF_ERROR(PrepareCase(config, threads, /*with_injector=*/true,
                                      /*updater_ops_cap=*/-1, &setup));
  setup.injector->ResetCounts();
  auto report = setup.db->BulkDelete(setup.spec, strategy);
  BULKDEL_RETURN_IF_ERROR(report.status());
  if (setup.updater != nullptr &&
      setup.updater->succeeded.load() != setup.updater->total_ops) {
    return Status::Internal("counting run: updater acknowledged " +
                            std::to_string(setup.updater->succeeded.load()) +
                            " of " +
                            std::to_string(setup.updater->total_ops) +
                            " ops without any fault armed");
  }
  // Snapshot before the digest capture below: its scans hit `disk.read` too
  // and must not inflate the statement's occurrence counts.
  *counts = setup.injector->HitCounts();
  StateDigest digest;
  BULKDEL_RETURN_IF_ERROR(
      CaptureDigest(setup.db.get(), setup.spec.table, &digest));
  if (!DigestsEqual(digest, reference)) {
    return Status::Internal(
        std::string("counting run for ") + StrategyName(strategy) +
        " diverged from the reference state: " +
        DescribeDiff(reference, digest));
  }
  return Status::OK();
}

/// The uninjected post-delete states, one per updater-op prefix:
/// `(*references)[k]` is the state after the bulk delete plus the first k
/// updater ops (just the plain post-delete state at k = 0, the only entry
/// when no updater is configured). Strategy-independent — all strategies
/// delete the same rows, the updater is deterministic, and its inserts land
/// on the same free slots regardless of the index-processing method — so
/// one serial family of reference runs serves the whole sweep.
Status CaptureReferences(const SweepConfig& config,
                         std::vector<StateDigest>* references) {
  int n_updater_ops = config.concurrency == ConcurrencyProtocol::kNone
                          ? 0
                          : config.updater_ops;
  references->assign(static_cast<size_t>(n_updater_ops) + 1, StateDigest{});
  for (int k = 0; k <= n_updater_ops; ++k) {
    CaseSetup setup;
    BULKDEL_RETURN_IF_ERROR(PrepareCase(config, /*threads=*/1,
                                        /*with_injector=*/false,
                                        /*updater_ops_cap=*/k, &setup));
    auto report =
        setup.db->BulkDelete(setup.spec, Strategy::kVerticalSortMerge);
    BULKDEL_RETURN_IF_ERROR(report.status());
    if (setup.updater != nullptr && setup.updater->succeeded.load() != k) {
      return Status::Internal(
          "reference run acknowledged " +
          std::to_string(setup.updater->succeeded.load()) + " of " +
          std::to_string(k) + " updater ops");
    }
    BULKDEL_RETURN_IF_ERROR(setup.db->VerifyIntegrity());
    BULKDEL_RETURN_IF_ERROR(CaptureDigest(setup.db.get(), setup.spec.table,
                                          &(*references)[k]));
  }
  return Status::OK();
}

void RecordOutcome(const SweepConfig& config, Strategy strategy, int threads,
                   const std::string& site, uint64_t occurrence,
                   FaultMode mode, CaseOutcome outcome, const std::string& why,
                   SweepStats* stats) {
  std::string name =
      CaseName(config, strategy, threads, site, occurrence, mode);
  switch (outcome) {
    case CaseOutcome::kPassed:
      ++stats->cases_run;
      if (config.verbose) std::printf("PASS  %s\n", name.c_str());
      break;
    case CaseOutcome::kUnreached:
      ++stats->cases_unreached;
      if (config.verbose) std::printf("SKIP  %s (occurrence unreached)\n",
                                      name.c_str());
      break;
    case CaseOutcome::kFailed: {
      ++stats->cases_run;
      ++stats->failures;
      std::string report = "FAILED [" + name + "]: " + why + "\n  repro: " +
                           ReproCommand(config, strategy, threads, site,
                                        occurrence, mode);
      std::printf("%s\n", report.c_str());
      stats->failure_reports.push_back(std::move(report));
      break;
    }
  }
}

bool ModeMatchesFilter(const SweepConfig& config, FaultMode mode) {
  return config.only_mode.empty() || config.only_mode == ModeFlagName(mode);
}

/// The cascade variant of RunCrashSweep's main loop: same site x occurrence
/// x mode enumeration, but the armed statement is the multi-table cascade
/// and acceptance is the leg-prefix check of RunOneCascadeCase.
Status RunCascadeCrashSweep(const SweepConfig& config, SweepStats* stats) {
  std::vector<std::vector<StateDigest>> states;
  BULKDEL_RETURN_IF_ERROR(CaptureCascadeReferences(config, &states));

  for (Strategy strategy : config.strategies) {
    for (int threads : config.thread_counts) {
      std::map<std::string, uint64_t> counts;
      BULKDEL_RETURN_IF_ERROR(CountCascadeOccurrences(
          config, strategy, threads, states.back(), &counts));
      for (const FaultSiteInfo& site : FaultInjector::KnownSites()) {
        if (!config.only_site.empty() && config.only_site != site.name) {
          continue;
        }
        uint64_t count = 0;
        auto it = counts.find(site.name);
        if (it != counts.end()) count = it->second;
        if (count == 0 && config.only_occurrence == 0) continue;

        std::vector<uint64_t> occurrences;
        if (config.only_occurrence != 0) {
          occurrences.push_back(config.only_occurrence);
        } else {
          occurrences =
              SampleOccurrences(count, config.occurrences_per_site);
        }
        for (uint64_t occurrence : occurrences) {
          if (ModeMatchesFilter(config, FaultMode::kCrash)) {
            std::string why;
            CaseOutcome outcome =
                RunOneCascadeCase(config, strategy, threads, site.name,
                                  occurrence, FaultMode::kCrash, states, &why);
            RecordOutcome(config, strategy, threads, site.name, occurrence,
                          FaultMode::kCrash, outcome, why, stats);
          }
          if (config.include_torn_log_sync &&
              std::string(site.name) == fault_sites::kLogSync &&
              ModeMatchesFilter(config, FaultMode::kTornWrite)) {
            std::string why;
            CaseOutcome outcome = RunOneCascadeCase(
                config, strategy, threads, site.name, occurrence,
                FaultMode::kTornWrite, states, &why);
            RecordOutcome(config, strategy, threads, site.name, occurrence,
                          FaultMode::kTornWrite, outcome, why, stats);
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

std::string SweepStats::Summary() const {
  return std::to_string(cases_run) + " cases, " + std::to_string(failures) +
         " failures, " + std::to_string(cases_unreached) +
         " occurrences unreached";
}

Status RunCrashSweep(const SweepConfig& config, SweepStats* stats) {
  if (config.cascade) return RunCascadeCrashSweep(config, stats);
  std::vector<StateDigest> references;
  BULKDEL_RETURN_IF_ERROR(CaptureReferences(config, &references));

  for (Strategy strategy : config.strategies) {
    for (int threads : config.thread_counts) {
      std::map<std::string, uint64_t> counts;
      BULKDEL_RETURN_IF_ERROR(CountOccurrences(config, strategy, threads,
                                               references.back(), &counts));
      for (const FaultSiteInfo& site : FaultInjector::KnownSites()) {
        if (!config.only_site.empty() && config.only_site != site.name) {
          continue;
        }
        uint64_t count = 0;
        auto it = counts.find(site.name);
        if (it != counts.end()) count = it->second;
        if (count == 0 && config.only_occurrence == 0) continue;

        std::vector<uint64_t> occurrences;
        if (config.only_occurrence != 0) {
          occurrences.push_back(config.only_occurrence);
        } else {
          occurrences =
              SampleOccurrences(count, config.occurrences_per_site);
        }
        for (uint64_t occurrence : occurrences) {
          // Fail-stop crashes everywhere. Torn/short *data-page* writes are
          // not recoverable without page checksums (docs/FAULTS.md) and are
          // exercised by unit tests instead; torn *log* syncs are sound
          // under the WAL rule and are swept below.
          if (ModeMatchesFilter(config, FaultMode::kCrash)) {
            std::string why;
            CaseOutcome outcome =
                RunOneCase(config, strategy, threads, site.name, occurrence,
                           FaultMode::kCrash, references, &why);
            RecordOutcome(config, strategy, threads, site.name, occurrence,
                          FaultMode::kCrash, outcome, why, stats);
          }
          if (config.include_torn_log_sync &&
              std::string(site.name) == fault_sites::kLogSync &&
              ModeMatchesFilter(config, FaultMode::kTornWrite)) {
            std::string why;
            CaseOutcome outcome =
                RunOneCase(config, strategy, threads, site.name, occurrence,
                           FaultMode::kTornWrite, references, &why);
            RecordOutcome(config, strategy, threads, site.name, occurrence,
                          FaultMode::kTornWrite, outcome, why, stats);
          }
        }
      }
    }
  }
  return Status::OK();
}

Status RunTortureSweep(const SweepConfig& config, int seconds, uint64_t seed,
                       SweepStats* stats) {
  if (config.cascade) {
    return Status::InvalidArgument(
        "the torture sweep does not take --cascade; use the deterministic "
        "sweep");
  }
  std::vector<StateDigest> references;
  BULKDEL_RETURN_IF_ERROR(CaptureReferences(config, &references));

  // Occurrence counts per (strategy, threads), learned lazily.
  std::map<std::pair<int, int>, std::map<std::string, uint64_t>> count_cache;
  std::mt19937_64 rng(seed);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(seconds);

  while (std::chrono::steady_clock::now() < deadline) {
    Strategy strategy =
        config.strategies[rng() % config.strategies.size()];
    int threads = config.thread_counts[rng() % config.thread_counts.size()];
    auto cache_key = std::make_pair(static_cast<int>(strategy), threads);
    auto cached = count_cache.find(cache_key);
    if (cached == count_cache.end()) {
      std::map<std::string, uint64_t> counts;
      BULKDEL_RETURN_IF_ERROR(CountOccurrences(config, strategy, threads,
                                               references.back(), &counts));
      cached = count_cache.emplace(cache_key, std::move(counts)).first;
    }
    const auto& counts = cached->second;
    const auto& sites = FaultInjector::KnownSites();
    const FaultSiteInfo& site = sites[rng() % sites.size()];
    auto it = counts.find(site.name);
    if (it == counts.end() || it->second == 0) continue;
    uint64_t occurrence = 1 + rng() % it->second;
    FaultMode mode = FaultMode::kCrash;
    if (config.include_torn_log_sync &&
        std::string(site.name) == fault_sites::kLogSync && rng() % 2 == 0) {
      mode = FaultMode::kTornWrite;
    }
    std::string why;
    CaseOutcome outcome = RunOneCase(config, strategy, threads, site.name,
                                     occurrence, mode, references, &why);
    RecordOutcome(config, strategy, threads, site.name, occurrence, mode,
                  outcome, why, stats);
  }
  return Status::OK();
}

}  // namespace bulkdel

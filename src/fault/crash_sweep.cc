#include "fault/crash_sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <utility>

#include "core/database.h"
#include "workload/generator.h"

namespace bulkdel {

namespace {

/// Logical content of a database: every live row (rid + column values) and
/// every index's (key, rid) entry set. Two runs that end in the same logical
/// state produce identical digests regardless of physical node layout.
struct StateDigest {
  /// Each entry: [rid.Pack(), col0, col1, ...]; sorted.
  std::vector<std::vector<int64_t>> rows;
  /// index name -> sorted (key, packed rid) pairs.
  std::vector<std::pair<std::string, std::vector<std::pair<int64_t, uint64_t>>>>
      indices;
};

Status CaptureDigest(Database* db, const std::string& table_name,
                     StateDigest* out) {
  out->rows.clear();
  out->indices.clear();
  TableDef* table = db->GetTable(table_name);
  if (table == nullptr) {
    return Status::NotFound("digest: no table " + table_name);
  }
  const Schema& schema = *table->schema;
  BULKDEL_RETURN_IF_ERROR(
      table->table->Scan([&](const Rid& rid, const char* tuple) {
        std::vector<int64_t> row;
        row.reserve(schema.num_columns() + 1);
        row.push_back(static_cast<int64_t>(rid.Pack()));
        for (size_t c = 0; c < schema.num_columns(); ++c) {
          row.push_back(schema.GetInt(tuple, c));
        }
        out->rows.push_back(std::move(row));
        return Status::OK();
      }));
  std::sort(out->rows.begin(), out->rows.end());
  for (const auto& index : table->indices) {
    std::vector<std::pair<int64_t, uint64_t>> entries;
    BULKDEL_RETURN_IF_ERROR(
        index->tree->ScanAll([&](int64_t key, const Rid& rid, uint16_t) {
          entries.emplace_back(key, rid.Pack());
          return Status::OK();
        }));
    std::sort(entries.begin(), entries.end());
    out->indices.emplace_back(index->name, std::move(entries));
  }
  return Status::OK();
}

bool DigestsEqual(const StateDigest& a, const StateDigest& b) {
  return a.rows == b.rows && a.indices == b.indices;
}

/// Human-readable first difference, for failure reports.
std::string DescribeDiff(const StateDigest& ref, const StateDigest& got) {
  if (ref.rows.size() != got.rows.size()) {
    return "row count " + std::to_string(got.rows.size()) + " != reference " +
           std::to_string(ref.rows.size());
  }
  for (size_t i = 0; i < ref.rows.size(); ++i) {
    if (ref.rows[i] != got.rows[i]) {
      return "row #" + std::to_string(i) + " differs (rid " +
             std::to_string(got.rows[i].empty() ? -1 : got.rows[i][0]) + ")";
    }
  }
  if (ref.indices.size() != got.indices.size()) {
    return "index count differs";
  }
  for (size_t i = 0; i < ref.indices.size(); ++i) {
    if (ref.indices[i].first != got.indices[i].first) {
      return "index name mismatch at #" + std::to_string(i);
    }
    if (ref.indices[i].second != got.indices[i].second) {
      return "index " + ref.indices[i].first + " entries differ (" +
             std::to_string(got.indices[i].second.size()) + " vs reference " +
             std::to_string(ref.indices[i].second.size()) + ")";
    }
  }
  return "digests equal";
}

std::vector<std::string> IndexedColumns(const SweepConfig& config) {
  std::vector<std::string> columns;
  for (int c = 0; c < config.n_int_columns; ++c) {
    columns.push_back(std::string(1, static_cast<char>('A' + c)));
  }
  return columns;
}

/// One prepared, checkpointed database ready to run the sweep's statement.
struct CaseSetup {
  std::unique_ptr<Database> db;
  std::shared_ptr<FaultInjector> injector;
  BulkDeleteSpec spec;
};

Status PrepareCase(const SweepConfig& config, int threads, bool with_injector,
                   CaseSetup* out) {
  DatabaseOptions options;
  options.memory_budget_bytes = config.memory_budget_bytes;
  options.enable_recovery_log = true;
  options.exec_threads = threads;
  if (with_injector) {
    out->injector = std::make_shared<FaultInjector>(config.injector_seed);
    options.fault_injector = out->injector;
  }
  auto db = Database::Create(options);
  BULKDEL_RETURN_IF_ERROR(db.status());
  out->db = std::move(db).TakeValue();

  WorkloadSpec spec;
  spec.n_tuples = config.n_tuples;
  spec.n_int_columns = config.n_int_columns;
  spec.tuple_size = config.tuple_size;
  spec.seed = config.workload_seed;
  auto workload =
      SetUpPaperDatabase(out->db.get(), spec, IndexedColumns(config));
  BULKDEL_RETURN_IF_ERROR(workload.status());
  BULKDEL_RETURN_IF_ERROR(out->db->Checkpoint());

  out->spec.table = spec.table_name;
  out->spec.key_column = "A";
  out->spec.keys = workload.value().MakeDeleteKeys(config.delete_fraction,
                                                   config.delete_keys_seed);
  return Status::OK();
}

const char* ModeFlagName(FaultMode mode) {
  switch (mode) {
    case FaultMode::kCrash:
      return "crash";
    case FaultMode::kTornWrite:
      return "torn";
    case FaultMode::kShortWrite:
      return "short";
  }
  return "unknown";
}

/// The identity of one sweep case, and a command line that reproduces it.
std::string CaseName(const SweepConfig& config, Strategy strategy, int threads,
                     const std::string& site, uint64_t occurrence,
                     FaultMode mode) {
  std::string name = "strategy=";
  name += StrategyName(strategy);
  name += " threads=" + std::to_string(threads);
  name += " site=" + site;
  name += " occurrence=" + std::to_string(occurrence);
  name += " mode=";
  name += ModeFlagName(mode);
  name += " seeds=" + std::to_string(config.workload_seed) + "/" +
          std::to_string(config.delete_keys_seed) + "/" +
          std::to_string(config.injector_seed);
  return name;
}

std::string ReproCommand(const SweepConfig& config, Strategy strategy,
                         int threads, const std::string& site,
                         uint64_t occurrence, FaultMode mode) {
  std::string cmd = "bulkdel_crashsweep --strategy=";
  cmd += StrategyName(strategy);
  cmd += " --threads=" + std::to_string(threads);
  cmd += " --site=" + site;
  cmd += " --occurrence=" + std::to_string(occurrence);
  cmd += " --mode=";
  cmd += ModeFlagName(mode);
  cmd += " --workload-seed=" + std::to_string(config.workload_seed);
  cmd += " --keys-seed=" + std::to_string(config.delete_keys_seed);
  cmd += " --injector-seed=" + std::to_string(config.injector_seed);
  return cmd;
}

enum class CaseOutcome { kPassed, kUnreached, kFailed };

/// Runs one armed case end to end. `reference` is the uninjected post-delete
/// digest. On failure, `*why` explains what broke.
CaseOutcome RunOneCase(const SweepConfig& config, Strategy strategy,
                       int threads, const std::string& site,
                       uint64_t occurrence, FaultMode mode,
                       const StateDigest& reference, std::string* why) {
  CaseSetup setup;
  Status s = PrepareCase(config, threads, /*with_injector=*/true, &setup);
  if (!s.ok()) {
    *why = "setup failed: " + s.ToString();
    return CaseOutcome::kFailed;
  }
  StateDigest pre_digest;
  s = CaptureDigest(setup.db.get(), setup.spec.table, &pre_digest);
  if (!s.ok()) {
    *why = "pre-digest failed: " + s.ToString();
    return CaseOutcome::kFailed;
  }

  // Count only delete-statement occurrences: load and checkpoint traffic
  // passed through the same sites and must not shift the numbering.
  setup.injector->ResetCounts();
  setup.injector->Arm(site.c_str(), occurrence, mode);
  auto report = setup.db->BulkDelete(setup.spec, strategy);

  if (!setup.injector->tripped()) {
    setup.injector->Disarm();
    if (!report.ok()) {
      *why = "uninjected-path delete failed: " + report.status().ToString();
      return CaseOutcome::kFailed;
    }
    // The armed occurrence was never reached. Deterministic (= a harness
    // bug) in serial mode; a legal interleaving effect in parallel mode.
    if (threads <= 1) {
      *why = "serial run never reached the armed occurrence";
      return CaseOutcome::kFailed;
    }
    return CaseOutcome::kUnreached;
  }
  if (report.ok()) {
    *why = "fault tripped [" + setup.injector->trip_description() +
           "] but BulkDelete reported success";
    return CaseOutcome::kFailed;
  }

  // The process is "down": drop volatile state, reopen, roll forward.
  setup.injector->Disarm();
  s = setup.db->SimulateCrashAndRecover();
  if (!s.ok()) {
    *why = "recovery failed: " + s.ToString();
    return CaseOutcome::kFailed;
  }
  s = setup.db->VerifyIntegrity();
  if (!s.ok()) {
    *why = "post-recovery integrity check failed: " + s.ToString();
    return CaseOutcome::kFailed;
  }
  if (setup.db->log().durable_size() != 0) {
    *why = "recovery left " + std::to_string(setup.db->log().durable_size()) +
           " log records behind";
    return CaseOutcome::kFailed;
  }

  StateDigest recovered;
  s = CaptureDigest(setup.db.get(), setup.spec.table, &recovered);
  if (!s.ok()) {
    *why = "post-recovery digest failed: " + s.ToString();
    return CaseOutcome::kFailed;
  }
  // Roll-forward either finished the statement (post-delete state) or — when
  // the crash preceded the delete list becoming durable — legitimately
  // dropped it whole (pre-delete state). Anything in between is corruption.
  if (DigestsEqual(recovered, reference) ||
      DigestsEqual(recovered, pre_digest)) {
    return CaseOutcome::kPassed;
  }
  *why = "recovered state matches neither the completed delete nor the "
         "untouched database: vs post: " +
         DescribeDiff(reference, recovered) +
         "; vs pre: " + DescribeDiff(pre_digest, recovered);
  return CaseOutcome::kFailed;
}

/// Evenly spaced sample of 1..count, always including 1 and count.
/// budget == 0 means exhaustive.
std::vector<uint64_t> SampleOccurrences(uint64_t count, uint64_t budget) {
  std::vector<uint64_t> out;
  if (count == 0) return out;
  if (budget == 0 || count <= budget) {
    for (uint64_t i = 1; i <= count; ++i) out.push_back(i);
    return out;
  }
  for (uint64_t i = 0; i < budget; ++i) {
    uint64_t occurrence = 1 + (i * (count - 1)) / (budget - 1);
    if (out.empty() || out.back() != occurrence) out.push_back(occurrence);
  }
  return out;
}

/// Runs the statement uninjected (but with a counting injector installed) to
/// learn how many times each site fires for this (strategy, threads) pair,
/// and cross-checks its end state against the reference digest.
Status CountOccurrences(const SweepConfig& config, Strategy strategy,
                        int threads, const StateDigest& reference,
                        std::map<std::string, uint64_t>* counts) {
  CaseSetup setup;
  BULKDEL_RETURN_IF_ERROR(
      PrepareCase(config, threads, /*with_injector=*/true, &setup));
  setup.injector->ResetCounts();
  auto report = setup.db->BulkDelete(setup.spec, strategy);
  BULKDEL_RETURN_IF_ERROR(report.status());
  // Snapshot before the digest capture below: its scans hit `disk.read` too
  // and must not inflate the statement's occurrence counts.
  *counts = setup.injector->HitCounts();
  StateDigest digest;
  BULKDEL_RETURN_IF_ERROR(
      CaptureDigest(setup.db.get(), setup.spec.table, &digest));
  if (!DigestsEqual(digest, reference)) {
    return Status::Internal(
        std::string("counting run for ") + StrategyName(strategy) +
        " diverged from the reference state: " +
        DescribeDiff(reference, digest));
  }
  return Status::OK();
}

/// The uninjected post-delete state; strategy-independent (all strategies
/// delete the same rows), so one serial reference run serves the whole sweep.
Status CaptureReference(const SweepConfig& config, StateDigest* reference) {
  CaseSetup setup;
  BULKDEL_RETURN_IF_ERROR(
      PrepareCase(config, /*threads=*/1, /*with_injector=*/false, &setup));
  auto report =
      setup.db->BulkDelete(setup.spec, Strategy::kVerticalSortMerge);
  BULKDEL_RETURN_IF_ERROR(report.status());
  BULKDEL_RETURN_IF_ERROR(setup.db->VerifyIntegrity());
  return CaptureDigest(setup.db.get(), setup.spec.table, reference);
}

void RecordOutcome(const SweepConfig& config, Strategy strategy, int threads,
                   const std::string& site, uint64_t occurrence,
                   FaultMode mode, CaseOutcome outcome, const std::string& why,
                   SweepStats* stats) {
  std::string name =
      CaseName(config, strategy, threads, site, occurrence, mode);
  switch (outcome) {
    case CaseOutcome::kPassed:
      ++stats->cases_run;
      if (config.verbose) std::printf("PASS  %s\n", name.c_str());
      break;
    case CaseOutcome::kUnreached:
      ++stats->cases_unreached;
      if (config.verbose) std::printf("SKIP  %s (occurrence unreached)\n",
                                      name.c_str());
      break;
    case CaseOutcome::kFailed: {
      ++stats->cases_run;
      ++stats->failures;
      std::string report = "FAILED [" + name + "]: " + why + "\n  repro: " +
                           ReproCommand(config, strategy, threads, site,
                                        occurrence, mode);
      std::printf("%s\n", report.c_str());
      stats->failure_reports.push_back(std::move(report));
      break;
    }
  }
}

bool ModeMatchesFilter(const SweepConfig& config, FaultMode mode) {
  return config.only_mode.empty() || config.only_mode == ModeFlagName(mode);
}

}  // namespace

std::string SweepStats::Summary() const {
  return std::to_string(cases_run) + " cases, " + std::to_string(failures) +
         " failures, " + std::to_string(cases_unreached) +
         " occurrences unreached";
}

Status RunCrashSweep(const SweepConfig& config, SweepStats* stats) {
  StateDigest reference;
  BULKDEL_RETURN_IF_ERROR(CaptureReference(config, &reference));

  for (Strategy strategy : config.strategies) {
    for (int threads : config.thread_counts) {
      std::map<std::string, uint64_t> counts;
      BULKDEL_RETURN_IF_ERROR(
          CountOccurrences(config, strategy, threads, reference, &counts));
      for (const FaultSiteInfo& site : FaultInjector::KnownSites()) {
        if (!config.only_site.empty() && config.only_site != site.name) {
          continue;
        }
        uint64_t count = 0;
        auto it = counts.find(site.name);
        if (it != counts.end()) count = it->second;
        if (count == 0 && config.only_occurrence == 0) continue;

        std::vector<uint64_t> occurrences;
        if (config.only_occurrence != 0) {
          occurrences.push_back(config.only_occurrence);
        } else {
          occurrences =
              SampleOccurrences(count, config.occurrences_per_site);
        }
        for (uint64_t occurrence : occurrences) {
          // Fail-stop crashes everywhere. Torn/short *data-page* writes are
          // not recoverable without page checksums (docs/FAULTS.md) and are
          // exercised by unit tests instead; torn *log* syncs are sound
          // under the WAL rule and are swept below.
          if (ModeMatchesFilter(config, FaultMode::kCrash)) {
            std::string why;
            CaseOutcome outcome =
                RunOneCase(config, strategy, threads, site.name, occurrence,
                           FaultMode::kCrash, reference, &why);
            RecordOutcome(config, strategy, threads, site.name, occurrence,
                          FaultMode::kCrash, outcome, why, stats);
          }
          if (config.include_torn_log_sync &&
              std::string(site.name) == fault_sites::kLogSync &&
              ModeMatchesFilter(config, FaultMode::kTornWrite)) {
            std::string why;
            CaseOutcome outcome =
                RunOneCase(config, strategy, threads, site.name, occurrence,
                           FaultMode::kTornWrite, reference, &why);
            RecordOutcome(config, strategy, threads, site.name, occurrence,
                          FaultMode::kTornWrite, outcome, why, stats);
          }
        }
      }
    }
  }
  return Status::OK();
}

Status RunTortureSweep(const SweepConfig& config, int seconds, uint64_t seed,
                       SweepStats* stats) {
  StateDigest reference;
  BULKDEL_RETURN_IF_ERROR(CaptureReference(config, &reference));

  // Occurrence counts per (strategy, threads), learned lazily.
  std::map<std::pair<int, int>, std::map<std::string, uint64_t>> count_cache;
  std::mt19937_64 rng(seed);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(seconds);

  while (std::chrono::steady_clock::now() < deadline) {
    Strategy strategy =
        config.strategies[rng() % config.strategies.size()];
    int threads = config.thread_counts[rng() % config.thread_counts.size()];
    auto cache_key = std::make_pair(static_cast<int>(strategy), threads);
    auto cached = count_cache.find(cache_key);
    if (cached == count_cache.end()) {
      std::map<std::string, uint64_t> counts;
      BULKDEL_RETURN_IF_ERROR(
          CountOccurrences(config, strategy, threads, reference, &counts));
      cached = count_cache.emplace(cache_key, std::move(counts)).first;
    }
    const auto& counts = cached->second;
    const auto& sites = FaultInjector::KnownSites();
    const FaultSiteInfo& site = sites[rng() % sites.size()];
    auto it = counts.find(site.name);
    if (it == counts.end() || it->second == 0) continue;
    uint64_t occurrence = 1 + rng() % it->second;
    FaultMode mode = FaultMode::kCrash;
    if (config.include_torn_log_sync &&
        std::string(site.name) == fault_sites::kLogSync && rng() % 2 == 0) {
      mode = FaultMode::kTornWrite;
    }
    std::string why;
    CaseOutcome outcome = RunOneCase(config, strategy, threads, site.name,
                                     occurrence, mode, reference, &why);
    RecordOutcome(config, strategy, threads, site.name, occurrence, mode,
                  outcome, why, stats);
  }
  return Status::OK();
}

}  // namespace bulkdel

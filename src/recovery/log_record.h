#ifndef BULKDEL_RECOVERY_LOG_RECORD_H_
#define BULKDEL_RECOVERY_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/page.h"
#include "table/rid.h"

namespace bulkdel {

/// Bulk-delete log record types (paper §3.2). The log makes an interrupted
/// bulk delete restartable *forward*: recovery finishes the deletion from the
/// last checkpoint instead of rolling it back.
enum class LogRecordType : uint8_t {
  /// A bulk delete started: carries table / key column identity.
  kBegin,
  /// An intermediate delete list was materialized to stable scratch pages
  /// ("the results of the join variants should be materialized to stable
  /// storage"). `label` names it ("input-keys", "rids", "feed:R.B", ...).
  kListMaterialized,
  /// One index entry was removed by the bulk deleter (physiological redo
  /// info: phase label + key + RID). Durable before the page write-back via
  /// the buffer pool's pre-writeback hook.
  kEntryDeleted,
  /// One table record was removed; carries the projected secondary-index key
  /// values so the downstream feeds can be reconstructed after a crash.
  kRowDeleted,
  /// A whole phase (one structure) finished and a checkpoint was taken.
  kPhaseDone,
  /// Table + unique indices done; the statement is committed and the table
  /// lock can be released (§3.1).
  kCommit,
  /// All indices caught up; the bulk delete is fully finished.
  kEnd,
  /// One concurrent-updater DML op (§3.1) made while a bulk delete held
  /// indices off-line. Logged *before* the heap/index mutations (`label` =
  /// table, `key`/`rid` identify the row, `values` = full row for inserts,
  /// `count` = 1 for insert / 0 for delete), so any durable partial effect
  /// implies a durable record; recovery replays these idempotently over the
  /// heap and every index.
  kUpdaterRow,
  /// Diagnostics: one op entered an off-line index's side-file (`label` =
  /// index name). Not consulted for replay — kUpdaterRow records are the
  /// single source of truth (a durable drain record would not prove the
  /// drained index pages were durable).
  kSideFileAppend,
  /// Diagnostics: a catch-up batch of `count` side-file ops was applied to
  /// `label` (index name).
  kSideFileDrain,
  /// A side-file shard spilled its tail to scratch `pages`; recovery frees
  /// them (idempotently) — the ops themselves are re-derived from
  /// kUpdaterRow records.
  kSideFileSpill,
  /// Range delete: one fully-covered B-link leaf was unlinked and freed
  /// without per-entry removal. `pages` = the freed leaf, `values` = the
  /// leaf's (key, packed-rid) pairs interleaved, so recovery can re-derive
  /// both the doomed RIDs and the secondary-index feeds exactly as if the
  /// entries had been logged one kEntryDeleted at a time.
  kRangeLeafRun,
  /// Range delete: fully-covered heap extents were detached from the table's
  /// page chain without reading them. `pages` = the dropped heap pages,
  /// `count` = tuples they held. The pages are freed only at finalize (after
  /// kEnd is durable), so recovery re-detaches idempotently.
  kExtentDrop,
};

/// One past the last valid LogRecordType value (codec validation bound).
inline constexpr uint8_t kNumLogRecordTypes =
    static_cast<uint8_t>(LogRecordType::kExtentDrop) + 1;

struct LogRecord {
  LogRecordType type = LogRecordType::kBegin;
  uint64_t bd_id = 0;
  std::string label;            ///< phase / list label, table name for kBegin
  std::string aux;              ///< key column for kBegin
  std::vector<PageId> pages;    ///< kListMaterialized: scratch pages
  uint64_t count = 0;           ///< kListMaterialized: item count
  int64_t key = 0;              ///< kEntryDeleted
  Rid rid;                      ///< kEntryDeleted / kRowDeleted
  std::vector<int64_t> values;  ///< kRowDeleted: projected index keys
};

}  // namespace bulkdel

#endif  // BULKDEL_RECOVERY_LOG_RECORD_H_

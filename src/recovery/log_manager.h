#ifndef BULKDEL_RECOVERY_LOG_MANAGER_H_
#define BULKDEL_RECOVERY_LOG_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "storage/page.h"
#include "table/rid.h"

namespace bulkdel {

/// Bulk-delete log record types (paper §3.2). The log makes an interrupted
/// bulk delete restartable *forward*: recovery finishes the deletion from the
/// last checkpoint instead of rolling it back.
enum class LogRecordType : uint8_t {
  /// A bulk delete started: carries table / key column identity.
  kBegin,
  /// An intermediate delete list was materialized to stable scratch pages
  /// ("the results of the join variants should be materialized to stable
  /// storage"). `label` names it ("input-keys", "rids", "feed:R.B", ...).
  kListMaterialized,
  /// One index entry was removed by the bulk deleter (physiological redo
  /// info: phase label + key + RID). Durable before the page write-back via
  /// the buffer pool's pre-writeback hook.
  kEntryDeleted,
  /// One table record was removed; carries the projected secondary-index key
  /// values so the downstream feeds can be reconstructed after a crash.
  kRowDeleted,
  /// A whole phase (one structure) finished and a checkpoint was taken.
  kPhaseDone,
  /// Table + unique indices done; the statement is committed and the table
  /// lock can be released (§3.1).
  kCommit,
  /// All indices caught up; the bulk delete is fully finished.
  kEnd,
};

struct LogRecord {
  LogRecordType type = LogRecordType::kBegin;
  uint64_t bd_id = 0;
  std::string label;            ///< phase / list label, table name for kBegin
  std::string aux;              ///< key column for kBegin
  std::vector<PageId> pages;    ///< kListMaterialized: scratch pages
  uint64_t count = 0;           ///< kListMaterialized: item count
  int64_t key = 0;              ///< kEntryDeleted
  Rid rid;                      ///< kEntryDeleted / kRowDeleted
  std::vector<int64_t> values;  ///< kRowDeleted: projected index keys
};

/// Append-only log with explicit durability. Appended records are volatile
/// until Sync(); a simulated crash drops the un-synced tail, exactly like a
/// lost OS buffer. The buffer pool's pre-writeback hook calls Sync() so no
/// page write can precede the durability of the log records describing it
/// (the WAL rule).
class LogManager {
 public:
  uint64_t NextBulkDeleteId() {
    std::lock_guard<std::mutex> lock(mu_);
    return ++last_bd_id_;
  }

  void Append(LogRecord record) {
    std::lock_guard<std::mutex> lock(mu_);
    volatile_.push_back(std::move(record));
  }

  /// Makes every appended record durable.
  void Sync() {
    std::lock_guard<std::mutex> lock(mu_);
    for (LogRecord& r : volatile_) durable_.push_back(std::move(r));
    volatile_.clear();
  }

  /// Crash simulation: lose the un-synced tail.
  void DropVolatileTail() {
    std::lock_guard<std::mutex> lock(mu_);
    volatile_.clear();
  }

  std::vector<LogRecord> DurableSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return durable_;
  }

  /// Discards records of completed bulk deletes (log truncation after kEnd).
  void TruncateCompleted();

  size_t durable_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return durable_.size();
  }

 private:
  mutable std::mutex mu_;
  uint64_t last_bd_id_ = 0;
  std::vector<LogRecord> durable_;
  std::vector<LogRecord> volatile_;
};

}  // namespace bulkdel

#endif  // BULKDEL_RECOVERY_LOG_MANAGER_H_

#ifndef BULKDEL_RECOVERY_LOG_MANAGER_H_
#define BULKDEL_RECOVERY_LOG_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "storage/page.h"
#include "table/rid.h"

namespace bulkdel {

namespace obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace obs

/// Bulk-delete log record types (paper §3.2). The log makes an interrupted
/// bulk delete restartable *forward*: recovery finishes the deletion from the
/// last checkpoint instead of rolling it back.
enum class LogRecordType : uint8_t {
  /// A bulk delete started: carries table / key column identity.
  kBegin,
  /// An intermediate delete list was materialized to stable scratch pages
  /// ("the results of the join variants should be materialized to stable
  /// storage"). `label` names it ("input-keys", "rids", "feed:R.B", ...).
  kListMaterialized,
  /// One index entry was removed by the bulk deleter (physiological redo
  /// info: phase label + key + RID). Durable before the page write-back via
  /// the buffer pool's pre-writeback hook.
  kEntryDeleted,
  /// One table record was removed; carries the projected secondary-index key
  /// values so the downstream feeds can be reconstructed after a crash.
  kRowDeleted,
  /// A whole phase (one structure) finished and a checkpoint was taken.
  kPhaseDone,
  /// Table + unique indices done; the statement is committed and the table
  /// lock can be released (§3.1).
  kCommit,
  /// All indices caught up; the bulk delete is fully finished.
  kEnd,
  /// One concurrent-updater DML op (§3.1) made while a bulk delete held
  /// indices off-line. Logged *before* the heap/index mutations (`label` =
  /// table, `key`/`rid` identify the row, `values` = full row for inserts,
  /// `count` = 1 for insert / 0 for delete), so any durable partial effect
  /// implies a durable record; recovery replays these idempotently over the
  /// heap and every index.
  kUpdaterRow,
  /// Diagnostics: one op entered an off-line index's side-file (`label` =
  /// index name). Not consulted for replay — kUpdaterRow records are the
  /// single source of truth (a durable drain record would not prove the
  /// drained index pages were durable).
  kSideFileAppend,
  /// Diagnostics: a catch-up batch of `count` side-file ops was applied to
  /// `label` (index name).
  kSideFileDrain,
  /// A side-file shard spilled its tail to scratch `pages`; recovery frees
  /// them (idempotently) — the ops themselves are re-derived from
  /// kUpdaterRow records.
  kSideFileSpill,
};

struct LogRecord {
  LogRecordType type = LogRecordType::kBegin;
  uint64_t bd_id = 0;
  std::string label;            ///< phase / list label, table name for kBegin
  std::string aux;              ///< key column for kBegin
  std::vector<PageId> pages;    ///< kListMaterialized: scratch pages
  uint64_t count = 0;           ///< kListMaterialized: item count
  int64_t key = 0;              ///< kEntryDeleted
  Rid rid;                      ///< kEntryDeleted / kRowDeleted
  std::vector<int64_t> values;  ///< kRowDeleted: projected index keys
  /// The record was only half-written when a crash interrupted the sync (in
  /// a real log: the trailing record whose checksum does not verify). A log
  /// scan must treat the log as ending just *before* the first torn record.
  bool torn = false;
};

/// Append-only log with explicit durability. Appended records are volatile
/// until Sync(); a simulated crash drops the un-synced tail, exactly like a
/// lost OS buffer. The buffer pool's pre-writeback hook calls Sync() so no
/// page write can precede the durability of the log records describing it
/// (the WAL rule).
class LogManager {
 public:
  uint64_t NextBulkDeleteId() {
    std::lock_guard<std::mutex> lock(mu_);
    return ++last_bd_id_;
  }

  void Append(LogRecord record) {
    std::lock_guard<std::mutex> lock(mu_);
    volatile_.push_back(std::move(record));
  }

  /// Makes every appended record durable. Under an armed fault injector the
  /// sync can be interrupted (`log.sync` site): nothing survives (kCrash) or
  /// only a prefix does, with the next record reaching the durable log
  /// half-written — flagged `torn` (kTornWrite). Once the injector is
  /// tripped, Sync is a no-op: a dead process syncs nothing.
  void Sync();

  /// Crash simulation: lose the un-synced tail.
  void DropVolatileTail() {
    std::lock_guard<std::mutex> lock(mu_);
    volatile_.clear();
  }

  /// Restart log scan hygiene: physically discards everything from the first
  /// torn record onward (a real scan stops at the first checksum mismatch
  /// and truncates there, so later appends cannot hide behind garbage).
  /// Returns the number of records discarded.
  size_t DropTornTail();

  /// Installs a fault injector on the sync path (nullptr = none; must
  /// outlive the LogManager).
  void SetFaultInjector(FaultInjector* injector) {
    std::lock_guard<std::mutex> lock(mu_);
    injector_ = injector;
  }

  /// Resolves the WAL metric instruments (wal.syncs, wal.sync_records,
  /// wal.sync_ns) from `metrics` (nullptr = none; the registry must outlive
  /// the LogManager).
  void SetMetrics(obs::MetricsRegistry* metrics);

  std::vector<LogRecord> DurableSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return durable_;
  }

  /// Discards records of completed bulk deletes (log truncation after kEnd).
  void TruncateCompleted();

  size_t durable_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return durable_.size();
  }

 private:
  mutable std::mutex mu_;
  uint64_t last_bd_id_ = 0;
  std::vector<LogRecord> durable_;
  std::vector<LogRecord> volatile_;
  FaultInjector* injector_ = nullptr;
  obs::Counter* syncs_counter_ = nullptr;
  obs::Histogram* sync_records_hist_ = nullptr;
  obs::Histogram* sync_ns_hist_ = nullptr;
};

}  // namespace bulkdel

#endif  // BULKDEL_RECOVERY_LOG_MANAGER_H_

#ifndef BULKDEL_RECOVERY_LOG_MANAGER_H_
#define BULKDEL_RECOVERY_LOG_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "recovery/log_record.h"
#include "recovery/wal_backend.h"
#include "util/status.h"

namespace bulkdel {

namespace obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace obs

/// Append-only WAL with explicit durability and group commit.
///
/// Records are framed by the wal_codec (length-prefixed, CRC-checksummed)
/// and appended to a pluggable WalBackend byte sink: an in-memory image for
/// simulation, or a real file whose Sync() is an fsync(2). Appended records
/// are volatile until Sync(); a crash (simulated or real) loses the
/// un-flushed tail, exactly like lost OS buffers. The buffer pool's
/// pre-writeback hook calls Sync() so no page write can precede the
/// durability of the log records describing it (the WAL rule).
///
/// Group commit: concurrent Sync() callers coalesce onto one leader flush —
/// the first syncer encodes and fsyncs every record appended so far, and
/// followers whose records rode along return without touching the backend.
/// Followers that arrive mid-flush wait and (at most) trigger one more
/// flush for their tail. One fsync thus covers a whole batch of acks, which
/// is what keeps the §3.1 updater ack path off the fsync critical path.
/// SetGroupCommit(false) degrades to one flush+fsync per Sync() call (the
/// ablation baseline).
///
/// Torn tails are *detected*, not flagged: an interrupted flush (fault
/// injection, or a real crash with the file backend) leaves a trailing
/// frame whose length or CRC check fails, and the restart scan truncates
/// the log there (DropTornTail).
class LogManager {
 public:
  /// In-memory (simulation) WAL.
  LogManager();
  /// File-backed WAL at `path`. `truncate` discards existing contents;
  /// otherwise the file is scanned on open — clean frames become the
  /// durable prefix, a torn tail is remembered for DropTornTail, and the
  /// bulk-delete id counter resumes past every recovered record.
  LogManager(const std::string& path, bool truncate);
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Status of the open-time scan (file backend): IOError if the file could
  /// not be opened or read. The sim backend is always OK.
  Status open_status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return open_status_;
  }

  uint64_t NextBulkDeleteId() {
    std::lock_guard<std::mutex> lock(mu_);
    return ++last_bd_id_;
  }

  void Append(LogRecord record) {
    std::lock_guard<std::mutex> lock(mu_);
    volatile_.push_back(std::move(record));
    ++appended_seq_;
  }

  /// Makes every record appended so far durable. Concurrent callers group
  /// commit (see class comment). Under an armed fault injector the flush can
  /// be interrupted (`log.sync` site): nothing of the batch survives
  /// (kCrash), or a prefix of its frames does plus a half-written frame of
  /// garbage (kTornWrite) — detected by the CRC scan on restart. Once the
  /// injector is tripped, Sync is a no-op: a dead process syncs nothing.
  void Sync();

  /// Group commit on/off (default on). Off = every Sync() call performs its
  /// own flush + fsync, even if its records are already durable.
  void SetGroupCommit(bool enabled) {
    std::lock_guard<std::mutex> lock(mu_);
    group_commit_ = enabled;
  }

  /// Crash simulation: lose the un-synced tail. Waits out any in-flight
  /// flush first so the outcome is deterministic.
  void DropVolatileTail();

  /// Restart log scan hygiene: physically truncates the log to its clean
  /// frame prefix, discarding the torn/corrupt tail a crash mid-flush left
  /// behind (a real scan stops at the first checksum mismatch and truncates
  /// there, so later appends cannot hide behind garbage). Returns the number
  /// of garbage bytes discarded.
  size_t DropTornTail();

  /// Installs a fault injector on the sync path (nullptr = none; must
  /// outlive the LogManager).
  void SetFaultInjector(FaultInjector* injector) {
    std::lock_guard<std::mutex> lock(mu_);
    injector_ = injector;
  }

  /// Resolves the WAL metric instruments (wal.syncs, wal.sync_records,
  /// wal.sync_ns, wal.fsyncs, wal.group_size, wal.fsync_ns) from `metrics`
  /// (nullptr = none; the registry must outlive the LogManager).
  void SetMetrics(obs::MetricsRegistry* metrics);

  /// Visits every durable record in log order without copying the log
  /// (recovery's analysis pass). Stops early if `fn` returns non-OK and
  /// returns that status. The log is locked for the duration; `fn` must not
  /// call back into the LogManager.
  Status ScanDurable(const std::function<Status(const LogRecord&)>& fn) const;

  /// Copies the durable records (test convenience; recovery uses
  /// ScanDurable).
  std::vector<LogRecord> DurableSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return durable_;
  }

  /// Discards records of completed bulk deletes (log truncation after kEnd)
  /// and rewrites the backend with the kept suffix.
  void TruncateCompleted();

  size_t durable_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return durable_.size();
  }

  /// Bytes of clean durable frames in the backend (excludes a torn tail).
  size_t durable_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return clean_bytes_;
  }

  bool file_backed() const { return backend_->is_file(); }

 private:
  /// Leader flush: encodes and appends the current volatile batch, fsyncs,
  /// and publishes the result. Called with `lock` held and no flush in
  /// flight; drops the lock around the physical I/O.
  void FlushLocked(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t last_bd_id_ = 0;
  /// Decoded mirror of the backend's clean frames, in log order.
  std::vector<LogRecord> durable_;
  std::vector<LogRecord> volatile_;
  /// Monotone flush ordinals: a record appended as the N-th overall is
  /// durable once durable_seq_ >= N. Invariant (holding mu_, no flush in
  /// flight): appended_seq_ - durable_seq_ == volatile_.size(). Lost batches
  /// (injected crash, I/O error) rewind appended_seq_ — their records will
  /// never become durable.
  uint64_t appended_seq_ = 0;
  uint64_t durable_seq_ = 0;
  bool sync_in_flight_ = false;
  bool group_commit_ = true;
  /// Bytes of verified frames at the front of the backend; the backend may
  /// additionally hold a torn tail of garbage after an interrupted flush.
  size_t clean_bytes_ = 0;
  bool torn_tail_ = false;
  std::unique_ptr<WalBackend> backend_;
  Status open_status_;
  FaultInjector* injector_ = nullptr;
  obs::Counter* syncs_counter_ = nullptr;
  obs::Counter* fsyncs_counter_ = nullptr;
  obs::Histogram* sync_records_hist_ = nullptr;
  obs::Histogram* sync_ns_hist_ = nullptr;
  obs::Histogram* group_size_hist_ = nullptr;
  obs::Histogram* fsync_ns_hist_ = nullptr;
};

}  // namespace bulkdel

#endif  // BULKDEL_RECOVERY_LOG_MANAGER_H_

#include "recovery/log_manager.h"

#include <set>

namespace bulkdel {

void LogManager::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (injector_ != nullptr) {
    if (injector_->tripped()) return;  // a dead process syncs nothing
    FaultInjector::Hit hit;
    Status s = injector_->CheckWrite(
        fault_sites::kLogSync, &hit,
        std::to_string(volatile_.size()) + " pending record(s)");
    if (!s.ok()) return;  // kCrash fired: the whole batch is lost
    if (hit.fire) {
      // The crash hit mid-sync: a random prefix of the batch is fully
      // durable; the next record is half-written and lands flagged torn. The
      // rest of the tail (and everything appended later) never reaches disk.
      if (!volatile_.empty()) {
        size_t full = hit.rng % volatile_.size();
        for (size_t i = 0; i < full; ++i) {
          durable_.push_back(std::move(volatile_[i]));
        }
        durable_.push_back(std::move(volatile_[full]));
        durable_.back().torn = true;
      }
      volatile_.clear();
      return;
    }
  }
  for (LogRecord& r : volatile_) durable_.push_back(std::move(r));
  volatile_.clear();
}

size_t LogManager::DropTornTail() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < durable_.size(); ++i) {
    if (durable_[i].torn) {
      size_t dropped = durable_.size() - i;
      durable_.resize(i);
      return dropped;
    }
  }
  return 0;
}

void LogManager::TruncateCompleted() {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<uint64_t> completed;
  for (const LogRecord& r : durable_) {
    if (r.type == LogRecordType::kEnd) completed.insert(r.bd_id);
  }
  if (completed.empty()) return;
  std::vector<LogRecord> kept;
  for (LogRecord& r : durable_) {
    if (completed.count(r.bd_id) == 0) kept.push_back(std::move(r));
  }
  durable_ = std::move(kept);
}

}  // namespace bulkdel

#include "recovery/log_manager.h"

#include <set>

namespace bulkdel {

void LogManager::TruncateCompleted() {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<uint64_t> completed;
  for (const LogRecord& r : durable_) {
    if (r.type == LogRecordType::kEnd) completed.insert(r.bd_id);
  }
  if (completed.empty()) return;
  std::vector<LogRecord> kept;
  for (LogRecord& r : durable_) {
    if (completed.count(r.bd_id) == 0) kept.push_back(std::move(r));
  }
  durable_ = std::move(kept);
}

}  // namespace bulkdel

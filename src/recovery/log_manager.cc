#include "recovery/log_manager.h"

#include <set>

#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "util/clock.h"

namespace bulkdel {

void LogManager::SetMetrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    syncs_counter_ = nullptr;
    sync_records_hist_ = nullptr;
    sync_ns_hist_ = nullptr;
    return;
  }
  syncs_counter_ = metrics->counter(obs::metric_names::kWalSyncs);
  sync_records_hist_ = metrics->histogram(obs::metric_names::kWalSyncRecords);
  sync_ns_hist_ = metrics->histogram(obs::metric_names::kWalSyncNs);
}

void LogManager::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  const bool timed = sync_ns_hist_ != nullptr && recorder.enabled();
  const int64_t t0 = timed ? MonotonicNanos() : 0;
  const int64_t batch = static_cast<int64_t>(volatile_.size());
  if (syncs_counter_ != nullptr) {
    syncs_counter_->Add(1);
    sync_records_hist_->Observe(batch);
  }
  // Emitted whether or not an injected fault interrupts the sync below.
  struct SyncNote {
    bool timed;
    int64_t t0;
    int64_t batch;
    obs::Histogram* ns_hist;
    obs::TraceRecorder* recorder;
    ~SyncNote() {
      if (!timed) return;
      int64_t t1 = MonotonicNanos();
      ns_hist->Observe(t1 - t0);
      recorder->RecordComplete(obs::TraceCategory::kWal, "wal.sync", t0, t1,
                               "records", batch);
    }
  } note{timed, t0, batch, sync_ns_hist_, &recorder};
  if (injector_ != nullptr) {
    if (injector_->tripped()) return;  // a dead process syncs nothing
    FaultInjector::Hit hit;
    Status s = injector_->CheckWrite(
        fault_sites::kLogSync, &hit,
        std::to_string(volatile_.size()) + " pending record(s)");
    if (!s.ok()) return;  // kCrash fired: the whole batch is lost
    if (hit.fire) {
      // The crash hit mid-sync: a random prefix of the batch is fully
      // durable; the next record is half-written and lands flagged torn. The
      // rest of the tail (and everything appended later) never reaches disk.
      if (!volatile_.empty()) {
        size_t full = hit.rng % volatile_.size();
        for (size_t i = 0; i < full; ++i) {
          durable_.push_back(std::move(volatile_[i]));
        }
        durable_.push_back(std::move(volatile_[full]));
        durable_.back().torn = true;
      }
      volatile_.clear();
      return;
    }
  }
  for (LogRecord& r : volatile_) durable_.push_back(std::move(r));
  volatile_.clear();
}

size_t LogManager::DropTornTail() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < durable_.size(); ++i) {
    if (durable_[i].torn) {
      size_t dropped = durable_.size() - i;
      durable_.resize(i);
      return dropped;
    }
  }
  return 0;
}

void LogManager::TruncateCompleted() {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<uint64_t> completed;
  for (const LogRecord& r : durable_) {
    if (r.type == LogRecordType::kEnd) completed.insert(r.bd_id);
  }
  if (completed.empty()) return;
  std::vector<LogRecord> kept;
  for (LogRecord& r : durable_) {
    if (completed.count(r.bd_id) == 0) kept.push_back(std::move(r));
  }
  durable_ = std::move(kept);
}

}  // namespace bulkdel

#include "recovery/log_manager.h"

#include <set>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "recovery/wal_codec.h"
#include "util/clock.h"

namespace bulkdel {

LogManager::LogManager() : backend_(std::make_unique<SimWalBackend>()) {}

LogManager::LogManager(const std::string& path, bool truncate) {
  auto file = std::make_unique<FileWalBackend>(path, truncate);
  if (!truncate) {
    std::string image;
    open_status_ = file->ReadAll(&image);
    if (open_status_.ok()) {
      WalScanResult scan = DecodeLogRecords(image);
      durable_ = std::move(scan.records);
      clean_bytes_ = scan.clean_bytes;
      torn_tail_ = scan.torn_tail;
      durable_seq_ = durable_.size();
      appended_seq_ = durable_seq_;
      for (const LogRecord& r : durable_) {
        if (r.bd_id > last_bd_id_) last_bd_id_ = r.bd_id;
      }
    }
  }
  backend_ = std::move(file);
}

LogManager::~LogManager() = default;

void LogManager::SetMetrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    syncs_counter_ = nullptr;
    fsyncs_counter_ = nullptr;
    sync_records_hist_ = nullptr;
    sync_ns_hist_ = nullptr;
    group_size_hist_ = nullptr;
    fsync_ns_hist_ = nullptr;
    return;
  }
  syncs_counter_ = metrics->counter(obs::metric_names::kWalSyncs);
  fsyncs_counter_ = metrics->counter(obs::metric_names::kWalFsyncs);
  sync_records_hist_ = metrics->histogram(obs::metric_names::kWalSyncRecords);
  sync_ns_hist_ = metrics->histogram(obs::metric_names::kWalSyncNs);
  group_size_hist_ = metrics->histogram(obs::metric_names::kWalGroupSize);
  fsync_ns_hist_ = metrics->histogram(obs::metric_names::kWalFsyncNs);
}

void LogManager::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  const bool timed = sync_ns_hist_ != nullptr && recorder.enabled();
  const int64_t t0 = timed ? MonotonicNanos() : 0;
  const int64_t batch = static_cast<int64_t>(volatile_.size());
  if (syncs_counter_ != nullptr) {
    syncs_counter_->Add(1);
    sync_records_hist_->Observe(batch);
  }
  // Emitted whether or not an injected fault interrupts the sync below.
  struct SyncNote {
    bool timed;
    int64_t t0;
    int64_t batch;
    obs::Histogram* ns_hist;
    obs::TraceRecorder* recorder;
    ~SyncNote() {
      if (!timed) return;
      int64_t t1 = MonotonicNanos();
      ns_hist->Observe(t1 - t0);
      recorder->RecordComplete(obs::TraceCategory::kWal, "wal.sync", t0, t1,
                               "records", batch);
    }
  } note{timed, t0, batch, sync_ns_hist_, &recorder};

  const uint64_t target = appended_seq_;
  if (!group_commit_) {
    // Ablation baseline: every Sync pays its own flush + fsync, waiting out
    // any flush already in flight first.
    while (sync_in_flight_) {
      if (injector_ != nullptr && injector_->tripped()) return;
      cv_.wait(lock);
    }
    if (injector_ != nullptr && injector_->tripped()) return;
    FlushLocked(lock);
    return;
  }
  while (durable_seq_ < target) {
    if (injector_ != nullptr && injector_->tripped()) return;
    if (target > appended_seq_) return;  // our batch was lost mid-flush
    if (sync_in_flight_) {
      // A leader is flushing; our records may be riding along. Wait and
      // re-check — if the leader's batch did not cover us, we become the
      // next leader.
      cv_.wait(lock);
      continue;
    }
    FlushLocked(lock);
  }
}

void LogManager::FlushLocked(std::unique_lock<std::mutex>& lock) {
  sync_in_flight_ = true;
  std::vector<LogRecord> moving = std::move(volatile_);
  volatile_.clear();

  bool torn_fire = false;
  uint64_t rng = 0;
  if (injector_ != nullptr) {
    FaultInjector::Hit hit;
    Status s = injector_->CheckWrite(
        fault_sites::kLogSync, &hit,
        std::to_string(moving.size()) + " pending record(s)");
    if (!s.ok()) {
      // kCrash fired: the whole moving batch evaporates before any byte
      // reaches the medium. Rewind so the append/durable invariant holds
      // for whatever a (dead) process appends afterwards.
      appended_seq_ -= moving.size();
      sync_in_flight_ = false;
      cv_.notify_all();
      return;
    }
    if (hit.fire) {
      torn_fire = true;
      rng = hit.rng;
    }
  }

  // The crash hit mid-flush: a random prefix of the batch's frames is fully
  // durable, the next frame is half-written — a strict byte prefix of a
  // frame can never verify (its length header overruns the log end or its
  // CRC fails), so the restart scan stops exactly there.
  size_t full = moving.size();
  std::string bytes;
  size_t clean_add = 0;
  if (torn_fire && !moving.empty()) {
    full = static_cast<size_t>(rng % moving.size());
  }
  for (size_t i = 0; i < full; ++i) {
    EncodeLogRecord(moving[i], &bytes);
  }
  clean_add = bytes.size();
  if (torn_fire && full < moving.size()) {
    std::string frame;
    EncodeLogRecord(moving[full], &frame);
    size_t partial = 1 + static_cast<size_t>(rng >> 32) % (frame.size() - 1);
    bytes.append(frame, 0, partial);
  }

  // Physical I/O outside the lock: appenders and future group-commit
  // followers keep making progress while the leader fsyncs.
  const bool is_file = backend_->is_file();
  lock.unlock();
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  const bool timed = is_file || recorder.enabled();
  const int64_t t0 = timed ? MonotonicNanos() : 0;
  Status io = backend_->Append(bytes);
  if (io.ok()) io = backend_->SyncBytes();
  const int64_t t1 = timed ? MonotonicNanos() : 0;
  lock.lock();

  if (fsyncs_counter_ != nullptr) {
    fsyncs_counter_->Add(1);
    group_size_hist_->Observe(static_cast<int64_t>(moving.size()));
    if (is_file) fsync_ns_hist_->Observe(t1 - t0);
  }
  if (recorder.enabled()) {
    recorder.RecordComplete(obs::TraceCategory::kWal, "wal.fsync", t0, t1,
                            "records", static_cast<int64_t>(moving.size()));
  }

  if (!io.ok()) {
    // The medium rejected the batch (disk full, ...): nothing of it is
    // durable. Treat like a lost batch so waiters do not hang.
    appended_seq_ -= moving.size();
    open_status_ = io;
    sync_in_flight_ = false;
    cv_.notify_all();
    return;
  }
  for (size_t i = 0; i < full; ++i) {
    durable_.push_back(std::move(moving[i]));
  }
  durable_seq_ += full;
  clean_bytes_ += clean_add;
  if (torn_fire) {
    torn_tail_ = full < moving.size();
    appended_seq_ -= moving.size() - full;  // the tail is gone for good
  }
  sync_in_flight_ = false;
  cv_.notify_all();
}

void LogManager::DropVolatileTail() {
  std::unique_lock<std::mutex> lock(mu_);
  while (sync_in_flight_) cv_.wait(lock);
  appended_seq_ -= volatile_.size();
  volatile_.clear();
}

size_t LogManager::DropTornTail() {
  std::unique_lock<std::mutex> lock(mu_);
  while (sync_in_flight_) cv_.wait(lock);
  if (!torn_tail_) return 0;
  size_t garbage =
      backend_->size() > clean_bytes_ ? backend_->size() - clean_bytes_ : 0;
  (void)backend_->Truncate(clean_bytes_);
  torn_tail_ = false;
  return garbage;
}

Status LogManager::ScanDurable(
    const std::function<Status(const LogRecord&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const LogRecord& r : durable_) {
    BULKDEL_RETURN_IF_ERROR(fn(r));
  }
  return Status::OK();
}

void LogManager::TruncateCompleted() {
  std::unique_lock<std::mutex> lock(mu_);
  while (sync_in_flight_) cv_.wait(lock);
  std::set<uint64_t> completed;
  for (const LogRecord& r : durable_) {
    if (r.type == LogRecordType::kEnd) completed.insert(r.bd_id);
  }
  if (completed.empty()) return;
  std::vector<LogRecord> kept;
  std::string image;
  for (LogRecord& r : durable_) {
    if (completed.count(r.bd_id) != 0) continue;
    EncodeLogRecord(r, &image);
    kept.push_back(std::move(r));
  }
  (void)backend_->Rewrite(image);
  clean_bytes_ = image.size();
  torn_tail_ = false;
  durable_ = std::move(kept);
}

}  // namespace bulkdel

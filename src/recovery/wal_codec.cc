#include "recovery/wal_codec.h"

#include "util/coding.h"
#include "util/crc32.h"

namespace bulkdel {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  StoreU32(buf, v);
  out->append(buf, sizeof(buf));
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  StoreU64(buf, v);
  out->append(buf, sizeof(buf));
}

void AppendI64(std::string* out, int64_t v) {
  char buf[8];
  StoreI64(buf, v);
  out->append(buf, sizeof(buf));
}

void AppendString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked cursor over a payload slice. Every Read* fails (returns
/// false) instead of running past the end, so a frame whose CRC somehow
/// verified but whose body is malformed still cannot crash the scan.
struct Cursor {
  const char* p;
  size_t n;

  bool ReadU8(uint8_t* v) {
    if (n < 1) return false;
    *v = static_cast<uint8_t>(*p);
    ++p;
    --n;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (n < 4) return false;
    *v = LoadU32(p);
    p += 4;
    n -= 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (n < 8) return false;
    *v = LoadU64(p);
    p += 8;
    n -= 8;
    return true;
  }
  bool ReadI64(int64_t* v) {
    if (n < 8) return false;
    *v = LoadI64(p);
    p += 8;
    n -= 8;
    return true;
  }
  bool ReadString(std::string* s) {
    uint32_t len;
    if (!ReadU32(&len) || n < len) return false;
    s->assign(p, len);
    p += len;
    n -= len;
    return true;
  }
};

void EncodePayload(const LogRecord& r, std::string* out) {
  out->push_back(static_cast<char>(r.type));
  AppendU64(out, r.bd_id);
  AppendString(out, r.label);
  AppendString(out, r.aux);
  AppendU32(out, static_cast<uint32_t>(r.pages.size()));
  for (PageId p : r.pages) AppendU32(out, p);
  AppendU64(out, r.count);
  AppendI64(out, r.key);
  AppendU64(out, r.rid.Pack());
  AppendU32(out, static_cast<uint32_t>(r.values.size()));
  for (int64_t v : r.values) AppendI64(out, v);
}

bool DecodePayload(const char* data, size_t size, LogRecord* r) {
  Cursor c{data, size};
  uint8_t type;
  if (!c.ReadU8(&type) || type >= kNumLogRecordTypes) return false;
  r->type = static_cast<LogRecordType>(type);
  if (!c.ReadU64(&r->bd_id)) return false;
  if (!c.ReadString(&r->label)) return false;
  if (!c.ReadString(&r->aux)) return false;
  uint32_t n_pages;
  if (!c.ReadU32(&n_pages) || c.n < static_cast<size_t>(n_pages) * 4) {
    return false;
  }
  r->pages.resize(n_pages);
  for (uint32_t i = 0; i < n_pages; ++i) {
    if (!c.ReadU32(&r->pages[i])) return false;
  }
  if (!c.ReadU64(&r->count)) return false;
  if (!c.ReadI64(&r->key)) return false;
  uint64_t packed_rid;
  if (!c.ReadU64(&packed_rid)) return false;
  r->rid = Rid::Unpack(packed_rid);
  uint32_t n_values;
  if (!c.ReadU32(&n_values) || c.n < static_cast<size_t>(n_values) * 8) {
    return false;
  }
  r->values.resize(n_values);
  for (uint32_t i = 0; i < n_values; ++i) {
    if (!c.ReadI64(&r->values[i])) return false;
  }
  return c.n == 0;  // trailing garbage inside a verified frame is corruption
}

}  // namespace

void EncodeLogRecord(const LogRecord& record, std::string* out) {
  std::string payload;
  EncodePayload(record, &payload);
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  AppendU32(out, Crc32(payload.data(), payload.size()));
  out->append(payload);
}

size_t EncodedLogRecordSize(const LogRecord& record) {
  // Header + fixed fields + length-prefixed variable fields; mirrors
  // EncodePayload exactly.
  return kWalFrameHeaderBytes + 1 + 8 + (4 + record.label.size()) +
         (4 + record.aux.size()) + (4 + record.pages.size() * 4) + 8 + 8 + 8 +
         (4 + record.values.size() * 8);
}

bool DecodeOneLogRecord(const std::string& image, size_t* offset,
                        LogRecord* record) {
  size_t pos = *offset;
  if (image.size() - pos < kWalFrameHeaderBytes) return false;
  uint32_t payload_len = LoadU32(image.data() + pos);
  uint32_t expected_crc = LoadU32(image.data() + pos + 4);
  if (image.size() - pos - kWalFrameHeaderBytes < payload_len) return false;
  const char* payload = image.data() + pos + kWalFrameHeaderBytes;
  if (Crc32(payload, payload_len) != expected_crc) return false;
  if (!DecodePayload(payload, payload_len, record)) return false;
  *offset = pos + kWalFrameHeaderBytes + payload_len;
  return true;
}

WalScanResult DecodeLogRecords(const std::string& image) {
  WalScanResult result;
  size_t offset = 0;
  LogRecord record;
  while (offset < image.size()) {
    if (!DecodeOneLogRecord(image, &offset, &record)) break;
    result.records.push_back(std::move(record));
    record = LogRecord();
  }
  result.clean_bytes = offset;
  result.torn_tail = offset < image.size();
  return result;
}

}  // namespace bulkdel

#ifndef BULKDEL_RECOVERY_WAL_CODEC_H_
#define BULKDEL_RECOVERY_WAL_CODEC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "recovery/log_record.h"

namespace bulkdel {

/// Binary WAL frame codec. Each record is serialized as one self-delimiting,
/// checksummed frame:
///
///   [u32 payload_len][u32 crc32(payload)][payload_len bytes of payload]
///
/// The payload is a fixed-order field dump of LogRecord (little-endian,
/// length-prefixed strings/vectors). Torn tails need no flag bit: a crash
/// mid-append leaves a trailing frame whose length header runs past the end
/// of the log or whose CRC does not verify, and the scan stops there. That
/// is the real-WAL mechanism the old `LogRecord::torn` bool only simulated.

/// Bytes of frame overhead preceding every payload.
inline constexpr size_t kWalFrameHeaderBytes = 8;

/// Appends the frame for `record` to `*out`.
void EncodeLogRecord(const LogRecord& record, std::string* out);

/// Frame size (header + payload) `record` would occupy.
size_t EncodedLogRecordSize(const LogRecord& record);

/// Result of scanning a byte image for frames.
struct WalScanResult {
  std::vector<LogRecord> records;
  /// Bytes of clean, fully-verified frames at the front of the image. The
  /// scan treats the log as ending here; anything after `clean_bytes` is a
  /// torn or corrupt tail to be truncated away.
  size_t clean_bytes = 0;
  /// True if trailing bytes failed the length or CRC check (torn tail).
  bool torn_tail = false;
};

/// Decodes frames from the front of `image` until the bytes run out or a
/// frame fails its length/CRC check. Never fails hard: a corrupt tail is the
/// expected crash artifact, reported via `torn_tail`.
WalScanResult DecodeLogRecords(const std::string& image);

/// Decodes the single frame starting at `image[offset]`. Returns true and
/// advances `*offset` past the frame on success; false on a torn/corrupt
/// frame (offset unchanged).
bool DecodeOneLogRecord(const std::string& image, size_t* offset,
                        LogRecord* record);

}  // namespace bulkdel

#endif  // BULKDEL_RECOVERY_WAL_CODEC_H_

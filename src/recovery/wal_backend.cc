#include "recovery/wal_backend.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bulkdel {

FileWalBackend::FileWalBackend(const std::string& path, bool truncate)
    : path_(path) {
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ >= 0) {
    off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end > 0) size_ = static_cast<size_t>(end);
  }
}

FileWalBackend::~FileWalBackend() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileWalBackend::Append(const std::string& data) {
  if (fd_ < 0) return Status::IOError("wal file " + path_ + " is not open");
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::pwrite(fd_, data.data() + written, data.size() - written,
                         static_cast<off_t>(size_ + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("wal append: " + std::string(std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  size_ += data.size();
  return Status::OK();
}

Status FileWalBackend::SyncBytes() {
  if (fd_ < 0) return Status::IOError("wal file " + path_ + " is not open");
  if (::fsync(fd_) != 0) {
    return Status::IOError("wal fsync: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status FileWalBackend::Truncate(size_t bytes) {
  if (fd_ < 0) return Status::IOError("wal file " + path_ + " is not open");
  if (bytes >= size_) return Status::OK();
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    return Status::IOError("wal truncate: " +
                           std::string(std::strerror(errno)));
  }
  size_ = bytes;
  return SyncBytes();
}

Status FileWalBackend::Rewrite(const std::string& image) {
  if (fd_ < 0) return Status::IOError("wal file " + path_ + " is not open");
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError("wal rewrite: " +
                           std::string(std::strerror(errno)));
  }
  size_ = 0;
  BULKDEL_RETURN_IF_ERROR(Append(image));
  return SyncBytes();
}

Status FileWalBackend::ReadAll(std::string* out) const {
  if (fd_ < 0) return Status::IOError("wal file " + path_ + " is not open");
  out->clear();
  out->resize(size_);
  size_t done = 0;
  while (done < size_) {
    ssize_t n = ::pread(fd_, out->data() + done, size_ - done,
                        static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("wal read: " + std::string(std::strerror(errno)));
    }
    if (n == 0) break;  // shrunk underneath us; keep the zero fill
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace bulkdel

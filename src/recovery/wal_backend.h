#ifndef BULKDEL_RECOVERY_WAL_BACKEND_H_
#define BULKDEL_RECOVERY_WAL_BACKEND_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace bulkdel {

/// The WAL's durable byte sink — the pluggable half of the durability seam.
/// LogManager owns record semantics (framing, group commit, truncation);
/// a WalBackend only moves bytes:
///
///  * SimWalBackend keeps the byte image in memory. The image IS the
///    simulated durable medium: whatever LogManager has pushed through
///    Append() survives a simulated crash, exactly like the file backend
///    after the bytes hit the kernel. Deterministic, host-independent.
///  * FileWalBackend appends to a real file and makes SyncBytes() an
///    fsync(2), so durability claims are backed by the same syscall a
///    production WAL uses.
///
/// Thread safety: none. LogManager serializes all backend calls (appends
/// under its mutex; at most one flush in flight at a time).
class WalBackend {
 public:
  virtual ~WalBackend() = default;

  /// Appends `data` at the end of the log.
  virtual Status Append(const std::string& data) = 0;

  /// Forces every appended byte to the durable medium. For the file backend
  /// this is the fsync the group-commit leader pays on behalf of the batch.
  virtual Status SyncBytes() = 0;

  /// Truncates the log to its first `bytes` bytes (torn-tail amputation on
  /// restart).
  virtual Status Truncate(size_t bytes) = 0;

  /// Replaces the whole log with `image` and makes it durable (log
  /// truncation after completed bulk deletes rewrites the kept suffix).
  virtual Status Rewrite(const std::string& image) = 0;

  virtual size_t size() const = 0;
  virtual bool is_file() const = 0;
};

/// In-memory byte image (simulation backend).
class SimWalBackend : public WalBackend {
 public:
  Status Append(const std::string& data) override {
    image_.append(data);
    return Status::OK();
  }
  Status SyncBytes() override { return Status::OK(); }
  Status Truncate(size_t bytes) override {
    if (bytes < image_.size()) image_.resize(bytes);
    return Status::OK();
  }
  Status Rewrite(const std::string& image) override {
    image_ = image;
    return Status::OK();
  }
  size_t size() const override { return image_.size(); }
  bool is_file() const override { return false; }

  const std::string& image() const { return image_; }

 private:
  std::string image_;
};

/// Append-only file with real fsync durability.
class FileWalBackend : public WalBackend {
 public:
  /// Opens (creating if needed) `path`; `truncate` discards existing
  /// contents. A failed open is reported by the first Append/SyncBytes.
  FileWalBackend(const std::string& path, bool truncate);
  ~FileWalBackend() override;

  FileWalBackend(const FileWalBackend&) = delete;
  FileWalBackend& operator=(const FileWalBackend&) = delete;

  Status Append(const std::string& data) override;
  Status SyncBytes() override;
  Status Truncate(size_t bytes) override;
  Status Rewrite(const std::string& image) override;
  size_t size() const override { return size_; }
  bool is_file() const override { return true; }

  /// Reads the whole current file contents (restart scan).
  Status ReadAll(std::string* out) const;

 private:
  std::string path_;
  int fd_ = -1;
  size_t size_ = 0;
};

}  // namespace bulkdel

#endif  // BULKDEL_RECOVERY_WAL_BACKEND_H_

#ifndef BULKDEL_RECOVERY_RECOVERY_MANAGER_H_
#define BULKDEL_RECOVERY_RECOVERY_MANAGER_H_

#include "util/status.h"

namespace bulkdel {

class Database;

/// Restart recovery (paper §3.2): analyzes the durable log and, if a bulk
/// delete began but never logged its end, rolls it *forward* to completion
/// from the last checkpoint — the interrupted statement is finished, not
/// rolled back, because the delete lists were materialized to stable storage
/// and every destructive pass is idempotent. Afterwards the counts of the
/// affected structures are re-derived and the log is truncated.
Status RecoverDatabase(Database* db);

}  // namespace bulkdel

#endif  // BULKDEL_RECOVERY_RECOVERY_MANAGER_H_

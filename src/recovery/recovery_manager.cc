#include "recovery/recovery_manager.h"

#include <map>
#include <set>

#include "core/database.h"
#include "core/executors.h"

namespace bulkdel {

namespace {
/// Log analysis: reassembles the state of the (at most one) bulk delete that
/// began but never logged kEnd. Cursor-based: visits the durable log in
/// place via LogManager::ScanDurable instead of copying it (the copy was
/// O(log) per crash-sweep case).
Result<std::map<uint64_t, RecoveredBulkDelete>> Analyze(const LogManager& log) {
  std::map<uint64_t, RecoveredBulkDelete> open;
  std::set<uint64_t> ended;
  Status scan = log.ScanDurable([&](const LogRecord& r) {
    if (r.type == LogRecordType::kEnd) {
      ended.insert(r.bd_id);
      open.erase(r.bd_id);
      return Status::OK();
    }
    if (ended.count(r.bd_id) > 0) return Status::OK();
    RecoveredBulkDelete& state = open[r.bd_id];
    state.bd_id = r.bd_id;
    switch (r.type) {
      case LogRecordType::kBegin:
        state.table = r.label;
        state.key_column = r.aux;
        // A non-empty values field marks a range-predicate statement: the
        // bounds ride in the Begin record instead of an input-keys list.
        if (r.values.size() >= 2) {
          state.is_range = true;
          state.range_lo = r.values[0];
          state.range_hi = r.values[1];
        }
        break;
      case LogRecordType::kListMaterialized: {
        RecoveredBulkDelete::List list;
        list.pages = r.pages;
        list.count = r.count;
        state.lists[r.label] = std::move(list);
        break;
      }
      case LogRecordType::kEntryDeleted:
        // Only the key-index phase logs entry WAL records; entries removed
        // before that phase's checkpoint are superseded by the "rids" list.
        if (state.phases_done.count(r.label) == 0) {
          state.wal_index_entries.emplace_back(r.key, r.rid);
        }
        break;
      case LogRecordType::kRowDeleted:
        if (state.phases_done.count("table") == 0 &&
            state.phases_done.count("table-no-index") == 0) {
          state.wal_rows.emplace_back(r.rid, r.values);
        }
        break;
      case LogRecordType::kPhaseDone:
        state.phases_done.insert(r.label);
        break;
      case LogRecordType::kCommit:
        state.committed = true;
        break;
      case LogRecordType::kUpdaterRow:
        // §3.1 concurrent-updater DML, logged before the mutation; count
        // encodes the op kind (1 = insert, 0 = delete). Replayed (in
        // statement order, idempotently) by the resumed run's finalize.
        state.updater_ops.push_back(
            {r.count == 1, r.rid, r.values});
        break;
      case LogRecordType::kSideFileSpill:
        // Scratch pages backing a spilled side-file chunk; the ops they
        // held are re-derived from kUpdaterRow records, so recovery only
        // needs to reclaim the pages (after the resumed run's End record).
        state.sidefile_pages.insert(state.sidefile_pages.end(),
                                    r.pages.begin(), r.pages.end());
        break;
      case LogRecordType::kRangeLeafRun:
        // One dropped leaf of the range leaf-run pass: its (key, packed-rid)
        // pairs stand in for the kEntryDeleted records the per-entry path
        // would have written. Superseded by the key phase's checkpoint
        // (whose "rids" list covers every located RID).
        if (state.phases_done.count(r.label) == 0) {
          for (size_t i = 0; i + 1 < r.values.size(); i += 2) {
            state.wal_index_entries.emplace_back(
                r.values[i],
                Rid::Unpack(static_cast<uint64_t>(r.values[i + 1])));
          }
        }
        // The leaf's page free was deferred past the End record (which was
        // never reached), so the resumed finalize must reclaim it —
        // collected unconditionally, like extent pages.
        state.leaf_pages.insert(state.leaf_pages.end(), r.pages.begin(),
                                r.pages.end());
        break;
      case LogRecordType::kExtentDrop:
        // Heap pages detached (or about to be detached) by the extent-drop
        // pass. Collected unconditionally: the pages are freed only by the
        // resumed run's finalize, and re-detaching is idempotent.
        state.extent_pages.insert(state.extent_pages.end(), r.pages.begin(),
                                  r.pages.end());
        break;
      case LogRecordType::kSideFileAppend:
      case LogRecordType::kSideFileDrain:
        break;  // diagnostics only
      case LogRecordType::kEnd:
        break;
    }
    return Status::OK();
  });
  BULKDEL_RETURN_IF_ERROR(scan);
  return open;
}
}  // namespace

Status RecoverDatabase(Database* db) {
  // A crash during a log flush can leave a half-written trailing frame whose
  // CRC does not verify; the restart scan stops there and truncates, so the
  // log ends at the last fully durable record.
  db->log().DropTornTail();
  BULKDEL_ASSIGN_OR_RETURN(auto open, Analyze(db->log()));
  for (auto& [bd_id, state] : open) {
    if (state.table.empty()) continue;  // Begin record itself not durable
    if (state.lists.count("input-keys") == 0) {
      // The input list never became durable, so (by the WAL rule) no page
      // write happened either: the statement left no trace and is dropped.
      LogRecord end;
      end.type = LogRecordType::kEnd;
      end.bd_id = bd_id;
      db->log().Append(std::move(end));
      db->log().Sync();
      continue;
    }
    // Roll the statement forward to completion (paper §3.2: a bulk deletion
    // in progress at the crash is finished, not rolled back).
    BULKDEL_ASSIGN_OR_RETURN(BulkDeleteReport report,
                             ResumeVertical(db, state));
    (void)report;
    // The cached counts of the touched structures may predate the crash;
    // re-derive them from the data.
    TableDef* table = db->GetTable(state.table);
    if (table != nullptr) {
      BULKDEL_RETURN_IF_ERROR(table->table->RecountFromScan());
      for (auto& index : table->indices) {
        BULKDEL_RETURN_IF_ERROR(index->tree->RecountFromScan());
        // Direct propagation: a crash between an updater's marked insert
        // and BringOnline's cleanup pass leaves stale kEntryUndeletable
        // markers; with the crash the off-line window is over, so sweep
        // them here (idempotent leaf pass).
        BULKDEL_RETURN_IF_ERROR(index->tree->ClearUndeletableFlags());
      }
    }
  }
  db->log().TruncateCompleted();
  return db->Checkpoint();
}

}  // namespace bulkdel

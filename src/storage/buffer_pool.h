#ifndef BULKDEL_STORAGE_BUFFER_POOL_H_
#define BULKDEL_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace bulkdel {

namespace obs {
class Histogram;
class MetricsRegistry;
}  // namespace obs

class BufferPool;

/// RAII pin on a buffered page. While a guard lives, the frame cannot be
/// evicted. Destroying (or Release()-ing) the guard unpins the page and, if
/// MarkDirty() was called, schedules a write-back on eviction/flush.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame, PageId page_id, char* data)
      : pool_(pool), frame_(frame), page_id_(page_id), data_(data) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Marks the page as modified; it will be written back before eviction.
  void MarkDirty();

  /// Unpins immediately (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;  // slot index within the page's shard
  PageId page_id_ = kInvalidPageId;
  char* data_ = nullptr;
};

struct BufferPoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t dirty_writebacks = 0;
  /// Pages read ahead of demand by PrefetchChain/PrefetchPages. A prefetch
  /// read counts here (not under misses); the demand fetch that later finds
  /// the page resident counts under both hits and prefetch_hits.
  int64_t prefetched = 0;
  int64_t prefetch_hits = 0;
  /// Extra dirty neighbors written as part of a coalesced eviction run
  /// (beyond the victim itself). Zero unless coalesce_writebacks is on.
  int64_t coalesced_writebacks = 0;

  BufferPoolStats& operator+=(const BufferPoolStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    dirty_writebacks += o.dirty_writebacks;
    prefetched += o.prefetched;
    prefetch_hits += o.prefetch_hits;
    coalesced_writebacks += o.coalesced_writebacks;
    return *this;
  }
  BufferPoolStats operator-(const BufferPoolStats& o) const {
    BufferPoolStats d;
    d.hits = hits - o.hits;
    d.misses = misses - o.misses;
    d.evictions = evictions - o.evictions;
    d.dirty_writebacks = dirty_writebacks - o.dirty_writebacks;
    d.prefetched = prefetched - o.prefetched;
    d.prefetch_hits = prefetch_hits - o.prefetch_hits;
    d.coalesced_writebacks = coalesced_writebacks - o.coalesced_writebacks;
    return d;
  }
};

/// Construction knobs. `shards` is a request: the pool clamps it so every
/// shard keeps a workable number of frames (tiny pools collapse to fewer
/// shards rather than starve).
struct BufferPoolOptions {
  size_t budget_bytes = 0;
  size_t shards = 1;
  /// Leaf read-ahead window: how many chain pages PrefetchChain brings in
  /// per announcement. 0 disables read-ahead.
  size_t readahead_pages = 0;
  /// Batch dirty eviction victims with adjacent-page-id dirty neighbors into
  /// one sequential WriteRun. This genuinely changes the simulated write
  /// classification (random evictions become sequential runs), so it is OFF
  /// by default and excluded from the I/O-identity guarantee.
  bool coalesce_writebacks = false;
};

/// Fixed-budget LRU buffer pool over a DiskManager, lock-striped into
/// `shards` sub-pools keyed by PageId.
///
/// The byte budget models the experiment's "available main memory": the
/// paper varies it between 2 and 10 MB (Fig. 9). The pool never holds more
/// than budget/kPageSize frames in total; every miss beyond a shard's share
/// evicts that shard's least-recently-used unpinned frame, writing it back
/// if dirty.
///
/// Sharding: pages map to shards by extent ((page_id / 16) % shards), so a
/// contiguous leaf chain stays mostly within one shard (which is what makes
/// eviction-run coalescing find neighbors) while distinct indices — living
/// in distinct extent ranges — land on distinct shards and stop contending
/// on one mutex under parallel phases. LRU, page table, free list and stats
/// are all per-shard; FlushAll/Reset/DiscardAllForCrashTest lock every shard
/// in index order and preserve the global page-id-ordered checkpoint sweep.
///
/// Thread safety: all operations are internally synchronized per shard.
/// Concurrent mutation of the *contents* of distinct pinned pages is safe;
/// callers serialize access to the same page with higher-level latches.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t budget_bytes)
      : BufferPool(disk, BufferPoolOptions{budget_bytes, 1, 0, false}) {}
  BufferPool(DiskManager* disk, BufferPoolOptions options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Allocates a fresh zeroed page on disk and pins it (dirty).
  Result<PageGuard> NewPage();

  /// Pins `page_id`, reading it from disk on a miss.
  Result<PageGuard> FetchPage(PageId page_id);

  /// Drops `page_id` from the pool (must be unpinned) and frees it on disk.
  Status DeletePage(PageId page_id);

  /// Writes back every dirty frame across all shards in one page-id-ordered
  /// sweep (adjacent ids batched into sequential WriteRuns — same per-page
  /// charges, fewer disk-mutex round trips). Frames stay resident.
  Status FlushAll();

  /// Writes back and drops every frame (must all be unpinned). Used to
  /// simulate a clean shutdown or to reset cache state between benchmark
  /// phases. All shard latches are held from the flush through the frame
  /// drop, so a page dirtied by a concurrent thread either misses the sweep
  /// entirely (and survives resident) or is flushed before being dropped —
  /// never dropped with an unwritten update.
  Status Reset();

  /// Drops every frame *without* writing dirty ones back, and zeroes the
  /// stats (a restarted process starts with cold counters). This is the
  /// crash switch for the recovery tests: volatile state vanishes, the
  /// DiskManager keeps only what was flushed.
  void DiscardAllForCrashTest();

  /// Reads ahead along a page chain: starting at `start`, brings up to
  /// `max_pages` chain pages into the pool unpinned, following
  /// `next_of(page bytes)` to find each successor (the B-tree passes hand in
  /// the right-sibling accessor). Simulated I/O stays bit-identical to a run
  /// without read-ahead by construction, via two rules. First, the physical
  /// prefetch read is uncharged; the simulated read is charged when a demand
  /// fetch consumes the frame (under that caller's IoAttribution), so the
  /// charge sequence IS the demand-access sequence — pages prefetched but
  /// never demanded cost nothing, matching the run that never read them.
  /// Second, prefetch never displaces demand-resident pages: it uses only
  /// free frames and frames holding not-yet-consumed prefetched pages, and
  /// the demand path reclaims unconsumed prefetch frames before evicting a
  /// real victim. The set of demand-resident pages, the eviction sequence
  /// and every write-back are therefore identical to a run with read-ahead
  /// off, even under eviction pressure (where prefetch degrades to a no-op).
  /// Returns the number of chain pages covered (resident or fetched).
  size_t PrefetchChain(PageId start, size_t max_pages,
                       const std::function<PageId(const char*)>& next_of);

  /// Reads ahead an explicitly announced page list (ascending ids; the heap
  /// table's sorted-RID pass knows its upcoming pages exactly). Contiguous
  /// stretches are fetched with one DiskManager::ReadRunPrefetch. Same
  /// charge-on-consumption and never-write rules as PrefetchChain; returns
  /// pages covered.
  size_t PrefetchPages(const PageId* ids, size_t n);

  /// Invoked immediately before any dirty frame is written to disk (eviction
  /// or flush). The recovery layer uses this to enforce the WAL rule: log
  /// records become durable before the page changes they describe. The hook
  /// runs with at least the affected shard's latch held (all of them during
  /// a flush sweep) and must not call back into the pool.
  void SetPreWritebackHook(std::function<void()> hook);

  /// Resolves the pool's metric instruments (bp.fetch_ns, bp.latch_wait_ns)
  /// from `metrics` (nullptr = none; the registry must outlive the pool).
  /// The clock-reading observations only happen while the global
  /// TraceRecorder is enabled, so the default fetch path stays clock-free.
  void SetMetrics(obs::MetricsRegistry* metrics);

  /// Installs a fault injector on the write-back paths (nullptr = none; the
  /// injector must outlive the pool): `pool.evict` fires before a dirty
  /// eviction victim is written back (now inside the victim's shard),
  /// `pool.flush` before a cross-shard FlushAll sweep.
  void SetFaultInjector(FaultInjector* injector);

  size_t capacity_frames() const { return total_frames_; }
  /// The configured byte budget (not rounded down to whole frames): what the
  /// Fig. 9 memory sweep labels report.
  size_t budget_bytes() const { return budget_bytes_; }
  size_t num_shards() const { return shards_.size(); }
  size_t readahead_pages() const { return options_.readahead_pages; }
  /// Aggregate over all shards.
  BufferPoolStats stats() const;
  /// Per-shard counters, in shard-index order.
  std::vector<BufferPoolStats> shard_stats() const;
  void ResetStats();
  DiskManager* disk() { return disk_; }

 private:
  friend class PageGuard;

  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    bool in_use = false;
    bool prefetched = false;
    std::unique_ptr<char[]> data;
    std::list<size_t>::iterator lru_it;
    bool in_lru = false;
  };

  struct Shard {
    mutable std::mutex mu;
    std::vector<Frame> frames;
    std::vector<size_t> free_frames;
    std::unordered_map<PageId, size_t> page_table;
    std::list<size_t> lru;  // front = most recent, back = victim candidate
    /// Frames holding prefetched pages no demand fetch has consumed yet.
    /// Kept so the reclaim scan in frame acquisition is skipped when zero.
    size_t prefetched_frames = 0;
    BufferPoolStats stats;
  };

  /// Pages map to shards by extent so adjacent ids share a shard.
  static constexpr PageId kShardExtentPages = 16;
  size_t ShardOf(PageId page_id) const {
    return (page_id / kShardExtentPages) % shards_.size();
  }

  void Unpin(size_t frame, PageId page_id);
  void MarkDirtyFrame(size_t frame, PageId page_id);

  /// Finds a frame in `shard` to host a new page: a never-used frame or the
  /// LRU victim. Called with the shard latch held. Writes back the victim if
  /// dirty (coalescing adjacent dirty neighbors when enabled).
  Result<size_t> AcquireFrameLocked(Shard& shard);
  /// The prefetch path's frame source: a free frame or a reclaimed
  /// unconsumed-prefetch frame, never a demand-resident victim (the identity
  /// rule — see PrefetchChain). Returns false when neither exists.
  bool TryAcquireCleanFrameLocked(Shard& shard, size_t* frame);
  /// Drops the least-recent frame still holding an unconsumed prefetched
  /// page and returns its index; false if there is none.
  bool ReclaimPrefetchedFrameLocked(Shard& shard, size_t* frame);

  /// Locks every shard in index order (the global-operation lock order).
  std::vector<std::unique_lock<std::mutex>> LockAllShards() const;
  /// The page-id-ordered dirty sweep; all shard latches must be held.
  Status FlushAllLocked();

  DiskManager* disk_;
  BufferPoolOptions options_;
  size_t budget_bytes_;
  size_t total_frames_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Read under any shard latch; written under all of them.
  std::function<void()> pre_writeback_hook_;
  FaultInjector* injector_ = nullptr;
  /// Written under all shard latches (SetMetrics); read on the fetch path.
  obs::Histogram* fetch_ns_hist_ = nullptr;
  obs::Histogram* latch_wait_hist_ = nullptr;
};

}  // namespace bulkdel

#endif  // BULKDEL_STORAGE_BUFFER_POOL_H_

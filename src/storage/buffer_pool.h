#ifndef BULKDEL_STORAGE_BUFFER_POOL_H_
#define BULKDEL_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace bulkdel {

class BufferPool;

/// RAII pin on a buffered page. While a guard lives, the frame cannot be
/// evicted. Destroying (or Release()-ing) the guard unpins the page and, if
/// MarkDirty() was called, schedules a write-back on eviction/flush.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame, PageId page_id, char* data)
      : pool_(pool), frame_(frame), page_id_(page_id), data_(data) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Marks the page as modified; it will be written back before eviction.
  void MarkDirty();

  /// Unpins immediately (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
  char* data_ = nullptr;
};

struct BufferPoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t dirty_writebacks = 0;
};

/// Fixed-budget LRU buffer pool over a DiskManager.
///
/// The byte budget models the experiment's "available main memory": the
/// paper varies it between 2 and 10 MB (Fig. 9). The pool never holds more
/// than budget/kPageSize frames; every miss beyond that evicts the
/// least-recently-used unpinned frame, writing it back if dirty.
///
/// Thread safety: all operations are internally synchronized with one mutex.
/// Concurrent mutation of the *contents* of distinct pinned pages is safe;
/// callers serialize access to the same page with higher-level latches.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t budget_bytes);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Allocates a fresh zeroed page on disk and pins it (dirty).
  Result<PageGuard> NewPage();

  /// Pins `page_id`, reading it from disk on a miss.
  Result<PageGuard> FetchPage(PageId page_id);

  /// Drops `page_id` from the pool (must be unpinned) and frees it on disk.
  Status DeletePage(PageId page_id);

  /// Writes back every dirty frame. Frames stay resident.
  Status FlushAll();

  /// Writes back and drops every frame (must all be unpinned). Used to
  /// simulate a clean shutdown or to reset cache state between benchmark
  /// phases.
  Status Reset();

  /// Drops every frame *without* writing dirty ones back. This is the crash
  /// switch for the recovery tests: volatile state vanishes, the DiskManager
  /// keeps only what was flushed.
  void DiscardAllForCrashTest();

  /// Invoked immediately before any dirty frame is written to disk (eviction
  /// or flush). The recovery layer uses this to enforce the WAL rule: log
  /// records become durable before the page changes they describe. The hook
  /// runs with the pool mutex held and must not call back into the pool.
  void SetPreWritebackHook(std::function<void()> hook) {
    std::lock_guard<std::mutex> lock(mu_);
    pre_writeback_hook_ = std::move(hook);
  }

  /// Installs a fault injector on the write-back paths (nullptr = none; the
  /// injector must outlive the pool): `pool.evict` fires before a dirty
  /// eviction victim is written back, `pool.flush` before a FlushAll sweep.
  void SetFaultInjector(FaultInjector* injector) {
    std::lock_guard<std::mutex> lock(mu_);
    injector_ = injector;
  }

  size_t capacity_frames() const { return frames_.size(); }
  size_t budget_bytes() const { return frames_.size() * kPageSize; }
  BufferPoolStats stats() const;
  void ResetStats();
  DiskManager* disk() { return disk_; }

 private:
  friend class PageGuard;

  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    bool in_use = false;
    std::unique_ptr<char[]> data;
    std::list<size_t>::iterator lru_it;
    bool in_lru = false;
  };

  void Unpin(size_t frame, PageId page_id);
  /// Finds a frame to host a new page: a never-used frame or the LRU victim.
  /// Called with mu_ held. Writes back the victim if dirty.
  Result<size_t> AcquireFrame();

  DiskManager* disk_;
  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;  // front = most recent, back = victim candidate
  BufferPoolStats stats_;
  std::function<void()> pre_writeback_hook_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace bulkdel

#endif  // BULKDEL_STORAGE_BUFFER_POOL_H_

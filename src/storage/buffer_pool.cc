#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

namespace bulkdel {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    data_ = other.data_;
    // Leave `other` fully invalid: a moved-from guard must not report the
    // old page id or unpin the frame a second time.
    other.pool_ = nullptr;
    other.frame_ = 0;
    other.page_id_ = kInvalidPageId;
    other.data_ = nullptr;
  }
  return *this;
}

void PageGuard::MarkDirty() {
  if (pool_ == nullptr) return;
  std::lock_guard<std::mutex> lock(pool_->mu_);
  pool_->frames_[frame_].dirty = true;
}

void PageGuard::Release() {
  if (pool_ == nullptr) return;
  // Invalidate before unpinning so a re-entrant or repeated Release (e.g.
  // explicit Release() followed by the destructor) is a no-op.
  BufferPool* pool = pool_;
  pool_ = nullptr;
  data_ = nullptr;
  pool->Unpin(frame_, page_id_);
  frame_ = 0;
  page_id_ = kInvalidPageId;
}

BufferPool::BufferPool(DiskManager* disk, size_t budget_bytes) : disk_(disk) {
  size_t n = std::max<size_t>(budget_bytes / kPageSize, 4);
  frames_.resize(n);
  free_frames_.reserve(n);
  for (size_t i = n; i-- > 0;) free_frames_.push_back(i);
}

Result<PageGuard> BufferPool::NewPage() {
  std::lock_guard<std::mutex> lock(mu_);
  BULKDEL_ASSIGN_OR_RETURN(PageId page_id, disk_->AllocatePage());
  BULKDEL_ASSIGN_OR_RETURN(size_t f, AcquireFrame());
  Frame& frame = frames_[f];
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = true;  // a new page must reach disk even if never modified
  frame.in_use = true;
  if (!frame.data) frame.data = std::make_unique<char[]>(kPageSize);
  std::memset(frame.data.get(), 0, kPageSize);
  page_table_[page_id] = f;
  return PageGuard(this, f, page_id, frame.data.get());
}

Result<PageGuard> BufferPool::FetchPage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    Frame& frame = frames_[it->second];
    if (frame.pin_count == 0 && frame.in_lru) {
      lru_.erase(frame.lru_it);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return PageGuard(this, it->second, page_id, frame.data.get());
  }
  ++stats_.misses;
  BULKDEL_ASSIGN_OR_RETURN(size_t f, AcquireFrame());
  Frame& frame = frames_[f];
  if (!frame.data) frame.data = std::make_unique<char[]>(kPageSize);
  BULKDEL_RETURN_IF_ERROR(disk_->ReadPage(page_id, frame.data.get()));
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.in_use = true;
  page_table_[page_id] = f;
  return PageGuard(this, f, page_id, frame.data.get());
}

Status BufferPool::DeletePage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    if (frame.pin_count > 0) {
      return Status::FailedPrecondition("DeletePage on pinned page " +
                                        std::to_string(page_id));
    }
    if (frame.in_lru) {
      lru_.erase(frame.lru_it);
      frame.in_lru = false;
    }
    frame.in_use = false;
    frame.dirty = false;
    free_frames_.push_back(it->second);
    page_table_.erase(it);
  }
  return disk_->FreePage(page_id);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  // Flush in page-id order: a checkpoint is a mostly-sequential sweep.
  std::vector<size_t> dirty;
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].in_use && frames_[i].dirty) dirty.push_back(i);
  }
  std::sort(dirty.begin(), dirty.end(), [&](size_t a, size_t b) {
    return frames_[a].page_id < frames_[b].page_id;
  });
  if (!dirty.empty() && injector_ != nullptr) {
    BULKDEL_RETURN_IF_ERROR(injector_->Check(fault_sites::kPoolFlush));
  }
  if (!dirty.empty() && pre_writeback_hook_) pre_writeback_hook_();
  for (size_t i : dirty) {
    BULKDEL_RETURN_IF_ERROR(
        disk_->WritePage(frames_[i].page_id, frames_[i].data.get()));
    ++stats_.dirty_writebacks;
    frames_[i].dirty = false;
  }
  return Status::OK();
}

Status BufferPool::Reset() {
  BULKDEL_RETURN_IF_ERROR(FlushAll());
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (!frame.in_use) continue;
    if (frame.pin_count > 0) {
      return Status::FailedPrecondition("Reset with pinned page " +
                                        std::to_string(frame.page_id));
    }
    if (frame.in_lru) {
      lru_.erase(frame.lru_it);
      frame.in_lru = false;
    }
    frame.in_use = false;
    page_table_.erase(frame.page_id);
    free_frames_.push_back(i);
  }
  return Status::OK();
}

void BufferPool::DiscardAllForCrashTest() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  page_table_.clear();
  free_frames_.clear();
  for (size_t i = frames_.size(); i-- > 0;) {
    frames_[i] = Frame();
    free_frames_.push_back(i);
  }
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferPool::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = BufferPoolStats();
}

void BufferPool::Unpin(size_t frame_index, PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& frame = frames_[frame_index];
  if (!frame.in_use || frame.page_id != page_id) return;  // already recycled
  if (frame.pin_count > 0 && --frame.pin_count == 0) {
    lru_.push_front(frame_index);
    frame.lru_it = lru_.begin();
    frame.in_lru = true;
  }
}

Result<size_t> BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    size_t f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool: all frames pinned (capacity " +
        std::to_string(frames_.size()) + ")");
  }
  size_t victim = lru_.back();
  lru_.pop_back();
  Frame& frame = frames_[victim];
  frame.in_lru = false;
  if (frame.dirty) {
    if (injector_ != nullptr) {
      BULKDEL_RETURN_IF_ERROR(injector_->Check(
          fault_sites::kPoolEvict, "page " + std::to_string(frame.page_id)));
    }
    if (pre_writeback_hook_) pre_writeback_hook_();
    BULKDEL_RETURN_IF_ERROR(
        disk_->WritePage(frame.page_id, frame.data.get()));
    ++stats_.dirty_writebacks;
    frame.dirty = false;
  }
  page_table_.erase(frame.page_id);
  frame.in_use = false;
  ++stats_.evictions;
  return victim;
}

}  // namespace bulkdel

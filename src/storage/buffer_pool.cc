#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "util/clock.h"

namespace bulkdel {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    data_ = other.data_;
    // Leave `other` fully invalid: a moved-from guard must not report the
    // old page id or unpin the frame a second time.
    other.pool_ = nullptr;
    other.frame_ = 0;
    other.page_id_ = kInvalidPageId;
    other.data_ = nullptr;
  }
  return *this;
}

void PageGuard::MarkDirty() {
  if (pool_ == nullptr) return;
  pool_->MarkDirtyFrame(frame_, page_id_);
}

void PageGuard::Release() {
  if (pool_ == nullptr) return;
  // Invalidate before unpinning so a re-entrant or repeated Release (e.g.
  // explicit Release() followed by the destructor) is a no-op.
  BufferPool* pool = pool_;
  pool_ = nullptr;
  data_ = nullptr;
  pool->Unpin(frame_, page_id_);
  frame_ = 0;
  page_id_ = kInvalidPageId;
}

BufferPool::BufferPool(DiskManager* disk, BufferPoolOptions options)
    : disk_(disk), options_(options), budget_bytes_(options.budget_bytes) {
  total_frames_ = std::max<size_t>(budget_bytes_ / kPageSize, 4);
  // Clamp the shard count so every shard keeps at least ~8 frames: a shard
  // too small to hold a descent path's pins would fail spuriously.
  size_t shards = std::max<size_t>(options.shards, 1);
  shards = std::min(shards, std::max<size_t>(total_frames_ / 8, 1));
  options_.shards = shards;
  shards_.reserve(shards);
  size_t base = total_frames_ / shards;
  size_t rem = total_frames_ % shards;
  for (size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    size_t n = base + (s < rem ? 1 : 0);
    shard->frames.resize(n);
    shard->free_frames.reserve(n);
    for (size_t i = n; i-- > 0;) shard->free_frames.push_back(i);
    shards_.push_back(std::move(shard));
  }
}

Result<PageGuard> BufferPool::NewPage() {
  BULKDEL_ASSIGN_OR_RETURN(PageId page_id, disk_->AllocatePage());
  Shard& shard = *shards_[ShardOf(page_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  BULKDEL_ASSIGN_OR_RETURN(size_t f, AcquireFrameLocked(shard));
  Frame& frame = shard.frames[f];
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = true;  // a new page must reach disk even if never modified
  frame.in_use = true;
  frame.prefetched = false;
  if (!frame.data) frame.data = std::make_unique<char[]>(kPageSize);
  std::memset(frame.data.get(), 0, kPageSize);
  shard.page_table[page_id] = f;
  return PageGuard(this, f, page_id, frame.data.get());
}

Result<PageGuard> BufferPool::FetchPage(PageId page_id) {
  // Latency observation is gated on the trace recorder so the default fetch
  // path never reads the clock; tracing changes only host-time metrics,
  // never the simulated I/O (which depends on the page-access sequence).
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  const bool timed = fetch_ns_hist_ != nullptr && recorder.enabled();
  const int64_t t0 = timed ? MonotonicNanos() : 0;
  Shard& shard = *shards_[ShardOf(page_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (timed) {
    int64_t waited = MonotonicNanos() - t0;
    latch_wait_hist_->Observe(waited);
    if (waited > 1000) {
      recorder.RecordComplete(obs::TraceCategory::kLatch, "pool.shard_latch",
                              t0, t0 + waited, "page",
                              static_cast<int64_t>(page_id));
    }
  }
  auto it = shard.page_table.find(page_id);
  if (it != shard.page_table.end()) {
    ++shard.stats.hits;
    Frame& frame = shard.frames[it->second];
    if (frame.prefetched) {
      // First demand access of a read-ahead frame: charge the simulated read
      // now, exactly where the demand fetch would have performed it.
      BULKDEL_RETURN_IF_ERROR(disk_->ChargePrefetchedRead(page_id));
      ++shard.stats.prefetch_hits;
      frame.prefetched = false;
      --shard.prefetched_frames;
      if (recorder.enabled()) {
        recorder.RecordInstant(obs::TraceCategory::kReadahead,
                               "readahead.consume", "page",
                               static_cast<int64_t>(page_id));
      }
    }
    if (frame.pin_count == 0 && frame.in_lru) {
      shard.lru.erase(frame.lru_it);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    if (timed) fetch_ns_hist_->Observe(MonotonicNanos() - t0);
    return PageGuard(this, it->second, page_id, frame.data.get());
  }
  ++shard.stats.misses;
  if (recorder.enabled()) {
    recorder.RecordInstant(obs::TraceCategory::kPool, "pool.fetch", "page",
                           static_cast<int64_t>(page_id));
  }
  BULKDEL_ASSIGN_OR_RETURN(size_t f, AcquireFrameLocked(shard));
  Frame& frame = shard.frames[f];
  if (!frame.data) frame.data = std::make_unique<char[]>(kPageSize);
  Status read = disk_->ReadPage(page_id, frame.data.get());
  if (!read.ok()) {
    shard.free_frames.push_back(f);
    return read;
  }
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.in_use = true;
  frame.prefetched = false;
  shard.page_table[page_id] = f;
  if (timed) fetch_ns_hist_->Observe(MonotonicNanos() - t0);
  return PageGuard(this, f, page_id, frame.data.get());
}

Status BufferPool::DeletePage(PageId page_id) {
  Shard& shard = *shards_[ShardOf(page_id)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.page_table.find(page_id);
    if (it != shard.page_table.end()) {
      Frame& frame = shard.frames[it->second];
      if (frame.pin_count > 0) {
        return Status::FailedPrecondition("DeletePage on pinned page " +
                                          std::to_string(page_id));
      }
      if (frame.in_lru) {
        shard.lru.erase(frame.lru_it);
        frame.in_lru = false;
      }
      frame.in_use = false;
      frame.dirty = false;
      if (frame.prefetched) {
        frame.prefetched = false;
        --shard.prefetched_frames;
      }
      shard.free_frames.push_back(it->second);
      shard.page_table.erase(it);
    }
  }
  return disk_->FreePage(page_id);
}

std::vector<std::unique_lock<std::mutex>> BufferPool::LockAllShards() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  // Index order is the global lock order; every cross-shard operation takes
  // the latches this way, so they cannot deadlock against each other.
  for (const auto& shard : shards_) locks.emplace_back(shard->mu);
  return locks;
}

Status BufferPool::FlushAllLocked() {
  // Flush in global page-id order: a checkpoint is a mostly-sequential sweep,
  // and keeping the order identical across shard counts keeps the simulated
  // I/O identical too.
  struct DirtyRef {
    PageId page_id;
    Shard* shard;
    size_t frame;
  };
  std::vector<DirtyRef> dirty;
  for (auto& shard : shards_) {
    for (size_t i = 0; i < shard->frames.size(); ++i) {
      if (shard->frames[i].in_use && shard->frames[i].dirty) {
        dirty.push_back(DirtyRef{shard->frames[i].page_id, shard.get(), i});
      }
    }
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const DirtyRef& a, const DirtyRef& b) {
              return a.page_id < b.page_id;
            });
  if (dirty.empty()) return Status::OK();
  obs::TraceSpan span(obs::TraceCategory::kPool, "pool.flush", "pages");
  span.set_arg(static_cast<int64_t>(dirty.size()));
  if (injector_ != nullptr) {
    BULKDEL_RETURN_IF_ERROR(injector_->Check(fault_sites::kPoolFlush));
  }
  if (pre_writeback_hook_) pre_writeback_hook_();
  // Write maximal adjacent-page-id runs with one WriteRun each: per-page
  // charges and fault checks are identical to page-at-a-time writes, but the
  // disk mutex is taken once per run.
  size_t i = 0;
  while (i < dirty.size()) {
    size_t j = i + 1;
    while (j < dirty.size() && dirty[j].page_id == dirty[j - 1].page_id + 1) {
      ++j;
    }
    std::vector<const char*> datas;
    datas.reserve(j - i);
    for (size_t k = i; k < j; ++k) {
      datas.push_back(
          dirty[k].shard->frames[dirty[k].frame].data.get());
    }
    BULKDEL_RETURN_IF_ERROR(disk_->WriteRun(dirty[i].page_id, datas));
    for (size_t k = i; k < j; ++k) {
      dirty[k].shard->frames[dirty[k].frame].dirty = false;
      ++dirty[k].shard->stats.dirty_writebacks;
    }
    i = j;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  auto locks = LockAllShards();
  return FlushAllLocked();
}

Status BufferPool::Reset() {
  // Flush and drop under one continuous hold of every shard latch: a page a
  // concurrent thread dirties while we sweep cannot slip between the flush
  // and the drop and be discarded with its update unwritten.
  auto locks = LockAllShards();
  BULKDEL_RETURN_IF_ERROR(FlushAllLocked());
  for (auto& shard : shards_) {
    for (size_t i = 0; i < shard->frames.size(); ++i) {
      Frame& frame = shard->frames[i];
      if (!frame.in_use) continue;
      if (frame.pin_count > 0) {
        return Status::FailedPrecondition("Reset with pinned page " +
                                          std::to_string(frame.page_id));
      }
      if (frame.in_lru) {
        shard->lru.erase(frame.lru_it);
        frame.in_lru = false;
      }
      frame.in_use = false;
      frame.prefetched = false;
      shard->page_table.erase(frame.page_id);
      shard->free_frames.push_back(i);
    }
    shard->prefetched_frames = 0;
  }
  return Status::OK();
}

void BufferPool::DiscardAllForCrashTest() {
  auto locks = LockAllShards();
  for (auto& shard : shards_) {
    shard->lru.clear();
    shard->page_table.clear();
    shard->free_frames.clear();
    for (size_t i = shard->frames.size(); i-- > 0;) {
      shard->frames[i] = Frame();
      shard->free_frames.push_back(i);
    }
    shard->prefetched_frames = 0;
    // A restarted process has cold counters; carrying pre-crash hit/miss
    // numbers into recovery double-counts the crash-sweep's per-run I/O.
    shard->stats = BufferPoolStats();
  }
}

size_t BufferPool::PrefetchChain(
    PageId start, size_t max_pages,
    const std::function<PageId(const char*)>& next_of) {
  size_t covered = 0;
  PageId cur = start;
  while (cur != kInvalidPageId && covered < max_pages) {
    Shard& shard = *shards_[ShardOf(cur)];
    std::lock_guard<std::mutex> lock(shard.mu);
    PageId next;
    auto it = shard.page_table.find(cur);
    if (it != shard.page_table.end()) {
      // Already resident: no charge, just peek the successor.
      next = next_of(shard.frames[it->second].data.get());
    } else {
      size_t f;
      if (!TryAcquireCleanFrameLocked(shard, &f)) break;
      Frame& frame = shard.frames[f];
      if (!frame.data) frame.data = std::make_unique<char[]>(kPageSize);
      if (!disk_->ReadPagePrefetch(cur, frame.data.get()).ok()) {
        shard.free_frames.push_back(f);
        break;
      }
      frame.page_id = cur;
      frame.pin_count = 0;
      frame.dirty = false;
      frame.in_use = true;
      frame.prefetched = true;
      shard.page_table[cur] = f;
      shard.lru.push_front(f);
      frame.lru_it = shard.lru.begin();
      frame.in_lru = true;
      ++shard.prefetched_frames;
      ++shard.stats.prefetched;
      next = next_of(frame.data.get());
    }
    ++covered;
    cur = next;
  }
  if (covered > 0 && obs::TraceRecorder::Global().enabled()) {
    obs::TraceRecorder::Global().RecordInstant(
        obs::TraceCategory::kReadahead, "readahead.issue_chain", "pages",
        static_cast<int64_t>(covered));
  }
  return covered;
}

size_t BufferPool::PrefetchPages(const PageId* ids, size_t n) {
  size_t covered = 0;
  // Emitted on every exit path (the loop returns early when frames run out).
  struct IssueNote {
    const size_t* covered;
    ~IssueNote() {
      if (*covered > 0 && obs::TraceRecorder::Global().enabled()) {
        obs::TraceRecorder::Global().RecordInstant(
            obs::TraceCategory::kReadahead, "readahead.issue_pages", "pages",
            static_cast<int64_t>(*covered));
      }
    }
  } note{&covered};
  size_t i = 0;
  while (i < n) {
    size_t shard_idx = ShardOf(ids[i]);
    size_t stretch_end = i + 1;
    while (stretch_end < n && ShardOf(ids[stretch_end]) == shard_idx) {
      ++stretch_end;
    }
    Shard& shard = *shards_[shard_idx];
    std::lock_guard<std::mutex> lock(shard.mu);
    // Frames acquired for a pending contiguous run, read with one ReadRun.
    PageId run_first = kInvalidPageId;
    std::vector<size_t> run_frames;
    auto flush_run = [&]() -> bool {
      if (run_frames.empty()) return true;
      std::vector<char*> outs;
      outs.reserve(run_frames.size());
      for (size_t f : run_frames) outs.push_back(shard.frames[f].data.get());
      if (!disk_->ReadRunPrefetch(run_first, outs).ok()) {
        for (size_t f : run_frames) shard.free_frames.push_back(f);
        run_frames.clear();
        return false;
      }
      for (size_t k = 0; k < run_frames.size(); ++k) {
        Frame& frame = shard.frames[run_frames[k]];
        frame.page_id = run_first + static_cast<PageId>(k);
        frame.pin_count = 0;
        frame.dirty = false;
        frame.in_use = true;
        frame.prefetched = true;
        shard.page_table[frame.page_id] = run_frames[k];
        shard.lru.push_front(run_frames[k]);
        frame.lru_it = shard.lru.begin();
        frame.in_lru = true;
        ++shard.prefetched_frames;
        ++shard.stats.prefetched;
        ++covered;
      }
      run_frames.clear();
      return true;
    };
    for (size_t k = i; k < stretch_end; ++k) {
      PageId p = ids[k];
      if (shard.page_table.find(p) != shard.page_table.end()) {
        if (!flush_run()) return covered;
        ++covered;
        continue;
      }
      bool contiguous = !run_frames.empty() &&
                        p == run_first + static_cast<PageId>(run_frames.size());
      if (!contiguous) {
        if (!flush_run()) return covered;
        run_first = p;
      }
      size_t f;
      if (!TryAcquireCleanFrameLocked(shard, &f)) {
        (void)flush_run();
        return covered;
      }
      if (!shard.frames[f].data) {
        shard.frames[f].data = std::make_unique<char[]>(kPageSize);
      }
      run_frames.push_back(f);
    }
    if (!flush_run()) return covered;
    i = stretch_end;
  }
  return covered;
}

void BufferPool::SetPreWritebackHook(std::function<void()> hook) {
  auto locks = LockAllShards();
  pre_writeback_hook_ = std::move(hook);
}

void BufferPool::SetFaultInjector(FaultInjector* injector) {
  auto locks = LockAllShards();
  injector_ = injector;
}

void BufferPool::SetMetrics(obs::MetricsRegistry* metrics) {
  auto locks = LockAllShards();
  if (metrics == nullptr) {
    fetch_ns_hist_ = nullptr;
    latch_wait_hist_ = nullptr;
    return;
  }
  fetch_ns_hist_ = metrics->histogram(obs::metric_names::kBpFetchNs);
  latch_wait_hist_ = metrics->histogram(obs::metric_names::kBpLatchWaitNs);
}

BufferPoolStats BufferPool::stats() const {
  auto locks = LockAllShards();
  BufferPoolStats total;
  for (const auto& shard : shards_) total += shard->stats;
  return total;
}

std::vector<BufferPoolStats> BufferPool::shard_stats() const {
  auto locks = LockAllShards();
  std::vector<BufferPoolStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->stats);
  return out;
}

void BufferPool::ResetStats() {
  auto locks = LockAllShards();
  for (auto& shard : shards_) shard->stats = BufferPoolStats();
}

void BufferPool::Unpin(size_t frame_index, PageId page_id) {
  Shard& shard = *shards_[ShardOf(page_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  Frame& frame = shard.frames[frame_index];
  if (!frame.in_use || frame.page_id != page_id) return;  // already recycled
  if (frame.pin_count > 0 && --frame.pin_count == 0) {
    shard.lru.push_front(frame_index);
    frame.lru_it = shard.lru.begin();
    frame.in_lru = true;
  }
}

void BufferPool::MarkDirtyFrame(size_t frame_index, PageId page_id) {
  Shard& shard = *shards_[ShardOf(page_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  Frame& frame = shard.frames[frame_index];
  if (frame.in_use && frame.page_id == page_id) frame.dirty = true;
}

Result<size_t> BufferPool::AcquireFrameLocked(Shard& shard) {
  if (!shard.free_frames.empty()) {
    size_t f = shard.free_frames.back();
    shard.free_frames.pop_back();
    return f;
  }
  // Reclaim unconsumed prefetch frames before evicting a real victim: with
  // read-ahead off this shard would still have a free frame here, so taking
  // the speculative frame (no write-back, no charge) keeps the residency and
  // eviction sequence of demand pages bit-identical to that run.
  {
    size_t f;
    if (ReclaimPrefetchedFrameLocked(shard, &f)) return f;
  }
  if (shard.lru.empty()) {
    return Status::ResourceExhausted(
        "buffer pool: all frames pinned (shard capacity " +
        std::to_string(shard.frames.size()) + " of " +
        std::to_string(total_frames_) + " total)");
  }
  size_t victim = shard.lru.back();
  shard.lru.pop_back();
  Frame& frame = shard.frames[victim];
  frame.in_lru = false;
  if (obs::TraceRecorder::Global().enabled()) {
    obs::TraceRecorder::Global().RecordInstant(
        obs::TraceCategory::kPool, frame.dirty ? "pool.evict_dirty"
                                               : "pool.evict",
        "page", static_cast<int64_t>(frame.page_id));
  }
  if (frame.dirty) {
    if (injector_ != nullptr) {
      BULKDEL_RETURN_IF_ERROR(injector_->Check(
          fault_sites::kPoolEvict, "page " + std::to_string(frame.page_id)));
    }
    if (pre_writeback_hook_) pre_writeback_hook_();
    if (options_.coalesce_writebacks) {
      // Batch the victim with resident dirty unpinned neighbors that form a
      // contiguous page-id run: one sequential write replaces several random
      // ones. Neighbors stay resident, merely cleaned. This changes the
      // simulated write classification, which is why the knob defaults off.
      PageId first = frame.page_id;
      while (true) {
        auto it = shard.page_table.find(first - 1);
        if (first == 0 || it == shard.page_table.end()) break;
        Frame& left = shard.frames[it->second];
        if (!left.dirty || left.pin_count > 0) break;
        first = first - 1;
      }
      PageId last = frame.page_id;
      while (true) {
        auto it = shard.page_table.find(last + 1);
        if (it == shard.page_table.end()) break;
        Frame& right = shard.frames[it->second];
        if (!right.dirty || right.pin_count > 0) break;
        last = last + 1;
      }
      std::vector<const char*> datas;
      datas.reserve(last - first + 1);
      for (PageId p = first; p <= last; ++p) {
        datas.push_back(
            shard.frames[shard.page_table.find(p)->second].data.get());
      }
      BULKDEL_RETURN_IF_ERROR(disk_->WriteRun(first, datas));
      for (PageId p = first; p <= last; ++p) {
        shard.frames[shard.page_table.find(p)->second].dirty = false;
        ++shard.stats.dirty_writebacks;
      }
      shard.stats.coalesced_writebacks +=
          static_cast<int64_t>(last - first);
    } else {
      BULKDEL_RETURN_IF_ERROR(
          disk_->WritePage(frame.page_id, frame.data.get()));
      ++shard.stats.dirty_writebacks;
      frame.dirty = false;
    }
  }
  shard.page_table.erase(frame.page_id);
  frame.in_use = false;
  frame.prefetched = false;
  ++shard.stats.evictions;
  return victim;
}

bool BufferPool::TryAcquireCleanFrameLocked(Shard& shard, size_t* frame) {
  if (!shard.free_frames.empty()) {
    *frame = shard.free_frames.back();
    shard.free_frames.pop_back();
    return true;
  }
  // Prefetch may recycle its own speculative frames but never displaces a
  // demand-resident page (clean or dirty): evicting one would change which
  // pages later demand fetches find resident and break the simulated-I/O
  // identity. Under eviction pressure read-ahead degrades to a no-op.
  return ReclaimPrefetchedFrameLocked(shard, frame);
}

bool BufferPool::ReclaimPrefetchedFrameLocked(Shard& shard, size_t* frame) {
  if (shard.prefetched_frames == 0) return false;
  // Scan from the victim end so the oldest (furthest-behind) prefetched page
  // is the one dropped.
  for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
    size_t idx = *it;
    Frame& f = shard.frames[idx];
    if (!f.prefetched) continue;
    shard.lru.erase(std::next(it).base());
    f.in_lru = false;
    shard.page_table.erase(f.page_id);
    f.in_use = false;
    f.prefetched = false;
    --shard.prefetched_frames;
    *frame = idx;
    return true;
  }
  return false;
}

}  // namespace bulkdel

#ifndef BULKDEL_STORAGE_DISK_MODEL_H_
#define BULKDEL_STORAGE_DISK_MODEL_H_

#include <cstdint>

namespace bulkdel {

/// Cost model of the paper's disk setup (Seagate Medalist Pro, 7200 rpm,
/// Solaris direct I/O, 4 KiB pages).
///
/// The paper's results are I/O bound and were measured with direct I/O, i.e.
/// every page access hit the disk. On a modern host the same file sits in
/// the page cache, so wall time no longer reflects the effect the paper
/// measures. The DiskManager therefore *also* accounts simulated time: each
/// page access is classified as sequential (page adjacent to the previous
/// access) or random (requires repositioning) and charged accordingly.
/// Benchmarks report this simulated time next to raw wall time and raw I/O
/// counts; the paper-vs-measured comparison in EXPERIMENTS.md uses it.
///
/// Calibration: the paper's own measurements imply the constants. Their
/// merge-based bulk delete is dominated by one sequential read+write pass
/// over the 131k-page table and finishes in ~25 min => ~4.5 ms per
/// sequential 4 KiB direct-I/O page (synchronous single-page direct I/O
/// pays most of a rotation per request). Their sorted/trad at 15% performs
/// ~150k random table-page accesses in ~65 min => ~12 ms per random page
/// (seek + rotational latency). We round to 4 ms / 12 ms.
struct DiskModel {
  /// Cost of a 4 KiB transfer that continues a sequential run.
  int64_t sequential_page_micros = 4000;

  /// Cost of a 4 KiB access that requires repositioning the arm.
  int64_t random_page_micros = 12000;
};

}  // namespace bulkdel

#endif  // BULKDEL_STORAGE_DISK_MODEL_H_

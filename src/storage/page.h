#ifndef BULKDEL_STORAGE_PAGE_H_
#define BULKDEL_STORAGE_PAGE_H_

#include <cstdint>

namespace bulkdel {

/// Identifier of a 4 KiB page inside a database file.
using PageId = uint32_t;

/// Sentinel for "no page" (end of chains, empty pointers).
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Fixed page size, matching the paper's prototype (4096 bytes).
inline constexpr uint32_t kPageSize = 4096;

}  // namespace bulkdel

#endif  // BULKDEL_STORAGE_PAGE_H_

#include "storage/disk_manager.h"

#include <fcntl.h>
#include <limits.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "util/coding.h"
#include "util/crc32.h"

namespace bulkdel {

thread_local IoAttribution* DiskManager::tls_attribution_ = nullptr;

DiskManager::AttributionScope::AttributionScope(IoAttribution* attribution)
    : previous_(tls_attribution_) {
  tls_attribution_ = attribution;
}

DiskManager::AttributionScope::~AttributionScope() {
  tls_attribution_ = previous_;
}

DiskManager::DiskManager(DiskModel model) : model_(model) {}

DiskManager::DiskManager(const std::string& path, bool truncate,
                         DiskModel model)
    : model_(model), path_(path) {
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  // A failed open leaves fd_ == -1; the first I/O reports the error. Existing
  // file contents define the page count.
  if (fd_ >= 0) {
    off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size > 0) file_pages_ = static_cast<uint32_t>(size / kPageSize);
  }
  if (truncate) {
    // A truncating open must not inherit a stale sidecar from a previous
    // database at the same path.
    (void)::unlink((path_ + ".meta").c_str());
  } else {
    LoadCleanShutdownMeta();
  }
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<PageId> DiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  if (injector_ != nullptr && injector_->tripped()) {
    return injector_->TrippedError();
  }
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    free_set_.erase(id);
    if (fd_ < 0) {
      std::memset(pages_[id].get(), 0, kPageSize);
    } else {
      // Zero the recycled page on the medium too, so a fresh allocation
      // reads as zeros on both backings (the file path used to leak the
      // previous occupant's bytes). Allocation is a metadata operation:
      // like the memset above, this is not charged I/O.
      static const char kZeros[kPageSize] = {};
      (void)::pwrite(fd_, kZeros, kPageSize,
                     static_cast<off_t>(id) * kPageSize);
    }
    return id;
  }
  if (fd_ < 0) {
    PageId id = static_cast<PageId>(pages_.size());
    auto page = std::make_unique<char[]>(kPageSize);
    std::memset(page.get(), 0, kPageSize);
    pages_.push_back(std::move(page));
    return id;
  }
  PageId id = file_pages_++;
  // Extend the file to cover the allocation high-water mark (sparse, so this
  // costs no data blocks). In-memory allocation metadata survives a crash by
  // construction (the pages_ vector is the medium); the file backing gets
  // the same property from the file size, which a reopen derives file_pages_
  // from — without this, a page allocated but never written would fall out
  // of bounds after a crash reopen.
  (void)::ftruncate(fd_, static_cast<off_t>(file_pages_) * kPageSize);
  return id;
}

Status DiskManager::FreePage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (injector_ != nullptr && injector_->tripped()) {
    return injector_->TrippedError();
  }
  BULKDEL_RETURN_IF_ERROR(CheckBounds(page_id));
  if (!free_set_.insert(page_id).second) return Status::OK();  // already free
  free_list_.push_back(page_id);
  return Status::OK();
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadPageLocked(page_id, out);
}

Status DiskManager::ReadPageLocked(PageId page_id, char* out) {
  if (injector_ != nullptr) {
    BULKDEL_RETURN_IF_ERROR(injector_->Check(fault_sites::kDiskRead));
  }
  BULKDEL_RETURN_IF_ERROR(CheckBounds(page_id));
  Account(page_id, /*is_write=*/false);
  if (fd_ < 0) {
    std::memcpy(out, pages_[page_id].get(), kPageSize);
    return Status::OK();
  }
  ssize_t n = ::pread(fd_, out, kPageSize,
                      static_cast<off_t>(page_id) * kPageSize);
  if (n < 0) return Status::IOError(std::strerror(errno));
  if (n < static_cast<ssize_t>(kPageSize)) {
    // Page beyond current file end (allocated but never written): zeros.
    std::memset(out + n, 0, kPageSize - n);
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const char* data) {
  std::lock_guard<std::mutex> lock(mu_);
  return WritePageLocked(page_id, data);
}

Status DiskManager::ReadPagePrefetch(PageId page_id, char* out) {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadPagePrefetchLocked(page_id, out);
}

Status DiskManager::ReadRunPrefetch(PageId first,
                                    const std::vector<char*>& outs) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < outs.size(); ++i) {
    BULKDEL_RETURN_IF_ERROR(
        ReadPagePrefetchLocked(first + static_cast<PageId>(i), outs[i]));
  }
  return Status::OK();
}

Status DiskManager::ReadPagePrefetchLocked(PageId page_id, char* out) {
  // No fault-site check and no accounting: the simulated charge (and the
  // read fault check) happen in ChargePrefetchedRead when a demand fetch
  // consumes the page. A tripped injector still fails the physical read so
  // prefetching stops with everything else.
  if (injector_ != nullptr && injector_->tripped()) {
    return injector_->TrippedError();
  }
  BULKDEL_RETURN_IF_ERROR(CheckBounds(page_id));
  if (fd_ < 0) {
    std::memcpy(out, pages_[page_id].get(), kPageSize);
    return Status::OK();
  }
  ssize_t n = ::pread(fd_, out, kPageSize,
                      static_cast<off_t>(page_id) * kPageSize);
  if (n < 0) return Status::IOError(std::strerror(errno));
  if (n < static_cast<ssize_t>(kPageSize)) {
    std::memset(out + n, 0, kPageSize - n);
  }
  return Status::OK();
}

Status DiskManager::ChargePrefetchedRead(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (injector_ != nullptr) {
    BULKDEL_RETURN_IF_ERROR(injector_->Check(fault_sites::kDiskRead));
  }
  BULKDEL_RETURN_IF_ERROR(CheckBounds(page_id));
  Account(page_id, /*is_write=*/false);
  return Status::OK();
}

void DiskManager::SetMetrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  write_runs_counter_ =
      metrics != nullptr ? metrics->counter(obs::metric_names::kDiskWriteRuns)
                         : nullptr;
  syncs_counter_ =
      metrics != nullptr ? metrics->counter(obs::metric_names::kDiskSyncs)
                         : nullptr;
}

Status DiskManager::WriteRun(PageId first, const std::vector<const char*>& datas) {
  obs::TraceSpan span(obs::TraceCategory::kDisk, "disk.write_run", "pages");
  span.set_arg(static_cast<int64_t>(datas.size()));
  std::lock_guard<std::mutex> lock(mu_);
  if (write_runs_counter_ != nullptr) write_runs_counter_->Add(1);
  if (fd_ < 0) {
    for (size_t i = 0; i < datas.size(); ++i) {
      BULKDEL_RETURN_IF_ERROR(
          WritePageLocked(first + static_cast<PageId>(i), datas[i]));
    }
    return Status::OK();
  }
  // File backing: two phases so the run can go out as one vectored write.
  // Phase 1 replays the exact per-page WritePage semantics (fault site hit
  // per page, bounds, accounting) and stops at the first failure; phase 2
  // physically writes the verified prefix via pwritev plus, for a fired
  // torn/short fault, the partial bytes of the failing page — byte-for-byte
  // the end state the per-page loop would have produced.
  size_t ok_pages = 0;
  Status failure;
  size_t partial_bytes = 0;  // of page `first + ok_pages`, on a fired fault
  for (size_t i = 0; i < datas.size(); ++i) {
    PageId page_id = first + static_cast<PageId>(i);
    if (injector_ != nullptr) {
      FaultInjector::Hit hit;
      failure = injector_->CheckWrite(fault_sites::kDiskWrite, &hit,
                                      "page " + std::to_string(page_id));
      if (!failure.ok()) break;
      if (hit.fire) {
        if (CheckBounds(page_id).ok()) {
          partial_bytes = hit.mode == FaultMode::kTornWrite
                              ? kPageSize / 2
                              : hit.rng % kPageSize;
        }
        failure = injector_->TrippedError();
        break;
      }
    }
    failure = CheckBounds(page_id);
    if (!failure.ok()) break;
    Account(page_id, /*is_write=*/true);
    ++ok_pages;
  }
  size_t done = 0;
  while (done < ok_pages) {
    size_t n = std::min<size_t>(ok_pages - done, IOV_MAX);
    std::vector<struct iovec> iov(n);
    for (size_t i = 0; i < n; ++i) {
      iov[i].iov_base = const_cast<char*>(datas[done + i]);
      iov[i].iov_len = kPageSize;
    }
    ssize_t written =
        ::pwritev(fd_, iov.data(), static_cast<int>(n),
                  static_cast<off_t>(first + done) * kPageSize);
    if (written != static_cast<ssize_t>(n * kPageSize)) {
      return Status::IOError(std::strerror(errno));
    }
    done += n;
  }
  if (partial_bytes > 0) {
    (void)::pwrite(fd_, datas[ok_pages], partial_bytes,
                   static_cast<off_t>(first + ok_pages) * kPageSize);
  }
  return failure;
}

Status DiskManager::Flush() {
  obs::TraceSpan span(obs::TraceCategory::kDisk, "disk.sync");
  std::lock_guard<std::mutex> lock(mu_);
  if (injector_ != nullptr) {
    BULKDEL_RETURN_IF_ERROR(injector_->Check(fault_sites::kDiskSync));
  }
  if (syncs_counter_ != nullptr) syncs_counter_->Add(1);
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    return Status::IOError(std::strerror(errno));
  }
  return Status::OK();
}

namespace {
constexpr char kMetaMagic[8] = {'B', 'D', 'M', 'E', 'T', 'A', '0', '1'};
}  // namespace

Status DiskManager::MarkCleanShutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::OK();
  if (::fsync(fd_) != 0) return Status::IOError(std::strerror(errno));
  // Sidecar layout: magic | u32 file_pages | u32 n_free | n_free * u32 ids |
  // u32 crc32 of everything before it.
  std::string meta(kMetaMagic, sizeof(kMetaMagic));
  char buf[4];
  StoreU32(buf, file_pages_);
  meta.append(buf, 4);
  StoreU32(buf, static_cast<uint32_t>(free_list_.size()));
  meta.append(buf, 4);
  for (PageId id : free_list_) {
    StoreU32(buf, id);
    meta.append(buf, 4);
  }
  StoreU32(buf, Crc32(meta.data(), meta.size()));
  meta.append(buf, 4);
  std::string meta_path = path_ + ".meta";
  int mfd = ::open(meta_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (mfd < 0) return Status::IOError(std::strerror(errno));
  Status s;
  if (::write(mfd, meta.data(), meta.size()) !=
      static_cast<ssize_t>(meta.size())) {
    s = Status::IOError(std::strerror(errno));
  } else if (::fsync(mfd) != 0) {
    s = Status::IOError(std::strerror(errno));
  }
  ::close(mfd);
  return s;
}

void DiskManager::LoadCleanShutdownMeta() {
  std::string meta_path = path_ + ".meta";
  int mfd = ::open(meta_path.c_str(), O_RDONLY);
  if (mfd < 0) return;  // no sidecar: last shutdown was not clean
  std::string meta;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(mfd, chunk, sizeof(chunk))) > 0) {
    meta.append(chunk, static_cast<size_t>(n));
  }
  ::close(mfd);
  // Consume-once: whatever happens next, a future (crash) reopen must not
  // trust this sidecar again.
  (void)::unlink(meta_path.c_str());
  if (meta.size() < sizeof(kMetaMagic) + 12) return;
  if (std::memcmp(meta.data(), kMetaMagic, sizeof(kMetaMagic)) != 0) return;
  uint32_t crc = LoadU32(meta.data() + meta.size() - 4);
  if (Crc32(meta.data(), meta.size() - 4) != crc) return;
  uint32_t pages = LoadU32(meta.data() + sizeof(kMetaMagic));
  uint32_t n_free = LoadU32(meta.data() + sizeof(kMetaMagic) + 4);
  if (meta.size() != sizeof(kMetaMagic) + 8 + static_cast<size_t>(n_free) * 4 + 4) {
    return;
  }
  if (pages > file_pages_) file_pages_ = pages;
  free_list_.clear();
  free_set_.clear();
  for (uint32_t i = 0; i < n_free; ++i) {
    PageId id = LoadU32(meta.data() + sizeof(kMetaMagic) + 8 + i * 4);
    if (id >= file_pages_) continue;
    if (free_set_.insert(id).second) free_list_.push_back(id);
  }
}

Status DiskManager::WritePageLocked(PageId page_id, const char* data) {
  if (injector_ != nullptr) {
    FaultInjector::Hit hit;
    BULKDEL_RETURN_IF_ERROR(injector_->CheckWrite(
        fault_sites::kDiskWrite, &hit, "page " + std::to_string(page_id)));
    if (hit.fire) {
      // The crash interrupted this write mid-page: a prefix of the new bytes
      // reaches the medium, the tail keeps its previous content.
      Status bounds = CheckBounds(page_id);
      size_t n = hit.mode == FaultMode::kTornWrite ? kPageSize / 2
                                                   : hit.rng % kPageSize;
      if (bounds.ok() && n > 0) {
        if (fd_ < 0) {
          std::memcpy(pages_[page_id].get(), data, n);
        } else {
          (void)::pwrite(fd_, data, n, static_cast<off_t>(page_id) * kPageSize);
        }
      }
      return injector_->TrippedError();
    }
  }
  BULKDEL_RETURN_IF_ERROR(CheckBounds(page_id));
  Account(page_id, /*is_write=*/true);
  if (fd_ < 0) {
    std::memcpy(pages_[page_id].get(), data, kPageSize);
    return Status::OK();
  }
  ssize_t n = ::pwrite(fd_, data, kPageSize,
                       static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(std::strerror(errno));
  }
  return Status::OK();
}

uint32_t DiskManager::NumAllocatedPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ < 0 ? static_cast<uint32_t>(pages_.size()) : file_pages_;
}

uint32_t DiskManager::NumFreePages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(free_list_.size());
}

IoStats DiskManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void DiskManager::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = IoStats();
  last_accessed_ = kInvalidPageId;
}

Status DiskManager::CheckBounds(PageId page_id) const {
  uint32_t limit = fd_ < 0 ? static_cast<uint32_t>(pages_.size()) : file_pages_;
  if (page_id >= limit) {
    return Status::InvalidArgument("page id " + std::to_string(page_id) +
                                   " out of bounds (" + std::to_string(limit) +
                                   " pages)");
  }
  return Status::OK();
}

void DiskManager::Account(PageId page_id, bool is_write) {
  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  // Sequential if the head is already at or directly before this page.
  bool sequential =
      last_accessed_ != kInvalidPageId &&
      (page_id == last_accessed_ || page_id == last_accessed_ + 1);
  if (sequential) {
    ++stats_.sequential_accesses;
    stats_.simulated_micros += model_.sequential_page_micros;
  } else {
    ++stats_.random_accesses;
    stats_.simulated_micros += model_.random_page_micros;
  }
  last_accessed_ = page_id;

  // Attributed accounting: classify against the attribution's *own* head so
  // a phase's seq/random profile does not depend on how concurrent phases
  // interleave on the shared global head.
  IoAttribution* attr = tls_attribution_;
  if (attr == nullptr) return;
  if (is_write) {
    attr->writes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    attr->reads_.fetch_add(1, std::memory_order_relaxed);
  }
  bool attr_sequential =
      attr->last_accessed_ != kInvalidPageId &&
      (page_id == attr->last_accessed_ || page_id == attr->last_accessed_ + 1);
  if (attr_sequential) {
    attr->sequential_.fetch_add(1, std::memory_order_relaxed);
    attr->simulated_micros_.fetch_add(model_.sequential_page_micros,
                                      std::memory_order_relaxed);
  } else {
    attr->random_.fetch_add(1, std::memory_order_relaxed);
    attr->simulated_micros_.fetch_add(model_.random_page_micros,
                                      std::memory_order_relaxed);
  }
  attr->last_accessed_ = page_id;
}

}  // namespace bulkdel

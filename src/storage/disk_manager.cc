#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace_recorder.h"

namespace bulkdel {

thread_local IoAttribution* DiskManager::tls_attribution_ = nullptr;

DiskManager::AttributionScope::AttributionScope(IoAttribution* attribution)
    : previous_(tls_attribution_) {
  tls_attribution_ = attribution;
}

DiskManager::AttributionScope::~AttributionScope() {
  tls_attribution_ = previous_;
}

DiskManager::DiskManager(DiskModel model) : model_(model) {}

DiskManager::DiskManager(const std::string& path, bool truncate,
                         DiskModel model)
    : model_(model) {
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  // A failed open leaves fd_ == -1; the first I/O reports the error. Existing
  // file contents define the page count.
  if (fd_ >= 0) {
    off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size > 0) file_pages_ = static_cast<uint32_t>(size / kPageSize);
  }
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<PageId> DiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  if (injector_ != nullptr && injector_->tripped()) {
    return injector_->TrippedError();
  }
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    free_set_.erase(id);
    if (fd_ < 0) {
      std::memset(pages_[id].get(), 0, kPageSize);
    }
    return id;
  }
  if (fd_ < 0) {
    PageId id = static_cast<PageId>(pages_.size());
    auto page = std::make_unique<char[]>(kPageSize);
    std::memset(page.get(), 0, kPageSize);
    pages_.push_back(std::move(page));
    return id;
  }
  PageId id = file_pages_++;
  return id;
}

Status DiskManager::FreePage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (injector_ != nullptr && injector_->tripped()) {
    return injector_->TrippedError();
  }
  BULKDEL_RETURN_IF_ERROR(CheckBounds(page_id));
  if (!free_set_.insert(page_id).second) return Status::OK();  // already free
  free_list_.push_back(page_id);
  return Status::OK();
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadPageLocked(page_id, out);
}

Status DiskManager::ReadPageLocked(PageId page_id, char* out) {
  if (injector_ != nullptr) {
    BULKDEL_RETURN_IF_ERROR(injector_->Check(fault_sites::kDiskRead));
  }
  BULKDEL_RETURN_IF_ERROR(CheckBounds(page_id));
  Account(page_id, /*is_write=*/false);
  if (fd_ < 0) {
    std::memcpy(out, pages_[page_id].get(), kPageSize);
    return Status::OK();
  }
  ssize_t n = ::pread(fd_, out, kPageSize,
                      static_cast<off_t>(page_id) * kPageSize);
  if (n < 0) return Status::IOError(std::strerror(errno));
  if (n < static_cast<ssize_t>(kPageSize)) {
    // Page beyond current file end (allocated but never written): zeros.
    std::memset(out + n, 0, kPageSize - n);
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const char* data) {
  std::lock_guard<std::mutex> lock(mu_);
  return WritePageLocked(page_id, data);
}

Status DiskManager::ReadPagePrefetch(PageId page_id, char* out) {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadPagePrefetchLocked(page_id, out);
}

Status DiskManager::ReadRunPrefetch(PageId first,
                                    const std::vector<char*>& outs) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < outs.size(); ++i) {
    BULKDEL_RETURN_IF_ERROR(
        ReadPagePrefetchLocked(first + static_cast<PageId>(i), outs[i]));
  }
  return Status::OK();
}

Status DiskManager::ReadPagePrefetchLocked(PageId page_id, char* out) {
  // No fault-site check and no accounting: the simulated charge (and the
  // read fault check) happen in ChargePrefetchedRead when a demand fetch
  // consumes the page. A tripped injector still fails the physical read so
  // prefetching stops with everything else.
  if (injector_ != nullptr && injector_->tripped()) {
    return injector_->TrippedError();
  }
  BULKDEL_RETURN_IF_ERROR(CheckBounds(page_id));
  if (fd_ < 0) {
    std::memcpy(out, pages_[page_id].get(), kPageSize);
    return Status::OK();
  }
  ssize_t n = ::pread(fd_, out, kPageSize,
                      static_cast<off_t>(page_id) * kPageSize);
  if (n < 0) return Status::IOError(std::strerror(errno));
  if (n < static_cast<ssize_t>(kPageSize)) {
    std::memset(out + n, 0, kPageSize - n);
  }
  return Status::OK();
}

Status DiskManager::ChargePrefetchedRead(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (injector_ != nullptr) {
    BULKDEL_RETURN_IF_ERROR(injector_->Check(fault_sites::kDiskRead));
  }
  BULKDEL_RETURN_IF_ERROR(CheckBounds(page_id));
  Account(page_id, /*is_write=*/false);
  return Status::OK();
}

void DiskManager::SetMetrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  write_runs_counter_ =
      metrics != nullptr ? metrics->counter(obs::metric_names::kDiskWriteRuns)
                         : nullptr;
}

Status DiskManager::WriteRun(PageId first, const std::vector<const char*>& datas) {
  obs::TraceSpan span(obs::TraceCategory::kDisk, "disk.write_run", "pages");
  span.set_arg(static_cast<int64_t>(datas.size()));
  std::lock_guard<std::mutex> lock(mu_);
  if (write_runs_counter_ != nullptr) write_runs_counter_->Add(1);
  for (size_t i = 0; i < datas.size(); ++i) {
    BULKDEL_RETURN_IF_ERROR(
        WritePageLocked(first + static_cast<PageId>(i), datas[i]));
  }
  return Status::OK();
}

Status DiskManager::WritePageLocked(PageId page_id, const char* data) {
  if (injector_ != nullptr) {
    FaultInjector::Hit hit;
    BULKDEL_RETURN_IF_ERROR(injector_->CheckWrite(
        fault_sites::kDiskWrite, &hit, "page " + std::to_string(page_id)));
    if (hit.fire) {
      // The crash interrupted this write mid-page: a prefix of the new bytes
      // reaches the medium, the tail keeps its previous content.
      Status bounds = CheckBounds(page_id);
      size_t n = hit.mode == FaultMode::kTornWrite ? kPageSize / 2
                                                   : hit.rng % kPageSize;
      if (bounds.ok() && n > 0) {
        if (fd_ < 0) {
          std::memcpy(pages_[page_id].get(), data, n);
        } else {
          (void)::pwrite(fd_, data, n, static_cast<off_t>(page_id) * kPageSize);
        }
      }
      return injector_->TrippedError();
    }
  }
  BULKDEL_RETURN_IF_ERROR(CheckBounds(page_id));
  Account(page_id, /*is_write=*/true);
  if (fd_ < 0) {
    std::memcpy(pages_[page_id].get(), data, kPageSize);
    return Status::OK();
  }
  ssize_t n = ::pwrite(fd_, data, kPageSize,
                       static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(std::strerror(errno));
  }
  return Status::OK();
}

uint32_t DiskManager::NumAllocatedPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ < 0 ? static_cast<uint32_t>(pages_.size()) : file_pages_;
}

uint32_t DiskManager::NumFreePages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(free_list_.size());
}

IoStats DiskManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void DiskManager::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = IoStats();
  last_accessed_ = kInvalidPageId;
}

Status DiskManager::CheckBounds(PageId page_id) const {
  uint32_t limit = fd_ < 0 ? static_cast<uint32_t>(pages_.size()) : file_pages_;
  if (page_id >= limit) {
    return Status::InvalidArgument("page id " + std::to_string(page_id) +
                                   " out of bounds (" + std::to_string(limit) +
                                   " pages)");
  }
  return Status::OK();
}

void DiskManager::Account(PageId page_id, bool is_write) {
  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  // Sequential if the head is already at or directly before this page.
  bool sequential =
      last_accessed_ != kInvalidPageId &&
      (page_id == last_accessed_ || page_id == last_accessed_ + 1);
  if (sequential) {
    ++stats_.sequential_accesses;
    stats_.simulated_micros += model_.sequential_page_micros;
  } else {
    ++stats_.random_accesses;
    stats_.simulated_micros += model_.random_page_micros;
  }
  last_accessed_ = page_id;

  // Attributed accounting: classify against the attribution's *own* head so
  // a phase's seq/random profile does not depend on how concurrent phases
  // interleave on the shared global head.
  IoAttribution* attr = tls_attribution_;
  if (attr == nullptr) return;
  if (is_write) {
    attr->writes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    attr->reads_.fetch_add(1, std::memory_order_relaxed);
  }
  bool attr_sequential =
      attr->last_accessed_ != kInvalidPageId &&
      (page_id == attr->last_accessed_ || page_id == attr->last_accessed_ + 1);
  if (attr_sequential) {
    attr->sequential_.fetch_add(1, std::memory_order_relaxed);
    attr->simulated_micros_.fetch_add(model_.sequential_page_micros,
                                      std::memory_order_relaxed);
  } else {
    attr->random_.fetch_add(1, std::memory_order_relaxed);
    attr->simulated_micros_.fetch_add(model_.random_page_micros,
                                      std::memory_order_relaxed);
  }
  attr->last_accessed_ = page_id;
}

}  // namespace bulkdel

#ifndef BULKDEL_STORAGE_DISK_MANAGER_H_
#define BULKDEL_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/disk_model.h"
#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace bulkdel {

/// Counters accumulated by the DiskManager. All page accesses in the system
/// go through here (buffer pool misses, write-backs, sort spills), so these
/// counters are the ground truth for the benchmark harness.
struct IoStats {
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t sequential_accesses = 0;
  int64_t random_accesses = 0;
  /// Simulated elapsed disk time under the DiskModel, in microseconds.
  int64_t simulated_micros = 0;

  IoStats operator-(const IoStats& other) const {
    IoStats d;
    d.reads = reads - other.reads;
    d.writes = writes - other.writes;
    d.sequential_accesses = sequential_accesses - other.sequential_accesses;
    d.random_accesses = random_accesses - other.random_accesses;
    d.simulated_micros = simulated_micros - other.simulated_micros;
    return d;
  }
};

/// Page-granular storage with allocation, a free list, and I/O accounting.
///
/// Two backings are supported:
///  * in-memory (empty path): pages live in a heap vector. This is the
///    default for tests and benchmarks — the simulated DiskModel provides
///    timing, so results are deterministic and host-independent.
///  * file-backed (non-empty path): pages are pread/pwritten to a file.
///
/// Crash semantics for the recovery tests: the DiskManager itself *is* the
/// durable medium. Simulating a crash means discarding every volatile layer
/// above it (buffer pool, catalogs) and re-opening against the same
/// DiskManager contents.
///
/// Thread safety: all public methods are internally synchronized.
class DiskManager {
 public:
  /// In-memory backing.
  explicit DiskManager(DiskModel model = DiskModel());
  /// File backing; the file is created (truncated) if `truncate` is set.
  DiskManager(const std::string& path, bool truncate,
              DiskModel model = DiskModel());
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a page (reusing a freed page if available). The page contents
  /// are zeroed. Allocation itself performs no charged I/O; the first write
  /// does.
  Result<PageId> AllocatePage();

  /// Returns a page to the free list. Freeing is a metadata operation.
  Status FreePage(PageId page_id);

  /// Reads `kPageSize` bytes of `page_id` into `out`.
  Status ReadPage(PageId page_id, char* out);

  /// Writes `kPageSize` bytes from `data` to `page_id`.
  Status WritePage(PageId page_id, const char* data);

  /// Number of pages ever allocated (high-water mark), including freed ones.
  uint32_t NumAllocatedPages() const;
  /// Pages currently on the free list.
  uint32_t NumFreePages() const;

  IoStats stats() const;
  void ResetStats();
  const DiskModel& disk_model() const { return model_; }

 private:
  Status CheckBounds(PageId page_id) const;
  /// Classifies the access against the previous head position and charges
  /// simulated time. Must be called with mu_ held.
  void Account(PageId page_id, bool is_write);

  DiskModel model_;
  mutable std::mutex mu_;

  // In-memory backing (used when fd_ < 0).
  std::vector<std::unique_ptr<char[]>> pages_;

  // File backing.
  int fd_ = -1;
  uint32_t file_pages_ = 0;

  std::vector<PageId> free_list_;
  IoStats stats_;
  PageId last_accessed_ = kInvalidPageId;
};

}  // namespace bulkdel

#endif  // BULKDEL_STORAGE_DISK_MANAGER_H_

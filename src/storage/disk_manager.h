#ifndef BULKDEL_STORAGE_DISK_MANAGER_H_
#define BULKDEL_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "fault/fault_injector.h"
#include "storage/disk_model.h"
#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace bulkdel {

namespace obs {
class Counter;
class MetricsRegistry;
}  // namespace obs

/// Counters accumulated by the DiskManager. All page accesses in the system
/// go through here (buffer pool misses, write-backs, sort spills), so these
/// counters are the ground truth for the benchmark harness.
struct IoStats {
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t sequential_accesses = 0;
  int64_t random_accesses = 0;
  /// Simulated elapsed disk time under the DiskModel, in microseconds.
  int64_t simulated_micros = 0;

  IoStats operator-(const IoStats& other) const {
    IoStats d;
    d.reads = reads - other.reads;
    d.writes = writes - other.writes;
    d.sequential_accesses = sequential_accesses - other.sequential_accesses;
    d.random_accesses = random_accesses - other.random_accesses;
    d.simulated_micros = simulated_micros - other.simulated_micros;
    return d;
  }

  IoStats& operator+=(const IoStats& other) {
    reads += other.reads;
    writes += other.writes;
    sequential_accesses += other.sequential_accesses;
    random_accesses += other.random_accesses;
    simulated_micros += other.simulated_micros;
    return *this;
  }

  IoStats operator+(const IoStats& other) const {
    IoStats s = *this;
    s += other;
    return s;
  }
};

/// A per-context I/O account. While installed on a thread (via
/// DiskManager::AttributionScope), every page access that thread performs is
/// charged here in addition to the DiskManager's global counters.
///
/// Each attribution carries its *own* disk-head position for the
/// sequential/random classification, so a phase's I/O profile is a property
/// of its page-access sequence alone — independent of how concurrently
/// running phases interleave on the shared disk. That is what makes
/// per-phase simulated time reproducible across `exec_threads` settings.
///
/// Counters are atomics: Snapshot() is safe while other threads are still
/// accounting into the same attribution.
class IoAttribution {
 public:
  IoAttribution() = default;
  IoAttribution(const IoAttribution&) = delete;
  IoAttribution& operator=(const IoAttribution&) = delete;

  IoStats Snapshot() const {
    IoStats s;
    s.reads = reads_.load(std::memory_order_relaxed);
    s.writes = writes_.load(std::memory_order_relaxed);
    s.sequential_accesses = sequential_.load(std::memory_order_relaxed);
    s.random_accesses = random_.load(std::memory_order_relaxed);
    s.simulated_micros = simulated_micros_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  friend class DiskManager;
  std::atomic<int64_t> reads_{0};
  std::atomic<int64_t> writes_{0};
  std::atomic<int64_t> sequential_{0};
  std::atomic<int64_t> random_{0};
  std::atomic<int64_t> simulated_micros_{0};
  /// Private head position for seq/random classification. Only mutated under
  /// the DiskManager mutex.
  PageId last_accessed_ = kInvalidPageId;
};

/// Page-granular storage with allocation, a free list, and I/O accounting.
///
/// Two backings are supported:
///  * in-memory (empty path): pages live in a heap vector. This is the
///    default for tests and benchmarks — the simulated DiskModel provides
///    timing, so results are deterministic and host-independent.
///  * file-backed (non-empty path): pages are pread/pwritten to a file.
///
/// Crash semantics for the recovery tests: the DiskManager itself *is* the
/// durable medium. Simulating a crash means discarding every volatile layer
/// above it (buffer pool, catalogs) and re-opening against the same
/// DiskManager contents.
///
/// Thread safety: all public methods are internally synchronized.
class DiskManager {
 public:
  /// Installs `attribution` as the calling thread's I/O account for the
  /// scope's lifetime. Scopes nest: the innermost installed attribution
  /// receives the charges, and the previous one is restored on destruction.
  /// The attribution pointer must outlive the scope.
  class AttributionScope {
   public:
    // Defined out of line: the thread-local slot must only be touched from
    // the translation unit that defines it (keeps TLS-wrapper codegen and
    // sanitizer instrumentation in one place).
    explicit AttributionScope(IoAttribution* attribution);
    ~AttributionScope();
    AttributionScope(const AttributionScope&) = delete;
    AttributionScope& operator=(const AttributionScope&) = delete;

   private:
    IoAttribution* previous_;
  };

  /// In-memory backing.
  explicit DiskManager(DiskModel model = DiskModel());
  /// File backing; the file is created (truncated) if `truncate` is set.
  DiskManager(const std::string& path, bool truncate,
              DiskModel model = DiskModel());
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a page (reusing a freed page if available). The page contents
  /// are zeroed. Allocation itself performs no charged I/O; the first write
  /// does.
  Result<PageId> AllocatePage();

  /// Returns a page to the free list. Freeing is a metadata operation.
  /// Idempotent: freeing an already-free page is a no-op. Recovery rolls an
  /// interrupted bulk delete forward by re-running its phases, and a re-run
  /// may re-free a leaf whose free preceded the crash while the page write
  /// unlinking it did not — the second free must not duplicate the page in
  /// the free list (a duplicate would later be allocated twice).
  Status FreePage(PageId page_id);

  /// Reads `kPageSize` bytes of `page_id` into `out`.
  Status ReadPage(PageId page_id, char* out);

  /// Writes `kPageSize` bytes from `data` to `page_id`.
  Status WritePage(PageId page_id, const char* data);

  /// Physically reads `page_id` WITHOUT charging simulated I/O or checking
  /// the read fault site. The buffer pool's read-ahead uses this: the charge
  /// is deferred to ChargePrefetchedRead() at the moment a demand fetch
  /// consumes the page, so the simulated cost sequence stays exactly the
  /// demand-access sequence regardless of how far ahead the pool reads.
  Status ReadPagePrefetch(PageId page_id, char* out);

  /// ReadPagePrefetch over the contiguous run [first, first + outs.size())
  /// under a single mutex acquisition.
  Status ReadRunPrefetch(PageId first, const std::vector<char*>& outs);

  /// Charges the simulated read of `page_id` as if ReadPage ran now: fault
  /// check, accounting and sequential/random classification against the
  /// current head, into the calling thread's installed IoAttribution. Called
  /// by the buffer pool when a demand fetch consumes a prefetched frame.
  Status ChargePrefetchedRead(PageId page_id);

  /// Writes the contiguous run [first, first + datas.size()) under a single
  /// mutex acquisition; the per-page accounting and fault semantics match the
  /// equivalent sequence of WritePage calls exactly (a torn/short fault still
  /// mangles only the page it fires on and fails there). With the file
  /// backing, the verified pages go out as one pwritev(2) vectored write.
  /// Used by the buffer pool's coalesced write-behind and checkpoint sweeps.
  Status WriteRun(PageId first, const std::vector<const char*>& datas);

  /// Durability barrier: forces every written page to the medium (fsync(2)
  /// with the file backing; a charged no-op for the in-memory backing so the
  /// `disk.sync` fault site and disk.syncs counter fire identically on both).
  /// Called at checkpoint/commit barriers.
  Status Flush();

  /// Clean-shutdown protocol for the file backing: fsyncs the page file and
  /// writes a checksummed meta sidecar (`<path>.meta`) carrying the
  /// allocation high-water mark and free list. A non-truncating reopen
  /// consumes and *deletes* the sidecar, so only a cleanly closed file ever
  /// restores its free list — a crash reopen finds no sidecar and safely
  /// leaks the free pages instead of risking double allocation. No-op for
  /// the in-memory backing.
  Status MarkCleanShutdown();

  /// Number of pages ever allocated (high-water mark), including freed ones.
  uint32_t NumAllocatedPages() const;
  /// Pages currently on the free list.
  uint32_t NumFreePages() const;

  IoStats stats() const;
  void ResetStats();
  const DiskModel& disk_model() const { return model_; }

  /// Installs a fault injector on the read/write paths (nullptr = none; the
  /// injector must outlive the DiskManager). Reads and whole-page writes
  /// check the `disk.read` / `disk.write` sites; a firing `disk.write` in
  /// torn/short mode leaves the page partially updated before failing, and a
  /// tripped injector fails every later operation including alloc/free (a
  /// dead process performs no metadata updates either).
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// Resolves the disk's metric instruments (disk.write_runs) from `metrics`
  /// (nullptr = none; the registry must outlive the DiskManager). Metrics
  /// and trace events never feed back into the simulated I/O model.
  void SetMetrics(obs::MetricsRegistry* metrics);

 private:
  Status CheckBounds(PageId page_id) const;
  /// Single-page read/write bodies; must be called with mu_ held.
  Status ReadPageLocked(PageId page_id, char* out);
  Status WritePageLocked(PageId page_id, const char* data);
  /// Raw data movement with bounds check only (no charge, no fault site);
  /// must be called with mu_ held.
  Status ReadPagePrefetchLocked(PageId page_id, char* out);
  /// Classifies the access against the previous head position and charges
  /// simulated time, both globally and into the calling thread's installed
  /// IoAttribution (if any). Must be called with mu_ held.
  void Account(PageId page_id, bool is_write);

  /// The calling thread's current I/O account (nullptr = global only).
  static thread_local IoAttribution* tls_attribution_;

  /// Loads the clean-shutdown sidecar (if present and valid) and deletes it;
  /// called from the non-truncating file constructor.
  void LoadCleanShutdownMeta();

  DiskModel model_;
  FaultInjector* injector_ = nullptr;
  obs::Counter* write_runs_counter_ = nullptr;
  obs::Counter* syncs_counter_ = nullptr;
  mutable std::mutex mu_;

  // In-memory backing (used when fd_ < 0).
  std::vector<std::unique_ptr<char[]>> pages_;

  // File backing.
  std::string path_;
  int fd_ = -1;
  uint32_t file_pages_ = 0;

  std::vector<PageId> free_list_;
  /// Mirror of free_list_ for O(1) double-free detection.
  std::unordered_set<PageId> free_set_;
  IoStats stats_;
  PageId last_accessed_ = kInvalidPageId;
};

}  // namespace bulkdel

#endif  // BULKDEL_STORAGE_DISK_MANAGER_H_

#ifndef BULKDEL_STORAGE_SPILL_H_
#define BULKDEL_STORAGE_SPILL_H_

#include <cstring>
#include <type_traits>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/result.h"

namespace bulkdel {

/// A vector of trivially-copyable records materialized to disk pages.
///
/// Used (a) by the range-partitioned hash plan to stage partitions that do
/// not fit the memory budget, and (b) by the recovery manager to make the
/// intermediate delete lists durable, so an interrupted bulk delete can be
/// rolled *forward* after a crash (paper §3.2: "the results of the join
/// variants should be materialized to stable storage").
template <typename T>
struct SpilledList {
  std::vector<PageId> pages;
  uint64_t count = 0;

  static constexpr size_t kItemsPerPage = kPageSize / sizeof(T);
};

template <typename T>
Result<SpilledList<T>> SpillToDisk(DiskManager* disk,
                                   const std::vector<T>& items) {
  static_assert(std::is_trivially_copyable_v<T>);
  SpilledList<T> list;
  list.count = items.size();
  char page[kPageSize];
  for (size_t i = 0; i < items.size(); i += SpilledList<T>::kItemsPerPage) {
    size_t n = std::min(SpilledList<T>::kItemsPerPage, items.size() - i);
    std::memset(page, 0, kPageSize);
    std::memcpy(page, items.data() + i, n * sizeof(T));
    BULKDEL_ASSIGN_OR_RETURN(PageId id, disk->AllocatePage());
    BULKDEL_RETURN_IF_ERROR(disk->WritePage(id, page));
    list.pages.push_back(id);
  }
  return list;
}

template <typename T>
Result<std::vector<T>> ReadSpilled(DiskManager* disk,
                                   const SpilledList<T>& list) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<T> items;
  items.resize(list.count);
  char page[kPageSize];
  size_t i = 0;
  for (PageId id : list.pages) {
    BULKDEL_RETURN_IF_ERROR(disk->ReadPage(id, page));
    size_t n = std::min(SpilledList<T>::kItemsPerPage,
                        static_cast<size_t>(list.count) - i);
    std::memcpy(items.data() + i, page, n * sizeof(T));
    i += n;
  }
  return items;
}

template <typename T>
Status FreeSpilled(DiskManager* disk, SpilledList<T>* list) {
  for (PageId id : list->pages) {
    BULKDEL_RETURN_IF_ERROR(disk->FreePage(id));
  }
  list->pages.clear();
  list->count = 0;
  return Status::OK();
}

}  // namespace bulkdel

#endif  // BULKDEL_STORAGE_SPILL_H_

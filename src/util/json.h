#ifndef BULKDEL_UTIL_JSON_H_
#define BULKDEL_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace bulkdel {
namespace json {

/// Minimal JSON document model covering what the repo's own writers emit
/// (BulkDeleteReport::ToJson, TraceRecorder's Chrome trace export) plus
/// doubles and bools so externally produced traces still parse. Originally
/// private to core/report.cc; shared here so tools (bulkdel_tracecat) read
/// the same dialect the library writes.
struct Value {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  int64_t integer = 0;
  double number = 0.0;  ///< kDouble only; kInt keeps exact 64-bit integers
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  const Value* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  int64_t IntOr(const std::string& key, int64_t fallback = 0) const {
    const Value* v = Find(key);
    if (v == nullptr) return fallback;
    if (v->kind == Kind::kInt) return v->integer;
    if (v->kind == Kind::kDouble) return static_cast<int64_t>(v->number);
    return fallback;
  }
  double DoubleOr(const std::string& key, double fallback = 0.0) const {
    const Value* v = Find(key);
    if (v == nullptr) return fallback;
    if (v->kind == Kind::kDouble) return v->number;
    if (v->kind == Kind::kInt) return static_cast<double>(v->integer);
    return fallback;
  }
  std::string StringOr(const std::string& key,
                       const std::string& fallback = "") const {
    const Value* v = Find(key);
    return v != nullptr && v->kind == Kind::kString ? v->string : fallback;
  }
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
Result<Value> Parse(const std::string& text);

/// Appends `s` to `*out` as a quoted JSON string with escapes.
void AppendEscaped(std::string* out, const std::string& s);

}  // namespace json
}  // namespace bulkdel

#endif  // BULKDEL_UTIL_JSON_H_

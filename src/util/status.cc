#include "util/status.h"

namespace bulkdel {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeName(code_));
  result.append(": ");
  result.append(message_);
  return result;
}

}  // namespace bulkdel

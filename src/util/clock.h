#ifndef BULKDEL_UTIL_CLOCK_H_
#define BULKDEL_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace bulkdel {

/// The process-wide monotonic clock: nanoseconds on std::chrono::steady_clock.
///
/// Every host-time measurement in the system reads this one source — the
/// bench harness's Stopwatch, ExecContext's statement epoch, and the
/// TraceRecorder's span/instant timestamps — so a span's [begin, end) in an
/// exported trace is directly comparable to the wall times the benches print
/// (same origin, same rate; only the unit differs).
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline int64_t MonotonicMicros() { return MonotonicNanos() / 1000; }

}  // namespace bulkdel

#endif  // BULKDEL_UTIL_CLOCK_H_

#ifndef BULKDEL_UTIL_RELAXED_ATOMIC_H_
#define BULKDEL_UTIL_RELAXED_ATOMIC_H_

#include <atomic>

namespace bulkdel {

/// Integer counter whose every access is a relaxed atomic operation.
///
/// Planner statistics (tuple/page counts, index entry counts, tree height)
/// are read by EXPLAIN and statement planning while concurrent updater
/// transactions mutate them under the table/index latches. The values are
/// advisory — any recent un-torn value gives a valid plan — so the accesses
/// need atomicity, not ordering. Unlike std::atomic, this wrapper is
/// copyable/movable so the owning objects (HeapTable, BTree) stay movable.
template <typename T>
class RelaxedAtomic {
 public:
  constexpr RelaxedAtomic(T v = T()) : value_(v) {}
  RelaxedAtomic(const RelaxedAtomic& other) : value_(other.load()) {}
  RelaxedAtomic& operator=(const RelaxedAtomic& other) {
    store(other.load());
    return *this;
  }
  RelaxedAtomic& operator=(T v) {
    store(v);
    return *this;
  }

  operator T() const { return load(); }
  T load() const { return value_.load(std::memory_order_relaxed); }
  void store(T v) { value_.store(v, std::memory_order_relaxed); }

  RelaxedAtomic& operator++() {
    value_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedAtomic& operator--() {
    value_.fetch_sub(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedAtomic& operator+=(T v) {
    value_.fetch_add(v, std::memory_order_relaxed);
    return *this;
  }
  RelaxedAtomic& operator-=(T v) {
    value_.fetch_sub(v, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<T> value_;
};

}  // namespace bulkdel

#endif  // BULKDEL_UTIL_RELAXED_ATOMIC_H_

#ifndef BULKDEL_UTIL_STATUS_H_
#define BULKDEL_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace bulkdel {

/// Error codes used throughout the library. The library never throws; every
/// fallible operation returns a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kCorruption,
  kIOError,
  kResourceExhausted,
  kFailedPrecondition,
  kAborted,
  kNotSupported,
  kInternal,
};

/// Returns a stable human-readable name for `code` ("OK", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// A cheap, copyable success/error value. The OK status carries no message
/// and no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller. Usable only in functions that
/// return Status.
#define BULKDEL_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::bulkdel::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

}  // namespace bulkdel

#endif  // BULKDEL_UTIL_STATUS_H_

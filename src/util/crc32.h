#ifndef BULKDEL_UTIL_CRC32_H_
#define BULKDEL_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace bulkdel {

// Software CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the
// checksum guarding WAL frames. A table-driven byte-at-a-time implementation
// is plenty: frames are small and the WAL encode path is not hot relative to
// the fsync it precedes.

namespace crc32_internal {

inline const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return kTable;
}

}  // namespace crc32_internal

inline uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0) {
  const auto& table = crc32_internal::Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace bulkdel

#endif  // BULKDEL_UTIL_CRC32_H_

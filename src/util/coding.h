#ifndef BULKDEL_UTIL_CODING_H_
#define BULKDEL_UTIL_CODING_H_

#include <cstdint>
#include <cstring>

namespace bulkdel {

// Alignment-safe little-endian fixed-width load/store helpers. All on-page
// data goes through these so node layouts are well-defined bytes, not
// reinterpret-casted structs.

inline void StoreU16(void* dst, uint16_t v) { std::memcpy(dst, &v, sizeof(v)); }
inline void StoreU32(void* dst, uint32_t v) { std::memcpy(dst, &v, sizeof(v)); }
inline void StoreU64(void* dst, uint64_t v) { std::memcpy(dst, &v, sizeof(v)); }
inline void StoreI64(void* dst, int64_t v) { std::memcpy(dst, &v, sizeof(v)); }

inline uint16_t LoadU16(const void* src) {
  uint16_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
inline uint32_t LoadU32(const void* src) {
  uint32_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
inline uint64_t LoadU64(const void* src) {
  uint64_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
inline int64_t LoadI64(const void* src) {
  int64_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

}  // namespace bulkdel

#endif  // BULKDEL_UTIL_CODING_H_

#ifndef BULKDEL_UTIL_RANDOM_H_
#define BULKDEL_UTIL_RANDOM_H_

#include <cstdint>

namespace bulkdel {

/// Small, fast, deterministic PRNG (xorshift128+). Used by the workload
/// generator and the tests so every run is reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 to derive two non-zero state words from any seed.
    s_[0] = SplitMix(&seed);
    s_[1] = SplitMix(&seed);
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability p (0..1).
  bool Bernoulli(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace bulkdel

#endif  // BULKDEL_UTIL_RANDOM_H_

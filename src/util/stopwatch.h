#ifndef BULKDEL_UTIL_STOPWATCH_H_
#define BULKDEL_UTIL_STOPWATCH_H_

#include <cstdint>

#include "util/clock.h"

namespace bulkdel {

/// Wall-clock stopwatch for the benchmark harness. Reads the same monotonic
/// clock as the TraceRecorder (util/clock.h), so bench timings and exported
/// span times are directly comparable.
class Stopwatch {
 public:
  Stopwatch() : start_nanos_(MonotonicNanos()) {}

  void Restart() { start_nanos_ = MonotonicNanos(); }

  /// Elapsed wall time in microseconds since construction/Restart().
  int64_t ElapsedMicros() const {
    return (MonotonicNanos() - start_nanos_) / 1000;
  }

  int64_t ElapsedNanos() const { return MonotonicNanos() - start_nanos_; }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  int64_t start_nanos_;
};

}  // namespace bulkdel

#endif  // BULKDEL_UTIL_STOPWATCH_H_

#ifndef BULKDEL_UTIL_STOPWATCH_H_
#define BULKDEL_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace bulkdel {

/// Wall-clock stopwatch for the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed wall time in microseconds since construction/Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bulkdel

#endif  // BULKDEL_UTIL_STOPWATCH_H_

#include "util/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/status.h"

namespace bulkdel {
namespace json {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> Run() {
    BULKDEL_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::InvalidArgument(std::string("expected '") + c +
                                     "' at offset " + std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  bool ConsumeLiteral(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Result<Value> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    Value v;
    if (ConsumeLiteral("true")) {
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (ConsumeLiteral("false")) {
      v.kind = Value::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (ConsumeLiteral("null")) return v;
    return Status::InvalidArgument("unexpected character in JSON at offset " +
                                   std::to_string(pos_));
  }

  Result<Value> ParseObject() {
    BULKDEL_RETURN_IF_ERROR(Expect('{'));
    Value v;
    v.kind = Value::Kind::kObject;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      BULKDEL_ASSIGN_OR_RETURN(Value key, ParseString());
      BULKDEL_RETURN_IF_ERROR(Expect(':'));
      BULKDEL_ASSIGN_OR_RETURN(Value value, ParseValue());
      v.object.emplace(std::move(key.string), std::move(value));
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      BULKDEL_RETURN_IF_ERROR(Expect('}'));
      return v;
    }
  }

  Result<Value> ParseArray() {
    BULKDEL_RETURN_IF_ERROR(Expect('['));
    Value v;
    v.kind = Value::Kind::kArray;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      BULKDEL_ASSIGN_OR_RETURN(Value item, ParseValue());
      v.array.push_back(std::move(item));
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      BULKDEL_RETURN_IF_ERROR(Expect(']'));
      return v;
    }
  }

  Result<Value> ParseString() {
    BULKDEL_RETURN_IF_ERROR(Expect('"'));
    Value v;
    v.kind = Value::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        v.string.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("dangling escape in JSON string");
      }
      char e = text_[pos_++];
      switch (e) {
        case '"':
          v.string.push_back('"');
          break;
        case '\\':
          v.string.push_back('\\');
          break;
        case '/':
          v.string.push_back('/');
          break;
        case 'n':
          v.string.push_back('\n');
          break;
        case 'r':
          v.string.push_back('\r');
          break;
        case 't':
          v.string.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("truncated \\u escape");
          }
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code += h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              code += h - 'A' + 10;
            } else {
              return Status::InvalidArgument("bad \\u escape");
            }
          }
          // Control characters only (all the library's writers emit); wider
          // code points would need UTF-8 encoding.
          v.string.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Status::InvalidArgument("unknown escape in JSON string");
      }
    }
    BULKDEL_RETURN_IF_ERROR(Expect('"'));
    return v;
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    bool negative = false;
    if (text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Status::InvalidArgument("malformed number in JSON");
    }
    uint64_t magnitude = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      magnitude = magnitude * 10 + static_cast<uint64_t>(text_[pos_] - '0');
      ++pos_;
    }
    bool fractional = false;
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      fractional = true;
      // Accept the full numeric grammar and let strtod do the work.
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
    }
    Value v;
    if (fractional) {
      v.kind = Value::Kind::kDouble;
      v.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                             nullptr);
    } else {
      v.kind = Value::Kind::kInt;
      v.integer = negative ? -static_cast<int64_t>(magnitude)
                           : static_cast<int64_t>(magnitude);
    }
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(const std::string& text) { return Parser(text).Run(); }

}  // namespace json
}  // namespace bulkdel

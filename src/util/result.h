#ifndef BULKDEL_UTIL_RESULT_H_
#define BULKDEL_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace bulkdel {

/// Status-or-value. `Result<T>` is either an OK status with a T, or a non-OK
/// status with no value. Accessing value() on an error aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from a non-OK status: failure. Constructing from an OK status
  /// without a value is a programming error.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out; the Result must be OK.
  T TakeValue() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error Result; binds the value to `lhs` on success.
#define BULKDEL_ASSIGN_OR_RETURN(lhs, expr)       \
  auto BULKDEL_CONCAT_(_res_, __LINE__) = (expr); \
  if (!BULKDEL_CONCAT_(_res_, __LINE__).ok())     \
    return BULKDEL_CONCAT_(_res_, __LINE__).status(); \
  lhs = BULKDEL_CONCAT_(_res_, __LINE__).TakeValue()

#define BULKDEL_CONCAT_(a, b) BULKDEL_CONCAT_IMPL_(a, b)
#define BULKDEL_CONCAT_IMPL_(a, b) a##b

}  // namespace bulkdel

#endif  // BULKDEL_UTIL_RESULT_H_

#include "core/phase_scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/database.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"

namespace bulkdel {

namespace {

/// Dispatch instruments, resolved once per run. Tests drive the scheduler
/// without a database; the null instruments then make recording a no-op.
struct DispatchMetrics {
  obs::Counter* dispatched = nullptr;
  obs::Histogram* queue_depth = nullptr;

  static DispatchMetrics For(ExecContext* ctx) {
    DispatchMetrics m;
    Database* db = ctx->db();
    if (db == nullptr) return m;
    m.dispatched =
        db->metrics().counter(obs::metric_names::kSchedPhasesDispatched);
    m.queue_depth =
        db->metrics().histogram(obs::metric_names::kSchedQueueDepth);
    return m;
  }

  /// `depth` counts the ready set at dispatch, including the dispatched
  /// task (the serial path materializes one ready task at a time).
  void Dispatch(const PhaseTask& task, int64_t depth) const {
    if (dispatched != nullptr) {
      dispatched->Add(1);
      queue_depth->Observe(depth);
    }
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    if (recorder.enabled()) {
      recorder.RecordInstant(obs::TraceCategory::kSched, task.label,
                             "queue_depth", depth);
    }
  }
};

/// `sched.phase_start` injection site, hit once per dispatched phase body on
/// the thread that is about to run it (serial and worker-pool paths alike).
/// Tests drive the scheduler without a database; then there is no injector.
Status CheckDispatchFault(ExecContext* ctx, const PhaseTask& task) {
  Database* db = ctx->db();
  if (db == nullptr) return Status::OK();
  return db->CheckFault(fault_sites::kSchedPhaseStart, task.label);
}

Status ValidateDag(const std::vector<PhaseTask>& tasks) {
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (int dep : tasks[i].deps) {
      if (dep < 0 || dep >= static_cast<int>(i)) {
        return Status::Internal("phase DAG is not in topological order: task " +
                                std::to_string(i) + " (" + tasks[i].label +
                                ") depends on " + std::to_string(dep));
      }
    }
    if (!tasks[i].body) {
      return Status::Internal("phase task " + tasks[i].label + " has no body");
    }
  }
  return Status::OK();
}

Status RunSerial(const std::vector<PhaseTask>& tasks, ExecContext* ctx) {
  DispatchMetrics metrics = DispatchMetrics::For(ctx);
  for (const PhaseTask& task : tasks) {
    if (ctx->cancelled()) return ctx->cancel_cause();
    metrics.Dispatch(task, 1);
    Status s = CheckDispatchFault(ctx, task);
    if (s.ok()) s = task.body();
    if (!s.ok()) {
      ctx->RequestCancel(s);
      return s;
    }
  }
  return Status::OK();
}

/// Shared state of one parallel run, guarded by `mu`.
struct RunState {
  std::mutex mu;
  std::condition_variable ready_cv;
  std::vector<int> pending_deps;   // per task; -1 once dispatched
  std::vector<std::vector<int>> dependents;
  std::vector<int> ready;          // kept sorted descending; pop_back = min
  size_t completed = 0;
  bool aborted = false;
};

void MarkReady(RunState* state, int task) {
  // Insert keeping descending order so the smallest index is at the back —
  // the pool prefers the canonical serial order when several are ready.
  auto it = std::lower_bound(state->ready.begin(), state->ready.end(), task,
                             std::greater<int>());
  state->ready.insert(it, task);
}

Status RunParallel(const std::vector<PhaseTask>& tasks, int threads,
                   ExecContext* ctx) {
  DispatchMetrics metrics = DispatchMetrics::For(ctx);
  RunState state;
  state.pending_deps.resize(tasks.size());
  state.dependents.resize(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    state.pending_deps[i] = static_cast<int>(tasks[i].deps.size());
    for (int dep : tasks[i].deps) {
      state.dependents[dep].push_back(static_cast<int>(i));
    }
    if (state.pending_deps[i] == 0) MarkReady(&state, static_cast<int>(i));
  }

  auto worker = [&] {
    std::unique_lock<std::mutex> lock(state.mu);
    while (true) {
      state.ready_cv.wait(lock, [&] {
        return !state.ready.empty() || state.aborted ||
               state.completed == tasks.size();
      });
      if (state.aborted || state.completed == tasks.size()) return;
      if (ctx->cancelled()) {
        state.aborted = true;
        state.ready_cv.notify_all();
        return;
      }
      int task = state.ready.back();
      state.ready.pop_back();
      int64_t depth = static_cast<int64_t>(state.ready.size()) + 1;
      lock.unlock();

      metrics.Dispatch(tasks[static_cast<size_t>(task)], depth);
      Status s = CheckDispatchFault(ctx, tasks[static_cast<size_t>(task)]);
      if (s.ok()) s = tasks[static_cast<size_t>(task)].body();

      lock.lock();
      if (!s.ok()) {
        ctx->RequestCancel(s);
        state.aborted = true;
        state.ready_cv.notify_all();
        return;
      }
      ++state.completed;
      for (int next : state.dependents[static_cast<size_t>(task)]) {
        if (--state.pending_deps[static_cast<size_t>(next)] == 0) {
          MarkReady(&state, next);
        }
      }
      state.ready_cv.notify_all();
      if (state.completed == tasks.size()) return;
    }
  };

  size_t n_workers =
      std::min<size_t>(static_cast<size_t>(threads), tasks.size());
  std::vector<std::thread> pool;
  pool.reserve(n_workers);
  for (size_t i = 0; i < n_workers; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  if (ctx->cancelled()) return ctx->cancel_cause();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.completed != tasks.size()) {
      return Status::Internal("phase scheduler deadlock: " +
                              std::to_string(state.completed) + "/" +
                              std::to_string(tasks.size()) +
                              " phases completed");
    }
  }
  return Status::OK();
}

}  // namespace

Status PhaseScheduler::Run(std::vector<PhaseTask> tasks, int threads,
                           ExecContext* ctx) {
  BULKDEL_RETURN_IF_ERROR(ValidateDag(tasks));
  if (tasks.empty()) return Status::OK();
  if (threads <= 1) return RunSerial(tasks, ctx);
  return RunParallel(tasks, threads, ctx);
}

}  // namespace bulkdel

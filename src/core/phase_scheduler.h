#ifndef BULKDEL_CORE_PHASE_SCHEDULER_H_
#define BULKDEL_CORE_PHASE_SCHEDULER_H_

#include <functional>
#include <string>
#include <vector>

#include "core/exec_context.h"
#include "util/status.h"

namespace bulkdel {

/// One node of an executable phase DAG.
struct PhaseTask {
  std::string label;
  /// Indices (into the task vector) of tasks that must complete first. Every
  /// dep must point at an *earlier* task, i.e. the vector is listed in a
  /// valid topological order — the canonical serial execution order.
  std::vector<int> deps;
  std::function<Status()> body;
};

/// Topological scheduler for a statement's phase DAG.
///
/// With `threads <= 1` the tasks run inline on the calling thread in vector
/// order, which by construction is the historical serial order — byte-for-
/// byte identical behavior to the old linear step list, including checkpoint
/// ordering. With more threads, a worker pool executes every task whose
/// dependencies are satisfied, preferring lower indices, so independent
/// phases (the per-secondary-index feeds) overlap.
///
/// Error handling: the first failing task cancels the context; tasks not yet
/// started are skipped, running tasks finish, and the first error is
/// returned.
class PhaseScheduler {
 public:
  static Status Run(std::vector<PhaseTask> tasks, int threads,
                    ExecContext* ctx);
};

}  // namespace bulkdel

#endif  // BULKDEL_CORE_PHASE_SCHEDULER_H_

#ifndef BULKDEL_CORE_EXEC_CONTEXT_H_
#define BULKDEL_CORE_EXEC_CONTEXT_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/report.h"
#include "storage/disk_manager.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace bulkdel {

class Database;

/// Per-statement execution context threaded through every executor: the
/// database handle, the statement-relative clock, per-phase I/O attribution,
/// and a cooperative cancel flag.
///
/// One ExecContext lives for exactly one statement (BulkDelete / BulkUpdate /
/// recovery resume). Phases — possibly overlapping, possibly on worker
/// threads — measure themselves with PhaseScope; the context collects the
/// finished PhaseStats and keeps a *root* I/O attribution installed on the
/// statement thread so pages touched outside any phase are still charged to
/// the statement.
///
/// All methods are thread-safe.
class ExecContext {
 public:
  /// Must be constructed (and destructed) on the statement thread: the root
  /// I/O attribution is installed on the constructing thread for the
  /// context's lifetime.
  explicit ExecContext(Database* db);
  ~ExecContext() = default;

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  Database* db() const { return db_; }

  // -- Cancellation -----------------------------------------------------------
  /// Flags the statement as cancelled; the first cause wins. Running phases
  /// observe the flag cooperatively (the scheduler stops dispatching new
  /// phases immediately).
  void RequestCancel(const Status& cause);
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  /// The first cancel cause, or OK if not cancelled.
  Status cancel_cause() const;

  // -- Trace ------------------------------------------------------------------
  /// Microseconds since the statement started.
  int64_t ElapsedMicros() const { return epoch_.ElapsedMicros(); }
  /// Dense per-statement ordinal of the calling thread (0 = the thread that
  /// created the context).
  int ThreadOrdinal();

  /// The obs::StatementRegistry id of the SQL statement this execution runs
  /// under, or 0 when the execution was not started through the SQL layer
  /// (benches calling BulkDelete directly, recovery). Captured from the
  /// statement thread's thread-local at construction so PhaseScope can
  /// publish the current phase from worker threads.
  uint64_t statement_id() const { return statement_id_; }

  /// Called by PhaseScope when a phase finishes; appends to the collected
  /// trace and accumulates the statement's attributed I/O total.
  void RecordPhase(PhaseStats phase);

  /// Moves the collected phase trace out (statement end).
  std::vector<PhaseStats> TakePhases();

  /// Statement I/O total: the root attribution (pages touched outside any
  /// phase) plus every recorded phase's attribution. Because each phase
  /// carries its own disk-head classification, this total is a function of
  /// the phases' page-access sequences only — identical across
  /// `exec_threads` settings for the same logical work.
  IoStats AttributedTotal() const;

 private:
  Database* db_;
  Stopwatch epoch_;
  uint64_t statement_id_ = 0;

  mutable std::mutex mu_;
  std::vector<PhaseStats> phases_;
  IoStats phase_io_total_;
  std::map<std::thread::id, int> thread_ordinals_;
  int next_ordinal_ = 0;

  std::atomic<bool> cancelled_{false};
  Status cancel_cause_;

  IoAttribution root_attribution_;
  DiskManager::AttributionScope root_scope_;
};

/// RAII measurement of one execution phase. Construct at phase start on the
/// thread that runs the phase; the destructor stamps the end time and hands
/// the finished PhaseStats to the context. Structurally nest- and
/// overlap-safe: every scope owns its own I/O attribution and stopwatch, so
/// there is no begin/end pairing to lose — a phase cannot be dropped by a
/// missing Begin or double End, and concurrent phases cannot corrupt each
/// other's deltas (the failure modes of the old scrape-the-global-counter
/// PhaseTracker). Nested scopes attribute I/O to the innermost phase.
class PhaseScope {
 public:
  PhaseScope(ExecContext* ctx, std::string name, std::string parent = {});
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  /// Sets the items-processed count recorded at scope exit.
  void set_items(uint64_t items) { items_ = items; }

 private:
  ExecContext* ctx_;
  std::string name_;
  std::string parent_;
  uint64_t items_ = 0;
  int64_t begin_micros_;
  /// Absolute MonotonicNanos at construction when the trace recorder is
  /// enabled, 0 otherwise (spans share the clock with Stopwatch).
  int64_t begin_nanos_ = 0;
  int thread_id_;
  IoAttribution attribution_;
  DiskManager::AttributionScope io_scope_;
};

}  // namespace bulkdel

#endif  // BULKDEL_CORE_EXEC_CONTEXT_H_

#ifndef BULKDEL_CORE_EXECUTORS_H_
#define BULKDEL_CORE_EXECUTORS_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/exec_context.h"
#include "core/report.h"
#include "util/stopwatch.h"

// Per-phase measurement lives in core/exec_context.h: PhaseScope owns one
// IoAttribution per phase (installed on the executing thread for the scope's
// lifetime), replacing the old PhaseTracker that scraped the DiskManager's
// global counters — a pattern that both lost phases on unbalanced Begin/End
// and broke down as soon as two phases overlapped.

namespace bulkdel {

/// Record-at-a-time execution (the paper's traditional/horizontal baseline):
/// probe the key index per key, delete the record from the table and from
/// every index before the next record.
Result<BulkDeleteReport> ExecuteTraditional(ExecContext* ctx, TableDef* table,
                                            IndexDef* key_index,
                                            const BulkDeleteSpec& spec,
                                            bool sort_first);

/// Drop every secondary index, delete traditionally using the key index,
/// then rebuild the dropped indices with external sort + bulk load.
Result<BulkDeleteReport> ExecuteDropCreate(ExecContext* ctx, TableDef* table,
                                           IndexDef* key_index,
                                           const BulkDeleteSpec& spec);

/// Vertical set-oriented execution following `plan` (the paper's
/// contribution), with optional WAL/checkpoints and concurrency protocols.
/// The plan's phase DAG is executed by a topological scheduler; with
/// `DatabaseOptions::exec_threads > 1`, independent secondary-index phases
/// run concurrently on a worker pool.
Result<BulkDeleteReport> ExecuteVertical(ExecContext* ctx, TableDef* table,
                                         IndexDef* key_index,
                                         const BulkDeleteSpec& spec,
                                         const BulkDeletePlan& plan);

/// State of an interrupted bulk delete, reassembled from the durable log by
/// the recovery manager.
struct RecoveredBulkDelete {
  uint64_t bd_id = 0;
  std::string table;
  std::string key_column;
  std::set<std::string> phases_done;
  bool committed = false;

  /// Range-predicate statement (kBegin carried [lo,hi] instead of a key
  /// list). Resume re-runs the range passes idempotently.
  bool is_range = false;
  int64_t range_lo = 0;
  int64_t range_hi = 0;
  /// Heap pages whose kExtentDrop record is durable: re-dropped (if still
  /// chained) and freed by the resumed finalize phase.
  std::vector<PageId> extent_pages;
  /// Index leaves whose kRangeLeafRun record is durable. Their frees were
  /// deferred past the (never-reached) End record, so the resumed finalize
  /// phase reclaims them; re-dropped ones show up in both lists and are
  /// freed once.
  std::vector<PageId> leaf_pages;

  struct List {
    std::vector<PageId> pages;
    uint64_t count = 0;
  };
  /// Materialized intermediate lists by label ("input-keys", "rids",
  /// "feed:<index>").
  std::map<std::string, List> lists;

  /// WAL: entries removed from the key index after its last checkpoint.
  std::vector<KeyRid> wal_index_entries;
  /// WAL: rows removed from the table after its last checkpoint, with the
  /// projected secondary-index key values.
  std::vector<std::pair<Rid, std::vector<int64_t>>> wal_rows;

  /// §3.1 concurrent-updater DML logged while indices were off-line, in
  /// statement order. These are the single source of truth for updater
  /// durability: recovery replays them idempotently over the heap and every
  /// index after the bulk delete itself has been rolled forward.
  struct UpdaterOp {
    bool is_insert = true;
    Rid rid;
    std::vector<int64_t> values;  ///< full row (int columns, schema order)
  };
  std::vector<UpdaterOp> updater_ops;
  /// Scratch pages named by kSideFileSpill records; freed (idempotently)
  /// during recovery — the ops they held are re-derived from updater_ops.
  std::vector<PageId> sidefile_pages;
};

/// Rolls an interrupted bulk delete *forward* to completion (paper §3.2).
Result<BulkDeleteReport> ResumeVertical(Database* db,
                                        const RecoveredBulkDelete& state);

/// Bulk UPDATE of one column implemented as bulk delete + bulk re-insert on
/// the affected index (paper §1's Emp.salary example).
Result<BulkDeleteReport> ExecuteBulkUpdate(ExecContext* ctx,
                                           const std::string& table,
                                           const std::string& set_column,
                                           int64_t delta,
                                           const std::string& filter_column,
                                           int64_t lo, int64_t hi);

}  // namespace bulkdel

#endif  // BULKDEL_CORE_EXECUTORS_H_

#include "core/constraints.h"

#include <algorithm>
#include <map>

#include "exec/hash_delete.h"
#include "sort/external_sort.h"

namespace bulkdel {

namespace {

/// Shared Phase-A derivation: the doomed rows' values of every column in
/// `columns`, each sorted ascending. The delete-key column is served from
/// the delete list (or the range scan) directly; all other columns share
/// ONE RID derivation (index merge lookup / range scan / hash-probed scan),
/// ONE RID sort and ONE fetch pass that projects every requested column —
/// this is the "share one sort of the key set across all FK fan-out" of
/// ROADMAP item 4. Naive mode calls this once per FK with a single column,
/// re-running the whole derivation each time (the ablation baseline).
Result<std::map<int, std::vector<int64_t>>> DeriveDoomedColumnValues(
    Database* db, TableDef* table, const BulkDeleteSpec& spec,
    const std::set<int>& columns) {
  const Schema& schema = *table->schema;
  int key_column = schema.FindColumn(spec.key_column);
  IndexDef* key_index =
      key_column >= 0 ? table->FindIndexOnColumn(key_column) : nullptr;

  std::map<int, std::vector<int64_t>> out;
  const bool want_key = columns.count(key_column) > 0;
  std::vector<int> fetch_columns;
  for (int c : columns) {
    if (c != key_column) fetch_columns.push_back(c);
  }

  std::vector<Rid> rids;
  std::vector<int64_t> keys;
  if (spec.is_range()) {
    // Range predicate: one read-only index range scan when the key column
    // is indexed, one predicate scan otherwise. An empty/inverted range
    // dooms nothing.
    if (spec.range_empty()) {
      for (int c : columns) out[c] = {};
      return out;
    }
    if (key_index != nullptr) {
      BULKDEL_RETURN_IF_ERROR(key_index->tree->RangeScan(
          spec.range_lo, spec.range_hi, [&](int64_t key, const Rid& rid) {
            if (want_key) keys.push_back(key);
            if (!fetch_columns.empty()) rids.push_back(rid);
            return Status::OK();
          }));
    } else {
      BULKDEL_RETURN_IF_ERROR(
          table->table->Scan([&](const Rid& rid, const char* tuple) {
            int64_t key =
                schema.GetInt(tuple, static_cast<size_t>(key_column));
            if (key >= spec.range_lo && key <= spec.range_hi) {
              if (want_key) keys.push_back(key);
              if (!fetch_columns.empty()) rids.push_back(rid);
            }
            return Status::OK();
          }));
      std::sort(keys.begin(), keys.end());
    }
  } else {
    std::vector<int64_t> sorted_keys = spec.keys;
    std::sort(sorted_keys.begin(), sorted_keys.end());
    if (want_key) keys = sorted_keys;
    if (!fetch_columns.empty()) {
      if (key_index != nullptr) {
        BULKDEL_RETURN_IF_ERROR(key_index->tree->MergeLookupSortedKeys(
            sorted_keys, [&](int64_t, const Rid& rid) {
              rids.push_back(rid);
              return Status::OK();
            }));
      } else {
        // No access path: one scan probing a key hash.
        U64HashSet set(sorted_keys.size());
        for (int64_t k : sorted_keys) set.Insert(static_cast<uint64_t>(k));
        BULKDEL_RETURN_IF_ERROR(
            table->table->Scan([&](const Rid& rid, const char* tuple) {
              if (set.Contains(static_cast<uint64_t>(schema.GetInt(
                      tuple, static_cast<size_t>(key_column))))) {
                rids.push_back(rid);
              }
              return Status::OK();
            }));
      }
    }
  }
  if (want_key) out[key_column] = std::move(keys);

  if (!fetch_columns.empty()) {
    BULKDEL_RETURN_IF_ERROR(
        SortRids(&db->disk(), db->options().memory_budget_bytes, &rids));
    for (int c : fetch_columns) out[c].reserve(rids.size());
    std::vector<char> tuple(schema.tuple_size());
    for (const Rid& rid : rids) {
      BULKDEL_RETURN_IF_ERROR(table->table->Get(rid, tuple.data()));
      for (int c : fetch_columns) {
        out[c].push_back(
            schema.GetInt(tuple.data(), static_cast<size_t>(c)));
      }
    }
    for (int c : fetch_columns) {
      std::sort(out[c].begin(), out[c].end());
    }
  }
  return out;
}

/// References in the child to any of `parent_values` (sorted): counted via a
/// merge pass on the child index when one exists, otherwise one hash-probed
/// scan.
Result<uint64_t> CountChildReferences(TableDef* child,
                                      int child_column,
                                      const std::vector<int64_t>& values) {
  IndexDef* child_index = child->FindIndexOnColumn(child_column);
  if (child_index != nullptr) {
    return child_index->tree->CountMatchingSortedKeys(values);
  }
  U64HashSet set(values.size());
  for (int64_t v : values) set.Insert(static_cast<uint64_t>(v));
  uint64_t count = 0;
  const Schema& schema = *child->schema;
  BULKDEL_RETURN_IF_ERROR(
      child->table->Scan([&](const Rid&, const char* tuple) {
        if (set.Contains(static_cast<uint64_t>(
                schema.GetInt(tuple, static_cast<size_t>(child_column))))) {
          ++count;
        }
        return Status::OK();
      }));
  return count;
}

}  // namespace

Status PlanForeignKeysForBulkDelete(Database* db, TableDef* table,
                                    const BulkDeleteSpec& spec,
                                    std::set<std::string>* cascade_path,
                                    CascadePlan* plan) {
  std::vector<const ForeignKeyDef*> fks;
  for (const ForeignKeyDef& fk : db->catalog().foreign_keys()) {
    if (fk.parent_table == table->name) fks.push_back(&fk);
  }
  if (fks.empty()) return Status::OK();

  // Derive the referenced columns' doomed values: shared — one RID
  // derivation + sort + fetch covering every FK — or re-run per FK when
  // fk_shared_sort is off (the bench_ablation_cascade baseline).
  std::vector<std::vector<int64_t>> values_per_fk(fks.size());
  if (db->options().fk_shared_sort) {
    std::set<int> columns;
    for (const ForeignKeyDef* fk : fks) columns.insert(fk->parent_column);
    BULKDEL_ASSIGN_OR_RETURN(
        auto by_column, DeriveDoomedColumnValues(db, table, spec, columns));
    for (size_t i = 0; i < fks.size(); ++i) {
      values_per_fk[i] = by_column[fks[i]->parent_column];
    }
  } else {
    for (size_t i = 0; i < fks.size(); ++i) {
      BULKDEL_ASSIGN_OR_RETURN(
          auto by_column,
          DeriveDoomedColumnValues(db, table, spec,
                                   {fks[i]->parent_column}));
      values_per_fk[i] = std::move(by_column[fks[i]->parent_column]);
    }
  }

  for (size_t i = 0; i < fks.size(); ++i) {
    const ForeignKeyDef* fk = fks[i];
    std::vector<int64_t>& values = values_per_fk[i];
    values.erase(std::unique(values.begin(), values.end()), values.end());
    TableDef* child = db->GetTable(fk->child_table);
    if (child == nullptr) {
      return Status::Corruption("foreign key child table " + fk->child_table +
                                " missing");
    }
    if (fk->action == FkAction::kRestrict) {
      BULKDEL_ASSIGN_OR_RETURN(
          uint64_t refs,
          CountChildReferences(child, fk->child_column, values));
      if (refs > 0) {
        return Status::FailedPrecondition(
            "bulk delete on " + table->name + " would orphan " +
            std::to_string(refs) + " row(s) of " + fk->child_table +
            " (RESTRICT)");
      }
      continue;
    }
    // CASCADE: plan the child leg, recursing first so the flattened plan
    // lists the deepest descendants ahead of their parents — and so a
    // RESTRICT anywhere down the chain still fails before any mutation.
    if (cascade_path->count(fk->child_table) > 0) {
      return Status::FailedPrecondition("cyclic cascade through table " +
                                        fk->child_table);
    }
    CascadeChildDelete leg;
    leg.table = fk->child_table;
    leg.key_column =
        child->schema->column(static_cast<size_t>(fk->child_column)).name;
    leg.keys = std::move(values);

    BulkDeleteSpec child_spec;
    child_spec.table = leg.table;
    child_spec.key_column = leg.key_column;
    child_spec.keys = leg.keys;
    child_spec.keys_sorted = true;
    cascade_path->insert(fk->child_table);
    Status child_status = PlanForeignKeysForBulkDelete(
        db, child, child_spec, cascade_path, plan);
    cascade_path->erase(fk->child_table);
    BULKDEL_RETURN_IF_ERROR(child_status);
    plan->children.push_back(std::move(leg));
  }
  return Status::OK();
}

Status CheckChildInsert(Database* db, TableDef* child_table,
                        const char* tuple) {
  for (const ForeignKeyDef* fk :
       db->catalog().ForeignKeysOf(child_table->name)) {
    int64_t value = child_table->schema->GetInt(
        tuple, static_cast<size_t>(fk->child_column));
    TableDef* parent = db->GetTable(fk->parent_table);
    if (parent == nullptr) {
      return Status::Corruption("foreign key parent table missing");
    }
    IndexDef* parent_index = parent->FindIndexOnColumn(fk->parent_column);
    if (parent_index == nullptr) {
      return Status::FailedPrecondition(
          "foreign key parent column lost its index");
    }
    BULKDEL_ASSIGN_OR_RETURN(std::vector<Rid> rids,
                             parent_index->tree->Search(value));
    if (rids.empty()) {
      return Status::FailedPrecondition(
          "insert into " + child_table->name + " violates FK: no " +
          fk->parent_table + " row with value " + std::to_string(value));
    }
  }
  return Status::OK();
}

namespace {

/// Recursive Phase A over one table's doomed row set, presented as a
/// projection callback (sorted, deduplicated values of a column). Appends
/// CASCADE targets post-order (deepest first); fails on RESTRICT references
/// or cycles with nothing mutated.
Status PlanRowFanout(
    Database* db, TableDef* table,
    const std::function<Result<std::vector<int64_t>>(int column)>&
        doomed_values,
    std::set<std::string>* cascade_path,
    std::vector<RowCascadeTarget>* targets) {
  for (const ForeignKeyDef& fk : db->catalog().foreign_keys()) {
    if (fk.parent_table != table->name) continue;
    BULKDEL_ASSIGN_OR_RETURN(std::vector<int64_t> values,
                             doomed_values(fk.parent_column));
    if (values.empty()) continue;
    TableDef* child = db->GetTable(fk.child_table);
    if (child == nullptr) continue;
    IndexDef* child_index = child->FindIndexOnColumn(fk.child_column);
    std::vector<Rid> referencing;
    if (child_index != nullptr) {
      BULKDEL_RETURN_IF_ERROR(child_index->tree->MergeLookupSortedKeys(
          values, [&](int64_t, const Rid& rid) {
            referencing.push_back(rid);
            return Status::OK();
          }));
    } else {
      // Unindexed child column: ONE hash-probed scan for the whole value
      // set (not one scan per referencing value).
      U64HashSet set(values.size());
      for (int64_t v : values) set.Insert(static_cast<uint64_t>(v));
      const Schema& schema = *child->schema;
      BULKDEL_RETURN_IF_ERROR(
          child->table->Scan([&](const Rid& rid, const char* t) {
            if (set.Contains(static_cast<uint64_t>(schema.GetInt(
                    t, static_cast<size_t>(fk.child_column))))) {
              referencing.push_back(rid);
            }
            return Status::OK();
          }));
    }
    if (referencing.empty()) continue;
    if (fk.action == FkAction::kRestrict) {
      return Status::FailedPrecondition(
          "delete from " + table->name + " would orphan " +
          std::to_string(referencing.size()) + " row(s) of " +
          fk.child_table + " (RESTRICT)");
    }
    if (cascade_path->count(fk.child_table) > 0) {
      return Status::FailedPrecondition("cyclic cascade through table " +
                                        fk.child_table);
    }
    std::sort(referencing.begin(), referencing.end());
    referencing.erase(std::unique(referencing.begin(), referencing.end()),
                      referencing.end());
    // Fetch the doomed child tuples once; grandchild fan-out projects from
    // this buffer instead of re-reading the heap per FK.
    std::vector<std::vector<char>> child_tuples;
    child_tuples.reserve(referencing.size());
    for (const Rid& rid : referencing) {
      std::vector<char> t(child->schema->tuple_size());
      BULKDEL_RETURN_IF_ERROR(child->table->Get(rid, t.data()));
      child_tuples.push_back(std::move(t));
    }
    auto child_values =
        [&](int column) -> Result<std::vector<int64_t>> {
      std::vector<int64_t> v;
      v.reserve(child_tuples.size());
      for (const std::vector<char>& t : child_tuples) {
        v.push_back(
            child->schema->GetInt(t.data(), static_cast<size_t>(column)));
      }
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      return v;
    };
    cascade_path->insert(fk.child_table);
    Status child_status =
        PlanRowFanout(db, child, child_values, cascade_path, targets);
    cascade_path->erase(fk.child_table);
    BULKDEL_RETURN_IF_ERROR(child_status);
    RowCascadeTarget target;
    target.table = fk.child_table;
    target.rids = std::move(referencing);
    targets->push_back(std::move(target));
  }
  return Status::OK();
}

}  // namespace

Status PlanParentRowDelete(Database* db, TableDef* parent_table,
                           const char* tuple,
                           std::set<std::string>* cascade_path,
                           std::vector<RowCascadeTarget>* targets) {
  auto row_values = [&](int column) -> Result<std::vector<int64_t>> {
    return std::vector<int64_t>{parent_table->schema->GetInt(
        tuple, static_cast<size_t>(column))};
  };
  return PlanRowFanout(db, parent_table, row_values, cascade_path, targets);
}

}  // namespace bulkdel

#include "core/constraints.h"

#include <algorithm>

#include "exec/hash_delete.h"
#include "sort/external_sort.h"

namespace bulkdel {

namespace {

/// Values of `column` among the doomed rows. Fast path: the FK references
/// the delete-key column itself, so the delete list *is* the value list.
/// Otherwise: one read-only merge lookup on the key index yields the doomed
/// RIDs; fetching the rows in RID order yields the values.
Result<std::vector<int64_t>> DoomedValuesOfColumn(
    Database* db, TableDef* table, const BulkDeleteSpec& spec, int column) {
  const Schema& schema = *table->schema;
  int key_column = schema.FindColumn(spec.key_column);
  IndexDef* key_index =
      key_column >= 0 ? table->FindIndexOnColumn(key_column) : nullptr;

  std::vector<Rid> rids;
  if (spec.is_range()) {
    // Range predicate: FK processing is the one consumer that genuinely
    // needs the doomed values materialized, so do it here — a read-only
    // index range scan when the key column is indexed, one predicate scan
    // otherwise. An empty/inverted range dooms nothing.
    if (spec.range_empty()) return std::vector<int64_t>{};
    std::vector<int64_t> keys;
    if (key_index != nullptr) {
      BULKDEL_RETURN_IF_ERROR(key_index->tree->RangeScan(
          spec.range_lo, spec.range_hi, [&](int64_t key, const Rid& rid) {
            keys.push_back(key);
            rids.push_back(rid);
            return Status::OK();
          }));
    } else {
      BULKDEL_RETURN_IF_ERROR(
          table->table->Scan([&](const Rid& rid, const char* tuple) {
            int64_t key =
                schema.GetInt(tuple, static_cast<size_t>(key_column));
            if (key >= spec.range_lo && key <= spec.range_hi) {
              keys.push_back(key);
              rids.push_back(rid);
            }
            return Status::OK();
          }));
      std::sort(keys.begin(), keys.end());
    }
    if (column == key_column) return keys;
  } else {
    std::vector<int64_t> sorted_keys = spec.keys;
    std::sort(sorted_keys.begin(), sorted_keys.end());
    if (column == key_column) return sorted_keys;

    if (key_index != nullptr) {
      BULKDEL_RETURN_IF_ERROR(key_index->tree->MergeLookupSortedKeys(
          sorted_keys, [&](int64_t, const Rid& rid) {
            rids.push_back(rid);
            return Status::OK();
          }));
    } else {
      // No access path: one scan probing a key hash.
      U64HashSet set(sorted_keys.size());
      for (int64_t k : sorted_keys) set.Insert(static_cast<uint64_t>(k));
      BULKDEL_RETURN_IF_ERROR(
          table->table->Scan([&](const Rid& rid, const char* tuple) {
            if (set.Contains(static_cast<uint64_t>(
                    schema.GetInt(tuple, static_cast<size_t>(key_column))))) {
              rids.push_back(rid);
            }
            return Status::OK();
          }));
    }
  }
  BULKDEL_RETURN_IF_ERROR(
      SortRids(&db->disk(), db->options().memory_budget_bytes, &rids));
  std::vector<int64_t> values;
  values.reserve(rids.size());
  std::vector<char> tuple(schema.tuple_size());
  for (const Rid& rid : rids) {
    BULKDEL_RETURN_IF_ERROR(table->table->Get(rid, tuple.data()));
    values.push_back(schema.GetInt(tuple.data(), static_cast<size_t>(column)));
  }
  std::sort(values.begin(), values.end());
  return values;
}

/// References in the child to any of `parent_values` (sorted): counted via a
/// merge pass on the child index when one exists, otherwise one hash-probed
/// scan.
Result<uint64_t> CountChildReferences(TableDef* child,
                                      int child_column,
                                      const std::vector<int64_t>& values) {
  IndexDef* child_index = child->FindIndexOnColumn(child_column);
  if (child_index != nullptr) {
    return child_index->tree->CountMatchingSortedKeys(values);
  }
  U64HashSet set(values.size());
  for (int64_t v : values) set.Insert(static_cast<uint64_t>(v));
  uint64_t count = 0;
  const Schema& schema = *child->schema;
  BULKDEL_RETURN_IF_ERROR(
      child->table->Scan([&](const Rid&, const char* tuple) {
        if (set.Contains(static_cast<uint64_t>(
                schema.GetInt(tuple, static_cast<size_t>(child_column))))) {
          ++count;
        }
        return Status::OK();
      }));
  return count;
}

}  // namespace

Status ProcessForeignKeysForBulkDelete(Database* db, TableDef* table,
                                       const BulkDeleteSpec& spec,
                                       Strategy strategy,
                                       std::set<std::string>* cascade_path,
                                       uint64_t* cascaded_rows) {
  std::vector<const ForeignKeyDef*> fks;
  for (const ForeignKeyDef& fk : db->catalog().foreign_keys()) {
    if (fk.parent_table == table->name) fks.push_back(&fk);
  }
  if (fks.empty()) return Status::OK();

  for (const ForeignKeyDef* fk : fks) {
    BULKDEL_ASSIGN_OR_RETURN(
        std::vector<int64_t> values,
        DoomedValuesOfColumn(db, table, spec, fk->parent_column));
    values.erase(std::unique(values.begin(), values.end()), values.end());
    TableDef* child = db->GetTable(fk->child_table);
    if (child == nullptr) {
      return Status::Corruption("foreign key child table " + fk->child_table +
                                " missing");
    }
    if (fk->action == FkAction::kRestrict) {
      BULKDEL_ASSIGN_OR_RETURN(
          uint64_t refs,
          CountChildReferences(child, fk->child_column, values));
      if (refs > 0) {
        return Status::FailedPrecondition(
            "bulk delete on " + table->name + " would orphan " +
            std::to_string(refs) + " row(s) of " + fk->child_table +
            " (RESTRICT)");
      }
      continue;
    }
    // CASCADE: bulk delete the referencing child rows first, recursively.
    if (cascade_path->count(fk->child_table) > 0) {
      return Status::FailedPrecondition("cyclic cascade through table " +
                                        fk->child_table);
    }
    BulkDeleteSpec child_spec;
    child_spec.table = fk->child_table;
    child_spec.key_column =
        child->schema->column(static_cast<size_t>(fk->child_column)).name;
    child_spec.keys = std::move(values);
    child_spec.keys_sorted = true;
    BULKDEL_ASSIGN_OR_RETURN(
        BulkDeleteReport child_report,
        db->BulkDeleteWithCascadePath(child_spec, strategy, cascade_path));
    *cascaded_rows +=
        child_report.rows_deleted + child_report.cascaded_rows;
  }
  return Status::OK();
}

Status CheckChildInsert(Database* db, TableDef* child_table,
                        const char* tuple) {
  for (const ForeignKeyDef* fk :
       db->catalog().ForeignKeysOf(child_table->name)) {
    int64_t value = child_table->schema->GetInt(
        tuple, static_cast<size_t>(fk->child_column));
    TableDef* parent = db->GetTable(fk->parent_table);
    if (parent == nullptr) {
      return Status::Corruption("foreign key parent table missing");
    }
    IndexDef* parent_index = parent->FindIndexOnColumn(fk->parent_column);
    if (parent_index == nullptr) {
      return Status::FailedPrecondition(
          "foreign key parent column lost its index");
    }
    BULKDEL_ASSIGN_OR_RETURN(std::vector<Rid> rids,
                             parent_index->tree->Search(value));
    if (rids.empty()) {
      return Status::FailedPrecondition(
          "insert into " + child_table->name + " violates FK: no " +
          fk->parent_table + " row with value " + std::to_string(value));
    }
  }
  return Status::OK();
}

Status ProcessParentRowDelete(Database* db, TableDef* parent_table,
                              const char* tuple,
                              std::set<std::string>* cascade_path) {
  for (const ForeignKeyDef& fk : db->catalog().foreign_keys()) {
    if (fk.parent_table != parent_table->name) continue;
    int64_t value = parent_table->schema->GetInt(
        tuple, static_cast<size_t>(fk.parent_column));
    TableDef* child = db->GetTable(fk.child_table);
    if (child == nullptr) continue;
    IndexDef* child_index = child->FindIndexOnColumn(fk.child_column);
    std::vector<Rid> referencing;
    if (child_index != nullptr) {
      BULKDEL_ASSIGN_OR_RETURN(referencing, child_index->tree->Search(value));
    } else {
      const Schema& schema = *child->schema;
      BULKDEL_RETURN_IF_ERROR(
          child->table->Scan([&](const Rid& rid, const char* t) {
            if (schema.GetInt(t, static_cast<size_t>(fk.child_column)) ==
                value) {
              referencing.push_back(rid);
            }
            return Status::OK();
          }));
    }
    if (referencing.empty()) continue;
    if (fk.action == FkAction::kRestrict) {
      return Status::FailedPrecondition(
          "delete from " + parent_table->name + " would orphan " +
          std::to_string(referencing.size()) + " row(s) of " +
          fk.child_table + " (RESTRICT)");
    }
    if (cascade_path->count(fk.child_table) > 0) {
      return Status::FailedPrecondition("cyclic cascade through table " +
                                        fk.child_table);
    }
    cascade_path->insert(fk.child_table);
    for (const Rid& rid : referencing) {
      BULKDEL_RETURN_IF_ERROR(
          db->DeleteRowWithCascadePath(fk.child_table, rid, cascade_path));
    }
    cascade_path->erase(fk.child_table);
  }
  return Status::OK();
}

}  // namespace bulkdel
